//===- tools/egglog_lint.cpp - Static analyzer for .egg programs --------------===//
//
// Part of egglog-cpp. Walks egglog programs in analysis mode — declarations,
// rules, and ground facts execute; run/check/extract/save/load are
// typechecked but skipped — then runs the static lints (src/analysis) over
// the declared rule program: the rule/function dependency graph, its SCCs
// and stratification, and the diagnostics built on them.
//
// Usage: egglog-lint [file.egg ...]    lint programs (stdin when no files)
//        egglog-lint --Werror ...      treat warnings as errors (exit 1)
//
// Multiple files accumulate into one program (library file + driver file),
// and the analysis runs once at the end over the combined picture.
// Diagnostics go to stderr, one per line, in the same format as
// egglog_run's errors: "file:line:col: warning: message [check-name]".
// Exit codes: 0 clean, 1 on any program error or (with --Werror) on any
// diagnostic.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "support/Errors.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

using namespace egglog;

namespace {

void reportError(const std::string &Label, const EggError &E,
                 const std::string &Fallback) {
  const char *Kind = errKindName(E.Kind == ErrKind::None ? ErrKind::Runtime
                                                         : E.Kind);
  const std::string &Message = E.Message.empty() ? Fallback : E.Message;
  if (E.Line > 0)
    std::fprintf(stderr, "%s:%u:%u: %s: %s\n", Label.c_str(), E.Line, E.Col,
                 Kind, Message.c_str());
  else
    std::fprintf(stderr, "%s: %s: %s\n", Label.c_str(), Kind,
                 Message.c_str());
}

/// Walks one program unit in analysis mode, form by form (batch style:
/// every failing form is reported and the walk continues, so one bad
/// command doesn't hide the rest of the picture). Returns 0 or 1.
int walkUnit(Frontend &F, const std::string &Source,
             const std::string &Label) {
  F.setSourceLabel(Label);
  ParseResult Parsed = parseSExprs(Source);
  if (!Parsed.Ok) {
    EggError E{ErrKind::Parse, Parsed.Error, Parsed.ErrorLine,
               Parsed.ErrorCol};
    reportError(Label, E, Parsed.Error);
    return 1;
  }
  int Status = 0;
  for (const SExpr &Form : Parsed.Forms)
    if (!F.executeForm(Form)) {
      reportError(Label, F.lastError(), F.error());
      Status = 1;
    }
  return Status;
}

} // namespace

int main(int argc, char **argv) {
  bool Werror = false;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--Werror") == 0)
      Werror = true;
    else if (std::strcmp(argv[I], "--help") == 0) {
      std::printf(
          "usage: egglog-lint [--Werror] [file.egg ...]\n"
          "Statically analyzes egglog programs without running them:\n"
          "dependency graph, stratification, and lints (non-termination\n"
          "risk, dead rules, unused rulesets, shadowed rules, unused\n"
          "variables, non-idempotent :merge). Reads stdin when no files\n"
          "are given; multiple files accumulate into one program.\n"
          "Diagnostics: \"file:line:col: warning: message [check]\".\n"
          "exit codes: 0 clean, 1 program error or (--Werror) warnings\n");
      return 0;
    } else {
      Files.push_back(argv[I]);
    }
  }

  Frontend F;
  F.setAnalysisMode(true);
  int Status = 0;
  if (Files.empty()) {
    std::string Source(std::istreambuf_iterator<char>(std::cin.rdbuf()), {});
    Status = walkUnit(F, Source, "<stdin>");
  } else {
    for (const std::string &Path : Files) {
      std::ifstream Stream(Path);
      if (!Stream) {
        EggError E{ErrKind::IO, "cannot open file", 0, 0};
        reportError(Path, E, "cannot open file");
        Status = 1;
        continue;
      }
      std::stringstream Buffer;
      Buffer << Stream.rdbuf();
      Status = std::max(Status, walkUnit(F, Buffer.str(), Path));
    }
  }

  std::vector<LintDiagnostic> Diags = F.lintProgram();
  for (const LintDiagnostic &D : Diags) {
    const std::string &Unit = D.Unit.empty()
                                  ? (Files.empty() ? "<stdin>" : Files.back())
                                  : D.Unit;
    std::fprintf(stderr, "%s:%s\n", Unit.c_str(), D.render().c_str());
  }
  if (Werror && !Diags.empty())
    Status = std::max(Status, 1);
  return Status;
}
