//===- tools/egglog_run.cpp - The egglog command-line interpreter -------------===//
//
// Part of egglog-cpp. Runs egglog programs from files or standard input,
// mirroring the paper's language-first design (§5.2: "Users can write
// egglog programs in a text format, and the tool parses, typechecks,
// compiles, and executes them").
//
// Usage: egglog-run [file.egg ...]        run programs
//        egglog-run                        read one program from stdin
//        egglog-run --no-seminaive ...     disable semi-naive evaluation
//        egglog-run --backoff ...          enable the BackOff scheduler
//        egglog-run --threads N ...        match rules on N threads
//        egglog-run --stats ...            dump per-phase timing at exit
//        egglog-run --extract ...          dump extraction-cache stats at exit
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

using namespace egglog;

namespace {

int runProgram(Frontend &F, const std::string &Source,
               const std::string &Label) {
  size_t OutputsBefore = F.outputs().size();
  if (!F.execute(Source)) {
    std::fprintf(stderr, "%s: error: %s\n", Label.c_str(),
                 F.error().c_str());
    return 1;
  }
  for (size_t I = OutputsBefore; I < F.outputs().size(); ++I)
    std::printf("%s\n", F.outputs()[I].c_str());
  return 0;
}

/// --stats: per-phase totals over every (run ...) the programs executed,
/// on stderr so program output stays pipeable.
void dumpStats(Frontend &F) {
  const Frontend::PhaseTotals &T = F.phaseTotals();
  std::fprintf(stderr,
               "phase stats: threads %u, iterations %zu, matches %zu\n"
               "  match   %9.6fs (warm-up %9.6fs)\n"
               "  apply   %9.6fs\n"
               "  rebuild %9.6fs\n",
               F.engine().threads(), T.Iterations, T.Matches,
               T.SearchSeconds, T.WarmSeconds, T.ApplySeconds,
               T.RebuildSeconds);
}

/// --extract: the extraction cache's maintenance counters as a single-line
/// JSON record on stderr (same channel as --stats), so driver scripts can
/// track warm-hit rates across program runs.
void dumpExtractStats(Frontend &F) {
  const ExtractIndex *Idx = F.graph().extractIndexIfBuilt();
  ExtractIndex::Stats St = Idx ? Idx->stats() : ExtractIndex::Stats{};
  std::fprintf(stderr,
               "{\"bench\": \"extract\", \"refreshes\": %llu, \"warm_hits\": "
               "%llu, \"incrementals\": %llu, \"full_rebuilds\": %llu, "
               "\"rows_considered\": %llu, \"merges_folded\": %llu}\n",
               static_cast<unsigned long long>(St.Refreshes),
               static_cast<unsigned long long>(St.WarmHits),
               static_cast<unsigned long long>(St.Incrementals),
               static_cast<unsigned long long>(St.FullRebuilds),
               static_cast<unsigned long long>(St.RowsConsidered),
               static_cast<unsigned long long>(St.MergesFolded));
}

} // namespace

int main(int argc, char **argv) {
  Frontend F;
  std::vector<std::string> Files;
  bool Stats = false;
  bool ExtractStats = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-seminaive") == 0)
      F.runOptions().SemiNaive = false;
    else if (std::strcmp(argv[I], "--backoff") == 0)
      F.runOptions().UseBackoff = true;
    else if (std::strcmp(argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(argv[I], "--extract") == 0)
      ExtractStats = true;
    else if (std::strcmp(argv[I], "--threads") == 0) {
      int N = I + 1 < argc ? std::atoi(argv[++I]) : 0;
      if (N < 1) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return 1;
      }
      F.engine().setThreads(static_cast<unsigned>(N));
    } else if (std::strcmp(argv[I], "--help") == 0) {
      std::printf("usage: egglog-run [--no-seminaive] [--backoff] "
                  "[--threads N] [--stats] [--extract] [file.egg ...]\n");
      return 0;
    } else {
      Files.push_back(argv[I]);
    }
  }

  int Status = 0;
  if (Files.empty()) {
    std::string Source(std::istreambuf_iterator<char>(std::cin.rdbuf()), {});
    Status = runProgram(F, Source, "<stdin>");
  } else {
    for (const std::string &Path : Files) {
      std::ifstream Stream(Path);
      if (!Stream) {
        std::fprintf(stderr, "cannot open %s\n", Path.c_str());
        Status = 1;
        break;
      }
      std::stringstream Buffer;
      Buffer << Stream.rdbuf();
      if ((Status = runProgram(F, Buffer.str(), Path)))
        break;
    }
  }
  if (Stats)
    dumpStats(F);
  if (ExtractStats)
    dumpExtractStats(F);
  return Status;
}
