//===- tools/egglog_run.cpp - The egglog command-line interpreter -------------===//
//
// Part of egglog-cpp. Runs egglog programs from files or standard input,
// mirroring the paper's language-first design (§5.2: "Users can write
// egglog programs in a text format, and the tool parses, typechecks,
// compiles, and executes them").
//
// Usage: egglog-run [file.egg ...]        run programs
//        egglog-run                        read one program from stdin
//        egglog-run --no-seminaive ...     disable semi-naive evaluation
//        egglog-run --backoff ...          enable the BackOff scheduler
//        egglog-run --threads N ...        match rules on N threads
//        egglog-run --timeout S ...        per-command wall-clock budget
//        egglog-run --max-memory MB ...    approximate memory ceiling
//        egglog-run --keep-going ...       report errors, keep executing
//        egglog-run --lint ...             static-analysis pre-pass per file
//        egglog-run --Werror ...           lint diagnostics fail the run
//        egglog-run --stats ...            dump per-phase timing at exit
//        egglog-run --extract ...          dump extraction-cache stats at exit
//        egglog-run --snapshot-in F ...    load a database snapshot first
//        egglog-run --snapshot-out F ...   save a snapshot after success
//
// Exit codes: 0 success, 1 user error (parse/type/runtime/io), 2 resource
// limit or cancellation, 3 internal error. Errors go to stderr as
// "file:line:col: kind: message". Failed commands roll back, so with
// --keep-going the remaining program still runs against a consistent
// database (batch linting).
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"
#include "support/Errors.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace egglog;

namespace {

void reportError(const std::string &Label, const EggError &E,
                 const std::string &Fallback) {
  const char *Kind = errKindName(E.Kind == ErrKind::None ? ErrKind::Runtime
                                                         : E.Kind);
  const std::string &Message = E.Message.empty() ? Fallback : E.Message;
  if (E.Line > 0)
    std::fprintf(stderr, "%s:%u:%u: %s: %s\n", Label.c_str(), E.Line, E.Col,
                 Kind, Message.c_str());
  else
    std::fprintf(stderr, "%s: %s: %s\n", Label.c_str(), Kind,
                 Message.c_str());
}

int runProgram(Frontend &F, const std::string &Source,
               const std::string &Label, bool KeepGoing) {
  size_t OutputsBefore = F.outputs().size();
  int Status = 0;
  if (!KeepGoing) {
    if (!F.execute(Source)) {
      reportError(Label, F.lastError(), F.error());
      Status = std::max(1, errExitCode(F.lastError().Kind));
    }
  } else {
    // Parse once, then execute form by form: each failed command reports
    // its error and rolls back, and execution continues with the next one.
    ParseResult Parsed = parseSExprs(Source);
    if (!Parsed.Ok) {
      EggError E{ErrKind::Parse, Parsed.Error, Parsed.ErrorLine,
                 Parsed.ErrorCol};
      reportError(Label, E, Parsed.Error);
      Status = errExitCode(ErrKind::Parse);
    } else {
      for (const SExpr &Form : Parsed.Forms)
        if (!F.executeForm(Form)) {
          reportError(Label, F.lastError(), F.error());
          Status = std::max(Status,
                            std::max(1, errExitCode(F.lastError().Kind)));
        }
    }
  }
  for (size_t I = OutputsBefore; I < F.outputs().size(); ++I)
    std::printf("%s\n", F.outputs()[I].c_str());
  return Status;
}

/// --stats: per-phase totals over every (run ...) the programs executed,
/// on stderr so program output stays pipeable.
void dumpStats(Frontend &F) {
  const Frontend::PhaseTotals &T = F.phaseTotals();
  std::fprintf(stderr,
               "phase stats: threads %u, iterations %zu, matches %zu\n"
               "  match   %9.6fs (warm-up %9.6fs)\n"
               "  apply   %9.6fs (staged  %9.6fs)\n"
               "  rebuild %9.6fs (gather  %9.6fs)\n",
               F.engine().threads(), T.Iterations, T.Matches,
               T.SearchSeconds, T.WarmSeconds, T.ApplySeconds,
               T.ApplyStageSeconds, T.RebuildSeconds,
               T.RebuildGatherSeconds);
}

/// --extract: the extraction cache's maintenance counters as a single-line
/// JSON record on stderr (same channel as --stats), so driver scripts can
/// track warm-hit rates across program runs.
void dumpExtractStats(Frontend &F) {
  const ExtractIndex *Idx = F.graph().extractIndexIfBuilt();
  ExtractIndex::Stats St = Idx ? Idx->stats() : ExtractIndex::Stats{};
  std::fprintf(stderr,
               "{\"bench\": \"extract\", \"refreshes\": %llu, \"warm_hits\": "
               "%llu, \"incrementals\": %llu, \"full_rebuilds\": %llu, "
               "\"rows_considered\": %llu, \"merges_folded\": %llu}\n",
               static_cast<unsigned long long>(St.Refreshes),
               static_cast<unsigned long long>(St.WarmHits),
               static_cast<unsigned long long>(St.Incrementals),
               static_cast<unsigned long long>(St.FullRebuilds),
               static_cast<unsigned long long>(St.RowsConsidered),
               static_cast<unsigned long long>(St.MergesFolded));
}

/// The --lint pre-pass: a mirror Frontend walks each file in analysis mode
/// (declarations and facts execute, run/check/extract are typechecked but
/// skipped) before the real Frontend runs it, and the static lints
/// (src/analysis) report on the accumulated program. Pre-pass execution
/// errors are suppressed — the real pass reports them with proper exit
/// codes, including exit 1 for files that only fail to parse. Diagnostics
/// are deduplicated by rendered line, so a library file included in every
/// pre-pass reports each finding once.
class LintPrePass {
public:
  /// Returns the lint contribution to the exit status: 1 when Werror and
  /// new diagnostics appeared, else 0.
  int runOn(const std::string &Source, const std::string &Label,
            bool Werror) {
    Mirror.setAnalysisMode(true);
    Mirror.setSourceLabel(Label);
    ParseResult Parsed = parseSExprs(Source);
    if (!Parsed.Ok)
      return 0;
    for (const SExpr &Form : Parsed.Forms)
      Mirror.executeForm(Form);
    int Status = 0;
    for (const LintDiagnostic &D : Mirror.lintProgram()) {
      std::string Line =
          (D.Unit.empty() ? Label : D.Unit) + ":" + D.render();
      if (!Seen.insert(Line).second)
        continue;
      std::fprintf(stderr, "%s\n", Line.c_str());
      if (Werror)
        Status = 1;
    }
    return Status;
  }

private:
  Frontend Mirror;
  std::set<std::string> Seen;
};

/// Runs (load "path") / (save "path") through the normal command path, so
/// snapshot I/O gets the same transactional rollback and io-kind error
/// reporting as in-program commands. The form is built directly (not
/// parsed), so paths never need escaping.
int runSnapshotCommand(Frontend &F, const char *Command,
                       const std::string &Path) {
  SExpr Form = SExpr::makeList(
      {SExpr::makeSymbol(Command), SExpr::makeString(Path)});
  if (F.executeForm(Form))
    return 0;
  reportError(Path, F.lastError(), F.error());
  return std::max(1, errExitCode(F.lastError().Kind));
}

} // namespace

int main(int argc, char **argv) {
  Frontend F;
  std::vector<std::string> Files;
  std::string SnapshotIn, SnapshotOut;
  bool Stats = false;
  bool ExtractStats = false;
  bool KeepGoing = false;
  bool LintMode = false;
  bool Werror = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-seminaive") == 0)
      F.runOptions().SemiNaive = false;
    else if (std::strcmp(argv[I], "--backoff") == 0)
      F.runOptions().UseBackoff = true;
    else if (std::strcmp(argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strcmp(argv[I], "--extract") == 0)
      ExtractStats = true;
    else if (std::strcmp(argv[I], "--keep-going") == 0)
      KeepGoing = true;
    else if (std::strcmp(argv[I], "--lint") == 0)
      LintMode = true;
    else if (std::strcmp(argv[I], "--Werror") == 0)
      Werror = true;
    else if (std::strcmp(argv[I], "--threads") == 0) {
      int N = I + 1 < argc ? std::atoi(argv[++I]) : 0;
      if (N < 1) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return 1;
      }
      F.engine().setThreads(static_cast<unsigned>(N));
    } else if (std::strcmp(argv[I], "--timeout") == 0) {
      double S = I + 1 < argc ? std::atof(argv[++I]) : -1;
      if (S < 0) {
        std::fprintf(stderr, "--timeout expects a non-negative number of "
                             "seconds\n");
        return 1;
      }
      F.graph().governor().setTimeout(S);
    } else if (std::strcmp(argv[I], "--max-memory") == 0) {
      long MB = I + 1 < argc ? std::atol(argv[++I]) : -1;
      if (MB < 0) {
        std::fprintf(stderr, "--max-memory expects a non-negative number of "
                             "megabytes\n");
        return 1;
      }
      F.graph().governor().setMaxBytes(static_cast<size_t>(MB) << 20);
    } else if (std::strcmp(argv[I], "--snapshot-in") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--snapshot-in expects a file path\n");
        return 1;
      }
      SnapshotIn = argv[++I];
    } else if (std::strcmp(argv[I], "--snapshot-out") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--snapshot-out expects a file path\n");
        return 1;
      }
      SnapshotOut = argv[++I];
    } else if (std::strcmp(argv[I], "--help") == 0) {
      std::printf(
          "usage: egglog-run [--no-seminaive] [--backoff] [--threads N]\n"
          "                  [--timeout S] [--max-memory MB] [--keep-going]\n"
          "                  [--lint] [--Werror] [--stats] [--extract]\n"
          "                  [--snapshot-in F] [--snapshot-out F]\n"
          "                  [file.egg ...]\n"
          "--snapshot-in loads a database snapshot before the programs run;\n"
          "--snapshot-out saves one after they all succeed.\n"
          "--lint runs the static-analysis pre-pass over each file before\n"
          "executing it (diagnostics on stderr); --Werror makes lint\n"
          "diagnostics fail the run.\n"
          "exit codes: 0 success, 1 user error, 2 limit/cancelled, "
          "3 internal\n");
      return 0;
    } else {
      Files.push_back(argv[I]);
    }
  }

  int Status = 0;
  if (!SnapshotIn.empty()) {
    Status = runSnapshotCommand(F, "load", SnapshotIn);
    if (Status)
      return Status;
  }
  LintPrePass Lint;
  if (Files.empty()) {
    std::string Source(std::istreambuf_iterator<char>(std::cin.rdbuf()), {});
    if (LintMode)
      Status = std::max(Status, Lint.runOn(Source, "<stdin>", Werror));
    Status = std::max(Status, runProgram(F, Source, "<stdin>", KeepGoing));
  } else {
    for (const std::string &Path : Files) {
      std::ifstream Stream(Path);
      if (!Stream) {
        EggError E{ErrKind::IO, "cannot open file", 0, 0};
        reportError(Path, E, "cannot open file");
        Status = std::max(Status, errExitCode(ErrKind::IO));
        if (!KeepGoing)
          break;
        continue;
      }
      std::stringstream Buffer;
      Buffer << Stream.rdbuf();
      // The lint pre-pass runs once per file regardless of --keep-going;
      // its own errors stay silent (the real pass below reports them, and
      // a file that only fails to parse exits 1 through that path).
      if (LintMode)
        Status = std::max(Status, Lint.runOn(Buffer.str(), Path, Werror));
      int FileStatus = runProgram(F, Buffer.str(), Path, KeepGoing);
      Status = std::max(Status, FileStatus);
      if (Status && !KeepGoing)
        break;
    }
  }
  if (Status == 0 && !SnapshotOut.empty())
    Status = runSnapshotCommand(F, "save", SnapshotOut);
  if (Stats)
    dumpStats(F);
  if (ExtractStats)
    dumpExtractStats(F);
  return Status;
}
