//===- tools/egglog_run.cpp - The egglog command-line interpreter -------------===//
//
// Part of egglog-cpp. Runs egglog programs from files or standard input,
// mirroring the paper's language-first design (§5.2: "Users can write
// egglog programs in a text format, and the tool parses, typechecks,
// compiles, and executes them").
//
// Usage: egglog-run [file.egg ...]        run programs
//        egglog-run                        read one program from stdin
//        egglog-run --no-seminaive ...     disable semi-naive evaluation
//        egglog-run --backoff ...          enable the BackOff scheduler
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

using namespace egglog;

namespace {

int runProgram(Frontend &F, const std::string &Source,
               const std::string &Label) {
  size_t OutputsBefore = F.outputs().size();
  if (!F.execute(Source)) {
    std::fprintf(stderr, "%s: error: %s\n", Label.c_str(),
                 F.error().c_str());
    return 1;
  }
  for (size_t I = OutputsBefore; I < F.outputs().size(); ++I)
    std::printf("%s\n", F.outputs()[I].c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Frontend F;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-seminaive") == 0)
      F.runOptions().SemiNaive = false;
    else if (std::strcmp(argv[I], "--backoff") == 0)
      F.runOptions().UseBackoff = true;
    else if (std::strcmp(argv[I], "--help") == 0) {
      std::printf("usage: egglog-run [--no-seminaive] [--backoff] "
                  "[file.egg ...]\n");
      return 0;
    } else {
      Files.push_back(argv[I]);
    }
  }

  if (Files.empty()) {
    std::string Source(std::istreambuf_iterator<char>(std::cin.rdbuf()), {});
    return runProgram(F, Source, "<stdin>");
  }
  for (const std::string &Path : Files) {
    std::ifstream Stream(Path);
    if (!Stream) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << Stream.rdbuf();
    if (int Status = runProgram(F, Buffer.str(), Path))
      return Status;
  }
  return 0;
}
