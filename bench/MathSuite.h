//===- bench/MathSuite.h - Shared Fig. 7 workload --------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload of the Fig. 7 micro-benchmark: the analysis-free subset of
/// egg's `math` rule suite together with its seed terms, expressed both
/// for the egglog engine (surface syntax) and for the classic egg-style
/// baseline (pattern strings). Keeping one definition ensures the systems
/// race on identical rules, as §5.3 requires.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_BENCH_MATHSUITE_H
#define EGGLOG_BENCH_MATHSUITE_H

#include <string>
#include <vector>

namespace egglog {
namespace bench {

/// One rewrite as engine-neutral pattern strings (egg conventions:
/// ?-prefixed variables, bare symbols are nullary operators).
struct MathRule {
  const char *Name;
  const char *Lhs;
  const char *Rhs;
};

/// The analysis-free rule subset (egg's math suite minus the rules that
/// need is-const/non-zero analyses, per §5.3).
inline const std::vector<MathRule> &mathRules() {
  static const std::vector<MathRule> Rules = {
      {"comm-add", "(+ ?a ?b)", "(+ ?b ?a)"},
      {"comm-mul", "(* ?a ?b)", "(* ?b ?a)"},
      {"assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"},
      {"assoc-mul", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"},
      {"sub-canon", "(- ?a ?b)", "(+ ?a (* (Num -1) ?b))"},
      {"zero-add", "(+ ?a (Num 0))", "?a"},
      {"zero-mul", "(* ?a (Num 0))", "(Num 0)"},
      {"one-mul", "(* ?a (Num 1))", "?a"},
      {"cancel-sub", "(- ?a ?a)", "(Num 0)"},
      {"distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"},
      {"factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"},
      {"pow-mul", "(* (pow ?a ?b) (pow ?a ?c))", "(pow ?a (+ ?b ?c))"},
  };
  return Rules;
}

/// Seed terms (from egg's math test suite; object-language variables are
/// the nullary operators x, y, z, a, b, c).
inline const std::vector<const char *> &mathSeedTerms() {
  static const std::vector<const char *> Terms = {
      "(+ x (+ x (+ x x)))",
      "(* (+ x y) (+ y x))",
      "(- (+ x y) (+ x y))",
      "(* (* x y) z)",
      "(+ (* x (+ y (Num 1))) (* (+ y (Num 1)) x))",
      "(- (* (+ a b) c) (* c (+ a b)))",
      "(* (pow x (Num 2)) (pow x (Num 3)))",
      "(+ (* a (Num 0)) (* b (Num 1)))",
  };
  return Terms;
}

/// The same rules in egglog surface syntax.
std::string mathRulesEgglog();

/// The same seed terms as egglog define commands (named t0, t1, ...).
std::string mathSeedsEgglog();

} // namespace bench
} // namespace egglog

#endif // EGGLOG_BENCH_MATHSUITE_H
