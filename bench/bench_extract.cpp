//===- bench/bench_extract.cpp - Extraction subsystem benchmark ---------------===//
//
// Part of egglog-cpp. Measures the persistent ExtractIndex against its
// worst enemy, the from-scratch cost fixpoint, on three shapes:
//
//   deep_chain          a D-deep unary chain: cold extract (index reset)
//                       vs warm repeated extract over an unchanged database
//   incremental_append  extend the chain by K nodes and extract again:
//                       only the appended suffix is scanned
//   wide_class          one class holding W equivalent terms: extract the
//                       cheapest 64 variants, cold vs warm
//
// Prints a human-readable report followed by single-line JSON records for
// the BENCH_extract.json trajectory.
//
// Usage: bench_extract [depth] [append] [wide]
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace egglog;

namespace {

uint64_t rowsConsidered(EGraph &G) {
  return G.extractIndex().stats().RowsConsidered;
}

/// Builds a depth-D chain S(S(...S(Z)...)) through the API (a program text
/// would need D nested parentheses) and returns the root value.
Value buildChain(Frontend &F, size_t Depth, FunctionId Zf, FunctionId Sf) {
  EGraph &G = F.graph();
  Value Dummy;
  Value Cur;
  if (!G.getOrCreate(Zf, &Dummy, Cur)) {
    std::fprintf(stderr, "chain seed failed\n");
    std::exit(1);
  }
  for (size_t I = 0; I < Depth; ++I) {
    Value Next;
    if (!G.getOrCreate(Sf, &Cur, Next)) {
      std::fprintf(stderr, "chain growth failed at %zu\n", I);
      std::exit(1);
    }
    Cur = Next;
  }
  return Cur;
}

} // namespace

int main(int argc, char **argv) {
  size_t Depth = argc > 1 ? std::atoll(argv[1]) : 100000;
  size_t Append = argc > 2 ? std::atoll(argv[2]) : 2000;
  size_t Wide = argc > 3 ? std::atoll(argv[3]) : 4000;

  std::printf("=== bench_extract: persistent vs from-scratch extraction ===\n");

  //===--------------------------------------------------------------------===
  // Scenario 1: deep chain, cold vs warm.
  //===--------------------------------------------------------------------===
  Frontend F;
  if (!F.execute("(datatype Chain (Z) (S Chain))")) {
    std::fprintf(stderr, "setup failed: %s\n", F.error().c_str());
    return 1;
  }
  EGraph &G = F.graph();
  FunctionId Zf = 0, Sf = 0;
  G.lookupFunctionName("Z", Zf);
  G.lookupFunctionName("S", Sf);
  Value Root = buildChain(F, Depth, Zf, Sf);

  // Cold: invalidate so refresh() recomputes the whole fixpoint.
  G.extractIndex().invalidate();
  uint64_t ColdRowsBefore = rowsConsidered(G);
  Timer ColdClock;
  std::optional<ExtractedTerm> ColdTerm = extractTerm(G, Root);
  double ColdS = ColdClock.seconds();
  uint64_t ColdRows = rowsConsidered(G) - ColdRowsBefore;
  if (!ColdTerm) {
    std::fprintf(stderr, "deep-chain extraction failed\n");
    return 1;
  }

  // Warm: same database, repeated; the index verifies versions and only
  // re-renders the term.
  const unsigned WarmReps = 5;
  uint64_t WarmRowsBefore = rowsConsidered(G);
  Timer WarmClock;
  size_t WarmBytes = 0;
  for (unsigned I = 0; I < WarmReps; ++I) {
    std::optional<ExtractedTerm> WarmTerm = extractTerm(G, Root);
    if (!WarmTerm || WarmTerm->Text.size() != ColdTerm->Text.size()) {
      std::fprintf(stderr, "warm extraction diverged\n");
      return 1;
    }
    WarmBytes = WarmTerm->Text.size();
  }
  double WarmS = WarmClock.seconds() / WarmReps;
  uint64_t WarmRows = rowsConsidered(G) - WarmRowsBefore;

  std::printf("deep_chain  depth %zu: cold %.6fs (%llu rows), warm %.6fs "
              "(%llu rows), speedup %.1fx, term %zu bytes\n",
              Depth, ColdS, static_cast<unsigned long long>(ColdRows), WarmS,
              static_cast<unsigned long long>(WarmRows),
              WarmS > 0 ? ColdS / WarmS : 0.0, WarmBytes);

  //===--------------------------------------------------------------------===
  // Scenario 2: append to the chain and extract again (incremental).
  //===--------------------------------------------------------------------===
  Value Extended = Root;
  for (size_t I = 0; I < Append; ++I) {
    Value Next;
    G.getOrCreate(Sf, &Extended, Next);
    Extended = Next;
  }
  uint64_t IncRowsBefore = rowsConsidered(G);
  Timer IncClock;
  std::optional<ExtractedTerm> IncTerm = extractTerm(G, Extended);
  double IncS = IncClock.seconds();
  uint64_t IncRows = rowsConsidered(G) - IncRowsBefore;
  if (!IncTerm) {
    std::fprintf(stderr, "incremental extraction failed\n");
    return 1;
  }
  std::printf("incremental_append  +%zu rows: %.6fs (%llu rows considered "
              "vs %zu live)\n",
              Append, IncS, static_cast<unsigned long long>(IncRows),
              G.liveTupleCount());

  //===--------------------------------------------------------------------===
  // Scenario 3: wide class (variant extraction), cold vs warm.
  //===--------------------------------------------------------------------===
  Frontend FW;
  if (!FW.execute("(datatype Math (Num i64) (Add Math Math))")) {
    std::fprintf(stderr, "wide setup failed: %s\n", FW.error().c_str());
    return 1;
  }
  EGraph &GW = FW.graph();
  std::string Program;
  Program += "(define root (Add (Num 0) (Num 0)))\n";
  for (size_t I = 1; I < Wide; ++I)
    Program += "(union root (Add (Num " + std::to_string(I) + ") (Num -" +
               std::to_string(I) + ")))\n";
  if (!FW.execute(Program)) {
    std::fprintf(stderr, "wide build failed: %s\n", FW.error().c_str());
    return 1;
  }
  Value WideRoot;
  if (!FW.evalGround("root", WideRoot)) {
    std::fprintf(stderr, "wide root lost\n");
    return 1;
  }
  GW.extractIndex().invalidate();
  Timer WideColdClock;
  std::vector<ExtractedTerm> ColdVariants = extractVariants(GW, WideRoot, 64);
  double WideColdS = WideColdClock.seconds();
  Timer WideWarmClock;
  std::vector<ExtractedTerm> WarmVariants = extractVariants(GW, WideRoot, 64);
  double WideWarmS = WideWarmClock.seconds();
  if (ColdVariants.size() != WarmVariants.size()) {
    std::fprintf(stderr, "wide-class variant sets diverged\n");
    return 1;
  }
  std::printf("wide_class  %zu members: cold %.6fs, warm %.6fs, %zu "
              "variants\n",
              Wide, WideColdS, WideWarmS, ColdVariants.size());

  // Machine-readable trajectory records (one JSON object per line).
  std::printf("{\"bench\": \"extract\", \"scenario\": \"deep_chain\", "
              "\"depth\": %zu, \"cold_s\": %.6f, \"warm_s\": %.6f, "
              "\"speedup\": %.2f, \"rows_cold\": %llu, \"rows_warm\": %llu, "
              "\"term_bytes\": %zu}\n",
              Depth, ColdS, WarmS, WarmS > 0 ? ColdS / WarmS : 0.0,
              static_cast<unsigned long long>(ColdRows),
              static_cast<unsigned long long>(WarmRows), WarmBytes);
  std::printf("{\"bench\": \"extract\", \"scenario\": \"incremental_append\", "
              "\"appended\": %zu, \"incremental_s\": %.6f, \"rows_incremental\""
              ": %llu, \"cold_s\": %.6f, \"rows_cold\": %llu}\n",
              Append, IncS, static_cast<unsigned long long>(IncRows), ColdS,
              static_cast<unsigned long long>(ColdRows));
  std::printf("{\"bench\": \"extract\", \"scenario\": \"wide_class\", "
              "\"members\": %zu, \"cold_s\": %.6f, \"warm_s\": %.6f, "
              "\"variants\": %zu}\n",
              Wide, WideColdS, WideWarmS, ColdVariants.size());
  return 0;
}
