//===- bench/bench_herbie.cpp - Figs. 11 & 12: mini-Herbie --------------------===//
//
// Part of egglog-cpp. Regenerates Figs. 11 and 12 of the paper: run
// mini-Herbie over the benchmark suite twice — once with egglog's sound
// analyses and once with the historical unsound ruleset — then print
//   Fig. 11: a histogram of (unsound - sound) bits of error, and
//   Fig. 12: a histogram of (unsound - sound) runtime,
// plus the paper's headline totals (sound was faster overall: 73.91 min
// vs 81.91 min; sound more accurate on 104 benchmarks, unsound on 135,
// with a far-left outlier only the sound analysis solves).
//
// Usage: bench_herbie [iterations] [samples]
//
//===----------------------------------------------------------------------===//

#include "herbie/Herbie.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace egglog::herbie;

namespace {

void printHistogram(const char *Title, const std::vector<double> &Diffs,
                    double BucketWidth, const char *Unit) {
  std::printf("\n%s\n", Title);
  if (Diffs.empty())
    return;
  double Lo = Diffs[0], Hi = Diffs[0];
  for (double D : Diffs) {
    Lo = std::min(Lo, D);
    Hi = std::max(Hi, D);
  }
  int FirstBucket = static_cast<int>(std::floor(Lo / BucketWidth));
  int LastBucket = static_cast<int>(std::floor(Hi / BucketWidth));
  for (int B = FirstBucket; B <= LastBucket; ++B) {
    double From = B * BucketWidth, To = From + BucketWidth;
    size_t Count = 0;
    for (double D : Diffs)
      if (D >= From && D < To)
        ++Count;
    if (Count == 0)
      continue;
    std::printf("  [%+7.2f, %+7.2f) %s: %3zu  ", From, To, Unit, Count);
    for (size_t I = 0; I < Count; ++I)
      std::printf("#");
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char **argv) {
  HerbieOptions Base;
  Base.Iterations = argc > 1 ? std::atoi(argv[1]) : 12;
  Base.Samples = argc > 2 ? std::atoi(argv[2]) : 150;

  const std::vector<Benchmark> &Suite = herbieSuite();
  std::printf("=== Figs. 11/12: mini-Herbie, %zu benchmarks, %u EqSat "
              "iterations, %u samples ===\n",
              Suite.size(), Base.Iterations, Base.Samples);
  std::printf("%-24s %9s %9s %9s %9s %9s\n", "benchmark", "init", "sound",
              "unsound", "t-sound", "t-unsnd");

  std::vector<double> ErrorDiffs, TimeDiffs;
  double SoundTotal = 0, UnsoundTotal = 0;
  double ExtractTotal = 0;
  uint64_t ExtractRows = 0;
  size_t Improved = 0, Completed = 0;
  size_t SoundWins = 0, UnsoundWins = 0, Ties = 0;

  for (const Benchmark &Bench : Suite) {
    HerbieOptions SoundOpts = Base;
    SoundOpts.Sound = true;
    HerbieResult Sound = improveExpression(Bench, SoundOpts);

    HerbieOptions UnsoundOpts = Base;
    UnsoundOpts.Sound = false;
    HerbieResult Unsound = improveExpression(Bench, UnsoundOpts);

    if (!Sound.Ok || !Unsound.Ok) {
      std::printf("%-24s  skipped (%s)\n", Bench.Name.c_str(),
                  (Sound.Ok ? Unsound.FailureReason : Sound.FailureReason)
                      .c_str());
      continue;
    }
    std::printf("%-24s %9.2f %9.2f %9.2f %8.2fs %8.2fs\n",
                Bench.Name.c_str(), Sound.InitialErrorBits,
                Sound.FinalErrorBits, Unsound.FinalErrorBits, Sound.Seconds,
                Unsound.Seconds);
    std::fflush(stdout);

    double ErrorDiff = Unsound.FinalErrorBits - Sound.FinalErrorBits;
    ErrorDiffs.push_back(ErrorDiff);
    TimeDiffs.push_back(Unsound.Seconds - Sound.Seconds);
    SoundTotal += Sound.Seconds;
    UnsoundTotal += Unsound.Seconds;
    ExtractTotal += Sound.ExtractSeconds + Unsound.ExtractSeconds;
    ExtractRows += Sound.ExtractRowsConsidered + Unsound.ExtractRowsConsidered;
    ++Completed;
    if (Sound.FinalErrorBits < Sound.InitialErrorBits ||
        Unsound.FinalErrorBits < Unsound.InitialErrorBits)
      ++Improved;
    if (ErrorDiff > 0.1)
      ++SoundWins;
    else if (ErrorDiff < -0.1)
      ++UnsoundWins;
    else
      ++Ties;
  }

  printHistogram("Fig. 11: histogram of (unsound - sound) average bits of "
                 "error (positive = sound more accurate)",
                 ErrorDiffs, 4.0, "bits");
  printHistogram("Fig. 12: histogram of (unsound - sound) runtime "
                 "(positive = sound faster)",
                 TimeDiffs, 0.25, "sec");

  std::printf("\nSummary (paper: sound better on 104, unsound on 135; "
              "sound pipeline faster overall, 73.91 vs 81.91 minutes):\n");
  std::printf("  sound more accurate on %zu, unsound on %zu, ties %zu\n",
              SoundWins, UnsoundWins, Ties);
  std::printf("  total time: sound %.1fs, unsound %.1fs (candidate "
              "selection %.2fs, %llu cost-fixpoint row visits)\n",
              SoundTotal, UnsoundTotal, ExtractTotal,
              static_cast<unsigned long long>(ExtractRows));

  // Machine-readable trajectory record (one JSON object per line).
  std::printf("{\"bench\": \"herbie\", \"benchmarks\": %zu, \"improved\": "
              "%zu, \"sound_s\": %.3f, \"unsound_s\": %.3f, \"extract_s\": "
              "%.4f, \"extract_rows\": %llu}\n",
              Completed, Improved, SoundTotal, UnsoundTotal, ExtractTotal,
              static_cast<unsigned long long>(ExtractRows));
  return 0;
}
