//===- bench/bench_math.cpp - Fig. 7: math micro-benchmark --------------------===//
//
// Part of egglog-cpp. Regenerates Fig. 7 of the paper: grow an e-graph
// from the math-suite seed terms under the BackOff scheduler with three
// systems —
//   egg       the classic e-graph with backtracking e-matching,
//   egglogNI  the egglog engine with semi-naïve evaluation disabled,
//   egglog    the full egglog engine —
// and report e-nodes versus cumulative time per iteration, plus the §5.3
// headline speedups at the final iteration.
//
// Usage: bench_math [iterations] [node_limit] [--full-rebuild]
//                   [--threads N]
//
//===----------------------------------------------------------------------===//

#include "MathSuite.h"

#include "core/Frontend.h"
#include "egraph/Runner.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace egglog;

namespace {

struct Series {
  std::vector<size_t> ENodes;
  std::vector<double> CumulativeSeconds;
  /// Total seconds spent in the match phase across all iterations
  /// (includes the warm-up pre-pass when running multi-threaded).
  double SearchSeconds = 0;
  /// Total seconds spent in the apply phase across all iterations.
  double ApplySeconds = 0;
  /// Read-only staging share of ApplySeconds (multi-threaded egglog only;
  /// always 0 for the serial systems and the egg baseline).
  double ApplyStageSeconds = 0;
  /// Total seconds spent in the rebuild phase across all iterations.
  double RebuildSeconds = 0;
  /// Read-only catch-up/gather share of RebuildSeconds (multi-threaded
  /// egglog only).
  double RebuildGatherSeconds = 0;
  /// Rebuild seconds per reported iteration (merge-heavy late iterations
  /// are where incremental rebuilding pays off; the JSON keeps the tail).
  std::vector<double> RebuildPerIteration;
};

/// Runs the classic egg-style baseline.
Series runEgg(unsigned Iterations, size_t NodeLimit) {
  classic::EGraphClassic G;
  classic::Runner R(G);
  for (const bench::MathRule &Rule : bench::mathRules()) {
    bool Ok = R.addRewrite(Rule.Name, Rule.Lhs, Rule.Rhs);
    if (!Ok) {
      std::fprintf(stderr, "bad rewrite %s\n", Rule.Name);
      std::exit(1);
    }
  }
  for (const char *Term : bench::mathSeedTerms()) {
    std::vector<std::string> Vars;
    auto P = classic::parsePattern(G, Term, Vars);
    classic::Subst Empty;
    classic::instantiate(G, *P, Empty);
  }
  classic::RunnerOptions Opts;
  Opts.Iterations = Iterations;
  Opts.UseBackoff = true;
  Opts.NodeLimit = NodeLimit;
  classic::RunnerReport Report = R.run(Opts);

  Series Result;
  double Cumulative = 0;
  for (const classic::RunnerIteration &It : Report.Iterations) {
    Cumulative += It.SearchSeconds + It.ApplySeconds + It.RebuildSeconds;
    Result.SearchSeconds += It.SearchSeconds;
    Result.ApplySeconds += It.ApplySeconds;
    Result.RebuildSeconds += It.RebuildSeconds;
    Result.RebuildPerIteration.push_back(It.RebuildSeconds);
    Result.ENodes.push_back(It.ENodes);
    Result.CumulativeSeconds.push_back(Cumulative);
  }
  return Result;
}

/// Counts e-nodes on the egglog side: live tuples of the Math
/// constructors.
size_t egglogENodes(Frontend &F) {
  size_t Total = 0;
  for (const char *Name : {"Num", "Sym", "Add", "Sub", "Mul", "Pow"}) {
    FunctionId Id;
    if (F.graph().lookupFunctionName(Name, Id))
      Total += F.graph().functionSize(Id);
  }
  return Total;
}

/// --full-rebuild: run the egglog systems with the legacy full-sweep
/// rebuild (ablation; lets one binary produce both trajectories).
bool FullRebuildFlag = false;

/// --threads N: match-phase concurrency for the egglog systems.
unsigned ThreadsFlag = 1;

/// Runs the egglog engine (incremental or not).
Series runEgglog(bool SemiNaive, unsigned Iterations, size_t NodeLimit) {
  Frontend F;
  F.graph().setFullRebuild(FullRebuildFlag);
  F.engine().setThreads(ThreadsFlag);
  if (!F.execute(bench::mathRulesEgglog()) ||
      !F.execute(bench::mathSeedsEgglog())) {
    std::fprintf(stderr, "egglog setup failed: %s\n", F.error().c_str());
    std::exit(1);
  }
  Series Result;
  double Cumulative = 0;
  RunOptions Opts;
  Opts.Iterations = 1;
  Opts.SemiNaive = SemiNaive;
  Opts.UseBackoff = true;
  for (unsigned Iter = 0; Iter < Iterations; ++Iter) {
    Timer Step;
    RunReport Report = F.engine().run(Opts);
    Cumulative += Step.seconds();
    double StepRebuild = 0;
    for (const IterationStats &Stats : Report.Iterations) {
      Result.SearchSeconds += Stats.SearchSeconds;
      Result.ApplySeconds += Stats.ApplySeconds;
      Result.ApplyStageSeconds += Stats.ApplyStageSeconds;
      Result.RebuildGatherSeconds += Stats.RebuildGatherSeconds;
      StepRebuild += Stats.RebuildSeconds;
    }
    Result.RebuildSeconds += StepRebuild;
    Result.RebuildPerIteration.push_back(StepRebuild);
    Result.ENodes.push_back(egglogENodes(F));
    Result.CumulativeSeconds.push_back(Cumulative);
    if (Report.Saturated || egglogENodes(F) > NodeLimit)
      break;
  }
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--full-rebuild") {
      FullRebuildFlag = true;
    } else if (std::string(argv[I]) == "--threads") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing value for --threads\n");
        return 1;
      }
      ThreadsFlag = std::max(1, std::atoi(argv[++I]));
    } else {
      Positional.push_back(argv[I]);
    }
  }
  unsigned Iterations = Positional.size() > 0 ? std::atoi(Positional[0]) : 30;
  size_t NodeLimit =
      Positional.size() > 1 ? std::atoll(Positional[1]) : 400000;

  std::printf("=== Fig. 7: math micro-benchmark (egg math suite, "
              "BackOff scheduler, %u iterations%s) ===\n",
              Iterations, FullRebuildFlag ? ", full-sweep rebuild" : "");

  Series Egg = runEgg(Iterations, NodeLimit);
  Series NI = runEgglog(/*SemiNaive=*/false, Iterations, NodeLimit);
  Series Full = runEgglog(/*SemiNaive=*/true, Iterations, NodeLimit);

  std::printf("%-5s  %12s %12s  %12s %12s  %12s %12s\n", "iter", "egg-nodes",
              "egg-time", "NI-nodes", "NI-time", "egglog-nodes",
              "egglog-time");
  size_t Rows =
      std::max(Egg.ENodes.size(),
               std::max(NI.ENodes.size(), Full.ENodes.size()));
  for (size_t I = 0; I < Rows; ++I) {
    auto Cell = [&](const Series &S, bool Time) -> std::string {
      if (I >= S.ENodes.size())
        return "-";
      char Buffer[64];
      if (Time)
        std::snprintf(Buffer, sizeof(Buffer), "%.4f",
                      S.CumulativeSeconds[I]);
      else
        std::snprintf(Buffer, sizeof(Buffer), "%zu", S.ENodes[I]);
      return Buffer;
    };
    std::printf("%-5zu  %12s %12s  %12s %12s  %12s %12s\n", I + 1,
                Cell(Egg, false).c_str(), Cell(Egg, true).c_str(),
                Cell(NI, false).c_str(), Cell(NI, true).c_str(),
                Cell(Full, false).c_str(), Cell(Full, true).c_str());
  }

  // §5.3 headline numbers: time ratios at the last common iteration.
  size_t Last = std::min(
      {Egg.ENodes.size(), NI.ENodes.size(), Full.ENodes.size()});
  if (Last > 0) {
    double EggT = Egg.CumulativeSeconds[Last - 1];
    double NIT = NI.CumulativeSeconds[Last - 1];
    double FullT = Full.CumulativeSeconds[Last - 1];
    std::printf("\nSummary at iteration %zu (paper: egglogNI 3.34x, egglog "
                "9.27x over egg):\n",
                Last);
    std::printf("  egg     %8.4fs  %8zu e-nodes\n", EggT,
                Egg.ENodes[Last - 1]);
    std::printf("  egglogNI%8.4fs  %8zu e-nodes  speedup %.2fx\n", NIT,
                NI.ENodes[Last - 1], EggT / NIT);
    std::printf("  egglog  %8.4fs  %8zu e-nodes  speedup %.2fx\n", FullT,
                Full.ENodes[Last - 1], EggT / FullT);
  }

  // Machine-readable trajectory records (one JSON object per line).
  // rebuild_tail_s sums the last 10 iterations — the merge-heavy stretch
  // where worklist-driven rebuilding should beat the full sweep.
  auto EmitJson = [](const char *Bench, const char *System, const Series &S,
                     unsigned Threads) {
    if (S.ENodes.empty())
      return;
    double RebuildTail = 0;
    size_t Tail = S.RebuildPerIteration.size() > 10
                      ? S.RebuildPerIteration.size() - 10
                      : 0;
    for (size_t I = Tail; I < S.RebuildPerIteration.size(); ++I)
      RebuildTail += S.RebuildPerIteration[I];
    std::printf("{\"bench\": \"%s\", \"system\": \"%s\", \"iterations\": "
                "%zu, \"enodes\": %zu, \"threads\": %u, \"search_s\": %.6f, "
                "\"match_s\": %.6f, \"apply_s\": %.6f, \"apply_stage_s\": "
                "%.6f, \"rebuild_s\": %.6f, \"rebuild_gather_s\": %.6f, "
                "\"rebuild_tail_s\": %.6f, \"total_s\": %.6f}\n",
                Bench, System, S.ENodes.size(), S.ENodes.back(), Threads,
                S.SearchSeconds, S.SearchSeconds, S.ApplySeconds,
                S.ApplyStageSeconds, S.RebuildSeconds, S.RebuildGatherSeconds,
                RebuildTail, S.CumulativeSeconds.back());
  };
  // The egg baseline is always serial; only the egglog systems honor
  // --threads, and their records must say so or the trajectory would
  // attribute thread counts to runs that never used them.
  EmitJson("math", "egg", Egg, 1);
  EmitJson("math", "egglogNI", NI, ThreadsFlag);
  EmitJson("math", "egglog", Full, ThreadsFlag);
  return 0;
}
