//===- bench/bench_pointsto.cpp - Fig. 8: Steensgaard benchmark ---------------===//
//
// Part of egglog-cpp. Regenerates Fig. 8 of the paper: run the five
// Steensgaard points-to systems over the 30-program suite (named after the
// postgresql-9.5.2 binaries) with a timeout, and report per-program
// runtimes plus the §6.1 headline speedups (egglog vs patched, cclyzer++,
// and egglogNI).
//
// Usage: bench_pointsto [scale] [timeout_seconds] [threads]
//   scale    multiplies every program's instruction count (default 0.15 so
//            the whole figure regenerates in minutes; use 1.0 for the
//            paper-sized suite)
//   threads  match-phase concurrency for the egglog systems (default 1;
//            the JSON record carries it so the perf trajectory can
//            attribute wins per phase and per thread count)
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analyses.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace egglog::pointsto;

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  double Timeout = argc > 2 ? std::atof(argv[2]) : 10.0;
  int ThreadsArg = argc > 3 ? std::atoi(argv[3]) : 1;
  unsigned Threads = ThreadsArg < 1 ? 1u : static_cast<unsigned>(ThreadsArg);

  std::vector<Program> Suite = postgresSuite(Scale);
  const System Systems[] = {System::EqRelEncoding, System::Patched,
                            System::CClyzer, System::EgglogNI,
                            System::Egglog};

  std::printf("=== Fig. 8: Steensgaard points-to (scale %.2f, timeout "
              "%.0fs, %u thread%s) ===\n",
              Scale, Timeout, Threads, Threads == 1 ? "" : "s");
  std::printf("%-22s %8s  %10s %10s %10s %10s %10s\n", "program", "insns",
              "eqrel", "patched", "cclyzer++", "egglogNI", "egglog");

  // Accumulators for the speedup summary (only programs every compared
  // system finished).
  double SumPatched = 0, SumCClyzer = 0, SumNI = 0, SumEgglog = 0;
  size_t ComparablePrograms = 0;
  size_t Timeouts[5] = {0, 0, 0, 0, 0};
  // Totals over every program (timeouts included at their measured cost),
  // for the machine-readable trajectory record.
  double EgglogTotal = 0, EgglogSearch = 0, EgglogApply = 0,
         EgglogApplyStage = 0, EgglogRebuild = 0, EgglogRebuildGather = 0;

  for (const Program &P : Suite) {
    std::printf("%-22s %8zu", P.Name.c_str(), P.numInstructions());
    double Times[5];
    bool TimedOut[5];
    for (int S = 0; S < 5; ++S) {
      AnalysisResult Result = runPointsTo(P, Systems[S], Timeout, Threads);
      Times[S] = Result.Seconds;
      TimedOut[S] = Result.TimedOut;
      if (Systems[S] == System::Egglog) {
        EgglogTotal += Result.Seconds;
        EgglogSearch += Result.SearchSeconds;
        EgglogApply += Result.ApplySeconds;
        EgglogApplyStage += Result.ApplyStageSeconds;
        EgglogRebuild += Result.RebuildSeconds;
        EgglogRebuildGather += Result.RebuildGatherSeconds;
      }
      if (Result.TimedOut) {
        ++Timeouts[S];
        std::printf(" %10s", "TIMEOUT");
      } else {
        std::printf(" %9.3fs", Result.Seconds);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
    if (!TimedOut[1] && !TimedOut[2] && !TimedOut[3] && !TimedOut[4]) {
      ++ComparablePrograms;
      SumPatched += Times[1];
      SumCClyzer += Times[2];
      SumNI += Times[3];
      SumEgglog += Times[4];
    }
  }

  std::printf("\nTimeouts: eqrel %zu/30, patched %zu/30, cclyzer++ %zu/30, "
              "egglogNI %zu/30, egglog %zu/30\n",
              Timeouts[0], Timeouts[1], Timeouts[2], Timeouts[3],
              Timeouts[4]);
  std::printf("(paper: eqrel times out on all but one; cclyzer++ on the "
              "three largest)\n");
  if (ComparablePrograms > 0 && SumEgglog > 0) {
    std::printf("\nSummary over %zu programs all four finished (paper: "
                "egglog 4.96x over patched, 1.94x over cclyzer++, 1.59x "
                "over egglogNI):\n",
                ComparablePrograms);
    std::printf("  egglog vs patched   %.2fx\n", SumPatched / SumEgglog);
    std::printf("  egglog vs cclyzer++ %.2fx\n", SumCClyzer / SumEgglog);
    std::printf("  egglog vs egglogNI  %.2fx\n", SumNI / SumEgglog);
  }

  // Machine-readable trajectory record (one JSON object per line): the
  // full egglog system summed over every program in the suite. match_s
  // duplicates search_s under the phase-separated pipeline's name so the
  // trajectory can attribute wins per phase; threads records the match
  // concurrency the record was taken at.
  std::printf("{\"bench\": \"pointsto\", \"system\": \"egglog\", "
              "\"programs\": %zu, \"timeouts\": %zu, \"threads\": %u, "
              "\"search_s\": %.6f, \"match_s\": %.6f, \"apply_s\": %.6f, "
              "\"apply_stage_s\": %.6f, \"rebuild_s\": %.6f, "
              "\"rebuild_gather_s\": %.6f, \"total_s\": %.6f}\n",
              Suite.size(), Timeouts[4], Threads, EgglogSearch, EgglogSearch,
              EgglogApply, EgglogApplyStage, EgglogRebuild,
              EgglogRebuildGather, EgglogTotal);
  return 0;
}
