//===- bench/bench_pointsto.cpp - Fig. 8: Steensgaard benchmark ---------------===//
//
// Part of egglog-cpp. Regenerates Fig. 8 of the paper: run the five
// Steensgaard points-to systems over the 30-program suite (named after the
// postgresql-9.5.2 binaries) with a timeout, and report per-program
// runtimes plus the §6.1 headline speedups (egglog vs patched, cclyzer++,
// and egglogNI).
//
// Usage: bench_pointsto [--scale S] [--timeout T] [--threads N]
//        bench_pointsto [scale] [timeout_seconds] [threads]   (legacy)
//   --scale    multiplies every program's instruction count (default 0.15
//              so the whole figure regenerates in minutes; 1.0 is the
//              paper-sized suite; larger values probe the columnar
//              engine's scaling headroom)
//   --threads  match-phase concurrency for the egglog systems (default 1;
//              the JSON record carries it so the perf trajectory can
//              attribute wins per phase and per thread count)
//
// The JSON record also reports max_rss_mb (peak resident set of the whole
// process) and content_hash (XOR of the egglog system's per-program
// liveContentHash), so bench artifacts from different commits can certify
// both the memory claim and that they computed the same fixpoints.
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analyses.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace egglog::pointsto;

namespace {

/// Peak resident set size of this process in megabytes, or 0 where
/// getrusage is unavailable.
double maxRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<double>(Usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(Usage.ru_maxrss) / 1024.0; // Linux: KiB
#endif
#else
  return 0;
#endif
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.15, Timeout = 10.0;
  int ThreadsArg = 1;
  // Flag form first; bare positional arguments keep their legacy meaning
  // (scale, timeout, threads in order).
  int Positional = 0;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--scale") == 0 && I + 1 < argc) {
      Scale = std::atof(argv[++I]);
    } else if (std::strcmp(Arg, "--timeout") == 0 && I + 1 < argc) {
      Timeout = std::atof(argv[++I]);
    } else if (std::strcmp(Arg, "--threads") == 0 && I + 1 < argc) {
      ThreadsArg = std::atoi(argv[++I]);
    } else if (Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", Arg);
      return 1;
    } else {
      switch (Positional++) {
      case 0:
        Scale = std::atof(Arg);
        break;
      case 1:
        Timeout = std::atof(Arg);
        break;
      case 2:
        ThreadsArg = std::atoi(Arg);
        break;
      default:
        std::fprintf(stderr, "unexpected argument %s\n", Arg);
        return 1;
      }
    }
  }
  unsigned Threads = ThreadsArg < 1 ? 1u : static_cast<unsigned>(ThreadsArg);

  std::vector<Program> Suite = postgresSuite(Scale);
  const System Systems[] = {System::EqRelEncoding, System::Patched,
                            System::CClyzer, System::EgglogNI,
                            System::Egglog};

  std::printf("=== Fig. 8: Steensgaard points-to (scale %.2f, timeout "
              "%.0fs, %u thread%s) ===\n",
              Scale, Timeout, Threads, Threads == 1 ? "" : "s");
  std::printf("%-22s %8s  %10s %10s %10s %10s %10s\n", "program", "insns",
              "eqrel", "patched", "cclyzer++", "egglogNI", "egglog");

  // Accumulators for the speedup summary (only programs every compared
  // system finished).
  double SumPatched = 0, SumCClyzer = 0, SumNI = 0, SumEgglog = 0;
  size_t ComparablePrograms = 0;
  size_t Timeouts[5] = {0, 0, 0, 0, 0};
  // Totals over every program (timeouts included at their measured cost),
  // for the machine-readable trajectory record.
  double EgglogTotal = 0, EgglogSearch = 0, EgglogApply = 0,
         EgglogApplyStage = 0, EgglogRebuild = 0, EgglogRebuildGather = 0;
  uint64_t ContentHash = 0;

  for (const Program &P : Suite) {
    std::printf("%-22s %8zu", P.Name.c_str(), P.numInstructions());
    double Times[5];
    bool TimedOut[5];
    for (int S = 0; S < 5; ++S) {
      AnalysisResult Result = runPointsTo(P, Systems[S], Timeout, Threads);
      Times[S] = Result.Seconds;
      TimedOut[S] = Result.TimedOut;
      if (Systems[S] == System::Egglog) {
        EgglogTotal += Result.Seconds;
        EgglogSearch += Result.SearchSeconds;
        EgglogApply += Result.ApplySeconds;
        EgglogApplyStage += Result.ApplyStageSeconds;
        EgglogRebuild += Result.RebuildSeconds;
        EgglogRebuildGather += Result.RebuildGatherSeconds;
        ContentHash ^= Result.ContentHash;
      }
      if (Result.TimedOut) {
        ++Timeouts[S];
        std::printf(" %10s", "TIMEOUT");
      } else {
        std::printf(" %9.3fs", Result.Seconds);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
    if (!TimedOut[1] && !TimedOut[2] && !TimedOut[3] && !TimedOut[4]) {
      ++ComparablePrograms;
      SumPatched += Times[1];
      SumCClyzer += Times[2];
      SumNI += Times[3];
      SumEgglog += Times[4];
    }
  }

  std::printf("\nTimeouts: eqrel %zu/30, patched %zu/30, cclyzer++ %zu/30, "
              "egglogNI %zu/30, egglog %zu/30\n",
              Timeouts[0], Timeouts[1], Timeouts[2], Timeouts[3],
              Timeouts[4]);
  std::printf("(paper: eqrel times out on all but one; cclyzer++ on the "
              "three largest)\n");
  if (ComparablePrograms > 0 && SumEgglog > 0) {
    std::printf("\nSummary over %zu programs all four finished (paper: "
                "egglog 4.96x over patched, 1.94x over cclyzer++, 1.59x "
                "over egglogNI):\n",
                ComparablePrograms);
    std::printf("  egglog vs patched   %.2fx\n", SumPatched / SumEgglog);
    std::printf("  egglog vs cclyzer++ %.2fx\n", SumCClyzer / SumEgglog);
    std::printf("  egglog vs egglogNI  %.2fx\n", SumNI / SumEgglog);
  }

  // Machine-readable trajectory record (one JSON object per line): the
  // full egglog system summed over every program in the suite. match_s
  // duplicates search_s under the phase-separated pipeline's name so the
  // trajectory can attribute wins per phase; threads records the match
  // concurrency the record was taken at. max_rss_mb is the process peak
  // RSS (dominated by the largest program's tables at the largest scale),
  // and content_hash folds every program's post-run liveContentHash so
  // records at the same (scale, suite) are directly comparable across
  // engine versions.
  std::printf("{\"bench\": \"pointsto\", \"system\": \"egglog\", "
              "\"programs\": %zu, \"timeouts\": %zu, \"threads\": %u, "
              "\"scale\": %.3f, "
              "\"search_s\": %.6f, \"match_s\": %.6f, \"apply_s\": %.6f, "
              "\"apply_stage_s\": %.6f, \"rebuild_s\": %.6f, "
              "\"rebuild_gather_s\": %.6f, \"total_s\": %.6f, "
              "\"max_rss_mb\": %.1f, \"content_hash\": \"%" PRIx64 "\"}\n",
              Suite.size(), Timeouts[4], Threads, Scale, EgglogSearch,
              EgglogSearch, EgglogApply, EgglogApplyStage, EgglogRebuild,
              EgglogRebuildGather, EgglogTotal, maxRssMb(), ContentHash);
  return 0;
}
