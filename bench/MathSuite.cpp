//===- bench/MathSuite.cpp - Shared Fig. 7 workload ---------------------------===//
//
// Part of egglog-cpp. See MathSuite.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "MathSuite.h"

#include "support/SExpr.h"

using namespace egglog;
using namespace egglog::bench;

namespace {

/// Maps the egg operator spellings onto egglog constructor names.
std::string egglogOp(const std::string &Op) {
  if (Op == "+")
    return "Add";
  if (Op == "-")
    return "Sub";
  if (Op == "*")
    return "Mul";
  if (Op == "pow")
    return "Pow";
  return Op;
}

/// Renders a pattern s-expression in egglog syntax: ?v becomes v, bare
/// object-language symbols become (Sym "name"), (Num k) is kept.
std::string renderEgglog(const SExpr &Node) {
  if (Node.isSymbol()) {
    const std::string &Name = Node.Text;
    if (!Name.empty() && Name[0] == '?')
      return Name.substr(1);
    return "(Sym \"" + Name + "\")";
  }
  if (Node.isInteger())
    return std::to_string(Node.IntValue);
  if (Node.isCall("Num") && Node.size() == 2)
    return "(Num " + std::to_string(Node[1].IntValue) + ")";
  std::string Result = "(" + egglogOp(Node[0].Text);
  for (size_t I = 1; I < Node.size(); ++I)
    Result += " " + renderEgglog(Node[I]);
  return Result + ")";
}

std::string renderEgglog(const char *Source) {
  ParseResult Parsed = parseSExprs(Source);
  return renderEgglog(Parsed.Forms[0]);
}

} // namespace

std::string egglog::bench::mathRulesEgglog() {
  std::string Program = R"(
    (datatype Math
      (Num i64)
      (Sym String)
      (Add Math Math)
      (Sub Math Math)
      (Mul Math Math)
      (Pow Math Math))
  )";
  for (const MathRule &Rule : mathRules()) {
    Program += "(rewrite " + renderEgglog(Rule.Lhs) + " " +
               renderEgglog(Rule.Rhs) + ")\n";
  }
  return Program;
}

std::string egglog::bench::mathSeedsEgglog() {
  std::string Program;
  int Index = 0;
  for (const char *Term : mathSeedTerms()) {
    Program +=
        "(define t" + std::to_string(Index++) + " " + renderEgglog(Term) +
        ")\n";
  }
  return Program;
}
