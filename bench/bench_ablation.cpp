//===- bench/bench_ablation.cpp - Design-choice ablations ---------------------===//
//
// Part of egglog-cpp. Google-benchmark microbenchmarks for the design
// choices DESIGN.md calls out:
//   * worst-case-optimal generic join vs naive nested-loop join (§5.1),
//   * semi-naïve vs naïve evaluation (§4.3),
//   * rebuilding cost as unions accumulate (§5.1),
//   * the core data structures (table, union-find).
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "core/Frontend.h"
#include "core/Query.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <string_view>
#include <vector>

using namespace egglog;

namespace {

/// --full-rebuild: force every EGraph in this process onto the legacy
/// full-sweep rebuild, so CI can record incremental-vs-sweep trajectories
/// as two artifacts of the same binary.
bool FullRebuildFlag = false;

/// --threads N: match-phase concurrency for the engine-level benchmarks
/// and the single-line JSON phase record emitted after the run.
unsigned ThreadsFlag = 1;

/// Builds an edge relation shaped like a sparse random graph.
void populateEdges(EGraph &G, FunctionId Edge, unsigned Nodes,
                   unsigned Edges, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int64_t> Node(0, Nodes - 1);
  for (unsigned I = 0; I < Edges; ++I) {
    Value Keys[2] = {G.mkI64(Node(Rng)), G.mkI64(Node(Rng))};
    G.setValue(Edge, Keys, G.mkUnit());
  }
}

Query triangleQuery(EGraph &G, FunctionId Edge) {
  Query Q;
  Q.NumVars = 3;
  Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort, SortTable::I64Sort};
  auto Atom = [&](uint32_t A, uint32_t B) {
    QueryAtom Result;
    Result.Func = Edge;
    Result.Terms = {VarOrConst::makeVar(A), VarOrConst::makeVar(B),
                    VarOrConst::makeConst(G.mkUnit())};
    return Result;
  };
  Q.Atoms = {Atom(0, 1), Atom(1, 2), Atom(2, 0)};
  return Q;
}

void BM_TriangleJoin(benchmark::State &State, bool GenericJoin) {
  unsigned Nodes = static_cast<unsigned>(State.range(0));
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "edge";
  Decl.ArgSorts = {SortTable::I64Sort, SortTable::I64Sort};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId Edge = G.declareFunction(std::move(Decl));
  populateEdges(G, Edge, Nodes, Nodes * 8, 42);
  Query Q = triangleQuery(G, Edge);

  for (auto _ : State) {
    size_t Count = 0;
    executeQuery(
        G, Q, {}, 0, [&](const std::vector<Value> &) { ++Count; },
        GenericJoin);
    benchmark::DoNotOptimize(Count);
  }
}

void BM_GenericJoinTriangle(benchmark::State &State) {
  BM_TriangleJoin(State, /*GenericJoin=*/true);
}
void BM_NestedLoopTriangle(benchmark::State &State) {
  BM_TriangleJoin(State, /*GenericJoin=*/false);
}

/// Transitive closure of a long chain: the semi-naïve sweet spot.
void BM_TransitiveClosure(benchmark::State &State, bool SemiNaive) {
  unsigned Length = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    Frontend F;
    F.graph().setFullRebuild(FullRebuildFlag);
    F.engine().setThreads(ThreadsFlag);
    F.runOptions().SemiNaive = SemiNaive;
    std::string Program = R"(
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
    )";
    for (unsigned I = 0; I < Length; ++I)
      Program += "(edge " + std::to_string(I) + " " + std::to_string(I + 1) +
                 ")\n";
    Program += "(run)\n";
    bool Ok = F.execute(Program);
    if (!Ok)
      State.SkipWithError(F.error().c_str());
    benchmark::DoNotOptimize(Ok);
  }
}

void BM_SemiNaiveTC(benchmark::State &State) {
  BM_TransitiveClosure(State, /*SemiNaive=*/true);
}
void BM_NaiveTC(benchmark::State &State) {
  BM_TransitiveClosure(State, /*SemiNaive=*/false);
}

/// Rebuild cost: N terms f(x_i), then union \p Unions of the x_i pairwise
/// and rebuild. Unions == N/2 is a merge storm (the bulk-sweep fallback);
/// a small fixed count is the worklist-driven sweet spot, where the old
/// full sweep still paid O(N) per rebuild.
void BM_Rebuild(benchmark::State &State, unsigned Unions) {
  unsigned N = static_cast<unsigned>(State.range(0));
  if (Unions == 0)
    Unions = N / 2;
  for (auto _ : State) {
    State.PauseTiming();
    EGraph G;
    G.setFullRebuild(FullRebuildFlag);
    SortId S = G.declareSort("T");
    FunctionDecl Decl;
    Decl.Name = "f";
    Decl.ArgSorts = {S};
    Decl.OutSort = S;
    FunctionId F = G.declareFunction(std::move(Decl));
    std::vector<Value> Ids;
    for (unsigned I = 0; I < N; ++I)
      Ids.push_back(G.freshId(S));
    Value Out;
    for (unsigned I = 0; I < N; ++I)
      G.getOrCreate(F, &Ids[I], Out);
    for (unsigned I = 0; I + 1 < N && I / 2 < Unions; I += 2)
      G.unionValues(Ids[I], Ids[I + 1]);
    State.ResumeTiming();
    G.rebuild();
    benchmark::DoNotOptimize(G.liveTupleCount());
  }
}

void BM_RebuildAfterUnions(benchmark::State &State) {
  BM_Rebuild(State, /*Unions=*/0); // N/2: every id pair merged
}
void BM_RebuildSparseUnions(benchmark::State &State) {
  BM_Rebuild(State, /*Unions=*/8); // a handful of merges in a big database
}

void BM_TableInsertLookup(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    Table T(2);
    for (unsigned I = 0; I < N; ++I) {
      Value Keys[2] = {Value(2, I), Value(2, I * 7 % N)};
      T.insert(Keys, Value(2, I), 0);
    }
    size_t Hits = 0;
    for (unsigned I = 0; I < N; ++I) {
      Value Keys[2] = {Value(2, I), Value(2, I * 7 % N)};
      Hits += T.lookup(Keys).has_value();
    }
    benchmark::DoNotOptimize(Hits);
  }
}

void BM_UnionFind(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::mt19937 Rng(7);
  for (auto _ : State) {
    UnionFind UF;
    for (unsigned I = 0; I < N; ++I)
      UF.makeSet();
    std::uniform_int_distribution<uint64_t> Pick(0, N - 1);
    for (unsigned I = 0; I < N; ++I)
      UF.unite(Pick(Rng), Pick(Rng));
    uint64_t Sum = 0;
    for (unsigned I = 0; I < N; ++I)
      Sum += UF.find(I);
    benchmark::DoNotOptimize(Sum);
  }
}

} // namespace

BENCHMARK(BM_GenericJoinTriangle)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_NestedLoopTriangle)->Arg(64)->Arg(256);
BENCHMARK(BM_SemiNaiveTC)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_NaiveTC)->Arg(32)->Arg(64);
BENCHMARK(BM_RebuildAfterUnions)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RebuildSparseUnions)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TableInsertLookup)->Arg(1000)->Arg(100000);
BENCHMARK(BM_UnionFind)->Arg(1000)->Arg(100000);

namespace {

/// One single-line JSON phase record mirroring bench_math/bench_pointsto:
/// a dense transitive closure driven end to end at --threads N, with the
/// engine's per-phase split, so the perf trajectory can attribute the
/// match/apply cost even from the ablation artifact. On stderr, because
/// stdout may be carrying --benchmark_format=json output.
void emitPhaseRecord() {
  Frontend F;
  F.graph().setFullRebuild(FullRebuildFlag);
  F.engine().setThreads(ThreadsFlag);
  std::string Program = R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
  )";
  // A chain plus chords: quadratic path count, join-heavy matching.
  constexpr unsigned Length = 384;
  for (unsigned I = 0; I < Length; ++I) {
    Program += "(edge " + std::to_string(I) + " " + std::to_string(I + 1) +
               ")\n";
    if (I % 7 == 0)
      Program +=
          "(edge " + std::to_string(I) + " " + std::to_string(I / 2) + ")\n";
  }
  Program += "(run)\n";
  if (!F.execute(Program)) {
    std::fprintf(stderr, "phase record failed: %s\n", F.error().c_str());
    return;
  }
  const Frontend::PhaseTotals &T = F.phaseTotals();
  std::fprintf(stderr,
               "{\"bench\": \"ablation_tc\", \"system\": \"egglog\", "
               "\"iterations\": %zu, \"threads\": %u, \"match_s\": %.6f, "
               "\"apply_s\": %.6f, \"apply_stage_s\": %.6f, \"rebuild_s\": "
               "%.6f, \"rebuild_gather_s\": %.6f, \"total_s\": %.6f}\n",
               T.Iterations, ThreadsFlag, T.SearchSeconds, T.ApplySeconds,
               T.ApplyStageSeconds, T.RebuildSeconds, T.RebuildGatherSeconds,
               T.SearchSeconds + T.ApplySeconds + T.RebuildSeconds);
}

} // namespace

// BENCHMARK_MAIN(), plus the --full-rebuild / --threads ablation flags
// (consumed here; everything else is forwarded to Google Benchmark, e.g.
// --benchmark_format=json for the CI artifacts).
int main(int argc, char **argv) {
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--full-rebuild") {
      FullRebuildFlag = true;
      continue;
    }
    if (std::string_view(argv[I]) == "--threads") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing value for --threads\n");
        return 1;
      }
      int N = std::atoi(argv[++I]);
      ThreadsFlag = N < 1 ? 1u : static_cast<unsigned>(N);
      continue;
    }
    Args.push_back(argv[I]);
  }
  int ForwardedArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&ForwardedArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(ForwardedArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  emitPhaseRecord();
  benchmark::Shutdown();
  return 0;
}
