//===- bench/bench_governor.cpp - Resource-governor overhead ------------------===//
//
// Part of egglog-cpp. Measures the two claims behind the resource
// governor:
//
//   1. Steady-state checkpoint overhead: a transitive-closure workload
//      (heavy in the apply/rebuild loops that host the amortized
//      checkpoints) run with no limits versus with generous
//      (never-tripping) limits, so every checkpoint performs its full
//      poll. The delta must stay under ~2%. The math suite is recorded
//      too, but it saturates in milliseconds — closure is the stable
//      number.
//   2. Stop latency: a points-to-style transitive-closure workload under a
//      50ms wall-clock budget. The governor's row-granular checkpoints
//      must stop it with bounded overshoot, not at iteration granularity.
//
// The JSON record carries failpoints_compiled so the zero-cost-when-off
// claim of the fault-injection harness is checkable from the artifact
// (bench builds compile them out; test builds compile them in).
//
// Usage: bench_governor [closure_nodes] [timeout_ms]
//
//===----------------------------------------------------------------------===//

#include "MathSuite.h"

#include "core/Frontend.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace egglog;

namespace {

/// Arms every limit class high enough to never trip, so checkpoints do
/// maximal work (a full poll, never a short-circuit on anyLimitSet()).
void governGenerously(Frontend &F) {
  F.graph().governor().setTimeout(3600);
  F.graph().governor().setMaxLive(size_t(1) << 40);
  F.graph().governor().setMaxBytes(size_t(1) << 44);
}

/// Math-suite saturation time (milliseconds-scale; recorded for the
/// trajectory, too noisy to carry the overhead claim on its own).
double runMath(bool Governed, unsigned Iterations) {
  Frontend F;
  if (Governed)
    governGenerously(F);
  F.runOptions().UseBackoff = true;
  if (!F.execute(bench::mathRulesEgglog()) ||
      !F.execute(bench::mathSeedsEgglog())) {
    std::fprintf(stderr, "math setup failed: %s\n", F.error().c_str());
    std::exit(1);
  }
  Timer T;
  if (!F.execute("(run " + std::to_string(Iterations) + ")")) {
    std::fprintf(stderr, "math run failed: %s\n", F.error().c_str());
    std::exit(1);
  }
  return T.seconds();
}

/// Points-to-style workload: transitive closure over a dense edge set,
/// heavy in the apply and rebuild phases where the serial checkpoints sit.
void setupClosure(Frontend &F, int Nodes) {
  std::string Program = R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
  )";
  if (!F.execute(Program)) {
    std::fprintf(stderr, "closure setup failed: %s\n", F.error().c_str());
    std::exit(1);
  }
  std::string Seeds;
  for (int I = 0; I + 1 < Nodes; ++I)
    Seeds += "(edge " + std::to_string(I) + " " + std::to_string(I + 1) +
             ")\n";
  // A few long chords so the closure frontier stays wide.
  for (int I = 0; I < Nodes; I += 7)
    Seeds += "(edge " + std::to_string(I) + " " +
             std::to_string((I * 3 + 1) % Nodes) + ")\n";
  if (!F.execute(Seeds)) {
    std::fprintf(stderr, "closure seeds failed: %s\n", F.error().c_str());
    std::exit(1);
  }
}

/// Transitive closure run to its fixpoint — hundreds of milliseconds of
/// apply/rebuild rows, each behind a governor checkpoint.
double runClosure(bool Governed, int Nodes) {
  Frontend F;
  if (Governed)
    governGenerously(F);
  setupClosure(F, Nodes);
  Timer T;
  if (!F.execute("(run 10000)")) {
    std::fprintf(stderr, "closure run failed: %s\n", F.error().c_str());
    std::exit(1);
  }
  return T.seconds();
}

} // namespace

int main(int argc, char **argv) {
  int ClosureNodes = argc > 1 ? std::atoi(argv[1]) : 700;
  double TimeoutMs = argc > 2 ? std::atof(argv[2]) : 50.0;

  // Steady-state overhead: an untimed warm-up (the first run in the
  // process pays allocator and page-fault costs), then best-of-9 each
  // with the order alternated per rep so neither side inherits a warmer
  // heap systematically. Minima, not means: scheduler noise on shared
  // runners only ever adds time.
  runClosure(/*Governed=*/false, ClosureNodes);
  double Base = 1e100, Governed = 1e100;
  double MathBase = 1e100, MathGoverned = 1e100;
  std::vector<double> Ratios;
  for (int Rep = 0; Rep < 9; ++Rep) {
    double B, G;
    if (Rep % 2 == 0) {
      B = runClosure(/*Governed=*/false, ClosureNodes);
      G = runClosure(/*Governed=*/true, ClosureNodes);
    } else {
      G = runClosure(/*Governed=*/true, ClosureNodes);
      B = runClosure(/*Governed=*/false, ClosureNodes);
    }
    Base = std::min(Base, B);
    Governed = std::min(Governed, G);
    // Per-rep ratio: the two runs are adjacent in time, so slow drift
    // (frequency scaling, co-tenants) cancels inside each pair.
    if (B > 0)
      Ratios.push_back(G / B);
    MathBase = std::min(MathBase, runMath(/*Governed=*/false, 11));
    MathGoverned = std::min(MathGoverned, runMath(/*Governed=*/true, 11));
  }
  std::sort(Ratios.begin(), Ratios.end());
  double OverheadPct =
      Ratios.empty() ? 0 : (Ratios[Ratios.size() / 2] - 1.0) * 100.0;

  // Stop latency: a 50ms budget against a closure that runs far longer.
  Frontend F;
  setupClosure(F, 2500);
  F.graph().governor().setTimeout(TimeoutMs / 1000.0);
  Timer T;
  bool Stopped = !F.execute("(run 1000)");
  double ElapsedMs = T.seconds() * 1000.0;
  if (!Stopped)
    std::fprintf(stderr,
                 "warning: closure finished before the %.0fms budget; "
                 "overshoot is not meaningful\n",
                 TimeoutMs);

  int FailpointsCompiled =
#if EGGLOG_FAILPOINTS_ENABLED
      1;
#else
      0;
#endif

  std::printf("=== Resource governor (closure n=%d, timeout %.0fms) ===\n",
              ClosureNodes, TimeoutMs);
  std::printf("closure fixpoint:  base %.3fs, governed %.3fs "
              "(median pair ratio %+.2f%%)\n",
              Base, Governed, OverheadPct);
  std::printf("math saturation:   base %.3fs, governed %.3fs\n", MathBase,
              MathGoverned);
  std::printf("timeout stop:      %.1fms elapsed for a %.0fms budget "
              "(overshoot %+.1fms)\n",
              ElapsedMs, TimeoutMs, ElapsedMs - TimeoutMs);
  std::printf("failpoints:        %s\n",
              FailpointsCompiled ? "compiled in" : "compiled out");

  std::printf("{\"bench\": \"governor\", \"failpoints_compiled\": %d, "
              "\"closure_base_s\": %.6f, \"closure_gov_s\": %.6f, "
              "\"overhead_pct\": %.3f, "
              "\"math_base_s\": %.6f, \"math_gov_s\": %.6f, "
              "\"timeout_target_ms\": %.1f, "
              "\"timeout_elapsed_ms\": %.1f, \"timeout_overshoot_ms\": "
              "%.1f, \"timeout_stopped\": %s}\n",
              FailpointsCompiled, Base, Governed, OverheadPct, MathBase,
              MathGoverned, TimeoutMs, ElapsedMs, ElapsedMs - TimeoutMs,
              Stopped ? "true" : "false");
  return 0;
}
