//===- bench/bench_snapshot.cpp - Snapshot persistence benchmark ----------===//
//
// Part of egglog-cpp. Measures the versioned snapshot subsystem on the
// Steensgaard points-to workload (the Fig. 8 native egglog encoding):
//
//   rerun_s   — cold start: load facts and saturate from scratch,
//   save_s    — serialize + crc + atomic-rename the saturated database,
//   bytes     — on-disk snapshot size,
//   load_s    — validate + stage + install into a fresh database,
//   warm_s    — re-declare the rules over the loaded copy and re-run
//               (semi-naive finds nothing new),
//   speedup   — rerun_s / (load_s + warm_s), the warm-start win.
//
// The warm-started database must reproduce the cold run's liveContentHash
// exactly; the benchmark fails loudly otherwise.
//
// Usage: bench_snapshot [scale] [threads]
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "core/Snapshot.h"
#include "pointsto/ProgramGenerator.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace egglog;
using namespace egglog::pointsto;

namespace {

/// The Fig. 8 native encoding, split so the rules can be re-declared over
/// a loaded snapshot (declarations travel with the snapshot, rules are
/// engine state and do not).
const char *PointsToSchema = R"(
  (sort Obj)
  (relation allocR (i64 i64))
  (relation copyR (i64 i64))
  (relation loadR (i64 i64))
  (relation storeR (i64 i64))
  (relation gepR (i64 i64 i64))
  (relation fieldAllocR (i64 i64 i64))
  (function objOf (i64) Obj)
  (function vpt (i64) Obj)
  (function contents (Obj) Obj)
)";

const char *PointsToRules = R"(
  (rule ((allocR v a)) ((union (vpt v) (objOf a))))
  (rule ((copyR d s)) ((union (vpt d) (vpt s))))
  (rule ((loadR d s)) ((union (vpt d) (contents (vpt s)))))
  (rule ((storeR d s)) ((union (contents (vpt d)) (vpt s))))
  (rule ((gepR d b f) (fieldAllocR a f fa) (= (vpt b) (objOf a)))
        ((union (vpt d) (objOf fa))))
  (rule ((fieldAllocR a f fa) (fieldAllocR b f fb)
         (= (objOf a) (objOf b)))
        ((union (objOf fa) (objOf fb))))
)";

void loadFacts(Frontend &F, const Program &P) {
  EGraph &G = F.graph();
  auto Fid = [&](const char *Name) {
    FunctionId Id = 0;
    if (!G.lookupFunctionName(Name, Id)) {
      std::fprintf(stderr, "bench_snapshot: missing function %s\n", Name);
      std::exit(3);
    }
    return Id;
  };
  FunctionId AllocR = Fid("allocR"), CopyR = Fid("copyR"),
             LoadR = Fid("loadR"), StoreR = Fid("storeR"),
             GepR = Fid("gepR"), FieldAllocR = Fid("fieldAllocR");
  auto Fact2 = [&](FunctionId Rel, uint32_t A, uint32_t B) {
    Value Keys[2] = {G.mkI64(A), G.mkI64(B)};
    G.setValue(Rel, Keys, G.mkUnit());
  };
  for (auto [V, A] : P.Allocs)
    Fact2(AllocR, V, A);
  for (auto [D, S] : P.Copies)
    Fact2(CopyR, D, S);
  for (auto [D, S] : P.Loads)
    Fact2(LoadR, D, S);
  for (auto [D, S] : P.Stores)
    Fact2(StoreR, D, S);
  for (auto [D, B, Fld] : P.Geps) {
    Value Keys[3] = {G.mkI64(D), G.mkI64(B), G.mkI64(Fld)};
    G.setValue(GepR, Keys, G.mkUnit());
  }
  for (uint32_t A = 0; A < P.NumBaseAllocs; ++A)
    for (uint32_t Fld = 0; Fld < P.NumFields; ++Fld) {
      Value Keys[3] = {G.mkI64(A), G.mkI64(Fld),
                       G.mkI64(P.fieldAlloc(A, Fld))};
      G.setValue(FieldAllocR, Keys, G.mkUnit());
    }
}

void saturate(Frontend &F) {
  if (!F.execute("(run 1000000)")) {
    std::fprintf(stderr, "bench_snapshot: run failed: %s\n",
                 F.error().c_str());
    std::exit(3);
  }
}

/// Cold start: schema + rules + facts + saturation.
double coldRun(const Program &P, unsigned Threads, uint64_t &HashOut) {
  Frontend F;
  F.engine().setThreads(Threads);
  if (!F.execute(PointsToSchema) || !F.execute(PointsToRules)) {
    std::fprintf(stderr, "bench_snapshot: setup failed: %s\n",
                 F.error().c_str());
    std::exit(3);
  }
  Timer Clock;
  loadFacts(F, P);
  saturate(F);
  double Seconds = Clock.seconds();
  HashOut = F.graph().liveContentHash();
  return Seconds;
}

size_t fileBytes(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary | std::ios::ate);
  return Stream.is_open() ? static_cast<size_t>(Stream.tellg()) : 0;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  int ThreadsArg = argc > 2 ? std::atoi(argv[2]) : 1;
  unsigned Threads = ThreadsArg < 1 ? 1u : static_cast<unsigned>(ThreadsArg);
  const std::string Path = "bench_snapshot.snap";

  // The largest program of the scaled suite keeps the numbers meaningful
  // without regenerating all thirty.
  std::vector<Program> Suite = postgresSuite(Scale);
  const Program *P = &Suite.front();
  for (const Program &Candidate : Suite)
    if (Candidate.numInstructions() > P->numInstructions())
      P = &Candidate;

  std::printf("=== snapshot persistence (program %s, %zu insns, %u "
              "thread%s) ===\n",
              P->Name.c_str(), P->numInstructions(), Threads,
              Threads == 1 ? "" : "s");

  // Baseline saturated database, then serialize it.
  Frontend F;
  F.engine().setThreads(Threads);
  if (!F.execute(PointsToSchema) || !F.execute(PointsToRules)) {
    std::fprintf(stderr, "bench_snapshot: setup failed: %s\n",
                 F.error().c_str());
    return 3;
  }
  loadFacts(F, *P);
  saturate(F);
  uint64_t BaselineHash = F.graph().liveContentHash();

  Timer SaveClock;
  EggError Err;
  if (!saveSnapshot(F.graph(), Path, Err)) {
    std::fprintf(stderr, "bench_snapshot: save failed: %s\n",
                 Err.Message.c_str());
    return 3;
  }
  double SaveS = SaveClock.seconds();
  size_t Bytes = fileBytes(Path);

  // Cold re-run: the cost a warm start avoids.
  uint64_t RerunHash = 0;
  double RerunS = coldRun(*P, Threads, RerunHash);
  if (RerunHash != BaselineHash) {
    std::fprintf(stderr, "bench_snapshot: cold re-run diverged\n");
    return 3;
  }

  // Warm start: load, re-declare rules, re-run to saturation (semi-naive
  // over an already-saturated database finds nothing).
  Frontend Warm;
  Warm.engine().setThreads(Threads);
  Timer LoadClock;
  if (!loadSnapshot(Warm.graph(), Path, Err)) {
    std::fprintf(stderr, "bench_snapshot: load failed: %s\n",
                 Err.Message.c_str());
    return 3;
  }
  Warm.engine().noteExternalMutation();
  double LoadS = LoadClock.seconds();
  Timer WarmClock;
  if (!Warm.execute(PointsToRules)) {
    std::fprintf(stderr, "bench_snapshot: warm rules failed: %s\n",
                 Warm.error().c_str());
    return 3;
  }
  saturate(Warm);
  double WarmS = WarmClock.seconds();
  if (Warm.graph().liveContentHash() != BaselineHash) {
    std::fprintf(stderr, "bench_snapshot: warm start diverged\n");
    return 3;
  }

  std::remove(Path.c_str());

  double Speedup = (LoadS + WarmS) > 0 ? RerunS / (LoadS + WarmS) : 0;
  std::printf("  cold re-run %9.6fs\n", RerunS);
  std::printf("  save        %9.6fs  (%zu bytes)\n", SaveS, Bytes);
  std::printf("  load        %9.6fs\n", LoadS);
  std::printf("  warm re-run %9.6fs\n", WarmS);
  std::printf("  warm-start speedup %.2fx\n", Speedup);

  // Machine-readable trajectory record (one JSON object per line).
  std::printf("{\"bench\": \"snapshot\", \"program\": \"%s\", "
              "\"threads\": %u, \"bytes\": %zu, \"save_s\": %.6f, "
              "\"load_s\": %.6f, \"warm_s\": %.6f, \"rerun_s\": %.6f, "
              "\"speedup\": %.6f}\n",
              P->Name.c_str(), Threads, Bytes, SaveS, LoadS, WarmS, RerunS,
              Speedup);
  return 0;
}
