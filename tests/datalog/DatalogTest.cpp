//===- tests/datalog/DatalogTest.cpp - Datalog engine tests ----------------===//
//
// Part of egglog-cpp. Tests the Soufflé-style Datalog substrate: relations,
// semi-naïve evaluation, and eqrel equivalence relations (§6.1 baselines).
//
//===----------------------------------------------------------------------===//

#include "datalog/Evaluator.h"

#include <gtest/gtest.h>

#include <random>

using namespace egglog::datalog;

TEST(DatalogTest, TransitiveClosure) {
  Database DB;
  DB.declareRelation("edge", 2);
  DB.declareRelation("path", 2);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("path(x, y) :- edge(x, y).")) << E.error();
  ASSERT_TRUE(E.addRule("path(x, z) :- path(x, y), edge(y, z).")) << E.error();
  DB.relation("edge").insert({1, 2});
  DB.relation("edge").insert({2, 3});
  DB.relation("edge").insert({3, 4});
  E.run();
  EXPECT_TRUE(DB.relation("path").contains({1, 4}));
  EXPECT_TRUE(DB.relation("path").contains({2, 4}));
  EXPECT_FALSE(DB.relation("path").contains({4, 1}));
  EXPECT_EQ(DB.relation("path").size(), 6u);
}

TEST(DatalogTest, FactsInRules) {
  Database DB;
  DB.declareRelation("edge", 2);
  DB.declareRelation("path", 2);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("edge(1, 2)."));
  ASSERT_TRUE(E.addRule("edge(2, 3)."));
  ASSERT_TRUE(E.addRule("path(x, y) :- edge(x, y)."));
  ASSERT_TRUE(E.addRule("path(x, z) :- path(x, y), edge(y, z)."));
  E.run();
  EXPECT_TRUE(DB.relation("path").contains({1, 3}));
}

TEST(DatalogTest, SemiNaiveMatchesNaive) {
  // Theorem 4.1 analogue for the Datalog substrate: both evaluation modes
  // produce identical relations on a random graph.
  std::mt19937 Rng(77);
  std::uniform_int_distribution<Val> Node(0, 25);
  std::vector<std::pair<Val, Val>> Edges;
  for (int I = 0; I < 80; ++I)
    Edges.emplace_back(Node(Rng), Node(Rng));

  auto RunMode = [&](bool SemiNaive) {
    Database DB;
    DB.declareRelation("edge", 2);
    DB.declareRelation("path", 2);
    Evaluator E(DB);
    EXPECT_TRUE(E.addRule("path(x, y) :- edge(x, y)."));
    EXPECT_TRUE(E.addRule("path(x, z) :- path(x, y), edge(y, z)."));
    for (auto [A, B] : Edges)
      DB.relation("edge").insert({A, B});
    EvalOptions Opts;
    Opts.SemiNaive = SemiNaive;
    E.run(Opts);
    return DB.relation("path").size();
  };
  EXPECT_EQ(RunMode(true), RunMode(false));
}

TEST(DatalogTest, EqRelBasics) {
  EqRel Eq;
  EXPECT_TRUE(Eq.insert(1, 2));
  EXPECT_FALSE(Eq.insert(2, 1));
  EXPECT_TRUE(Eq.insert(2, 3));
  EXPECT_TRUE(Eq.same(1, 3));
  EXPECT_FALSE(Eq.same(1, 4));
  EXPECT_EQ(Eq.members(1).size(), 3u);
  // 3 elements merged + elements 0..3 exist; represented pairs of the big
  // class = 9, plus singleton 0 = 1.
  EXPECT_EQ(Eq.representedPairs(), 10u);
}

TEST(DatalogTest, EqRelJoinEnumeratesClassmates) {
  // alias(x, y) is an eqrel; out(y) :- root(x), alias(x, y) enumerates the
  // whole class of x.
  Database DB;
  DB.declareRelation("root", 1);
  DB.declareRelation("out", 1);
  DB.declareEqRel("alias");
  DB.eqrel("alias").insert(10, 11);
  DB.eqrel("alias").insert(11, 12);
  DB.eqrel("alias").insert(20, 21);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("out(y) :- root(x), alias(x, y).")) << E.error();
  DB.relation("root").insert({10});
  E.run();
  EXPECT_TRUE(DB.relation("out").contains({10}));
  EXPECT_TRUE(DB.relation("out").contains({11}));
  EXPECT_TRUE(DB.relation("out").contains({12}));
  EXPECT_FALSE(DB.relation("out").contains({20}));
  EXPECT_EQ(DB.relation("out").size(), 3u);
}

TEST(DatalogTest, EqRelInHeadUnifies) {
  // Steensgaard flavor: vpt(p, a), vpt(p, b) forces alias(a, b).
  Database DB;
  DB.declareRelation("vpt", 2);
  DB.declareEqRel("alias");
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("alias(a, b) :- vpt(p, a), vpt(p, b).")) << E.error();
  DB.relation("vpt").insert({1, 100});
  DB.relation("vpt").insert({1, 101});
  DB.relation("vpt").insert({2, 200});
  E.run();
  EXPECT_TRUE(DB.eqrel("alias").same(100, 101));
  EXPECT_FALSE(DB.eqrel("alias").same(100, 200));
}

TEST(DatalogTest, EqRelDerivedEquivalencesPropagate) {
  // New equivalences discovered mid-run must re-trigger rules that join
  // over the eqrel.
  Database DB;
  DB.declareRelation("link", 2);
  DB.declareRelation("reach", 1);
  DB.declareEqRel("eq");
  Evaluator E(DB);
  // Reach spreads across links and equivalences; equivalence grows when two
  // reached nodes are linked by "link".
  ASSERT_TRUE(E.addRule("reach(y) :- reach(x), link(x, y).")) << E.error();
  ASSERT_TRUE(E.addRule("reach(y) :- reach(x), eq(x, y).")) << E.error();
  ASSERT_TRUE(E.addRule("eq(x, y) :- reach(x), reach(y), link(x, y)."))
      << E.error();
  DB.relation("reach").insert({1});
  DB.relation("link").insert({1, 2});
  DB.eqrel("eq").insert(2, 5);
  DB.relation("link").insert({5, 6});
  E.run();
  EXPECT_TRUE(DB.relation("reach").contains({5}))
      << "reach must cross the equivalence";
  EXPECT_TRUE(DB.relation("reach").contains({6}));
  EXPECT_TRUE(DB.eqrel("eq").same(1, 2));
}

TEST(DatalogTest, ConstantsInRules) {
  Database DB;
  DB.declareRelation("edge", 2);
  DB.declareRelation("fromOne", 1);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("fromOne(y) :- edge(1, y).")) << E.error();
  DB.relation("edge").insert({1, 5});
  DB.relation("edge").insert({2, 6});
  E.run();
  EXPECT_TRUE(DB.relation("fromOne").contains({5}));
  EXPECT_FALSE(DB.relation("fromOne").contains({6}));
}

TEST(DatalogTest, ParserRejectsMalformedRules) {
  Database DB;
  DB.declareRelation("r", 1);
  Evaluator E(DB);
  EXPECT_FALSE(E.addRule("r(x) :- r(x)"));          // missing dot
  EXPECT_FALSE(E.addRule("r(x, y) :- r(x)."));      // arity
  EXPECT_FALSE(E.addRule("r(x) :- unknown(x)."));   // unknown relation
  EXPECT_FALSE(E.addRule("r(y) :- r(x)."));         // unbound head var
}

TEST(DatalogTest, TimeoutStopsEvaluation) {
  // A deliberately explosive rule set with a tiny timeout must stop and
  // flag TimedOut.
  Database DB;
  DB.declareRelation("n", 1);
  DB.declareRelation("pair", 2);
  DB.declareRelation("big", 2);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("pair(x, y) :- n(x), n(y)."));
  ASSERT_TRUE(E.addRule("big(x, z) :- pair(x, y), pair(y, z)."));
  for (Val I = 0; I < 600; ++I)
    DB.relation("n").insert({I});
  EvalOptions Opts;
  Opts.TimeoutSeconds = 0.02;
  EvalStats Stats = E.run(Opts);
  EXPECT_TRUE(Stats.TimedOut);
}

/// Property: random graphs, semi-naive path == floyd-style oracle.
class DatalogPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DatalogPropertyTest, ReachabilityMatchesOracle) {
  std::mt19937 Rng(GetParam());
  constexpr int N = 18;
  std::uniform_int_distribution<Val> Node(0, N - 1);
  std::vector<std::vector<bool>> Adj(N, std::vector<bool>(N, false));
  Database DB;
  DB.declareRelation("edge", 2);
  DB.declareRelation("path", 2);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("path(x, y) :- edge(x, y)."));
  ASSERT_TRUE(E.addRule("path(x, z) :- path(x, y), edge(y, z)."));
  for (int I = 0; I < 40; ++I) {
    Val A = Node(Rng), B = Node(Rng);
    Adj[A][B] = true;
    DB.relation("edge").insert({A, B});
  }
  E.run();
  // Warshall oracle.
  std::vector<std::vector<bool>> Reach = Adj;
  for (int K = 0; K < N; ++K)
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J)
        if (Reach[I][K] && Reach[K][J])
          Reach[I][J] = true;
  for (Val I = 0; I < N; ++I)
    for (Val J = 0; J < N; ++J)
      EXPECT_EQ(DB.relation("path").contains({I, J}), Reach[I][J])
          << "(" << I << "," << J << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogPropertyTest,
                         ::testing::Values(100u, 200u, 300u, 400u));

TEST(DatalogTest, ReprRelationTracksRepresentatives) {
  // The implicit E_repr relation models Soufflé's choice-domain pattern:
  // one canonical representative per class (§6.1's cclyzer++ encoding).
  Database DB;
  DB.declareRelation("in", 1);
  DB.declareRelation("out", 2);
  DB.declareEqRel("eq");
  DB.eqrel("eq").ensure(9);
  DB.eqrel("eq").insert(3, 7);
  Evaluator E(DB);
  ASSERT_TRUE(E.addRule("out(x, r) :- in(x), eq_repr(x, r).")) << E.error();
  DB.relation("in").insert({3});
  DB.relation("in").insert({7});
  DB.relation("in").insert({5});
  E.run();
  // 3 and 7 share one representative; 5 is its own.
  Val Rep = DB.eqrel("eq").find(3);
  EXPECT_TRUE(DB.relation("out").contains({3, Rep}));
  EXPECT_TRUE(DB.relation("out").contains({7, Rep}));
  EXPECT_TRUE(DB.relation("out").contains({5, 5}));
}

TEST(DatalogTest, ReprRelationIsReadOnly) {
  Database DB;
  DB.declareRelation("r", 2);
  DB.declareEqRel("eq");
  Evaluator E(DB);
  EXPECT_FALSE(E.addRule("eq_repr(x, y) :- r(x, y)."));
}

TEST(DatalogTest, EqRelDeltaSemiNaiveMatchesNaive) {
  // Semi-naïve evaluation with eqrel delta events must reach the same
  // fixpoint as naïve evaluation on a workload that grows the eqrel
  // mid-run.
  auto Run = [&](bool SemiNaive) {
    Database DB;
    DB.declareRelation("link", 2);
    DB.declareRelation("reach", 1);
    DB.declareEqRel("eq");
    DB.eqrel("eq").ensure(40);
    Evaluator E(DB);
    EXPECT_TRUE(E.addRule("reach(y) :- reach(x), link(x, y)."));
    EXPECT_TRUE(E.addRule("reach(y) :- reach(x), eq(x, y)."));
    EXPECT_TRUE(E.addRule("eq(x, y) :- reach(x), reach(y), link(x, y)."));
    std::mt19937 Rng(31);
    std::uniform_int_distribution<Val> Node(0, 39);
    for (int I = 0; I < 60; ++I)
      DB.relation("link").insert({Node(Rng), Node(Rng)});
    DB.relation("reach").insert({0});
    DB.eqrel("eq").insert(0, 13);
    EvalOptions Opts;
    Opts.SemiNaive = SemiNaive;
    E.run(Opts);
    return std::make_pair(DB.relation("reach").size(),
                          DB.eqrel("eq").representedPairs());
  };
  EXPECT_EQ(Run(true), Run(false));
}
