//===- tests/pointsto/PointsToTest.cpp - Steensgaard case study ------------===//
//
// Part of egglog-cpp. Tests the §6.1 case study: the generator, the native
// egglog Steensgaard analysis, and agreement between the sound systems
// (the paper: "All the systems except for cclyzer++ report the same size
// for computed points-to relations").
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analyses.h"

#include <gtest/gtest.h>

using namespace egglog::pointsto;

namespace {

/// Hand-built program: p and q end up aliased through a copy, so their
/// pointees must unify.
Program tinyAliasProgram() {
  Program P;
  P.Name = "tiny";
  P.NumVars = 4;
  P.NumBaseAllocs = 2;
  P.NumFields = 1;
  // v0 = &A0; v1 = &A1; v0 = v1 (copy): A0 and A1 unify.
  P.Allocs = {{0, 0}, {1, 1}};
  P.Copies = {{0, 1}};
  return P;
}

/// p = &A0; q = &A1; *p = x with x = &A0copy... exercise loads/stores:
/// v0=&A0, v1=&A1, *v0 = v1 (store), v2 = *v0 (load): v2 and v1 pointees
/// unify — contents propagate.
Program tinyHeapProgram() {
  Program P;
  P.Name = "tiny-heap";
  P.NumVars = 4;
  P.NumBaseAllocs = 3;
  P.NumFields = 1;
  P.Allocs = {{0, 0}, {1, 1}, {3, 2}};
  P.Stores = {{0, 1}}; // *v0 = v1
  P.Loads = {{2, 0}};  // v2 = *v0
  P.Copies = {{2, 3}}; // v2 = v3 : pointees of v2 (i.e. {A1}) unify with {A2}
  return P;
}

Program tinyFieldProgram() {
  Program P;
  P.Name = "tiny-field";
  P.NumVars = 5;
  P.NumBaseAllocs = 3;
  P.NumFields = 2;
  // v0 = &A0; v1 = &A1; v0 = v1 => A0 ~ A1 ;
  // v2 = &v0->f0 ; v3 = &v1->f0 => field allocs of A0/A1 at f0 unify.
  P.Allocs = {{0, 0}, {1, 1}, {4, 2}};
  P.Copies = {{0, 1}};
  P.Geps = {{2, 0, 0}, {3, 1, 0}};
  return P;
}

} // namespace

TEST(PointsToTest, GeneratorIsDeterministic) {
  GeneratorOptions Opts;
  Opts.Seed = 7;
  Opts.Size = 500;
  Program A = generateProgram("a", Opts);
  Program B = generateProgram("b", Opts);
  EXPECT_EQ(A.Allocs, B.Allocs);
  EXPECT_EQ(A.Copies, B.Copies);
  EXPECT_EQ(A.Geps, B.Geps);
  EXPECT_GE(A.numInstructions(), 500u);
  EXPECT_GT(A.NumVars, 0u);
}

TEST(PointsToTest, SuiteHasThirtyGrowingPrograms) {
  std::vector<Program> Suite = postgresSuite(0.1);
  ASSERT_EQ(Suite.size(), 30u);
  EXPECT_EQ(Suite.front().Name, "libpgtypes.so.3.6");
  EXPECT_EQ(Suite.back().Name, "ecpg");
  EXPECT_LT(Suite.front().numInstructions(), Suite.back().numInstructions());
}

TEST(PointsToTest, CopyUnifiesPointees) {
  Program P = tinyAliasProgram();
  AnalysisResult R = runPointsTo(P, System::Egglog);
  ASSERT_FALSE(R.TimedOut);
  EXPECT_EQ(R.AllocClass[0], R.AllocClass[1])
      << "copy must unify the pointees of both variables";
}

TEST(PointsToTest, LoadStoreUnifiesThroughTheHeap) {
  Program P = tinyHeapProgram();
  AnalysisResult R = runPointsTo(P, System::Egglog);
  ASSERT_FALSE(R.TimedOut);
  EXPECT_EQ(R.AllocClass[1], R.AllocClass[2])
      << "store then load then copy must unify A1 with A2";
  EXPECT_NE(R.AllocClass[0], R.AllocClass[1]);
}

TEST(PointsToTest, FieldSensitivity) {
  Program P = tinyFieldProgram();
  AnalysisResult R = runPointsTo(P, System::Egglog);
  ASSERT_FALSE(R.TimedOut);
  // A0 ~ A1, so their f0 sub-allocations unify, and the two gep'd vars
  // alias. Different fields stay distinct.
  uint32_t F0ofA0 = P.fieldAlloc(0, 0), F0ofA1 = P.fieldAlloc(1, 0);
  uint32_t F1ofA0 = P.fieldAlloc(0, 1);
  EXPECT_EQ(R.AllocClass[F0ofA0], R.AllocClass[F0ofA1]);
  EXPECT_NE(R.AllocClass[F0ofA0], R.AllocClass[F1ofA0])
      << "distinct fields must not unify (field sensitivity)";
}

TEST(PointsToTest, AllSoundSystemsAgreeOnTinyPrograms) {
  for (const Program &P :
       {tinyAliasProgram(), tinyHeapProgram(), tinyFieldProgram()}) {
    AnalysisResult Eg = runPointsTo(P, System::Egglog);
    AnalysisResult Ni = runPointsTo(P, System::EgglogNI);
    AnalysisResult Pa = runPointsTo(P, System::Patched);
    AnalysisResult Er = runPointsTo(P, System::EqRelEncoding);
    EXPECT_EQ(Eg.AllocClass, Ni.AllocClass) << P.Name;
    EXPECT_EQ(Eg.AllocClass, Pa.AllocClass) << P.Name;
    EXPECT_EQ(Eg.AllocClass, Er.AllocClass) << P.Name;
  }
}

/// The paper's central result check: on generated programs, egglog,
/// egglogNI, patched and eqrel compute the same allocation partition;
/// cclyzer++ (missing congruence) computes a finer or equal one.
class SoundnessAgreementTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SoundnessAgreementTest, SoundSystemsAgreeOnGeneratedPrograms) {
  GeneratorOptions Opts;
  Opts.Seed = GetParam();
  Opts.Size = 80;
  Program P = generateProgram("prop", Opts);

  AnalysisResult Eg = runPointsTo(P, System::Egglog);
  AnalysisResult Ni = runPointsTo(P, System::EgglogNI);
  AnalysisResult Pa = runPointsTo(P, System::Patched, /*Timeout=*/30);
  AnalysisResult Er = runPointsTo(P, System::EqRelEncoding, /*Timeout=*/30);
  ASSERT_FALSE(Eg.TimedOut);
  EXPECT_EQ(Eg.AllocClass, Ni.AllocClass)
      << "semi-naïve and naïve egglog must agree (Theorem 4.1)";
  if (!Pa.TimedOut)
    EXPECT_EQ(Eg.AllocClass, Pa.AllocClass)
        << "patched Datalog encoding must agree with egglog";
  if (!Er.TimedOut)
    EXPECT_EQ(Eg.AllocClass, Er.AllocClass)
        << "eqrel Datalog encoding must agree with egglog";

  // cclyzer++ misses congruence, so its partition is never coarser.
  AnalysisResult Cc = runPointsTo(P, System::CClyzer);
  EXPECT_GE(Cc.numClasses(), Eg.numClasses())
      << "unsound cclyzer++ may only under-unify";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessAgreementTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(PointsToTest, EqRelRepresentationBlowsUp) {
  // The eqrel encoding's vpt grows far beyond egglog's (one entry per
  // variable) — the §6.1 space blow-up. On larger inputs it times out
  // outright, which demonstrates the same point even more strongly.
  GeneratorOptions Opts;
  Opts.Seed = 9;
  Opts.Size = 60;
  Program P = generateProgram("blowup", Opts);
  AnalysisResult Eg = runPointsTo(P, System::Egglog);
  AnalysisResult Er = runPointsTo(P, System::EqRelEncoding, /*Timeout=*/20);
  ASSERT_FALSE(Eg.TimedOut);
  if (Er.TimedOut)
    SUCCEED() << "eqrel timed out where egglog finished";
  else
    EXPECT_GT(Er.VptSize, Eg.VptSize)
        << "closing vpt under equivalence must materialize more tuples";
}

TEST(PointsToTest, TimeoutIsReported) {
  GeneratorOptions Opts;
  Opts.Seed = 5;
  Opts.Size = 4000;
  Program P = generateProgram("timeout", Opts);
  AnalysisResult R = runPointsTo(P, System::EqRelEncoding, /*Timeout=*/0.05);
  EXPECT_TRUE(R.TimedOut);
}
