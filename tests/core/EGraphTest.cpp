//===- tests/core/EGraphTest.cpp - Database / rebuilding tests -------------===//
//
// Part of egglog-cpp. Tests the EGraph database: merge semantics (§3.2),
// get-or-default (§3.3), congruence-closure rebuilding (§5.1), and the set
// container pool.
//
//===----------------------------------------------------------------------===//

#include "core/EGraph.h"

#include <gtest/gtest.h>

#include <random>

using namespace egglog;

namespace {

/// Builds a one-argument constructor f : S -> S (merge = union).
FunctionId declareUnaryCtor(EGraph &G, SortId S, const std::string &Name) {
  FunctionDecl Decl;
  Decl.Name = Name;
  Decl.ArgSorts = {S};
  Decl.OutSort = S;
  return G.declareFunction(std::move(Decl));
}

} // namespace

TEST(EGraphTest, GetOrCreateMakesFreshIdsOnce) {
  EGraph G;
  SortId S = G.declareSort("Node");
  FunctionId Mk = declareUnaryCtor(G, S, "mk");
  Value A = G.freshId(S);
  Value First, Second;
  ASSERT_TRUE(G.getOrCreate(Mk, &A, First));
  ASSERT_TRUE(G.getOrCreate(Mk, &A, Second));
  EXPECT_EQ(First, Second) << "get-or-default must be stable";
  EXPECT_EQ(G.functionSize(Mk), 1u);
}

TEST(EGraphTest, UnionMakesValuesIndistinguishable) {
  EGraph G;
  SortId S = G.declareSort("Node");
  Value A = G.freshId(S), B = G.freshId(S);
  EXPECT_FALSE(G.valueEqual(A, B));
  G.unionValues(A, B);
  EXPECT_TRUE(G.valueEqual(A, B));
  EXPECT_TRUE(G.needsRebuild());
}

TEST(EGraphTest, RebuildRestoresCongruence) {
  // The running example of §3.2/§5.1: f(a)=b, f(c)=d, then a == c forces
  // b == d via the default (union) merge.
  EGraph G;
  SortId S = G.declareSort("T");
  FunctionId F = declareUnaryCtor(G, S, "f");
  Value A = G.freshId(S), C = G.freshId(S);
  Value B, D;
  ASSERT_TRUE(G.getOrCreate(F, &A, B));
  ASSERT_TRUE(G.getOrCreate(F, &C, D));
  EXPECT_FALSE(G.valueEqual(B, D));

  G.unionValues(A, C);
  G.rebuild();
  EXPECT_TRUE(G.valueEqual(B, D)) << "congruence must be restored";
  EXPECT_EQ(G.functionSize(F), 1u) << "duplicate rows must collapse";
  EXPECT_FALSE(G.needsRebuild());
}

TEST(EGraphTest, RebuildCascades) {
  // A chain: unioning the leaves must propagate congruence upward through
  // two levels of f.
  EGraph G;
  SortId S = G.declareSort("T");
  FunctionId F = declareUnaryCtor(G, S, "f");
  Value X = G.freshId(S), Y = G.freshId(S);
  Value Fx, Fy, FFx, FFy;
  ASSERT_TRUE(G.getOrCreate(F, &X, Fx));
  ASSERT_TRUE(G.getOrCreate(F, &Y, Fy));
  ASSERT_TRUE(G.getOrCreate(F, &Fx, FFx));
  ASSERT_TRUE(G.getOrCreate(F, &Fy, FFy));
  G.unionValues(X, Y);
  G.rebuild();
  EXPECT_TRUE(G.valueEqual(Fx, Fy));
  EXPECT_TRUE(G.valueEqual(FFx, FFy));
  EXPECT_EQ(G.functionSize(F), 2u);
}

TEST(EGraphTest, MergeExprMinLattice) {
  // path : i64 -> i64 with :merge (min old new), as in Fig. 3b.
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "len";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = SortTable::I64Sort;
  uint32_t MinPrim;
  ASSERT_TRUE(G.primitives().resolve(
      "min", {SortTable::I64Sort, SortTable::I64Sort}, MinPrim));
  Decl.MergeExpr = TypedExpr::makeCall(
      TypedExpr::Kind::PrimCall, MinPrim, SortTable::I64Sort,
      {TypedExpr::makeVar(0, SortTable::I64Sort),
       TypedExpr::makeVar(1, SortTable::I64Sort)});
  FunctionId F = G.declareFunction(std::move(Decl));

  Value Key = G.mkI64(7);
  ASSERT_TRUE(G.setValue(F, &Key, G.mkI64(30)));
  ASSERT_TRUE(G.setValue(F, &Key, G.mkI64(20)));
  EXPECT_EQ(G.lookup(F, &Key)->Bits, 20u);
  ASSERT_TRUE(G.setValue(F, &Key, G.mkI64(25)));
  EXPECT_EQ(G.lookup(F, &Key)->Bits, 20u) << "min lattice keeps the minimum";
}

TEST(EGraphTest, MergeConflictWithoutMergeExprFails) {
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "g";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = SortTable::I64Sort;
  FunctionId F = G.declareFunction(std::move(Decl));
  Value Key = G.mkI64(1);
  ASSERT_TRUE(G.setValue(F, &Key, G.mkI64(5)));
  EXPECT_FALSE(G.setValue(F, &Key, G.mkI64(6)));
  EXPECT_TRUE(G.failed());
}

TEST(EGraphTest, UnitOutputNeverConflicts) {
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "r";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId F = G.declareFunction(std::move(Decl));
  Value Key = G.mkI64(1);
  ASSERT_TRUE(G.setValue(F, &Key, G.mkUnit()));
  ASSERT_TRUE(G.setValue(F, &Key, G.mkUnit()));
  EXPECT_EQ(G.functionSize(F), 1u);
}

TEST(EGraphTest, BaseValueDefaultsFail) {
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "h";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = SortTable::I64Sort;
  FunctionId F = G.declareFunction(std::move(Decl));
  Value Key = G.mkI64(3);
  Value Out;
  EXPECT_FALSE(G.getOrCreate(F, &Key, Out))
      << "base-sort outputs have no default (§3.3)";
  EXPECT_TRUE(G.failed());
}

TEST(EGraphTest, DefaultExprIsUsed) {
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "k";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = SortTable::I64Sort;
  Decl.DefaultExpr = TypedExpr::makeLit(G.mkI64(99));
  FunctionId F = G.declareFunction(std::move(Decl));
  Value Key = G.mkI64(3);
  Value Out;
  ASSERT_TRUE(G.getOrCreate(F, &Key, Out));
  EXPECT_EQ(G.valueToI64(Out), 99);
}

TEST(EGraphTest, StringsAndRationalsIntern) {
  EGraph G;
  Value S1 = G.mkString("hello"), S2 = G.mkString("hello");
  EXPECT_EQ(S1, S2);
  Value R1 = G.mkRational(Rational(BigInt(2), BigInt(4)));
  Value R2 = G.mkRational(Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(R1, R2) << "rationals intern in normalized form";
  EXPECT_EQ(G.valueToRational(R1).toString(), "1/2");
}

TEST(EGraphTest, SetsCanonicalizeUnderUnions) {
  EGraph G;
  SortId Node = G.declareSort("Node");
  SortId NodeSet = G.declareSetSort("NodeSet", Node);
  Value A = G.freshId(Node), B = G.freshId(Node), C = G.freshId(Node);
  Value SetAB = G.mkSet(NodeSet, {A, B});
  Value SetAC = G.mkSet(NodeSet, {A, C});
  EXPECT_NE(SetAB, SetAC);
  G.unionValues(B, C);
  EXPECT_EQ(G.canonicalize(SetAB), G.canonicalize(SetAC))
      << "sets with unified elements canonicalize to the same set";
  EXPECT_EQ(G.valueToSet(G.canonicalize(SetAB)).size(), 2u);
}

TEST(EGraphTest, SetsDedupe) {
  EGraph G;
  SortId NodeSet = G.declareSetSort("ISet", SortTable::I64Sort);
  Value S = G.mkSet(NodeSet, {G.mkI64(3), G.mkI64(1), G.mkI64(3)});
  EXPECT_EQ(G.valueToSet(S).size(), 2u);
}

TEST(EGraphTest, RebuildCanonicalizesSetOutputs) {
  EGraph G;
  SortId Node = G.declareSort("Node");
  SortId NodeSet = G.declareSetSort("NodeSet", Node);
  FunctionDecl Decl;
  Decl.Name = "fv";
  Decl.ArgSorts = {SortTable::I64Sort};
  Decl.OutSort = NodeSet;
  uint32_t Intersect;
  ASSERT_TRUE(
      G.primitives().resolve("set-intersect", {NodeSet, NodeSet}, Intersect));
  Decl.MergeExpr =
      TypedExpr::makeCall(TypedExpr::Kind::PrimCall, Intersect, NodeSet,
                          {TypedExpr::makeVar(0, NodeSet),
                           TypedExpr::makeVar(1, NodeSet)});
  FunctionId F = G.declareFunction(std::move(Decl));

  Value A = G.freshId(Node), B = G.freshId(Node);
  Value Key = G.mkI64(0);
  ASSERT_TRUE(G.setValue(F, &Key, G.mkSet(NodeSet, {A, B})));
  G.unionValues(A, B);
  G.rebuild();
  Value Out = *G.lookup(F, &Key);
  EXPECT_EQ(G.valueToSet(Out).size(), 1u)
      << "rebuild must deep-canonicalize container outputs";
}

/// Property test: after random unions and term insertions followed by one
/// rebuild, (1) every stored value is canonical, (2) no function has two
/// live rows with equal keys, and (3) congruence holds for every pair of
/// rows with equal canonical keys.
class RebuildPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RebuildPropertyTest, RebuildInvariants) {
  std::mt19937 Rng(GetParam());
  EGraph G;
  SortId S = G.declareSort("T");
  FunctionId F = declareUnaryCtor(G, S, "f");
  FunctionId H = declareUnaryCtor(G, S, "h");

  std::vector<Value> Ids;
  for (int I = 0; I < 30; ++I)
    Ids.push_back(G.freshId(S));
  std::uniform_int_distribution<size_t> Pick(0, Ids.size() - 1);
  std::uniform_int_distribution<int> Op(0, 2);
  for (int Step = 0; Step < 200; ++Step) {
    switch (Op(Rng)) {
    case 0: {
      Value Out;
      ASSERT_TRUE(G.getOrCreate(F, &Ids[Pick(Rng)], Out));
      Ids.push_back(Out);
      break;
    }
    case 1: {
      Value Out;
      ASSERT_TRUE(G.getOrCreate(H, &Ids[Pick(Rng)], Out));
      Ids.push_back(Out);
      break;
    }
    case 2:
      G.unionValues(Ids[Pick(Rng)], Ids[Pick(Rng)]);
      break;
    }
  }
  G.rebuild();
  ASSERT_FALSE(G.failed()) << G.errorMessage();

  for (FunctionId Func : {F, H}) {
    const Table &T = *G.function(Func).Storage;
    std::unordered_map<uint64_t, uint64_t> SeenKeys;
    for (size_t Row = 0; Row < T.rowCount(); ++Row) {
      if (!T.isLive(Row))
        continue;
      Value Cells[2] = {T.cell(Row, 0), T.cell(Row, 1)};
      // (1) canonical values everywhere.
      EXPECT_EQ(G.canonicalize(Cells[0]), Cells[0]);
      EXPECT_EQ(G.canonicalize(Cells[1]), Cells[1]);
      // (2) functional dependency: one live row per key.
      auto [It, Fresh] = SeenKeys.emplace(Cells[0].Bits, Cells[1].Bits);
      EXPECT_TRUE(Fresh) << "duplicate live key after rebuild";
      // (3) congruence: equal keys imply equal outputs.
      if (!Fresh)
        EXPECT_EQ(It->second, Cells[1].Bits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));
