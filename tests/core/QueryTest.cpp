//===- tests/core/QueryTest.cpp - Generic join tests -----------------------===//
//
// Part of egglog-cpp. Tests the relational query engine: generic join
// results, semi-naïve delta splits, primitive filters, and agreement
// between the worst-case-optimal join and the naive nested-loop join.
//
//===----------------------------------------------------------------------===//

#include "core/Query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace egglog;

namespace {

/// Fixture providing an edge relation over i64 pairs.
class QueryTestFixture : public ::testing::Test {
protected:
  EGraph G;
  FunctionId Edge = 0;

  void SetUp() override {
    FunctionDecl Decl;
    Decl.Name = "edge";
    Decl.ArgSorts = {SortTable::I64Sort, SortTable::I64Sort};
    Decl.OutSort = SortTable::UnitSort;
    Edge = G.declareFunction(std::move(Decl));
  }

  void addEdge(int64_t From, int64_t To) {
    Value Keys[2] = {G.mkI64(From), G.mkI64(To)};
    ASSERT_TRUE(G.setValue(Edge, Keys, G.mkUnit()));
  }

  /// Builds the 2-hop query edge(x,y), edge(y,z).
  Query twoHop() {
    Query Q;
    Q.NumVars = 3;
    Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort, SortTable::I64Sort};
    QueryAtom A1;
    A1.Func = Edge;
    A1.Terms = {VarOrConst::makeVar(0), VarOrConst::makeVar(1),
                VarOrConst::makeConst(G.mkUnit())};
    QueryAtom A2;
    A2.Func = Edge;
    A2.Terms = {VarOrConst::makeVar(1), VarOrConst::makeVar(2),
                VarOrConst::makeConst(G.mkUnit())};
    Q.Atoms = {A1, A2};
    return Q;
  }

  std::set<std::vector<int64_t>> collect(const Query &Q, bool GenericJoin,
                                         const std::vector<AtomFilter> &F = {},
                                         uint32_t Bound = 0) {
    std::set<std::vector<int64_t>> Results;
    executeQuery(
        G, Q, F, Bound,
        [&](const std::vector<Value> &Env) {
          std::vector<int64_t> Row;
          for (const Value &V : Env)
            Row.push_back(static_cast<int64_t>(V.Bits));
          Results.insert(Row);
        },
        GenericJoin);
    return Results;
  }
};

} // namespace

TEST_F(QueryTestFixture, TwoHopJoin) {
  addEdge(1, 2);
  addEdge(2, 3);
  addEdge(3, 4);
  auto Results = collect(twoHop(), /*GenericJoin=*/true);
  std::set<std::vector<int64_t>> Expected = {{1, 2, 3}, {2, 3, 4}};
  EXPECT_EQ(Results, Expected);
}

TEST_F(QueryTestFixture, SelfLoopAndRepeatedVariable) {
  addEdge(1, 1);
  addEdge(1, 2);
  addEdge(2, 1);
  // edge(x, x): repeated variable within one atom.
  Query Q;
  Q.NumVars = 1;
  Q.VarSorts = {SortTable::I64Sort};
  QueryAtom A;
  A.Func = Edge;
  A.Terms = {VarOrConst::makeVar(0), VarOrConst::makeVar(0),
             VarOrConst::makeConst(G.mkUnit())};
  Q.Atoms = {A};
  auto Results = collect(Q, true);
  std::set<std::vector<int64_t>> Expected = {{1}};
  EXPECT_EQ(Results, Expected);
}

TEST_F(QueryTestFixture, ConstantsFilterRows) {
  addEdge(1, 2);
  addEdge(1, 3);
  addEdge(2, 3);
  // edge(1, y).
  Query Q;
  Q.NumVars = 1;
  Q.VarSorts = {SortTable::I64Sort};
  QueryAtom A;
  A.Func = Edge;
  A.Terms = {VarOrConst::makeConst(G.mkI64(1)), VarOrConst::makeVar(0),
             VarOrConst::makeConst(G.mkUnit())};
  Q.Atoms = {A};
  auto Results = collect(Q, true);
  std::set<std::vector<int64_t>> Expected = {{2}, {3}};
  EXPECT_EQ(Results, Expected);
}

TEST_F(QueryTestFixture, PrimitiveFilterPrunes) {
  addEdge(1, 2);
  addEdge(2, 1);
  addEdge(3, 3);
  // edge(x,y) with x < y.
  Query Q;
  Q.NumVars = 2;
  Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort};
  QueryAtom A;
  A.Func = Edge;
  A.Terms = {VarOrConst::makeVar(0), VarOrConst::makeVar(1),
             VarOrConst::makeConst(G.mkUnit())};
  Q.Atoms = {A};
  PrimComputation Less;
  ASSERT_TRUE(G.primitives().resolve(
      "<", {SortTable::I64Sort, SortTable::I64Sort}, Less.Prim));
  Less.Args = {VarOrConst::makeVar(0), VarOrConst::makeVar(1)};
  Less.Out = VarOrConst::makeConst(G.mkBool(true));
  Q.Prims = {Less};
  auto Results = collect(Q, true);
  std::set<std::vector<int64_t>> Expected = {{1, 2}};
  EXPECT_EQ(Results, Expected);
}

TEST_F(QueryTestFixture, PrimitiveComputationBindsVariable) {
  addEdge(1, 2);
  // edge(x,y), z := x + y.
  Query Q;
  Q.NumVars = 3;
  Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort, SortTable::I64Sort};
  QueryAtom A;
  A.Func = Edge;
  A.Terms = {VarOrConst::makeVar(0), VarOrConst::makeVar(1),
             VarOrConst::makeConst(G.mkUnit())};
  Q.Atoms = {A};
  PrimComputation Add;
  ASSERT_TRUE(G.primitives().resolve(
      "+", {SortTable::I64Sort, SortTable::I64Sort}, Add.Prim));
  Add.Args = {VarOrConst::makeVar(0), VarOrConst::makeVar(1)};
  Add.Out = VarOrConst::makeVar(2);
  Q.Prims = {Add};
  auto Results = collect(Q, true);
  std::set<std::vector<int64_t>> Expected = {{1, 2, 3}};
  EXPECT_EQ(Results, Expected);
}

TEST_F(QueryTestFixture, SemiNaiveSplitCoversExactlyTheNewMatches) {
  // Old epoch: edges at stamp 0. New epoch: one edge at stamp 1.
  addEdge(1, 2);
  addEdge(2, 3);
  G.bumpTimestamp();
  addEdge(3, 4);

  Query Q = twoHop();
  // Full query finds both 2-hop paths.
  auto Full = collect(Q, true);
  EXPECT_EQ(Full.size(), 2u);

  // Delta expansion: (New, All) plus (Old, New) must find exactly the
  // matches involving the new edge, with no duplicates across splits.
  std::set<std::vector<int64_t>> DeltaResults;
  size_t Emitted = 0;
  for (int J = 0; J < 2; ++J) {
    std::vector<AtomFilter> Filters(2);
    for (int K = 0; K < 2; ++K)
      Filters[K] = K < J ? AtomFilter::Old
                         : (K == J ? AtomFilter::New : AtomFilter::All);
    executeQuery(G, Q, Filters, /*DeltaBound=*/1,
                 [&](const std::vector<Value> &Env) {
                   std::vector<int64_t> Row;
                   for (const Value &V : Env)
                     Row.push_back(static_cast<int64_t>(V.Bits));
                   DeltaResults.insert(Row);
                   ++Emitted;
                 });
  }
  std::set<std::vector<int64_t>> Expected = {{2, 3, 4}};
  EXPECT_EQ(DeltaResults, Expected);
  EXPECT_EQ(Emitted, DeltaResults.size()) << "delta splits must not overlap";
}

TEST_F(QueryTestFixture, EmptyAtomYieldsNothing) {
  auto Results = collect(twoHop(), true);
  EXPECT_TRUE(Results.empty());
}

TEST_F(QueryTestFixture, QueryWithNoAtomsRunsPrimsOnce) {
  Query Q;
  Q.NumVars = 1;
  Q.VarSorts = {SortTable::I64Sort};
  PrimComputation Add;
  ASSERT_TRUE(G.primitives().resolve(
      "+", {SortTable::I64Sort, SortTable::I64Sort}, Add.Prim));
  Add.Args = {VarOrConst::makeConst(G.mkI64(2)),
              VarOrConst::makeConst(G.mkI64(3))};
  Add.Out = VarOrConst::makeVar(0);
  Q.Prims = {Add};
  auto Results = collect(Q, true);
  std::set<std::vector<int64_t>> Expected = {{5}};
  EXPECT_EQ(Results, Expected);
}

/// Property: generic join and nested-loop join agree on random graphs for
/// triangle queries (the classic worst-case-optimal showcase).
class JoinAgreementTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(JoinAgreementTest, TriangleQueryAgreesWithNaiveJoin) {
  std::mt19937 Rng(GetParam());
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "edge";
  Decl.ArgSorts = {SortTable::I64Sort, SortTable::I64Sort};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId Edge = G.declareFunction(std::move(Decl));

  std::uniform_int_distribution<int64_t> Node(0, 15);
  for (int I = 0; I < 60; ++I) {
    Value Keys[2] = {G.mkI64(Node(Rng)), G.mkI64(Node(Rng))};
    ASSERT_TRUE(G.setValue(Edge, Keys, G.mkUnit()));
  }

  // Triangle: edge(x,y), edge(y,z), edge(z,x).
  Query Q;
  Q.NumVars = 3;
  Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort, SortTable::I64Sort};
  auto MakeAtom = [&](uint32_t A, uint32_t B) {
    QueryAtom Atom;
    Atom.Func = Edge;
    Atom.Terms = {VarOrConst::makeVar(A), VarOrConst::makeVar(B),
                  VarOrConst::makeConst(G.mkUnit())};
    return Atom;
  };
  Q.Atoms = {MakeAtom(0, 1), MakeAtom(1, 2), MakeAtom(2, 0)};

  std::set<std::vector<uint64_t>> Generic, Naive;
  executeQuery(
      G, Q, {}, 0,
      [&](const std::vector<Value> &Env) {
        Generic.insert({Env[0].Bits, Env[1].Bits, Env[2].Bits});
      },
      /*UseGenericJoin=*/true);
  executeQuery(
      G, Q, {}, 0,
      [&](const std::vector<Value> &Env) {
        Naive.insert({Env[0].Bits, Env[1].Bits, Env[2].Bits});
      },
      /*UseGenericJoin=*/false);
  EXPECT_EQ(Generic, Naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAgreementTest,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));
