//===- tests/core/LanguageTest.cpp - Surface language tests ----------------===//
//
// Part of egglog-cpp. End-to-end tests running complete egglog programs,
// including every listing from §3 of the paper (Figs. 3a, 3b, 4a, 4b).
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include "core/Extract.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>

using namespace egglog;

namespace {

/// Runs a program and expects success.
void expectOk(const std::string &Source) {
  Frontend F;
  EXPECT_TRUE(F.execute(Source)) << F.error();
}

/// Runs a program and expects failure containing \p Fragment.
void expectError(const std::string &Source, const std::string &Fragment) {
  Frontend F;
  ASSERT_FALSE(F.execute(Source)) << "program should have failed";
  EXPECT_NE(F.error().find(Fragment), std::string::npos)
      << "error was: " << F.error();
}

} // namespace

//===----------------------------------------------------------------------===
// Paper listings
//===----------------------------------------------------------------------===

TEST(LanguageTest, Fig3aTransitiveClosure) {
  expectOk(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y))
          ((path x y)))
    (rule ((path x y) (edge y z))
          ((path x z)))
    (edge 1 2)
    (edge 2 3)
    (edge 3 4)
    (run)
    (check (path 1 4))
    (check (path 1 2) (path 2 4) (path 1 3))
  )");
}

TEST(LanguageTest, Fig3aNoFalsePaths) {
  expectError(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2)
    (edge 3 4)
    (run)
    (check (path 1 4))
  )",
              "check failed");
}

TEST(LanguageTest, Fig3bShortestPath) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (function edge (i64 i64) i64)
    (function path (i64 i64) i64 :merge (min old new))
    (rule ((= (edge x y) len))
          ((set (path x y) len)))
    (rule ((= (path x y) xy) (= (edge y z) yz))
          ((set (path x z) (+ xy yz))))
    (set (edge 1 2) 10)
    (set (edge 2 3) 10)
    (set (edge 1 3) 30)
    (run)
    (check (path 1 3))
    (check (= (path 1 3) 20))
  )")) << F.error();
  // The paper: "(check (path 1 3)) ;; prints 20".
  Value Out;
  ASSERT_TRUE(F.evalGround("(path 1 3)", Out));
  EXPECT_EQ(F.graph().valueToI64(Out), 20);
}

TEST(LanguageTest, Fig4aNodeContraction) {
  expectOk(R"(
    (sort Node)
    (function mk (i64) Node)
    (relation edge (Node Node))
    (relation path (Node Node))
    (rule ((edge x y))
          ((path x y)))
    (rule ((path x y) (edge y z))
          ((path x z)))
    (edge (mk 1) (mk 2))
    (edge (mk 2) (mk 3))
    (edge (mk 5) (mk 6))
    (union (mk 3) (mk 5))
    (run)
    (check (edge (mk 3) (mk 6)))
    (check (path (mk 1) (mk 6)))
  )");
}

TEST(LanguageTest, Fig4aPathNeedsTheUnion) {
  // Without (union (mk 3) (mk 5)) the path from 1 to 6 must NOT exist.
  expectError(R"(
    (sort Node)
    (function mk (i64) Node)
    (relation edge (Node Node))
    (relation path (Node Node))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge (mk 1) (mk 2))
    (edge (mk 2) (mk 3))
    (edge (mk 5) (mk 6))
    (run)
    (check (path (mk 1) (mk 6)))
  )",
              "check failed");
}

TEST(LanguageTest, Fig4bBasicEqualitySaturation) {
  expectOk(R"(
    (datatype Math
      (Num i64)
      (Var String)
      (Add Math Math)
      (Mul Math Math))
    ;; expr1 = 2 * (x + 3)
    (define expr1 (Mul (Num 2) (Add (Var "x") (Num 3))))
    ;; expr2 = 6 + 2 * x
    (define expr2 (Add (Num 6) (Mul (Num 2) (Var "x"))))
    (rewrite (Add a b) (Add b a))
    (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (rewrite (Mul (Num a) (Num b)) (Num (* a b)))
    (run 10)
    (check (= expr1 expr2))
  )");
}

//===----------------------------------------------------------------------===
// Merge, default, lattices
//===----------------------------------------------------------------------===

TEST(LanguageTest, MaxLatticeMerge) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (function hi (i64) i64 :merge (max old new))
    (set (hi 0) 10)
    (set (hi 0) 5)
    (set (hi 0) 42)
    (check (= (hi 0) 42))
  )")) << F.error();
}

TEST(LanguageTest, DefaultExpression) {
  expectOk(R"(
    (function counter (i64) i64 :default 0)
    (relation seen (i64))
    (seen 7)
    (rule ((seen x)) ((set (counter x) (+ (counter x) 0))))
    (run 2)
    (check (= (counter 7) 0))
  )");
}

TEST(LanguageTest, MergeConflictReportsError) {
  expectError(R"(
    (function f (i64) i64)
    (set (f 0) 1)
    (set (f 0) 2)
  )",
              "merge conflict");
}

//===----------------------------------------------------------------------===
// Rewrites, guards, extraction
//===----------------------------------------------------------------------===

TEST(LanguageTest, GuardedRewriteOnlyFiresWhenConditionHolds) {
  // x / x -> 1 only when the denominator is a nonzero constant; the
  // motivating Herbie example from §1.
  expectOk(R"(
    (datatype Math
      (Num i64)
      (Div Math Math))
    (rewrite (Div (Num a) (Num a)) (Num 1) :when ((!= a 0)))
    (define good (Div (Num 4) (Num 4)))
    (define bad (Div (Num 0) (Num 0)))
    (run 4)
    (check (= good (Num 1)))
    (check (!= bad (Num 1)))
  )");
}

TEST(LanguageTest, ExtractReturnsSmallestTerm) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math
      (Num i64)
      (Add Math Math)
      (Mul Math Math))
    (define e (Add (Num 1) (Add (Num 2) (Num 3))))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (run 5)
    (extract e)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  EXPECT_EQ(F.outputs()[0], "(Num 6)");
}

TEST(LanguageTest, ExtractRespectsCostAnnotations) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Expr
      (Cheap :cost 1)
      (Pricey :cost 100))
    (define e (Pricey))
    (union (Pricey) (Cheap))
    (extract e)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  EXPECT_EQ(F.outputs()[0], "Cheap");
}

TEST(LanguageTest, BirewriteWorksBothWays) {
  expectOk(R"(
    (datatype Math (Num i64) (Add Math Math))
    (birewrite (Add a b) (Add b a))
    (define e1 (Add (Num 1) (Num 2)))
    (define e2 (Add (Num 2) (Num 1)))
    (run 3)
    (check (= e1 e2))
  )");
}

TEST(LanguageTest, ShiftRewriteFromFig2) {
  // (a * 2) / 2 becomes a via the Fig. 2 rules.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math
      (Num i64)
      (Sym String)
      (Mul Math Math)
      (Div Math Math)
      (Shl Math Math))
    (rewrite (Mul x (Num 2)) (Shl x (Num 1)))
    (rewrite (Div (Mul x y) z) (Mul x (Div y z)))
    (rewrite (Div (Num a) (Num b)) (Num (/ a b)) :when ((!= b 0)))
    (rewrite (Mul x (Num 1)) x)
    (define start (Div (Mul (Sym "a") (Num 2)) (Num 2)))
    (run 6)
    (check (= start (Sym "a")))
    (extract start)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  EXPECT_EQ(F.outputs()[0], "(Sym \"a\")");
}

//===----------------------------------------------------------------------===
// Rules, lets, actions
//===----------------------------------------------------------------------===

TEST(LanguageTest, LetInActions) {
  expectOk(R"(
    (relation fact (i64))
    (relation out (i64 i64))
    (fact 5)
    (rule ((fact x))
          ((let y (* x x))
           (out x y)))
    (run 2)
    (check (out 5 25))
  )");
}

TEST(LanguageTest, CheckFailCommand) {
  expectOk(R"(
    (relation r (i64))
    (r 1)
    (check-fail (r 2))
  )");
}

TEST(LanguageTest, PrimitiveFailureAbandonsMatchOnly) {
  // Division by zero in an action kills that match but not the program.
  expectOk(R"(
    (relation in (i64))
    (relation out (i64))
    (in 0)
    (in 2)
    (rule ((in x)) ((out (/ 10 x))))
    (run 2)
    (check (out 5))
    (check-fail (out 0))
  )");
}

TEST(LanguageTest, RuleWithComparisonGuard) {
  expectOk(R"(
    (relation n (i64))
    (relation big (i64))
    (n 1) (n 10) (n 100)
    (rule ((n x) (> x 5)) ((big x)))
    (run 2)
    (check (big 10) (big 100))
    (check-fail (big 1))
  )");
}

//===----------------------------------------------------------------------===
// Static errors (§5.2: egglog statically typechecks rules)
//===----------------------------------------------------------------------===

TEST(LanguageTest, TypeErrorsAreCaughtStatically) {
  expectError(R"(
    (relation r (i64))
    (r "hello")
  )",
              "sort");
}

TEST(LanguageTest, UnknownFunctionIsAnError) {
  expectError("(frobnicate 1 2)", "unknown");
}

TEST(LanguageTest, UnboundVariableInActionIsAnError) {
  expectError(R"(
    (relation r (i64))
    (rule ((r x)) ((r y)))
  )",
              "unbound");
}

TEST(LanguageTest, ArityErrorIsCaught) {
  expectError(R"(
    (relation r (i64 i64))
    (r 1)
  )",
              "expects");
}

TEST(LanguageTest, UnionOfBaseSortsRejected) {
  expectError("(union 1 2)", "user sorts");
}

TEST(LanguageTest, RedeclarationRejected) {
  expectError(R"(
    (relation r (i64))
    (relation r (i64))
  )",
              "already declared");
}

//===----------------------------------------------------------------------===
// Incremental runs
//===----------------------------------------------------------------------===

TEST(LanguageTest, SplitRunsBehaveLikeOneRun) {
  expectOk(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2)
    (run 1)
    (edge 2 3)
    (run 2)
    (edge 3 4)
    (run)
    (check (path 1 4))
  )");
}

TEST(LanguageTest, UnionsBetweenRunsArePickedUp) {
  expectOk(R"(
    (sort N)
    (function mk (i64) N)
    (relation edge (N N))
    (relation path (N N))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge (mk 1) (mk 2))
    (edge (mk 3) (mk 4))
    (run)
    (union (mk 2) (mk 3))
    (run)
    (check (path (mk 1) (mk 4)))
  )");
}

//===----------------------------------------------------------------------===
// Set containers (used by the lambda pearl, appendix A.2)
//===----------------------------------------------------------------------===

TEST(LanguageTest, SetPrimitives) {
  expectOk(R"(
    (sort ISet (Set i64))
    (function s () ISet :merge (set-union old new))
    (set (s) (set-insert (set-empty) 1))
    (set (s) (set-insert (set-empty) 2))
    (check (= (s) (set-insert (set-insert (set-empty) 1) 2)))
    (check (set-contains (s) 1))
    (check (set-not-contains (s) 3))
    (check (= (set-length (s)) 2))
  )");
}

TEST(LanguageTest, SetIntersectMerge) {
  expectOk(R"(
    (sort ISet (Set i64))
    (function s () ISet :merge (set-intersect old new))
    (set (s) (set-insert (set-insert (set-empty) 1) 2))
    (set (s) (set-insert (set-insert (set-empty) 2) 3))
    (check (= (s) (set-singleton 2)))
  )");
}

//===----------------------------------------------------------------------===
// Rationals
//===----------------------------------------------------------------------===

TEST(LanguageTest, RationalArithmetic) {
  expectOk(R"(
    (function lo () Rational :merge (max old new))
    (set (lo) (rational 1 3))
    (set (lo) (rational 1 4))
    (check (= (lo) (rational 1 3)))
    (check (= (+ (rational 1 3) (rational 1 6)) (rational 1 2)))
    (check (< (rational 1 4) (rational 1 3)))
  )");
}

//===----------------------------------------------------------------------===
// More paper pearls and engine-level properties
//===----------------------------------------------------------------------===

TEST(LanguageTest, Fig18ProofDatatype) {
  // Appendix A.4 (Fig. 18): proofs of connectivity internalized as terms,
  // with proof irrelevance via the unifying merge; extraction returns a
  // shortest proof.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Proof
      (Trans i64 Proof)
      (PEdge i64 i64))
    (function path (i64 i64) Proof)
    (relation edge (i64 i64))

    (rule ((edge x y))
          ((set (path x y) (PEdge x y))))
    (rule ((edge x y) (= p (path y z)))
          ((set (path x z) (Trans x p))))

    (edge 1 2)
    (edge 2 3)
    (edge 1 3)
    (run)
    (extract (path 1 3))
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  // Two proofs exist: (PEdge 1 3) and (Trans 1 (PEdge 2 3)); extraction
  // must return the smaller.
  EXPECT_EQ(F.outputs()[0], "(PEdge 1 3)");
}

TEST(LanguageTest, SemiNaiveMatchesNaiveOnLatticeProgram) {
  // Theorem 4.1 at the language level: shortest paths over a random graph
  // computed with and without semi-naive evaluation agree on every entry.
  std::mt19937 Rng(4242);
  std::uniform_int_distribution<int> Node(0, 12), Weight(1, 9);
  std::string Facts;
  for (int I = 0; I < 40; ++I)
    Facts += "(set (edge " + std::to_string(Node(Rng)) + " " +
             std::to_string(Node(Rng)) + ") " +
             std::to_string(Weight(Rng)) + ")\n";

  auto Run = [&](bool SemiNaive) {
    auto F = std::make_unique<Frontend>();
    F->runOptions().SemiNaive = SemiNaive;
    EXPECT_TRUE(F->execute(R"(
      (function edge (i64 i64) i64 :merge (min old new))
      (function path (i64 i64) i64 :merge (min old new))
      (rule ((= (edge x y) len)) ((set (path x y) len)))
      (rule ((= (path x y) xy) (= (edge y z) yz))
            ((set (path x z) (+ xy yz))))
    )" + Facts + "(run)\n"))
        << F->error();
    return F;
  };
  auto A = Run(true), B = Run(false);
  for (int I = 0; I <= 12; ++I) {
    for (int J = 0; J <= 12; ++J) {
      std::string Term =
          "(path " + std::to_string(I) + " " + std::to_string(J) + ")";
      Value Va, Vb;
      bool Ha = A->evalGround(Term, Va), Hb = B->evalGround(Term, Vb);
      ASSERT_EQ(Ha, Hb) << Term;
      if (Ha)
        EXPECT_EQ(Va.Bits, Vb.Bits) << Term;
    }
  }
}

TEST(LanguageTest, SemiNaiveMatchesNaiveOnEqSatProgram) {
  // Theorem 4.1 on an equality-saturation workload: both modes must
  // produce the same equalities.
  auto Run = [&](bool SemiNaive) {
    Frontend F;
    F.runOptions().SemiNaive = SemiNaive;
    EXPECT_TRUE(F.execute(R"(
      (datatype Math (Num i64) (Sym String)
        (Add Math Math) (Mul Math Math))
      (rewrite (Add a b) (Add b a))
      (birewrite (Add (Add a b) c) (Add a (Add b c)))
      (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))
      (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
      (define e1 (Mul (Sym "p") (Add (Num 1) (Num 2))))
      (define e2 (Add (Mul (Sym "p") (Num 1)) (Mul (Sym "p") (Num 2))))
      (define e3 (Add (Add (Sym "a") (Sym "b")) (Sym "c")))
      (define e4 (Add (Sym "c") (Add (Sym "b") (Sym "a"))))
      (run 8)
      (check (= e1 e2))
      (check (= e3 e4))
    )")) << F.error();
    return F.graph().liveTupleCount();
  };
  EXPECT_EQ(Run(true), Run(false))
      << "semi-naive and naive egglog must reach the same database";
}

TEST(LanguageTest, ExtractVariantsEnumeratesEquivalentTerms) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define e (Add (Num 1) (Num 2)))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (run 4)
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("e", Root));
  std::vector<ExtractedTerm> Variants = extractVariants(F.graph(), Root, 10);
  ASSERT_GE(Variants.size(), 3u);
  // Cheapest first; (Num 3) must be the best.
  EXPECT_EQ(Variants[0].Text, "(Num 3)");
  for (size_t I = 1; I < Variants.size(); ++I)
    EXPECT_GE(Variants[I].Cost, Variants[I - 1].Cost);
  bool HasCommuted = false;
  for (const ExtractedTerm &V : Variants)
    HasCommuted |= V.Text == "(Add (Num 2) (Num 1))";
  EXPECT_TRUE(HasCommuted);
}

TEST(LanguageTest, RunReportSaturates) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2) (edge 2 3)
    (run)
  )")) << F.error();
  EXPECT_TRUE(F.lastRun().Saturated);
  EXPECT_LT(F.lastRun().Iterations.size(), 10u)
      << "a 2-edge graph saturates quickly";
}

TEST(LanguageTest, TimeoutReportedThroughEngine) {
  Frontend F;
  F.runOptions().TimeoutSeconds = 0.01;
  // An explosive associativity workload cannot finish in 10ms.
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Sym String) (Add Math Math))
    (birewrite (Add (Add a b) c) (Add a (Add b c)))
    (rewrite (Add a b) (Add b a))
    (define t (Add (Add (Add (Add (Sym "a") (Sym "b")) (Sym "c"))
                        (Add (Sym "d") (Sym "e")))
                   (Add (Sym "f") (Sym "g"))))
    (run 50)
  )")) << F.error();
  EXPECT_TRUE(F.lastRun().TimedOut || F.lastRun().Saturated);
}

TEST(LanguageTest, BigRationalLiteralRoundTrips) {
  // rational-big handles parts beyond i64 (the paper's §6.2 overflow
  // outlier cannot happen here).
  expectOk(R"(
    (function v () Rational :merge (max old new))
    (set (v) (rational-big "123456789012345678901234567890" "7"))
    (check (= (v) (rational-big "123456789012345678901234567890" "7")))
    (check (< (rational 1 1) (v)))
  )");
}

TEST(LanguageTest, DeleteActionRemovesFacts) {
  expectOk(R"(
    (relation r (i64))
    (r 1)
    (r 2)
    (check (r 1) (r 2))
    (delete (r 1))
    (check-fail (r 1))
    (check (r 2))
  )");
}

TEST(LanguageTest, DeleteInRules) {
  // Subsumption flavor: delete dominated entries when a better one shows
  // up (delete + set composes in a rule head).
  expectOk(R"(
    (relation candidate (i64 i64))
    (relation best (i64))
    (candidate 1 10)
    (candidate 1 3)
    (rule ((candidate x a) (candidate x b) (< a b))
          ((delete (candidate x b))))
    (run 2)
    (check (candidate 1 3))
    (check-fail (candidate 1 10))
  )");
}

TEST(LanguageTest, PrintSizeReportsLiveEntries) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (edge 1 2)
    (edge 2 3)
    (edge 1 2)
    (print-size edge)
    (delete (edge 1 2))
    (print-size edge)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 2u);
  EXPECT_EQ(F.outputs()[0], "edge: 2");
  EXPECT_EQ(F.outputs()[1], "edge: 1");
}

TEST(LanguageTest, SetOptionThreads) {
  // The LANGUAGE.md "set-option" snippet: the parallel match phase must
  // reach the same closure.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2) (edge 2 3) (edge 3 4)
    (set-option :threads 4)
    (run)
    (check (path 1 4))
  )")) << F.error();
  EXPECT_EQ(F.engine().threads(), 4u);
}

TEST(LanguageTest, SetOptionRejectsBadValues) {
  expectError("(set-option :threads 0)", ":threads");
  expectError("(set-option :no-such-option 1)", "unknown option");
  expectError("(set-option :threads)", "usage");
}

TEST(LanguageTest, SetOptionNodeLimit) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5)
    (set-option :node-limit 5)
    (run)
  )")) << F.error();
  EXPECT_TRUE(F.lastRun().HitNodeLimit);
}
