//===- tests/core/IndexTest.cpp - Column-index cache tests -----------------===//
//
// Part of egglog-cpp. Tests for the persistent column-trie index layer
// (core/Index.h): version-counter invalidation on insert/erase/rebuild,
// cache reuse across queries, and a randomized differential check that the
// index-backed executeQuery emits exactly the match multiset of a
// from-scratch scan across interleaved inserts, unions, and rebuilds.
//
//===----------------------------------------------------------------------===//

#include "core/Query.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

using namespace egglog;

namespace {

Value v(uint64_t Bits, uint32_t Sort = 2) { return Value(Sort, Bits); }

TEST(TableVersionTest, BumpsOnInsert) {
  Table T(2);
  uint64_t V0 = T.version();
  Value Keys[2] = {v(1), v(2)};
  T.insert(Keys, v(10), 0);
  EXPECT_GT(T.version(), V0);
  // Updating an existing key (kill + append) bumps again.
  uint64_t V1 = T.version();
  T.insert(Keys, v(20), 1);
  EXPECT_GT(T.version(), V1);
  EXPECT_GT(T.killCount(), 0u);
  // Re-inserting the identical output is a no-op and must not invalidate.
  uint64_t V2 = T.version();
  T.insert(Keys, v(20), 2);
  EXPECT_EQ(T.version(), V2);
}

TEST(TableVersionTest, BumpsOnEraseAndClear) {
  Table T(1);
  Value Key[1] = {v(7)};
  T.insert(Key, v(1), 0);
  uint64_t V0 = T.version();
  EXPECT_TRUE(T.erase(Key));
  EXPECT_GT(T.version(), V0);
  uint64_t V1 = T.version();
  T.clear();
  EXPECT_GT(T.version(), V1);
}

TEST(TableVersionTest, RebuildInvalidatesRewrittenTables) {
  EGraph G;
  SortId V = G.declareSort("V");
  FunctionDecl Decl;
  Decl.Name = "edge";
  Decl.ArgSorts = {V, V};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId Edge = G.declareFunction(std::move(Decl));

  Value A = G.freshId(V), B = G.freshId(V), C = G.freshId(V);
  Value K1[2] = {A, B};
  Value K2[2] = {B, C};
  ASSERT_TRUE(G.setValue(Edge, K1, G.mkUnit()));
  ASSERT_TRUE(G.setValue(Edge, K2, G.mkUnit()));

  const Table &T = *G.function(Edge).Storage;
  uint64_t V0 = T.version();
  // Union A and C: rebuild must rewrite the rows mentioning the loser and
  // bump the version, invalidating any cached index.
  G.unionValues(A, C);
  G.rebuild();
  EXPECT_GT(T.version(), V0);
}

TEST(IndexCacheTest, ReusedAcrossQueriesAndInvalidatedByMutation) {
  EGraph G;
  FunctionDecl Decl;
  Decl.Name = "edge";
  Decl.ArgSorts = {SortTable::I64Sort, SortTable::I64Sort};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId Edge = G.declareFunction(std::move(Decl));
  for (int64_t I = 0; I < 10; ++I) {
    Value Keys[2] = {G.mkI64(I), G.mkI64((I + 1) % 10)};
    ASSERT_TRUE(G.setValue(Edge, Keys, G.mkUnit()));
  }

  Query Q;
  Q.NumVars = 3;
  Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort, SortTable::I64Sort};
  auto MakeAtom = [&](uint32_t A, uint32_t B) {
    QueryAtom Atom;
    Atom.Func = Edge;
    Atom.Terms = {VarOrConst::makeVar(A), VarOrConst::makeVar(B),
                  VarOrConst::makeConst(G.mkUnit())};
    return Atom;
  };
  Q.Atoms = {MakeAtom(0, 1), MakeAtom(1, 2)};

  auto RunOnce = [&] {
    size_t Matches = 0;
    executeQuery(G, Q, [&](const std::vector<Value> &) { ++Matches; });
    return Matches;
  };

  size_t First = RunOnce();
  IndexCache::Stats S1 = G.indexStats();
  EXPECT_GT(S1.Builds, 0u);

  // Re-running the same query against an unchanged table must be served
  // entirely from the cache.
  size_t Second = RunOnce();
  EXPECT_EQ(First, Second);
  IndexCache::Stats S2 = G.indexStats();
  EXPECT_EQ(S2.Builds, S1.Builds);
  EXPECT_GT(S2.Hits, S1.Hits);

  // Mutating the table invalidates; the next run must refresh, not reuse.
  Value Keys[2] = {G.mkI64(3), G.mkI64(7)};
  ASSERT_TRUE(G.setValue(Edge, Keys, G.mkUnit()));
  size_t Third = RunOnce();
  EXPECT_GT(Third, Second);
  IndexCache::Stats S3 = G.indexStats();
  EXPECT_GT(S3.Builds + S3.Refreshes, S2.Builds + S2.Refreshes);

  // Explicit bulk invalidation forces a from-scratch build.
  G.invalidateIndexes();
  size_t Fourth = RunOnce();
  EXPECT_EQ(Fourth, Third);
  EXPECT_GT(G.indexStats().Builds, S3.Builds);
}

TEST(IndexCacheTest, ClearThenRegrowRebuildsFromScratch) {
  Table T(1);
  for (uint64_t I = 0; I < 5; ++I) {
    Value Key[1] = {v(I)};
    T.insert(Key, v(100 + I), 0);
  }
  std::vector<unsigned> Perm{0};
  EXPECT_EQ(T.indexes().get(Perm, AtomFilter::All, 0).size(), 5u);

  // clear() reuses row slots with different contents; a refresh that
  // trusted the stale ids would produce an unsorted index.
  T.clear();
  for (uint64_t I = 0; I < 7; ++I) {
    Value Key[1] = {v(6 - I)};
    T.insert(Key, v(200 + I), 0);
  }
  const ColumnIndex &Idx = T.indexes().get(Perm, AtomFilter::All, 0);
  ASSERT_EQ(Idx.size(), 7u);
  for (size_t I = 0; I + 1 < Idx.size(); ++I)
    EXPECT_TRUE(T.cell(Idx.ids()[I], 0) < T.cell(Idx.ids()[I + 1], 0))
        << "index out of order at " << I;
}

TEST(IndexCacheTest, DerivedPartitionsFilterByStampAndStaySorted) {
  Table T(2);
  for (uint64_t I = 0; I < 40; ++I) {
    Value Keys[2] = {v(I % 7), v(39 - I)};
    T.insert(Keys, v(I), static_cast<uint32_t>(I / 10));
  }
  std::vector<unsigned> Perm{1, 0};
  const uint32_t Bound = 2; // stamps 0..3, so Old/New both non-empty
  const ColumnIndex &All = T.indexes().get(Perm, AtomFilter::All, Bound);
  const ColumnIndex &Old = T.indexes().get(Perm, AtomFilter::Old, Bound);
  const ColumnIndex &New = T.indexes().get(Perm, AtomFilter::New, Bound);
  EXPECT_EQ(All.size(), T.liveCount());
  EXPECT_EQ(Old.size() + New.size(), All.size());
  for (const ColumnIndex *Idx : {&Old, &New}) {
    ASSERT_GT(Idx->size(), 0u);
    for (size_t I = 0; I < Idx->size(); ++I) {
      uint32_t Row = Idx->ids()[I];
      EXPECT_TRUE(T.isLive(Row));
      if (Idx == &Old)
        EXPECT_LT(T.stamp(Row), Bound);
      else
        EXPECT_GE(T.stamp(Row), Bound);
      // Sorted under the permuted column order (position 1 leads and is
      // unique per row here), so the batched sweep probes can gallop over
      // a contiguous ids run.
      if (I + 1 < Idx->size())
        EXPECT_TRUE(T.cell(Row, 1) < T.cell(Idx->ids()[I + 1], 1))
            << "partition out of order at " << I;
    }
  }
}

//===----------------------------------------------------------------------===
// Randomized differential test
//===----------------------------------------------------------------------===

using Match = std::vector<uint64_t>;
using MatchMultiset = std::map<Match, size_t>;

/// From-scratch reference executor: nested loops over a fresh scan of the
/// live rows, sharing no code with the index-backed join.
class ReferenceJoin {
public:
  ReferenceJoin(EGraph &G, const Query &Q,
                const std::vector<AtomFilter> &Filters, uint32_t Bound)
      : G(G), Q(Q), Filters(Filters), Bound(Bound) {}

  MatchMultiset run() {
    Env.assign(Q.NumVars, Value());
    Bound_.assign(Q.NumVars, false);
    Out.clear();
    recurse(0);
    return Out;
  }

private:
  EGraph &G;
  const Query &Q;
  const std::vector<AtomFilter> &Filters;
  uint32_t Bound;
  std::vector<Value> Env;
  std::vector<bool> Bound_;
  MatchMultiset Out;

  void recurse(size_t AtomIndex) {
    if (AtomIndex == Q.Atoms.size()) {
      Match M;
      for (const Value &V : Env)
        M.push_back(V.Bits);
      ++Out[M];
      return;
    }
    const QueryAtom &Atom = Q.Atoms[AtomIndex];
    AtomFilter Filter =
        Filters.empty() ? AtomFilter::All : Filters[AtomIndex];
    const Table &T = *G.function(Atom.Func).Storage;
    for (size_t Row = 0; Row < T.rowCount(); ++Row) {
      if (!T.isLive(Row))
        continue;
      if (Filter == AtomFilter::Old && T.stamp(Row) >= Bound)
        continue;
      if (Filter == AtomFilter::New && T.stamp(Row) < Bound)
        continue;
      std::vector<Value> Cells(Atom.Terms.size());
      T.copyRow(Row, Cells.data());
      std::vector<std::pair<uint32_t, bool>> Trail;
      bool Ok = true;
      for (unsigned I = 0; I < Atom.Terms.size() && Ok; ++I) {
        const VarOrConst &Term = Atom.Terms[I];
        if (!Term.IsVar) {
          Ok = Cells[I] == G.canonicalize(Term.Const);
        } else if (Bound_[Term.Var]) {
          Ok = Env[Term.Var] == Cells[I];
        } else {
          Env[Term.Var] = Cells[I];
          Bound_[Term.Var] = true;
          Trail.emplace_back(Term.Var, true);
        }
      }
      if (Ok)
        recurse(AtomIndex + 1);
      for (auto &[Var, _] : Trail)
        Bound_[Var] = false;
    }
  }
};

MatchMultiset runIndexed(EGraph &G, const Query &Q,
                         const std::vector<AtomFilter> &Filters,
                         uint32_t Bound, bool GenericJoin) {
  MatchMultiset Out;
  executeQuery(
      G, Q, Filters, Bound,
      [&](const std::vector<Value> &Env) {
        Match M;
        for (const Value &V : Env)
          M.push_back(V.Bits);
        ++Out[M];
      },
      GenericJoin);
  return Out;
}

class IndexDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IndexDifferentialTest, CachedJoinMatchesFromScratchScan) {
  std::mt19937 Rng(GetParam());
  EGraph G;
  SortId V = G.declareSort("V");
  FunctionDecl Decl;
  Decl.Name = "edge";
  Decl.ArgSorts = {V, V};
  Decl.OutSort = SortTable::UnitSort;
  FunctionId Edge = G.declareFunction(std::move(Decl));

  std::vector<Value> Ids;
  for (int I = 0; I < 12; ++I)
    Ids.push_back(G.freshId(V));

  auto RandomId = [&] {
    return Ids[std::uniform_int_distribution<size_t>(0, Ids.size() - 1)(
        Rng)];
  };

  // Queries: a 2-hop path, a self loop (repeated variable), and a
  // constant-anchored scan.
  auto MakeAtom = [&](VarOrConst A, VarOrConst B) {
    QueryAtom Atom;
    Atom.Func = Edge;
    Atom.Terms = {A, B, VarOrConst::makeConst(G.mkUnit())};
    return Atom;
  };
  Query TwoHop;
  TwoHop.NumVars = 3;
  TwoHop.VarSorts = {V, V, V};
  TwoHop.Atoms = {
      MakeAtom(VarOrConst::makeVar(0), VarOrConst::makeVar(1)),
      MakeAtom(VarOrConst::makeVar(1), VarOrConst::makeVar(2))};
  Query SelfLoop;
  SelfLoop.NumVars = 1;
  SelfLoop.VarSorts = {V};
  SelfLoop.Atoms = {
      MakeAtom(VarOrConst::makeVar(0), VarOrConst::makeVar(0))};
  Query Anchored;
  Anchored.NumVars = 1;
  Anchored.VarSorts = {V};
  Anchored.Atoms = {
      MakeAtom(VarOrConst::makeConst(Ids[0]), VarOrConst::makeVar(0))};

  for (int Step = 0; Step < 60; ++Step) {
    // Mutate: mostly inserts, some unions; occasionally bump the clock.
    int Op = std::uniform_int_distribution<int>(0, 9)(Rng);
    if (Op < 7) {
      Value Keys[2] = {RandomId(), RandomId()};
      ASSERT_TRUE(G.setValue(Edge, Keys, G.mkUnit()));
    } else if (Op < 9) {
      G.unionValues(G.canonicalize(RandomId()), G.canonicalize(RandomId()));
    } else {
      G.bumpTimestamp();
    }
    // Queries require canonical form; rebuild (which also exercises the
    // bulk invalidation path) before comparing.
    G.rebuild();
    ASSERT_FALSE(G.failed());

    uint32_t Bound = std::uniform_int_distribution<uint32_t>(
        0, G.timestamp() + 1)(Rng);
    for (const Query *Q : {&TwoHop, &SelfLoop, &Anchored}) {
      // All-rows variant plus every semi-naïve delta variant.
      std::vector<std::vector<AtomFilter>> FilterSets = {{}};
      for (size_t J = 0; J < Q->Atoms.size(); ++J) {
        std::vector<AtomFilter> F(Q->Atoms.size(), AtomFilter::All);
        for (size_t K = 0; K < Q->Atoms.size(); ++K)
          F[K] = K < J ? AtomFilter::Old
                       : (K == J ? AtomFilter::New : AtomFilter::All);
        FilterSets.push_back(F);
      }
      MatchMultiset DeltaExpected;
      for (const auto &Filters : FilterSets) {
        MatchMultiset Expected = ReferenceJoin(G, *Q, Filters, Bound).run();
        if (!Filters.empty())
          for (const auto &[M, N] : Expected)
            DeltaExpected[M] += N;
        EXPECT_EQ(runIndexed(G, *Q, Filters, Bound, /*GenericJoin=*/true),
                  Expected)
            << "generic join diverged at step " << Step;
        EXPECT_EQ(runIndexed(G, *Q, Filters, Bound, /*GenericJoin=*/false),
                  Expected)
            << "naive join diverged at step " << Step;
      }
      // The one-call delta expansion must equal the union of its variants.
      MatchMultiset DeltaGot;
      executeQueryDelta(G, *Q, Bound, [&](const std::vector<Value> &Env) {
        Match M;
        for (const Value &V : Env)
          M.push_back(V.Bits);
        ++DeltaGot[M];
      });
      EXPECT_EQ(DeltaGot, DeltaExpected)
          << "executeQueryDelta diverged at step " << Step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
