//===- tests/core/ContextTest.cpp - Push/pop context tests -----------------===//
//
// Part of egglog-cpp. Tests for (push)/(pop) database contexts: snapshots
// must be exact — after a pop, the live content hash, counts, and every
// declaration match the pre-push state, no matter what ran in between.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <gtest/gtest.h>

using namespace egglog;

namespace {

/// Everything that must round-trip across push/pop, in one comparable bag.
struct StateFingerprint {
  uint64_t ContentHash;
  size_t LiveTuples;
  uint64_t Unions;
  size_t Functions;
  size_t Sorts;
  size_t Rules;
  size_t Rulesets;

  bool operator==(const StateFingerprint &) const = default;
};

StateFingerprint fingerprint(Frontend &F) {
  return StateFingerprint{F.graph().liveContentHash(),
                          F.graph().liveTupleCount(),
                          F.graph().unionFind().unionCount(),
                          F.graph().numFunctions(),
                          F.graph().sorts().size(),
                          F.engine().numRules(),
                          F.engine().numRulesets()};
}

} // namespace

TEST(ContextTest, PopRestoresExactContentHash) {
  // The acceptance criterion: hash after pop == hash before push, even
  // after runs that grew tables and indexes in between.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math) (Mul Math Math))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
    (define e (Add (Num 1) (Add (Num 2) (Num 3))))
    (run 3)
  )")) << F.error();
  StateFingerprint Before = fingerprint(F);

  ASSERT_TRUE(F.execute(R"(
    (push)
    (define f (Mul e (Add (Num 4) (Num 5))))
    (rewrite (Mul a b) (Mul b a))
    (run 5)
    (check (= f (Mul (Add (Num 4) (Num 5)) e)))
    (pop)
  )")) << F.error();

  EXPECT_EQ(fingerprint(F), Before);
  // The abandoned work is really gone.
  Value Out;
  EXPECT_FALSE(F.evalGround("f", Out));
  // And the database still works: the pre-push rules keep running.
  ASSERT_TRUE(F.execute("(run 3) (check (= e (Num 6)))")) << F.error();
}

TEST(ContextTest, PopUndoesUnionsExactly) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (sort N)
    (function mk (i64) N)
    (relation edge (N N))
    (relation path (N N))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge (mk 1) (mk 2))
    (edge (mk 3) (mk 4))
    (run)
  )")) << F.error();
  StateFingerprint Before = fingerprint(F);

  ASSERT_TRUE(F.execute(R"(
    (push)
    (union (mk 2) (mk 3))
    (run)
    (check (path (mk 1) (mk 4)))
    (pop)
    (check-fail (path (mk 1) (mk 4)))
  )")) << F.error();
  EXPECT_EQ(fingerprint(F), Before);

  // Entering the context again must behave identically (speculation is
  // repeatable).
  ASSERT_TRUE(F.execute(R"(
    (push)
    (union (mk 2) (mk 3))
    (run)
    (check (path (mk 1) (mk 4)))
    (pop)
  )")) << F.error();
  EXPECT_EQ(fingerprint(F), Before);
}

TEST(ContextTest, DeclarationsInsideContextAreDropped) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation r (i64))
    (r 1)
    (push)
    (sort Inner)
    (function mkInner (i64) Inner)
    (relation s (Inner))
    (ruleset inner-rules)
    (rule ((r x)) ((s (mkInner x))) :ruleset inner-rules)
    (run inner-rules 2)
    (check (s (mkInner 1)))
    (pop)
  )")) << F.error();
  // All inner declarations are gone, so redeclaring them is legal...
  EXPECT_TRUE(F.execute("(sort Inner)")) << F.error();
  EXPECT_TRUE(F.execute("(ruleset inner-rules)")) << F.error();
  // ...and the function name is free again.
  EXPECT_TRUE(F.execute("(relation mkInner (i64))")) << F.error();
}

TEST(ContextTest, NestedContextsUnwindInOrder) {
  Frontend F;
  ASSERT_TRUE(F.execute("(relation r (i64)) (r 1)")) << F.error();
  StateFingerprint Depth0 = fingerprint(F);
  ASSERT_TRUE(F.execute("(push) (r 2)")) << F.error();
  StateFingerprint Depth1 = fingerprint(F);
  ASSERT_TRUE(F.execute("(push 2) (r 3) (r 4)")) << F.error();
  EXPECT_EQ(F.contextDepth(), 3u);

  ASSERT_TRUE(F.execute("(pop 2)")) << F.error();
  EXPECT_EQ(fingerprint(F), Depth1);
  ASSERT_TRUE(F.execute("(check (r 2)) (check-fail (r 3))")) << F.error();
  ASSERT_TRUE(F.execute("(pop)")) << F.error();
  EXPECT_EQ(fingerprint(F), Depth0);
  ASSERT_TRUE(F.execute("(check (r 1)) (check-fail (r 2))")) << F.error();
}

TEST(ContextTest, PopWithoutPushIsAnError) {
  Frontend F;
  ASSERT_FALSE(F.execute("(pop)"));
  EXPECT_NE(F.error().find("without a matching"), std::string::npos)
      << F.error();
}

TEST(ContextTest, OverdrawnPopIsAtomic) {
  // Regression: (pop n) with fewer than n open contexts must fail without
  // consuming the contexts that do exist.
  Frontend F;
  ASSERT_TRUE(F.execute("(relation r (i64)) (push) (r 1)")) << F.error();
  ASSERT_FALSE(F.execute("(pop 2)"));
  EXPECT_EQ(F.contextDepth(), 1u);
  // The open context is intact: its contents are still visible and a
  // plain (pop) still abandons them.
  EXPECT_TRUE(F.execute("(check (r 1)) (pop) (check-fail (r 1))"));
  EXPECT_EQ(F.contextDepth(), 0u);
}

TEST(ContextTest, DeletionsInsideContextAreUndone) {
  // Pop must resurrect rows killed inside the context, not just drop the
  // appended ones.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation r (i64))
    (r 1) (r 2) (r 3)
  )")) << F.error();
  StateFingerprint Before = fingerprint(F);
  ASSERT_TRUE(F.execute(R"(
    (push)
    (delete (r 2))
    (check-fail (r 2))
    (pop)
    (check (r 2))
  )")) << F.error();
  EXPECT_EQ(fingerprint(F), Before);
}

TEST(ContextTest, MergeUpdatesInsideContextRollBack) {
  // A lattice update kills the old row and appends a new one; pop must
  // restore the old output exactly.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (function best (i64) i64 :merge (max old new))
    (set (best 0) 10)
  )")) << F.error();
  StateFingerprint Before = fingerprint(F);
  ASSERT_TRUE(F.execute(R"(
    (push)
    (set (best 0) 99)
    (check (= (best 0) 99))
    (pop)
    (check (= (best 0) 10))
  )")) << F.error();
  EXPECT_EQ(fingerprint(F), Before);
}

TEST(ContextTest, SemiNaiveStateSurvivesAbandonedContext) {
  // A rule's delta bound rolls back with the context, so facts re-asserted
  // after the pop are still found (nothing is skipped as "already seen").
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2)
    (run 1)
    (push)
    (edge 2 3)
    (run)
    (check (path 1 3))
    (pop)
    (check-fail (path 1 3))
    (edge 2 3)
    (run)
    (check (path 1 3))
  )")) << F.error();
}

TEST(ContextTest, EGraphSnapshotRoundTripsAtTheApiLevel) {
  // Library-level use (no Frontend): snapshot, mutate heavily, restore.
  EGraph G;
  SortId N = G.declareSort("N");
  FunctionId Mk = G.declareFunction(
      FunctionDecl{"mk", {SortTable::I64Sort}, N, std::nullopt, std::nullopt, 1});
  for (int64_t I = 0; I < 10; ++I) {
    Value Key = G.mkI64(I);
    Value Out;
    ASSERT_TRUE(G.getOrCreate(Mk, &Key, Out));
  }
  uint64_t HashBefore = G.liveContentHash();
  size_t LiveBefore = G.liveTupleCount();

  EGraph::Snapshot S = G.snapshot();
  // Mutate: new terms, unions, a rebuild, and touched indexes.
  for (int64_t I = 10; I < 50; ++I) {
    Value Key = G.mkI64(I);
    Value Out;
    ASSERT_TRUE(G.getOrCreate(Mk, &Key, Out));
  }
  Value K0 = G.mkI64(0), K1 = G.mkI64(1);
  Value V0 = *G.lookup(Mk, &K0), V1 = *G.lookup(Mk, &K1);
  G.unionValues(V0, V1);
  G.rebuild();
  ASSERT_NE(G.liveContentHash(), HashBefore);

  G.restore(S);
  EXPECT_EQ(G.liveContentHash(), HashBefore);
  EXPECT_EQ(G.liveTupleCount(), LiveBefore);
  EXPECT_EQ(G.unionFind().unionCount(), 0u);
  // The restored table is fully usable: lookups and fresh inserts work.
  EXPECT_TRUE(G.lookup(Mk, &K0).has_value());
  Value K99 = G.mkI64(99), Out99;
  ASSERT_TRUE(G.getOrCreate(Mk, &K99, Out99));
  EXPECT_EQ(G.liveTupleCount(), LiveBefore + 1);
}
