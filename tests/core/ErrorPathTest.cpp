//===- tests/core/ErrorPathTest.cpp - Command error-path coverage ----------===//
//
// Part of egglog-cpp. Every command's error paths: each usage string in
// Frontend.cpp is triggered at least once (a census test reads the source
// and fails when a new usage string appears without a case here), error
// kinds and locations are structured (lastError()), and a failed command
// rolls back atomically — no partial declarations, no stray outputs.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace egglog;

namespace {

struct StateFingerprint {
  uint64_t ContentHash;
  size_t LiveTuples;
  uint64_t Unions;
  size_t Functions;
  size_t Sorts;
  size_t Rules;
  size_t Rulesets;

  bool operator==(const StateFingerprint &) const = default;
};

StateFingerprint fingerprint(Frontend &F) {
  return StateFingerprint{F.graph().liveContentHash(),
                          F.graph().liveTupleCount(),
                          F.graph().unionFind().unionCount(),
                          F.graph().numFunctions(),
                          F.graph().sorts().size(),
                          F.engine().numRules(),
                          F.engine().numRulesets()};
}

/// One error-path case: optional setup (must succeed), a failing command,
/// and the substring its error message must contain.
struct ErrorCase {
  const char *Setup;
  const char *Command;
  const char *ExpectedSubstring;
};

void expectError(const ErrorCase &Case, ErrKind ExpectedKind = ErrKind::None) {
  Frontend F;
  if (Case.Setup && *Case.Setup)
    ASSERT_TRUE(F.execute(Case.Setup)) << Case.Setup << ": " << F.error();
  StateFingerprint Before = fingerprint(F);
  size_t OutputsBefore = F.outputs().size();
  EXPECT_FALSE(F.execute(Case.Command)) << Case.Command;
  EXPECT_NE(F.error().find(Case.ExpectedSubstring), std::string::npos)
      << Case.Command << " produced: " << F.error();
  EXPECT_TRUE(F.lastError()) << Case.Command;
  if (ExpectedKind != ErrKind::None)
    EXPECT_EQ(F.lastError().Kind, ExpectedKind) << Case.Command;
  // The failed command must leave no trace.
  EXPECT_EQ(fingerprint(F), Before) << Case.Command;
  EXPECT_EQ(F.outputs().size(), OutputsBefore) << Case.Command;
}

/// Usage strings from Frontend.cpp mapped to a program that triggers each.
const std::map<std::string, ErrorCase> &usageCases() {
  static const std::map<std::string, ErrorCase> Cases = {
      {"usage: (sort Name) or (sort Name (Set Elem))",
       {"", "(sort)", "usage: (sort"}},
      {"usage: (datatype Name ctors...)", {"", "(datatype)", "usage:"}},
      {"usage: (function Name (ArgSorts...) OutSort ...)",
       {"", "(function f)", "usage: (function"}},
      {"usage: (relation Name (ArgSorts...))",
       {"", "(relation r)", "usage: (relation"}},
      {"usage: (rule (facts...) (actions...))", {"", "(rule)", "usage: (rule"}},
      {"usage: (rewrite lhs rhs [:when (conds...)])",
       {"", "(rewrite x)", "usage: (rewrite"}},
      {"usage: (define name expr)", {"", "(define x)", "usage: (define"}},
      {"usage: (ruleset name)", {"", "(ruleset)", "usage: (ruleset"}},
      {"usage: (run [ruleset] [n] [:until (facts...)])",
       {"", "(run -1)", "usage: (run ["}},
      {"usage: (repeat n schedules...)",
       {"", "(run-schedule (repeat))", "usage: (repeat"}},
      {"usage: (run-schedule schedules...)",
       {"", "(run-schedule)", "usage: (run-schedule"}},
      {"usage: (set-option :option value)",
       {"", "(set-option)", "usage: (set-option"}},
      {"usage: (push) or (push n)", {"", "(push 0)", "usage: (push"}},
      {"usage: (pop) or (pop n)", {"", "(pop 0)", "usage: (pop"}},
      {"usage: (check fact...)", {"", "(check)", "usage: (check"}},
      {"usage: (extract expr [n])", {"", "(extract)", "usage: (extract"}},
      {"usage: (print-size function)",
       {"", "(print-size)", "usage: (print-size"}},
      {"usage: (set (f args...) value)", {"", "(set)", "usage: (set ("}},
      {"usage: (union a b)", {"", "(union)", "usage: (union"}},
      {"usage: (let name expr)",
       {"(sort S)", "(rule ((= x 1)) ((let y)))", "usage: (let"}},
      {"usage: (delete (f args...))", {"", "(delete)", "usage: (delete"}},
      {"usage: (save <file>) with a string path",
       {"", "(save)", "usage: (save"}},
      {"usage: (load <file>) with a string path",
       {"", "(load unquoted)", "usage: (load"}},
      {"usage: (check-program)",
       {"", "(check-program 1)", "usage: (check-program)"}},
  };
  return Cases;
}

} // namespace

// Census: every `usage:` string in the frontend source has a covering case
// above. Adding a new command with a usage string without adding an
// error-path test here fails this test.
TEST(ErrorPathTest, EveryUsageStringHasACoveringCase) {
  std::ifstream Stream(EGGLOG_SOURCE_DIR "/src/core/Frontend.cpp");
  ASSERT_TRUE(Stream.is_open());
  std::stringstream Buffer;
  Buffer << Stream.rdbuf();
  std::string Source = Buffer.str();

  std::set<std::string> Found;
  for (size_t Pos = Source.find("usage: "); Pos != std::string::npos;
       Pos = Source.find("usage: ", Pos + 1)) {
    size_t End = Source.find('"', Pos);
    ASSERT_NE(End, std::string::npos);
    Found.insert(Source.substr(Pos, End - Pos));
  }
  EXPECT_GE(Found.size(), 20u);
  for (const std::string &Usage : Found)
    EXPECT_TRUE(usageCases().count(Usage))
        << "no error-path case covers: " << Usage;
}

// Census over the command-line tools: every flag a tool's argv loop
// matches must appear in its --help usage text. Adding a flag without
// documenting it fails this test.
TEST(ErrorPathTest, EveryToolFlagIsDocumentedInItsUsageText) {
  const char *Tools[] = {EGGLOG_SOURCE_DIR "/tools/egglog_run.cpp",
                         EGGLOG_SOURCE_DIR "/tools/egglog_lint.cpp"};
  for (const char *Path : Tools) {
    SCOPED_TRACE(Path);
    std::ifstream Stream(Path);
    ASSERT_TRUE(Stream.is_open());
    std::stringstream Buffer;
    Buffer << Stream.rdbuf();
    std::string Source = Buffer.str();

    // Flags are matched as std::strcmp(argv[I], "--flag") == 0.
    std::set<std::string> Flags;
    const std::string Needle = "argv[I], \"";
    for (size_t Pos = Source.find(Needle); Pos != std::string::npos;
         Pos = Source.find(Needle, Pos + 1)) {
      size_t Start = Pos + Needle.size();
      size_t End = Source.find('"', Start);
      ASSERT_NE(End, std::string::npos);
      Flags.insert(Source.substr(Start, End - Start));
    }
    ASSERT_GE(Flags.size(), 2u);

    size_t UsageStart = Source.find("\"usage: egglog-");
    ASSERT_NE(UsageStart, std::string::npos);
    std::string UsageText = Source.substr(UsageStart);
    for (const std::string &Flag : Flags) {
      if (Flag == "--help")
        continue; // --help prints the text; listing itself is optional
      EXPECT_NE(UsageText.find(Flag), std::string::npos)
          << "flag " << Flag << " missing from the usage text";
    }
  }
}

TEST(ErrorPathTest, EveryUsageCaseTriggersItsMessage) {
  for (const auto &[Usage, Case] : usageCases()) {
    SCOPED_TRACE(Usage);
    expectError(Case);
  }
}

TEST(ErrorPathTest, NamedErrorPaths) {
  const ErrorCase Cases[] = {
      {"", "(relation r (Unknown))", "unknown sort 'Unknown'"},
      {"(sort S)", "(sort S)", "sort 'S' already declared"},
      {"(relation r (i64))", "(relation r (i64))",
       "function 'r' already declared"},
      {"(relation r (i64))", "(datatype T (r i64))",
       "function 'r' already declared"},
      {"", "(run foo)", "unknown ruleset 'foo'"},
      {"", "(set-option :wat 1)", "unknown option ':wat'"},
      {"", "(datatype T (C :cost -1))", ":cost must be non-negative"},
      {"", "(extract x)", "unbound variable 'x'"},
      {"", "(print-size f)", "unknown function 'f'"},
      {"(datatype M (N i64))", "(rule ((N x y)) ((N 1)))",
       "function 'N' expects 1 arguments"},
      {"(datatype M (N i64))", "(rewrite (f x) x)",
       "unknown function or primitive 'f'"},
      {"", "(set-option :threads 0)", ":threads expects a positive integer"},
      {"", "(set-option :node-limit -1)",
       ":node-limit expects a non-negative integer"},
      {"", "(set-option :timeout -1)", ":timeout expects a non-negative"},
      {"", "(set-option :max-nodes -1)",
       ":max-nodes expects a non-negative integer"},
      {"", "(set-option :max-memory-mb -1)",
       ":max-memory-mb expects a non-negative integer"},
  };
  for (const ErrorCase &Case : Cases) {
    SCOPED_TRACE(Case.Command);
    expectError(Case);
  }
}

TEST(ErrorPathTest, RuntimeErrorKinds) {
  expectError({"(datatype M (Num i64)) (define e (Num 1))",
               "(check (= e (Num 99)))", "check failed: "},
              ErrKind::Runtime);
  expectError({"(datatype M (Num i64)) (define e (Num 1))",
               "(check-fail (= e e))", "check-fail succeeded unexpectedly: "},
              ErrKind::Runtime);
  expectError({"", "(pop)", "without a matching"}, ErrKind::Runtime);
  expectError({"(push) (pop)", "(pop)", "without a matching"},
              ErrKind::Runtime);
}

TEST(ErrorPathTest, SnapshotIOErrorKinds) {
  // Path errors from (load)/(save) carry the io kind (exit code 1 through
  // the runner) and roll back like any other failed command.
  expectError({"", "(load \"/nonexistent/dir/f.snap\")", "cannot open"},
              ErrKind::IO);
  expectError({"(sort S)", "(save \"/nonexistent/dir/f.snap\")",
               "cannot create"},
              ErrKind::IO);
  expectError({"(push)", "(load \"/nonexistent/dir/f.snap\")",
               "inside a (push) context"},
              ErrKind::IO);
}

TEST(ErrorPathTest, ParseErrorsAreStructured) {
  Frontend F;
  EXPECT_FALSE(F.execute("(sort S"));
  EXPECT_EQ(F.lastError().Kind, ErrKind::Parse);
  EXPECT_GT(F.lastError().Line, 0u);
  EXPECT_GT(F.lastError().Col, 0u);
  EXPECT_NE(F.error().find("parse error"), std::string::npos);
}

TEST(ErrorPathTest, ErrorsCarrySourceLocation) {
  Frontend F;
  // The failing form starts on line 3, column 1.
  EXPECT_FALSE(F.execute("\n\n(pop)"));
  EXPECT_EQ(F.lastError().Line, 3u);
  EXPECT_EQ(F.lastError().Col, 1u);
  // The legacy rendered format is stable.
  EXPECT_EQ(F.error().rfind("line 3: ", 0), 0u) << F.error();
}

TEST(ErrorPathTest, FailedDatatypeRollsBackPartialDeclarations) {
  Frontend F;
  StateFingerprint Before = fingerprint(F);
  // T and C are declared before D's unknown sort fails the command; the
  // transaction must remove both again.
  EXPECT_FALSE(F.execute("(datatype T (C) (D Unknown))"));
  EXPECT_EQ(fingerprint(F), Before);
  SortId S;
  EXPECT_FALSE(F.graph().sorts().lookup("T", S));
  FunctionId Func;
  EXPECT_FALSE(F.graph().lookupFunctionName("C", Func));
  // The name is reusable: the corrected declaration succeeds.
  EXPECT_TRUE(F.execute("(datatype T (C) (D i64))")) << F.error();
}

TEST(ErrorPathTest, PanicRollsBackAndDatabaseStaysUsable) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
    (define e (Add (Num 1) (Num 2)))
  )")) << F.error();
  StateFingerprint Before = fingerprint(F);
  EXPECT_FALSE(F.execute("(panic \"boom\")"));
  EXPECT_NE(F.error().find("boom"), std::string::npos) << F.error();
  EXPECT_EQ(fingerprint(F), Before);
  ASSERT_TRUE(F.execute("(run 2) (check (= e (Num 3)))")) << F.error();
}

TEST(ErrorPathTest, OverdrawnPopKeepsContexts) {
  Frontend F;
  ASSERT_TRUE(F.execute("(sort S) (push)")) << F.error();
  EXPECT_FALSE(F.execute("(pop 2)"));
  EXPECT_EQ(F.lastError().Kind, ErrKind::Runtime);
  EXPECT_EQ(F.contextDepth(), 1u);
  EXPECT_TRUE(F.execute("(pop)")) << F.error();
}

TEST(ErrorPathTest, SuccessClearsLastError) {
  Frontend F;
  EXPECT_FALSE(F.execute("(pop)"));
  EXPECT_TRUE(F.lastError());
  EXPECT_TRUE(F.execute("(sort S)")) << F.error();
  EXPECT_FALSE(F.lastError());
  EXPECT_EQ(F.lastError().Kind, ErrKind::None);
}
