//===- tests/core/GovernorTest.cpp - Resource governance tests -------------===//
//
// Part of egglog-cpp. The ResourceGovernor turns timeouts, node ceilings,
// memory ceilings, and cooperative cancellation into bounded-latency hard
// stops: the tripped command fails with a limit/cancelled error and rolls
// back exactly, and the database keeps working afterwards.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "support/Governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace egglog;

namespace {

struct StateFingerprint {
  uint64_t ContentHash;
  size_t LiveTuples;
  uint64_t Unions;
  size_t Functions;
  size_t Sorts;
  size_t Rules;
  size_t Rulesets;

  bool operator==(const StateFingerprint &) const = default;
};

StateFingerprint fingerprint(Frontend &F) {
  return StateFingerprint{F.graph().liveContentHash(),
                          F.graph().liveTupleCount(),
                          F.graph().unionFind().unionCount(),
                          F.graph().numFunctions(),
                          F.graph().sorts().size(),
                          F.engine().numRules(),
                          F.engine().numRulesets()};
}

/// An explosive workload: associativity + commutativity over a long Add
/// chain saturates far beyond any limit a test would wait for.
void setupExplosive(Frontend &F, int ChainLength = 14) {
  std::string Seed = "(Num 0)";
  for (int I = 1; I <= ChainLength; ++I)
    Seed = "(Add (Num " + std::to_string(I) + ") " + Seed + ")";
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math) (Mul Math Math))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add (Add a b) c) (Add a (Add b c)))
  )")) << F.error();
  ASSERT_TRUE(F.execute("(define e " + Seed + ")")) << F.error();
}

} // namespace

TEST(GovernorTest, VerdictsAndCheckpointInterval) {
  ResourceGovernor Gov;
  EXPECT_FALSE(Gov.anyLimitSet());
  EXPECT_EQ(Gov.poll(1u << 30, 1u << 30), GovernorVerdict::Ok);

  Gov.setMaxLive(10);
  EXPECT_TRUE(Gov.anyLimitSet());
  EXPECT_EQ(Gov.poll(10, 0), GovernorVerdict::Ok);
  EXPECT_EQ(Gov.poll(11, 0), GovernorVerdict::NodeLimit);

  Gov.setMaxBytes(1000);
  EXPECT_EQ(Gov.poll(0, 1001), GovernorVerdict::MemoryLimit);

  // Cancellation is sticky until the next arm().
  Gov.requestCancel();
  EXPECT_EQ(Gov.pollQuick(), GovernorVerdict::Cancelled);
  EXPECT_EQ(Gov.pollQuick(), GovernorVerdict::Cancelled);
  Gov.arm();
  EXPECT_EQ(Gov.pollQuick(), GovernorVerdict::Ok);

  // An already-expired deadline trips immediately after arm().
  Gov.setTimeout(1e-9);
  Gov.arm();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(Gov.pollQuick(), GovernorVerdict::Timeout);

  Gov.setCheckpointInterval(0);
  EXPECT_EQ(Gov.checkpointInterval(), 1u);
  Gov.setCheckpointInterval(64);
  EXPECT_EQ(Gov.checkpointInterval(), 64u);
}

TEST(GovernorTest, TimeoutIsAHardBoundedStopThatRollsBack) {
  Frontend F;
  setupExplosive(F);
  StateFingerprint Before = fingerprint(F);

  ASSERT_TRUE(F.execute("(set-option :timeout 0.05)")) << F.error();
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(F.execute("(run 100)"));
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_EQ(F.lastError().Kind, ErrKind::Limit);
  EXPECT_NE(F.error().find("timeout"), std::string::npos) << F.error();
  // Checkpoints bound the stop latency far below a full saturation run
  // (which would take minutes); 1s leaves slack for slow CI machines.
  EXPECT_LT(Elapsed, 1.0);
  EXPECT_EQ(fingerprint(F), Before);

  // Disabling the budget lets work proceed again.
  ASSERT_TRUE(F.execute("(set-option :timeout 0)")) << F.error();
  EXPECT_TRUE(F.execute("(run 1)")) << F.error();
}

TEST(GovernorTest, NodeCeilingTripsAndRollsBack) {
  Frontend F;
  F.graph().governor().setCheckpointInterval(16);
  setupExplosive(F);
  StateFingerprint Before = fingerprint(F);

  ASSERT_TRUE(F.execute("(set-option :max-nodes 200)")) << F.error();
  EXPECT_FALSE(F.execute("(run 100)"));
  EXPECT_EQ(F.lastError().Kind, ErrKind::Limit);
  EXPECT_NE(F.error().find("live tuple ceiling"), std::string::npos)
      << F.error();
  EXPECT_EQ(fingerprint(F), Before);

  ASSERT_TRUE(F.execute("(set-option :max-nodes 0)")) << F.error();
  EXPECT_TRUE(F.execute("(run 1)")) << F.error();
}

TEST(GovernorTest, MemoryCeilingTripsAndRollsBack) {
  Frontend F;
  F.graph().governor().setCheckpointInterval(16);
  setupExplosive(F, /*ChainLength=*/16);
  StateFingerprint Before = fingerprint(F);

  ASSERT_TRUE(F.execute("(set-option :max-memory-mb 1)")) << F.error();
  EXPECT_FALSE(F.execute("(run 100)"));
  EXPECT_EQ(F.lastError().Kind, ErrKind::Limit);
  EXPECT_NE(F.error().find("memory ceiling"), std::string::npos) << F.error();
  EXPECT_EQ(fingerprint(F), Before);
}

TEST(GovernorTest, CancelFromAnotherThreadRollsBack) {
  Frontend F;
  setupExplosive(F);
  StateFingerprint Before = fingerprint(F);

  std::thread Canceller([&F] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    F.graph().governor().requestCancel();
  });
  EXPECT_FALSE(F.execute("(run 1000)"));
  Canceller.join();
  EXPECT_EQ(F.lastError().Kind, ErrKind::Cancelled);
  EXPECT_EQ(fingerprint(F), Before);

  // arm() at the next command clears the stale cancel request.
  EXPECT_TRUE(F.execute("(run 1)")) << F.error();
}

TEST(GovernorTest, LimitsApplyToExtraction) {
  // The extract scan honours checkpoints too: a cancel requested before
  // the index is (re)built stops the scan and fails the command cleanly.
  Frontend F;
  setupExplosive(F, /*ChainLength=*/10);
  ASSERT_TRUE(F.execute("(run 2)")) << F.error();
  StateFingerprint Before = fingerprint(F);

  F.graph().governor().setCheckpointInterval(1);
  std::thread Canceller([&F] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    F.graph().governor().requestCancel();
  });
  // A long saturation run whose trailing extract would need the index; the
  // cancel lands either during the run or during extraction — both must
  // roll back to the same fingerprint.
  bool Ok = F.execute("(run 50) (extract e)");
  Canceller.join();
  if (!Ok) {
    EXPECT_EQ(F.lastError().Kind, ErrKind::Cancelled);
    EXPECT_EQ(fingerprint(F), Before);
  }
  EXPECT_TRUE(F.execute("(extract e)")) << F.error();
}
