//===- tests/core/UnionFindTest.cpp - Union-find tests ---------------------===//
//
// Part of egglog-cpp. Unit and property tests for the canonicalizing
// union-find (§3.3 of the paper).
//
//===----------------------------------------------------------------------===//

#include "core/UnionFind.h"

#include <gtest/gtest.h>

#include <random>

using egglog::UnionFind;

TEST(UnionFindTest, MakeSetIsIdentity) {
  UnionFind UF;
  for (int I = 0; I < 10; ++I) {
    uint64_t Id = UF.makeSet();
    EXPECT_EQ(Id, static_cast<uint64_t>(I));
    EXPECT_EQ(UF.find(Id), Id);
  }
  EXPECT_EQ(UF.size(), 10u);
  EXPECT_EQ(UF.unionCount(), 0u);
}

TEST(UnionFindTest, UniteKeepsSmallestIdCanonical) {
  UnionFind UF;
  uint64_t A = UF.makeSet(), B = UF.makeSet(), C = UF.makeSet();
  EXPECT_EQ(UF.unite(B, C), B);
  EXPECT_EQ(UF.find(C), B);
  EXPECT_EQ(UF.unite(C, A), A);
  EXPECT_EQ(UF.find(B), A);
  EXPECT_EQ(UF.find(C), A);
  EXPECT_EQ(UF.unionCount(), 2u);
}

TEST(UnionFindTest, UniteIsIdempotent) {
  UnionFind UF;
  uint64_t A = UF.makeSet(), B = UF.makeSet();
  UF.unite(A, B);
  uint64_t Count = UF.unionCount();
  UF.unite(A, B);
  UF.unite(B, A);
  EXPECT_EQ(UF.unionCount(), Count) << "re-uniting must not count";
  EXPECT_TRUE(UF.congruent(A, B));
}

class UnionFindPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(UnionFindPropertyTest, EquivalenceRelationAxioms) {
  std::mt19937 Rng(GetParam());
  UnionFind UF;
  constexpr int N = 200;
  for (int I = 0; I < N; ++I)
    UF.makeSet();
  // Oracle: naive labels.
  std::vector<int> Label(N);
  for (int I = 0; I < N; ++I)
    Label[I] = I;
  std::uniform_int_distribution<int> Dist(0, N - 1);
  for (int Step = 0; Step < 300; ++Step) {
    int A = Dist(Rng), B = Dist(Rng);
    UF.unite(A, B);
    int La = Label[A], Lb = Label[B];
    if (La != Lb)
      for (int I = 0; I < N; ++I)
        if (Label[I] == Lb)
          Label[I] = La;
    // Spot-check the full relation every 50 steps.
    if (Step % 50 == 0) {
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; J += 17)
          EXPECT_EQ(UF.congruent(I, J), Label[I] == Label[J]);
    }
  }
  // Canonical representative must be the minimum of its class.
  for (int I = 0; I < N; ++I) {
    uint64_t Root = UF.find(I);
    EXPECT_LE(Root, static_cast<uint64_t>(I));
    for (int J = 0; J < N; ++J)
      if (Label[J] == Label[I])
        EXPECT_GE(static_cast<uint64_t>(J), Root);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));
