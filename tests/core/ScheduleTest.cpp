//===- tests/core/ScheduleTest.cpp - Ruleset and schedule tests ------------===//
//
// Part of egglog-cpp. Tests for named rulesets, (run name n), and the
// (run-schedule ...) combinators: saturate, seq, repeat, and :until.
// Includes the phased-vs-monolithic equivalence check (running rulesets in
// phases must reach the same fixpoint as one combined ruleset) and the
// per-ruleset semi-naïve correctness it depends on.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <gtest/gtest.h>

using namespace egglog;

TEST(ScheduleTest, RulesOnlyRunWithTheirRuleset) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset mine)
    (relation in (i64))
    (relation out (i64))
    (rule ((in x)) ((out x)) :ruleset mine)
    (in 1)
    (run 5)
    (check-fail (out 1))
    (run mine 1)
    (check (out 1))
  )")) << F.error();
}

TEST(ScheduleTest, DefaultRulesetIsUntouchedByNamedRuns) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset mine)
    (relation in (i64))
    (relation viaDefault (i64))
    (relation viaMine (i64))
    (rule ((in x)) ((viaDefault x)))
    (rule ((in x)) ((viaMine x)) :ruleset mine)
    (in 1)
    (run mine 1)
    (check (viaMine 1))
    (check-fail (viaDefault 1))
  )")) << F.error();
}

TEST(ScheduleTest, UnknownRulesetIsAnError) {
  Frontend F;
  ASSERT_FALSE(F.execute("(run nowhere 1)"));
  EXPECT_NE(F.error().find("unknown ruleset"), std::string::npos) << F.error();
  Frontend G;
  ASSERT_FALSE(G.execute(R"(
    (relation r (i64))
    (rule ((r x)) ((r x)) :ruleset nowhere)
  )"));
  EXPECT_NE(G.error().find("unknown ruleset"), std::string::npos) << G.error();
}

TEST(ScheduleTest, RulesetRedeclarationIsAnError) {
  Frontend F;
  ASSERT_FALSE(F.execute("(ruleset a) (ruleset a)"));
  EXPECT_NE(F.error().find("already declared"), std::string::npos) << F.error();
}

TEST(ScheduleTest, SaturateRunsToFixpoint) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset closure)
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)) :ruleset closure)
    (rule ((path x y) (edge y z)) ((path x z)) :ruleset closure)
    (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5)
    (run-schedule (saturate closure))
    (check (path 1 5))
  )")) << F.error();
  EXPECT_TRUE(F.lastRun().Saturated);
}

TEST(ScheduleTest, RepeatRunsTheBodyNTimes) {
  // Each (run grow 1) doubles the population; repeat 3 => 2^3 entries from
  // one seed.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset grow)
    (function count () i64 :merge (max old new))
    (set (count) 0)
    (rule ((= (count) c)) ((set (count) (+ c 1))) :ruleset grow)
    (run-schedule (repeat 3 (run grow 1)))
    (check (= (count) 3))
  )")) << F.error();
}

TEST(ScheduleTest, SeqOrdersPhases) {
  // The consume phase sees everything the produce phase made, and nothing
  // runs twice: strict left-to-right sequencing.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset produce)
    (ruleset consume)
    (relation seed (i64))
    (relation made (i64))
    (relation eaten (i64))
    (rule ((seed x)) ((made x)) :ruleset produce)
    (rule ((made x)) ((eaten x)) :ruleset consume)
    (seed 7)
    (run-schedule (seq (run produce 1) (run consume 1)))
    (check (eaten 7))
  )")) << F.error();
}

TEST(ScheduleTest, UntilStopsEarly) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (function count () i64 :merge (max old new))
    (set (count) 0)
    (rule ((= (count) c)) ((set (count) (+ c 1))))
    (run 100 :until ((= (count) 5)))
    (check (= (count) 5))
  )")) << F.error();
}

TEST(ScheduleTest, UntilAlreadySatisfiedRunsNothing) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (function count () i64 :merge (max old new))
    (set (count) 3)
    (rule ((= (count) c)) ((set (count) (+ c 1))))
    (run 100 :until ((= (count) 3)))
    (check (= (count) 3))
  )")) << F.error();
  EXPECT_EQ(F.lastRun().Iterations.size(), 0u);
}

TEST(ScheduleTest, PhasedEqualsMonolithicFixpoint) {
  // Theorem 4.1 carried to schedules: splitting the rules into two
  // rulesets and alternating them must reach the same database as running
  // them all together, because per-rule delta bounds stay correct across
  // phases.
  const char *Shared = R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5) (edge 5 6) (edge 2 6)
    (edge 6 1)
  )";
  Frontend Mono;
  ASSERT_TRUE(Mono.execute(std::string(Shared) + R"(
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (run)
  )")) << Mono.error();

  Frontend Phased;
  ASSERT_TRUE(Phased.execute(std::string(Shared) + R"(
    (ruleset base)
    (ruleset step)
    (rule ((edge x y)) ((path x y)) :ruleset base)
    (rule ((path x y) (edge y z)) ((path x z)) :ruleset step)
    (run-schedule (saturate (run base 1) (run step 1)))
  )")) << Phased.error();

  EXPECT_EQ(Mono.graph().liveContentHash(), Phased.graph().liveContentHash());
  EXPECT_EQ(Mono.graph().liveTupleCount(), Phased.graph().liveTupleCount());
}

TEST(ScheduleTest, PhasedSemiNaiveMatchesNaive) {
  // The same phased schedule with and without semi-naïve deltas agrees,
  // i.e. per-ruleset DeltaStart bookkeeping loses nothing across phases.
  auto Run = [&](bool SemiNaive) {
    Frontend F;
    F.runOptions().SemiNaive = SemiNaive;
    EXPECT_TRUE(F.execute(R"(
      (ruleset expand)
      (ruleset fold)
      (datatype Math (Num i64) (Sym String) (Add Math Math))
      (rewrite (Add a b) (Add b a) :ruleset expand)
      (birewrite (Add (Add a b) c) (Add a (Add b c)) :ruleset expand)
      (rewrite (Add (Num x) (Num y)) (Num (+ x y)) :ruleset fold)
      (define e (Add (Num 1) (Add (Sym "x") (Num 2))))
      (run-schedule (repeat 4 (run expand 1) (saturate fold)))
      (check (= e (Add (Sym "x") (Num 3))))
    )")) << F.error();
    // Fresh-id allocation order differs between modes, so compare sizes
    // (as the LanguageTest equivalence tests do), not content hashes.
    return F.graph().liveTupleCount();
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(ScheduleTest, NestedCombinators) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset a)
    (ruleset b)
    (relation ra (i64))
    (relation rb (i64))
    (relation seed (i64))
    (rule ((seed x)) ((ra x)) :ruleset a)
    (rule ((ra x)) ((rb (+ x 1))) :ruleset b)
    (seed 0)
    (run-schedule (repeat 2 (seq (saturate a) (run b 1))))
    (check (rb 1))
  )")) << F.error();
}

TEST(ScheduleTest, ScheduleRespectsNodeLimit) {
  Frontend F;
  F.runOptions().NodeLimit = 30;
  ASSERT_TRUE(F.execute(R"(
    (ruleset blow)
    (datatype Math (Sym String) (Add Math Math))
    (rewrite (Add a b) (Add b a) :ruleset blow)
    (birewrite (Add (Add a b) c) (Add a (Add b c)) :ruleset blow)
    (define t (Add (Add (Sym "a") (Sym "b")) (Add (Sym "c") (Sym "d"))))
    (run-schedule (saturate blow))
  )")) << F.error();
  EXPECT_TRUE(F.lastRun().HitNodeLimit);
}

TEST(ScheduleTest, BackoffAcrossPhasesTerminates) {
  // A saturate over a ruleset whose rules over-match: BackOff bans them,
  // the schedule fast-forwards the dead time, and the saturate still
  // reaches the true fixpoint.
  Frontend F;
  F.runOptions().UseBackoff = true;
  F.runOptions().BackoffMatchLimit = 4; // tiny: force repeated bans
  ASSERT_TRUE(F.execute(R"(
    (ruleset closure)
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)) :ruleset closure)
    (rule ((path x y) (edge y z)) ((path x z)) :ruleset closure)
    (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5) (edge 5 6) (edge 6 7)
    (run-schedule (saturate closure))
    (check (path 1 7))
  )")) << F.error();
}

TEST(ScheduleTest, SaturateWithMetUntilGoalExitsDespiteBans) {
  // Regression: a Run leaf whose :until goal already holds must not report
  // pending BackOff bans as progress, or an enclosing saturate spins
  // through its whole pass budget without running anything.
  Frontend F;
  F.runOptions().UseBackoff = true;
  F.runOptions().BackoffMatchLimit = 1; // ban the closure rules instantly
  ASSERT_TRUE(F.execute(R"(
    (ruleset closure)
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)) :ruleset closure)
    (rule ((path x y) (edge y z)) ((path x z)) :ruleset closure)
    (edge 1 2) (edge 2 3) (edge 3 4)
    (run-schedule (saturate (run closure 1 :until ((path 1 2)))))
    (check (path 1 2))
  )")) << F.error();
  // Well under the saturate pass cap: the goal-met leaf ends the loop.
  EXPECT_LT(F.lastRun().Iterations.size(), 100u);
}

TEST(ScheduleTest, MultiLeafScheduleDoesNotClaimSaturation) {
  // Regression: a later leaf saturating must not make the whole schedule
  // report Saturated while an earlier leaf still had work.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset a)
    (ruleset b)
    (relation seed (i64))
    (relation ra (i64))
    (relation rb (i64))
    (rule ((seed x)) ((ra (+ x 1))) :ruleset a)
    (rule ((seed x)) ((rb x)) :ruleset b)
    (seed 0)
    (run-schedule (run a 1) (run b 5))
  )")) << F.error();
  // Leaf a did one productive iteration and stopped on its budget (not a
  // fixpoint proof); leaf b then saturated — the schedule must not adopt
  // b's verdict.
  EXPECT_FALSE(F.lastRun().Saturated);
  // Whereas a schedule that genuinely reaches a fixpoint of its whole
  // body does report it.
  ASSERT_TRUE(F.execute("(run-schedule (saturate (run a 1) (run b 1)))"))
      << F.error();
  EXPECT_TRUE(F.lastRun().Saturated);
}

TEST(ScheduleTest, RunSchedulePreservesEngineApiUse) {
  // Library-level schedules (no surface syntax) drive the same machinery.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (ruleset mine)
    (relation in (i64))
    (relation out (i64))
    (rule ((in x)) ((out x)) :ruleset mine)
    (in 4)
  )")) << F.error();
  RulesetId Mine;
  ASSERT_TRUE(F.engine().lookupRuleset("mine", Mine));
  Schedule S = Schedule::makeCombinator(
      Schedule::Kind::Saturate, {Schedule::makeRun(Mine, 1)});
  RunOptions Opts;
  RunReport Report = F.engine().runSchedule(S, Opts);
  EXPECT_TRUE(Report.Saturated);
  Value Out;
  EXPECT_TRUE(F.evalGround("(out 4)", Out));
}
