//===- tests/core/SoakTest.cpp - Randomized parallel soak ----------------===//
//
// Part of egglog-cpp. A time-bounded randomized soak of the fully parallel
// pipeline: one frontend executes a random mix of inserts, unions, runs,
// push/pop, and extractions while its thread count is re-set between
// commands ((set-option :threads N) cycling 1/2/4/8), so phase-separated
// iterations at different widths interleave with context switches. At
// every push/pop boundary the entire command log is replayed into a fresh
// single-threaded frontend and the live content hashes must agree — the
// strongest cross-thread check we have, applied at the points where
// engine snapshots and database rollbacks interact.
//
// Runs under a wall-clock budget (the loop stops after ~8 seconds, and a
// ResourceGovernor per-command timeout backstops any single runaway
// command), and carries the ctest label "soak": the scheduled CI lane
// runs it, the per-push tier-1 lane excludes it.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace egglog;

namespace {

const char *SoakProgram = R"(
  (datatype E (Leaf i64) (Join E E))
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (relation weight (i64 i64))
  (rule ((edge x y)) ((path x y)))
  (rule ((path x y) (edge y z)) ((path x z)))
  (rule ((path x y) (path y z) (< x z)) ((weight x z)))
  (rewrite (Join a b) (Join b a))
  (rewrite (Join (Join a b) c) (Join a (Join b c)))
  (Join (Leaf 100) (Leaf 101))
)";

class SoakDriver {
public:
  explicit SoakDriver(uint32_t Seed) : Rng(Seed) {
    EXPECT_TRUE(Subject.execute(SoakProgram)) << Subject.error();
    // Governor backstop: no single command may exceed 2 seconds even if
    // a random script stumbles into an explosive run.
    EXPECT_TRUE(Subject.execute("(set-option :timeout 2)"))
        << Subject.error();
  }

  void run(double BudgetSeconds) {
    Timer Clock;
    unsigned Step = 0;
    while (Clock.seconds() < BudgetSeconds && Step < 2000) {
      ++Step;
      setThreads();
      switch (pick(12)) {
      case 0:
      case 1:
      case 2:
        exec("(edge " + num(14) + " " + num(14) + ")");
        break;
      case 3:
      case 4:
        exec("(Join (Leaf " + num(8) + ") (Leaf " + num(8) + "))");
        break;
      case 5:
        exec("(union (Leaf " + num(8) + ") (Leaf " + num(8) + "))");
        break;
      case 6:
      case 7:
      case 8:
        exec("(run " + std::to_string(1 + pick(3)) + ")");
        break;
      case 9:
        extract();
        break;
      case 10:
      case 11:
        pushOrPop();
        break;
      }
      if (::testing::Test::HasFatalFailure())
        return;
    }
    compareWithSerialReplay();
  }

private:
  Frontend Subject;
  std::vector<std::string> Log;
  size_t Depth = 0;
  std::mt19937 Rng;

  uint64_t pick(uint64_t Bound) {
    return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Rng);
  }
  std::string num(uint64_t Bound) { return std::to_string(pick(Bound)); }

  /// Cycle the subject's width between commands. Not logged: the serial
  /// replay is the point of comparison, and by the determinism invariant
  /// the thread count must not be observable in the database.
  void setThreads() {
    static const unsigned Widths[] = {1, 2, 4, 8};
    std::string C = "(set-option :threads " +
                    std::to_string(Widths[pick(4)]) + ")";
    ASSERT_TRUE(Subject.execute(C)) << Subject.error();
  }

  void exec(const std::string &Command) {
    if (Subject.execute(Command)) {
      Log.push_back(Command);
      return;
    }
    // A governor trip (the 2s per-command backstop) rolls the command
    // back exactly, so the script just skips it; anything else is a bug.
    ASSERT_EQ(Subject.lastError().Kind, ErrKind::Limit)
        << Command << ": " << Subject.error();
  }

  void extract() {
    // The seed term predates every push, so it extracts in any context.
    exec("(extract (Join (Leaf 100) (Leaf 101)))");
  }

  void pushOrPop() {
    if (Depth > 0 && pick(2) == 0) {
      exec("(pop)");
      --Depth;
    } else if (Depth < 3) {
      exec("(push)");
      ++Depth;
    } else {
      return;
    }
    compareWithSerialReplay();
  }

  /// Replays the whole command log into a fresh frontend pinned at one
  /// thread and compares the live databases bit-for-bit. The replay also
  /// snapshot round-trips itself ((save) then (load)) at a random
  /// depth-0 boundary and continues from the loaded copy: persistence
  /// must be invisible to everything the comparison can see.
  void compareWithSerialReplay() {
    // No governor timeout on the replay: every logged command already
    // succeeded once, and a tighter machine-dependent bound here would
    // only turn a slow serial replay into a flake.
    Frontend Replay;
    ASSERT_TRUE(Replay.execute(SoakProgram)) << Replay.error();
    const std::string SnapPath = ::testing::TempDir() + "soak_replay.snap";
    const size_t SnapAt = pick(Log.size() + 1);
    bool Snapshotted = false;
    size_t ReplayDepth = 0;
    // Round-trips at the first log index >= SnapAt where no context is
    // open ((load) inside a (push) context is rejected by design).
    auto MaybeRoundTrip = [&](size_t Index) {
      if (Snapshotted || Index < SnapAt || ReplayDepth != 0)
        return;
      ASSERT_TRUE(Replay.execute("(save \"" + SnapPath + "\")"))
          << Replay.error();
      ASSERT_TRUE(Replay.execute("(load \"" + SnapPath + "\")"))
          << Replay.error();
      Snapshotted = true;
    };
    for (size_t I = 0; I < Log.size(); ++I) {
      MaybeRoundTrip(I);
      if (::testing::Test::HasFatalFailure())
        return;
      ASSERT_TRUE(Replay.execute(Log[I])) << Log[I] << ": "
                                          << Replay.error();
      if (Log[I] == "(push)")
        ++ReplayDepth;
      else if (Log[I] == "(pop)")
        --ReplayDepth;
    }
    MaybeRoundTrip(Log.size());
    std::remove(SnapPath.c_str());
    EGraph &S = Subject.graph(), &R = Replay.graph();
    ASSERT_EQ(S.liveTupleCount(), R.liveTupleCount())
        << "tuple count diverged after " << Log.size() << " commands";
    ASSERT_EQ(S.unionFind().unionCount(), R.unionFind().unionCount())
        << "union count diverged after " << Log.size() << " commands";
    ASSERT_EQ(S.unionFind().size(), R.unionFind().size())
        << "fresh-id numbering diverged after " << Log.size() << " commands";
    ASSERT_EQ(S.liveContentHash(), R.liveContentHash())
        << "content diverged after " << Log.size() << " commands";
    ASSERT_EQ(Subject.outputs(), Replay.outputs())
        << "extraction outputs diverged after " << Log.size() << " commands";
  }
};

TEST(SoakTest, RandomizedParallelSoak) {
  // One long script per run, freshly seeded from the clock would break
  // reproducibility — instead split the budget over fixed seeds so a
  // failure names the script that produced it.
  const uint32_t Seeds[] = {11u, 47u, 1009u};
  for (uint32_t Seed : Seeds) {
    SoakDriver Driver(Seed);
    Driver.run(/*BudgetSeconds=*/8.0 / std::size(Seeds));
    if (::testing::Test::HasFatalFailure())
      FAIL() << "diverged at seed " << Seed;
  }
}

} // namespace
