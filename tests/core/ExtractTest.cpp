//===- tests/core/ExtractTest.cpp - Extraction subsystem tests -------------===//
//
// Part of egglog-cpp. Covers the persistent ExtractIndex: the warm-cache
// contract (zero cost-fixpoint row sweeps over an unchanged database),
// incremental refresh after inserts and merges, invalidation on deletion
// and pop, iterative term building at depths that would overflow a
// recursive builder, DAG versus tree cost, shortest round-trip f64
// rendering, and the negative-:cost diagnostics. The randomized driver
// holds the incremental index's costs identical to the from-scratch
// reference fixpoint across union/insert/run/push/pop sequences.
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"
#include "support/FailPoints.h"
#include "support/NumberFormat.h"

#include <gtest/gtest.h>

#include <random>

using namespace egglog;

namespace {

uint64_t rowsConsidered(EGraph &G) {
  return G.extractIndex().stats().RowsConsidered;
}

/// Builds S(S(...(Z)...)) of the given depth through the API (program text
/// would need Depth nested parentheses) and returns the root value.
Value buildChain(Frontend &F, size_t Depth) {
  EGraph &G = F.graph();
  FunctionId Zf = 0, Sf = 0;
  EXPECT_TRUE(G.lookupFunctionName("Z", Zf));
  EXPECT_TRUE(G.lookupFunctionName("S", Sf));
  Value Dummy, Cur;
  EXPECT_TRUE(G.getOrCreate(Zf, &Dummy, Cur));
  for (size_t I = 0; I < Depth; ++I) {
    Value Next;
    EXPECT_TRUE(G.getOrCreate(Sf, &Cur, Next));
    Cur = Next;
  }
  return Cur;
}

} // namespace

//===----------------------------------------------------------------------===
// Deep and degenerate terms
//===----------------------------------------------------------------------===

TEST(ExtractTest, DeepChainExtractsWithoutRecursion) {
  Frontend F;
  ASSERT_TRUE(F.execute("(datatype Chain (Z) (S Chain))")) << F.error();
  const size_t Depth = 70000; // would overflow a recursive term builder
  Value Root = buildChain(F, Depth);
  std::optional<ExtractedTerm> Term = extractTerm(F.graph(), Root);
  ASSERT_TRUE(Term.has_value());
  EXPECT_EQ(Term->Cost, static_cast<int64_t>(Depth) + 1);
  // A chain shares nothing, so DAG and tree cost agree.
  EXPECT_EQ(Term->DagCost, Term->Cost);
  EXPECT_EQ(Term->Text.size(), Depth * 3 + Depth + 1); // "(S " ... "Z" ")"*
  EXPECT_EQ(Term->Text.substr(0, 6), "(S (S ");
  EXPECT_EQ(Term->Text[Term->Text.size() - 1], ')');
}

TEST(ExtractTest, ValueWithoutTermIsNullopt) {
  Frontend F;
  ASSERT_TRUE(F.execute("(sort T)")) << F.error();
  SortId T = 0;
  ASSERT_TRUE(F.graph().sorts().lookup("T", T));
  Value Fresh = F.graph().freshId(T);
  EXPECT_FALSE(extractTerm(F.graph(), Fresh).has_value());
  EXPECT_FALSE(extractCost(F.graph(), Fresh).has_value());
}

//===----------------------------------------------------------------------===
// Warm-cache contract
//===----------------------------------------------------------------------===

TEST(ExtractTest, WarmRepeatedExtractionDoesZeroRowSweeps) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define e (Add (Num 1) (Add (Num 2) (Num 3))))
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("e", Root));
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value()); // cold fill

  const ExtractIndex::Stats &St = F.graph().extractIndex().stats();
  uint64_t Rows = St.RowsConsidered;
  uint64_t Warm = St.WarmHits;
  for (int I = 0; I < 5; ++I) {
    std::optional<ExtractedTerm> Term = extractTerm(F.graph(), Root);
    ASSERT_TRUE(Term.has_value());
    EXPECT_EQ(Term->Text, "(Add (Num 1) (Add (Num 2) (Num 3)))");
  }
  EXPECT_EQ(St.RowsConsidered, Rows) << "warm extracts must not sweep rows";
  EXPECT_EQ(St.WarmHits, Warm + 5);
}

TEST(ExtractTest, NonIdTableChangesStayWarm) {
  // Inserting into a table whose output is not an id sort cannot change
  // any class cost; the index must not even count it as dirty.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64))
    (relation seen (i64))
    (define e (Num 7))
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("e", Root));
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value());
  uint64_t Rows = rowsConsidered(F.graph());
  ASSERT_TRUE(F.execute("(seen 1) (seen 2)")) << F.error();
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value());
  EXPECT_EQ(rowsConsidered(F.graph()), Rows);
}

TEST(ExtractTest, IncrementalAppendScansOnlySuffix) {
  Frontend F;
  ASSERT_TRUE(F.execute("(datatype Chain (Z) (S Chain))")) << F.error();
  Value Root = buildChain(F, 4000);
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value());
  uint64_t Full = F.graph().extractIndex().stats().FullRebuilds;

  // Extend the chain; the next refresh must touch only the appended rows
  // (each is considered at scan plus once more when its class is queued).
  FunctionId Sf = 0;
  ASSERT_TRUE(F.graph().lookupFunctionName("S", Sf));
  Value Cur = Root;
  const size_t Added = 100;
  for (size_t I = 0; I < Added; ++I) {
    Value Next;
    ASSERT_TRUE(F.graph().getOrCreate(Sf, &Cur, Next));
    Cur = Next;
  }
  uint64_t Rows = rowsConsidered(F.graph());
  std::optional<ExtractedTerm> Term = extractTerm(F.graph(), Cur);
  ASSERT_TRUE(Term.has_value());
  EXPECT_EQ(Term->Cost, 4101);
  EXPECT_LE(rowsConsidered(F.graph()) - Rows, 2 * Added);
  EXPECT_EQ(F.graph().extractIndex().stats().FullRebuilds, Full)
      << "append must not trigger a from-scratch fixpoint";
}

//===----------------------------------------------------------------------===
// Merges, contexts, deletion
//===----------------------------------------------------------------------===

TEST(ExtractTest, ExtractionTracksMergesAcrossPushPop) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define e (Add (Num 1) (Num 2)))
    (extract e)
    (push)
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (run 3)
    (extract e)
    (pop)
    (extract e)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 3u);
  EXPECT_EQ(F.outputs()[0], "(Add (Num 1) (Num 2))");
  EXPECT_EQ(F.outputs()[1], "(Num 3)");
  EXPECT_EQ(F.outputs()[2], "(Add (Num 1) (Num 2))")
      << "pop must restore the pre-merge cheapest term";
}

TEST(ExtractTest, DeleteInvalidatesAndRaisesCost) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64 :cost 10) (Add Math Math))
    (Add (Num 1) (Num 2))
    (union (Add (Num 1) (Num 2)) (Num 99))
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("(Num 99)", Root));
  std::optional<ExtractedTerm> Before = extractTerm(F.graph(), Root);
  ASSERT_TRUE(Before.has_value());
  EXPECT_EQ(Before->Cost, 11); // (Num 99)
  EXPECT_EQ(Before->Text, "(Num 99)");
  // Deleting the cheapest entry must raise the class cost — exactly the
  // move the decrease-only incremental refresh cannot absorb, so it must
  // invalidate and recompute from scratch.
  ASSERT_TRUE(F.execute("(delete (Num 99))")) << F.error();
  std::optional<ExtractedTerm> After = extractTerm(F.graph(), Root);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(After->Cost, 23); // (Add (Num 1) (Num 2))
  EXPECT_EQ(After->Text, "(Add (Num 1) (Num 2))");
  EXPECT_GE(F.graph().extractIndex().stats().FullRebuilds, 2u);
}

TEST(ExtractTest, NoOpDeleteStaysWarm) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64))
    (Num 7)
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("(Num 7)", Root));
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value());
  const ExtractIndex::Stats &St = F.graph().extractIndex().stats();
  uint64_t Full = St.FullRebuilds;
  uint64_t Rows = St.RowsConsidered;
  // Deleting an absent key erases nothing; the index must stay warm.
  ASSERT_TRUE(F.execute("(delete (Num 12345))")) << F.error();
  ASSERT_TRUE(extractTerm(F.graph(), Root).has_value());
  EXPECT_EQ(St.FullRebuilds, Full);
  EXPECT_EQ(St.RowsConsidered, Rows);
}

//===----------------------------------------------------------------------===
// Variants
//===----------------------------------------------------------------------===

TEST(ExtractTest, ExtractVariantsCommandPrintsCheapestFirst) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define e (Add (Num 1) (Num 2)))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (run 4)
    (extract e 3)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 3u);
  EXPECT_EQ(F.outputs()[0], "(Num 3)");
  // The two Add orientations follow, in deterministic order.
  EXPECT_TRUE(F.outputs()[1] == "(Add (Num 1) (Num 2))" ||
              F.outputs()[1] == "(Add (Num 2) (Num 1))");
  EXPECT_NE(F.outputs()[1], F.outputs()[2]);
}

TEST(ExtractTest, ExtractVariantsRejectsBadCount) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64))
    (define e (Num 1))
  )")) << F.error();
  EXPECT_FALSE(F.execute("(extract e 0)"));
  Frontend F2;
  ASSERT_TRUE(F2.execute(R"(
    (datatype Math (Num i64))
    (define e (Num 1))
  )")) << F2.error();
  EXPECT_FALSE(F2.execute("(extract e 1 2)"));
}

TEST(ExtractTest, VariantPrefixesAreStableAcrossGrowingRequests) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define e (Add (Num 1) (Num 2)))
    (rewrite (Add a b) (Add b a))
    (run 2)
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("e", Root));
  std::vector<ExtractedTerm> Few = extractVariants(F.graph(), Root, 2);
  uint64_t Rows = rowsConsidered(F.graph());
  std::vector<ExtractedTerm> Many = extractVariants(F.graph(), Root, 10);
  EXPECT_EQ(rowsConsidered(F.graph()), Rows)
      << "the larger request must reuse the warm index";
  ASSERT_GE(Many.size(), Few.size());
  for (size_t I = 0; I < Few.size(); ++I)
    EXPECT_EQ(Few[I].Text, Many[I].Text);
}

//===----------------------------------------------------------------------===
// DAG cost
//===----------------------------------------------------------------------===

TEST(ExtractTest, DagCostCreditsSharing) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (define t (Add (Num 1) (Num 2)))
    (define e (Add t t))
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("e", Root));
  std::optional<ExtractedTerm> Term = extractTerm(F.graph(), Root);
  ASSERT_TRUE(Term.has_value());
  // Tree: Add(1) + 2 * [Add(1) + Num(2) + Num(2)] = 11.
  EXPECT_EQ(Term->Cost, 11);
  // DAG: the shared subterm and each Num class pay once: 1 + 5 = 6.
  EXPECT_EQ(Term->DagCost, 6);
  std::optional<ExtractedTerm> Dag = extractTermDag(F.graph(), Root);
  ASSERT_TRUE(Dag.has_value());
  EXPECT_EQ(Dag->Cost, 6);
  EXPECT_EQ(Dag->Text, Term->Text);
}

TEST(ExtractTest, TiedCostMergeFoldCannotCreateRenderCycle) {
  // Regression: with a 0-cost constructor, merging two classes of EQUAL
  // cost could leave the kept best row referencing its own merged class
  // (w's best was (S u) at cost 1; u's class, also cost 1, then merged
  // in), and rendering diverged. The fold now detects the tie and rebuilds
  // from scratch, whose adoptions are acyclic.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype N (A :cost 5) (B :cost 1) (S N :cost 0))
    (define w (A))
    (define u (B))
  )")) << F.error();
  Value W;
  ASSERT_TRUE(F.evalGround("w", W));
  std::optional<ExtractedTerm> T0 = extractTerm(F.graph(), W);
  ASSERT_TRUE(T0.has_value());
  EXPECT_EQ(T0->Text, "A");
  ASSERT_TRUE(F.execute("(union w (S u))")) << F.error();
  std::optional<ExtractedTerm> T1 = extractTerm(F.graph(), W);
  ASSERT_TRUE(T1.has_value());
  EXPECT_EQ(T1->Text, "(S B)");
  EXPECT_EQ(T1->Cost, 1);
  // The dangerous merge: both classes cost 1.
  ASSERT_TRUE(F.execute("(union w u)")) << F.error();
  std::optional<ExtractedTerm> T2 = extractTerm(F.graph(), W);
  ASSERT_TRUE(T2.has_value());
  EXPECT_EQ(T2->Text, "B");
  EXPECT_EQ(T2->Cost, 1);
}

TEST(ExtractTest, SelfReferentialVariantChargesChildSubtree) {
  // (Neg root) lies in root's own class; its DAG cost must include the
  // rendered child subtree (the class's best term), not skip it.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Neg Math))
    (Num 0)
    (union (Num 0) (Neg (Num 0)))
  )")) << F.error();
  Value Root;
  ASSERT_TRUE(F.evalGround("(Num 0)", Root));
  std::vector<ExtractedTerm> Variants = extractVariants(F.graph(), Root, 4);
  ASSERT_EQ(Variants.size(), 2u);
  EXPECT_EQ(Variants[0].Text, "(Num 0)");
  EXPECT_EQ(Variants[0].DagCost, 2); // Num + base constant
  EXPECT_EQ(Variants[1].Text, "(Neg (Num 0))");
  EXPECT_EQ(Variants[1].Cost, 3);
  EXPECT_EQ(Variants[1].DagCost, 3); // Neg + the (Num 0) subtree
}

//===----------------------------------------------------------------------===
// f64 rendering
//===----------------------------------------------------------------------===

TEST(ExtractTest, F64FormattingRoundTrips) {
  const double Cases[] = {0.1,    1.0 / 3.0,  1e-300, 1e300,
                          0.5,    -2.5e-8,    0.0,    123456789.123456789,
                          3.0,    0.30000000000000004,
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (double D : Cases) {
    std::string Text = formatF64(D);
    ParseResult Parsed = parseSExprs(Text);
    ASSERT_TRUE(Parsed.Ok && Parsed.Forms.size() == 1) << Text;
    ASSERT_TRUE(Parsed.Forms[0].isFloat())
        << Text << " must lex as a float literal";
    EXPECT_EQ(Parsed.Forms[0].FloatValue, D) << Text;
    // print -> parse -> print is a fixpoint.
    EXPECT_EQ(formatF64(Parsed.Forms[0].FloatValue), Text);
  }
}

TEST(ExtractTest, F64ExtractionPreservesPrecision) {
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype W (Wrap f64))
    (define e (Wrap 0.30000000000000004))
    (extract e)
  )")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  // std::to_string would have printed 0.300000 and lost the value.
  EXPECT_EQ(F.outputs()[0], "(Wrap 0.30000000000000004)");
}

//===----------------------------------------------------------------------===
// :cost validation
//===----------------------------------------------------------------------===

TEST(ExtractTest, NegativeCostsAreRejectedAtDeclaration) {
  {
    Frontend F;
    EXPECT_FALSE(F.execute("(datatype M (Mk i64 :cost -1))"));
    EXPECT_NE(F.error().find("non-negative"), std::string::npos) << F.error();
  }
  {
    Frontend F;
    ASSERT_TRUE(F.execute("(sort T)"));
    EXPECT_FALSE(F.execute("(function f () T :cost -2)"));
    EXPECT_NE(F.error().find("non-negative"), std::string::npos) << F.error();
  }
  {
    Frontend F;
    ASSERT_TRUE(F.execute("(datatype M (Num i64))"));
    EXPECT_FALSE(F.execute("(define x (Num 1) :cost -3)"));
    EXPECT_NE(F.error().find("non-negative"), std::string::npos) << F.error();
  }
}

//===----------------------------------------------------------------------===
// Randomized differential: incremental index vs from-scratch fixpoint
//===----------------------------------------------------------------------===

namespace {

/// Random driver over one database: term insertion, unions, rule runs,
/// push/pop. After every batch the incremental index's cost for every
/// class must equal the from-scratch reference.
class ExtractDifferential {
public:
  explicit ExtractDifferential(uint32_t Seed) : Rng(Seed) {
    // Constructor costs 1..4 exercise non-uniform cost arithmetic; the
    // rewrites churn merges through run()/rebuild().
    EXPECT_TRUE(F.execute(R"(
      (datatype T (A) (B :cost 2) (F T :cost 3) (G T T :cost 4))
      (rewrite (F (F x)) x)
      (rewrite (G x y) (G y x))
    )")) << F.error();
    EXPECT_TRUE(F.graph().sorts().lookup("T", Sort));
    Value Root;
    EXPECT_TRUE(F.evalGround("(A)", Root) || makeLeaf("A", Root));
  }

  void run(unsigned Steps) {
    for (unsigned Step = 0; Step < Steps; ++Step) {
      switch (pick(12)) {
      case 0:
      case 1:
      case 2:
        makeUnary();
        break;
      case 3:
      case 4:
        makeBinary();
        break;
      case 5:
        leaf();
        break;
      case 6:
      case 7:
        unite();
        break;
      case 8:
        runRules();
        break;
      case 9:
        push();
        break;
      case 10:
        pop();
        break;
      default:
        break;
      }
      if (Step % 7 == 0)
        check();
    }
    check();
  }

private:
  Frontend F;
  SortId Sort = 0;
  std::vector<Value> Values;
  size_t ContextDepth = 0;
  std::vector<size_t> ValueMarks;
  std::mt19937 Rng;

  size_t pick(size_t N) { return Rng() % N; }

  bool makeLeaf(const std::string &Name, Value &Out) {
    FunctionId Func = 0;
    if (!F.graph().lookupFunctionName(Name, Func))
      return false;
    Value Dummy;
    if (!F.graph().getOrCreate(Func, &Dummy, Out))
      return false;
    Values.push_back(Out);
    return true;
  }

  Value randomValue() {
    if (Values.empty()) {
      Value Out;
      EXPECT_TRUE(makeLeaf("A", Out));
      return Out;
    }
    return Values[pick(Values.size())];
  }

  void leaf() {
    Value Out;
    EXPECT_TRUE(makeLeaf(pick(2) ? "A" : "B", Out));
  }

  void makeUnary() {
    FunctionId Func = 0;
    ASSERT_TRUE(F.graph().lookupFunctionName("F", Func));
    Value Arg = randomValue();
    Value Out;
    ASSERT_TRUE(F.graph().getOrCreate(Func, &Arg, Out));
    Values.push_back(Out);
  }

  void makeBinary() {
    FunctionId Func = 0;
    ASSERT_TRUE(F.graph().lookupFunctionName("G", Func));
    Value Args[2] = {randomValue(), randomValue()};
    Value Out;
    ASSERT_TRUE(F.graph().getOrCreate(Func, Args, Out));
    Values.push_back(Out);
  }

  void unite() {
    Value A = randomValue(), B = randomValue();
    F.graph().unionValues(A, B);
    F.graph().rebuild();
    ASSERT_FALSE(F.graph().failed()) << F.graph().errorMessage();
  }

  void runRules() {
    RunOptions Opts;
    Opts.Iterations = 1;
    F.engine().run(Opts);
    ASSERT_FALSE(F.graph().failed()) << F.graph().errorMessage();
  }

  void push() {
    if (ContextDepth >= 4)
      return;
    F.pushContext();
    ValueMarks.push_back(Values.size());
    ++ContextDepth;
  }

  void pop() {
    if (ContextDepth == 0)
      return;
    ASSERT_TRUE(F.popContext());
    // Values minted inside the abandoned context are gone.
    Values.resize(ValueMarks.back());
    ValueMarks.pop_back();
    --ContextDepth;
  }

  void check() {
    EGraph &G = F.graph();
    if (G.needsRebuild())
      G.rebuild();
    std::unordered_map<uint64_t, int64_t> Reference =
        extractCostsReference(G);
    // Refresh once, then compare every class both ways: each reference
    // entry must match, and every id without a reference entry must be
    // Infinity in the index too.
    ExtractIndex &Idx = G.extractIndex();
    Idx.refresh(G);
    for (const auto &[Class, Cost] : Reference) {
      EXPECT_EQ(Idx.costOf(G, Value(Sort, Class)), Cost)
          << "class " << Class << " diverged";
    }
    for (uint64_t Id = 0; Id < G.unionFind().size(); ++Id) {
      uint64_t Root = G.unionFind().find(Id);
      auto It = Reference.find(Root);
      int64_t Expected =
          It == Reference.end() ? ExtractIndex::Infinity : It->second;
      EXPECT_EQ(Idx.costOf(G, Value(Sort, Id)), Expected)
          << "id " << Id << " diverged";
    }
  }
};

} // namespace

TEST(ExtractTest, RandomizedDifferentialMatchesReference) {
  for (uint32_t Seed : {11u, 23u, 37u, 59u, 101u}) {
    ExtractDifferential Driver(Seed);
    Driver.run(220);
  }
}

#if EGGLOG_FAILPOINTS_ENABLED

TEST(ExtractTest, InjectedFaultDuringExtractRollsBack) {
  // A fault swept across every hit of (extract e) — the command entry,
  // the pre-extract rebuild, and the index's scan and drain rows — must
  // leave no trace: content hash unchanged, no output emitted, and the
  // eventual clean extraction equal to a never-faulted one. The index is
  // invalidated before every attempt so each extraction is from-scratch
  // (among equal-cost terms the winner depends on the index's maintenance
  // history, so only from-scratch runs are comparable).
  struct Disarm {
    ~Disarm() { failpoints::disarm(); }
  } Guard;

  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (datatype Math (Num i64) (Add Math Math))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
    (define e (Add (Num 1) (Add (Num 2) (Num 3))))
    (run 3)
  )")) << F.error();
  F.graph().governor().setCheckpointInterval(1);

  F.graph().extractIndex().invalidate();
  ASSERT_TRUE(F.execute("(extract e)")) << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  std::string Expected = F.outputs().back();
  F.clearOutputs();

  uint64_t Before = F.graph().liveContentHash();
  size_t Faults = 0;
  for (uint64_t K = 1;; K = K < 8 ? K + 1 : K + (K >> 1)) {
    F.graph().extractIndex().invalidate();
    failpoints::arm(nullptr, K);
    bool Ok = F.execute("(extract e)");
    failpoints::disarm();
    if (Ok)
      break;
    ++Faults;
    ASSERT_NE(F.error().find("injected fault"), std::string::npos)
        << F.error();
    EXPECT_EQ(F.graph().liveContentHash(), Before) << "hit " << K;
    EXPECT_TRUE(F.outputs().empty()) << "hit " << K;
  }
  EXPECT_GT(Faults, 2u);
  ASSERT_EQ(F.outputs().size(), 1u);
  EXPECT_EQ(F.outputs().back(), Expected);
}

#endif // EGGLOG_FAILPOINTS_ENABLED
