//===- tests/core/FaultInjectionTest.cpp - Rollback atomicity fuzzing ------===//
//
// Part of egglog-cpp. Deterministic fault injection: command scripts run
// with a fault armed at the k-th failpoint hit for a sweep of k, probing
// every class of intermediate state a command passes through. After each
// injected fault the database must equal its pre-command state exactly —
// content hash, counts, extraction results, and output lines — and
// re-running the command cleanly must land on the same final state as a
// run that never faulted. Exercised at 1 and 4 match threads.
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"
#include "support/FailPoints.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#if EGGLOG_FAILPOINTS_ENABLED

using namespace egglog;

namespace {

struct StateFingerprint {
  uint64_t ContentHash;
  size_t LiveTuples;
  uint64_t Unions;
  size_t Functions;
  size_t Sorts;
  size_t Rules;
  size_t Rulesets;

  bool operator==(const StateFingerprint &) const = default;
};

StateFingerprint fingerprint(Frontend &F) {
  return StateFingerprint{F.graph().liveContentHash(),
                          F.graph().liveTupleCount(),
                          F.graph().unionFind().unionCount(),
                          F.graph().numFunctions(),
                          F.graph().sorts().size(),
                          F.engine().numRules(),
                          F.engine().numRulesets()};
}

/// Leaves no armed failpoint behind, whatever path a test takes out.
struct DisarmGuard {
  DisarmGuard() { failpoints::disarm(); }
  ~DisarmGuard() { failpoints::disarm(); }
};

/// Extraction result for \p Expr (or a marker when absent) — run with
/// failpoints disarmed so the probe itself never faults. Forces a rebuild
/// and an index refresh, so call it before fingerprinting a baseline.
/// Extracts from a freshly invalidated index: among equal-cost terms the
/// winner depends on the index's maintenance history (incremental scans
/// relax rows in a different order than a from-scratch build), so only
/// from-scratch extractions are comparable across a rollback.
std::string probeExtract(Frontend &F, const std::string &Expr) {
  Value V;
  if (!F.evalGround(Expr, V))
    return "<absent>";
  F.graph().extractIndex().invalidate();
  std::optional<ExtractedTerm> Term = extractTerm(F.graph(), V);
  if (!Term)
    return "<no-term>";
  return Term->Text + " $" + std::to_string(Term->Cost) + "/" +
         std::to_string(Term->DagCost);
}

/// A script whose commands all succeed on a clean run, covering run,
/// union, push/pop, check, and extract.
std::vector<std::string> mathScript() {
  return {
      "(datatype Math (Num i64) (Add Math Math) (Mul Math Math))",
      "(rewrite (Add a b) (Add b a))",
      "(rewrite (Add (Add a b) c) (Add a (Add b c)))",
      "(rewrite (Add (Num x) (Num y)) (Num (+ x y)))",
      "(define e (Add (Num 1) (Add (Num 2) (Add (Num 3) (Num 4)))))",
      "(push)",
      "(run 3)",
      "(check (= e (Num 10)))",
      "(extract e)",
      "(pop)",
      "(define f (Mul e (Num 2)))",
      "(union f (Num 20))",
      "(run 2)",
      "(extract f)",
  };
}

/// Executes \p Commands with a fault swept across every failpoint hit of
/// every command (dense for the first hits, then geometrically spaced).
/// After each injected fault the state must equal the pre-command
/// baseline; the surviving clean executions must land on the same final
/// state as \p a reference run that never faulted. \p Site narrows the
/// sweep to one failpoint (nullptr = every site); \p MinFaults asserts the
/// sweep reached real intermediate states and not just clean runs.
void sweepScript(const std::vector<std::string> &Commands,
                 const std::string &ProbeExpr, unsigned Threads,
                 const char *Site = nullptr, size_t MinFaults = 10) {
  DisarmGuard Guard;

  auto Configure = [&](Frontend &F) {
    F.engine().setThreads(Threads);
    // Checkpoint every row so the row-granular failpoints
    // (rebuild/apply/extract) are reachable at every hit index.
    F.graph().governor().setCheckpointInterval(1);
  };

  // Reference run, probed at the same points as the sweep run so both
  // trigger rebuilds/refreshes identically.
  Frontend Clean;
  Configure(Clean);
  for (const std::string &C : Commands) {
    probeExtract(Clean, ProbeExpr);
    ASSERT_TRUE(Clean.execute(C)) << C << ": " << Clean.error();
  }
  std::string FinalExtract = probeExtract(Clean, ProbeExpr);
  StateFingerprint FinalFP = fingerprint(Clean);

  Frontend F;
  Configure(F);
  size_t FaultsInjected = 0;
  for (const std::string &C : Commands) {
    std::string BeforeExtract = probeExtract(F, ProbeExpr);
    StateFingerprint Before = fingerprint(F);
    size_t OutputsBefore = F.outputs().size();
    uint64_t K = 1;
    for (unsigned Attempt = 1;; ++Attempt) {
      // After enough attempts, run clean (FireAtHit = 0 only counts) so a
      // hit-heavy command like (run 3) cannot stall the sweep.
      failpoints::arm(Site, Attempt > 48 ? 0 : K);
      bool Ok = F.execute(C);
      failpoints::disarm();
      if (Ok)
        break;
      ASSERT_NE(F.error().find("injected fault"), std::string::npos)
          << C << " failed for another reason: " << F.error();
      ++FaultsInjected;
      EXPECT_EQ(fingerprint(F), Before) << C << " rolled back at hit " << K;
      EXPECT_EQ(probeExtract(F, ProbeExpr), BeforeExtract)
          << C << " at hit " << K;
      EXPECT_EQ(F.outputs().size(), OutputsBefore) << C << " at hit " << K;
      if (::testing::Test::HasFailure())
        return;
      K = K < 8 ? K + 1 : K + (K >> 1);
    }
  }
  // The sweep's surviving executions equal a never-faulted run.
  EXPECT_EQ(probeExtract(F, ProbeExpr), FinalExtract);
  EXPECT_EQ(fingerprint(F), FinalFP);
  EXPECT_EQ(F.outputs(), Clean.outputs());
  // The sweep exercised real intermediate states.
  EXPECT_GT(FaultsInjected, MinFaults);
}

} // namespace

TEST(FaultInjectionTest, MathScriptSweepSerial) {
  sweepScript(mathScript(), "e", /*Threads=*/1);
}

TEST(FaultInjectionTest, MathScriptSweepFourThreads) {
  sweepScript(mathScript(), "e", /*Threads=*/4);
}

TEST(FaultInjectionTest, ApplyPartitionSweepFourThreads) {
  // Faults inside the parallel apply-staging loop: the stage is read-only
  // and the pool defers the exception until the job drains, so rollback
  // must be exact no matter which staged chunk the fault lands in.
  sweepScript(mathScript(), "e", /*Threads=*/4, "apply.partition",
              /*MinFaults=*/0);
}

TEST(FaultInjectionTest, RebuildOccurrenceSweepFourThreads) {
  // Faults inside the parallel rebuild loops (occurrence catch-up and the
  // frozen-image gather). Catch-up mutates the occurrence indexes, so
  // this additionally proves a partially caught-up index rolls back
  // cleanly with the transaction.
  sweepScript(mathScript(), "e", /*Threads=*/4, "rebuild.occurrence",
              /*MinFaults=*/0);
}

TEST(FaultInjectionTest, ParallelLoopSitesAreUnreachableSerial) {
  // At 1 thread the engine takes the classic code paths; the failpoints
  // that live inside the parallel loops must never be hit (the serial
  // sweeps above would otherwise be quietly probing parallel states).
  DisarmGuard Guard;
  for (const char *Site : {"apply.partition", "rebuild.occurrence"}) {
    Frontend F;
    F.engine().setThreads(1);
    failpoints::arm(Site, 0);
    for (const std::string &C : mathScript())
      ASSERT_TRUE(F.execute(C)) << C << ": " << F.error();
    EXPECT_EQ(failpoints::hits(), 0u) << Site << " hit on the serial path";
    failpoints::disarm();
  }
}

TEST(FaultInjectionTest, FirstHitIsTheCommandEntry) {
  // Hit 1 of any command is the "frontend.command" site: the fault fires
  // before dispatch, so the rollback exercises the cheap no-op path.
  DisarmGuard Guard;
  Frontend F;
  ASSERT_TRUE(F.execute("(sort S)")) << F.error();
  StateFingerprint Before = fingerprint(F);
  failpoints::arm("frontend.command", 1);
  EXPECT_FALSE(F.execute("(relation r (S))"));
  failpoints::disarm();
  EXPECT_NE(F.error().find("injected fault at 'frontend.command'"),
            std::string::npos)
      << F.error();
  EXPECT_EQ(fingerprint(F), Before);
  EXPECT_TRUE(F.execute("(relation r (S))")) << F.error();
}

TEST(FaultInjectionTest, SiteFilterOnlyFiresAtThatSite) {
  DisarmGuard Guard;
  Frontend F;
  failpoints::arm("egraph.declare", 2);
  // Declaration 1 (the sort command has no declare hits), then the first
  // constructor is hit 1 and the second is hit 2 — the fault fires there.
  ASSERT_TRUE(F.execute("(sort S)")) << F.error();
  EXPECT_FALSE(F.execute("(datatype T (A) (B))"));
  failpoints::disarm();
  EXPECT_NE(F.error().find("injected fault at 'egraph.declare'"),
            std::string::npos)
      << F.error();
  SortId Sort;
  EXPECT_FALSE(F.graph().sorts().lookup("T", Sort));
  EXPECT_TRUE(F.execute("(datatype T (A) (B))")) << F.error();
}

TEST(FaultInjectionTest, HitCountingWithoutFiring) {
  DisarmGuard Guard;
  Frontend F;
  failpoints::arm(nullptr, 0);
  ASSERT_TRUE(F.execute("(sort S) (relation r (S))")) << F.error();
  EXPECT_GT(failpoints::hits(), 0u);
  failpoints::disarm();
}

#endif // EGGLOG_FAILPOINTS_ENABLED
