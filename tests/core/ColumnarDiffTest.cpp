//===- tests/core/ColumnarDiffTest.cpp - Columnar storage differential -----===//
//
// Part of egglog-cpp. The columnar Table refactor must be observationally
// invisible: a randomized differential driver runs identical
// insert/union/run/extract/push/pop scripts against engines at 1 and 4
// match threads and asserts liveContentHash parity after every run. The
// program leans on wide tables (a ternary relation and three-atom joins)
// so the vectorized column scans, batched sweep probes, and the
// binary-join fast path all sit on the hot path; any divergence between
// the columnar layout and the engine's append/kill/rollback contract
// shows up as a content-hash split between the two thread counts.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace egglog;

namespace {

/// Joins with one, two, and three atoms over binary and ternary
/// relations: single-participant levels take the binary-join fast path,
/// multi-participant levels take the batched sweep probes, and the term
/// rewrite keeps rebuild (kill + re-append on columnar rows) busy.
const char *ColumnarProgram = R"(
  (datatype E (Leaf i64) (Join E E))
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (relation hop (i64 i64 i64))
  (relation reach (i64))
  (rule ((edge x y)) ((path x y)))
  (rule ((path x y) (edge y z)) ((path x z)))
  (rule ((path x y) (path y z) (< x z)) ((hop x y z)))
  (rule ((hop x y z) (edge z w)) ((reach w)))
  (rewrite (Join a b) (Join b a))
  (Join (Leaf 50) (Leaf 51))
  (Join (Join (Leaf 52) (Leaf 53)) (Leaf 54))
)";

class ColumnarDiffDriver {
public:
  explicit ColumnarDiffDriver(uint32_t Seed) : Rng(Seed) {
    for (int E = 0; E < 2; ++E) {
      EXPECT_TRUE(F[E].execute(ColumnarProgram)) << F[E].error();
      F[E].engine().setThreads(E == 0 ? 1 : 4);
    }
  }

  void run(unsigned Steps) {
    for (unsigned Step = 0; Step < Steps; ++Step) {
      switch (pick(10)) {
      case 0:
      case 1:
      case 2:
        addEdge();
        break;
      case 3:
        addTerm();
        break;
      case 4:
        addUnion();
        break;
      case 5:
      case 6:
      case 7:
        runRules();
        break;
      case 8:
        extract();
        break;
      case 9:
        pushOrPop();
        break;
      }
    }
    runRules();
    extract();
    while (Depth > 0) {
      all("(pop)");
      --Depth;
      compare();
    }
  }

private:
  Frontend F[2];
  size_t Depth = 0;
  std::mt19937 Rng;

  uint64_t pick(uint64_t Bound) {
    return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Rng);
  }

  void all(const std::string &Program) {
    for (int E = 0; E < 2; ++E)
      ASSERT_TRUE(F[E].execute(Program))
          << F[E].error() << " in " << Program;
  }

  void addEdge() {
    std::string I = std::to_string(pick(10)), J = std::to_string(pick(10));
    all("(edge " + I + " " + J + ")");
  }

  void addTerm() {
    std::string I = std::to_string(pick(6)), J = std::to_string(pick(6));
    all("(Join (Leaf " + I + ") (Leaf " + J + "))");
  }

  void addUnion() {
    std::string I = std::to_string(pick(6)), J = std::to_string(pick(6));
    all("(union (Leaf " + I + ") (Leaf " + J + "))");
  }

  void runRules() {
    all("(run " + std::to_string(1 + pick(3)) + ")");
    compare();
  }

  /// The seed terms predate every push, so extraction is well-defined at
  /// any depth; the printed representatives must agree exactly.
  void extract() {
    for (int E = 0; E < 2; ++E)
      F[E].clearOutputs();
    all(pick(2) == 0 ? "(extract (Join (Leaf 50) (Leaf 51)))"
                     : "(extract (Join (Join (Leaf 52) (Leaf 53)) "
                       "(Leaf 54)))");
    ASSERT_EQ(F[0].outputs().size(), 1u);
    ASSERT_EQ(F[0].outputs(), F[1].outputs())
        << "extraction diverged between 1 and 4 threads";
  }

  void pushOrPop() {
    if (Depth > 0 && pick(2) == 0) {
      all("(pop)");
      --Depth;
      compare();
    } else if (Depth < 3) {
      all("(push)");
      ++Depth;
    }
  }

  void compare() {
    ASSERT_EQ(F[0].graph().liveTupleCount(), F[1].graph().liveTupleCount())
        << "tuple count diverged between 1 and 4 threads";
    ASSERT_EQ(F[0].graph().liveContentHash(), F[1].graph().liveContentHash())
        << "content diverged between 1 and 4 threads";
  }
};

} // namespace

TEST(ColumnarDiffTest, ThreadParityRandomSequences) {
  for (uint32_t Seed : {11u, 29u, 47u, 83u, 131u}) {
    ColumnarDiffDriver Driver(Seed);
    Driver.run(120);
    if (::testing::Test::HasFatalFailure())
      FAIL() << "diverged at seed " << Seed;
  }
}
