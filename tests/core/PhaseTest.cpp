//===- tests/core/PhaseTest.cpp - Phase-separated engine tests -------------===//
//
// Part of egglog-cpp. The phase-separated match/apply pipeline must be
// observationally invisible: for any thread count the engine produces a
// bit-identical database (liveContentHash), because matches are buffered
// per (rule, delta variant) and applied in declaration order. A randomized
// differential driver (in the style of RebuildTest.cpp) runs the same
// union/insert/run/push/pop sequence against engines at threads 1, 2, and
// 8 and compares after every run; and the warm-up contract — after
// QueryExecutor::warm, a read-only execution performs no Index build or
// Table version bump — is checked directly against the index stats.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "core/Query.h"
#include "support/FailPoints.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>

using namespace egglog;

namespace {

//===----------------------------------------------------------------------===
// Randomized differential determinism
//===----------------------------------------------------------------------===

/// The shared program: relational rules with multi-atom joins (several
/// delta variants each), term rewrites that mint fresh ids during apply,
/// a safe i64 primitive (parallel path), and two parallel-unsafe query
/// primitives — a rational constructor (interns) and the polymorphic !=
/// over ids (canonicalizes) — exercising the serial prelude.
const char *DeterminismProgram = R"(
  (datatype E (Leaf i64) (Join E E))
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (relation weight (i64 i64))
  (relation ratio (i64 Rational))
  (relation distinct (i64))
  (rule ((edge x y)) ((path x y)))
  (rule ((path x y) (edge y z)) ((path x z)))
  (rule ((path x y) (path y z) (< x z)) ((weight x z)))
  (rewrite (Join a b) (Join b a))
  (rule ((weight x y) (= r (rational x 3))) ((ratio x r)))
  (rule ((Join a b) (!= a b)) ((distinct 1)))
  (Join (Leaf 100) (Leaf 101))
  (Join (Join (Leaf 102) (Leaf 103)) (Leaf 104))
)";

struct TestEngine {
  Frontend F;
  size_t Depth = 0;

  TestEngine(unsigned Threads, bool UseBackoff) {
    EXPECT_TRUE(F.execute(DeterminismProgram)) << F.error();
    F.engine().setThreads(Threads);
    if (UseBackoff) {
      F.runOptions().UseBackoff = true;
      F.runOptions().BackoffMatchLimit = 200;
    }
  }
};

class DeterminismDriver {
public:
  /// Odd seeds run with the BackOff scheduler enabled (low match limit),
  /// so the randomized scripts also exercise cross-thread agreement of
  /// the ban trajectories, not just the database content.
  explicit DeterminismDriver(uint32_t Seed)
      : Engines{TestEngine(1, Seed & 1), TestEngine(2, Seed & 1),
                TestEngine(8, Seed & 1)},
        Rng(Seed) {}

  void run(unsigned Steps) {
    for (unsigned Step = 0; Step < Steps; ++Step) {
      switch (pick(10)) {
      case 0:
      case 1:
      case 2:
        addEdge();
        break;
      case 3:
      case 4:
        addTerm();
        break;
      case 5:
        addUnion();
        break;
      case 6:
      case 7:
        runRules();
        break;
      case 8:
        pushOrPop();
        break;
      case 9:
        runRules();
        break;
      }
    }
    runRules();
    compareExtraction();
  }

private:
  TestEngine Engines[3];
  std::mt19937 Rng;

  uint64_t pick(uint64_t Bound) {
    return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Rng);
  }

  void all(const std::string &Program) {
    for (TestEngine &E : Engines)
      ASSERT_TRUE(E.F.execute(Program)) << E.F.error() << " in " << Program;
  }

  void addEdge() {
    std::string I = std::to_string(pick(12)), J = std::to_string(pick(12));
    all("(edge " + I + " " + J + ")");
  }

  void addTerm() {
    std::string I = std::to_string(pick(8)), J = std::to_string(pick(8));
    all("(Join (Leaf " + I + ") (Leaf " + J + "))");
  }

  void addUnion() {
    std::string I = std::to_string(pick(8)), J = std::to_string(pick(8));
    all("(union (Leaf " + I + ") (Leaf " + J + "))");
  }

  void runRules() {
    all("(run " + std::to_string(1 + pick(3)) + ")");
    compareDatabases();
  }

  void pushOrPop() {
    bool Pop = Engines[0].Depth > 0 && pick(2) == 0;
    if (Pop) {
      all("(pop)");
      for (TestEngine &E : Engines)
        --E.Depth;
      compareDatabases();
    } else if (Engines[0].Depth < 3) {
      all("(push)");
      for (TestEngine &E : Engines)
        ++E.Depth;
    }
  }

  void compareDatabases() {
    EGraph &Base = Engines[0].F.graph();
    for (int E = 1; E < 3; ++E) {
      EGraph &Other = Engines[E].F.graph();
      ASSERT_EQ(Base.liveTupleCount(), Other.liveTupleCount())
          << "tuple count diverged at " << Engines[E].F.engine().threads()
          << " threads";
      ASSERT_EQ(Base.unionFind().unionCount(),
                Other.unionFind().unionCount())
          << "union count diverged at " << Engines[E].F.engine().threads()
          << " threads";
      ASSERT_EQ(Base.liveContentHash(), Other.liveContentHash())
          << "content diverged at " << Engines[E].F.engine().threads()
          << " threads";
      // liveContentHash folds in raw id bits, but also pin the fresh-id
      // numbering down directly: the union-find must have minted exactly
      // the same number of ids in the same order.
      ASSERT_EQ(Base.unionFind().size(), Other.unionFind().size())
          << "fresh-id numbering diverged at "
          << Engines[E].F.engine().threads() << " threads";
      // The scheduler trajectory (delta frontiers, BackOff bans) must
      // track bit-for-bit too — a dropped or extra ban would only skew
      // the database several runs later.
      Engine::Snapshot S0 = Engines[0].F.engine().snapshot();
      Engine::Snapshot SE = Engines[E].F.engine().snapshot();
      ASSERT_EQ(S0.States.size(), SE.States.size());
      for (size_t R = 0; R < S0.States.size(); ++R) {
        ASSERT_EQ(S0.States[R].DeltaStart, SE.States[R].DeltaStart)
            << "delta frontier of rule " << R << " diverged at "
            << Engines[E].F.engine().threads() << " threads";
        ASSERT_EQ(S0.States[R].BannedUntil, SE.States[R].BannedUntil)
            << "ban span of rule " << R << " diverged at "
            << Engines[E].F.engine().threads() << " threads";
        ASSERT_EQ(S0.States[R].TimesBanned, SE.States[R].TimesBanned)
            << "ban count of rule " << R << " diverged at "
            << Engines[E].F.engine().threads() << " threads";
      }
    }
  }

  void compareExtraction() {
    // The seed terms predate every push, so they are present in any
    // context; the extracted representatives must agree exactly.
    for (const char *Term :
         {"(Leaf 100)", "(Join (Leaf 100) (Leaf 101))",
          "(Join (Join (Leaf 102) (Leaf 103)) (Leaf 104))"}) {
      for (TestEngine &E : Engines)
        E.F.clearOutputs();
      all(std::string("(extract ") + Term + ")");
      ASSERT_EQ(Engines[0].F.outputs().size(), 1u);
      for (int E = 1; E < 3; ++E)
        ASSERT_EQ(Engines[0].F.outputs(), Engines[E].F.outputs())
            << "extraction diverged for " << Term;
    }
  }
};

TEST(PhaseDeterminismTest, DifferentialRandomSequences) {
  for (uint32_t Seed : {3u, 17u, 99u, 512u, 2026u}) {
    DeterminismDriver Driver(Seed);
    Driver.run(120);
    if (::testing::Test::HasFatalFailure())
      FAIL() << "diverged at seed " << Seed;
  }
}

TEST(PhaseDeterminismTest, BackoffBansMatchSerial) {
  // The explosive product rule over-matches immediately; the ban decision
  // (collected total > threshold) must agree across thread counts even
  // though parallel collection aborts cooperatively.
  const char *Program = R"(
    (relation item (i64))
    (relation pair (i64 i64))
    (rule ((item x) (item y)) ((pair x y)))
  )";
  Frontend Serial, Wide;
  ASSERT_TRUE(Serial.execute(Program)) << Serial.error();
  ASSERT_TRUE(Wide.execute(Program)) << Wide.error();
  Wide.engine().setThreads(8);
  for (Frontend *F : {&Serial, &Wide}) {
    F->runOptions().UseBackoff = true;
    F->runOptions().BackoffMatchLimit = 100;
    std::string Facts;
    for (int I = 0; I < 40; ++I) // 1600 pairs > limit: banned
      Facts += "(item " + std::to_string(I) + ")\n";
    ASSERT_TRUE(F->execute(Facts + "(run 20)")) << F->error();
  }
  EXPECT_EQ(Serial.graph().liveContentHash(), Wide.graph().liveContentHash());
  EXPECT_EQ(Serial.lastRun().totalMatches(), Wide.lastRun().totalMatches());
}

//===----------------------------------------------------------------------===
// Warm-up contract
//===----------------------------------------------------------------------===

/// edge relation over i64 pairs plus the triangle query edge(x,y) ∧
/// edge(y,z) ∧ edge(z,x), small but join-heavy.
struct TriangleDb {
  EGraph G;
  FunctionId Edge = 0;
  Query Q;

  TriangleDb() {
    FunctionDecl Decl;
    Decl.Name = "edge";
    Decl.ArgSorts = {SortTable::I64Sort, SortTable::I64Sort};
    Decl.OutSort = SortTable::UnitSort;
    Edge = G.declareFunction(std::move(Decl));

    Q.NumVars = 3;
    Q.VarSorts = {SortTable::I64Sort, SortTable::I64Sort,
                  SortTable::I64Sort};
    auto Atom = [&](uint32_t A, uint32_t B) {
      QueryAtom Result;
      Result.Func = Edge;
      Result.Terms = {VarOrConst::makeVar(A), VarOrConst::makeVar(B),
                      VarOrConst::makeConst(G.mkUnit())};
      return Result;
    };
    Q.Atoms = {Atom(0, 1), Atom(1, 2), Atom(2, 0)};
  }

  void addEdges(unsigned Count, uint32_t Seed) {
    std::mt19937 Rng(Seed);
    std::uniform_int_distribution<int64_t> Node(0, 31);
    for (unsigned I = 0; I < Count; ++I) {
      Value Keys[2] = {G.mkI64(Node(Rng)), G.mkI64(Node(Rng))};
      G.setValue(Edge, Keys, G.mkUnit());
    }
  }
};

TEST(WarmUpContractTest, ReadOnlyExecutionAfterWarm) {
  TriangleDb Db;
  Db.addEdges(300, 5);

  // Reference matches through the classic mutating path.
  QueryExecutor Reference(Db.G, Db.Q);
  std::vector<Value> Expected;
  size_t ExpectedCount = 0;
  Reference.executeCollect({}, 0, Expected, ExpectedCount);

  QueryExecutor Exec(Db.G, Db.Q);
  Exec.warm({}, 0);

  const Table &T = *Db.G.function(Db.Edge).Storage;
  uint64_t VersionBefore = T.version();
  IndexCache::Stats Before = T.indexes().stats();

  std::vector<Value> Got;
  size_t GotCount = 0;
  Exec.executeCollectReadOnly({}, 0, Got, GotCount);

  // Same matches in the same order...
  EXPECT_EQ(GotCount, ExpectedCount);
  EXPECT_EQ(Got, Expected);
  // ...with zero database-side work: no version bump and no index
  // builds/refreshes/derivations after the warm pre-pass.
  EXPECT_EQ(T.version(), VersionBefore);
  IndexCache::Stats After = T.indexes().stats();
  EXPECT_EQ(After.Builds, Before.Builds);
  EXPECT_EQ(After.Refreshes, Before.Refreshes);
  EXPECT_EQ(After.Derivations, Before.Derivations);
}

TEST(WarmUpContractTest, ReadOnlyDeltaVariantsAfterWarm) {
  TriangleDb Db;
  Db.addEdges(150, 6);
  Db.G.bumpTimestamp();
  uint32_t Bound = Db.G.timestamp();
  Db.addEdges(80, 7); // the "new" partition

  size_t NumAtoms = Db.Q.Atoms.size();
  for (size_t Variant = 0; Variant < NumAtoms; ++Variant) {
    std::vector<AtomFilter> Filters;
    makeDeltaVariantFilters(Filters, Variant, NumAtoms);

    QueryExecutor Reference(Db.G, Db.Q);
    std::vector<Value> Expected;
    size_t ExpectedCount = 0;
    Reference.executeCollect(Filters, Bound, Expected, ExpectedCount);

    QueryExecutor Exec(Db.G, Db.Q);
    Exec.warm(Filters, Bound);
    const Table &T = *Db.G.function(Db.Edge).Storage;
    uint64_t VersionBefore = T.version();
    IndexCache::Stats Before = T.indexes().stats();

    std::vector<Value> Got;
    size_t GotCount = 0;
    Exec.executeCollectReadOnly(Filters, Bound, Got, GotCount);

    EXPECT_EQ(GotCount, ExpectedCount) << "variant " << Variant;
    EXPECT_EQ(Got, Expected) << "variant " << Variant;
    EXPECT_EQ(T.version(), VersionBefore) << "variant " << Variant;
    IndexCache::Stats After = T.indexes().stats();
    EXPECT_EQ(After.Builds, Before.Builds) << "variant " << Variant;
    EXPECT_EQ(After.Refreshes, Before.Refreshes) << "variant " << Variant;
    EXPECT_EQ(After.Derivations, Before.Derivations) << "variant " << Variant;
  }
}

TEST(WarmUpContractTest, EngineMatchPhaseKeepsVersionsStable) {
  // End to end: a parallel run's match phases must not bump any table
  // version except through apply/rebuild. Saturate first, then run once
  // more — the extra iteration is pure matching (no new tuples), so every
  // version must stay put.
  Frontend F;
  ASSERT_TRUE(F.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 0 1) (edge 1 2) (edge 2 3) (edge 3 4)
  )")) << F.error();
  F.engine().setThreads(4);
  ASSERT_TRUE(F.execute("(run 100)")) << F.error();

  EGraph &G = F.graph();
  std::vector<uint64_t> Versions;
  for (size_t Fn = 0; Fn < G.numFunctions(); ++Fn)
    Versions.push_back(G.function(Fn).Storage->version());
  ASSERT_TRUE(F.execute("(run 1)")) << F.error();
  for (size_t Fn = 0; Fn < G.numFunctions(); ++Fn)
    EXPECT_EQ(G.function(Fn).Storage->version(), Versions[Fn])
        << "function " << Fn << " mutated during a no-op match phase";
}

//===----------------------------------------------------------------------===
// Thread pool
//===----------------------------------------------------------------------===

TEST(ThreadPoolTest, CoversEveryIndexAcrossJobs) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threads(), 4u);
  // Repeated jobs on one pool: every index executed exactly once, with
  // worker writes visible to the caller afterwards.
  for (unsigned Job = 0; Job < 50; ++Job) {
    size_t N = 1 + Job * 7 % 97;
    std::vector<std::atomic<unsigned>> Hits(N);
    Pool.parallelFor(N, [&](size_t I) {
      Hits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Hits[I].load(), 1u) << "item " << I << " of job " << Job;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  Pool.parallelFor(8, [&](size_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 8u);
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(Order[I], I); // inline mode preserves index order
}

TEST(ThreadPoolTest, TracksItemTalliesPerTag) {
  ThreadPool Pool(4);
  Pool.parallelFor(10, [](size_t) {}, "alpha");
  Pool.parallelFor(5, [](size_t) {}, "beta");
  Pool.parallelFor(7, [](size_t) {}, "alpha");
  Pool.parallelFor(9, [](size_t) {}); // untagged jobs are not tallied
  EXPECT_EQ(Pool.itemsForTag("alpha"), 17u);
  EXPECT_EQ(Pool.itemsForTag("beta"), 5u);
  EXPECT_EQ(Pool.itemsForTag("gamma"), 0u);
  // The inline path (1 worker or 1 item) tallies too.
  ThreadPool Inline(1);
  Inline.parallelFor(3, [](size_t) {}, "alpha");
  EXPECT_EQ(Inline.itemsForTag("alpha"), 3u);
  Pool.parallelFor(1, [](size_t) {}, "beta");
  EXPECT_EQ(Pool.itemsForTag("beta"), 6u);
}

#if EGGLOG_FAILPOINTS_ENABLED

TEST(PhaseDeterminismTest, ParallelApplyAndRebuildPhasesEngage) {
  // Guard against silent fallback: the determinism tests above would pass
  // even if staging/gathering never ran (the classic loops are always
  // correct). Count the failpoint sites inside the parallel loops —
  // arm(site, 0) tallies hits without ever firing — to prove a 4-thread
  // run actually stages apply work and gathers rebuild work.
  struct Disarm {
    ~Disarm() { failpoints::disarm(); }
  } Guard;
  Frontend F;
  ASSERT_TRUE(F.execute(DeterminismProgram)) << F.error();
  ASSERT_TRUE(F.execute("(edge 0 1) (edge 1 2) (edge 2 3) (edge 3 0)"))
      << F.error();
  F.engine().setThreads(4);
  failpoints::arm("apply.partition", 0);
  ASSERT_TRUE(F.execute("(run 3)")) << F.error();
  EXPECT_GT(failpoints::hits(), 0u) << "no apply chunk was ever staged";
  failpoints::arm("rebuild.occurrence", 0);
  ASSERT_TRUE(F.execute("(union (Leaf 100) (Leaf 101)) (run 1)"))
      << F.error();
  EXPECT_GT(failpoints::hits(), 0u) << "no parallel rebuild pass ran";
}

TEST(PhaseDeterminismTest, InjectedFaultMidRunRollsBackAtFourThreads) {
  // A fault injected anywhere inside a 4-thread (run) — match steps,
  // apply, rebuild rows — rolls the database back to the pre-command
  // state, and the eventual clean run lands on the same content hash as
  // an engine that never faulted.
  struct Disarm {
    ~Disarm() { failpoints::disarm(); }
  } Guard;

  auto Setup = [](Frontend &F) {
    ASSERT_TRUE(F.execute(DeterminismProgram)) << F.error();
    ASSERT_TRUE(F.execute("(edge 0 1) (edge 1 2) (edge 2 3) (edge 3 0)"))
        << F.error();
    F.engine().setThreads(4);
    F.graph().governor().setCheckpointInterval(1);
  };

  Frontend Clean;
  Setup(Clean);
  ASSERT_TRUE(Clean.execute("(run 4)")) << Clean.error();

  Frontend F;
  Setup(F);
  uint64_t Before = F.graph().liveContentHash();
  size_t Faults = 0;
  for (uint64_t K = 1;; K = K < 8 ? K + 1 : K + (K >> 1)) {
    failpoints::arm(nullptr, K);
    bool Ok = F.execute("(run 4)");
    failpoints::disarm();
    if (Ok)
      break;
    ++Faults;
    ASSERT_NE(F.error().find("injected fault"), std::string::npos)
        << F.error();
    ASSERT_EQ(F.graph().liveContentHash(), Before) << "hit " << K;
  }
  EXPECT_GT(Faults, 0u);
  EXPECT_EQ(F.graph().liveContentHash(), Clean.graph().liveContentHash());
  EXPECT_EQ(F.graph().liveTupleCount(), Clean.graph().liveTupleCount());
}

#endif // EGGLOG_FAILPOINTS_ENABLED

} // namespace
