//===- tests/core/TableTest.cpp - Function table tests ---------------------===//
//
// Part of egglog-cpp. Tests for the append-only functional tables with
// timestamps (§5.1 "Database").
//
//===----------------------------------------------------------------------===//

#include "core/Table.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

using egglog::Table;
using egglog::Value;

namespace {
Value v(uint64_t Bits, uint32_t Sort = 2) { return Value(Sort, Bits); }
} // namespace

TEST(TableTest, InsertAndLookup) {
  Table T(2);
  Value Keys[2] = {v(1), v(2)};
  EXPECT_FALSE(T.lookup(Keys).has_value());
  EXPECT_FALSE(T.insert(Keys, v(10), 0).has_value());
  auto Found = T.lookup(Keys);
  ASSERT_TRUE(Found.has_value());
  EXPECT_EQ(Found->Bits, 10u);
  EXPECT_EQ(T.liveCount(), 1u);
}

TEST(TableTest, UpdateKillsOldRowAndReturnsPrevious) {
  Table T(1);
  Value Key[1] = {v(7)};
  T.insert(Key, v(100), 0);
  auto Old = T.insert(Key, v(200), 1);
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(Old->Bits, 100u);
  EXPECT_EQ(T.liveCount(), 1u);
  EXPECT_EQ(T.rowCount(), 2u) << "updates append rather than overwrite";
  EXPECT_FALSE(T.isLive(0));
  EXPECT_TRUE(T.isLive(1));
  EXPECT_EQ(T.stamp(1), 1u);
  EXPECT_EQ(T.lookup(Key)->Bits, 200u);
}

TEST(TableTest, IdenticalReinsertIsANoOp) {
  Table T(1);
  Value Key[1] = {v(7)};
  T.insert(Key, v(100), 0);
  EXPECT_FALSE(T.insert(Key, v(100), 5).has_value());
  EXPECT_EQ(T.rowCount(), 1u) << "no delta row for identical output";
  EXPECT_EQ(T.stamp(0), 0u);
}

TEST(TableTest, EraseUnlinksRow) {
  Table T(1);
  Value KeyA[1] = {v(1)}, KeyB[1] = {v(2)};
  T.insert(KeyA, v(10), 0);
  T.insert(KeyB, v(20), 0);
  EXPECT_TRUE(T.erase(KeyA));
  EXPECT_FALSE(T.erase(KeyA)) << "double erase returns false";
  EXPECT_FALSE(T.lookup(KeyA).has_value());
  EXPECT_EQ(T.lookup(KeyB)->Bits, 20u);
  EXPECT_EQ(T.liveCount(), 1u);
}

TEST(TableTest, NullaryTable) {
  Table T(0);
  Value Dummy;
  EXPECT_FALSE(T.lookup(&Dummy).has_value());
  T.insert(&Dummy, v(42), 0);
  EXPECT_EQ(T.lookup(&Dummy)->Bits, 42u);
  auto Old = T.insert(&Dummy, v(43), 1);
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(Old->Bits, 42u);
}

TEST(TableTest, GrowsPastInitialCapacity) {
  Table T(1);
  for (uint64_t I = 0; I < 1000; ++I) {
    Value Key[1] = {v(I)};
    T.insert(Key, v(I * 2), 0);
  }
  EXPECT_EQ(T.liveCount(), 1000u);
  for (uint64_t I = 0; I < 1000; ++I) {
    Value Key[1] = {v(I)};
    ASSERT_TRUE(T.lookup(Key).has_value());
    EXPECT_EQ(T.lookup(Key)->Bits, I * 2);
  }
}

TEST(TableTest, DistinguishesSorts) {
  Table T(1);
  Value KeyA[1] = {Value(2, 5)};
  Value KeyB[1] = {Value(3, 5)};
  T.insert(KeyA, v(1), 0);
  EXPECT_FALSE(T.lookup(KeyB).has_value())
      << "same bits under a different sort is a different key";
}

/// Property sweep: the table agrees with a std::unordered_map oracle under
/// random insert/update/erase workloads (including backward-shift deletion
/// stress).
class TablePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TablePropertyTest, MatchesMapOracle) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<uint64_t> KeyDist(0, 200);
  std::uniform_int_distribution<int> OpDist(0, 3);
  Table T(1);
  std::unordered_map<uint64_t, uint64_t> Oracle;
  uint32_t Stamp = 0;
  for (int Step = 0; Step < 3000; ++Step) {
    uint64_t K = KeyDist(Rng);
    Value Key[1] = {v(K)};
    switch (OpDist(Rng)) {
    case 0:
    case 1: {
      uint64_t Out = KeyDist(Rng);
      T.insert(Key, v(Out), Stamp++);
      Oracle[K] = Out;
      break;
    }
    case 2: {
      bool Erased = T.erase(Key);
      EXPECT_EQ(Erased, Oracle.erase(K) > 0);
      break;
    }
    case 3: {
      auto Found = T.lookup(Key);
      auto It = Oracle.find(K);
      if (It == Oracle.end()) {
        EXPECT_FALSE(Found.has_value());
      } else {
        ASSERT_TRUE(Found.has_value());
        EXPECT_EQ(Found->Bits, It->second);
      }
      break;
    }
    }
  }
  EXPECT_EQ(T.liveCount(), Oracle.size());
  // Final sweep: every oracle entry is present.
  for (const auto &[K, Out] : Oracle) {
    Value Key[1] = {v(K)};
    auto Found = T.lookup(Key);
    ASSERT_TRUE(Found.has_value());
    EXPECT_EQ(Found->Bits, Out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TablePropertyTest,
                         ::testing::Values(5u, 6u, 7u, 8u));

//===----------------------------------------------------------------------===
// Columnar storage
//===----------------------------------------------------------------------===

TEST(TableColumnarTest, CellColumnAndCopyRowAgree) {
  Table T(2);
  for (uint64_t I = 0; I < 64; ++I) {
    Value Keys[2] = {v(I), v(I * 3)};
    T.insert(Keys, v(I * 7), static_cast<uint32_t>(I));
  }
  ASSERT_EQ(T.rowCount(), 64u);
  for (size_t Row = 0; Row < T.rowCount(); ++Row) {
    EXPECT_EQ(T.cell(Row, 0).Bits, Row);
    EXPECT_EQ(T.cell(Row, 1).Bits, Row * 3);
    EXPECT_EQ(T.cell(Row, 2).Bits, Row * 7);
    EXPECT_EQ(T.output(Row).Bits, Row * 7);
    Value Out[3];
    T.copyRow(Row, Out);
    for (unsigned C = 0; C < 3; ++C)
      EXPECT_TRUE(Out[C] == T.cell(Row, C));
  }
  // column() exposes each position as one contiguous array: indexing the
  // base pointer by row must agree with cell() for every position.
  for (unsigned C = 0; C < T.rowWidth(); ++C) {
    const Value *Col = T.column(C);
    for (size_t Row = 0; Row < T.rowCount(); ++Row)
      EXPECT_TRUE(Col[Row] == T.cell(Row, C));
  }
  const uint32_t *Stamps = T.stampColumn();
  for (size_t Row = 0; Row < T.rowCount(); ++Row)
    EXPECT_EQ(Stamps[Row], T.stamp(Row));
}

TEST(TableColumnarTest, EraseRowMatchesEraseByKey) {
  Table A(1), B(1);
  for (uint64_t I = 0; I < 100; ++I) {
    Value Key[1] = {v(I)};
    A.insert(Key, v(I + 1), 0);
    B.insert(Key, v(I + 1), 0);
  }
  // Kill every third key: by key tuple in A, by row index in B.
  for (uint64_t I = 0; I < 100; I += 3) {
    Value Key[1] = {v(I)};
    EXPECT_TRUE(A.erase(Key));
    int64_t Row = B.findRow(Key);
    ASSERT_GE(Row, 0);
    B.eraseRow(static_cast<size_t>(Row));
  }
  EXPECT_EQ(A.liveCount(), B.liveCount());
  EXPECT_EQ(A.killCount(), B.killCount());
  EXPECT_EQ(A.version(), B.version());
  for (uint64_t I = 0; I < 100; ++I) {
    Value Key[1] = {v(I)};
    EXPECT_EQ(A.lookup(Key).has_value(), B.lookup(Key).has_value());
    EXPECT_EQ(B.lookup(Key).has_value(), I % 3 != 0);
  }
}

TEST(TableColumnarTest, RollbackResurrectsAndTruncatesColumns) {
  Table T(1);
  for (uint64_t I = 0; I < 50; ++I) {
    Value Key[1] = {v(I)};
    T.insert(Key, v(I), 0);
  }
  Table::TxnMark Mark = T.txnMark();
  // Update (kill + append), erase, and fresh-append past the mark.
  for (uint64_t I = 0; I < 50; I += 2) {
    Value Key[1] = {v(I)};
    T.insert(Key, v(I + 1000), 1);
  }
  for (uint64_t I = 1; I < 50; I += 4) {
    Value Key[1] = {v(I)};
    T.erase(Key);
  }
  for (uint64_t I = 100; I < 120; ++I) {
    Value Key[1] = {v(I)};
    T.insert(Key, v(I), 1);
  }
  T.rollbackTo(Mark);
  EXPECT_EQ(T.rowCount(), 50u) << "appended rows truncated";
  EXPECT_EQ(T.liveCount(), 50u) << "killed rows resurrected";
  for (uint64_t I = 0; I < 50; ++I) {
    Value Key[1] = {v(I)};
    auto Found = T.lookup(Key);
    ASSERT_TRUE(Found.has_value()) << "key " << I;
    EXPECT_EQ(Found->Bits, I) << "pre-mark output restored";
  }
  Value Fresh[1] = {v(100)};
  EXPECT_FALSE(T.lookup(Fresh).has_value());
}

TEST(TableColumnarTest, SnapshotRestoreRoundTrip) {
  Table T(2);
  for (uint64_t I = 0; I < 40; ++I) {
    Value Keys[2] = {v(I), v(I * 2)};
    T.insert(Keys, v(I * 5), static_cast<uint32_t>(I / 10));
  }
  for (uint64_t I = 0; I < 40; I += 5) {
    Value Keys[2] = {v(I), v(I * 2)};
    T.erase(Keys);
  }
  Table::Snapshot S = T.snapshot();
  size_t LiveAtSnap = T.liveCount();
  // Mutate heavily past the snapshot.
  for (uint64_t I = 0; I < 40; ++I) {
    Value Keys[2] = {v(I), v(I * 2)};
    T.insert(Keys, v(I * 5 + 1), 9);
  }
  for (uint64_t I = 200; I < 230; ++I) {
    Value Keys[2] = {v(I), v(I)};
    T.insert(Keys, v(I), 9);
  }
  T.restore(S);
  EXPECT_EQ(T.rowCount(), S.Rows);
  EXPECT_EQ(T.liveCount(), LiveAtSnap);
  for (uint64_t I = 0; I < 40; ++I) {
    Value Keys[2] = {v(I), v(I * 2)};
    auto Found = T.lookup(Keys);
    if (I % 5 == 0) {
      EXPECT_FALSE(Found.has_value()) << "erased key " << I << " stays dead";
    } else {
      ASSERT_TRUE(Found.has_value()) << "key " << I;
      EXPECT_EQ(Found->Bits, I * 5) << "pre-snapshot output restored";
    }
  }
  Value Fresh[2] = {v(200), v(200)};
  EXPECT_FALSE(T.lookup(Fresh).has_value());
}

TEST(TableColumnarTest, ApproxBytesTracksColumnPayload) {
  Table T(3);
  size_t Empty = T.approxBytes();
  for (uint64_t I = 0; I < 2000; ++I) {
    Value Keys[3] = {v(I), v(I + 1), v(I + 2)};
    T.insert(Keys, v(I * 2), 0);
  }
  size_t Filled = T.approxBytes();
  // Four value columns of 2000 rows is the hard floor; the accounting must
  // cover at least the column payload plus stamps and the hash index.
  EXPECT_GE(Filled, Empty + 4 * 2000 * sizeof(Value));
  EXPECT_GE(Filled, 2000 * (4 * sizeof(Value) + sizeof(uint32_t)));
}
