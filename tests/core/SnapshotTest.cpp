//===- tests/core/SnapshotTest.cpp - Snapshot persistence hardening -------===//
//
// Part of egglog-cpp. The crash-safe snapshot subsystem end to end:
//
//  - exact liveContentHash round-trip into a fresh database and back into
//    the originating one (identity remap both ways),
//  - a 5-seed randomized differential: a run continued after save + load
//    (runs, unions, inserts, extractions, push/pop) must be bit-identical
//    to a run that never snapshotted,
//  - corruption sweeps: a single-byte flip at every offset and a
//    truncation at every length must each produce a clean io-kind error
//    and leave the live database untouched,
//  - a fault sweep over the writer's "snapshot.write" failpoint: a crash
//    at any write step must leave the previous on-disk snapshot intact,
//  - structural rejections: version skew and declaration mismatch.
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"
#include "core/Frontend.h"
#include "core/Snapshot.h"
#include "support/Crc32c.h"
#include "support/FailPoints.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <vector>

using namespace egglog;

namespace {

struct StateFingerprint {
  uint64_t ContentHash;
  size_t LiveTuples;
  uint64_t Unions;
  uint64_t UfSize;
  size_t Functions;
  size_t Sorts;

  bool operator==(const StateFingerprint &) const = default;
};

StateFingerprint fingerprint(Frontend &F) {
  return StateFingerprint{F.graph().liveContentHash(),
                          F.graph().liveTupleCount(),
                          F.graph().unionFind().unionCount(),
                          F.graph().unionFind().size(),
                          F.graph().numFunctions(),
                          F.graph().sorts().size()};
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

std::vector<unsigned char> readBytes(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  EXPECT_TRUE(Stream.is_open()) << Path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(Stream),
                                    {});
}

void writeBytes(const std::string &Path,
                const std::vector<unsigned char> &Bytes) {
  std::ofstream Stream(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Stream.is_open()) << Path;
  Stream.write(reinterpret_cast<const char *>(Bytes.data()),
               static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Stream.good()) << Path;
}

bool fileExists(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  return Stream.is_open();
}

/// Declarations only — safe to run exactly once per database (re-running
/// them on a loaded copy would hit "already declared").
const char *Decls = R"(
  (datatype Math (Num i64) (Var String) (Add Math Math) (Mul Math Math))
  (sort ISet (Set i64))
  (function s () ISet :merge (set-union old new))
  (function q () Rational :merge (min old new))
  (relation edge (i64 i64))
  (relation path (i64 i64))
)";

/// Rules are engine state, not database state: a snapshot does not carry
/// them, so a warm-started frontend re-declares them after (load).
const char *Rules = R"(
  (rewrite (Add a b) (Add b a))
  (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
  (rule ((edge x y)) ((path x y)))
  (rule ((path x y) (edge y z)) ((path x z)))
)";

/// Ground facts exercising every serialized value family: i64, strings,
/// rationals, sets, user sorts, and unions.
const char *Body = R"(
  (define e (Add (Num 1) (Add (Num 2) (Var "x"))))
  (set (s) (set-insert (set-empty) 7))
  (set (s) (set-insert (set-empty) 3))
  (set (q) (rational 1 3))
  (set (q) (rational 2 7))
  (edge 1 2) (edge 2 3) (edge 3 4)
  (union (Num 5) (Add (Num 2) (Num 3)))
  (run 3)
)";

/// From-scratch extraction of \p Expr, comparable across frontends with
/// different index maintenance histories (among equal-cost terms the
/// incremental index's winner depends on its scan order).
std::string probeExtract(Frontend &F, const std::string &Expr) {
  Value V;
  if (!F.evalGround(Expr, V))
    return "<absent>";
  F.graph().extractIndex().invalidate();
  std::optional<ExtractedTerm> Term = extractTerm(F.graph(), V);
  if (!Term)
    return "<no-term>";
  return Term->Text + " $" + std::to_string(Term->Cost);
}

/// A victim frontend with state worth protecting, plus the saved
/// fingerprint a failed load must preserve.
struct Victim {
  Frontend F;
  StateFingerprint Before;

  Victim() {
    EXPECT_TRUE(F.execute(Decls)) << F.error();
    EXPECT_TRUE(F.execute(Body)) << F.error();
    Before = fingerprint(F);
  }

  /// Loads \p Path, asserting the clean io-error contract: structured
  /// failure, untouched database.
  void expectLoadFails(const std::string &Path, const char *Context) {
    EXPECT_FALSE(F.execute("(load \"" + Path + "\")")) << Context;
    EXPECT_EQ(F.lastError().Kind, ErrKind::IO)
        << Context << ": " << F.error();
    EXPECT_EQ(fingerprint(F), Before) << Context;
  }
};

} // namespace

TEST(SnapshotTest, RoundTripIntoFreshDatabase) {
  const std::string Path = tmpPath("snap_roundtrip.snap");
  Frontend A;
  ASSERT_TRUE(A.execute(Decls)) << A.error();
  ASSERT_TRUE(A.execute(Rules)) << A.error();
  ASSERT_TRUE(A.execute(Body)) << A.error();
  ASSERT_TRUE(A.execute("(save \"" + Path + "\")")) << A.error();

  // An empty database's declarations are trivially a prefix: the load
  // recreates every sort, function, interner entry, and tuple with
  // identical ids, so the content hash matches exactly.
  Frontend B;
  ASSERT_TRUE(B.execute("(load \"" + Path + "\")")) << B.error();
  EXPECT_EQ(fingerprint(B), fingerprint(A));
  EXPECT_EQ(B.graph().strings().size(), A.graph().strings().size());
  EXPECT_EQ(B.graph().rationals().size(), A.graph().rationals().size());
  EXPECT_EQ(B.graph().sets().size(), A.graph().sets().size());
  EXPECT_EQ(probeExtract(B, "e"), probeExtract(A, "e"));

  // Warm start: re-declare the rules and keep running; the loaded copy
  // must stay in lockstep with the original (scheduler-visible behavior).
  ASSERT_TRUE(B.execute(Rules)) << B.error();
  const char *Suffix = "(edge 4 5) (union (Num 9) (Add (Num 4) (Num 5))) "
                       "(run 3)";
  ASSERT_TRUE(A.execute(Suffix)) << A.error();
  ASSERT_TRUE(B.execute(Suffix)) << B.error();
  EXPECT_EQ(fingerprint(B), fingerprint(A));
  EXPECT_EQ(probeExtract(B, "e"), probeExtract(A, "e"));
  std::remove(Path.c_str());
}

TEST(SnapshotTest, InPlaceReloadRestoresExactState) {
  const std::string Path = tmpPath("snap_inplace.snap");
  Frontend F;
  ASSERT_TRUE(F.execute(Decls)) << F.error();
  ASSERT_TRUE(F.execute(Rules)) << F.error();
  ASSERT_TRUE(F.execute(Body)) << F.error();
  StateFingerprint Saved = fingerprint(F);
  std::string SavedExtract = probeExtract(F, "e");
  ASSERT_TRUE(F.execute("(save \"" + Path + "\")")) << F.error();

  // Diverge, then load the snapshot back into the same database: the
  // declarations are identical, so the remap is the identity and the
  // restore is exact.
  ASSERT_TRUE(F.execute("(edge 8 9) (union (Num 50) (Num 60)) (run 2)"))
      << F.error();
  ASSERT_NE(fingerprint(F), Saved);
  ASSERT_TRUE(F.execute("(load \"" + Path + "\")")) << F.error();
  EXPECT_EQ(fingerprint(F), Saved);
  EXPECT_EQ(probeExtract(F, "e"), SavedExtract);

  // The database stays fully usable: the engine's cached hashes were
  // invalidated, so new work lands on the restored content.
  ASSERT_TRUE(F.execute("(run 1) (check (= e (Add (Num 1) (Add (Num 2) "
                        "(Var \"x\")))))"))
      << F.error();
  std::remove(Path.c_str());
}

TEST(SnapshotTest, FiveSeedDifferentialContinuesAfterReload) {
  // For each seed: frontend A runs prefix + suffix with no snapshot;
  // frontend B runs the prefix, saves, and a fresh frontend C loads the
  // snapshot, re-declares the rules, and runs the suffix. A and C must be
  // bit-identical throughout — same hashes, same extraction, same
  // outputs.
  const std::string Path = tmpPath("snap_differential.snap");
  for (uint32_t Seed : {11u, 23u, 47u, 101u, 1009u}) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::mt19937 Rng(Seed);
    auto Pick = [&](uint64_t Bound) {
      return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Rng);
    };
    auto Num = [&](uint64_t Bound) { return std::to_string(Pick(Bound)); };
    auto RandomCommand = [&](size_t &Depth, bool AllowContexts) {
      switch (Pick(AllowContexts ? 10u : 8u)) {
      case 0:
      case 1:
      case 2:
        return "(edge " + Num(12) + " " + Num(12) + ")";
      case 3:
      case 4:
        return "(Add (Num " + Num(6) + ") (Num " + Num(6) + "))";
      case 5:
        // Union leaf-only Var classes: distinct (Num a)/(Num b) merges
        // would make the arithmetic inconsistent and the constant-fold
        // rewrite would then generate Num values without bound.
        return "(union (Var \"u" + Num(6) + "\") (Var \"u" + Num(6) +
               "\"))";
      case 6:
      case 7:
        return "(run " + std::to_string(1 + Pick(2)) + ")";
      default:
        if (Depth > 0 && Pick(2) == 0) {
          --Depth;
          return std::string("(pop)");
        }
        if (Depth < 2) {
          ++Depth;
          return std::string("(push)");
        }
        return std::string("(run 1)");
      }
    };

    // The prefix stays at context depth 0 so the save point is a legal
    // load point; the suffix mixes push/pop back in.
    std::vector<std::string> Prefix, Suffix;
    size_t Depth = 0;
    for (int I = 0; I < 30; ++I)
      Prefix.push_back(RandomCommand(Depth, /*AllowContexts=*/false));
    for (int I = 0; I < 30; ++I)
      Suffix.push_back(RandomCommand(Depth, /*AllowContexts=*/true));

    Frontend A, B;
    for (Frontend *F : {&A, &B}) {
      ASSERT_TRUE(F->execute(Decls)) << F->error();
      ASSERT_TRUE(F->execute(Rules)) << F->error();
      ASSERT_TRUE(F->execute("(define root (Add (Num 0) (Num 1)))"))
          << F->error();
      for (const std::string &C : Prefix)
        ASSERT_TRUE(F->execute(C)) << C << ": " << F->error();
    }
    ASSERT_TRUE(B.execute("(save \"" + Path + "\")")) << B.error();

    Frontend C;
    ASSERT_TRUE(C.execute("(load \"" + Path + "\")")) << C.error();
    ASSERT_TRUE(C.execute(Rules)) << C.error();
    ASSERT_EQ(fingerprint(C), fingerprint(A)) << "diverged at the reload";

    for (const std::string &Cmd : Suffix) {
      ASSERT_TRUE(A.execute(Cmd)) << Cmd << ": " << A.error();
      ASSERT_TRUE(C.execute(Cmd)) << Cmd << ": " << C.error();
      ASSERT_EQ(fingerprint(C), fingerprint(A)) << "diverged at: " << Cmd;
    }
    EXPECT_EQ(probeExtract(C, "root"), probeExtract(A, "root"));
  }
  std::remove(Path.c_str());
}

TEST(SnapshotTest, CorruptionByteFlipSweep) {
  // Keep the database (and therefore the file) small: the sweep loads
  // once per byte. Every flip must be caught — the trailing whole-file
  // checksum covers every byte, including itself.
  const std::string Path = tmpPath("snap_flip.snap");
  const std::string Corrupt = tmpPath("snap_flip_corrupt.snap");
  Victim V;
  ASSERT_TRUE(V.F.execute("(save \"" + Path + "\")")) << V.F.error();
  std::vector<unsigned char> Good = readBytes(Path);
  ASSERT_GT(Good.size(), 24u);

  for (size_t I = 0; I < Good.size(); ++I) {
    std::vector<unsigned char> Bad = Good;
    Bad[I] ^= 0xFF;
    writeBytes(Corrupt, Bad);
    V.expectLoadFails(Corrupt, ("flip at offset " + std::to_string(I))
                                   .c_str());
    if (::testing::Test::HasFailure())
      return;
  }

  // The sweep harness itself is sound: the uncorrupted copy loads.
  writeBytes(Corrupt, Good);
  EXPECT_TRUE(V.F.execute("(load \"" + Corrupt + "\")")) << V.F.error();
  EXPECT_EQ(fingerprint(V.F), V.Before);
  std::remove(Path.c_str());
  std::remove(Corrupt.c_str());
}

TEST(SnapshotTest, CorruptionTruncationSweep) {
  const std::string Path = tmpPath("snap_trunc.snap");
  const std::string Corrupt = tmpPath("snap_trunc_corrupt.snap");
  Victim V;
  ASSERT_TRUE(V.F.execute("(save \"" + Path + "\")")) << V.F.error();
  std::vector<unsigned char> Good = readBytes(Path);
  ASSERT_GT(Good.size(), 24u);

  for (size_t Len = 0; Len < Good.size(); ++Len) {
    writeBytes(Corrupt, std::vector<unsigned char>(Good.begin(),
                                                   Good.begin() + Len));
    V.expectLoadFails(Corrupt, ("truncation to " + std::to_string(Len))
                                   .c_str());
    if (::testing::Test::HasFailure())
      return;
  }
  std::remove(Path.c_str());
  std::remove(Corrupt.c_str());
}

TEST(SnapshotTest, VersionSkewIsRejected) {
  const std::string Path = tmpPath("snap_version.snap");
  Victim V;
  ASSERT_TRUE(V.F.execute("(save \"" + Path + "\")")) << V.F.error();
  std::vector<unsigned char> Bytes = readBytes(Path);
  ASSERT_GT(Bytes.size(), 24u);

  // Bump the version field (bytes 8..11, little-endian) and repair the
  // trailing whole-file checksum so the version check itself is what
  // rejects the file.
  Bytes[8] = 2;
  uint32_t Crc = crc32cFinish(
      crc32cUpdate(crc32cInit(), Bytes.data(), Bytes.size() - 4));
  for (int I = 0; I < 4; ++I)
    Bytes[Bytes.size() - 4 + static_cast<size_t>(I)] =
        static_cast<unsigned char>(Crc >> (8 * I));
  writeBytes(Path, Bytes);

  V.expectLoadFails(Path, "version skew");
  EXPECT_NE(V.F.error().find("unsupported snapshot version"),
            std::string::npos)
      << V.F.error();
  std::remove(Path.c_str());
}

TEST(SnapshotTest, DeclarationMismatchIsRejected) {
  const std::string Path = tmpPath("snap_mismatch.snap");
  Victim V;
  ASSERT_TRUE(V.F.execute("(save \"" + Path + "\")")) << V.F.error();

  // A database whose declarations are not a prefix of the snapshot's
  // (different first relation) must reject the load untouched.
  Frontend Other;
  ASSERT_TRUE(Other.execute("(relation zzz (i64 i64))")) << Other.error();
  StateFingerprint Before = fingerprint(Other);
  EXPECT_FALSE(Other.execute("(load \"" + Path + "\")"));
  EXPECT_EQ(Other.lastError().Kind, ErrKind::IO) << Other.error();
  EXPECT_NE(Other.error().find("declaration mismatch"), std::string::npos)
      << Other.error();
  EXPECT_EQ(fingerprint(Other), Before);
  std::remove(Path.c_str());
}

#if EGGLOG_FAILPOINTS_ENABLED

namespace {
struct DisarmGuard {
  DisarmGuard() { failpoints::disarm(); }
  ~DisarmGuard() { failpoints::disarm(); }
};
} // namespace

TEST(SnapshotTest, WriterFaultSweepNeverLosesPreviousSnapshot) {
  // The writer hits "snapshot.write" before the tmp-file open, between
  // 64KB chunks, before fsync, and before the rename. A fault at any of
  // those points must leave the previously saved snapshot byte-identical
  // and loadable, and must leave no *.tmp litter behind.
  DisarmGuard Guard;
  const std::string Path = tmpPath("snap_fault.snap");
  const std::string Tmp = Path + ".tmp";
  Victim V;
  ASSERT_TRUE(V.F.execute("(save \"" + Path + "\")")) << V.F.error();
  std::vector<unsigned char> V1 = readBytes(Path);

  // Diverge so the overwrite would actually change the file.
  ASSERT_TRUE(V.F.execute("(edge 10 11) (run 1)")) << V.F.error();
  StateFingerprint Mutated = fingerprint(V.F);

  size_t Faults = 0;
  for (uint64_t K = 1;; ++K) {
    failpoints::arm("snapshot.write", K);
    bool Ok = V.F.execute("(save \"" + Path + "\")");
    failpoints::disarm();
    if (Ok)
      break;
    ++Faults;
    ASSERT_NE(V.F.error().find("injected fault"), std::string::npos)
        << "save failed for another reason: " << V.F.error();
    // The old snapshot survives the crash, the partial write is cleaned
    // up, and the live database is untouched.
    EXPECT_EQ(readBytes(Path), V1) << "previous snapshot lost at hit " << K;
    EXPECT_FALSE(fileExists(Tmp)) << "tmp file leaked at hit " << K;
    EXPECT_EQ(fingerprint(V.F), Mutated) << "save mutated state at hit "
                                         << K;
    Frontend Reader;
    ASSERT_TRUE(Reader.execute("(load \"" + Path + "\")"))
        << "old snapshot unreadable at hit " << K << ": " << Reader.error();
    EXPECT_EQ(fingerprint(Reader), V.Before);
    if (::testing::Test::HasFailure())
      return;
    ASSERT_LT(K, 64u) << "snapshot.write sweep did not terminate";
  }
  // The sweep reached every failpoint (open, chunk, fsync, rename).
  EXPECT_GE(Faults, 4u);

  // The surviving clean save wrote the mutated state.
  Frontend Reader;
  ASSERT_TRUE(Reader.execute("(load \"" + Path + "\")")) << Reader.error();
  EXPECT_EQ(fingerprint(Reader), Mutated);
  std::remove(Path.c_str());
}

#endif // EGGLOG_FAILPOINTS_ENABLED
