//===- tests/core/RebuildTest.cpp - Incremental rebuild differential -------===//
//
// Part of egglog-cpp. The incremental, worklist-driven rebuild must be
// observationally identical to the legacy full-sweep rebuild: after every
// rebuild of any random union/insert/push/pop sequence, the two strategies
// reach the same live content hash, tuple count, and union count. The
// random driver mirrors each operation onto two databases that differ only
// in their rebuild strategy.
//
// The sequences mint fresh ids only from the driver (never from a merge
// expression), so the id numbering of the two databases stays aligned and
// the content hashes are directly comparable.
//
//===----------------------------------------------------------------------===//

#include "core/EGraph.h"
#include "support/FailPoints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace egglog;

namespace {

/// One database plus the handles the driver mutates through.
struct TestDb {
  EGraph G;
  SortId S = 0;
  SortId SetOfS = 0;
  FunctionId UnaryF = 0;  ///< f : S -> S (congruence cascades)
  FunctionId BinaryF = 0; ///< g : S S -> S
  FunctionId EdgeR = 0;   ///< edge : S S -> Unit (relation)
  FunctionId Score = 0;   ///< score : S -> i64, :merge (max old new)
  FunctionId Bag = 0;     ///< bag : i64 -> SetOfS (container sweep path)
  std::vector<EGraph::Snapshot> Stack;

  explicit TestDb(bool FullRebuild) {
    G.setFullRebuild(FullRebuild);
    S = G.declareSort("T");
    SetOfS = G.declareSetSort("SetT", S);

    FunctionDecl F;
    F.Name = "f";
    F.ArgSorts = {S};
    F.OutSort = S;
    UnaryF = G.declareFunction(std::move(F));

    FunctionDecl GDecl;
    GDecl.Name = "g";
    GDecl.ArgSorts = {S, S};
    GDecl.OutSort = S;
    BinaryF = G.declareFunction(std::move(GDecl));

    FunctionDecl E;
    E.Name = "edge";
    E.ArgSorts = {S, S};
    E.OutSort = SortTable::UnitSort;
    EdgeR = G.declareFunction(std::move(E));

    // score : S -> i64 with (max old new), so rebuild collisions exercise
    // merge expressions without minting ids.
    uint32_t MaxPrim = 0;
    EXPECT_TRUE(G.primitives().resolve(
        "max", {SortTable::I64Sort, SortTable::I64Sort}, MaxPrim));
    FunctionDecl Sc;
    Sc.Name = "score";
    Sc.ArgSorts = {S};
    Sc.OutSort = SortTable::I64Sort;
    Sc.MergeExpr = TypedExpr::makeCall(
        TypedExpr::Kind::PrimCall, MaxPrim, SortTable::I64Sort,
        {TypedExpr::makeVar(0, SortTable::I64Sort),
         TypedExpr::makeVar(1, SortTable::I64Sort)});
    Score = G.declareFunction(std::move(Sc));

    // bag : i64 -> SetT hides ids inside a container column, forcing the
    // incremental rebuild onto its per-table sweep fallback.
    FunctionDecl B;
    B.Name = "bag";
    B.ArgSorts = {SortTable::I64Sort};
    B.OutSort = SetOfS;
    Bag = G.declareFunction(std::move(B));
  }
};

/// Drives both databases through the same random sequence and checks the
/// observable state after every rebuild.
class DifferentialDriver {
public:
  explicit DifferentialDriver(uint32_t Seed)
      : Incremental(/*FullRebuild=*/false), FullSweep(/*FullRebuild=*/true),
        Rng(Seed) {}

  void run(unsigned Steps) {
    for (unsigned Step = 0; Step < Steps; ++Step) {
      switch (pick(10)) {
      case 0:
      case 1:
        makeTerm();
        break;
      case 2:
        insertBinary();
        break;
      case 3:
        insertEdge();
        break;
      case 4:
        insertScore();
        break;
      case 5:
        insertBag();
        break;
      case 6:
      case 7:
        unite();
        break;
      case 8:
        pushOrPop();
        break;
      case 9:
        rebuildAndCompare();
        break;
      }
      ASSERT_FALSE(Incremental.G.failed()) << Incremental.G.errorMessage();
      ASSERT_FALSE(FullSweep.G.failed()) << FullSweep.G.errorMessage();
    }
    rebuildAndCompare();
  }

private:
  TestDb Incremental;
  TestDb FullSweep;
  std::mt19937 Rng;
  /// Ids minted so far (same numbering in both databases).
  std::vector<uint64_t> Ids;
  unsigned NextBagKey = 0;

  uint64_t pick(uint64_t Bound) {
    return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Rng);
  }

  uint64_t randomId() {
    if (Ids.empty())
      makeTerm();
    return Ids[pick(Ids.size())];
  }

  /// Applies \p Op to both databases.
  template <typename Fn> void both(Fn Op) {
    Op(Incremental);
    Op(FullSweep);
  }

  void makeTerm() {
    // A fresh id, plus f(id) so congruence cascades have fuel. getOrCreate
    // mints the f-output id in both databases in the same order.
    uint64_t Fresh = 0;
    both([&](TestDb &Db) {
      Value Id = Db.G.freshId(Db.S);
      Fresh = Id.Bits;
      Value Out;
      ASSERT_TRUE(Db.G.getOrCreate(Db.UnaryF, &Id, Out));
      Ids.push_back(Out.Bits); // same in both: same numbering
    });
    Ids.pop_back(); // pushed twice (once per database)
    Ids.push_back(Fresh);
  }

  void insertBinary() {
    uint64_t A = randomId(), B = randomId();
    both([&](TestDb &Db) {
      Value Keys[2] = {Value(Db.S, A), Value(Db.S, B)};
      Value Out;
      ASSERT_TRUE(Db.G.getOrCreate(Db.BinaryF, Keys, Out));
      Ids.push_back(Out.Bits);
    });
    Ids.pop_back();
  }

  void insertEdge() {
    uint64_t A = randomId(), B = randomId();
    both([&](TestDb &Db) {
      Value Keys[2] = {Value(Db.S, A), Value(Db.S, B)};
      ASSERT_TRUE(Db.G.setValue(Db.EdgeR, Keys, Db.G.mkUnit()));
    });
  }

  void insertScore() {
    uint64_t A = randomId();
    int64_t N = static_cast<int64_t>(pick(100));
    both([&](TestDb &Db) {
      Value Key(Db.S, A);
      ASSERT_TRUE(Db.G.setValue(Db.Score, &Key, Db.G.mkI64(N)));
    });
  }

  void insertBag() {
    uint64_t A = randomId(), B = randomId();
    unsigned Key = NextBagKey++; // unique key: no container merge conflicts
    both([&](TestDb &Db) {
      Value Set =
          Db.G.mkSet(Db.SetOfS, {Value(Db.S, A), Value(Db.S, B)});
      Value K = Db.G.mkI64(Key);
      ASSERT_TRUE(Db.G.setValue(Db.Bag, &K, Set));
    });
  }

  void unite() {
    uint64_t A = randomId(), B = randomId();
    both([&](TestDb &Db) {
      Db.G.unionValues(Value(Db.S, A), Value(Db.S, B));
    });
  }

  void pushOrPop() {
    bool Pop = !Incremental.Stack.empty() && pick(2) == 0;
    if (Pop) {
      both([&](TestDb &Db) {
        Db.G.restore(Db.Stack.back());
        Db.Stack.pop_back();
      });
      // Ids minted inside the popped context are gone; conservatively
      // rebuild the pool from the union-find size (ids are dense).
      size_t Known = Incremental.G.unionFind().size();
      Ids.erase(std::remove_if(Ids.begin(), Ids.end(),
                               [&](uint64_t Id) { return Id >= Known; }),
                Ids.end());
    } else if (Incremental.Stack.size() < 4) {
      both([&](TestDb &Db) { Db.Stack.push_back(Db.G.snapshot()); });
    }
  }

  void rebuildAndCompare() {
    both([&](TestDb &Db) { Db.G.rebuild(); });
    ASSERT_EQ(Incremental.G.liveTupleCount(), FullSweep.G.liveTupleCount());
    ASSERT_EQ(Incremental.G.unionFind().unionCount(),
              FullSweep.G.unionFind().unionCount());
    ASSERT_EQ(Incremental.G.liveContentHash(), FullSweep.G.liveContentHash());
    ASSERT_FALSE(Incremental.G.needsRebuild());
    ASSERT_FALSE(FullSweep.G.needsRebuild());
  }
};

} // namespace

TEST(RebuildTest, DifferentialRandomSequences) {
  for (uint32_t Seed : {1u, 7u, 42u, 1234u, 99991u}) {
    DifferentialDriver Driver(Seed);
    Driver.run(400);
    if (::testing::Test::HasFatalFailure())
      FAIL() << "diverged at seed " << Seed;
  }
}

TEST(RebuildTest, CongruenceCascade) {
  // f(a)=b, f(c)=d: uniting a~c must cascade to b~d through the occurrence
  // index alone (no full sweep at this size... the heuristic may still
  // sweep small tables; either way the result must be canonical).
  TestDb Db(/*FullRebuild=*/false);
  EGraph &G = Db.G;
  Value A = G.freshId(Db.S), C = G.freshId(Db.S);
  Value B, D;
  ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &A, B));
  ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &C, D));
  ASSERT_FALSE(G.valueEqual(B, D));
  G.unionValues(A, C);
  G.rebuild();
  EXPECT_TRUE(G.valueEqual(A, C));
  EXPECT_TRUE(G.valueEqual(B, D));
  // One row survives, stored fully canonically.
  EXPECT_EQ(G.functionSize(Db.UnaryF), 1u);
}

TEST(RebuildTest, PendingDirtyWorklistSurvivesPop) {
  // A union is pending (not yet rebuilt) when the context pops: the
  // restored worklist must still drive the post-pop rebuild.
  TestDb Db(/*FullRebuild=*/false);
  EGraph &G = Db.G;
  Value A = G.freshId(Db.S), C = G.freshId(Db.S);
  Value B, D;
  ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &A, B));
  ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &C, D));
  G.unionValues(A, C); // dirty, NOT rebuilt
  EGraph::Snapshot Snap = G.snapshot();

  // Inside the context: more churn, fully rebuilt (drains the worklist).
  Value E = G.freshId(Db.S);
  Value FE;
  ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &E, FE));
  G.unionValues(A, E);
  G.rebuild();

  G.restore(Snap);
  EXPECT_TRUE(G.needsRebuild());
  G.rebuild();
  EXPECT_TRUE(G.valueEqual(B, D));
  EXPECT_EQ(G.functionSize(Db.UnaryF), 1u);
}

TEST(RebuildTest, ContainerColumnsStillCanonicalize) {
  // Ids hidden inside a set-sort output: the occurrence index cannot see
  // them, so the incremental rebuild must fall back to sweeping the table.
  TestDb Db(/*FullRebuild=*/false);
  EGraph &G = Db.G;
  Value A = G.freshId(Db.S), B = G.freshId(Db.S);
  Value Set = G.mkSet(Db.SetOfS, {A, B});
  Value K = G.mkI64(0);
  ASSERT_TRUE(G.setValue(Db.Bag, &K, Set));
  G.unionValues(A, B);
  G.rebuild();
  Value Canonical = G.canonicalize(A);
  std::optional<Value> Stored = G.lookup(Db.Bag, &K);
  ASSERT_TRUE(Stored.has_value());
  const std::vector<Value> &Elements = G.valueToSet(*Stored);
  ASSERT_EQ(Elements.size(), 1u);
  EXPECT_EQ(Elements[0], Canonical);
}

TEST(RebuildTest, NoDirtyMeansNoPasses) {
  // Pure inserts never stale a row: the incremental rebuild must be a
  // no-op (0 passes), where the legacy sweep always paid a full pass.
  TestDb Db(/*FullRebuild=*/false);
  EGraph &G = Db.G;
  for (int I = 0; I < 100; ++I) {
    Value Id = G.freshId(Db.S);
    Value Out;
    ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &Id, Out));
  }
  EXPECT_EQ(G.rebuild(), 0u);
}

#if EGGLOG_FAILPOINTS_ENABLED

namespace {

/// Twelve ids, each under the unary function, fully rebuilt.
void populate(TestDb &Db, std::vector<Value> &Ids) {
  EGraph &G = Db.G;
  for (int I = 0; I < 12; ++I)
    Ids.push_back(G.freshId(Db.S));
  for (int I = 0; I < 12; ++I) {
    Value Out;
    ASSERT_TRUE(G.getOrCreate(Db.UnaryF, &Ids[I], Out));
    Ids.push_back(Out);
  }
  G.rebuild();
}

/// Pairwise unions whose rebuild cascades through the occurrence lists.
void churn(TestDb &Db, const std::vector<Value> &Ids) {
  for (int I = 0; I + 1 < 12; I += 2)
    Db.G.unionValues(Ids[I], Ids[I + 1]);
}

} // namespace

TEST(RebuildTest, AbortedRebuildRollsBackAndComposes) {
  // A rebuild aborted at its k-th row (swept across every k) must roll
  // back to the pre-transaction state — including the occurrence lists an
  // aborted pass may have consumed — and a clean retry must land on the
  // same content as a database that never faulted.
  struct Disarm {
    ~Disarm() { failpoints::disarm(); }
  } Guard;

  TestDb Faulty(/*FullRebuild=*/false), Ref(/*FullRebuild=*/false);
  std::vector<Value> FaultyIds, RefIds;
  populate(Faulty, FaultyIds);
  populate(Ref, RefIds);
  Faulty.G.governor().setCheckpointInterval(1);

  uint64_t Before = Faulty.G.liveContentHash();
  size_t Faults = 0;
  for (uint64_t K = 1;; K = K < 8 ? K + 1 : K + (K >> 1)) {
    EGraph::TxnMark Mark = Faulty.G.txnBegin();
    churn(Faulty, FaultyIds);
    bool Ok = true;
    failpoints::arm("rebuild.row", K);
    try {
      Faulty.G.rebuild();
    } catch (const InjectedFault &) {
      Ok = false;
    }
    failpoints::disarm();
    if (Ok) {
      Faulty.G.txnCommit();
      break;
    }
    ++Faults;
    Faulty.G.txnRollback(Mark);
    ASSERT_EQ(Faulty.G.liveContentHash(), Before) << "hit " << K;
    // The rolled-back database is fully canonical: rebuilding is a no-op.
    Faulty.G.rebuild();
    ASSERT_EQ(Faulty.G.liveContentHash(), Before) << "hit " << K;
  }
  EXPECT_GT(Faults, 0u);

  churn(Ref, RefIds);
  Ref.G.rebuild();
  EXPECT_EQ(Faulty.G.liveContentHash(), Ref.G.liveContentHash());
  EXPECT_EQ(Faulty.G.liveTupleCount(), Ref.G.liveTupleCount());
}

#endif // EGGLOG_FAILPOINTS_ENABLED
