//===- tests/egraph/RunnerTest.cpp - Classic EqSat runner tests ------------===//
//
// Part of egglog-cpp. Tests the classic equality-saturation loop,
// reproducing the Fig. 2 example of the paper on the egg-style baseline.
//
//===----------------------------------------------------------------------===//

#include "egraph/Runner.h"

#include <gtest/gtest.h>

using namespace egglog::classic;

TEST(RunnerTest, Fig2ShiftExample) {
  // (a * 2) / 2 should become equivalent to a with the Fig. 2 rules plus
  // cancellation.
  EGraphClassic G;
  ClassId A = G.addLeaf("a");
  ClassId Two = G.addLeaf("Num", 2);
  ClassId Mul = G.addCall("*", {A, Two});
  ClassId Root = G.addCall("/", {Mul, Two});

  Runner R(G);
  ASSERT_TRUE(R.addRewrite("mul-to-shift", "(* ?x (Num 2))", "(<< ?x (Num 1))"));
  ASSERT_TRUE(R.addRewrite("div-assoc", "(/ (* ?x ?y) ?z)", "(* ?x (/ ?y ?z))"));
  ASSERT_TRUE(R.addRewrite("div-self", "(/ (Num 2) (Num 2))", "(Num 1)"));
  ASSERT_TRUE(R.addRewrite("mul-one", "(* ?x (Num 1))", "?x"));

  RunnerOptions Opts;
  Opts.Iterations = 10;
  Opts.UseBackoff = false;
  RunnerReport Report = R.run(Opts);
  EXPECT_TRUE(Report.Saturated);
  EXPECT_EQ(G.find(Root), G.find(A)) << "(a*2)/2 must equal a";
}

TEST(RunnerTest, CommutativitySaturates) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x"), Y = G.addLeaf("y");
  ClassId Xy = G.addCall("+", {X, Y});
  ClassId Yx = G.addCall("+", {Y, X});
  Runner R(G);
  ASSERT_TRUE(R.addRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"));
  RunnerOptions Opts;
  Opts.Iterations = 5;
  Opts.UseBackoff = false;
  RunnerReport Report = R.run(Opts);
  EXPECT_TRUE(Report.Saturated);
  EXPECT_EQ(G.find(Xy), G.find(Yx));
}

TEST(RunnerTest, RejectsUnboundRhsVariable) {
  EGraphClassic G;
  Runner R(G);
  EXPECT_FALSE(R.addRewrite("bad", "(+ ?a ?a)", "(+ ?a ?b)"));
}

TEST(RunnerTest, NodeLimitStopsGrowth) {
  // Associativity alone grows the e-graph; the node limit must stop it.
  EGraphClassic G;
  ClassId X = G.addLeaf("x");
  ClassId T = X;
  for (int I = 0; I < 6; ++I)
    T = G.addCall("+", {T, X});
  Runner R(G);
  ASSERT_TRUE(R.addRewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"));
  ASSERT_TRUE(R.addRewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"));
  RunnerOptions Opts;
  Opts.Iterations = 100;
  Opts.UseBackoff = false;
  Opts.NodeLimit = 2000;
  RunnerReport Report = R.run(Opts);
  EXPECT_TRUE(Report.HitNodeLimit || Report.Saturated);
  EXPECT_FALSE(Report.Iterations.empty());
}

TEST(RunnerTest, BackoffBansOverMatchingRules) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x");
  ClassId T = X;
  for (int I = 0; I < 8; ++I)
    T = G.addCall("+", {T, X});
  Runner R(G);
  ASSERT_TRUE(R.addRewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"));
  ASSERT_TRUE(R.addRewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"));
  RunnerOptions Opts;
  Opts.Iterations = 12;
  Opts.UseBackoff = true;
  Opts.BackoffMatchLimit = 8; // tiny threshold to force bans
  Opts.BackoffBanLength = 2;
  RunnerReport Report = R.run(Opts);
  // With bans in place the run completes all iterations without exploding.
  EXPECT_EQ(Report.Iterations.size(), 12u);
}

TEST(RunnerTest, GrowthCurveIsMonotone) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x"), Y = G.addLeaf("y");
  G.addCall("*", {G.addCall("+", {X, Y}), X});
  Runner R(G);
  ASSERT_TRUE(R.addRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"));
  ASSERT_TRUE(R.addRewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)"));
  ASSERT_TRUE(
      R.addRewrite("distribute", "(* (+ ?a ?b) ?c)", "(+ (* ?a ?c) (* ?b ?c))"));
  RunnerOptions Opts;
  Opts.Iterations = 6;
  Opts.UseBackoff = false;
  RunnerReport Report = R.run(Opts);
  size_t Last = 0;
  for (const RunnerIteration &It : Report.Iterations) {
    EXPECT_GE(It.ENodes, Last) << "EqSat only adds knowledge";
    Last = It.ENodes;
  }
}
