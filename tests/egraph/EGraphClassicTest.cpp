//===- tests/egraph/EGraphClassicTest.cpp - Classic e-graph tests ----------===//
//
// Part of egglog-cpp. Tests for the egg-style baseline: hashconsing,
// congruence maintenance via deferred rebuilding, and e-matching.
//
//===----------------------------------------------------------------------===//

#include "egraph/EGraphClassic.h"
#include "egraph/Matcher.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace egglog::classic;

TEST(EGraphClassicTest, HashconsDeduplicates) {
  EGraphClassic G;
  ClassId A1 = G.addLeaf("Num", 1);
  ClassId A2 = G.addLeaf("Num", 1);
  EXPECT_EQ(A1, A2);
  ClassId B = G.addLeaf("Num", 2);
  EXPECT_NE(A1, B);
  ClassId Sum1 = G.addCall("+", {A1, B});
  ClassId Sum2 = G.addCall("+", {A1, B});
  EXPECT_EQ(Sum1, Sum2);
  EXPECT_EQ(G.numENodes(), 3u);
}

TEST(EGraphClassicTest, MergeUnionsClasses) {
  EGraphClassic G;
  ClassId A = G.addLeaf("a"), B = G.addLeaf("b");
  EXPECT_TRUE(G.merge(A, B));
  EXPECT_FALSE(G.merge(A, B));
  EXPECT_EQ(G.find(A), G.find(B));
}

TEST(EGraphClassicTest, RebuildRestoresCongruence) {
  // f(a), f(b); a == b must force f(a) == f(b).
  EGraphClassic G;
  ClassId A = G.addLeaf("a"), B = G.addLeaf("b");
  ClassId Fa = G.addCall("f", {A});
  ClassId Fb = G.addCall("f", {B});
  EXPECT_NE(G.find(Fa), G.find(Fb));
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.find(Fa), G.find(Fb));
}

TEST(EGraphClassicTest, RebuildCascadesUpward) {
  EGraphClassic G;
  ClassId A = G.addLeaf("a"), B = G.addLeaf("b");
  ClassId Fa = G.addCall("f", {A}), Fb = G.addCall("f", {B});
  ClassId GFa = G.addCall("g", {Fa}), GFb = G.addCall("g", {Fb});
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.find(GFa), G.find(GFb));
}

TEST(EGraphClassicTest, MatchSimplePattern) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x"), One = G.addLeaf("Num", 1);
  G.addCall("+", {X, One});
  G.rebuild();

  std::vector<std::string> Vars;
  auto P = parsePattern(G, "(+ ?a ?b)", Vars);
  ASSERT_TRUE(P.has_value());
  size_t Count = 0;
  matchPattern(G, *P, [&](ClassId, const Subst &S) {
    ++Count;
    EXPECT_EQ(G.find(S[0]), G.find(X));
    EXPECT_EQ(G.find(S[1]), G.find(One));
  });
  EXPECT_EQ(Count, 1u);
}

TEST(EGraphClassicTest, MatchModuloEquality) {
  // After merging x with (Num 1), the pattern (+ (Num 1) ?b) must match
  // the term (+ x y) as well.
  EGraphClassic G;
  ClassId X = G.addLeaf("x"), Y = G.addLeaf("y"), One = G.addLeaf("Num", 1);
  G.addCall("+", {X, Y});
  G.merge(X, One);
  G.rebuild();

  std::vector<std::string> Vars;
  auto P = parsePattern(G, "(+ (Num 1) ?b)", Vars);
  ASSERT_TRUE(P.has_value());
  size_t Count = 0;
  matchPattern(G, *P, [&](ClassId, const Subst &S) {
    ++Count;
    EXPECT_EQ(G.find(S[0]), G.find(Y));
  });
  EXPECT_EQ(Count, 1u);
}

TEST(EGraphClassicTest, RepeatedPatternVariable) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x"), Y = G.addLeaf("y");
  G.addCall("+", {X, X});
  G.addCall("+", {X, Y});
  G.rebuild();

  std::vector<std::string> Vars;
  auto P = parsePattern(G, "(+ ?a ?a)", Vars);
  ASSERT_TRUE(P.has_value());
  size_t Count = 0;
  matchPattern(G, *P, [&](ClassId, const Subst &) { ++Count; });
  EXPECT_EQ(Count, 1u) << "(+ ?a ?a) must only match (+ x x)";
}

TEST(EGraphClassicTest, InstantiateBuildsTerms) {
  EGraphClassic G;
  ClassId X = G.addLeaf("x");
  std::vector<std::string> Vars;
  auto P = parsePattern(G, "(+ ?a (Num 1))", Vars);
  ASSERT_TRUE(P.has_value());
  Subst S = {X};
  ClassId Result = instantiate(G, *P, S);
  std::vector<std::string> Vars2;
  auto Check = parsePattern(G, "(+ x (Num 1))", Vars2);
  size_t Count = 0;
  matchPattern(G, *Check, [&](ClassId Root, const Subst &) {
    EXPECT_EQ(G.find(Root), G.find(Result));
    ++Count;
  });
  EXPECT_EQ(Count, 1u);
}

/// Property test: random merges followed by rebuild leave the e-graph with
/// (1) no two canonical nodes mapping to different classes and (2) parents
/// congruent.
class ClassicPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClassicPropertyTest, CongruenceInvariantAfterRandomUnions) {
  std::mt19937 Rng(GetParam());
  EGraphClassic G;
  std::vector<ClassId> Pool;
  for (int I = 0; I < 10; ++I)
    Pool.push_back(G.addLeaf("leaf", I));
  std::uniform_int_distribution<size_t> Pick(0, 1000);
  for (int Step = 0; Step < 120; ++Step) {
    size_t A = Pick(Rng) % Pool.size(), B = Pick(Rng) % Pool.size();
    switch (Pick(Rng) % 3) {
    case 0:
      Pool.push_back(G.addCall("f", {Pool[A]}));
      break;
    case 1:
      Pool.push_back(G.addCall("g", {Pool[A], Pool[B]}));
      break;
    case 2:
      G.merge(Pool[A], Pool[B]);
      break;
    }
  }
  G.rebuild();

  // Every node in every canonical class, re-canonicalized, must map back
  // to that class: no congruence violations survive.
  for (ClassId Id : G.canonicalClasses()) {
    for (const ENode &Node : G.eclass(Id).Nodes) {
      ENode Canon = Node;
      for (ClassId &Child : Canon.Children)
        Child = G.find(Child);
      // Re-adding must not create anything new and must land in Id.
      ClassId Landed = G.add(Canon);
      EXPECT_EQ(G.find(Landed), G.find(Id));
    }
  }
  // Congruence: equal canonical nodes in different classes are impossible;
  // verify via a fresh map.
  std::set<std::pair<std::vector<ClassId>, std::pair<uint32_t, int64_t>>>
      Seen;
  for (ClassId Id : G.canonicalClasses()) {
    for (const ENode &Node : G.eclass(Id).Nodes) {
      std::vector<ClassId> Kids;
      for (ClassId C : Node.Children)
        Kids.push_back(G.find(C));
      auto Key = std::make_pair(Kids, std::make_pair(Node.Op, Node.Payload));
      // The same canonical node must not appear in two distinct classes.
      // (It may appear twice in one class before dedup; classes dedupe.)
      EXPECT_TRUE(Seen.insert(Key).second)
          << "canonical node appears in two classes";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassicPropertyTest,
                         ::testing::Values(3u, 5u, 8u, 13u, 21u));
