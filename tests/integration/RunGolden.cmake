# RunGolden.cmake — golden-file test driver for egglog programs.
#
# Runs TOOL (the egglog_run binary) on PROGRAM, captures stdout to OUTPUT,
# and compares it byte-for-byte against the checked-in EXPECTED file.
# Invoked by the golden_* CTest entries registered in the top-level
# CMakeLists.txt. To regenerate an expectation after an intentional change:
#
#   ./build/egglog_run tests/integration/programs/X.egg \
#       > tests/integration/programs/X.expected

foreach(var TOOL PROGRAM EXPECTED OUTPUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunGolden.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${TOOL} ${PROGRAM}
  OUTPUT_FILE ${OUTPUT}
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "egglog_run failed (exit ${run_result}) on ${PROGRAM}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUTPUT} ${EXPECTED}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  file(READ ${EXPECTED} expected_text)
  file(READ ${OUTPUT} actual_text)
  message(FATAL_ERROR "golden mismatch for ${PROGRAM}\n"
                      "--- expected (${EXPECTED}):\n${expected_text}"
                      "--- actual (${OUTPUT}):\n${actual_text}")
endif()
