# RunLintGolden.cmake — golden-file driver for lint diagnostics.
#
# Runs TOOL (egglog_lint or egglog_run) with TOOL_ARGS on PROGRAM from the
# program's own directory (bare filename, so diagnostic labels stay
# relative), captures stderr to OUTPUT, and compares it byte-for-byte
# against EXPECTED. The exit code must equal EXPECTED_EXIT when given;
# otherwise 1 when EXPECTED is non-empty (egglog_lint --Werror fixtures)
# and 0 when it is empty (clean fixtures). To regenerate an expectation
# after an intentional change:
#
#   (cd tests/integration/lint && \
#    ../../../build/egglog_lint --Werror X.egg 2> X.expected)

foreach(var TOOL PROGRAM EXPECTED OUTPUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunLintGolden.cmake requires -D${var}=...")
  endif()
endforeach()

get_filename_component(program_dir ${PROGRAM} DIRECTORY)
get_filename_component(program_name ${PROGRAM} NAME)

# TOOL_ARGS uses "|" as its separator: a ";" would be list-split (or need
# escaping that survives two command lines) before reaching this script.
set(tool_args "")
if(DEFINED TOOL_ARGS)
  string(REPLACE "|" ";" tool_args "${TOOL_ARGS}")
endif()

execute_process(
  COMMAND ${TOOL} ${tool_args} ${program_name}
  WORKING_DIRECTORY ${program_dir}
  OUTPUT_QUIET
  ERROR_FILE ${OUTPUT}
  RESULT_VARIABLE run_result)

if(NOT DEFINED EXPECTED_EXIT)
  file(READ ${EXPECTED} expected_text)
  if(expected_text STREQUAL "")
    set(EXPECTED_EXIT 0)
  else()
    set(EXPECTED_EXIT 1)
  endif()
endif()
if(NOT run_result EQUAL ${EXPECTED_EXIT})
  file(READ ${OUTPUT} actual_text)
  message(FATAL_ERROR "lint driver exited ${run_result} (expected "
                      "${EXPECTED_EXIT}) on ${PROGRAM}\n"
                      "--- stderr:\n${actual_text}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUTPUT} ${EXPECTED}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  file(READ ${EXPECTED} expected_text)
  file(READ ${OUTPUT} actual_text)
  message(FATAL_ERROR "lint golden mismatch for ${PROGRAM}\n"
                      "--- expected (${EXPECTED}):\n${expected_text}"
                      "--- actual (${OUTPUT}):\n${actual_text}")
endif()
