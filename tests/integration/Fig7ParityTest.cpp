//===- tests/integration/Fig7ParityTest.cpp - egg vs egglog parity ---------===//
//
// Part of egglog-cpp. The Fig. 7 setup of the paper asserts that "egglogNI
// and egg produce the same e-graph in each iteration" when both run the
// analysis-free math rule subset. This integration test checks that claim
// across the two independently implemented engines: the classic e-graph
// with backtracking e-matching and the egglog engine with relational
// matching. It also checks that full egglog explores at least as much.
//
//===----------------------------------------------------------------------===//

#include "MathSuite.h"

#include "core/Frontend.h"
#include "egraph/Runner.h"

#include <gtest/gtest.h>

using namespace egglog;

namespace {

/// e-nodes on the egglog side: live tuples of the Math constructors.
size_t egglogENodes(Frontend &F) {
  size_t Total = 0;
  for (const char *Name : {"Num", "Sym", "Add", "Sub", "Mul", "Pow"}) {
    FunctionId Id;
    if (F.graph().lookupFunctionName(Name, Id))
      Total += F.graph().functionSize(Id);
  }
  return Total;
}

std::vector<size_t> runEggCurve(unsigned Iterations) {
  classic::EGraphClassic G;
  classic::Runner R(G);
  for (const bench::MathRule &Rule : bench::mathRules())
    EXPECT_TRUE(R.addRewrite(Rule.Name, Rule.Lhs, Rule.Rhs)) << Rule.Name;
  for (const char *Term : bench::mathSeedTerms()) {
    std::vector<std::string> Vars;
    auto P = classic::parsePattern(G, Term, Vars);
    EXPECT_TRUE(P.has_value()) << Term;
    classic::Subst Empty;
    classic::instantiate(G, *P, Empty);
  }
  classic::RunnerOptions Opts;
  Opts.Iterations = Iterations;
  // Schedulers interleave bans differently across engines; parity is about
  // the underlying saturation, so run unscheduled.
  Opts.UseBackoff = false;
  classic::RunnerReport Report = R.run(Opts);
  std::vector<size_t> Curve;
  for (const classic::RunnerIteration &It : Report.Iterations)
    Curve.push_back(It.ENodes);
  return Curve;
}

std::vector<size_t> runEgglogCurve(bool SemiNaive, unsigned Iterations) {
  Frontend F;
  EXPECT_TRUE(F.execute(bench::mathRulesEgglog())) << F.error();
  EXPECT_TRUE(F.execute(bench::mathSeedsEgglog())) << F.error();
  std::vector<size_t> Curve;
  RunOptions Opts;
  Opts.Iterations = 1;
  Opts.SemiNaive = SemiNaive;
  for (unsigned Iter = 0; Iter < Iterations; ++Iter) {
    RunReport Report = F.engine().run(Opts);
    Curve.push_back(egglogENodes(F));
    if (Report.Saturated)
      break;
  }
  return Curve;
}

} // namespace

TEST(Fig7ParityTest, EggAndEgglogNIGrowTheSameEGraph) {
  constexpr unsigned Iterations = 5; // growth is super-exponential beyond
  std::vector<size_t> Egg = runEggCurve(Iterations);
  std::vector<size_t> NI = runEgglogCurve(/*SemiNaive=*/false, Iterations);
  ASSERT_GE(Egg.size(), 4u);
  ASSERT_GE(NI.size(), 4u);
  for (size_t I = 0; I < std::min(Egg.size(), NI.size()); ++I) {
    // Identical rules and seeds: e-node counts agree exactly in early
    // iterations. Later counts can drift by a fraction of a percent
    // because the engines interleave within-iteration congruence
    // discovery differently (rhs instantiation sees merges from earlier
    // matches of the same iteration in a different order).
    if (I < 4) {
      EXPECT_EQ(Egg[I], NI[I]) << "iteration " << I;
    } else {
      double Ratio = static_cast<double>(Egg[I]) / static_cast<double>(NI[I]);
      EXPECT_NEAR(Ratio, 1.0, 0.005) << "iteration " << I;
    }
  }
}

TEST(Fig7ParityTest, SemiNaiveExploresAtLeastAsMuch) {
  constexpr unsigned Iterations = 5;
  std::vector<size_t> NI = runEgglogCurve(/*SemiNaive=*/false, Iterations);
  std::vector<size_t> Full = runEgglogCurve(/*SemiNaive=*/true, Iterations);
  ASSERT_EQ(NI.size(), Full.size());
  for (size_t I = 0; I < NI.size(); ++I)
    EXPECT_GE(Full[I], NI[I])
        << "semi-naive evaluation must not lose matches (iteration " << I
        << ")";
}
