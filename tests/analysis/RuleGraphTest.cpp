//===- tests/analysis/RuleGraphTest.cpp - dependency graph tests ----------===//
//
// Part of egglog-cpp. DepGraph SCC/stratification on hand-built graphs,
// and RuleFacts extraction (reads/writes/mints, union-root exclusion)
// through the Frontend.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleGraph.h"
#include "core/Frontend.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace egglog;

namespace {

TEST(DepGraphTest, SccsAndStrataOnMixedGraph) {
  // 0 <-> 1 (two-node cycle), 1 -> 2 (self-loop), 2 -> 3 -> 4 (chain),
  // 5 isolated.
  DepGraph G(6);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  G.addEdge(2, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.analyze();

  EXPECT_EQ(G.numNodes(), 6u);
  EXPECT_EQ(G.numSccs(), 5u);
  EXPECT_TRUE(G.sameScc(0, 1));
  EXPECT_FALSE(G.sameScc(1, 2));
  EXPECT_FALSE(G.sameScc(3, 4));
  EXPECT_EQ(G.sccMembers(G.sccOf(0)).size(), 2u);

  // Cyclic: the two-node component and the self-loop; the chain nodes and
  // the isolated node are acyclic singletons.
  EXPECT_TRUE(G.sccIsCyclic(G.sccOf(0)));
  EXPECT_TRUE(G.sccIsCyclic(G.sccOf(2)));
  EXPECT_FALSE(G.sccIsCyclic(G.sccOf(3)));
  EXPECT_FALSE(G.sccIsCyclic(G.sccOf(4)));
  EXPECT_FALSE(G.sccIsCyclic(G.sccOf(5)));

  // Longest-path layering of the condensation.
  EXPECT_EQ(G.stratumOf(0), 0u);
  EXPECT_EQ(G.stratumOf(1), 0u);
  EXPECT_EQ(G.stratumOf(2), 1u);
  EXPECT_EQ(G.stratumOf(3), 2u);
  EXPECT_EQ(G.stratumOf(4), 3u);
  EXPECT_EQ(G.stratumOf(5), 0u);
  EXPECT_EQ(G.numStrata(), 4u);
}

TEST(DepGraphTest, DiamondIsAcyclicWithThreeStrata) {
  DepGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  G.analyze();

  EXPECT_EQ(G.numSccs(), 4u);
  for (uint32_t N = 0; N < 4; ++N)
    EXPECT_FALSE(G.sccIsCyclic(G.sccOf(N))) << "node " << N;
  EXPECT_EQ(G.stratumOf(0), 0u);
  EXPECT_EQ(G.stratumOf(1), 1u);
  EXPECT_EQ(G.stratumOf(2), 1u);
  EXPECT_EQ(G.stratumOf(3), 2u);
  EXPECT_EQ(G.numStrata(), 3u);
}

TEST(DepGraphTest, DuplicateEdgesAndEmptyGraph) {
  DepGraph Empty;
  Empty.analyze();
  EXPECT_EQ(Empty.numNodes(), 0u);
  EXPECT_EQ(Empty.numSccs(), 0u);
  EXPECT_EQ(Empty.numStrata(), 0u);

  DepGraph G(2);
  G.addEdge(0, 1);
  G.addEdge(0, 1);
  G.addEdge(0, 1);
  G.analyze();
  EXPECT_EQ(G.numSccs(), 2u);
  EXPECT_EQ(G.stratumOf(1), 1u);
}

//===--------------------------------------------------------------------===//
// RuleFacts through the Frontend
//===--------------------------------------------------------------------===//

class RuleFactsTest : public ::testing::Test {
protected:
  Frontend F;

  void load(const std::string &Source) {
    F.setAnalysisMode(true);
    ASSERT_TRUE(F.execute(Source)) << F.error();
  }

  FunctionId fid(const char *Name) {
    FunctionId Id = 0;
    EXPECT_TRUE(F.graph().lookupFunctionName(Name, Id)) << Name;
    return Id;
  }

  static bool contains(const std::vector<FunctionId> &Set, FunctionId Id) {
    return std::find(Set.begin(), Set.end(), Id) != Set.end();
  }
};

TEST_F(RuleFactsTest, ReadsWritesAndMints) {
  load("(datatype N (Z) (S N))\n"
       "(relation r (i64))\n"
       "(rule ((S m) (r x)) ((S (S m))))\n");
  RuleGraph RG = F.ruleGraph();
  ASSERT_EQ(RG.Rules.size(), 1u);
  const RuleFacts &Facts = RG.Rules[0];

  EXPECT_TRUE(contains(Facts.Reads, fid("S")));
  EXPECT_TRUE(contains(Facts.Reads, fid("r")));
  EXPECT_FALSE(contains(Facts.Writes, fid("r")));
  EXPECT_TRUE(contains(Facts.Writes, fid("S")));
  // (S (S m)) in an eval action mints: id-sorted output, no :default,
  // one key column, and not a captured union root.
  EXPECT_TRUE(contains(Facts.Mints, fid("S")));
}

TEST_F(RuleFactsTest, UnionRootIsWrittenButNotMinted) {
  load("(datatype N (Z) (S N))\n"
       "(rule ((= e (S m))) ((union e (S m))))\n");
  RuleGraph RG = F.ruleGraph();
  ASSERT_EQ(RG.Rules.size(), 1u);
  const RuleFacts &Facts = RG.Rules[0];
  // The root of a union operand is matched into the equivalence class, not
  // allocated fresh — it must count as a write but not as a mint.
  EXPECT_TRUE(contains(Facts.Writes, fid("S")));
  EXPECT_TRUE(Facts.Mints.empty());
}

TEST_F(RuleFactsTest, NestedCallUnderUnionRootStillMints) {
  load("(datatype N (Z) (S N))\n"
       "(rule ((= e (S m))) ((union e (S (S m)))))\n");
  RuleGraph RG = F.ruleGraph();
  ASSERT_EQ(RG.Rules.size(), 1u);
  // The outer (S ...) is the captured root, but the inner (S m) is a fresh
  // subterm the action allocates each firing.
  EXPECT_TRUE(contains(RG.Rules[0].Mints, fid("S")));
}

TEST_F(RuleFactsTest, NullaryAndDefaultedFunctionsDoNotMint) {
  load("(datatype N (Z) (S N))\n"
       "(function counter () i64 :default 0)\n"
       "(rule ((S m)) ((set (counter) 1) (Z)))\n");
  RuleGraph RG = F.ruleGraph();
  ASSERT_EQ(RG.Rules.size(), 1u);
  const RuleFacts &Facts = RG.Rules[0];
  // counter: primitive output, no keys; Z: no key columns. Neither can
  // allocate unboundedly many fresh ids.
  EXPECT_TRUE(Facts.Mints.empty());
  EXPECT_TRUE(contains(Facts.Writes, fid("counter")));
  EXPECT_TRUE(contains(Facts.Writes, fid("Z")));
}

TEST_F(RuleFactsTest, TransitiveClosureStratifiesBelowItsInput) {
  load("(relation edge (i64 i64))\n"
       "(relation path (i64 i64))\n"
       "(rule ((edge x y)) ((path x y)))\n"
       "(rule ((path x y) (path y z)) ((path x z)))\n");
  RuleGraph RG = F.ruleGraph();
  FunctionId Edge = fid("edge"), Path = fid("path");

  // path depends on itself (transitivity) and on edge; edge on nothing.
  EXPECT_TRUE(RG.Funcs.sccIsCyclic(RG.Funcs.sccOf(Path)));
  EXPECT_FALSE(RG.Funcs.sccIsCyclic(RG.Funcs.sccOf(Edge)));
  EXPECT_FALSE(RG.Funcs.sameScc(Edge, Path));
  EXPECT_EQ(RG.Funcs.stratumOf(Edge), 0u);
  EXPECT_EQ(RG.Funcs.stratumOf(Path), 1u);
}

TEST_F(RuleFactsTest, SlotUsesCountQueryAndActionOccurrences) {
  load("(datatype Math (Num i64) (Add Math Math))\n"
       "(rule ((= e (Add a b)))\n"
       "      ((let s (Add b a))\n"
       "       (union e (Add a b))))\n");
  RuleGraph RG = F.ruleGraph();
  ASSERT_EQ(RG.Rules.size(), 1u);
  const Rule &R = F.engine().rule(RG.Rules[0].RuleIndex);
  const RuleFacts &Facts = RG.Rules[0];

  // Find the slot for each surface name via Rule::VarNames.
  auto slotOf = [&](const std::string &Name) -> uint32_t {
    for (uint32_t I = 0; I < R.VarNames.size(); ++I)
      if (R.VarNames[I] == Name)
        return I;
    ADD_FAILURE() << "no slot named " << Name;
    return 0;
  };
  // 'a' and 'b' are used twice in actions; 'e' once; the let 's' never.
  EXPECT_GE(Facts.SlotUses[slotOf("a")], 2u);
  EXPECT_GE(Facts.SlotUses[slotOf("b")], 2u);
  EXPECT_GE(Facts.SlotUses[slotOf("e")], 1u);
  EXPECT_EQ(Facts.SlotUses[slotOf("s")], 0u);
}

} // namespace
