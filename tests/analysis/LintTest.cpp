//===- tests/analysis/LintTest.cpp - lint diagnostics tests ---------------===//
//
// Part of egglog-cpp. One test block per diagnostic kind (positive and
// negative cases), the (check-program) command surface, and the
// zero-false-positive guarantees on the shipped Herbie and points-to
// programs.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "herbie/Rules.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace egglog;

namespace {

std::vector<LintDiagnostic> lintOf(const std::string &Source) {
  Frontend F;
  F.setAnalysisMode(true);
  EXPECT_TRUE(F.execute(Source)) << F.error();
  return F.lintProgram();
}

size_t countCheck(const std::vector<LintDiagnostic> &Diags,
                  const std::string &Check) {
  size_t N = 0;
  for (const LintDiagnostic &D : Diags)
    N += D.Check == Check;
  return N;
}

std::string renderAll(const std::vector<LintDiagnostic> &Diags) {
  std::string Out;
  for (const LintDiagnostic &D : Diags)
    Out += D.render() + "\n";
  return Out;
}

//===--------------------------------------------------------------------===//
// non-termination
//===--------------------------------------------------------------------===//

const char *GrowingRule = "(datatype N (Z) (S N))\n"
                          "(S (Z))\n"
                          "(rule ((S m)) ((S (S m))))\n";

TEST(LintNonTerminationTest, UnguardedRunOverGrowingRuleWarns) {
  auto Diags = lintOf(std::string(GrowingRule) + "(run)\n");
  ASSERT_EQ(countCheck(Diags, "non-termination"), 1u) << renderAll(Diags);
  EXPECT_EQ(Diags[0].Line, 3u);
  EXPECT_NE(Diags[0].Message.find("mints fresh 'S'"), std::string::npos);
}

TEST(LintNonTerminationTest, CountedRunIsGuarded) {
  auto Diags = lintOf(std::string(GrowingRule) + "(run 10)\n");
  EXPECT_EQ(countCheck(Diags, "non-termination"), 0u) << renderAll(Diags);
}

TEST(LintNonTerminationTest, UntilGoalIsGuarded) {
  auto Diags = lintOf(std::string(GrowingRule) +
                      "(run :until ((S (S (Z)))))\n");
  EXPECT_EQ(countCheck(Diags, "non-termination"), 0u) << renderAll(Diags);
}

TEST(LintNonTerminationTest, ScheduleLeavesAreGuarded) {
  // Every (run-schedule ...) leaf is bounded or saturate-wrapped; only the
  // top-level bare (run) expresses run-to-saturation intent.
  auto Diags = lintOf(std::string(GrowingRule) +
                      "(run-schedule (repeat 3 (run 1)))\n");
  EXPECT_EQ(countCheck(Diags, "non-termination"), 0u) << renderAll(Diags);
}

TEST(LintNonTerminationTest, MintOutsideOwnSccIsQuiet) {
  // The rule mints S terms but reads only the base relation r, which is in
  // a different SCC — each r row produces finitely many S terms.
  auto Diags = lintOf("(datatype N (Z) (S N))\n"
                      "(relation r (i64))\n"
                      "(r 1)\n"
                      "(rule ((r x)) ((S (Z))))\n"
                      "(run)\n");
  EXPECT_EQ(countCheck(Diags, "non-termination"), 0u) << renderAll(Diags);
}

//===--------------------------------------------------------------------===//
// dead-rule
//===--------------------------------------------------------------------===//

TEST(LintDeadRuleTest, UnproducibleReadWarns) {
  auto Diags = lintOf("(relation edge (i64 i64))\n"
                      "(relation ghost (i64))\n"
                      "(edge 1 2)\n"
                      "(rule ((ghost x) (edge x y)) ((edge y x)))\n"
                      "(run 5)\n");
  ASSERT_EQ(countCheck(Diags, "dead-rule"), 1u) << renderAll(Diags);
  EXPECT_NE(Diags[0].Message.find("'ghost'"), std::string::npos);
}

TEST(LintDeadRuleTest, ChainedProducersAreLive) {
  // b is produced by a rule that itself only becomes fireable once the
  // first rule runs — the fixpoint must chase producers transitively.
  auto Diags = lintOf("(relation a (i64))\n"
                      "(relation b (i64))\n"
                      "(relation c (i64))\n"
                      "(a 1)\n"
                      "(rule ((a x)) ((b x)))\n"
                      "(rule ((b x)) ((c x)))\n"
                      "(rule ((c x)) ((a x)))\n"
                      "(run 5)\n");
  EXPECT_EQ(countCheck(Diags, "dead-rule"), 0u) << renderAll(Diags);
}

TEST(LintDeadRuleTest, LibraryFileWithoutRunIsQuiet) {
  // Rules-only library files expect a driver to add facts and a schedule;
  // claiming their rules dead would be a false positive.
  auto Diags = lintOf("(relation edge (i64 i64))\n"
                      "(relation path (i64 i64))\n"
                      "(rule ((edge x y)) ((path x y)))\n");
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

//===--------------------------------------------------------------------===//
// unused-ruleset / shadowed-rule
//===--------------------------------------------------------------------===//

TEST(LintReachabilityTest, UnusedRulesetWarnsAtItsDeclaration) {
  auto Diags = lintOf("(relation r (i64))\n"
                      "(ruleset build)\n"
                      "(ruleset cleanup)\n"
                      "(rule ((r x)) ((r x)) :ruleset cleanup)\n"
                      "(r 1)\n"
                      "(run build 5)\n");
  ASSERT_EQ(countCheck(Diags, "unused-ruleset"), 1u) << renderAll(Diags);
  EXPECT_NE(Diags[0].Message.find("'cleanup'"), std::string::npos);
  EXPECT_EQ(Diags[0].Line, 3u);
}

TEST(LintReachabilityTest, DefaultRulesetRuleShadowedBySchedule) {
  auto Diags = lintOf("(relation r (i64))\n"
                      "(ruleset build)\n"
                      "(rule ((r x)) ((r x)))\n"
                      "(r 1)\n"
                      "(run build 5)\n");
  EXPECT_EQ(countCheck(Diags, "shadowed-rule"), 1u) << renderAll(Diags);
}

TEST(LintReachabilityTest, BareRunReachesDefaultRuleset) {
  auto Diags = lintOf("(relation r (i64))\n"
                      "(rule ((r x)) ((r x)))\n"
                      "(r 1)\n"
                      "(run 5)\n");
  EXPECT_EQ(countCheck(Diags, "shadowed-rule"), 0u) << renderAll(Diags);
}

TEST(LintReachabilityTest, ScheduleSelectionCountsAsRun) {
  auto Diags = lintOf("(relation r (i64))\n"
                      "(ruleset build)\n"
                      "(rule ((r x)) ((r x)) :ruleset build)\n"
                      "(r 1)\n"
                      "(run-schedule (saturate build))\n");
  EXPECT_EQ(countCheck(Diags, "unused-ruleset"), 0u) << renderAll(Diags);
}

//===--------------------------------------------------------------------===//
// unused-variable
//===--------------------------------------------------------------------===//

TEST(LintUnusedVariableTest, WriteOnlyLetWarns) {
  auto Diags = lintOf("(datatype Math (Num i64) (Add Math Math))\n"
                      "(Add (Num 1) (Num 2))\n"
                      "(rule ((= e (Add a b)))\n"
                      "      ((let s (Add b a)) (union e (Add a b))))\n"
                      "(run 2)\n");
  ASSERT_EQ(countCheck(Diags, "unused-variable"), 1u) << renderAll(Diags);
  EXPECT_NE(Diags[0].Message.find("'s'"), std::string::npos);
}

TEST(LintUnusedVariableTest, UnderscorePrefixIsExempt) {
  auto Diags = lintOf("(datatype Math (Num i64) (Add Math Math))\n"
                      "(Add (Num 1) (Num 2))\n"
                      "(rule ((= e (Add a b)))\n"
                      "      ((let _s (Add b a)) (union e (Add a b))))\n"
                      "(run 2)\n");
  EXPECT_EQ(countCheck(Diags, "unused-variable"), 0u) << renderAll(Diags);
}

TEST(LintUnusedVariableTest, UsedLetIsQuiet) {
  auto Diags = lintOf("(datatype Math (Num i64) (Add Math Math))\n"
                      "(Add (Num 1) (Num 2))\n"
                      "(rule ((= e (Add a b)))\n"
                      "      ((let s (Add b a)) (union e s)))\n"
                      "(run 2)\n");
  EXPECT_EQ(countCheck(Diags, "unused-variable"), 0u) << renderAll(Diags);
}

//===--------------------------------------------------------------------===//
// merge-not-idempotent
//===--------------------------------------------------------------------===//

TEST(LintMergeTest, AdditiveMergeReadByRuleWarns) {
  auto Diags = lintOf("(datatype M (Num i64))\n"
                      "(function counter (M) i64 :merge (+ old new))\n"
                      "(set (counter (Num 1)) 0)\n"
                      "(rule ((= c (counter e))) ((set (counter e) c)))\n"
                      "(run 2)\n");
  ASSERT_EQ(countCheck(Diags, "merge-not-idempotent"), 1u)
      << renderAll(Diags);
  EXPECT_NE(Diags[0].Message.find("'counter'"), std::string::npos);
}

TEST(LintMergeTest, MinMaxMergesAreIdempotentShaped) {
  auto Diags = lintOf("(datatype M (Num i64))\n"
                      "(function lo (M) i64 :merge (max old new))\n"
                      "(function hi (M) i64 :merge (min old new))\n"
                      "(set (lo (Num 1)) 0)\n"
                      "(set (hi (Num 1)) 9)\n"
                      "(rule ((= a (lo e)) (= b (hi e))) ((set (lo e) a)))\n"
                      "(run 2)\n");
  EXPECT_EQ(countCheck(Diags, "merge-not-idempotent"), 0u)
      << renderAll(Diags);
}

TEST(LintMergeTest, UnreadNonIdempotentMergeIsQuiet) {
  // An accumulator nothing reads back is a legitimate aggregation idiom.
  auto Diags = lintOf("(datatype M (Num i64))\n"
                      "(relation r (i64))\n"
                      "(function total (M) i64 :merge (+ old new))\n"
                      "(r 1)\n"
                      "(rule ((r x)) ((set (total (Num x)) x)))\n"
                      "(run 2)\n");
  EXPECT_EQ(countCheck(Diags, "merge-not-idempotent"), 0u)
      << renderAll(Diags);
}

//===--------------------------------------------------------------------===//
// (check-program) command
//===--------------------------------------------------------------------===//

TEST(CheckProgramTest, ReportsDiagnosticsAsOutputLines) {
  Frontend F;
  ASSERT_TRUE(F.execute("(relation r (i64))\n"
                        "(ruleset build)\n"
                        "(ruleset unused)\n"
                        "(r 1)\n"
                        "(run build 1)\n"
                        "(check-program)\n"))
      << F.error();
  ASSERT_EQ(F.outputs().size(), 1u);
  EXPECT_NE(F.outputs()[0].find("warning:"), std::string::npos);
  EXPECT_NE(F.outputs()[0].find("[unused-ruleset]"), std::string::npos);
}

TEST(CheckProgramTest, CleanProgramPrintsNothing) {
  Frontend F;
  ASSERT_TRUE(F.execute("(relation r (i64))\n"
                        "(r 1)\n"
                        "(rule ((r x)) ((r x)))\n"
                        "(run 1)\n"
                        "(check-program)\n"))
      << F.error();
  EXPECT_TRUE(F.outputs().empty());
}

TEST(CheckProgramTest, RejectsOperands) {
  Frontend F;
  EXPECT_FALSE(F.execute("(check-program 1)"));
  EXPECT_NE(F.error().find("usage: (check-program)"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Shipped programs must be diagnostic-free
//===--------------------------------------------------------------------===//

TEST(LintShippedProgramsTest, HerbieSoundProgramIsClean) {
  Frontend F;
  F.setAnalysisMode(true);
  ASSERT_TRUE(F.execute(herbie::herbieProgramText(true))) << F.error();
  // Drive it the way src/herbie/Herbie.cpp does: a root covering every
  // constructor, interval seeds for the variables, the phased schedule.
  ASSERT_TRUE(F.execute(
      "(define root (MFma (MSqrt (MVar \"x\"))\n"
      "                   (MCbrt (MFabs (MNeg (MVar \"y\"))))\n"
      "                   (MDiv (MSub (MMul (MVar \"x\") (MVar \"y\"))\n"
      "                               (MNum (rational 1 2)))\n"
      "                         (MAdd (MVar \"x\")\n"
      "                               (MNum (rational 2 1))))))\n"
      "(set (lo (MVar \"x\")) (rational 1 4))\n"
      "(set (hi (MVar \"x\")) (rational 4 1))\n"
      "(set (lo (MVar \"y\")) (rational 1 4))\n"
      "(set (hi (MVar \"y\")) (rational 4 1))\n"))
      << F.error();
  ASSERT_TRUE(F.execute(herbie::herbiePhasedSchedule(3))) << F.error();
  auto Diags = F.lintProgram();
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

TEST(LintShippedProgramsTest, HerbieUnsoundProgramIsClean) {
  Frontend F;
  F.setAnalysisMode(true);
  ASSERT_TRUE(F.execute(herbie::herbieProgramText(false))) << F.error();
  // Same constructor-covering root as the sound test: with a sparse root
  // the dead-rule lint correctly reports rules that cannot fire on that
  // workload, which is not what this test is about.
  ASSERT_TRUE(F.execute(
      "(define root (MFma (MSqrt (MVar \"x\"))\n"
      "                   (MCbrt (MFabs (MNeg (MVar \"y\"))))\n"
      "                   (MDiv (MSub (MMul (MVar \"x\") (MVar \"y\"))\n"
      "                               (MNum (rational 1 2)))\n"
      "                         (MAdd (MVar \"x\")\n"
      "                               (MNum (rational 2 1))))))\n"))
      << F.error();
  ASSERT_TRUE(F.execute(herbie::herbiePhasedSchedule(2))) << F.error();
  auto Diags = F.lintProgram();
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

TEST(LintShippedProgramsTest, PointstoFixtureIsClean) {
  // The clean_pointsto.egg fixture carries the same program text as
  // src/pointsto/Analyses.cpp's Steensgaard encoding, plus facts and a
  // deliberately unguarded (run) — the union-root mint exclusion is what
  // keeps it quiet.
  std::ifstream In(EGGLOG_SOURCE_DIR
                   "/tests/integration/lint/clean_pointsto.egg");
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  auto Diags = lintOf(Buffer.str());
  EXPECT_TRUE(Diags.empty()) << renderAll(Diags);
}

} // namespace
