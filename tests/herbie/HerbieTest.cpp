//===- tests/herbie/HerbieTest.cpp - Mini-Herbie pipeline tests ------------===//
//
// Part of egglog-cpp. End-to-end tests for the §6.2 case study: the sound
// analysis pipeline must fix the classic cancellation benchmarks, and the
// interval/not-equal analyses must prove the facts the paper describes.
//
//===----------------------------------------------------------------------===//

#include "herbie/Herbie.h"
#include "herbie/Rules.h"

#include "core/Frontend.h"

#include <gtest/gtest.h>

using namespace egglog;
using namespace egglog::herbie;

TEST(HerbieRulesTest, ProgramsLoad) {
  Frontend Sound, Unsound;
  EXPECT_TRUE(Sound.execute(herbieProgramText(true))) << Sound.error();
  EXPECT_TRUE(Unsound.execute(herbieProgramText(false))) << Unsound.error();
}

TEST(HerbieRulesTest, IntervalAnalysisProvesVPlusOneNeqV) {
  // The paper's §6.2 walkthrough: interval analysis proves v+1 != v, then
  // injectivity lifts it through cbrt.
  Frontend F;
  F.runOptions().UseBackoff = true;
  ASSERT_TRUE(F.execute(herbieProgramText(true))) << F.error();
  ASSERT_TRUE(F.execute(R"(
    (define v (MVar "v"))
    (set (lo v) (rational 1 1))
    (set (hi v) (rational 1000000 1))
    (define vp1 (MAdd v (MNum (rational 1 1))))
    (define diff (MSub vp1 v))
    (define cdiff (MSub (MCbrt vp1) (MCbrt v)))
  )" + herbiePhasedSchedule(12) + R"(
    (check (neq vp1 v))
    (check (neq (MCbrt vp1) (MCbrt v)))
  )")) << F.error();
}

TEST(HerbieRulesTest, SoundGuardBlocksZeroOverZero) {
  // x/x with an interval containing 0 must NOT rewrite to 1.
  Frontend F;
  F.runOptions().UseBackoff = true;
  ASSERT_TRUE(F.execute(herbieProgramText(true))) << F.error();
  ASSERT_TRUE(F.execute(R"(
    (define x (MVar "x"))
    (set (lo x) (rational -1 1))
    (set (hi x) (rational 1 1))
    (define q (MDiv x x))
  )" + herbiePhasedSchedule(5) + R"(
    (check-fail (= q (MNum (rational 1 1))))
  )")) << F.error();
}

TEST(HerbieRulesTest, SoundGuardAllowsSafeDivision) {
  Frontend F;
  F.runOptions().UseBackoff = true;
  ASSERT_TRUE(F.execute(herbieProgramText(true))) << F.error();
  ASSERT_TRUE(F.execute(R"(
    (define x (MVar "x"))
    (set (lo x) (rational 1 2))
    (set (hi x) (rational 100 1))
    (define q (MDiv x x))
  )" + herbiePhasedSchedule(5) + R"(
    (check (= q (MNum (rational 1 1))))
  )")) << F.error();
}

TEST(HerbieRulesTest, UnsoundRulesetMergesZeroOverZero) {
  // The unguarded ruleset merges x/x with 1 even when x may be zero — the
  // §1 unsoundness story.
  Frontend F;
  F.runOptions().UseBackoff = true;
  ASSERT_TRUE(F.execute(herbieProgramText(false))) << F.error();
  ASSERT_TRUE(F.execute(R"(
    (define x (MVar "x"))
    (define q (MDiv x x))
    (run rewrites 5)
    (check (= q (MNum (rational 1 1))))
  )")) << F.error();
}

TEST(HerbieRulesTest, IntervalsTightenThroughSqrt) {
  Frontend F;
  F.runOptions().UseBackoff = true;
  ASSERT_TRUE(F.execute(herbieProgramText(true))) << F.error();
  ASSERT_TRUE(F.execute(R"(
    (define x (MVar "x"))
    (set (lo x) (rational 4 1))
    (set (hi x) (rational 9 1))
    (define r (MSqrt x))
    (run-schedule (saturate analysis))
    (check (= (lo r) (rational 2 1)))
    (check (= (hi r) (rational 3 1)))
  )")) << F.error();
}

TEST(HerbieImproveTest, FixesSqrtCancellation) {
  Benchmark Bench{"sqrt-add-one", "(- (sqrt (+ x 1)) (sqrt x))",
                  {VarRange{"x", 1e6, 1e12}}};
  HerbieOptions Opts;
  Opts.Sound = true;
  Opts.Iterations = 14;
  HerbieResult Result = improveExpression(Bench, Opts);
  ASSERT_TRUE(Result.Ok) << Result.FailureReason;
  EXPECT_GT(Result.InitialErrorBits, 8.0) << "input must be inaccurate";
  EXPECT_LT(Result.FinalErrorBits, Result.InitialErrorBits / 2)
      << "mini-Herbie must substantially improve the kernel; best: "
      << Result.BestExpr;
}

TEST(HerbieImproveTest, FixesCbrtCancellationWithNeqAnalysis) {
  // The paper's flagship: needs flip3 guarded by the not-equal analysis.
  Benchmark Bench{"cbrt-add-one", "(- (cbrt (+ v 1)) (cbrt v))",
                  {VarRange{"v", 1e6, 1e12}}};
  HerbieOptions Opts;
  Opts.Sound = true;
  Opts.Iterations = 14;
  HerbieResult Result = improveExpression(Bench, Opts);
  ASSERT_TRUE(Result.Ok) << Result.FailureReason;
  EXPECT_GT(Result.InitialErrorBits, 8.0);
  EXPECT_LT(Result.FinalErrorBits, Result.InitialErrorBits / 2)
      << "best: " << Result.BestExpr;
}

TEST(HerbieImproveTest, UnsoundSelectionNeverAcceptsWorseCandidates) {
  // Even with unsound rules, measurement-based selection must not return
  // something less accurate than the input ("validate and discard").
  Benchmark Bench{"x-over-x", "(/ (+ x 1) (+ x 1))",
                  {VarRange{"x", 0.5, 100.0}}};
  HerbieOptions Opts;
  Opts.Sound = false;
  HerbieResult Result = improveExpression(Bench, Opts);
  ASSERT_TRUE(Result.Ok) << Result.FailureReason;
  EXPECT_LE(Result.FinalErrorBits, Result.InitialErrorBits);
}

TEST(HerbieImproveTest, AccurateInputStaysAccurate) {
  Benchmark Bench{"plain-add", "(+ x y)",
                  {VarRange{"x", 1.0, 100.0}, VarRange{"y", 1.0, 100.0}}};
  HerbieOptions Opts;
  HerbieResult Result = improveExpression(Bench, Opts);
  ASSERT_TRUE(Result.Ok) << Result.FailureReason;
  EXPECT_LT(Result.InitialErrorBits, 1.0);
  EXPECT_LE(Result.FinalErrorBits, Result.InitialErrorBits);
}

TEST(HerbieSuiteTest, SuiteIsWellFormed) {
  const std::vector<Benchmark> &Suite = herbieSuite();
  EXPECT_GE(Suite.size(), 40u);
  for (const Benchmark &Bench : Suite) {
    ExprPtr E = parseFPExpr(Bench.Expr);
    ASSERT_NE(E, nullptr) << Bench.Name;
    // Every free variable has a range.
    for (const std::string &Var : freeVariables(*E)) {
      bool Found = false;
      for (const VarRange &Range : Bench.Ranges)
        Found |= Range.Name == Var;
      EXPECT_TRUE(Found) << Bench.Name << " misses range for " << Var;
    }
  }
}
