//===- tests/herbie/FPExprTest.cpp - Expression language tests -------------===//
//
// Part of egglog-cpp. Tests for the mini-Herbie expression language,
// double-double ground truth, and the error model.
//
//===----------------------------------------------------------------------===//

#include "herbie/ErrorModel.h"

#include <gtest/gtest.h>

using namespace egglog;
using namespace egglog::herbie;

TEST(FPExprTest, ParseAndEval) {
  ExprPtr E = parseFPExpr("(- (sqrt (+ x 1)) (sqrt x))");
  ASSERT_NE(E, nullptr);
  Env Inputs = {{"x", 4.0}};
  EXPECT_DOUBLE_EQ(evalDouble(*E, Inputs), std::sqrt(5.0) - 2.0);
}

TEST(FPExprTest, ParseRejectsMalformed) {
  EXPECT_EQ(parseFPExpr("(+ x)"), nullptr);       // arity
  EXPECT_EQ(parseFPExpr("(log x)"), nullptr);     // unknown op
  EXPECT_EQ(parseFPExpr("(+ x y) extra"), nullptr);
}

TEST(FPExprTest, SurfaceRoundTrip) {
  const char *Source = "(fma (neg a) (cbrt b) (fabs (/ a b)))";
  ExprPtr E = parseFPExpr(Source);
  ASSERT_NE(E, nullptr);
  ExprPtr E2 = parseFPExpr(toSurface(*E));
  ASSERT_NE(E2, nullptr);
  Env Inputs = {{"a", 3.5}, {"b", 2.25}};
  EXPECT_DOUBLE_EQ(evalDouble(*E, Inputs), evalDouble(*E2, Inputs));
}

TEST(FPExprTest, EgglogTermRoundTrip) {
  ExprPtr E = parseFPExpr("(- (cbrt (+ v 1)) (cbrt v))");
  ASSERT_NE(E, nullptr);
  std::string Term = toEgglogTerm(*E);
  EXPECT_NE(Term.find("MCbrt"), std::string::npos);
  ExprPtr Back = parseEgglogTerm(Term);
  ASSERT_NE(Back, nullptr);
  Env Inputs = {{"v", 100.0}};
  EXPECT_DOUBLE_EQ(evalDouble(*E, Inputs), evalDouble(*Back, Inputs));
}

TEST(FPExprTest, FreeVariables) {
  ExprPtr E = parseFPExpr("(+ (* a b) (- a c))");
  ASSERT_NE(E, nullptr);
  std::vector<std::string> Vars = freeVariables(*E);
  EXPECT_EQ(Vars, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DoubleDoubleTest, CapturesRoundoff) {
  // 1e16 + 1 is not representable in binary64 but is in double-double.
  DoubleDouble Big(1e16);
  DoubleDouble Sum = Big + DoubleDouble(1.0);
  DoubleDouble Back = Sum - Big;
  EXPECT_DOUBLE_EQ(Back.toDouble(), 1.0);
  // In plain double arithmetic this degenerates:
  EXPECT_NE(1e16 + 1.0 - 1e16, 1.0);
}

TEST(DoubleDoubleTest, MulAndDiv) {
  DoubleDouble X(1.0);
  DoubleDouble Third = X / DoubleDouble(3.0);
  DoubleDouble One = Third * DoubleDouble(3.0);
  EXPECT_NEAR(One.toDouble(), 1.0, 1e-30);
  // Residual accuracy beyond double: (1/3)*3 - 1 should be ~0 in DD.
  DoubleDouble Err = One - X;
  EXPECT_LT(std::abs(Err.toDouble()), 1e-30);
}

TEST(DoubleDoubleTest, SqrtRefines) {
  DoubleDouble Two(2.0);
  DoubleDouble Root = Two.sqrt();
  DoubleDouble Square = Root * Root;
  EXPECT_LT(std::abs((Square - Two).toDouble()), 1e-30);
}

TEST(DoubleDoubleTest, CbrtHandlesNegatives) {
  DoubleDouble MinusEight(-8.0);
  EXPECT_NEAR(MinusEight.cbrt().toDouble(), -2.0, 1e-15);
  DoubleDouble Ten(10.0);
  DoubleDouble Root = Ten.cbrt();
  DoubleDouble Cube = Root * Root * Root;
  EXPECT_LT(std::abs((Cube - Ten).toDouble()), 1e-28);
}

TEST(ErrorModelTest, UlpDistanceBasics) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(ulpDistance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_GT(ulpDistance(1.0, 2.0), 1u);
  EXPECT_GT(ulpDistance(-1.0, 1.0), ulpDistance(1.0, 2.0));
  EXPECT_EQ(ulpDistance(0.5, std::nan("")), UINT64_MAX);
}

TEST(ErrorModelTest, BitsOfError) {
  EXPECT_DOUBLE_EQ(bitsOfError(1.0, 1.0), 0.0);
  EXPECT_NEAR(bitsOfError(1.0, std::nextafter(1.0, 2.0)), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(bitsOfError(std::nan(""), 1.0), 64.0);
}

TEST(ErrorModelTest, CancellationShowsHighError) {
  // sqrt(x+1) - sqrt(x) at large x loses most of its bits in binary64.
  ExprPtr Bad = parseFPExpr("(- (sqrt (+ x 1)) (sqrt x))");
  ExprPtr Good = parseFPExpr("(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))");
  ASSERT_NE(Bad, nullptr);
  ASSERT_NE(Good, nullptr);
  SampleSet Samples =
      samplePoints(*Bad, {VarRange{"x", 1e10, 1e14}}, 100, 42);
  ASSERT_GT(Samples.Points.size(), 50u);
  double BadError = averageError(*Bad, Samples);
  double GoodError = averageError(*Good, Samples);
  EXPECT_GT(BadError, 10.0) << "naive form must lose many bits";
  EXPECT_LT(GoodError, 2.0) << "rationalized form must be accurate";
}

TEST(ErrorModelTest, SamplerRespectsRangesAndValidity) {
  ExprPtr E = parseFPExpr("(sqrt x)");
  SampleSet Samples = samplePoints(*E, {VarRange{"x", 1.0, 2.0}}, 64, 7);
  EXPECT_EQ(Samples.Points.size(), 64u);
  for (const Env &Point : Samples.Points) {
    double X = Point.at("x");
    EXPECT_GE(X, 1.0);
    EXPECT_LE(X, 2.0);
  }
  // Deterministic in the seed.
  SampleSet Again = samplePoints(*E, {VarRange{"x", 1.0, 2.0}}, 64, 7);
  EXPECT_EQ(Samples.Points, Again.Points);
}
