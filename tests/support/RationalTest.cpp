//===- tests/support/RationalTest.cpp - Rational unit tests ----------------===//
//
// Part of egglog-cpp. Tests for exact rational arithmetic, including the
// sqrt/cbrt bounds used by the mini-Herbie interval analysis.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using egglog::BigInt;
using egglog::Rational;

TEST(RationalTest, NormalizationInvariants) {
  Rational Half(BigInt(2), BigInt(4));
  EXPECT_EQ(Half.numerator(), BigInt(1));
  EXPECT_EQ(Half.denominator(), BigInt(2));

  Rational NegHalf(BigInt(1), BigInt(-2));
  EXPECT_TRUE(NegHalf.isNegative());
  EXPECT_EQ(NegHalf.numerator(), BigInt(-1));
  EXPECT_EQ(NegHalf.denominator(), BigInt(2));

  Rational Zero(BigInt(0), BigInt(-7));
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.denominator(), BigInt(1));
}

TEST(RationalTest, Arithmetic) {
  Rational Third(BigInt(1), BigInt(3));
  Rational Quarter(BigInt(1), BigInt(4));
  EXPECT_EQ((Third + Quarter).toString(), "7/12");
  EXPECT_EQ((Third - Quarter).toString(), "1/12");
  EXPECT_EQ((Third * Quarter).toString(), "1/12");
  EXPECT_EQ((Third / Quarter).toString(), "4/3");
  EXPECT_EQ((-Third).toString(), "-1/3");
  EXPECT_EQ(Third.inverse().toString(), "3");
}

TEST(RationalTest, Comparison) {
  Rational A(BigInt(1), BigInt(3)), B(BigInt(1), BigInt(4));
  EXPECT_GT(A, B);
  EXPECT_LT(B, A);
  EXPECT_LE(A, A);
  EXPECT_EQ(Rational::min(A, B), B);
  EXPECT_EQ(Rational::max(A, B), A);
  EXPECT_LT(Rational(-5), Rational(3));
}

TEST(RationalTest, FromDoubleExact) {
  // Doubles are binary rationals, so the conversion must be lossless.
  EXPECT_EQ(Rational::fromDouble(0.5).toString(), "1/2");
  EXPECT_EQ(Rational::fromDouble(0.25).toString(), "1/4");
  EXPECT_EQ(Rational::fromDouble(3.0).toString(), "3");
  EXPECT_EQ(Rational::fromDouble(-1.75).toString(), "-7/4");
  EXPECT_EQ(Rational::fromDouble(0.0).toString(), "0");
  // 0.1 is not representable; round-trip through double must be exact.
  Rational Tenth = Rational::fromDouble(0.1);
  EXPECT_DOUBLE_EQ(Tenth.toDouble(), 0.1);
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(3)).toDouble(),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-22), BigInt(7)).toDouble(), -22.0 / 7.0);
  EXPECT_DOUBLE_EQ(Rational(1000000007).toDouble(), 1000000007.0);
}

TEST(RationalTest, SqrtBoundsBracketTrueRoot) {
  Rational Two(2);
  Rational Lo = Two.sqrtLower(), Hi = Two.sqrtUpper();
  EXPECT_LE(Lo * Lo, Two);
  EXPECT_GE(Hi * Hi, Two);
  EXPECT_LT((Hi - Lo).toDouble(), 1e-10);

  Rational Nine(9);
  EXPECT_EQ(Nine.sqrtLower(), Rational(3));
  EXPECT_EQ(Nine.sqrtUpper(), Rational(3));

  Rational Zero(0);
  EXPECT_EQ(Zero.sqrtLower(), Rational(0));
  EXPECT_EQ(Zero.sqrtUpper(), Rational(0));
}

TEST(RationalTest, CbrtBoundsBracketTrueRoot) {
  Rational Eight(8);
  EXPECT_EQ(Eight.cbrtLower(), Rational(2));
  EXPECT_EQ(Eight.cbrtUpper(), Rational(2));

  Rational Ten(10);
  Rational Lo = Ten.cbrtLower(), Hi = Ten.cbrtUpper();
  EXPECT_LE(Lo * Lo * Lo, Ten);
  EXPECT_GE(Hi * Hi * Hi, Ten);
  EXPECT_LT((Hi - Lo).toDouble(), 1e-10);

  // cbrt is odd; negative inputs flip the bounds.
  Rational MinusTen(-10);
  Rational NLo = MinusTen.cbrtLower(), NHi = MinusTen.cbrtUpper();
  EXPECT_LE(NLo * NLo * NLo, MinusTen);
  EXPECT_GE(NHi * NHi * NHi, MinusTen);
  EXPECT_LE(NLo, NHi);
}

TEST(RationalTest, Pow) {
  Rational Half(BigInt(1), BigInt(2));
  EXPECT_EQ(Half.pow(3).toString(), "1/8");
  EXPECT_EQ(Half.pow(0).toString(), "1");
  EXPECT_EQ(Half.pow(-2).toString(), "4");
  EXPECT_EQ(Rational(-3).pow(3).toString(), "-27");
}

TEST(RationalTest, AbsAndSign) {
  EXPECT_EQ(Rational(-5).abs(), Rational(5));
  EXPECT_EQ(Rational(5).abs(), Rational(5));
  EXPECT_EQ(Rational(-5).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_EQ(Rational(5).sign(), 1);
}

TEST(RationalTest, NoOverflowOnHugeValues) {
  // The paper notes an overflow failure in egglog's fixed-width rationals
  // (§6.2 far-right outlier); arbitrary precision must handle this.
  Rational Big = Rational(BigInt(10).pow(30), BigInt(1));
  Rational Result = Big * Big + Big;
  EXPECT_EQ(Result.numerator().toString(),
            "1000000000000000000000000000001000000000000000000000000000000");
}

class RationalPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int64_t> Dist(-1000, 1000);
  for (int Trial = 0; Trial < 100; ++Trial) {
    int64_t NumA = Dist(Rng), NumB = Dist(Rng), NumC = Dist(Rng);
    int64_t DenA = Dist(Rng), DenB = Dist(Rng), DenC = Dist(Rng);
    if (DenA == 0 || DenB == 0 || DenC == 0)
      continue;
    Rational A = Rational(BigInt(NumA), BigInt(DenA));
    Rational B = Rational(BigInt(NumB), BigInt(DenB));
    Rational C = Rational(BigInt(NumC), BigInt(DenC));
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + Rational(0), A);
    EXPECT_EQ(A * Rational(1), A);
    EXPECT_EQ(A - A, Rational(0));
    if (!A.isZero())
      EXPECT_EQ(A * A.inverse(), Rational(1));
  }
}

TEST_P(RationalPropertyTest, SqrtBoundsAlwaysBracket) {
  std::mt19937_64 Rng(GetParam() * 31 + 5);
  std::uniform_int_distribution<int64_t> Dist(0, 100000);
  for (int Trial = 0; Trial < 50; ++Trial) {
    int64_t Num = Dist(Rng), Den = Dist(Rng) + 1;
    Rational V = Rational(BigInt(Num), BigInt(Den));
    Rational Lo = V.sqrtLower(), Hi = V.sqrtUpper();
    EXPECT_LE(Lo * Lo, V);
    EXPECT_GE(Hi * Hi, V);
    EXPECT_LE(Lo, Hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1u, 7u, 99u));

TEST(RationalTest, OutwardRoundingBrackets) {
  // Rounding must be outward (roundDown <= v <= roundUp) and idempotent on
  // small values.
  Rational Third(BigInt(1), BigInt(3));
  EXPECT_EQ(Third.roundDown(64), Third) << "small values pass through";
  Rational Huge = Rational(BigInt(10).pow(40) + BigInt(7), BigInt(10).pow(39));
  Rational Down = Huge.roundDown(64), Up = Huge.roundUp(64);
  EXPECT_LE(Down, Huge);
  EXPECT_GE(Up, Huge);
  EXPECT_LE(Down.numerator().bitWidth(), 70u);
  EXPECT_LE(Down.denominator().bitWidth(), 70u);
  // The loss is bounded: the bracket is tight to ~2^-60 relative error.
  EXPECT_LT(((Up - Down) / Huge).toDouble(), 1e-15);
}

TEST(RationalTest, OutwardRoundingNegative) {
  Rational V = -Rational(BigInt(10).pow(40) + BigInt(7), BigInt(10).pow(39));
  EXPECT_LE(V.roundDown(64), V);
  EXPECT_GE(V.roundUp(64), V);
}
