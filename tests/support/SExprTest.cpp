//===- tests/support/SExprTest.cpp - S-expression reader tests -------------===//
//
// Part of egglog-cpp. Tests for the surface-syntax reader.
//
//===----------------------------------------------------------------------===//

#include "support/SExpr.h"

#include <gtest/gtest.h>

using egglog::parseSExprs;
using egglog::ParseResult;
using egglog::SExpr;

TEST(SExprTest, ParsesAtoms) {
  ParseResult R = parseSExprs("foo 42 -17 \"hello\" 3.25");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Forms.size(), 5u);
  EXPECT_TRUE(R.Forms[0].isSymbol("foo"));
  EXPECT_TRUE(R.Forms[1].isInteger());
  EXPECT_EQ(R.Forms[1].IntValue, 42);
  EXPECT_EQ(R.Forms[2].IntValue, -17);
  EXPECT_TRUE(R.Forms[3].isString());
  EXPECT_EQ(R.Forms[3].Text, "hello");
  EXPECT_TRUE(R.Forms[4].isFloat());
  EXPECT_DOUBLE_EQ(R.Forms[4].FloatValue, 3.25);
}

TEST(SExprTest, ParsesNestedLists) {
  ParseResult R = parseSExprs("(rule ((edge x y)) ((path x y)))");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Forms.size(), 1u);
  const SExpr &Rule = R.Forms[0];
  ASSERT_TRUE(Rule.isCall("rule"));
  ASSERT_EQ(Rule.size(), 3u);
  EXPECT_TRUE(Rule[1].isList());
  EXPECT_TRUE(Rule[1][0].isCall("edge"));
  EXPECT_TRUE(Rule[2][0].isCall("path"));
}

TEST(SExprTest, SkipsComments) {
  ParseResult R = parseSExprs(";; a comment\n(a b) ; trailing\n(c)");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Forms.size(), 2u);
  EXPECT_TRUE(R.Forms[0].isCall("a"));
  EXPECT_TRUE(R.Forms[1].isCall("c"));
}

TEST(SExprTest, TracksLineNumbers) {
  ParseResult R = parseSExprs("(a)\n(b)\n  (c)");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Forms[0].Line, 1u);
  EXPECT_EQ(R.Forms[1].Line, 2u);
  EXPECT_EQ(R.Forms[2].Line, 3u);
}

TEST(SExprTest, StringEscapes) {
  ParseResult R = parseSExprs(R"(("a\"b" "c\\d" "e\nf"))");
  ASSERT_TRUE(R.Ok) << R.Error;
  const SExpr &List = R.Forms[0];
  EXPECT_EQ(List[0].Text, "a\"b");
  EXPECT_EQ(List[1].Text, "c\\d");
  EXPECT_EQ(List[2].Text, "e\nf");
}

TEST(SExprTest, SymbolsWithOperatorCharacters) {
  ParseResult R = parseSExprs("(+ a-b? <= :merge)");
  ASSERT_TRUE(R.Ok) << R.Error;
  const SExpr &List = R.Forms[0];
  EXPECT_TRUE(List[0].isSymbol("+"));
  EXPECT_TRUE(List[1].isSymbol("a-b?"));
  EXPECT_TRUE(List[2].isSymbol("<="));
  EXPECT_TRUE(List[3].isSymbol(":merge"));
}

TEST(SExprTest, ErrorsOnUnterminatedList) {
  ParseResult R = parseSExprs("(a (b c)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unterminated"), std::string::npos);
}

TEST(SExprTest, ErrorsOnStrayCloseParen) {
  ParseResult R = parseSExprs("a) b");
  EXPECT_FALSE(R.Ok);
}

TEST(SExprTest, ErrorsOnUnterminatedString) {
  ParseResult R = parseSExprs("\"abc");
  EXPECT_FALSE(R.Ok);
}

TEST(SExprTest, ErrorsOnHugeIntegerLiteral) {
  ParseResult R = parseSExprs("99999999999999999999999999");
  EXPECT_FALSE(R.Ok);
}

TEST(SExprTest, EmptyListIsAForm) {
  ParseResult R = parseSExprs("()");
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Forms.size(), 1u);
  EXPECT_TRUE(R.Forms[0].isList());
  EXPECT_EQ(R.Forms[0].size(), 0u);
}

TEST(SExprTest, RoundTripsThroughToString) {
  const char *Source = "(rule ((= e (Add a b)) (!= a b)) ((union e (Add b a))))";
  ParseResult R1 = parseSExprs(Source);
  ASSERT_TRUE(R1.Ok);
  std::string Printed = R1.Forms[0].toString();
  ParseResult R2 = parseSExprs(Printed);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Forms[0].toString(), Printed);
}

TEST(SExprTest, PlusPrefixedNumber) {
  ParseResult R = parseSExprs("+42");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Forms[0].isInteger());
  EXPECT_EQ(R.Forms[0].IntValue, 42);
}

TEST(SExprTest, MinusAloneIsASymbol) {
  ParseResult R = parseSExprs("- -");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Forms[0].isSymbol("-"));
}
