//===- tests/support/BigIntTest.cpp - BigInt unit tests --------------------===//
//
// Part of egglog-cpp. Unit and property tests for arbitrary-precision
// integers, checked against native 64-bit arithmetic oracles.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using egglog::BigInt;

TEST(BigIntTest, ZeroBasics) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_FALSE(Zero.isNegative());
  EXPECT_EQ(Zero.sign(), 0);
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_EQ(Zero.toInt64(), 0);
  EXPECT_EQ(Zero, BigInt(0));
  EXPECT_EQ((-Zero), Zero);
}

TEST(BigIntTest, SmallValues) {
  EXPECT_EQ(BigInt(42).toString(), "42");
  EXPECT_EQ(BigInt(-42).toString(), "-42");
  EXPECT_EQ(BigInt(42).toInt64(), 42);
  EXPECT_EQ(BigInt(-42).toInt64(), -42);
  EXPECT_TRUE(BigInt(1).isOne());
  EXPECT_FALSE(BigInt(-1).isOne());
}

TEST(BigIntTest, Int64Extremes) {
  BigInt Min(INT64_MIN), Max(INT64_MAX);
  EXPECT_TRUE(Min.fitsInt64());
  EXPECT_TRUE(Max.fitsInt64());
  EXPECT_EQ(Min.toInt64(), INT64_MIN);
  EXPECT_EQ(Max.toInt64(), INT64_MAX);
  EXPECT_EQ(Min.toString(), "-9223372036854775808");
  EXPECT_EQ(Max.toString(), "9223372036854775807");
  // One beyond INT64_MAX no longer fits.
  BigInt Beyond = Max + BigInt(1);
  EXPECT_FALSE(Beyond.fitsInt64());
  // INT64_MIN fits exactly; one below does not.
  EXPECT_FALSE((Min - BigInt(1)).fitsInt64());
}

TEST(BigIntTest, FromString) {
  bool Ok = false;
  EXPECT_EQ(BigInt::fromString("123456789012345678901234567890", Ok).toString(),
            "123456789012345678901234567890");
  EXPECT_TRUE(Ok);
  EXPECT_EQ(BigInt::fromString("-987654321", Ok), BigInt(-987654321));
  EXPECT_TRUE(Ok);
  BigInt Bad = BigInt::fromString("12x3", Ok);
  EXPECT_FALSE(Ok);
  BigInt Empty = BigInt::fromString("", Ok);
  EXPECT_FALSE(Ok);
  BigInt JustSign = BigInt::fromString("-", Ok);
  EXPECT_FALSE(Ok);
  (void)Bad;
  (void)Empty;
  (void)JustSign;
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  bool Ok = false;
  BigInt NegZero = BigInt::fromString("-0", Ok);
  EXPECT_TRUE(Ok);
  EXPECT_FALSE(NegZero.isNegative());
  EXPECT_EQ(NegZero, BigInt(0));
}

TEST(BigIntTest, LargeMultiplication) {
  bool Ok = false;
  BigInt A = BigInt::fromString("123456789012345678901234567890", Ok);
  BigInt B = BigInt::fromString("987654321098765432109876543210", Ok);
  BigInt Product = A * B;
  EXPECT_EQ(Product.toString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(-2), BigInt(-1));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, Pow) {
  EXPECT_EQ(BigInt(2).pow(10), BigInt(1024));
  EXPECT_EQ(BigInt(10).pow(0), BigInt(1));
  EXPECT_EQ(BigInt(3).pow(40).toString(), "12157665459056928801");
  EXPECT_EQ(BigInt(-2).pow(3), BigInt(-8));
  EXPECT_EQ(BigInt(-2).pow(4), BigInt(16));
}

TEST(BigIntTest, Isqrt) {
  EXPECT_EQ(BigInt(0).isqrt(), BigInt(0));
  EXPECT_EQ(BigInt(1).isqrt(), BigInt(1));
  EXPECT_EQ(BigInt(15).isqrt(), BigInt(3));
  EXPECT_EQ(BigInt(16).isqrt(), BigInt(4));
  EXPECT_EQ(BigInt(17).isqrt(), BigInt(4));
  BigInt Big = BigInt(123456789).pow(2);
  EXPECT_EQ(Big.isqrt(), BigInt(123456789));
  EXPECT_EQ((Big + BigInt(1)).isqrt(), BigInt(123456789));
  EXPECT_EQ((Big - BigInt(1)).isqrt(), BigInt(123456788));
}

TEST(BigIntTest, ShiftLeft) {
  EXPECT_EQ(BigInt(1).shiftLeft(0), BigInt(1));
  EXPECT_EQ(BigInt(1).shiftLeft(10), BigInt(1024));
  EXPECT_EQ(BigInt(3).shiftLeft(33).toString(), "25769803776");
  EXPECT_EQ(BigInt(-1).shiftLeft(4), BigInt(-16));
  EXPECT_EQ(BigInt(0).shiftLeft(100), BigInt(0));
}

TEST(BigIntTest, BitWidth) {
  EXPECT_EQ(BigInt(0).bitWidth(), 0u);
  EXPECT_EQ(BigInt(1).bitWidth(), 1u);
  EXPECT_EQ(BigInt(2).bitWidth(), 2u);
  EXPECT_EQ(BigInt(255).bitWidth(), 8u);
  EXPECT_EQ(BigInt(256).bitWidth(), 9u);
  EXPECT_EQ(BigInt(1).shiftLeft(100).bitWidth(), 101u);
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(12345).toDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).toDouble(), -12345.0);
  BigInt Big = BigInt(1).shiftLeft(64);
  EXPECT_DOUBLE_EQ(Big.toDouble(), 18446744073709551616.0);
}

/// Property sweep: random 64-bit pairs agree with __int128 oracles for
/// + - * and with int64 oracles for divmod.
class BigIntPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BigIntPropertyTest, ArithmeticMatchesNativeOracle) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int64_t> Dist(-1000000000LL, 1000000000LL);
  for (int Trial = 0; Trial < 200; ++Trial) {
    int64_t X = Dist(Rng), Y = Dist(Rng);
    BigInt A(X), B(Y);
    EXPECT_EQ((A + B).toInt64(), X + Y);
    EXPECT_EQ((A - B).toInt64(), X - Y);
    __int128 Product = static_cast<__int128>(X) * Y;
    BigInt P = A * B;
    EXPECT_EQ(P.toDouble(), static_cast<double>(Product));
    if (Y != 0) {
      EXPECT_EQ((A / B).toInt64(), X / Y);
      EXPECT_EQ((A % B).toInt64(), X % Y);
    }
    EXPECT_EQ(A.compare(B), X < Y ? -1 : (X == Y ? 0 : 1));
  }
}

TEST_P(BigIntPropertyTest, DivModRoundTrips) {
  std::mt19937_64 Rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<int64_t> Dist(-1000000000LL, 1000000000LL);
  for (int Trial = 0; Trial < 100; ++Trial) {
    BigInt A = BigInt(Dist(Rng)) * BigInt(Dist(Rng)) + BigInt(Dist(Rng));
    BigInt B = BigInt(Dist(Rng));
    if (B.isZero())
      continue;
    BigInt Q, R;
    BigInt::divmod(A, B, Q, R);
    EXPECT_EQ(Q * B + R, A) << "divmod must round-trip";
    // |R| < |B| and R carries the dividend's sign (or is zero).
    BigInt AbsR = R.isNegative() ? -R : R;
    BigInt AbsB = B.isNegative() ? -B : B;
    EXPECT_LT(AbsR.compare(AbsB), 0);
    if (!R.isZero())
      EXPECT_EQ(R.sign(), A.sign());
  }
}

TEST_P(BigIntPropertyTest, IsqrtBounds) {
  std::mt19937_64 Rng(GetParam() * 104729 + 7);
  std::uniform_int_distribution<int64_t> Dist(0, 1000000000LL);
  for (int Trial = 0; Trial < 100; ++Trial) {
    BigInt V = BigInt(Dist(Rng)) * BigInt(Dist(Rng));
    BigInt S = V.isqrt();
    EXPECT_LE((S * S).compare(V), 0);
    BigInt Next = S + BigInt(1);
    EXPECT_GT((Next * Next).compare(V), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));
