//===- examples/pointer_analysis.cpp - Unification in Datalog -----------------===//
//
// Part of egglog-cpp. Two views of §6.1: first the Fig. 4a node-contraction
// program (unification creates paths that did not exist before), then a
// real Steensgaard points-to run over a generated program using the
// pointsto library.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"
#include "pointsto/Analyses.h"

#include <cstdio>

using namespace egglog;

int main() {
  // --- Fig. 4a: vertex contraction via union. ----------------------------
  Frontend F;
  bool Ok = F.execute(R"(
    (sort Node)
    (function mk (i64) Node)
    (relation edge (Node Node))
    (relation path (Node Node))

    (rule ((edge x y))
          ((path x y)))
    (rule ((path x y) (edge y z))
          ((path x z)))

    (edge (mk 1) (mk 2))
    (edge (mk 2) (mk 3))
    (edge (mk 5) (mk 6))
    (union (mk 3) (mk 5))

    (run)
    (check (edge (mk 3) (mk 6)))
    (check (path (mk 1) (mk 6)))
  )");
  if (!Ok) {
    std::fprintf(stderr, "node contraction failed: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("Fig. 4a: after (union (mk 3) (mk 5)), node 1 reaches node "
              "6.\n");

  // --- Steensgaard analysis over a synthetic program. ---------------------
  pointsto::GeneratorOptions Opts;
  Opts.Seed = 99;
  Opts.Size = 400;
  pointsto::Program Prog = pointsto::generateProgram("demo", Opts);
  pointsto::AnalysisResult Result =
      pointsto::runPointsTo(Prog, pointsto::System::Egglog);
  if (Result.TimedOut) {
    std::fprintf(stderr, "analysis timed out unexpectedly\n");
    return 1;
  }
  std::printf("Steensgaard over %zu instructions (%u vars, %u allocation "
              "sites):\n",
              Prog.numInstructions(), Prog.NumVars, Prog.numAllAllocs());
  std::printf("  %zu allocation classes, computed in %.3fs with the native "
              "egglog encoding.\n",
              Result.numClasses(), Result.Seconds);
  return 0;
}
