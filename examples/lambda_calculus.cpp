//===- examples/lambda_calculus.cpp - Free-variable analysis ------------------===//
//
// Part of egglog-cpp. Appendix A.2 of the paper: tracking free-variable
// sets of lambda terms with plain egglog rules over set containers — the
// analysis egg would require custom Rust for. The merge is set
// intersection because rewriting can only shrink the set of free
// variables.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;
  bool Ok = F.execute(R"(
    (sort StrSet (Set String))
    (datatype Term
      (Val i64)
      (TVar String)
      (Lam String Term)
      (App Term Term)
      (TSub Term Term)) ;; object-language subtraction for the x-x demo

    (function free (Term) StrSet :merge (set-intersect old new))

    ;; The free-variable rules of Fig. 14.
    (rule ((= e (Val v)))
          ((set (free e) (set-empty))))
    (rule ((= e (TVar v)))
          ((set (free e) (set-singleton v))))
    (rule ((= e (Lam var body)) (= (free body) fv))
          ((set (free e) (set-remove fv var))))
    (rule ((= e (App e1 e2)) (= (free e1) fv1) (= (free e2) fv2))
          ((set (free e) (set-union fv1 fv2))))
    (rule ((= e (TSub e1 e2)) (= (free e1) fv1) (= (free e2) fv2))
          ((set (free e) (set-union fv1 fv2))))

    ;; x - x rewrites to 0, shrinking the free set (hence the intersection
    ;; merge).
    (rewrite (TSub a a) (Val 0))

    (define identity (Lam "x" (TVar "x")))
    (define open (App (TVar "f") (Lam "y" (App (TVar "y") (TVar "z")))))
    (define cancel (TSub (TVar "x") (TVar "x")))

    (run 5)
    (check (= (free identity) (set-empty)))
    (check (= (free open) (set-insert (set-singleton "f") "z")))
    ;; After the rewrite, x - x has NO free variables even though both
    ;; syntactic children mention x.
    (check (= (free cancel) (set-empty)))
  )");
  if (!Ok) {
    std::fprintf(stderr, "lambda example failed: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("Appendix A.2: free-variable sets computed by egglog rules:\n");
  std::printf("  free(\\x. x)        = {}\n");
  std::printf("  free(f (\\y. y z))  = {f, z}\n");
  std::printf("  free(x - x)        = {}   (shrunk by the rewrite to 0, "
              "via the set-intersect merge)\n");
  return 0;
}
