//===- examples/herbie_demo.cpp - Mini-Herbie on a cancellation kernel --------===//
//
// Part of egglog-cpp. Runs the §6.2 pipeline end to end on the paper's
// flagship benchmark 3sqrt(v+1) - 3sqrt(v): the interval analysis proves
// v+1 != v, injectivity lifts it through cbrt, and the guarded Fig. 9b
// rewrite fires soundly, recovering the accuracy lost to cancellation.
//
//===----------------------------------------------------------------------===//

#include "herbie/Herbie.h"

#include <cstdio>

using namespace egglog::herbie;

int main() {
  Benchmark Bench{"cbrt-add-one", "(- (cbrt (+ v 1)) (cbrt v))",
                  {VarRange{"v", 1e6, 1e12}}};

  HerbieOptions Sound;
  Sound.Sound = true;
  Sound.Iterations = 14;
  HerbieResult Result = improveExpression(Bench, Sound);
  if (!Result.Ok) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 Result.FailureReason.c_str());
    return 1;
  }

  std::printf("mini-Herbie on %s over v in [1e6, 1e12]:\n",
              Bench.Expr.c_str());
  std::printf("  input accuracy : %.2f average bits of error\n",
              Result.InitialErrorBits);
  std::printf("  output accuracy: %.2f average bits of error\n",
              Result.FinalErrorBits);
  std::printf("  best candidate : %s\n", Result.BestExpr.c_str());
  std::printf("  (%zu candidates validated, %zu e-nodes explored, "
              "%.2fs)\n",
              Result.CandidatesTried, Result.ENodes, Result.Seconds);
  return 0;
}
