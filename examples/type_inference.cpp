//===- examples/type_inference.cpp - Hindley-Milner unification ---------------===//
//
// Part of egglog-cpp. Appendix A.3 of the paper: the key constructs of
// Hindley-Milner inference in egglog — unification as union plus one
// injectivity rule for arrow types, and an occurs check as a separate
// relation.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;
  bool Ok = F.execute(R"(
    (datatype Type
      (TInt)
      (TBool)
      (TVar String)
      (Arr Type Type))

    ;; The unification mechanism: injectivity of the arrow constructor.
    (rule ((= (Arr fr1 to1) (Arr fr2 to2)))
          ((union fr1 fr2)
           (union to1 to2)))

    ;; Unify (a -> Int) with (Bool -> b): the injectivity rule must solve
    ;; a := Bool and b := Int.
    (define lhs (Arr (TVar "a") (TInt)))
    (define rhs (Arr (TBool) (TVar "b")))
    (union lhs rhs)

    (run 4)
    (check (= (TVar "a") (TBool)))
    (check (= (TVar "b") (TInt)))

    ;; Occurs check: a type variable unified with a type containing it.
    (relation occurs-check (String Type))
    (relation occurs-error (String))
    (rule ((= (TVar x) (Arr fr to)))
          ((occurs-check x fr)
           (occurs-check x to)))
    (rule ((occurs-check x (Arr fr to)))
          ((occurs-check x fr)
           (occurs-check x to)))
    (rule ((occurs-check x (TVar x)))
          ((occurs-error x)))

    ;; t = t -> Int is infinitary.
    (union (TVar "t") (Arr (TVar "t") (TInt)))
    (run 4)
    (check (occurs-error "t"))
    (check-fail (occurs-error "a"))
  )");
  if (!Ok) {
    std::fprintf(stderr, "type inference failed: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("Appendix A.3: Hindley-Milner unification in egglog:\n");
  std::printf("  (a -> Int) ~ (Bool -> b) solved a := Bool, b := Int via "
              "the injectivity rule.\n");
  std::printf("  t ~ (t -> Int) flagged by the occurs check.\n");
  return 0;
}
