//===- examples/quickstart.cpp - First steps with egglog-cpp ------------------===//
//
// Part of egglog-cpp. The two programs of Fig. 3 of the paper: classic
// Datalog reachability, then shortest paths via a :merge lattice. Run it
// with no arguments; it prints what it proves.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  // --- Fig. 3a: transitive closure, the classic Datalog example. --------
  Frontend Reach;
  bool Ok = Reach.execute(R"(
    (relation edge (i64 i64))
    (relation path (i64 i64))

    (rule ((edge x y))
          ((path x y)))
    (rule ((path x y) (edge y z))
          ((path x z)))

    (edge 1 2)
    (edge 2 3)
    (edge 3 4)

    (run)
    (check (path 1 4)) ;; succeeds
  )");
  if (!Ok) {
    std::fprintf(stderr, "reachability failed: %s\n", Reach.error().c_str());
    return 1;
  }
  std::printf("Fig. 3a: (path 1 4) holds after transitive closure.\n");

  // --- Fig. 3b: shortest path lengths with (min old new) merges. --------
  Frontend Shortest;
  Ok = Shortest.execute(R"(
    (function edge (i64 i64) i64)
    (function path (i64 i64) i64 :merge (min old new))

    (rule ((= (edge x y) len))
          ((set (path x y) len)))
    (rule ((= (path x y) xy) (= (edge y z) yz))
          ((set (path x z) (+ xy yz))))

    (set (edge 1 2) 10)
    (set (edge 2 3) 10)
    (set (edge 1 3) 30)

    (run)
    (check (path 1 3))
  )");
  if (!Ok) {
    std::fprintf(stderr, "shortest path failed: %s\n",
                 Shortest.error().c_str());
    return 1;
  }
  Value Length;
  if (Shortest.evalGround("(path 1 3)", Length))
    std::printf("Fig. 3b: shortest path 1 -> 3 has length %lld "
                "(the direct 30 edge lost to 10+10).\n",
                static_cast<long long>(
                    Shortest.graph().valueToI64(Length)));
  return 0;
}
