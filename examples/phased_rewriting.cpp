//===- examples/phased_rewriting.cpp - Rulesets, schedules, contexts ---------===//
//
// Part of egglog-cpp. Demonstrates the phasing toolkit: named rulesets, the
// (run-schedule ...) combinators, and (push)/(pop) database contexts.
//
// The workload mirrors the Herbie case study's alternation (§6): an
// `expand` ruleset grows the e-graph with algebraic identities, a
// `simplify` ruleset folds constants, and the schedule saturates the cheap
// simplifier between bounded expansion steps. A push/pop context then asks
// a speculative what-if question and abandons it exactly.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;

  const char *Program = R"(
    (datatype Math
      (Num i64)
      (Var String)
      (Add Math Math)
      (Mul Math Math))

    (ruleset expand)
    (ruleset simplify)

    (rewrite (Add a b) (Add b a) :ruleset expand)
    (rewrite (Mul a b) (Mul b a) :ruleset expand)
    (birewrite (Add (Add a b) c) (Add a (Add b c)) :ruleset expand)
    (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)) :ruleset expand)

    (rewrite (Add (Num x) (Num y)) (Num (+ x y)) :ruleset simplify)
    (rewrite (Mul (Num x) (Num y)) (Num (* x y)) :ruleset simplify)
    (rewrite (Add a (Num 0)) a :ruleset simplify)
    (rewrite (Mul a (Num 1)) a :ruleset simplify)

    ;; (2 * (x + 3)) + (4 * (1 + -1))
    (define e (Add (Mul (Num 2) (Add (Var "x") (Num 3)))
                   (Mul (Num 4) (Add (Num 1) (Num -1)))))

    ;; Alternate: clean up, expand a bit, clean up again.
    (run-schedule (repeat 3 (saturate simplify) (run expand 1)))
    (run-schedule (saturate simplify))
    (extract e)
  )";
  if (!F.execute(Program)) {
    std::fprintf(stderr, "error: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("simplified: %s\n", F.outputs().back().c_str());
  std::printf("e-graph: %zu live tuples after %zu leaf iterations\n",
              F.graph().liveTupleCount(), F.lastRun().Iterations.size());

  // Speculate inside a context: what if x were 5? The context is abandoned
  // exactly — the database hash afterwards equals the hash before.
  uint64_t HashBefore = F.graph().liveContentHash();
  const char *WhatIf = R"(
    (push)
    (union (Var "x") (Num 5))
    (run-schedule (saturate simplify) (run expand 2) (saturate simplify))
    (extract e)
    (pop)
  )";
  if (!F.execute(WhatIf)) {
    std::fprintf(stderr, "error: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("with x = 5: %s\n", F.outputs().back().c_str());
  std::printf("context abandoned exactly: %s\n",
              F.graph().liveContentHash() == HashBefore ? "yes" : "NO");
  return 0;
}
