//===- examples/eqsat_math.cpp - Equality saturation --------------------------===//
//
// Part of egglog-cpp. The Fig. 4b program: prove 2*(x+3) equal to 6+2*x by
// equality saturation, then extract an optimized form of (a*2)/2 using the
// Fig. 2 rewrites.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;
  bool Ok = F.execute(R"(
    (datatype Math
      (Num i64)
      (Var String)
      (Add Math Math)
      (Mul Math Math)
      (Div Math Math)
      (Shl Math Math))

    ;; expr1 = 2 * (x + 3)
    (define expr1 (Mul (Num 2) (Add (Var "x") (Num 3))))
    ;; expr2 = 6 + 2 * x
    (define expr2 (Add (Num 6) (Mul (Num 2) (Var "x"))))

    (rewrite (Add a b) (Add b a))
    (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (rewrite (Mul (Num a) (Num b)) (Num (* a b)))

    ;; The Fig. 2 rules.
    (rewrite (Mul x (Num 2)) (Shl x (Num 1)))
    (rewrite (Div (Mul x y) z) (Mul x (Div y z)))
    (rewrite (Div (Num a) (Num b)) (Num (/ a b)) :when ((!= b 0)))
    (rewrite (Mul x (Num 1)) x)

    (define target (Div (Mul (Var "a") (Num 2)) (Num 2)))

    (run 10)
    (check (= expr1 expr2))
    (extract target)
  )");
  if (!Ok) {
    std::fprintf(stderr, "equality saturation failed: %s\n",
                 F.error().c_str());
    return 1;
  }
  std::printf("Fig. 4b: proved 2*(x+3) == 6+2*x by saturation.\n");
  std::printf("Fig. 2:  (a*2)/2 extracts to %s.\n",
              F.outputs().back().c_str());
  return 0;
}
