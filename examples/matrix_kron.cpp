//===- examples/matrix_kron.cpp - Kronecker products with dimensions ----------===//
//
// Part of egglog-cpp. Appendix A.4 (Fig. 19) of the paper: optimizing
// matrix expressions where the profitable rewrite
//   (A (x) B) . (C (x) D)  ->  (A.C) (x) (B.D)
// is guarded by *symbolic dimension* reasoning — an analysis that is
// itself term rewriting, which e-class analyses cannot express but plain
// egglog rules can.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;
  bool Ok = F.execute(R"(
    (datatype MExpr
      (MMul MExpr MExpr)
      (Kron MExpr MExpr)
      (MVar String))
    (datatype Dim
      (Times Dim Dim)
      (NamedDim String)
      (Lit i64))

    (function nrows (MExpr) Dim)
    (function ncols (MExpr) Dim)

    ;; Computing the dimensions of matrix expressions.
    (rewrite (nrows (Kron A B)) (Times (nrows A) (nrows B)))
    (rewrite (ncols (Kron A B)) (Times (ncols A) (ncols B)))
    (rewrite (nrows (MMul A B)) (nrows A))
    (rewrite (ncols (MMul A B)) (ncols B))

    ;; Reasoning about dimensionality is itself rewriting.
    (birewrite (Times a (Times b c)) (Times (Times a b) c))
    (rewrite (Times (Lit i) (Lit j)) (Lit (* i j)))
    (rewrite (Times a b) (Times b a))

    ;; Structural rules.
    (birewrite (MMul A (MMul B C)) (MMul (MMul A B) C))
    (birewrite (Kron A (Kron B C)) (Kron (Kron A B) C))
    (rewrite (Kron (MMul A C) (MMul B D)) (MMul (Kron A B) (Kron C D)))

    ;; The profitable direction, guarded by dimension agreement.
    (rewrite (MMul (Kron A B) (Kron C D))
             (Kron (MMul A C) (MMul B D))
             :when ((= (ncols A) (nrows C))
                    (= (ncols B) (nrows D))))

    ;; A: n x m, C: m x n, B: 2 x 2, D: 2 x 2.
    (set (nrows (MVar "A")) (NamedDim "n"))
    (set (ncols (MVar "A")) (NamedDim "m"))
    (set (nrows (MVar "C")) (NamedDim "m"))
    (set (ncols (MVar "C")) (NamedDim "n"))
    (set (nrows (MVar "B")) (Lit 2))
    (set (ncols (MVar "B")) (Lit 2))
    (set (nrows (MVar "D")) (Lit 2))
    (set (ncols (MVar "D")) (Lit 2))

    (define big (MMul (Kron (MVar "A") (MVar "B"))
                      (Kron (MVar "C") (MVar "D"))))
    ;; Make sure the dimension demands exist so the guard can fire.
    (define dimsA (ncols (MVar "A")))
    (define dimsC (nrows (MVar "C")))
    (define dimsB (ncols (MVar "B")))
    (define dimsD (nrows (MVar "D")))

    (run 8)
    ;; The guarded rewrite must have fired: the product of Kroneckers is
    ;; equal to the Kronecker of products (asymptotically cheaper).
    (check (= big (Kron (MMul (MVar "A") (MVar "C"))
                        (MMul (MVar "B") (MVar "D")))))
    (extract big)
  )");
  if (!Ok) {
    std::fprintf(stderr, "matrix example failed: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("Appendix A.4: (A(x)B).(C(x)D) optimized under symbolic "
              "dimension checks.\n");
  std::printf("  extracted: %s\n", F.outputs().back().c_str());
  return 0;
}
