//===- examples/equation_solving.cpp - Solving equations by rewriting ---------===//
//
// Part of egglog-cpp. Appendix A.4 (Fig. 17) of the paper: solving a
// two-variable linear system by rewriting whole equations — variable
// isolation is a rule, substitution is implicit because a variable and its
// definition share an e-class.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include <cstdio>

using namespace egglog;

int main() {
  Frontend F;
  bool Ok = F.execute(R"(
    (datatype Expr
      (EAdd Expr Expr)
      (EMul Expr Expr)
      (ENeg Expr)
      (ENum i64)
      (EVar String))

    ;; Algebraic rules over expressions (Fig. 17).
    (rewrite (EAdd x y) (EAdd y x))
    (birewrite (EAdd (EAdd x y) z) (EAdd x (EAdd y z)))
    (rewrite (EAdd (EMul y x) (EMul z x)) (EMul (EAdd y z) x))
    ;; Make the implicit coefficient 1 explicit.
    (rewrite (EVar x) (EMul (ENum 1) (EVar x)))

    ;; Constant folding.
    (rewrite (EAdd (ENum x) (ENum y)) (ENum (+ x y)))
    (rewrite (EMul (ENum x) (ENum y)) (ENum (* x y)))
    (rewrite (ENeg (ENum n)) (ENum (neg n)))
    (rewrite (EAdd (ENeg x) x) (ENum 0))
    (rewrite (EAdd x (ENum 0)) x)

    ;; Variable isolation by rewriting the entire equation:
    ;; x + y = z implies x = z - y, and cx = z implies x = z/c when c | z.
    (rule ((= (EAdd x y) z))
          ((union (EAdd z (ENeg y)) x)))
    (rule ((= (EMul (ENum x) y) (ENum z)) (!= x 0) (= (% z x) 0))
          ((union (ENum (/ z x)) y)))

    ;; System 1: x + 2 = 7.  System 2: z + y = 6; 2z = y.
    (union (EAdd (EVar "x") (ENum 2)) (ENum 7))
    (union (EAdd (EVar "z") (EVar "y")) (ENum 6))
    (union (EAdd (EVar "z") (EVar "z")) (EVar "y"))

    (run 8)
    (extract (EVar "x"))
    (extract (EVar "y"))
    (extract (EVar "z"))
  )");
  if (!Ok) {
    std::fprintf(stderr, "equation solving failed: %s\n", F.error().c_str());
    return 1;
  }
  std::printf("Appendix A.4: solved the system x+2=7; z+y=6; 2z=y:\n");
  std::printf("  x = %s\n", F.outputs()[0].c_str());
  std::printf("  y = %s\n", F.outputs()[1].c_str());
  std::printf("  z = %s\n", F.outputs()[2].c_str());
  return 0;
}
