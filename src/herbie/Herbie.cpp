//===- herbie/Herbie.cpp - Mini-Herbie improvement loop ----------------------===//
//
// Part of egglog-cpp. See Herbie.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "herbie/Herbie.h"

#include "core/Extract.h"
#include "core/Frontend.h"
#include "herbie/Rules.h"
#include "support/Timer.h"

using namespace egglog;
using namespace egglog::herbie;

HerbieResult egglog::herbie::improveExpression(const Benchmark &Bench,
                                               const HerbieOptions &Options) {
  HerbieResult Result;
  Timer Clock;

  ExprPtr Root = parseFPExpr(Bench.Expr);
  if (!Root) {
    Result.FailureReason = "parse error in benchmark expression";
    return Result;
  }

  SampleSet Samples =
      samplePoints(*Root, Bench.Ranges, Options.Samples, Options.Seed);
  if (Samples.Points.empty()) {
    Result.FailureReason = "no valid sample points in the given ranges";
    return Result;
  }
  Result.InitialErrorBits = averageError(*Root, Samples);

  // Build the egglog program: rules, the root term, and (in sound mode)
  // interval seeds for the input variables.
  Frontend F;
  if (!F.execute(herbieProgramText(Options.Sound))) {
    Result.FailureReason = "ruleset failed to load: " + F.error();
    return Result;
  }
  std::string Setup = "(define root " + toEgglogTerm(*Root) + ")\n";
  if (Options.Sound) {
    for (const VarRange &Range : Bench.Ranges) {
      Rational Lo = Rational::fromDouble(Range.Lo);
      Rational Hi = Rational::fromDouble(Range.Hi);
      Setup += "(set (lo (MVar \"" + Range.Name + "\")) (rational-big \"" +
               Lo.numerator().toString() + "\" \"" +
               Lo.denominator().toString() + "\"))\n";
      Setup += "(set (hi (MVar \"" + Range.Name + "\")) (rational-big \"" +
               Hi.numerator().toString() + "\" \"" +
               Hi.denominator().toString() + "\"))\n";
    }
  }
  if (!F.execute(Setup)) {
    Result.FailureReason = "setup failed: " + F.error();
    return Result;
  }

  RunOptions &RunOpts = F.runOptions();
  RunOpts.NodeLimit = Options.NodeLimit;
  RunOpts.TimeoutSeconds = Options.TimeoutSeconds;
  // Herbie runs its EqSat under egg's BackOff scheduler; without it the
  // associativity/distributivity birewrites explode.
  RunOpts.UseBackoff = true;
  // The phased two-ruleset schedule of §6: saturate the lattice analyses
  // so every guard sees the tightest facts available, then grow terms by
  // one rewrite iteration, and repeat. NodeLimit bounds each leaf;
  // TimeoutSeconds budgets the whole schedule.
  if (!F.execute(herbiePhasedSchedule(Options.Iterations))) {
    Result.FailureReason = "schedule failed: " + F.error();
    return Result;
  }
  const RunReport &Report = F.lastRun();
  Result.IterationsRun = static_cast<unsigned>(Report.Iterations.size());
  Result.ENodes = F.graph().liveTupleCount();

  // Candidate selection: extract the cheapest few members of the root
  // class and keep the measured-most-accurate one. Measuring against the
  // ground truth is also what discards candidates that unsound rewrites
  // merged in wrongly (Herbie's validation step).
  Value RootValue;
  if (!F.evalGround("root", RootValue)) {
    Result.FailureReason = "root term lost: " + F.error();
    return Result;
  }

  // All MaxCandidates variant renderings share one refresh of the graph's
  // persistent ExtractIndex (no per-candidate cost fixpoints, and warm
  // reuse of whatever the run loop already built). ExtractSeconds
  // brackets the extraction call only; candidate evaluation (parsing +
  // error measurement) is charged to the overall Seconds.
  uint64_t RowsBefore = F.graph().extractIndex().stats().RowsConsidered;
  Timer ExtractClock;
  std::vector<ExtractedTerm> Variants =
      extractVariants(F.graph(), RootValue, Options.MaxCandidates);
  Result.ExtractSeconds = ExtractClock.seconds();
  Result.ExtractRowsConsidered =
      F.graph().extractIndex().stats().RowsConsidered - RowsBefore;

  Result.FinalErrorBits = Result.InitialErrorBits;
  Result.BestExpr = Bench.Expr;
  for (const ExtractedTerm &Variant : Variants) {
    ExprPtr Candidate = parseEgglogTerm(Variant.Text);
    if (!Candidate)
      continue;
    ++Result.CandidatesTried;
    double Error = averageError(*Candidate, Samples);
    if (Error < Result.FinalErrorBits) {
      Result.FinalErrorBits = Error;
      Result.BestExpr = toSurface(*Candidate);
    }
  }

  Result.Ok = true;
  Result.Seconds = Clock.seconds();
  return Result;
}
