//===- herbie/FPExpr.cpp - Floating-point expression language ----------------===//
//
// Part of egglog-cpp. See FPExpr.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "herbie/FPExpr.h"

#include "support/NumberFormat.h"
#include "support/Rational.h"
#include "support/SExpr.h"

#include <cassert>
#include <set>

using namespace egglog;
using namespace egglog::herbie;

ExprPtr FPExpr::num(double Value) {
  auto Node = std::make_shared<FPExpr>();
  Node->Op = OpKind::Num;
  Node->Constant = Value;
  return Node;
}

ExprPtr FPExpr::var(const std::string &Name) {
  auto Node = std::make_shared<FPExpr>();
  Node->Op = OpKind::Var;
  Node->Name = Name;
  return Node;
}

ExprPtr FPExpr::make(OpKind Op, std::vector<ExprPtr> Args) {
  assert(Args.size() == arity(Op) && "wrong operator arity");
  auto Node = std::make_shared<FPExpr>();
  Node->Op = Op;
  Node->Args = std::move(Args);
  return Node;
}

unsigned FPExpr::arity(OpKind Op) {
  switch (Op) {
  case OpKind::Num:
  case OpKind::Var:
    return 0;
  case OpKind::Neg:
  case OpKind::Sqrt:
  case OpKind::Cbrt:
  case OpKind::Fabs:
    return 1;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
    return 2;
  case OpKind::Fma:
    return 3;
  }
  return 0;
}

double egglog::herbie::evalDouble(const FPExpr &E, const Env &Inputs) {
  switch (E.Op) {
  case OpKind::Num:
    return E.Constant;
  case OpKind::Var: {
    auto It = Inputs.find(E.Name);
    return It == Inputs.end() ? std::numeric_limits<double>::quiet_NaN()
                              : It->second;
  }
  case OpKind::Add:
    return evalDouble(*E.Args[0], Inputs) + evalDouble(*E.Args[1], Inputs);
  case OpKind::Sub:
    return evalDouble(*E.Args[0], Inputs) - evalDouble(*E.Args[1], Inputs);
  case OpKind::Mul:
    return evalDouble(*E.Args[0], Inputs) * evalDouble(*E.Args[1], Inputs);
  case OpKind::Div:
    return evalDouble(*E.Args[0], Inputs) / evalDouble(*E.Args[1], Inputs);
  case OpKind::Neg:
    return -evalDouble(*E.Args[0], Inputs);
  case OpKind::Sqrt:
    return std::sqrt(evalDouble(*E.Args[0], Inputs));
  case OpKind::Cbrt:
    return std::cbrt(evalDouble(*E.Args[0], Inputs));
  case OpKind::Fabs:
    return std::fabs(evalDouble(*E.Args[0], Inputs));
  case OpKind::Fma:
    return std::fma(evalDouble(*E.Args[0], Inputs),
                    evalDouble(*E.Args[1], Inputs),
                    evalDouble(*E.Args[2], Inputs));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

DoubleDouble egglog::herbie::evalExact(const FPExpr &E, const Env &Inputs) {
  switch (E.Op) {
  case OpKind::Num:
    return DoubleDouble(E.Constant);
  case OpKind::Var: {
    auto It = Inputs.find(E.Name);
    return It == Inputs.end()
               ? DoubleDouble(std::numeric_limits<double>::quiet_NaN())
               : DoubleDouble(It->second);
  }
  case OpKind::Add:
    return evalExact(*E.Args[0], Inputs) + evalExact(*E.Args[1], Inputs);
  case OpKind::Sub:
    return evalExact(*E.Args[0], Inputs) - evalExact(*E.Args[1], Inputs);
  case OpKind::Mul:
    return evalExact(*E.Args[0], Inputs) * evalExact(*E.Args[1], Inputs);
  case OpKind::Div:
    return evalExact(*E.Args[0], Inputs) / evalExact(*E.Args[1], Inputs);
  case OpKind::Neg:
    return -evalExact(*E.Args[0], Inputs);
  case OpKind::Sqrt:
    return evalExact(*E.Args[0], Inputs).sqrt();
  case OpKind::Cbrt:
    return evalExact(*E.Args[0], Inputs).cbrt();
  case OpKind::Fabs:
    return evalExact(*E.Args[0], Inputs).abs();
  case OpKind::Fma:
    return fmaDD(evalExact(*E.Args[0], Inputs), evalExact(*E.Args[1], Inputs),
                 evalExact(*E.Args[2], Inputs));
  }
  return DoubleDouble(std::numeric_limits<double>::quiet_NaN());
}

namespace {
void collectVars(const FPExpr &E, std::set<std::string> &Out) {
  if (E.Op == OpKind::Var)
    Out.insert(E.Name);
  for (const ExprPtr &Arg : E.Args)
    collectVars(*Arg, Out);
}
} // namespace

std::vector<std::string> egglog::herbie::freeVariables(const FPExpr &E) {
  std::set<std::string> Vars;
  collectVars(E, Vars);
  return std::vector<std::string>(Vars.begin(), Vars.end());
}

//===----------------------------------------------------------------------===
// Surface syntax
//===----------------------------------------------------------------------===

namespace {

std::optional<OpKind> surfaceOp(const std::string &Name) {
  if (Name == "+")
    return OpKind::Add;
  if (Name == "-")
    return OpKind::Sub;
  if (Name == "*")
    return OpKind::Mul;
  if (Name == "/")
    return OpKind::Div;
  if (Name == "neg")
    return OpKind::Neg;
  if (Name == "sqrt")
    return OpKind::Sqrt;
  if (Name == "cbrt")
    return OpKind::Cbrt;
  if (Name == "fabs")
    return OpKind::Fabs;
  if (Name == "fma")
    return OpKind::Fma;
  return std::nullopt;
}

const char *opSurfaceName(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
    return "+";
  case OpKind::Sub:
    return "-";
  case OpKind::Mul:
    return "*";
  case OpKind::Div:
    return "/";
  case OpKind::Neg:
    return "neg";
  case OpKind::Sqrt:
    return "sqrt";
  case OpKind::Cbrt:
    return "cbrt";
  case OpKind::Fabs:
    return "fabs";
  case OpKind::Fma:
    return "fma";
  case OpKind::Num:
  case OpKind::Var:
    return "";
  }
  return "";
}

const char *opEgglogName(OpKind Op) {
  switch (Op) {
  case OpKind::Add:
    return "MAdd";
  case OpKind::Sub:
    return "MSub";
  case OpKind::Mul:
    return "MMul";
  case OpKind::Div:
    return "MDiv";
  case OpKind::Neg:
    return "MNeg";
  case OpKind::Sqrt:
    return "MSqrt";
  case OpKind::Cbrt:
    return "MCbrt";
  case OpKind::Fabs:
    return "MFabs";
  case OpKind::Fma:
    return "MFma";
  case OpKind::Num:
    return "MNum";
  case OpKind::Var:
    return "MVar";
  }
  return "";
}

std::optional<OpKind> egglogOp(const std::string &Name) {
  static const std::pair<const char *, OpKind> Table[] = {
      {"MAdd", OpKind::Add},   {"MSub", OpKind::Sub},
      {"MMul", OpKind::Mul},   {"MDiv", OpKind::Div},
      {"MNeg", OpKind::Neg},   {"MSqrt", OpKind::Sqrt},
      {"MCbrt", OpKind::Cbrt}, {"MFabs", OpKind::Fabs},
      {"MFma", OpKind::Fma},
  };
  for (const auto &[Text, Op] : Table)
    if (Name == Text)
      return Op;
  return std::nullopt;
}

ExprPtr convertSurface(const SExpr &Node) {
  if (Node.isInteger())
    return FPExpr::num(static_cast<double>(Node.IntValue));
  if (Node.isFloat())
    return FPExpr::num(Node.FloatValue);
  if (Node.isSymbol())
    return FPExpr::var(Node.Text);
  if (!Node.isList() || Node.size() < 2 || !Node[0].isSymbol())
    return nullptr;
  std::optional<OpKind> Op = surfaceOp(Node[0].Text);
  if (!Op || Node.size() - 1 != FPExpr::arity(*Op))
    return nullptr;
  std::vector<ExprPtr> Args;
  for (size_t I = 1; I < Node.size(); ++I) {
    ExprPtr Arg = convertSurface(Node[I]);
    if (!Arg)
      return nullptr;
    Args.push_back(std::move(Arg));
  }
  return FPExpr::make(*Op, std::move(Args));
}

} // namespace

ExprPtr egglog::herbie::parseFPExpr(const std::string &Source) {
  ParseResult Parsed = parseSExprs(Source);
  if (!Parsed.Ok || Parsed.Forms.size() != 1)
    return nullptr;
  return convertSurface(Parsed.Forms[0]);
}

std::string egglog::herbie::toSurface(const FPExpr &E) {
  switch (E.Op) {
  case OpKind::Num:
    return formatF64(E.Constant);
  case OpKind::Var:
    return E.Name;
  default: {
    std::string Result = "(";
    Result += opSurfaceName(E.Op);
    for (const ExprPtr &Arg : E.Args)
      Result += " " + toSurface(*Arg);
    return Result + ")";
  }
  }
}

std::string egglog::herbie::toEgglogTerm(const FPExpr &E) {
  switch (E.Op) {
  case OpKind::Num: {
    Rational R = Rational::fromDouble(E.Constant);
    return "(MNum (rational-big \"" + R.numerator().toString() + "\" \"" +
           R.denominator().toString() + "\"))";
  }
  case OpKind::Var:
    return "(MVar \"" + E.Name + "\")";
  default: {
    std::string Result = "(";
    Result += opEgglogName(E.Op);
    for (const ExprPtr &Arg : E.Args)
      Result += " " + toEgglogTerm(*Arg);
    return Result + ")";
  }
  }
}

namespace {

ExprPtr convertEgglog(const SExpr &Node) {
  if (!Node.isList() || Node.size() < 1 || !Node[0].isSymbol())
    return nullptr;
  const std::string &Head = Node[0].Text;
  if (Head == "MNum" && Node.size() == 2) {
    const SExpr &Payload = Node[1];
    // (rational p q) or (rational-big "p" "q").
    if (Payload.isCall("rational") && Payload.size() == 3 &&
        Payload[1].isInteger() && Payload[2].isInteger()) {
      return FPExpr::num(static_cast<double>(Payload[1].IntValue) /
                         static_cast<double>(Payload[2].IntValue));
    }
    if (Payload.isCall("rational-big") && Payload.size() == 3 &&
        Payload[1].isString() && Payload[2].isString()) {
      bool OkN = false, OkD = false;
      BigInt Num = BigInt::fromString(Payload[1].Text, OkN);
      BigInt Den = BigInt::fromString(Payload[2].Text, OkD);
      if (!OkN || !OkD || Den.isZero())
        return nullptr;
      return FPExpr::num(Rational(Num, Den).toDouble());
    }
    return nullptr;
  }
  if (Head == "MVar" && Node.size() == 2 && Node[1].isString())
    return FPExpr::var(Node[1].Text);
  std::optional<OpKind> Op = egglogOp(Head);
  if (!Op || Node.size() - 1 != FPExpr::arity(*Op))
    return nullptr;
  std::vector<ExprPtr> Args;
  for (size_t I = 1; I < Node.size(); ++I) {
    ExprPtr Arg = convertEgglog(Node[I]);
    if (!Arg)
      return nullptr;
    Args.push_back(std::move(Arg));
  }
  return FPExpr::make(*Op, std::move(Args));
}

} // namespace

ExprPtr egglog::herbie::parseEgglogTerm(const std::string &Source) {
  ParseResult Parsed = parseSExprs(Source);
  if (!Parsed.Ok || Parsed.Forms.size() != 1)
    return nullptr;
  return convertEgglog(Parsed.Forms[0]);
}

size_t egglog::herbie::exprSize(const FPExpr &E) {
  size_t Total = 1;
  for (const ExprPtr &Arg : E.Args)
    Total += exprSize(*Arg);
  return Total;
}
