//===- herbie/ErrorModel.h - Bits-of-error measurement ---------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Herbie's accuracy metric (§6.2): sample input points, evaluate the
/// candidate in binary64 and the ground truth in double-double, and report
/// the average "bits of error" — log2 of the distance in ULPs between the
/// two results over the ordered encoding of doubles.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_HERBIE_ERRORMODEL_H
#define EGGLOG_HERBIE_ERRORMODEL_H

#include "herbie/FPExpr.h"

#include <cstdint>
#include <vector>

namespace egglog {
namespace herbie {

/// A variable range for sampling.
struct VarRange {
  std::string Name;
  double Lo = 0;
  double Hi = 1;
};

/// Distance between two doubles in units in the last place, over the
/// monotone ordered mapping of the binary64 encoding. NaNs are infinitely
/// far from everything.
uint64_t ulpDistance(double A, double B);

/// log2(1 + ulpDistance): 0 bits when exact, up to ~64 when sign/magnitude
/// are entirely wrong.
double bitsOfError(double Approx, double Exact);

/// A set of sampled valid input points with their ground-truth values.
struct SampleSet {
  std::vector<Env> Points;
  std::vector<double> Exact;
};

/// Samples \p Count points from the ranges, keeping only points where the
/// ground truth of \p E is finite. Deterministic in \p Seed.
SampleSet samplePoints(const FPExpr &E, const std::vector<VarRange> &Ranges,
                       unsigned Count, uint32_t Seed);

/// Average bits of error of \p Candidate against precomputed ground truth.
double averageError(const FPExpr &Candidate, const SampleSet &Samples);

} // namespace herbie
} // namespace egglog

#endif // EGGLOG_HERBIE_ERRORMODEL_H
