//===- herbie/ErrorModel.cpp - Bits-of-error measurement ---------------------===//
//
// Part of egglog-cpp. See ErrorModel.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "herbie/ErrorModel.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <random>

using namespace egglog;
using namespace egglog::herbie;

namespace {

/// Maps a double onto a monotone unsigned 64-bit line: negatives fold
/// below positives so adjacent doubles are adjacent integers.
uint64_t orderedBits(double Value) {
  uint64_t Bits = std::bit_cast<uint64_t>(Value);
  if (Bits >> 63)
    return ~Bits;
  return Bits | (1ull << 63);
}

} // namespace

uint64_t egglog::herbie::ulpDistance(double A, double B) {
  if (std::isnan(A) || std::isnan(B))
    return UINT64_MAX;
  if (A == B)
    return 0;
  uint64_t Oa = orderedBits(A), Ob = orderedBits(B);
  return Oa > Ob ? Oa - Ob : Ob - Oa;
}

double egglog::herbie::bitsOfError(double Approx, double Exact) {
  uint64_t Distance = ulpDistance(Approx, Exact);
  if (Distance == UINT64_MAX)
    return 64.0;
  return std::log2(1.0 + static_cast<double>(Distance));
}

SampleSet egglog::herbie::samplePoints(const FPExpr &E,
                                       const std::vector<VarRange> &Ranges,
                                       unsigned Count, uint32_t Seed) {
  std::mt19937_64 Rng(Seed);
  SampleSet Samples;
  unsigned Attempts = 0;
  while (Samples.Points.size() < Count && Attempts < Count * 20) {
    ++Attempts;
    Env Point;
    for (const VarRange &Range : Ranges) {
      // Mix uniform and log-uniform sampling so both magnitudes and
      // cancellation-prone nearby values appear, as Herbie's sampler does.
      std::uniform_real_distribution<double> Uniform(Range.Lo, Range.Hi);
      double Value = Uniform(Rng);
      if (Range.Lo > 0 && (Rng() & 1)) {
        std::uniform_real_distribution<double> LogU(std::log(Range.Lo),
                                                    std::log(Range.Hi));
        Value = std::exp(LogU(Rng));
      }
      Point[Range.Name] = Value;
    }
    DoubleDouble Exact = evalExact(E, Point);
    if (!Exact.isFinite())
      continue;
    Samples.Points.push_back(std::move(Point));
    Samples.Exact.push_back(Exact.toDouble());
  }
  return Samples;
}

double egglog::herbie::averageError(const FPExpr &Candidate,
                                    const SampleSet &Samples) {
  if (Samples.Points.empty())
    return 0;
  double Total = 0;
  for (size_t I = 0; I < Samples.Points.size(); ++I) {
    double Approx = evalDouble(Candidate, Samples.Points[I]);
    Total += bitsOfError(Approx, Samples.Exact[I]);
  }
  return Total / static_cast<double>(Samples.Points.size());
}
