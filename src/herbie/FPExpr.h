//===- herbie/FPExpr.h - Floating-point expression language ----*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-expression language of mini-Herbie (§6.2): the operators
/// Herbie's motivating examples need (+ - * / neg sqrt cbrt fabs fma),
/// numeric constants and named variables. Expressions evaluate both in
/// binary64 (the candidate implementation) and in double-double (the
/// high-precision ground truth), and print as egglog `Math` terms.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_HERBIE_FPEXPR_H
#define EGGLOG_HERBIE_FPEXPR_H

#include "support/DoubleDouble.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace egglog {
namespace herbie {

/// Operator kinds of the expression language.
enum class OpKind : uint8_t {
  Num,  ///< Constant (Constant field).
  Var,  ///< Named input (Name field).
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Sqrt,
  Cbrt,
  Fabs,
  Fma, ///< fma(a, b, c) = a*b + c with one rounding.
};

struct FPExpr;
using ExprPtr = std::shared_ptr<const FPExpr>;

/// An immutable expression tree node.
struct FPExpr {
  OpKind Op;
  double Constant = 0;
  std::string Name;
  std::vector<ExprPtr> Args;

  static ExprPtr num(double Value);
  static ExprPtr var(const std::string &Name);
  static ExprPtr make(OpKind Op, std::vector<ExprPtr> Args);

  /// Number of operator arguments expected for each kind.
  static unsigned arity(OpKind Op);
};

/// An assignment of input variables.
using Env = std::map<std::string, double>;

/// Evaluates in binary64 (rounding at every step). May return NaN/Inf.
double evalDouble(const FPExpr &E, const Env &Inputs);

/// Evaluates in double-double (the ground-truth precision).
DoubleDouble evalExact(const FPExpr &E, const Env &Inputs);

/// Collects the distinct variable names in an expression.
std::vector<std::string> freeVariables(const FPExpr &E);

/// Parses the s-expression surface syntax, e.g.
/// "(- (sqrt (+ x 1)) (sqrt x))". Bare symbols are variables; the operator
/// names are + - * / neg sqrt cbrt fabs fma. Returns nullptr on error.
ExprPtr parseFPExpr(const std::string &Source);

/// Prints in the surface syntax.
std::string toSurface(const FPExpr &E);

/// Prints as an egglog `Math` term, with constants as exact rationals:
/// (Sub (Sqrt (Add (Var "x") (Num (rational 1 1)))) (Sqrt (Var "x"))).
std::string toEgglogTerm(const FPExpr &E);

/// Parses a term printed by egglog extraction back into an expression.
/// Accepts (Num (rational p q)) with arbitrary-precision p/q.
ExprPtr parseEgglogTerm(const std::string &Source);

/// Expression size (operator count), the cost model used for extraction
/// sanity checks.
size_t exprSize(const FPExpr &E);

} // namespace herbie
} // namespace egglog

#endif // EGGLOG_HERBIE_FPEXPR_H
