//===- herbie/Suite.cpp - Mini-Herbie benchmark suite ------------------------===//
//
// Part of egglog-cpp. The benchmark suite for the §6.2 case study: a mini
// version of Herbie's 289-benchmark FPBench suite restricted to the
// operators mini-Herbie supports. It includes the paper's motivating
// kernels — the cbrt cancellation `3sqrt(v+1) - 3sqrt(v)` that needs the
// not-equal analysis, and the `9x^4 - y^2(y^2 - 2)` input whose solution
// needs an algebraic rearrangement and fma.
//
//===----------------------------------------------------------------------===//

#include "herbie/Herbie.h"

using namespace egglog;
using namespace egglog::herbie;

namespace {

Benchmark make(const std::string &Name, const std::string &Expr,
               std::vector<VarRange> Ranges) {
  return Benchmark{Name, Expr, std::move(Ranges)};
}

VarRange range(const char *Name, double Lo, double Hi) {
  return VarRange{Name, Lo, Hi};
}

std::vector<Benchmark> buildSuite() {
  std::vector<Benchmark> Suite;

  //=== Cancellation kernels (the classic Herbie wins) ====================
  Suite.push_back(make("sqrt-add-one", "(- (sqrt (+ x 1)) (sqrt x))",
                       {range("x", 1.0, 1e12)}));
  Suite.push_back(make("sqrt-add-one-small", "(- (sqrt (+ x 1)) (sqrt x))",
                       {range("x", 1.0, 1e6)}));
  Suite.push_back(make("sqrt-sub-one", "(- (sqrt x) (sqrt (- x 1)))",
                       {range("x", 2.0, 1e12)}));
  Suite.push_back(make("cbrt-add-one", "(- (cbrt (+ v 1)) (cbrt v))",
                       {range("v", 1.0, 1e12)}));
  Suite.push_back(make("cbrt-add-one-huge", "(- (cbrt (+ v 1)) (cbrt v))",
                       {range("v", 1e6, 1e15)}));
  Suite.push_back(make("sqrt-diff", "(- (sqrt (+ x 2)) (sqrt (+ x 1)))",
                       {range("x", 1.0, 1e10)}));
  Suite.push_back(make("sum-cancel", "(- (+ x y) x)",
                       {range("x", 1e8, 1e12), range("y", 1.0, 10.0)}));
  Suite.push_back(make("sum-cancel-deep", "(- (- (+ x y) x) y)",
                       {range("x", 1e8, 1e12), range("y", 1.0, 10.0)}));
  Suite.push_back(make("sq-cancel", "(- (* (+ x e) (+ x e)) (* x x))",
                       {range("x", 1e4, 1e8), range("e", 0.001, 1.0)}));

  //=== Division and fraction rules (Fig. 9a family) ======================
  Suite.push_back(make("x-over-x", "(/ (+ x 1) (+ x 1))",
                       {range("x", 0.5, 100.0)}));
  Suite.push_back(make("frac-mul", "(/ (* a b) c)",
                       {range("a", 1e-3, 1e3), range("b", 1e-3, 1e3),
                        range("c", 0.5, 2.0)}));
  Suite.push_back(make("frac-cancel", "(* b (/ a b))",
                       {range("a", 1.0, 1e6), range("b", 0.5, 1e6)}));
  Suite.push_back(make("recip-diff", "(- (/ 1 x) (/ 1 (+ x 1)))",
                       {range("x", 1.0, 1e8)}));
  Suite.push_back(make("div-sum", "(/ (+ a b) b)",
                       {range("a", 1e-6, 1.0), range("b", 1e6, 1e12)}));
  Suite.push_back(make("ratio-shift", "(/ (+ x 1) (- x 1))",
                       {range("x", 2.0, 1e6)}));

  //=== Polynomials, fma opportunities ====================================
  Suite.push_back(
      make("paper-fma", // the paper's far-left outlier input
           "(- (* 9 (* x (* x (* x x)))) (* (* y y) (- (* y y) 2)))",
           {range("x", 0.1, 10.0), range("y", 0.1, 10.0)}));
  Suite.push_back(make("poly-horner", "(+ (* x (+ (* x (+ (* x a) b)) c)) d)",
                       {range("x", -10.0, 10.0), range("a", 0.5, 2.0),
                        range("b", 0.5, 2.0), range("c", 0.5, 2.0),
                        range("d", 0.5, 2.0)}));
  Suite.push_back(make("fma-candidate", "(+ (* a b) c)",
                       {range("a", 1e-8, 1e8), range("b", 1e-8, 1e8),
                        range("c", 1e-8, 1e8)}));
  Suite.push_back(make("fma-cancel", "(+ (* a b) (neg (* a b)))",
                       {range("a", 1.0, 1e8), range("b", 1.0, 1e8)}));
  Suite.push_back(make("quartic", "(* x (* x (* x x)))",
                       {range("x", 0.1, 100.0)}));
  Suite.push_back(make("diff-squares", "(/ (- (* x x) (* y y)) (- x y))",
                       {range("x", 2.0, 1e6), range("y", 1.0, 1.9)}));

  //=== Square roots and absolute values ==================================
  Suite.push_back(make("sqrt-square", "(* (sqrt x) (sqrt x))",
                       {range("x", 0.001, 1e9)}));
  Suite.push_back(make("sqrt-ratio", "(/ (sqrt (+ x 1)) (sqrt x))",
                       {range("x", 1.0, 1e12)}));
  Suite.push_back(make("hypot-ish", "(sqrt (+ (* x x) (* y y)))",
                       {range("x", 1e-3, 1e3), range("y", 1e-3, 1e3)}));
  Suite.push_back(make("fabs-sub", "(fabs (- x y))",
                       {range("x", 1.0, 100.0), range("y", 1.0, 100.0)}));
  Suite.push_back(make("sqrt-of-square", "(sqrt (* x x))",
                       {range("x", 0.5, 1e8)}));
  Suite.push_back(make("cbrt-cube", "(* (cbrt x) (* (cbrt x) (cbrt x)))",
                       {range("x", 0.5, 1e9)}));

  //=== Mixed arithmetic ===================================================
  Suite.push_back(make("midpoint", "(/ (+ a b) 2)",
                       {range("a", 1e8, 1e12), range("b", 1e8, 1e12)}));
  Suite.push_back(make("weighted-sum", "(+ (* 0.25 a) (* 0.75 b))",
                       {range("a", 1.0, 1e6), range("b", 1.0, 1e6)}));
  Suite.push_back(make("three-sum", "(+ a (+ b c))",
                       {range("a", 1e10, 1e12), range("b", 1.0, 10.0),
                        range("c", 1e-6, 1e-3)}));
  Suite.push_back(make("neg-chain", "(neg (neg (neg x)))",
                       {range("x", -100.0, 100.0)}));
  Suite.push_back(make("sub-neg", "(- x (neg y))",
                       {range("x", 1.0, 100.0), range("y", 1.0, 100.0)}));
  Suite.push_back(make("distribute-in", "(* a (+ b c))",
                       {range("a", 1e-4, 1e4), range("b", 1e6, 1e9),
                        range("c", 1e-9, 1e-6)}));
  Suite.push_back(make("factor-out", "(+ (* a b) (* a c))",
                       {range("a", 1e-4, 1e4), range("b", 1e2, 1e6),
                        range("c", 1e2, 1e6)}));

  //=== Deeper cancellation compositions ==================================
  Suite.push_back(make("nested-sqrt-cancel",
                       "(- (sqrt (+ (* x x) 1)) x)",
                       {range("x", 1e3, 1e9)}));
  Suite.push_back(make("sqrt-sum-cancel",
                       "(- (sqrt (+ x y)) (sqrt x))",
                       {range("x", 1e8, 1e12), range("y", 0.1, 10.0)}));
  Suite.push_back(make("cbrt-shifted",
                       "(- (cbrt (+ v 2)) (cbrt (+ v 1)))",
                       {range("v", 1.0, 1e12)}));
  Suite.push_back(make("double-diff",
                       "(- (- (sqrt (+ x 2)) (sqrt (+ x 1))) "
                       "(- (sqrt (+ x 1)) (sqrt x)))",
                       {range("x", 1.0, 1e8)}));
  Suite.push_back(make("ratio-of-diffs",
                       "(/ (- (sqrt (+ x 1)) (sqrt x)) "
                       "(- (cbrt (+ x 1)) (cbrt x)))",
                       {range("x", 1.0, 1e8)}));

  //=== Expressions the rules cannot improve (error diff should be ~0) ====
  Suite.push_back(make("plain-add", "(+ x y)",
                       {range("x", 1.0, 100.0), range("y", 1.0, 100.0)}));
  Suite.push_back(make("plain-mul", "(* x y)",
                       {range("x", 1.0, 100.0), range("y", 1.0, 100.0)}));
  Suite.push_back(make("plain-div", "(/ x y)",
                       {range("x", 1.0, 100.0), range("y", 1.0, 100.0)}));
  Suite.push_back(make("plain-sqrt", "(sqrt x)", {range("x", 0.1, 1e10)}));
  Suite.push_back(make("plain-cbrt", "(cbrt x)",
                       {range("x", -1e10, 1e10)}));
  Suite.push_back(make("const-fold", "(* (+ 1 2) x)",
                       {range("x", 1.0, 100.0)}));

  //=== Range variants of the cancellation kernels ========================
  Suite.push_back(make("sqrt-add-one-tiny", "(- (sqrt (+ x 1)) (sqrt x))",
                       {range("x", 0.001, 1.0)}));
  Suite.push_back(make("cbrt-add-one-small", "(- (cbrt (+ v 1)) (cbrt v))",
                       {range("v", 0.01, 100.0)}));
  Suite.push_back(make("recip-diff-large", "(- (/ 1 x) (/ 1 (+ x 1)))",
                       {range("x", 1e6, 1e12)}));
  Suite.push_back(make("sq-cancel-tight", "(- (* (+ x e) (+ x e)) (* x x))",
                       {range("x", 1e6, 1e10), range("e", 1e-6, 1e-3)}));
  Suite.push_back(make("sum-cancel-extreme", "(- (+ x y) x)",
                       {range("x", 1e12, 1e15), range("y", 1e-3, 1.0)}));
  Suite.push_back(make("diff-squares-near", "(/ (- (* x x) (* y y)) (- x y))",
                       {range("x", 10.0, 1e4), range("y", 9.0, 9.99)}));

  return Suite;
}

} // namespace

const std::vector<Benchmark> &egglog::herbie::herbieSuite() {
  static const std::vector<Benchmark> Suite = buildSuite();
  return Suite;
}
