//===- herbie/Rules.h - Mini-Herbie rewrite rules and analyses -*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the egglog program implementing mini-Herbie's rewrite system
/// (§6.2): the `Math` datatype, the interval analysis of Fig. 10, the
/// not-equal analysis, and the rewrite rules. In *sound* mode the rules
/// that are only conditionally valid (x/x -> 1, sqrt(x)^2 -> x, the Fig. 9
/// flip rules) carry `:when` guards discharged by the analyses; in
/// *unsound* mode (the ruleset Herbie historically used) the same rules
/// fire unguarded and the pipeline relies on post-hoc validation.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_HERBIE_RULES_H
#define EGGLOG_HERBIE_RULES_H

#include <string>

namespace egglog {
namespace herbie {

/// Returns the complete egglog program text (datatype + analyses + rules).
/// With \p Sound, analyses and guarded rewrites are emitted; without, the
/// unsound unguarded ruleset is emitted and the analyses are omitted
/// (matching Herbie-without-egglog). The program declares two rulesets:
/// `analysis` (interval + not-equal lattice rules) and `rewrites` (the
/// term-growing equality-saturation rules), for phased scheduling.
std::string herbieProgramText(bool Sound);

/// Returns the (run-schedule ...) command text for \p Phases phases of the
/// two-ruleset alternation: saturate `analysis`, then one iteration of
/// `rewrites`, repeated.
std::string herbiePhasedSchedule(unsigned Phases);

} // namespace herbie
} // namespace egglog

#endif // EGGLOG_HERBIE_RULES_H
