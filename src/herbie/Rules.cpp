//===- herbie/Rules.cpp - Mini-Herbie rewrite rules and analyses -------------===//
//
// Part of egglog-cpp. See Rules.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "herbie/Rules.h"

using namespace egglog;

namespace {

/// The Math datatype shared by both modes, plus the two rulesets the
/// phased schedule alternates between: `analysis` (the interval and
/// not-equal lattice rules, cheap and convergent, saturated between
/// phases) and `rewrites` (the term-growing equality-saturation rules,
/// run one iteration per phase under BackOff).
const char *Datatype = R"(
  (datatype Math
    (MNum Rational)
    (MVar String)
    (MAdd Math Math)
    (MSub Math Math)
    (MMul Math Math)
    (MDiv Math Math)
    (MNeg Math)
    (MSqrt Math)
    (MCbrt Math)
    (MFabs Math)
    (MFma Math Math Math))
  (ruleset analysis)
  (ruleset rewrites)
)";

/// The interval analysis of Fig. 10: lo is a max-lattice, hi a min-lattice,
/// both keyed on e-classes so unions tighten the intervals. Endpoints live
/// on a capped dyadic grid extended with +/-inf: the rounding primitives
/// (round-lo/round-hi, sqrt-*/cbrt-*) saturate outward once a magnitude's
/// representation would exceed 1024 bits, so deep product terms (x^2, x^4,
/// ... from the flip rewrites) analyze in bounded time while keeping a
/// sound — merely loose — bound instead of dropping the fact. Guards like
/// (> lb 0) never fire off a saturated bound unsoundly: saturation only
/// ever widens the interval.
const char *IntervalAnalysis = R"(
  (function lo (Math) Rational :merge (max old new))
  (function hi (Math) Rational :merge (min old new))

  (rule ((= e (MNum n))) ((set (lo e) n) (set (hi e) n))
        :ruleset analysis)

  (rule ((= e (MAdd a b)) (= (lo a) la) (= (lo b) lb))
        ((set (lo e) (round-lo (+ la lb))))
        :ruleset analysis)
  (rule ((= e (MAdd a b)) (= (hi a) ha) (= (hi b) hb))
        ((set (hi e) (round-hi (+ ha hb))))
        :ruleset analysis)

  (rule ((= e (MSub a b)) (= (lo a) la) (= (hi b) hb))
        ((set (lo e) (round-lo (- la hb))))
        :ruleset analysis)
  (rule ((= e (MSub a b)) (= (hi a) ha) (= (lo b) lb))
        ((set (hi e) (round-hi (- ha lb))))
        :ruleset analysis)

  (rule ((= e (MNeg a)) (= (hi a) ha)) ((set (lo e) (neg ha)))
        :ruleset analysis)
  (rule ((= e (MNeg a)) (= (lo a) la)) ((set (hi e) (neg la)))
        :ruleset analysis)

  (rule ((= e (MMul a b))
         (= (lo a) la) (= (hi a) ha) (= (lo b) lb) (= (hi b) hb))
        ((let p1 (* la lb)) (let p2 (* la hb))
         (let p3 (* ha lb)) (let p4 (* ha hb))
         (set (lo e) (round-lo (min (min p1 p2) (min p3 p4))))
         (set (hi e) (round-hi (max (max p1 p2) (max p3 p4)))))
        :ruleset analysis)

  ;; Division propagates only when the denominator interval excludes zero.
  (rule ((= e (MDiv a b))
         (= (lo a) la) (= (hi a) ha) (= (lo b) lb) (= (hi b) hb)
         (> lb (rational 0 1)))
        ((let p1 (/ la lb)) (let p2 (/ la hb))
         (let p3 (/ ha lb)) (let p4 (/ ha hb))
         (set (lo e) (round-lo (min (min p1 p2) (min p3 p4))))
         (set (hi e) (round-hi (max (max p1 p2) (max p3 p4)))))
        :ruleset analysis)
  (rule ((= e (MDiv a b))
         (= (lo a) la) (= (hi a) ha) (= (lo b) lb) (= (hi b) hb)
         (< hb (rational 0 1)))
        ((let p1 (/ la lb)) (let p2 (/ la hb))
         (let p3 (/ ha lb)) (let p4 (/ ha hb))
         (set (lo e) (round-lo (min (min p1 p2) (min p3 p4))))
         (set (hi e) (round-hi (max (max p1 p2) (max p3 p4)))))
        :ruleset analysis)

  ;; Fig. 10 verbatim: sqrt of anything is non-negative, and sqrt is
  ;; monotone, so bounds propagate through guaranteed rational bounds.
  (rule ((= e (MSqrt a)))
        ((set (lo e) (rational 0 1)))
        :ruleset analysis)
  (rule ((= e (MSqrt a)) (= (lo a) la) (>= la (rational 0 1)))
        ((set (lo e) (sqrt-lo la)))
        :ruleset analysis)
  (rule ((= e (MSqrt a)) (= (hi a) ha) (>= ha (rational 0 1)))
        ((set (hi e) (sqrt-hi ha)))
        :ruleset analysis)

  ;; cbrt is monotone on all of R.
  (rule ((= e (MCbrt a)) (= (lo a) la)) ((set (lo e) (cbrt-lo la)))
        :ruleset analysis)
  (rule ((= e (MCbrt a)) (= (hi a) ha)) ((set (hi e) (cbrt-hi ha)))
        :ruleset analysis)

  (rule ((= e (MFabs a))) ((set (lo e) (rational 0 1)))
        :ruleset analysis)
  (rule ((= e (MFabs a)) (= (lo a) la) (= (hi a) ha))
        ((set (hi e) (max (abs la) (abs ha))))
        :ruleset analysis)
  (rule ((= e (MFabs a)) (= (lo a) la) (>= la (rational 0 1)))
        ((set (lo e) la))
        :ruleset analysis)
)";

/// The "not equals to" analysis (§6.2): derives disequalities from
/// intervals and propagates them through injective operators. `nonzero`
/// feeds the division guards.
const char *NeqAnalysis = R"(
  (relation neq (Math Math))
  (relation nonzero (Math))

  ;; A term whose interval excludes zero is nonzero.
  (rule ((= (lo e) l) (> l (rational 0 1))) ((nonzero e))
        :ruleset analysis)
  (rule ((= (hi e) h) (< h (rational 0 1))) ((nonzero e))
        :ruleset analysis)

  ;; x - y bounded away from zero proves x != y.
  (rule ((= e (MSub x y)) (= (lo e) l) (> l (rational 0 1))) ((neq x y))
        :ruleset analysis)
  (rule ((= e (MSub x y)) (= (hi e) h) (< h (rational 0 1))) ((neq x y))
        :ruleset analysis)
  (rule ((neq x y)) ((neq y x))
        :ruleset analysis)

  ;; Injectivity: a != b implies cbrt a != cbrt b and sqrt a != sqrt b
  ;; (the paper's 3sqrt(v+1) != 3sqrt(v) step).
  (rule ((neq x y) (= a (MCbrt x)) (= b (MCbrt y))) ((neq a b))
        :ruleset analysis)
  (rule ((neq x y) (= a (MSqrt x)) (= b (MSqrt y))) ((neq a b))
        :ruleset analysis)

  ;; x != y makes x - y nonzero (used by the flip guards).
  (rule ((neq x y) (= e (MSub x y))) ((nonzero e))
        :ruleset analysis)

  ;; Demand: comparing two roots requires comparing their radicands, so
  ;; materialize the difference term the interval rules will then bound
  ;; (this is how 3sqrt(v+1) - 3sqrt(v) obtains v+1 != v: the rewrite
  ;; chain proves (v+1) - v = 1, whose interval excludes zero).
  (rule ((= e (MSub (MCbrt x) (MCbrt y)))) ((MSub x y))
        :ruleset analysis)
  (rule ((= e (MSub (MSqrt x) (MSqrt y)))) ((MSub x y))
        :ruleset analysis)
)";

/// Rewrites that are sound over the reals without side conditions.
const char *SafeRewrites = R"(
  (rewrite (MAdd a b) (MAdd b a) :ruleset rewrites)
  (rewrite (MMul a b) (MMul b a) :ruleset rewrites)
  (birewrite (MAdd (MAdd a b) c) (MAdd a (MAdd b c)) :ruleset rewrites)
  (birewrite (MMul (MMul a b) c) (MMul a (MMul b c)) :ruleset rewrites)
  (birewrite (MSub a b) (MAdd a (MNeg b)) :ruleset rewrites)
  (rewrite (MNeg (MNeg a)) a :ruleset rewrites)
  (birewrite (MMul a (MAdd b c)) (MAdd (MMul a b) (MMul a c))
             :ruleset rewrites)
  (birewrite (MDiv (MMul a b) c) (MMul a (MDiv b c)) :ruleset rewrites)
  (birewrite (MDiv (MAdd a b) c) (MAdd (MDiv a c) (MDiv b c))
             :ruleset rewrites)
  (birewrite (MAdd (MMul a b) c) (MFma a b c) :ruleset rewrites)
  (rewrite (MAdd a (MNum (rational 0 1))) a :ruleset rewrites)
  (rewrite (MMul a (MNum (rational 1 1))) a :ruleset rewrites)
  (rewrite (MMul a (MNum (rational 0 1))) (MNum (rational 0 1))
           :ruleset rewrites)
  (rewrite (MNeg a) (MMul (MNum (rational -1 1)) a) :ruleset rewrites)
  (rewrite (MSub a a) (MNum (rational 0 1)) :ruleset rewrites)
  ;; cube of a cube root cancels unconditionally (odd function).
  (rewrite (MMul (MCbrt a) (MMul (MCbrt a) (MCbrt a))) a :ruleset rewrites)
  ;; constant folding through exact rationals
  (rewrite (MAdd (MNum a) (MNum b)) (MNum (+ a b)) :ruleset rewrites)
  (rewrite (MSub (MNum a) (MNum b)) (MNum (- a b)) :ruleset rewrites)
  (rewrite (MMul (MNum a) (MNum b)) (MNum (* a b)) :ruleset rewrites)
  (rewrite (MNeg (MNum a)) (MNum (neg a)) :ruleset rewrites)
  (rewrite (MDiv (MNum a) (MNum b)) (MNum (/ a b))
           :when ((!= b (rational 0 1))) :ruleset rewrites)
)";

/// The conditionally sound rewrites. %GUARD-...% placeholders are replaced
/// with real guards (sound) or dropped (unsound).
const char *GuardedRewrites = R"(
  ;; x / x -> 1, the paper's flagship example (sound iff x != 0).
  (rewrite (MDiv x x) (MNum (rational 1 1)) %GUARD-NZ-X% :ruleset rewrites)
  ;; b * (a / b) -> a (Fig. 9a's fraction family).
  (rewrite (MMul b (MDiv a b)) a %GUARD-NZ-B% :ruleset rewrites)
  ;; sqrt(x) * sqrt(x) -> x (sound iff x >= 0).
  (rewrite (MMul (MSqrt x) (MSqrt x)) x %GUARD-NONNEG-X% :ruleset rewrites)
  ;; Difference of squares: x - y -> (x^2 - y^2) / (x + y),
  ;; sound iff x + y != 0; proved from x > 0 and y >= 0 (or symmetrically).
  (rewrite (MSub x y)
           (MDiv (MSub (MMul x x) (MMul y y)) (MAdd x y))
           %GUARD-SUM-NZ% :ruleset rewrites)
  (rewrite (MSub x y)
           (MDiv (MSub (MMul x x) (MMul y y)) (MAdd x y))
           %GUARD-SUM-NZ2% :ruleset rewrites)
  ;; Fig. 9b: x - y -> (x^3 - y^3) / (x^2 + xy + y^2),
  ;; sound iff x != 0 or y != 0; x != y implies that.
  (rewrite (MSub x y)
           (MDiv (MSub (MMul x (MMul x x)) (MMul y (MMul y y)))
                 (MAdd (MMul x x) (MAdd (MMul x y) (MMul y y))))
           %GUARD-NEQ-XY% :ruleset rewrites)
)";

void replaceAll(std::string &Text, const std::string &From,
                const std::string &To) {
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
}

} // namespace

std::string egglog::herbie::herbieProgramText(bool Sound) {
  std::string Program = Datatype;
  if (Sound) {
    Program += IntervalAnalysis;
    Program += NeqAnalysis;
  }
  Program += SafeRewrites;
  std::string Guarded = GuardedRewrites;
  if (Sound) {
    replaceAll(Guarded, "%GUARD-NZ-X%", ":when ((nonzero x))");
    replaceAll(Guarded, "%GUARD-NZ-B%", ":when ((nonzero b))");
    replaceAll(Guarded, "%GUARD-NONNEG-X%",
               ":when ((= (lo x) lx) (>= lx (rational 0 1)))");
    replaceAll(Guarded, "%GUARD-SUM-NZ%",
               ":when ((= (lo x) lx) (> lx (rational 0 1)) "
               "(= (lo y) ly) (>= ly (rational 0 1)))");
    replaceAll(Guarded, "%GUARD-SUM-NZ2%",
               ":when ((= (lo y) ly) (> ly (rational 0 1)) "
               "(= (lo x) lx) (>= lx (rational 0 1)))");
    replaceAll(Guarded, "%GUARD-NEQ-XY%", ":when ((neq x y))");
  } else {
    replaceAll(Guarded, "%GUARD-NZ-X%", "");
    replaceAll(Guarded, "%GUARD-NZ-B%", "");
    replaceAll(Guarded, "%GUARD-NONNEG-X%", "");
    replaceAll(Guarded, "%GUARD-SUM-NZ%", "");
    // The second difference-of-squares copy is redundant when unguarded.
    replaceAll(Guarded,
               "(rewrite (MSub x y)\n"
               "           (MDiv (MSub (MMul x x) (MMul y y)) (MAdd x y))\n"
               "           %GUARD-SUM-NZ2% :ruleset rewrites)",
               "");
    replaceAll(Guarded, "%GUARD-NEQ-XY%", "");
  }
  Program += Guarded;
  return Program;
}

std::string egglog::herbie::herbiePhasedSchedule(unsigned Phases) {
  // One phase = saturate the cheap lattice analyses (so guards see the
  // tightest intervals/disequalities available), then grow terms by one
  // rewrite iteration. Mirrors the Herbie case study's alternation (§6).
  return "(run-schedule (repeat " + std::to_string(Phases) +
         " (saturate analysis) (run rewrites 1)))";
}
