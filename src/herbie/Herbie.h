//===- herbie/Herbie.h - Mini-Herbie improvement loop ----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-Herbie (§6.2): given a real expression and input ranges, run
/// equality saturation over the mini-Herbie ruleset, extract candidate
/// implementations from the saturated e-graph, measure each candidate's
/// accuracy against the double-double ground truth, and return the most
/// accurate. With HerbieOptions::Sound, guarded rewrites are discharged by
/// egglog analyses; otherwise the historical unsound ruleset is used and
/// the measurement step doubles as Herbie's "validate and discard".
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_HERBIE_HERBIE_H
#define EGGLOG_HERBIE_HERBIE_H

#include "herbie/ErrorModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace egglog {
namespace herbie {

/// One benchmark: a named expression with sampling ranges for its inputs.
struct Benchmark {
  std::string Name;
  /// Surface syntax, e.g. "(- (sqrt (+ x 1)) (sqrt x))".
  std::string Expr;
  std::vector<VarRange> Ranges;
};

/// Pipeline knobs.
struct HerbieOptions {
  bool Sound = true;
  unsigned Iterations = 12;
  size_t NodeLimit = 60000;
  unsigned Samples = 200;
  /// Upper bound on candidates evaluated; unsound runs naturally extract
  /// more (their root class is polluted by wrong merges) and pay for each
  /// during validation, as the paper's Herbie did.
  unsigned MaxCandidates = 48;
  uint32_t Seed = 20230415;
  double TimeoutSeconds = 0;
};

/// Result of improving one benchmark.
struct HerbieResult {
  bool Ok = false;
  std::string FailureReason;
  double InitialErrorBits = 0;
  double FinalErrorBits = 0;
  double Seconds = 0;
  std::string BestExpr;
  size_t CandidatesTried = 0;
  size_t ENodes = 0;
  unsigned IterationsRun = 0;
  /// Seconds spent selecting candidates (one cost-fixpoint refresh of the
  /// graph's persistent ExtractIndex plus MaxCandidates renderings).
  double ExtractSeconds = 0;
  /// Cost-fixpoint row relaxations performed while extracting (from the
  /// shared ExtractIndex stats; one refresh covers every candidate).
  uint64_t ExtractRowsConsidered = 0;
};

/// Runs the full pipeline on one benchmark.
HerbieResult improveExpression(const Benchmark &Bench,
                               const HerbieOptions &Options);

/// The benchmark suite (mini version of Herbie's 289-benchmark FPBench
/// suite; includes the paper's motivating kernels). Defined in Suite.cpp.
const std::vector<Benchmark> &herbieSuite();

} // namespace herbie
} // namespace egglog

#endif // EGGLOG_HERBIE_HERBIE_H
