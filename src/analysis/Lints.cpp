//===- analysis/Lints.cpp - Static program diagnostics --------------------===//
//
// Part of egglog-cpp. See Lints.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lints.h"

#include "core/EGraph.h"
#include "core/Engine.h"

#include <algorithm>
#include <unordered_set>

using namespace egglog;

std::string LintDiagnostic::render() const {
  return std::to_string(Line) + ":" + std::to_string(Col) +
         ": warning: " + Message + " [" + Check + "]";
}

namespace {

std::string ruleLabel(const Rule &R, size_t Index) {
  if (!R.Name.empty())
    return "rule '" + R.Name + "'";
  return "rule #" + std::to_string(Index + 1);
}

void diagAtRule(std::vector<LintDiagnostic> &Out, const char *Check,
                const Rule &R, std::string Message) {
  Out.push_back(LintDiagnostic{Check, std::move(Message), R.Unit, R.Line,
                               R.Col});
}

bool ranFlag(const std::vector<char> &Flags, RulesetId Rs) {
  return Rs < Flags.size() && Flags[Rs];
}

/// Non-termination risk: the rule's ruleset is driven by an unguarded
/// (run ...) and some action mints fresh ids for a function in the same
/// dependency-graph SCC as a function the query reads — each firing feeds
/// its own query new tuples, so saturation never arrives.
void lintNonTermination(std::vector<LintDiagnostic> &Out, const Engine &Eng,
                        const EGraph &Graph, const RuleGraph &RG,
                        const LintContext &Ctx) {
  for (const RuleFacts &Facts : RG.Rules) {
    const Rule &R = Eng.rule(Facts.RuleIndex);
    if (!ranFlag(Ctx.RulesetRanUnguarded, R.Ruleset))
      continue;
    for (FunctionId Mint : Facts.Mints) {
      const FunctionId *Feed = nullptr;
      for (const FunctionId &Read : Facts.Reads)
        if (RG.Funcs.sameScc(Mint, Read)) {
          Feed = &Read;
          break;
        }
      if (!Feed)
        continue;
      diagAtRule(Out, "non-termination", R,
                 ruleLabel(R, Facts.RuleIndex) + " mints fresh '" +
                     Graph.function(Mint).Decl.Name +
                     "' terms that feed its own query via '" +
                     Graph.function(*Feed).Decl.Name +
                     "'; bound the run with a count or :until");
      break;
    }
  }
}

/// Dead rules: least fixpoint of "fireable". A function is populated if it
/// has live tuples now (base facts) or a fireable rule writes it; a rule is
/// fireable once every function its query reads is populated. Rules outside
/// the fixpoint can never fire, no matter the schedule. Gated on SawAnyRun:
/// a library file with rules but no run form expects a later driver to
/// supply both facts and schedule, and flagging its rules would be noise.
void lintDeadRules(std::vector<LintDiagnostic> &Out, const Engine &Eng,
                   const EGraph &Graph, const RuleGraph &RG,
                   const LintContext &Ctx) {
  if (!Ctx.SawAnyRun)
    return;
  std::vector<char> Populated(Graph.numFunctions(), 0);
  for (FunctionId F = 0; F < Graph.numFunctions(); ++F)
    if (Graph.functionSize(F) > 0)
      Populated[F] = 1;

  std::vector<char> Fireable(RG.Rules.size(), 0);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < RG.Rules.size(); ++I) {
      if (Fireable[I])
        continue;
      const RuleFacts &Facts = RG.Rules[I];
      bool AllPopulated = true;
      for (FunctionId Read : Facts.Reads)
        if (!Populated[Read]) {
          AllPopulated = false;
          break;
        }
      if (!AllPopulated)
        continue;
      Fireable[I] = 1;
      Changed = true;
      for (FunctionId Write : Facts.Writes)
        Populated[Write] = 1;
    }
  }

  for (size_t I = 0; I < RG.Rules.size(); ++I) {
    if (Fireable[I])
      continue;
    const RuleFacts &Facts = RG.Rules[I];
    const Rule &R = Eng.rule(Facts.RuleIndex);
    FunctionId Missing = 0;
    for (FunctionId Read : Facts.Reads)
      if (!Populated[Read]) {
        Missing = Read;
        break;
      }
    diagAtRule(Out, "dead-rule", R,
               ruleLabel(R, Facts.RuleIndex) + " can never fire: '" +
                   Graph.function(Missing).Decl.Name +
                   "' has no producing rule and no facts");
  }
}

/// Unused rulesets and rules shadowed by the schedule: once the program
/// contains a run form, every named ruleset should be selected by one, and
/// rules left in the default ruleset are unreachable if nothing runs it.
void lintReachability(std::vector<LintDiagnostic> &Out, const Engine &Eng,
                      const RuleGraph &RG, const LintContext &Ctx) {
  if (!Ctx.SawAnyRun)
    return;
  for (RulesetId Rs = 1; Rs < Eng.numRulesets(); ++Rs) {
    if (ranFlag(Ctx.RulesetRan, Rs))
      continue;
    size_t Count = 0;
    for (const RuleFacts &Facts : RG.Rules)
      if (Eng.rule(Facts.RuleIndex).Ruleset == Rs)
        ++Count;
    SourceSpan Span;
    if (Rs < Ctx.RulesetDecls.size())
      Span = Ctx.RulesetDecls[Rs];
    Out.push_back(LintDiagnostic{
        "unused-ruleset",
        "ruleset '" + Eng.rulesetName(Rs) + "' is never run (" +
            std::to_string(Count) + " rule" + (Count == 1 ? "" : "s") +
            " unreachable)",
        Span.Unit, Span.Line, Span.Col});
  }
  if (!ranFlag(Ctx.RulesetRan, 0)) {
    for (const RuleFacts &Facts : RG.Rules) {
      const Rule &R = Eng.rule(Facts.RuleIndex);
      if (R.Ruleset != 0)
        continue;
      diagAtRule(Out, "shadowed-rule", R,
                 ruleLabel(R, Facts.RuleIndex) +
                     " is in the default ruleset, which no (run ...) or "
                     "(run-schedule ...) form selects");
    }
  }
}

/// Write-only variables: a let-bound action variable that no later
/// expression reads binds a value for nothing (its side effect of
/// inserting terms still happens, which is usually the confusion). Query
/// variables are excluded — their binding occurrence in an atom is itself
/// a use — and unbound action variables are already type errors.
/// Underscore-prefixed names are exempt by convention.
void lintUnusedVariables(std::vector<LintDiagnostic> &Out, const Engine &Eng,
                         const RuleGraph &RG) {
  for (const RuleFacts &Facts : RG.Rules) {
    const Rule &R = Eng.rule(Facts.RuleIndex);
    for (uint32_t Slot = R.Body.NumVars; Slot < R.VarNames.size(); ++Slot) {
      const std::string &Name = R.VarNames[Slot];
      if (Name.empty() || Name[0] == '_')
        continue;
      uint32_t Uses =
          Slot < Facts.SlotUses.size() ? Facts.SlotUses[Slot] : 0;
      if (Uses == 0)
        diagAtRule(Out, "unused-variable", R,
                   "let-bound variable '" + Name + "' in " +
                       ruleLabel(R, Facts.RuleIndex) + " is never used");
    }
  }
}

/// True if a :merge expression is idempotent-shaped: merge(x, x) == x holds
/// structurally. Selecting one of the operands trivially qualifies, as does
/// a single application of a known-idempotent binary primitive to the two
/// merge slots (old = slot 0, new = slot 1).
bool mergeLooksIdempotent(const TypedExpr &Merge, const EGraph &Graph) {
  if (Merge.ExprKind == TypedExpr::Kind::Var)
    return true;
  if (Merge.ExprKind != TypedExpr::Kind::PrimCall || Merge.Args.size() != 2)
    return false;
  const std::string &Name = Graph.primitives().get(Merge.Index).Name;
  static const char *Idempotent[] = {"min", "max", "and", "or",
                                     "set-union", "set-intersect"};
  bool Known = false;
  for (const char *Candidate : Idempotent)
    Known |= Name == Candidate;
  if (!Known)
    return false;
  const TypedExpr &A = Merge.Args[0], &B = Merge.Args[1];
  return A.ExprKind == TypedExpr::Kind::Var &&
         B.ExprKind == TypedExpr::Kind::Var && A.Index != B.Index;
}

/// Merge-lattice warnings: a function whose :merge is not idempotent-shaped
/// and that some rule reads. Re-merging equal values then changes the
/// stored output (e.g. (+ old new) doubles it), so rules reading the
/// function observe values that depend on merge order and count —
/// saturation and confluence are both off the table.
void lintMergeLattice(std::vector<LintDiagnostic> &Out, const EGraph &Graph,
                      const RuleGraph &RG) {
  std::unordered_set<FunctionId> ReadByRules;
  for (const RuleFacts &Facts : RG.Rules)
    ReadByRules.insert(Facts.Reads.begin(), Facts.Reads.end());
  for (FunctionId F = 0; F < Graph.numFunctions(); ++F) {
    const FunctionDecl &Decl = Graph.function(F).Decl;
    if (!Decl.MergeExpr || !ReadByRules.count(F))
      continue;
    if (mergeLooksIdempotent(*Decl.MergeExpr, Graph))
      continue;
    Out.push_back(LintDiagnostic{
        "merge-not-idempotent",
        "function '" + Decl.Name +
            "' is read by rules but its :merge is not idempotent-shaped "
            "(e.g. (max old new)); merged values depend on merge order",
        Decl.Unit, Decl.Line, Decl.Col});
  }
}

} // namespace

std::vector<LintDiagnostic> egglog::runLints(const Engine &Eng,
                                             const EGraph &Graph,
                                             const RuleGraph &RG,
                                             const LintContext &Ctx) {
  std::vector<LintDiagnostic> Out;
  lintNonTermination(Out, Eng, Graph, RG, Ctx);
  lintDeadRules(Out, Eng, Graph, RG, Ctx);
  lintReachability(Out, Eng, RG, Ctx);
  lintUnusedVariables(Out, Eng, RG);
  lintMergeLattice(Out, Graph, RG);
  return Out;
}
