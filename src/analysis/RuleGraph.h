//===- analysis/RuleGraph.h - Rule/function dependency graph ---*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md ("Static program analysis") for the
// system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static dependency structure of a declared rule program, computed
/// without executing anything: per-rule read/write/mint sets over the typed
/// ASTs, and the induced function-level precedence graph with its strongly
/// connected components and stratification. This is the classic Datalog
/// predicate dependency graph, extended with "mints" (action positions that
/// can allocate fresh ids) so termination diagnostics can tell growth from
/// mere derivation. The lints (analysis/Lints.h) consume it, and ROADMAP
/// item 5 (demand/magic-set transformation) is expected to reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_ANALYSIS_RULEGRAPH_H
#define EGGLOG_ANALYSIS_RULEGRAPH_H

#include "core/Ast.h"
#include "core/Value.h"

#include <cstdint>
#include <vector>

namespace egglog {

class EGraph;
class Engine;

/// A directed graph over dense uint32_t node ids with Tarjan SCC
/// condensation and a stratification (topological layering of the
/// condensation). Built either from explicit edges (unit tests) or by
/// buildRuleGraph below.
class DepGraph {
public:
  explicit DepGraph(size_t NumNodes = 0) { resize(NumNodes); }

  void resize(size_t NumNodes);
  size_t numNodes() const { return Succ.size(); }

  /// Adds the edge From -> To ("To depends on From"). Duplicate edges and
  /// self-loops are allowed; a self-loop makes the node's SCC cyclic.
  void addEdge(uint32_t From, uint32_t To);

  /// Computes SCCs and strata. Call once after all edges are added; the
  /// accessors below are valid only afterwards.
  void analyze();

  size_t numSccs() const { return Members.size(); }
  uint32_t sccOf(uint32_t Node) const { return SccId[Node]; }
  bool sameScc(uint32_t A, uint32_t B) const { return SccId[A] == SccId[B]; }
  const std::vector<uint32_t> &sccMembers(uint32_t Scc) const {
    return Members[Scc];
  }
  /// True if the SCC contains a cycle: two or more members, or a single
  /// member with a self-loop. A rule reading and writing functions of a
  /// cyclic SCC is recursive.
  bool sccIsCyclic(uint32_t Scc) const { return Cyclic[Scc] != 0; }

  /// Stratum of a node: 0 for nodes whose SCC has no incoming cross-SCC
  /// edge, else 1 + the maximum stratum among predecessor SCCs. This is the
  /// longest-path layering of the condensation DAG.
  unsigned stratumOf(uint32_t Node) const { return Strata[SccId[Node]]; }
  unsigned numStrata() const { return NumStrata; }

private:
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<uint32_t> SccId;
  std::vector<std::vector<uint32_t>> Members;
  std::vector<char> Cyclic;
  std::vector<unsigned> Strata;
  unsigned NumStrata = 0;
};

/// Static facts about one declared rule, extracted from its typed AST.
struct RuleFacts {
  /// Index of the rule in Engine's rule table.
  size_t RuleIndex = 0;
  /// Functions the query reads (atom functions), sorted and deduplicated.
  std::vector<FunctionId> Reads;
  /// Functions the actions may insert into: (set ...) targets plus every
  /// function call anywhere in an action expression (get-or-default creates
  /// the entry when absent). Sorted and deduplicated.
  std::vector<FunctionId> Writes;
  /// The subset of action-side function calls that can allocate a fresh id
  /// each firing: id-sorted output, no :default, at least one key column,
  /// and not the captured root of a (union lhs rhs) action (a rewrite's
  /// root is matched, not minted). Sorted and deduplicated.
  std::vector<FunctionId> Mints;
  /// Occurrence count per variable slot across the whole typed rule
  /// (query atoms, primitive computations, and action expressions; a let's
  /// defining slot does not count as an occurrence of itself).
  std::vector<uint32_t> SlotUses;
};

/// The full static picture of a rule program: the function-level dependency
/// graph (an edge f -> g for every rule that reads f and writes g) with
/// SCCs/strata computed, plus per-rule facts parallel to the engine's rule
/// table.
struct RuleGraph {
  DepGraph Funcs;
  std::vector<RuleFacts> Rules;
};

/// Extracts RuleFacts from one rule against the declarations in \p Graph.
RuleFacts computeRuleFacts(const Rule &R, const EGraph &Graph);

/// Builds the dependency graph over every rule currently declared in
/// \p Eng. Nodes of the function graph are FunctionIds of \p Graph.
RuleGraph buildRuleGraph(const Engine &Eng, const EGraph &Graph);

} // namespace egglog

#endif // EGGLOG_ANALYSIS_RULEGRAPH_H
