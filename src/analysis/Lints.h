//===- analysis/Lints.h - Static program diagnostics -----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md ("Static program analysis") for the
// soundness argument behind each check.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lint checks over the rule dependency graph (analysis/RuleGraph.h):
/// non-termination risk, dead rules, unused rulesets and schedule-shadowed
/// rules, write-only (never-read) let variables, and non-idempotent :merge
/// expressions. Every diagnostic carries a check id (stable kebab-case,
/// rendered as "[check-name]"), a source span, and the source-unit label it
/// was declared under, so the egglog_lint / egglog_run --lint tools can
/// print "file:line:col: warning: message [check]" lines matching the
/// error-reporting contract.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_ANALYSIS_LINTS_H
#define EGGLOG_ANALYSIS_LINTS_H

#include "analysis/RuleGraph.h"

#include <string>
#include <vector>

namespace egglog {

class EGraph;
class Engine;

/// One lint finding. Line/Col are 1-based; 0 means no source location (a
/// rule or declaration built from C++).
struct LintDiagnostic {
  /// Stable check id: "non-termination", "dead-rule", "unused-ruleset",
  /// "shadowed-rule", "unused-variable", or "merge-not-idempotent".
  std::string Check;
  std::string Message;
  /// Source-unit label (file path) active when the offending form was
  /// declared; empty when unknown.
  std::string Unit;
  unsigned Line = 0;
  unsigned Col = 0;

  /// The span + message part of the diagnostic line, without the unit
  /// label: "line:col: warning: message [check]".
  std::string render() const;
};

/// A source location recorded outside the rule table (ruleset declarations).
struct SourceSpan {
  std::string Unit;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Schedule facts the Frontend records while interpreting a program; the
/// reachability lints need to know which rulesets any (run ...) /
/// (run-schedule ...) form selects, and whether a run was "unguarded"
/// (no explicit iteration bound and no :until goal).
struct LintContext {
  /// Indexed by RulesetId: the ruleset was selected by some run form.
  std::vector<char> RulesetRan;
  /// Indexed by RulesetId: selected by a top-level (run ...) with neither
  /// an explicit count nor :until — run-to-saturation intent, the only
  /// shape where unbounded growth turns into non-termination.
  std::vector<char> RulesetRanUnguarded;
  /// False until the program contains any run form; the reachability lints
  /// stay silent on pure library files that declare rules for a later
  /// driver to run.
  bool SawAnyRun = false;
  /// Declaration spans per RulesetId (index 0, the default ruleset, has no
  /// declaring form and stays zero).
  std::vector<SourceSpan> RulesetDecls;
};

/// Runs every lint over the declared program. \p RG must have been built
/// from the same Engine/EGraph pair. Diagnostics come out grouped by check
/// in the order above, each group in declaration order.
std::vector<LintDiagnostic> runLints(const Engine &Eng, const EGraph &Graph,
                                     const RuleGraph &RG,
                                     const LintContext &Ctx);

} // namespace egglog

#endif // EGGLOG_ANALYSIS_LINTS_H
