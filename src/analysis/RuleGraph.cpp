//===- analysis/RuleGraph.cpp - Rule/function dependency graph ------------===//
//
// Part of egglog-cpp. See RuleGraph.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleGraph.h"

#include "core/EGraph.h"
#include "core/Engine.h"

#include <algorithm>

using namespace egglog;

//===----------------------------------------------------------------------===
// DepGraph: Tarjan SCC + condensation strata
//===----------------------------------------------------------------------===

void DepGraph::resize(size_t NumNodes) { Succ.resize(NumNodes); }

void DepGraph::addEdge(uint32_t From, uint32_t To) {
  Succ[From].push_back(To);
}

void DepGraph::analyze() {
  size_t N = Succ.size();
  SccId.assign(N, UINT32_MAX);
  Members.clear();
  Cyclic.clear();

  // Iterative Tarjan. Index/Lowlink share one array; OnStack marks the
  // Tarjan stack membership.
  std::vector<uint32_t> Index(N, UINT32_MAX), Lowlink(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t Node;
    size_t NextSucc;
  };
  std::vector<Frame> Dfs;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Dfs.push_back({Root, 0});
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      uint32_t V = F.Node;
      if (F.NextSucc == 0) {
        Index[V] = Lowlink[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      if (F.NextSucc < Succ[V].size()) {
        uint32_t W = Succ[V][F.NextSucc++];
        if (Index[W] == UINT32_MAX)
          Dfs.push_back({W, 0});
        else if (OnStack[W])
          Lowlink[V] = std::min(Lowlink[V], Index[W]);
        continue;
      }
      // All successors explored: close the SCC if V is a root.
      if (Lowlink[V] == Index[V]) {
        uint32_t Scc = static_cast<uint32_t>(Members.size());
        Members.emplace_back();
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          SccId[W] = Scc;
          Members.back().push_back(W);
          if (W == V)
            break;
        }
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        uint32_t Parent = Dfs.back().Node;
        Lowlink[Parent] = std::min(Lowlink[Parent], Lowlink[V]);
      }
    }
  }

  // Cyclic SCCs: more than one member, or a self-loop.
  Cyclic.assign(Members.size(), 0);
  for (uint32_t Scc = 0; Scc < Members.size(); ++Scc)
    if (Members[Scc].size() > 1)
      Cyclic[Scc] = 1;
  for (uint32_t V = 0; V < N; ++V)
    for (uint32_t W : Succ[V])
      if (V == W)
        Cyclic[SccId[V]] = 1;

  // Strata: Tarjan emits SCCs in reverse topological order (an SCC closes
  // only after everything it reaches has closed), so a cross-SCC edge
  // u -> v always has SccId[u] > SccId[v]. Walking SCC ids downward is a
  // topological order; propagate the longest-path layer forward.
  Strata.assign(Members.size(), 0);
  NumStrata = Members.empty() ? 0 : 1;
  for (uint32_t Scc = static_cast<uint32_t>(Members.size()); Scc-- > 0;) {
    for (uint32_t V : Members[Scc]) {
      for (uint32_t W : Succ[V]) {
        uint32_t To = SccId[W];
        if (To == Scc)
          continue;
        Strata[To] = std::max(Strata[To], Strata[Scc] + 1);
        NumStrata = std::max(NumStrata, Strata[To] + 1);
      }
    }
  }
}

//===----------------------------------------------------------------------===
// Per-rule facts
//===----------------------------------------------------------------------===

namespace {

void sortUnique(std::vector<FunctionId> &Ids) {
  std::sort(Ids.begin(), Ids.end());
  Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
}

void countTerm(const VarOrConst &Term, RuleFacts &Facts) {
  if (!Term.IsVar)
    return;
  if (Facts.SlotUses.size() <= Term.Var)
    Facts.SlotUses.resize(Term.Var + 1, 0);
  ++Facts.SlotUses[Term.Var];
}

/// True if a get-or-default on \p Func can allocate a fresh id: the output
/// is an id sort with no :default, and there is at least one key column (a
/// nullary constructor mints at most one id over the program's lifetime, so
/// it cannot drive unbounded growth).
bool canMintFreshIds(FunctionId Func, const EGraph &Graph) {
  const FunctionDecl &Decl = Graph.function(Func).Decl;
  return Graph.sorts().isIdSort(Decl.OutSort) && !Decl.DefaultExpr &&
         !Decl.ArgSorts.empty();
}

/// Walks an action expression, recording writes, mints, and slot uses.
/// \p CapturedRoot suppresses the mint classification for the root node
/// only: the operands of a (union a b) action are typically matched roots
/// or rewrite results whose insertion is the point of the rule, and the
/// engine unions them instead of growing a distinct chain.
void visitActionExpr(const TypedExpr &E, bool CapturedRoot, RuleFacts &Facts,
                     const EGraph &Graph) {
  switch (E.ExprKind) {
  case TypedExpr::Kind::Var:
    if (Facts.SlotUses.size() <= E.Index)
      Facts.SlotUses.resize(E.Index + 1, 0);
    ++Facts.SlotUses[E.Index];
    return;
  case TypedExpr::Kind::Lit:
    return;
  case TypedExpr::Kind::FuncCall:
    Facts.Writes.push_back(E.Index);
    if (!CapturedRoot && canMintFreshIds(E.Index, Graph))
      Facts.Mints.push_back(E.Index);
    break;
  case TypedExpr::Kind::PrimCall:
    break;
  }
  for (const TypedExpr &Arg : E.Args)
    visitActionExpr(Arg, /*CapturedRoot=*/false, Facts, Graph);
}

} // namespace

RuleFacts egglog::computeRuleFacts(const Rule &R, const EGraph &Graph) {
  RuleFacts Facts;
  Facts.SlotUses.assign(R.NumSlots, 0);

  for (const QueryAtom &Atom : R.Body.Atoms) {
    Facts.Reads.push_back(Atom.Func);
    for (const VarOrConst &Term : Atom.Terms)
      countTerm(Term, Facts);
  }
  for (const PrimComputation &Prim : R.Body.Prims) {
    for (const VarOrConst &Arg : Prim.Args)
      countTerm(Arg, Facts);
    countTerm(Prim.Out, Facts);
  }

  for (const Action &Act : R.Actions) {
    switch (Act.ActKind) {
    case Action::Kind::Let:
    case Action::Kind::Eval:
      visitActionExpr(Act.Expr, /*CapturedRoot=*/false, Facts, Graph);
      break;
    case Action::Kind::Set:
      Facts.Writes.push_back(Act.Func);
      for (const TypedExpr &Arg : Act.Args)
        visitActionExpr(Arg, /*CapturedRoot=*/false, Facts, Graph);
      visitActionExpr(Act.Expr, /*CapturedRoot=*/false, Facts, Graph);
      break;
    case Action::Kind::Union:
      visitActionExpr(Act.Expr, /*CapturedRoot=*/true, Facts, Graph);
      visitActionExpr(Act.Expr2, /*CapturedRoot=*/true, Facts, Graph);
      break;
    case Action::Kind::Delete:
      // Deleting shrinks the table; the key expressions can still insert.
      for (const TypedExpr &Arg : Act.Args)
        visitActionExpr(Arg, /*CapturedRoot=*/false, Facts, Graph);
      break;
    case Action::Kind::Panic:
      break;
    }
  }

  sortUnique(Facts.Reads);
  sortUnique(Facts.Writes);
  sortUnique(Facts.Mints);
  return Facts;
}

RuleGraph egglog::buildRuleGraph(const Engine &Eng, const EGraph &Graph) {
  RuleGraph RG;
  RG.Funcs.resize(Graph.numFunctions());
  RG.Rules.reserve(Eng.numRules());
  for (size_t I = 0; I < Eng.numRules(); ++I) {
    RuleFacts Facts = computeRuleFacts(Eng.rule(I), Graph);
    Facts.RuleIndex = I;
    for (FunctionId Read : Facts.Reads)
      for (FunctionId Write : Facts.Writes)
        RG.Funcs.addEdge(Read, Write);
    RG.Rules.push_back(std::move(Facts));
  }
  RG.Funcs.analyze();
  return RG;
}
