//===- core/Extract.h - Term extraction ------------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the smallest term represented by a value (§3.4: "the
/// extract command prints the smallest term equivalent to its given
/// input"). Costs are assigned bottom-up to every equivalence class by a
/// fixpoint over all function entries whose output is an id sort; base
/// constants cost 1.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_EXTRACT_H
#define EGGLOG_CORE_EXTRACT_H

#include "core/EGraph.h"

#include <optional>
#include <string>

namespace egglog {

/// An extracted term with its total cost.
struct ExtractedTerm {
  std::string Text;
  int64_t Cost = 0;
};

/// Renders a base (non-id) value as surface syntax.
std::string formatValue(EGraph &Graph, Value V);

/// Extracts the cheapest term represented by \p V. Returns nullopt when no
/// term in the database represents the value (possible for fresh ids that
/// no constructor entry outputs).
std::optional<ExtractedTerm> extractTerm(EGraph &Graph, Value V);

/// Computes only the cost of the cheapest representative of \p V.
std::optional<int64_t> extractCost(EGraph &Graph, Value V);

/// Extracts up to \p MaxVariants distinct terms represented by \p V: one
/// per function entry whose output lies in V's class, each completed with
/// cheapest-cost children. Used by the mini-Herbie candidate selection
/// (§6.2), which evaluates several equivalent programs and keeps the most
/// accurate.
std::vector<ExtractedTerm> extractVariants(EGraph &Graph, Value V,
                                           size_t MaxVariants);

} // namespace egglog

#endif // EGGLOG_CORE_EXTRACT_H
