//===- core/Extract.h - Term extraction ------------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the smallest term represented by a value (§3.4: "the
/// extract command prints the smallest term equivalent to its given
/// input"). Costs are assigned bottom-up to every equivalence class by a
/// fixpoint over all function entries whose output is an id sort; base
/// constants cost 1.
///
/// The fixpoint no longer runs from scratch per call: the EGraph owns a
/// persistent ExtractIndex — a cost/best-row table over union-find ids plus
/// reverse use/producer chains — that validates itself against the tables'
/// version() stamps and the union-find merge log. Repeated extraction over
/// an unchanged database does zero row sweeps; after inserts it scans only
/// the appended row suffix; after merges it folds the logged losing roots
/// and propagates cost decreases through the use chains (costs under
/// inserts and unions only ever decrease, so decrease-propagation reaches
/// the same fixpoint as a from-scratch run). Genuine deletions (the delete
/// action, pop) invalidate the index, which then rebuilds from scratch on
/// the next refresh. See DESIGN.md "Extraction".
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_EXTRACT_H
#define EGGLOG_CORE_EXTRACT_H

#include "core/EGraph.h"

#include <limits>
#include <optional>
#include <string>
#include <unordered_map>

namespace egglog {

/// An extracted term with its costs. Cost is the tree cost (every subterm
/// occurrence paid for separately, the paper's §3.4 metric); DagCost pays
/// each distinct equivalence class once, crediting sharing.
struct ExtractedTerm {
  std::string Text;
  int64_t Cost = 0;
  int64_t DagCost = 0;
};

/// Renders a base (non-id) value as surface syntax.
std::string formatValue(EGraph &Graph, Value V);

/// Persistent, incrementally-maintained extraction state for one EGraph
/// (owned by it; obtain via EGraph::extractIndex()). All queries require a
/// refresh() first, which also rebuilds the graph if unions are pending.
class ExtractIndex {
public:
  static constexpr int64_t Infinity = std::numeric_limits<int64_t>::max();

  /// Cheapest known derivation of one equivalence class: its tree cost and
  /// the (function, row) achieving it.
  struct Entry {
    int64_t Cost = Infinity;
    FunctionId Func = 0;
    uint32_t Row = 0;
  };

  /// Maintenance counters (cumulative). The warm-cache contract is
  /// testable through these: a refresh over an unchanged database bumps
  /// WarmHits and leaves RowsConsidered untouched.
  struct Stats {
    uint64_t Refreshes = 0;     ///< refresh() calls
    uint64_t WarmHits = 0;      ///< refreshes that verified and did nothing
    uint64_t Incrementals = 0;  ///< refreshes that folded/scanned a delta
    uint64_t FullRebuilds = 0;  ///< from-scratch cost fixpoints
    uint64_t RowsConsidered = 0; ///< cost relaxations attempted (row visits)
    uint64_t MergesFolded = 0;  ///< merge-log entries folded
  };

  /// Brings the index up to date with the database. Rebuilds the graph
  /// first if unions are pending (extraction is specified over a rebuilt
  /// database). Cheap when nothing changed.
  void refresh(EGraph &Graph);

  /// Marks the cached state unusable; the next refresh recomputes from
  /// scratch. Called by the EGraph on restore() and on term deletion (the
  /// only mutations under which class costs can increase).
  void invalidate() { Valid = false; }
  bool valid() const { return Valid; }

  const Stats &stats() const { return S; }

  /// Tree cost of the cheapest term for \p V (1 for base values, Infinity
  /// when no term in the database represents the class).
  int64_t costOf(const EGraph &Graph, Value V) const;

  /// Best entry for \p V's class, or nullptr for base values / classes
  /// without a finite-cost derivation.
  const Entry *best(const EGraph &Graph, Value V) const;

  /// Best entry for a canonical union-find class id (for callers that hold
  /// raw class bits rather than a sorted Value).
  const Entry *bestClass(uint64_t Root) const {
    if (Root >= Best.size() || Best[Root].Cost == Infinity)
      return nullptr;
    return &Best[Root];
  }

  /// Appends every live row whose output lies in \p V's class (the variant
  /// candidates of §6.2) to \p Out.
  void producers(const EGraph &Graph, Value V,
                 std::vector<std::pair<FunctionId, uint32_t>> &Out) const;

  /// DAG cost of the term formed by \p Func(\p Row) with best-cost
  /// children: each distinct reachable class pays its chosen row's declared
  /// cost (plus 1 per base-value child) exactly once, and the seed row
  /// itself pays on top — so a variant row whose child re-enters the seed's
  /// class still charges the rendered child subtree. Equals the tree cost
  /// on sharing-free terms. Uses an epoch-stamped visited scratch, so
  /// repeated calls (one per variant) cost O(term), not O(all ids).
  int64_t dagCostFromRow(const EGraph &Graph, FunctionId Func,
                         uint32_t Row) const;

  /// Rendered-term memo: extraction of a class over an unchanged database
  /// is a pure function, so the fully built ExtractedTerm is cached per
  /// canonical root; every non-warm refresh clears the memo.
  const ExtractedTerm *memoized(uint64_t Root) const {
    auto It = TermMemo.find(Root);
    return It == TermMemo.end() ? nullptr : &It->second;
  }
  void memoize(uint64_t Root, const ExtractedTerm &Term) {
    // Crude memory bound: rendered terms can be large, and the memo only
    // needs to cover the roots a driver loops over between mutations.
    if (TermMemo.size() >= 1024)
      TermMemo.clear();
    TermMemo.emplace(Root, Term);
  }

private:
  /// Pooled singly-linked chain node for the reverse indexes.
  struct ChainNode {
    int32_t Next = -1;
    uint32_t Func = 0;
    uint32_t Row = 0;
  };
  /// Per-function bookkeeping: rows [0, Scanned) are reflected in the
  /// chains and have been cost-considered; Version is the table stamp at
  /// the end of the last refresh; Resets mirrors Table::resets() so a
  /// direct clear()/restore() (which breaks append-only) forces scratch.
  struct TableState {
    uint64_t Version = 0;
    uint64_t Resets = 0;
    size_t Scanned = 0;
  };

  bool Valid = false;
  Stats S;
  /// Terms rendered against the current cost state (cleared by every
  /// non-warm refresh).
  std::unordered_map<uint64_t, ExtractedTerm> TermMemo;
  /// Offset into UnionFind::mergeLog() up to which merges are folded.
  size_t LogPos = 0;
  std::vector<TableState> Tables;
  /// Dense per-id state (indexed by union-find id; grown on refresh).
  std::vector<Entry> Best;
  std::vector<int32_t> UseHead, UseTail;   ///< id -> rows using it as a key
  std::vector<int32_t> ProdHead, ProdTail; ///< id -> rows producing into it
  std::vector<ChainNode> Pool;
  /// Classes whose cost decreased and whose users need reconsidering.
  /// QueuePending dedups membership so a class improved t times before the
  /// drain reaches it rescans its use chain once, not t times.
  std::vector<uint64_t> Queue;
  std::vector<uint8_t> QueuePending;
  /// Visited scratch for dagCostFromRow: a class is visited in the current
  /// call iff its stamp equals DagEpoch (no per-call zeroing).
  mutable std::vector<uint32_t> DagVisited;
  mutable uint32_t DagEpoch = 0;

  bool participates(const EGraph &Graph, size_t Func) const;
  void ensureIdCapacity(size_t Ids);
  void enqueue(uint64_t Class) {
    if (!QueuePending[Class]) {
      QueuePending[Class] = 1;
      Queue.push_back(Class);
    }
  }
  void pushNode(std::vector<int32_t> &Head, std::vector<int32_t> &Tail,
                uint64_t Id, uint32_t Func, uint32_t Row);
  void foldChain(std::vector<int32_t> &Head, std::vector<int32_t> &Tail,
                 uint64_t Loser, uint64_t Winner);
  void consider(EGraph &Graph, uint32_t Func, uint32_t Row);
  /// Folds the merge-log suffix into the winners' entries and chains.
  /// Returns false on a tied-cost fold, which could make a best row
  /// reference its own merged class (the caller must rebuild from
  /// scratch; see the comment in the implementation).
  bool foldMerges(EGraph &Graph);
  /// Row-proportional phases run under governor checkpoints; each returns
  /// false when the governor tripped (or a fault was injected) mid-scan, in
  /// which case the caller must leave the index invalid — the partial scan
  /// has already pushed chain nodes the bookkeeping does not cover.
  bool scanSuffix(EGraph &Graph, size_t Func);
  bool drainQueue(EGraph &Graph);
  void rebuildFromScratch(EGraph &Graph);
};

/// Extracts the cheapest term represented by \p V (tree cost; DagCost is
/// filled in alongside). Returns nullopt when no term in the database
/// represents the value (possible for fresh ids that no constructor entry
/// outputs). Term building is iterative — arbitrarily deep terms extract
/// without recursion.
std::optional<ExtractedTerm> extractTerm(EGraph &Graph, Value V);

/// DAG-cost mode: the same (tree-cost-optimal) term selection, but Cost is
/// the DAG cost — every distinct class in the term is paid once, so shared
/// subterms are not double-counted (sharing-aware accounting in the spirit
/// of Accattoli et al.; selection stays greedy, as in egg's dag extractor).
std::optional<ExtractedTerm> extractTermDag(EGraph &Graph, Value V);

/// Computes only the tree cost of the cheapest representative of \p V.
std::optional<int64_t> extractCost(EGraph &Graph, Value V);

/// Extracts up to \p MaxVariants distinct terms represented by \p V: one
/// per function entry whose output lies in V's class, each completed with
/// cheapest-cost children, cheapest first. Used by the mini-Herbie
/// candidate selection (§6.2), which evaluates several equivalent programs
/// and keeps the most accurate. Repeated calls reuse the warm index, so
/// asking for a larger count later repeats no cost-fixpoint work (variants
/// are re-rendered; order is deterministic, so the earlier result is a
/// prefix of the later one).
std::vector<ExtractedTerm> extractVariants(EGraph &Graph, Value V,
                                           size_t MaxVariants);

/// From-scratch reference cost fixpoint (the pre-index algorithm): the
/// cheapest tree cost per canonical id value. Quadratic and allocation
/// heavy; kept for differential testing of the incremental ExtractIndex.
std::unordered_map<uint64_t, int64_t> extractCostsReference(EGraph &Graph);

} // namespace egglog

#endif // EGGLOG_CORE_EXTRACT_H
