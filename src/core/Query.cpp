//===- core/Query.cpp - Relational query execution --------------------------===//
//
// Part of egglog-cpp. See Query.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Query.h"

#include <algorithm>
#include <cassert>

using namespace egglog;

namespace {

/// One join column of an atom: a query variable and every term position
/// holding it (the first occurrence, then repeats). All positions must
/// carry the same value in a matching row; the join narrows on each in
/// turn.
struct AtomCol {
  uint32_t Var = 0;
  std::vector<unsigned> Positions;
};

/// Execution state for one atom: a shared cached column index (sorted by
/// constants first, then the query's global variable order), and the
/// currently narrowed range within it. The shape (Cols, Consts positions)
/// is precomputed once per query; only the range and the index pointer
/// change between executions.
struct AtomExec {
  const QueryAtom *Atom = nullptr;
  /// Sorted candidate row ids, borrowed from the table's IndexCache.
  /// Stable because queries never mutate tables.
  const std::vector<uint32_t> *Rows = nullptr;
  /// Base pointer of each term position's column array in the columnar
  /// table storage: ColBase[Pos][(*Rows)[I]] is candidate I's value at
  /// term position Pos. Captured per execution; stable because queries
  /// never mutate tables.
  std::vector<const Value *> ColBase;
  /// The atom's distinct variables, re-sorted to global variable order at
  /// the start of every execution.
  std::vector<AtomCol> Cols;
  /// Constant term positions in term order (the leading columns of the
  /// index permutation); values are re-canonicalized per execution.
  std::vector<std::pair<unsigned, Value>> Consts;
  size_t Lo = 0, Hi = 0;
  /// Number of leading columns already bound at the current depth.
  unsigned Depth = 0;
};

/// Backtracking trail entry: a variable binding or a primitive execution to
/// undo.
struct TrailEntry {
  bool IsVar;
  uint32_t Index;
};

/// Stable insertion sort for the tiny arrays the planner reorders per
/// execution (atom columns, the variable order). std::stable_sort
/// heap-allocates a temporary buffer even for a handful of elements, which
/// would dominate these call sites.
template <typename Iter, typename Less>
void insertionSort(Iter First, Iter Last, Less Cmp) {
  for (Iter I = First; I != Last; ++I)
    for (Iter J = I; J != First && Cmp(*J, *(J - 1)); --J)
      std::iter_swap(J, J - 1);
}

/// First index in [Lo, Hi) whose column value is >= \p V: a lower bound
/// over the id-indirected column array (Col[Ids[I]] is candidate I's
/// value, non-decreasing over the range).
size_t lowerBoundIds(const uint32_t *Ids, const Value *Col, size_t Lo,
                     size_t Hi, Value V) {
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Col[Ids[Mid]] < V)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

/// First index in [Lo, Hi) whose column value is > \p V.
size_t upperBoundIds(const uint32_t *Ids, const Value *Col, size_t Lo,
                     size_t Hi, Value V) {
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (V < Col[Ids[Mid]])
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Lo;
}

/// lowerBoundIds specialized for a probe expected to land near \p Lo:
/// gallop (exponential steps) to bracket the answer, then binary-search
/// the final window. The batched join probes sweep each participant with
/// an ascending run of candidate values, so successive answers are close
/// together and the gallop costs O(log gap) instead of O(log range).
size_t gallopLowerBoundIds(const uint32_t *Ids, const Value *Col, size_t Lo,
                           size_t Hi, Value V) {
  if (Lo >= Hi || !(Col[Ids[Lo]] < V))
    return Lo;
  size_t Step = 1;
  while (Lo + Step < Hi && Col[Ids[Lo + Step]] < V)
    Step *= 2;
  // Col[Ids[Lo + Step/2]] < V, and either Lo + Step overshoots Hi or
  // Col[Ids[Lo + Step]] >= V: the answer lies in (Lo+Step/2, Lo+Step].
  return lowerBoundIds(Ids, Col, Lo + Step / 2 + 1, std::min(Lo + Step, Hi),
                       V);
}

/// upperBoundIds with the same gallop-from-\p Lo strategy (equal runs are
/// typically short, so the run end is near its start).
size_t gallopUpperBoundIds(const uint32_t *Ids, const Value *Col, size_t Lo,
                           size_t Hi, Value V) {
  if (Lo >= Hi || V < Col[Ids[Lo]])
    return Lo;
  size_t Step = 1;
  while (Lo + Step < Hi && !(V < Col[Ids[Lo + Step]]))
    Step *= 2;
  return upperBoundIds(Ids, Col, Lo + Step / 2 + 1, std::min(Lo + Step, Hi),
                       V);
}

} // namespace

/// The generic-join interpreter. One instance per query, reusable across
/// executions: all buffers persist, so a rule's semi-naïve delta variants
/// and repeated engine iterations run allocation-free after warm-up.
struct egglog::QueryExecutor::Impl {
  Impl(EGraph &Graph, const Query &Q) : Graph(Graph), Q(Q) {
    // Precompute each atom's shape: join columns (with repeated variable
    // occurrences folded into one column) and constant positions.
    Atoms.reserve(Q.Atoms.size());
    std::vector<bool> SeenVar;
    std::vector<size_t> ColOf;
    for (const QueryAtom &Atom : Q.Atoms) {
      AtomExec Exec;
      Exec.Atom = &Atom;
      SeenVar.assign(Q.NumVars, false);
      ColOf.resize(Q.NumVars);
      for (unsigned I = 0; I < Atom.Terms.size(); ++I) {
        const VarOrConst &Term = Atom.Terms[I];
        if (!Term.IsVar) {
          Exec.Consts.emplace_back(I, Term.Const);
          continue;
        }
        if (SeenVar[Term.Var]) {
          Exec.Cols[ColOf[Term.Var]].Positions.push_back(I);
        } else {
          SeenVar[Term.Var] = true;
          ColOf[Term.Var] = Exec.Cols.size();
          Exec.Cols.push_back(AtomCol{Term.Var, {I}});
        }
      }
      Atoms.push_back(std::move(Exec));
    }
  }

  void execute(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound,
               bool UseGenericJoin, const std::function<bool()> *TheCancel) {
    Cancel = TheCancel;
    StepCount = 0;
    Cancelled = false;
    if (UseGenericJoin)
      run(Filters, DeltaBound);
    else
      runNaive(Filters, DeltaBound);
    Callback = nullptr;
    CollectArena = nullptr;
    CollectCount = nullptr;
    Cancel = nullptr;
    ReadOnly = false;
  }

  void executeDelta(uint32_t DeltaBound, bool UseGenericJoin,
                    const std::function<bool()> *TheCancel) {
    size_t NumAtoms = Q.Atoms.size();
    // emitMatch targets survive across variants; execute() clears them, so
    // re-arm per variant from the saved values.
    const MatchCallback *TheCallback = Callback;
    std::vector<Value> *Arena = CollectArena;
    size_t *Count = CollectCount;
    for (size_t Delta = 0; Delta < NumAtoms; ++Delta) {
      if (TheCancel && (*TheCancel)())
        break;
      makeDeltaVariantFilters(DeltaFilters, Delta, NumAtoms);
      Callback = TheCallback;
      CollectArena = Arena;
      CollectCount = Count;
      execute(DeltaFilters, DeltaBound, UseGenericJoin, TheCancel);
    }
    // Every exit path (including zero atoms or an immediate cancel) must
    // disarm the sinks; a later call would otherwise write through a
    // dangling arena pointer.
    Callback = nullptr;
    CollectArena = nullptr;
    CollectCount = nullptr;
  }

  /// Runs materialize() alone, for its side effects: after this, an
  /// execution of the same variant against the unchanged database finds
  /// every index, partition count, and canonical constant already cached.
  void warm(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound) {
    ReadOnly = false;
    materialize(Filters, DeltaBound);
  }

  /// Match sinks: either a callback or a flat arena (plus match counter).
  /// Exactly one is armed by the QueryExecutor entry points.
  const MatchCallback *Callback = nullptr;
  std::vector<Value> *CollectArena = nullptr;
  size_t *CollectCount = nullptr;
  /// When set, materialize() only peeks at caches (no builds, refreshes,
  /// or canonicalization) — the parallel match phase's contract. Armed by
  /// executeCollectReadOnly, reset by every entry point.
  bool ReadOnly = false;

private:
  EGraph &Graph;
  const Query &Q;
  const std::function<bool()> *Cancel = nullptr;
  uint64_t StepCount = 0;
  bool Cancelled = false;

  bool checkCancel() {
    if (Cancelled)
      return true;
    if (!Cancel || (++StepCount & 0xFFF) != 0)
      return false;
    Cancelled = (*Cancel)();
    return Cancelled;
  }

  std::vector<AtomExec> Atoms;
  std::vector<uint32_t> VarOrder;
  std::vector<Value> Env;
  std::vector<bool> BoundFlags;
  std::vector<bool> PrimDone;
  /// Primitives not yet executed; lets the hot paths skip the prim scan.
  size_t PendingPrims = 0;
  std::vector<TrailEntry> Trail;

  // Scratch reused across executions to keep the steady state
  // allocation-free.
  std::vector<AtomFilter> DeltaFilters;
  std::vector<size_t> AtomSizes;
  std::vector<unsigned> VarPosition;
  std::vector<unsigned> Perm;
  std::vector<Value> PrimArgs;
  struct SavedRange {
    size_t Lo, Hi;
    unsigned Depth;
  };
  struct LevelScratch {
    std::vector<size_t> Participants;
    std::vector<SavedRange> Saved;
    /// Per-participant sweep cursor for the batched probes: a monotone
    /// lower bound on where the next (ascending) candidate can start.
    std::vector<size_t> Cursors;
  };
  std::vector<LevelScratch> Levels;

  void run(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound) {
    if (!materialize(Filters, DeltaBound))
      return;
    Env.assign(Q.NumVars, Value());
    BoundFlags.assign(Q.NumVars, false);
    PrimDone.assign(Q.Prims.size(), false);
    PendingPrims = Q.Prims.size();
    Trail.clear();
    Levels.resize(VarOrder.size());
    // Bind nothing yet, but primitives with no variable inputs can run
    // immediately (e.g. constant filters).
    if (!runReadyPrims())
      return;
    joinLevel(0);
  }

  void runNaive(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound) {
    if (!materialize(Filters, DeltaBound))
      return;
    Env.assign(Q.NumVars, Value());
    BoundFlags.assign(Q.NumVars, false);
    PrimDone.assign(Q.Prims.size(), false);
    PendingPrims = Q.Prims.size();
    Trail.clear();
    if (!runReadyPrims())
      return;
    naiveLevel(0);
  }

  /// Resolves each atom to a cached column index, narrowed to its constant
  /// terms. Returns false if any atom has no candidates (query is empty).
  ///
  /// Unlike the pre-index engine, this never scans or sorts table rows
  /// itself: the table's IndexCache supplies the sorted candidate list,
  /// shared across delta variants, rules, and iterations. Constants are
  /// resolved with binary searches over the index's leading columns, and
  /// repeated-variable consistency is enforced by narrowing every
  /// occurrence during the join.
  bool materialize(const std::vector<AtomFilter> &Filters,
                   uint32_t DeltaBound) {
    // Cheap pre-pass: bail before doing any work if some atom's stamp
    // partition is empty (the common case for semi-naïve delta variants
    // once the database approaches saturation).
    AtomSizes.resize(Atoms.size());
    for (size_t AtomIndex = 0; AtomIndex < Atoms.size(); ++AtomIndex) {
      AtomFilter Filter =
          Filters.empty() ? AtomFilter::All : Filters[AtomIndex];
      const Table &T =
          *Graph.function(Atoms[AtomIndex].Atom->Func).Storage;
      size_t Size = T.liveCount();
      if (Filter != AtomFilter::All) {
        if (ReadOnly) {
          // A read-only execution replays exactly the sequence its warm()
          // ran (same filters, unchanged database), so every count it
          // needs — up to and including the atom warm() bailed at — is
          // cached at the current version.
          const IndexCache *Cache = T.indexCacheIfBuilt();
          std::pair<size_t, size_t> Split;
          bool Cached = Cache && Cache->peekPartitionCounts(DeltaBound, Split);
          assert(Cached && "read-only execution without a fresh warm()");
          if (!Cached)
            return false;
          Size = Filter == AtomFilter::Old ? Split.first : Split.second;
        } else {
          auto [Old, New] = T.indexes().partitionCounts(DeltaBound);
          Size = Filter == AtomFilter::Old ? Old : New;
        }
      }
      if (Size == 0)
        return false;
      AtomSizes[AtomIndex] = Size;
    }

    chooseVariableOrder(AtomSizes);

    // Fetch each atom's index for the chosen permutation and narrow it to
    // the (re-canonicalized) constants.
    VarPosition.assign(Q.NumVars, 0);
    for (unsigned I = 0; I < VarOrder.size(); ++I)
      VarPosition[VarOrder[I]] = I;
    for (size_t AtomIndex = 0; AtomIndex < Atoms.size(); ++AtomIndex) {
      AtomExec &Exec = Atoms[AtomIndex];
      AtomFilter Filter =
          Filters.empty() ? AtomFilter::All : Filters[AtomIndex];
      insertionSort(Exec.Cols.begin(), Exec.Cols.end(),
                    [&](const AtomCol &A, const AtomCol &B) {
                      return VarPosition[A.Var] < VarPosition[B.Var];
                    });
      Perm.clear();
      for (auto &[Pos, Const] : Exec.Consts) {
        // Read-only executions reuse the canonical constants their warm()
        // stored here: canonicalize can write (union-find path
        // compression, set re-interning) and the database has not changed
        // since the warm pass, so the stored values are still canonical.
        if (!ReadOnly)
          Const = Graph.canonicalize(Exec.Atom->Terms[Pos].Const);
        Perm.push_back(Pos);
      }
      for (const AtomCol &Col : Exec.Cols)
        for (unsigned Pos : Col.Positions)
          Perm.push_back(Pos);

      const Table &T = *Graph.function(Exec.Atom->Func).Storage;
      const ColumnIndex *Index;
      if (ReadOnly) {
        const IndexCache *Cache = T.indexCacheIfBuilt();
        Index = Cache ? Cache->peek(Perm, Filter, DeltaBound) : nullptr;
        assert(Index && "read-only execution without a fresh warm()");
        if (!Index)
          return false;
      } else {
        Index = &T.indexes().get(Perm, Filter, DeltaBound);
      }
      Exec.Rows = &Index->ids();
      Exec.ColBase.resize(Exec.Atom->Terms.size());
      for (unsigned P = 0; P < Exec.ColBase.size(); ++P)
        Exec.ColBase[P] = T.column(P);
      Exec.Lo = 0;
      Exec.Hi = Index->size();
      Exec.Depth = 0;
      for (const auto &[Pos, Const] : Exec.Consts)
        if (!narrowOn(Exec, Pos, Const))
          return false;
    }
    return true;
  }

  /// Greedy variable ordering: most-constrained (highest atom occurrence)
  /// first, breaking ties toward variables whose atoms are small.
  void chooseVariableOrder(const std::vector<size_t> &Sizes) {
    std::vector<unsigned> Occurrences(Q.NumVars, 0);
    std::vector<size_t> MinAtomSize(Q.NumVars, SIZE_MAX);
    for (size_t AtomIndex = 0; AtomIndex < Atoms.size(); ++AtomIndex) {
      for (const AtomCol &Col : Atoms[AtomIndex].Cols) {
        ++Occurrences[Col.Var];
        MinAtomSize[Col.Var] =
            std::min(MinAtomSize[Col.Var], Sizes[AtomIndex]);
      }
    }
    VarOrder.clear();
    for (uint32_t Var = 0; Var < Q.NumVars; ++Var)
      if (Occurrences[Var] > 0)
        VarOrder.push_back(Var);
    insertionSort(VarOrder.begin(), VarOrder.end(),
                  [&](uint32_t A, uint32_t B) {
                    if (Occurrences[A] != Occurrences[B])
                      return Occurrences[A] > Occurrences[B];
                    return MinAtomSize[A] < MinAtomSize[B];
                  });
  }

  size_t trailMark() const { return Trail.size(); }

  void trailUndo(size_t Mark) {
    while (Trail.size() > Mark) {
      TrailEntry Entry = Trail.back();
      Trail.pop_back();
      if (Entry.IsVar) {
        BoundFlags[Entry.Index] = false;
      } else {
        PrimDone[Entry.Index] = false;
        ++PendingPrims;
      }
    }
  }

  bool bindVar(uint32_t Var, Value V) {
    if (BoundFlags[Var])
      return Env[Var] == V;
    Env[Var] = V;
    BoundFlags[Var] = true;
    Trail.push_back(TrailEntry{true, Var});
    return true;
  }

  bool termReady(const VarOrConst &Term) const {
    return !Term.IsVar || BoundFlags[Term.Var];
  }

  Value termValue(const VarOrConst &Term) const {
    return Term.IsVar ? Env[Term.Var] : Term.Const;
  }

  /// Runs every primitive whose inputs are available; returns false if any
  /// fails or contradicts an existing binding.
  bool runReadyPrims() {
    if (PendingPrims == 0)
      return true;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t I = 0; I < Q.Prims.size(); ++I) {
        if (PrimDone[I])
          continue;
        const PrimComputation &P = Q.Prims[I];
        bool Ready = true;
        for (const VarOrConst &Arg : P.Args) {
          if (!termReady(Arg)) {
            Ready = false;
            break;
          }
        }
        if (!Ready)
          continue;
        PrimArgs.resize(P.Args.size());
        for (size_t J = 0; J < P.Args.size(); ++J)
          PrimArgs[J] = termValue(P.Args[J]);
        Value Result;
        if (!Graph.primitives().get(P.Prim).Apply(Graph, PrimArgs.data(),
                                                  Result))
          return false;
        if (P.Out.IsVar) {
          if (!bindVar(P.Out.Var, Result))
            return false;
        } else if (Result != P.Out.Const) {
          return false;
        }
        PrimDone[I] = true;
        --PendingPrims;
        Trail.push_back(TrailEntry{false, static_cast<uint32_t>(I)});
        if (PendingPrims == 0)
          return true;
        Progress = true;
      }
    }
    return true;
  }

  /// Narrows atom \p Exec to the rows whose term at \p Pos equals \p V,
  /// assuming the current range is sorted by that position (it is the next
  /// column of the index permutation); returns false if empty. Saves
  /// nothing; caller snapshots ranges.
  bool narrowOn(AtomExec &Exec, unsigned Pos, Value V) {
    const uint32_t *Ids = Exec.Rows->data();
    const Value *Col = Exec.ColBase[Pos];
    size_t Lo = lowerBoundIds(Ids, Col, Exec.Lo, Exec.Hi, V);
    if (Lo == Exec.Hi || Col[Ids[Lo]] != V)
      return false;
    Exec.Lo = Lo;
    Exec.Hi = upperBoundIds(Ids, Col, Lo + 1, Exec.Hi, V);
    return true;
  }

  /// Narrows atom \p Exec (whose next column must be bound to \p V) to the
  /// rows where every occurrence of that column's variable equals \p V.
  bool narrowTo(AtomExec &Exec, Value V) {
    for (unsigned Pos : Exec.Cols[Exec.Depth].Positions)
      if (!narrowOn(Exec, Pos, V))
        return false;
    ++Exec.Depth;
    return true;
  }

  /// narrowTo() with a sweep cursor for the first occurrence. The caller
  /// probes with an ascending run of candidate values, so \p Cursor — the
  /// previous probe's landing point — is a valid lower bound for this one:
  /// the equal range is found by galloping forward from it rather than
  /// bisecting the whole saved range (the "sort probe keys once, sweep the
  /// sorted run" half of the batched-probe scheme; the probe keys arrive
  /// pre-sorted because the driver's groups are themselves a sorted run).
  bool narrowToSwept(AtomExec &Exec, Value V, size_t &Cursor) {
    const AtomCol &Col = Exec.Cols[Exec.Depth];
    const uint32_t *Ids = Exec.Rows->data();
    const Value *C = Exec.ColBase[Col.Positions[0]];
    size_t Lo =
        gallopLowerBoundIds(Ids, C, std::max(Exec.Lo, Cursor), Exec.Hi, V);
    Cursor = Lo;
    if (Lo == Exec.Hi || C[Ids[Lo]] != V)
      return false;
    size_t RunEnd = gallopUpperBoundIds(Ids, C, Lo + 1, Exec.Hi, V);
    // The next candidate is strictly greater, so its run starts at or
    // after this run's end.
    Cursor = RunEnd;
    Exec.Lo = Lo;
    Exec.Hi = RunEnd;
    for (size_t P = 1; P < Col.Positions.size(); ++P)
      if (!narrowOn(Exec, Col.Positions[P], V))
        return false;
    ++Exec.Depth;
    return true;
  }

  void emitMatch() {
    // All join variables are bound; flush remaining primitives (those whose
    // outputs feed nothing else may still be pending).
    size_t Mark = trailMark();
    if (runReadyPrims()) {
      assert(PendingPrims == 0 &&
             "primitive left unexecuted; typechecker should have "
             "rejected this query");
      if (CollectArena) {
        CollectArena->insert(CollectArena->end(), Env.begin(), Env.end());
        ++*CollectCount;
      } else {
        (*Callback)(Env);
      }
    }
    trailUndo(Mark);
  }

  void joinLevel(size_t Level) {
    if (checkCancel())
      return;
    if (Level == VarOrder.size()) {
      emitMatch();
      return;
    }
    uint32_t Var = VarOrder[Level];

    // Participants: atoms whose next unbound column is Var. The scratch is
    // per level, so the recursion into Level + 1 cannot clobber it.
    std::vector<size_t> &Participants = Levels[Level].Participants;
    Participants.clear();
    for (size_t I = 0; I < Atoms.size(); ++I) {
      AtomExec &Exec = Atoms[I];
      if (Exec.Depth < Exec.Cols.size() && Exec.Cols[Exec.Depth].Var == Var)
        Participants.push_back(I);
    }

    // Snapshot the participant ranges for backtracking.
    std::vector<SavedRange> &SavedRanges = Levels[Level].Saved;
    SavedRanges.resize(Participants.size());
    auto Snapshot = [&]() {
      for (size_t I = 0; I < Participants.size(); ++I) {
        AtomExec &Exec = Atoms[Participants[I]];
        SavedRanges[I] = SavedRange{Exec.Lo, Exec.Hi, Exec.Depth};
      }
    };
    auto Restore = [&]() {
      for (size_t I = 0; I < Participants.size(); ++I) {
        AtomExec &Exec = Atoms[Participants[I]];
        Exec.Lo = SavedRanges[I].Lo;
        Exec.Hi = SavedRanges[I].Hi;
        Exec.Depth = SavedRanges[I].Depth;
      }
    };

    if (BoundFlags[Var]) {
      // The variable was computed by a primitive: check, don't enumerate.
      Snapshot();
      bool Alive = true;
      for (size_t Index : Participants)
        if (!narrowTo(Atoms[Index], Env[Var])) {
          Alive = false;
          break;
        }
      if (Alive)
        joinLevel(Level + 1);
      Restore();
      return;
    }

    assert(!Participants.empty() &&
           "join variable not constrained by any atom");

    // Free-join-style binary fast path: with a single participant there is
    // nothing to intersect — enumerate its groups directly, skipping the
    // snapshot/restore bookkeeping.
    if (Participants.size() == 1) {
      binaryJoinLevel(Level, Var, Atoms[Participants[0]]);
      return;
    }

    // Driver: the participant with the smallest current range.
    size_t Driver = Participants[0];
    for (size_t Index : Participants)
      if (Atoms[Index].Hi - Atoms[Index].Lo <
          Atoms[Driver].Hi - Atoms[Driver].Lo)
        Driver = Index;
    AtomExec &DriverExec = Atoms[Driver];
    const uint32_t *DriverIds = DriverExec.Rows->data();
    const Value *DriverCol =
        DriverExec.ColBase[DriverExec.Cols[DriverExec.Depth].Positions[0]];

    // Batched probes: every non-driver participant keeps a sweep cursor.
    // The driver's candidates ascend across the group loop, so each
    // participant's equal range only moves forward — narrowToSwept gallops
    // from the cursor instead of bisecting the whole saved range.
    std::vector<size_t> &Cursors = Levels[Level].Cursors;
    Cursors.resize(Participants.size());
    for (size_t I = 0; I < Participants.size(); ++I)
      Cursors[I] = Atoms[Participants[I]].Lo;

    size_t GroupStart = DriverExec.Lo;
    size_t DriverHi = DriverExec.Hi;
    while (GroupStart < DriverHi) {
      Value Candidate = DriverCol[DriverIds[GroupStart]];
      size_t GroupEnd = GroupStart + 1;
      while (GroupEnd < DriverHi &&
             DriverCol[DriverIds[GroupEnd]] == Candidate)
        ++GroupEnd;

      Snapshot();
      size_t Mark = trailMark();
      bool Alive = true;
      for (size_t I = 0; I < Participants.size(); ++I) {
        size_t Index = Participants[I];
        if (Index == Driver) {
          // The group already fixes the first occurrence; narrow any
          // repeated occurrences of the variable to the same value.
          AtomExec &Exec = Atoms[Index];
          Exec.Lo = GroupStart;
          Exec.Hi = GroupEnd;
          const AtomCol &Col = Exec.Cols[Exec.Depth];
          for (size_t P = 1; Alive && P < Col.Positions.size(); ++P)
            Alive = narrowOn(Exec, Col.Positions[P], Candidate);
          if (!Alive)
            break;
          ++Exec.Depth;
          continue;
        }
        if (!narrowToSwept(Atoms[Index], Candidate, Cursors[I])) {
          Alive = false;
          break;
        }
      }
      if (Alive && bindVar(Var, Candidate) && runReadyPrims())
        joinLevel(Level + 1);
      trailUndo(Mark);
      Restore();

      GroupStart = GroupEnd;
    }
  }

  /// Single-participant join level: the candidate groups come from one
  /// atom, so there is no intersection to compute — a binary-join scan
  /// over its sorted run. At the last level, with a single occurrence and
  /// no pending primitives, it degenerates into a pure vectorized column
  /// scan emitting one match per group.
  void binaryJoinLevel(size_t Level, uint32_t Var, AtomExec &Exec) {
    const AtomCol &Col = Exec.Cols[Exec.Depth];
    const uint32_t *Ids = Exec.Rows->data();
    const Value *C = Exec.ColBase[Col.Positions[0]];
    size_t SavedLo = Exec.Lo, SavedHi = Exec.Hi;
    unsigned SavedDepth = Exec.Depth;

    if (Level + 1 == VarOrder.size() && Col.Positions.size() == 1 &&
        PendingPrims == 0) {
      for (size_t GroupStart = SavedLo; GroupStart < SavedHi;) {
        if (checkCancel())
          return;
        Value Candidate = C[Ids[GroupStart]];
        do
          ++GroupStart;
        while (GroupStart < SavedHi && C[Ids[GroupStart]] == Candidate);
        Env[Var] = Candidate;
        if (CollectArena) {
          CollectArena->insert(CollectArena->end(), Env.begin(), Env.end());
          ++*CollectCount;
        } else {
          (*Callback)(Env);
        }
      }
      return;
    }

    for (size_t GroupStart = SavedLo; GroupStart < SavedHi;) {
      Value Candidate = C[Ids[GroupStart]];
      size_t GroupEnd = GroupStart + 1;
      while (GroupEnd < SavedHi && C[Ids[GroupEnd]] == Candidate)
        ++GroupEnd;
      Exec.Lo = GroupStart;
      Exec.Hi = GroupEnd;
      Exec.Depth = SavedDepth;
      bool Alive = true;
      for (size_t P = 1; Alive && P < Col.Positions.size(); ++P)
        Alive = narrowOn(Exec, Col.Positions[P], Candidate);
      if (Alive) {
        ++Exec.Depth;
        size_t Mark = trailMark();
        if (bindVar(Var, Candidate) && runReadyPrims())
          joinLevel(Level + 1);
        trailUndo(Mark);
      }
      GroupStart = GroupEnd;
    }
    Exec.Lo = SavedLo;
    Exec.Hi = SavedHi;
    Exec.Depth = SavedDepth;
  }

  /// Baseline nested-loop join for the ablation study: walks atoms in
  /// declaration order binding variables row by row.
  void naiveLevel(size_t AtomIndex) {
    if (checkCancel())
      return;
    if (AtomIndex == Atoms.size()) {
      emitMatch();
      return;
    }
    AtomExec &Exec = Atoms[AtomIndex];
    const uint32_t *Ids = Exec.Rows->data();
    for (size_t R = Exec.Lo; R < Exec.Hi; ++R) {
      uint32_t Row = Ids[R];
      size_t Mark = trailMark();
      bool Alive = true;
      for (const AtomCol &Col : Exec.Cols) {
        // Binding every occurrence both binds the variable and rejects
        // rows whose repeated occurrences disagree.
        for (unsigned Pos : Col.Positions) {
          if (!bindVar(Col.Var, Exec.ColBase[Pos][Row])) {
            Alive = false;
            break;
          }
        }
        if (!Alive)
          break;
      }
      if (Alive && runReadyPrims())
        naiveLevel(AtomIndex + 1);
      trailUndo(Mark);
    }
  }
};

QueryExecutor::QueryExecutor(EGraph &Graph, const Query &Q)
    : I(std::make_unique<Impl>(Graph, Q)) {}

QueryExecutor::~QueryExecutor() = default;
QueryExecutor::QueryExecutor(QueryExecutor &&) noexcept = default;
QueryExecutor &QueryExecutor::operator=(QueryExecutor &&) noexcept = default;

void QueryExecutor::execute(const std::vector<AtomFilter> &Filters,
                            uint32_t DeltaBound,
                            const MatchCallback &Callback,
                            bool UseGenericJoin,
                            const std::function<bool()> *Cancel) {
  I->Callback = &Callback;
  I->execute(Filters, DeltaBound, UseGenericJoin, Cancel);
}

void QueryExecutor::executeDelta(uint32_t DeltaBound,
                                 const MatchCallback &Callback,
                                 bool UseGenericJoin,
                                 const std::function<bool()> *Cancel) {
  I->Callback = &Callback;
  I->executeDelta(DeltaBound, UseGenericJoin, Cancel);
}

void QueryExecutor::executeCollect(const std::vector<AtomFilter> &Filters,
                                   uint32_t DeltaBound,
                                   std::vector<Value> &Arena, size_t &Count,
                                   bool UseGenericJoin,
                                   const std::function<bool()> *Cancel) {
  I->CollectArena = &Arena;
  I->CollectCount = &Count;
  I->execute(Filters, DeltaBound, UseGenericJoin, Cancel);
}

void QueryExecutor::executeDeltaCollect(uint32_t DeltaBound,
                                        std::vector<Value> &Arena,
                                        size_t &Count, bool UseGenericJoin,
                                        const std::function<bool()> *Cancel) {
  I->CollectArena = &Arena;
  I->CollectCount = &Count;
  I->executeDelta(DeltaBound, UseGenericJoin, Cancel);
}

void QueryExecutor::warm(const std::vector<AtomFilter> &Filters,
                         uint32_t DeltaBound) {
  I->warm(Filters, DeltaBound);
}

void QueryExecutor::executeCollectReadOnly(
    const std::vector<AtomFilter> &Filters, uint32_t DeltaBound,
    std::vector<Value> &Arena, size_t &Count, bool UseGenericJoin,
    const std::function<bool()> *Cancel) {
  I->CollectArena = &Arena;
  I->CollectCount = &Count;
  I->ReadOnly = true;
  I->execute(Filters, DeltaBound, UseGenericJoin, Cancel);
}

void egglog::executeQuery(EGraph &Graph, const Query &Q,
                          const std::vector<AtomFilter> &Filters,
                          uint32_t DeltaBound, const MatchCallback &Callback,
                          bool UseGenericJoin,
                          const std::function<bool()> *Cancel) {
  QueryExecutor(Graph, Q).execute(Filters, DeltaBound, Callback,
                                  UseGenericJoin, Cancel);
}

void egglog::executeQueryDelta(EGraph &Graph, const Query &Q,
                               uint32_t DeltaBound,
                               const MatchCallback &Callback,
                               bool UseGenericJoin,
                               const std::function<bool()> *Cancel) {
  QueryExecutor(Graph, Q).executeDelta(DeltaBound, Callback, UseGenericJoin,
                                       Cancel);
}
