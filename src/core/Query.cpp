//===- core/Query.cpp - Relational query execution --------------------------===//
//
// Part of egglog-cpp. See Query.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Query.h"

#include <algorithm>
#include <cassert>

using namespace egglog;

namespace {

/// Execution state for one atom: its filtered candidate rows sorted by the
/// global variable order, and the currently narrowed range.
struct AtomExec {
  const QueryAtom *Atom = nullptr;
  /// Filtered candidate rows (pointers into the table's cells; stable
  /// because queries never mutate tables).
  std::vector<const Value *> Rows;
  /// The atom's distinct variables as (variable, term index) pairs, sorted
  /// by the global variable order. Only the first occurrence of a repeated
  /// variable is listed; consistency of repeats is enforced when rows are
  /// materialized.
  std::vector<std::pair<uint32_t, unsigned>> Cols;
  size_t Lo = 0, Hi = 0;
  /// Number of leading columns already bound at the current depth.
  unsigned Depth = 0;
};

/// Backtracking trail entry: a variable binding or a primitive execution to
/// undo.
struct TrailEntry {
  bool IsVar;
  uint32_t Index;
};

/// The generic-join interpreter.
class Joiner {
public:
  Joiner(EGraph &Graph, const Query &Q, const MatchCallback &Callback,
         const std::function<bool()> *Cancel)
      : Graph(Graph), Q(Q), Callback(Callback), Cancel(Cancel) {}

  void run(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound) {
    if (!materialize(Filters, DeltaBound))
      return;
    chooseVariableOrder();
    sortAtoms();
    Env.assign(Q.NumVars, Value());
    BoundFlags.assign(Q.NumVars, false);
    PrimDone.assign(Q.Prims.size(), false);
    // Bind nothing yet, but primitives with no variable inputs can run
    // immediately (e.g. constant filters).
    if (!runReadyPrims())
      return;
    joinLevel(0);
  }

  void runNaive(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound) {
    if (!materialize(Filters, DeltaBound))
      return;
    Env.assign(Q.NumVars, Value());
    BoundFlags.assign(Q.NumVars, false);
    PrimDone.assign(Q.Prims.size(), false);
    if (!runReadyPrims())
      return;
    naiveLevel(0);
  }

private:
  EGraph &Graph;
  const Query &Q;
  const MatchCallback &Callback;
  const std::function<bool()> *Cancel;
  uint64_t StepCount = 0;
  bool Cancelled = false;

  bool checkCancel() {
    if (Cancelled)
      return true;
    if (!Cancel || (++StepCount & 0xFFF) != 0)
      return false;
    Cancelled = (*Cancel)();
    return Cancelled;
  }

  std::vector<AtomExec> Atoms;
  std::vector<uint32_t> VarOrder;
  std::vector<Value> Env;
  std::vector<bool> BoundFlags;
  std::vector<bool> PrimDone;
  std::vector<TrailEntry> Trail;

  /// Builds each atom's candidate row list. Returns false if any atom has
  /// no candidates (query is empty).
  bool materialize(const std::vector<AtomFilter> &Filters,
                   uint32_t DeltaBound) {
    Atoms.clear();
    Atoms.reserve(Q.Atoms.size());
    for (size_t AtomIndex = 0; AtomIndex < Q.Atoms.size(); ++AtomIndex) {
      const QueryAtom &Atom = Q.Atoms[AtomIndex];
      AtomFilter Filter =
          Filters.empty() ? AtomFilter::All : Filters[AtomIndex];
      AtomExec Exec;
      Exec.Atom = &Atom;

      // Canonicalize the constants once.
      std::vector<std::pair<unsigned, Value>> Consts;
      std::vector<std::pair<unsigned, unsigned>> Repeats;
      std::vector<bool> SeenVar;
      std::vector<unsigned> FirstPos;
      for (unsigned I = 0; I < Atom.Terms.size(); ++I) {
        const VarOrConst &Term = Atom.Terms[I];
        if (!Term.IsVar) {
          Consts.emplace_back(I, Graph.canonicalize(Term.Const));
          continue;
        }
        if (Term.Var >= SeenVar.size()) {
          SeenVar.resize(Term.Var + 1, false);
          FirstPos.resize(Term.Var + 1, 0);
        }
        if (SeenVar[Term.Var]) {
          Repeats.emplace_back(FirstPos[Term.Var], I);
        } else {
          SeenVar[Term.Var] = true;
          FirstPos[Term.Var] = I;
          Exec.Cols.emplace_back(Term.Var, I);
        }
      }

      const Table &T = *Graph.function(Atom.Func).Storage;
      size_t Count = T.rowCount();
      for (size_t Row = 0; Row < Count; ++Row) {
        if (!T.isLive(Row))
          continue;
        uint32_t Stamp = T.stamp(Row);
        if (Filter == AtomFilter::Old && Stamp >= DeltaBound)
          continue;
        if (Filter == AtomFilter::New && Stamp < DeltaBound)
          continue;
        const Value *Cells = T.row(Row);
        bool Match = true;
        for (const auto &[Pos, Const] : Consts) {
          if (Cells[Pos] != Const) {
            Match = false;
            break;
          }
        }
        if (Match) {
          for (const auto &[First, Later] : Repeats) {
            if (Cells[First] != Cells[Later]) {
              Match = false;
              break;
            }
          }
        }
        if (Match)
          Exec.Rows.push_back(Cells);
      }
      if (Exec.Rows.empty())
        return false;
      Exec.Lo = 0;
      Exec.Hi = Exec.Rows.size();
      Atoms.push_back(std::move(Exec));
    }
    return true;
  }

  /// Greedy variable ordering: most-constrained (highest atom occurrence)
  /// first, breaking ties toward variables whose atoms are small.
  void chooseVariableOrder() {
    std::vector<unsigned> Occurrences(Q.NumVars, 0);
    std::vector<size_t> MinAtomSize(Q.NumVars, SIZE_MAX);
    for (const AtomExec &Exec : Atoms) {
      for (const auto &[Var, Pos] : Exec.Cols) {
        ++Occurrences[Var];
        MinAtomSize[Var] = std::min(MinAtomSize[Var], Exec.Rows.size());
      }
    }
    VarOrder.clear();
    for (uint32_t Var = 0; Var < Q.NumVars; ++Var)
      if (Occurrences[Var] > 0)
        VarOrder.push_back(Var);
    std::stable_sort(VarOrder.begin(), VarOrder.end(),
                     [&](uint32_t A, uint32_t B) {
                       if (Occurrences[A] != Occurrences[B])
                         return Occurrences[A] > Occurrences[B];
                       return MinAtomSize[A] < MinAtomSize[B];
                     });
    // Re-sort each atom's columns by the chosen order.
    std::vector<unsigned> Position(Q.NumVars, 0);
    for (unsigned I = 0; I < VarOrder.size(); ++I)
      Position[VarOrder[I]] = I;
    for (AtomExec &Exec : Atoms)
      std::stable_sort(Exec.Cols.begin(), Exec.Cols.end(),
                       [&](const auto &A, const auto &B) {
                         return Position[A.first] < Position[B.first];
                       });
  }

  void sortAtoms() {
    for (AtomExec &Exec : Atoms) {
      std::sort(Exec.Rows.begin(), Exec.Rows.end(),
                [&](const Value *A, const Value *B) {
                  for (const auto &[Var, Pos] : Exec.Cols) {
                    if (A[Pos] != B[Pos])
                      return A[Pos] < B[Pos];
                  }
                  return false;
                });
    }
  }

  size_t trailMark() const { return Trail.size(); }

  void trailUndo(size_t Mark) {
    while (Trail.size() > Mark) {
      TrailEntry Entry = Trail.back();
      Trail.pop_back();
      if (Entry.IsVar)
        BoundFlags[Entry.Index] = false;
      else
        PrimDone[Entry.Index] = false;
    }
  }

  bool bindVar(uint32_t Var, Value V) {
    if (BoundFlags[Var])
      return Env[Var] == V;
    Env[Var] = V;
    BoundFlags[Var] = true;
    Trail.push_back(TrailEntry{true, Var});
    return true;
  }

  bool termReady(const VarOrConst &Term) const {
    return !Term.IsVar || BoundFlags[Term.Var];
  }

  Value termValue(const VarOrConst &Term) const {
    return Term.IsVar ? Env[Term.Var] : Term.Const;
  }

  /// Runs every primitive whose inputs are available; returns false if any
  /// fails or contradicts an existing binding.
  bool runReadyPrims() {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t I = 0; I < Q.Prims.size(); ++I) {
        if (PrimDone[I])
          continue;
        const PrimComputation &P = Q.Prims[I];
        bool Ready = true;
        for (const VarOrConst &Arg : P.Args) {
          if (!termReady(Arg)) {
            Ready = false;
            break;
          }
        }
        if (!Ready)
          continue;
        std::vector<Value> Args(P.Args.size());
        for (size_t J = 0; J < P.Args.size(); ++J)
          Args[J] = termValue(P.Args[J]);
        Value Result;
        if (!Graph.primitives().get(P.Prim).Apply(Graph, Args.data(), Result))
          return false;
        if (P.Out.IsVar) {
          if (!bindVar(P.Out.Var, Result))
            return false;
        } else if (Result != P.Out.Const) {
          return false;
        }
        PrimDone[I] = true;
        Trail.push_back(TrailEntry{false, static_cast<uint32_t>(I)});
        Progress = true;
      }
    }
    return true;
  }

  /// Narrows atom \p Exec (whose next column must be bound to \p V) to the
  /// equal range for \p V; returns false if empty. Saves nothing; caller
  /// snapshots ranges.
  bool narrowTo(AtomExec &Exec, Value V) {
    unsigned Pos = Exec.Cols[Exec.Depth].second;
    auto Begin = Exec.Rows.begin() + Exec.Lo;
    auto End = Exec.Rows.begin() + Exec.Hi;
    auto Range = std::equal_range(
        Begin, End, V,
        [Pos](const auto &A, const auto &B) {
          if constexpr (std::is_same_v<std::decay_t<decltype(A)>, Value>)
            return A < B[Pos];
          else
            return A[Pos] < B;
        });
    if (Range.first == Range.second)
      return false;
    Exec.Lo = Range.first - Exec.Rows.begin();
    Exec.Hi = Range.second - Exec.Rows.begin();
    ++Exec.Depth;
    return true;
  }

  void emitMatch() {
    // All join variables are bound; flush remaining primitives (those whose
    // outputs feed nothing else may still be pending).
    size_t Mark = trailMark();
    if (runReadyPrims()) {
      bool AllDone = true;
      for (size_t I = 0; I < Q.Prims.size(); ++I)
        AllDone &= static_cast<bool>(PrimDone[I]);
      assert(AllDone && "primitive left unexecuted; typechecker should have "
                        "rejected this query");
      Callback(Env);
    }
    trailUndo(Mark);
  }

  void joinLevel(size_t Level) {
    if (checkCancel())
      return;
    if (Level == VarOrder.size()) {
      emitMatch();
      return;
    }
    uint32_t Var = VarOrder[Level];

    // Participants: atoms whose next unbound column is Var.
    std::vector<size_t> Participants;
    for (size_t I = 0; I < Atoms.size(); ++I) {
      AtomExec &Exec = Atoms[I];
      if (Exec.Depth < Exec.Cols.size() && Exec.Cols[Exec.Depth].first == Var)
        Participants.push_back(I);
    }

    // Snapshot the participant ranges for backtracking.
    struct Saved {
      size_t Lo, Hi;
      unsigned Depth;
    };
    std::vector<Saved> SavedRanges(Participants.size());
    auto Snapshot = [&]() {
      for (size_t I = 0; I < Participants.size(); ++I) {
        AtomExec &Exec = Atoms[Participants[I]];
        SavedRanges[I] = Saved{Exec.Lo, Exec.Hi, Exec.Depth};
      }
    };
    auto Restore = [&]() {
      for (size_t I = 0; I < Participants.size(); ++I) {
        AtomExec &Exec = Atoms[Participants[I]];
        Exec.Lo = SavedRanges[I].Lo;
        Exec.Hi = SavedRanges[I].Hi;
        Exec.Depth = SavedRanges[I].Depth;
      }
    };

    if (BoundFlags[Var]) {
      // The variable was computed by a primitive: check, don't enumerate.
      Snapshot();
      bool Alive = true;
      for (size_t Index : Participants)
        if (!narrowTo(Atoms[Index], Env[Var])) {
          Alive = false;
          break;
        }
      if (Alive)
        joinLevel(Level + 1);
      Restore();
      return;
    }

    assert(!Participants.empty() &&
           "join variable not constrained by any atom");

    // Driver: the participant with the smallest current range.
    size_t Driver = Participants[0];
    for (size_t Index : Participants)
      if (Atoms[Index].Hi - Atoms[Index].Lo <
          Atoms[Driver].Hi - Atoms[Driver].Lo)
        Driver = Index;
    AtomExec &DriverExec = Atoms[Driver];
    unsigned DriverPos = DriverExec.Cols[DriverExec.Depth].second;

    size_t GroupStart = DriverExec.Lo;
    size_t DriverHi = DriverExec.Hi;
    while (GroupStart < DriverHi) {
      Value Candidate = DriverExec.Rows[GroupStart][DriverPos];
      size_t GroupEnd = GroupStart + 1;
      while (GroupEnd < DriverHi &&
             DriverExec.Rows[GroupEnd][DriverPos] == Candidate)
        ++GroupEnd;

      Snapshot();
      size_t Mark = trailMark();
      bool Alive = true;
      for (size_t Index : Participants) {
        if (Index == Driver) {
          AtomExec &Exec = Atoms[Index];
          Exec.Lo = GroupStart;
          Exec.Hi = GroupEnd;
          ++Exec.Depth;
          continue;
        }
        if (!narrowTo(Atoms[Index], Candidate)) {
          Alive = false;
          break;
        }
      }
      if (Alive && bindVar(Var, Candidate) && runReadyPrims())
        joinLevel(Level + 1);
      trailUndo(Mark);
      Restore();

      GroupStart = GroupEnd;
    }
  }

  /// Baseline nested-loop join for the ablation study: walks atoms in
  /// declaration order binding variables row by row.
  void naiveLevel(size_t AtomIndex) {
    if (checkCancel())
      return;
    if (AtomIndex == Atoms.size()) {
      emitMatch();
      return;
    }
    AtomExec &Exec = Atoms[AtomIndex];
    for (const Value *Row : Exec.Rows) {
      size_t Mark = trailMark();
      bool Alive = true;
      for (const auto &[Var, Pos] : Exec.Cols) {
        if (!bindVar(Var, Row[Pos])) {
          Alive = false;
          break;
        }
      }
      if (Alive && runReadyPrims())
        naiveLevel(AtomIndex + 1);
      trailUndo(Mark);
    }
  }
};

} // namespace

void egglog::executeQuery(EGraph &Graph, const Query &Q,
                          const std::vector<AtomFilter> &Filters,
                          uint32_t DeltaBound, const MatchCallback &Callback,
                          bool UseGenericJoin,
                          const std::function<bool()> *Cancel) {
  Joiner J(Graph, Q, Callback, Cancel);
  if (UseGenericJoin)
    J.run(Filters, DeltaBound);
  else
    J.runNaive(Filters, DeltaBound);
}
