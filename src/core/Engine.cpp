//===- core/Engine.cpp - Fixpoint rule engine --------------------------------===//
//
// Part of egglog-cpp. See Engine.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "core/ApplyStage.h"
#include "core/Query.h"
#include "support/FailPoints.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <optional>
#include <thread>

using namespace egglog;

// Out of line so Engine.h can hold ThreadPool behind a forward
// declaration.
Engine::Engine(EGraph &Graph) : Graph(Graph) {
  RulesetNames.push_back(""); // the default ruleset
}
Engine::~Engine() = default;

void Engine::setThreads(unsigned N) {
  // Clamp to a sane span: spawning threads far beyond the hardware only
  // adds scheduling overhead, and an absurd request (every entry point —
  // set-option, --threads flags, direct API — funnels through here) must
  // not make ThreadPool's constructor throw on resource exhaustion.
  unsigned Hardware = std::thread::hardware_concurrency();
  unsigned Cap = std::max(8u, 4 * Hardware); // hardware_concurrency may be 0
  NumThreads = std::clamp(N, 1u, std::min(Cap, 256u));
  // A differently-sized pool is recreated lazily by the next parallel run.
  if (Pool && Pool->threads() != NumThreads)
    Pool.reset();
}

namespace {

/// True if every primitive computation in \p Q is safe to run on the
/// read-only parallel match path. Classified conservatively by signature:
/// a primitive whose output is interned (string / rational / set) mutates
/// the interners, and one taking an id or container argument may
/// canonicalize (union-find path-compression writes, set re-interning).
/// Rules failing this run in the serial prelude of the match phase.
bool queryIsParallelSafe(const EGraph &G, const Query &Q) {
  for (const PrimComputation &P : Q.Prims) {
    const Primitive &Prim = G.primitives().get(P.Prim);
    switch (G.sorts().kind(Prim.OutSort)) {
    case SortKind::Unit:
    case SortKind::Bool:
    case SortKind::I64:
    case SortKind::F64:
      break;
    default:
      return false;
    }
    for (SortId Arg : Prim.ArgSorts) {
      SortKind Kind = G.sorts().kind(Arg);
      if (Kind == SortKind::User || Kind == SortKind::Set)
        return false;
    }
  }
  return true;
}

} // namespace

void Engine::ensureVariantExecutors() {
  if (VariantExecutors.size() == Rules.size())
    return;
  VariantExecutors.clear();
  VariantExecutors.reserve(Rules.size());
  RuleParallelSafe.clear();
  RuleParallelSafe.reserve(Rules.size());
  RuleStageSafe.clear();
  RuleStageSafe.reserve(Rules.size());
  for (const Rule &R : Rules) {
    // One context per semi-naïve delta variant; slot 0 doubles as the
    // non-incremental (full) context, so a rule always has at least one.
    size_t NumVariants = std::max<size_t>(1, R.Body.Atoms.size());
    std::vector<std::unique_ptr<QueryExecutor>> Variants;
    Variants.reserve(NumVariants);
    for (size_t V = 0; V < NumVariants; ++V)
      Variants.push_back(std::make_unique<QueryExecutor>(Graph, R.Body));
    VariantExecutors.push_back(std::move(Variants));
    RuleParallelSafe.push_back(queryIsParallelSafe(Graph, R.Body));
    RuleStageSafe.push_back(actionsAreStageSafe(Graph, R));
  }
}

size_t Engine::addRule(Rule R) {
  assert(R.Ruleset < RulesetNames.size() && "rule names an unknown ruleset");
  Rules.push_back(std::move(R));
  States.push_back(RuleState{});
  return Rules.size() - 1;
}

RulesetId Engine::declareRuleset(const std::string &Name) {
  assert(!Name.empty() && "the default ruleset has no name");
  assert(RulesetIds.find(Name) == RulesetIds.end() && "ruleset redeclared");
  RulesetId Id = static_cast<RulesetId>(RulesetNames.size());
  RulesetNames.push_back(Name);
  RulesetIds.emplace(Name, Id);
  return Id;
}

bool Engine::lookupRuleset(const std::string &Name, RulesetId &Out) const {
  if (Name.empty()) {
    Out = 0;
    return true;
  }
  auto It = RulesetIds.find(Name);
  if (It == RulesetIds.end())
    return false;
  Out = It->second;
  return true;
}

uint64_t Engine::mutationStamp() const {
  uint64_t Stamp = Graph.unionFind().unionCount();
  for (size_t F = 0; F < Graph.numFunctions(); ++F)
    Stamp += Graph.function(F).Storage->version();
  return Stamp;
}

bool Engine::anyBanPending(RulesetId Ruleset) const {
  for (size_t R = 0; R < Rules.size(); ++R)
    if (Rules[R].Ruleset == Ruleset && GlobalIteration < States[R].BannedUntil)
      return true;
  return false;
}

void Engine::fastForwardBans(RulesetId Ruleset) {
  uint64_t Earliest = UINT64_MAX;
  for (size_t R = 0; R < Rules.size(); ++R)
    if (Rules[R].Ruleset == Ruleset && GlobalIteration < States[R].BannedUntil)
      Earliest = std::min(Earliest, States[R].BannedUntil);
  if (Earliest == UINT64_MAX)
    return;
  // Shift this ruleset's bans earlier by the dead time instead of
  // advancing the shared iteration clock: other rulesets' bans must keep
  // suppressing their rules for the full span of *actual* iterations.
  // run() pre-increments GlobalIteration, so an expiry of
  // GlobalIteration + 1 makes the earliest-banned rule runnable in the
  // very next iteration; relative expiry order within the ruleset is
  // preserved.
  uint64_t Dead = Earliest - (GlobalIteration + 1);
  if (Dead == 0)
    return;
  for (size_t R = 0; R < Rules.size(); ++R)
    if (Rules[R].Ruleset == Ruleset && GlobalIteration < States[R].BannedUntil)
      States[R].BannedUntil -= Dead;
}

uint64_t Engine::contentHashAt(uint64_t Stamp) {
  if (!CachedSigValid || CachedSigStamp != Stamp) {
    CachedSigHash = Graph.liveContentHash();
    CachedSigStamp = Stamp;
    CachedSigValid = true;
  }
  return CachedSigHash;
}

RunReport Engine::run(const RunOptions &Options) {
  RunReport Report;
  Timer Total;

  // (Re)create the execution contexts if rules were added since the last
  // run (Rules may have reallocated, invalidating the Query references
  // the executors hold; a size mismatch is the only way that happens —
  // restore() clears both sets outright). Each mode validates only its
  // own contexts, so a parallel-only session never builds the serial
  // per-rule executors and alternating modes doesn't thrash either set.
  const bool Parallel = NumThreads > 1;
  if (!Parallel && Executors.size() != Rules.size()) {
    Executors.clear();
    Executors.reserve(Rules.size());
    for (const Rule &R : Rules)
      Executors.push_back(std::make_unique<QueryExecutor>(Graph, R.Body));
  }
  if (Parallel) {
    ensureVariantExecutors();
    if (!Pool)
      Pool = std::make_unique<ThreadPool>(NumThreads);
  }

  // Top-level unions between runs leave the database non-canonical; queries
  // require canonical form.
  if (Graph.needsRebuild()) {
    if (Parallel)
      Graph.rebuildParallel(*Pool);
    else
      Graph.rebuild();
  }
  if (Graph.failed()) {
    Report.TotalSeconds = Total.seconds();
    return Report;
  }

  // Saturation detection compares the database's live content across an
  // iteration: live counts (not rowCount(), which includes dead rows) and,
  // only when the counts stall, an order-independent content hash.
  // Dead-row churn — a kill and re-append of identical live content —
  // cannot mask saturation, while a merge that changes an output (same
  // live count!) still registers as progress. The hash state persists on
  // the Engine, so it is recomputed only at candidate saturation points —
  // at worst one extra iteration runs before saturation is declared.
  size_t LiveBefore = Graph.liveTupleCount();
  uint64_t UnionsBefore = Graph.unionFind().unionCount();
  if (HasContentHash && mutationStamp() != LastMutationStamp)
    HasContentHash = false;

  const ResourceGovernor &Gov = Graph.governor();
  for (unsigned Iter = 0; Iter < Options.Iterations; ++Iter) {
    ++GlobalIteration;
    IterationStats Stats;
    Timer Phase;
    EGGLOG_FAILPOINT("engine.iter");

    auto TimedOutNow = [&] {
      return Options.TimeoutSeconds > 0 &&
             Total.seconds() > Options.TimeoutSeconds;
    };
    auto RuleThreshold = [&](size_t R) {
      // BackOff threshold: collection aborts as soon as a rule exceeds it
      // (the matches would be dropped anyway, and collecting them all can
      // exhaust memory on explosive rule sets).
      return Options.UseBackoff
                 ? (Options.BackoffMatchLimit << States[R].TimesBanned)
                 : UINT64_MAX;
    };

    //=== Match phase: collect matches for every runnable rule. ============
    // Matches are collected into flat arenas (NumVars values per match),
    // one chunk per rule in serial mode and one per (rule, delta variant)
    // in parallel mode; either way the apply phase drains them in (rule
    // declaration, variant, match) order, so the database mutation order —
    // and with it every fresh id and liveContentHash — is independent of
    // the thread count. Rules outside the selected ruleset are skipped
    // entirely; their DeltaStart stays put, so when their ruleset next
    // runs, the delta covers everything that happened in between (phased
    // schedules stay semi-naïve-correct).
    struct MatchChunk {
      size_t Rule = 0;
      std::vector<Value> Arena;
      size_t Count = 0;
    };
    std::vector<MatchChunk> Chunks;
    bool AnyBanned = false;
    bool SearchTimedOut = false;

    if (!Parallel) {
      // The classic serial loop: search and bookkeeping interleaved per
      // rule, lazily refreshing table indexes on the way.
      Chunks.reserve(Rules.size());
      for (size_t R = 0; R < Rules.size(); ++R) {
        if (Rules[R].Ruleset != Options.Ruleset)
          continue;
        RuleState &State = States[R];
        if (Options.UseBackoff && GlobalIteration < State.BannedUntil) {
          AnyBanned = true;
          continue;
        }
        const Query &Body = Rules[R].Body;
        Chunks.emplace_back();
        MatchChunk &Chunk = Chunks.back();
        Chunk.Rule = R;

        uint64_t Threshold = RuleThreshold(R);
        std::function<bool()> Cancel = [&] {
          EGGLOG_FAILPOINT("match.step");
          return TimedOutNow() || Chunk.Count > Threshold ||
                 Gov.pollQuick() != GovernorVerdict::Ok;
        };
        bool Incremental = Options.SemiNaive && State.DeltaStart > 0 &&
                           !Body.Atoms.empty();
        if (!Incremental) {
          Executors[R]->executeCollect({}, 0, Chunk.Arena, Chunk.Count,
                                       Options.GenericJoin, &Cancel);
        } else {
          // One delta variant per atom (§4.3), all sharing the rule's
          // persistent execution context and the cached table indexes.
          Executors[R]->executeDeltaCollect(State.DeltaStart, Chunk.Arena,
                                            Chunk.Count, Options.GenericJoin,
                                            &Cancel);
        }
        if (TimedOutNow()) {
          SearchTimedOut = true;
          break;
        }

        // BackOff scheduling: drop matches and ban the rule if it exceeded
        // its (exponentially growing) threshold. The rule's DeltaStart is
        // left untouched so the dropped work is re-derived after the ban.
        if (Chunk.Count > Threshold) {
          uint64_t BanSpan = Options.BackoffBanLength << State.TimesBanned;
          State.BannedUntil = GlobalIteration + BanSpan;
          ++State.TimesBanned;
          AnyBanned = true;
          Chunks.pop_back();
          continue;
        }
        State.DeltaStart = Graph.timestamp() + 1;
        Stats.Matches += Chunk.Count;
      }
    } else {
      //--- Warm-up: hoist every lazy mutation off the read path. ---------
      // After this pre-pass the database is untouched until apply: tables
      // catch their occurrence indexes up, and each work item's warm()
      // builds/refreshes the column indexes and partition counts its
      // read-only execution will peek at, and canonicalizes its query
      // constants.
      Graph.warm();
      struct WorkItem {
        size_t Rule = 0;
        QueryExecutor *Exec = nullptr;
        /// Per-atom delta restriction; empty = unrestricted (the full,
        /// non-incremental search).
        std::vector<AtomFilter> Filters;
        uint32_t Bound = 0;
        std::vector<Value> Arena;
        size_t Count = 0;
        /// Share of Count already added to the rule's shared counter (for
        /// cross-variant BackOff cancellation).
        uint64_t Published = 0;
      };
      std::vector<WorkItem> Items; // (rule, variant) ascending
      for (size_t R = 0; R < Rules.size(); ++R) {
        if (Rules[R].Ruleset != Options.Ruleset)
          continue;
        RuleState &State = States[R];
        if (Options.UseBackoff && GlobalIteration < State.BannedUntil) {
          AnyBanned = true;
          continue;
        }
        const Query &Body = Rules[R].Body;
        bool Incremental = Options.SemiNaive && State.DeltaStart > 0 &&
                           !Body.Atoms.empty();
        size_t NumVariants = Incremental ? Body.Atoms.size() : 1;
        for (size_t V = 0; V < NumVariants; ++V) {
          WorkItem Item;
          Item.Rule = R;
          Item.Exec = VariantExecutors[R][V].get();
          if (Incremental) {
            Item.Bound = State.DeltaStart;
            makeDeltaVariantFilters(Item.Filters, V, Body.Atoms.size());
          }
          Items.push_back(std::move(Item));
        }
      }
      // Only items headed for the read-only fan-out need warming: the
      // serial prelude's executeCollect performs the same (mutating)
      // materialize itself.
      for (WorkItem &Item : Items)
        if (RuleParallelSafe[Item.Rule])
          Item.Exec->warm(Item.Filters, Item.Bound);
      Stats.WarmSeconds = Phase.seconds();

      //--- Match: serial prelude, then the fan-out. ----------------------
      auto RuleCounts =
          std::make_unique<std::atomic<uint64_t>[]>(Rules.size());
      auto RunItem = [&](WorkItem &Item, bool ReadOnlyPath) {
        uint64_t Threshold = RuleThreshold(Item.Rule);
        std::function<bool()> Cancel = [&Item, &RuleCounts, &TimedOutNow,
                                        &Gov, Threshold] {
          EGGLOG_FAILPOINT("match.step");
          if (TimedOutNow() || Gov.pollQuick() != GovernorVerdict::Ok)
            return true;
          if (Threshold == UINT64_MAX)
            return false;
          // Publish this variant's progress so sibling variants of an
          // over-matching rule abort too. The ban decision stays
          // deterministic: an abort fires only once the published total
          // exceeds the threshold, and then the final total — published
          // counts only ever grow — exceeds it as well.
          uint64_t Unpublished = Item.Count - Item.Published;
          if (Unpublished) {
            RuleCounts[Item.Rule].fetch_add(Unpublished,
                                            std::memory_order_relaxed);
            Item.Published = Item.Count;
          }
          return RuleCounts[Item.Rule].load(std::memory_order_relaxed) >
                 Threshold;
        };
        if (ReadOnlyPath)
          Item.Exec->executeCollectReadOnly(Item.Filters, Item.Bound,
                                            Item.Arena, Item.Count,
                                            Options.GenericJoin, &Cancel);
        else
          Item.Exec->executeCollect(Item.Filters, Item.Bound, Item.Arena,
                                    Item.Count, Options.GenericJoin,
                                    &Cancel);
      };
      // Serial prelude: rules whose query primitives may intern values or
      // canonicalize ids (see queryIsParallelSafe) mutate structures the
      // read-only workers read, so they run here first, on this thread, in
      // declaration order — which also keeps their interning order
      // deterministic.
      for (WorkItem &Item : Items)
        if (!RuleParallelSafe[Item.Rule])
          RunItem(Item, /*ReadOnlyPath=*/false);
      std::vector<size_t> ParallelItems;
      ParallelItems.reserve(Items.size());
      for (size_t I = 0; I < Items.size(); ++I)
        if (RuleParallelSafe[Items[I].Rule])
          ParallelItems.push_back(I);
      Pool->parallelFor(
          ParallelItems.size(),
          [&](size_t K) {
            RunItem(Items[ParallelItems[K]], /*ReadOnlyPath=*/true);
          },
          "match");

      if (TimedOutNow()) {
        SearchTimedOut = true;
      } else {
        // Per-rule totals drive BackOff and the semi-naïve bookkeeping
        // exactly as the serial loop does.
        std::vector<uint64_t> RuleTotal(Rules.size(), 0);
        std::vector<char> RuleRan(Rules.size(), 0);
        for (const WorkItem &Item : Items) {
          RuleTotal[Item.Rule] += Item.Count;
          RuleRan[Item.Rule] = 1;
        }
        std::vector<char> RuleDropped(Rules.size(), 0);
        for (size_t R = 0; R < Rules.size(); ++R) {
          if (!RuleRan[R])
            continue;
          RuleState &State = States[R];
          if (RuleTotal[R] > RuleThreshold(R)) {
            uint64_t BanSpan = Options.BackoffBanLength << State.TimesBanned;
            State.BannedUntil = GlobalIteration + BanSpan;
            ++State.TimesBanned;
            AnyBanned = true;
            RuleDropped[R] = 1;
            continue;
          }
          State.DeltaStart = Graph.timestamp() + 1;
          Stats.Matches += RuleTotal[R];
        }
        Chunks.reserve(Items.size());
        for (WorkItem &Item : Items) {
          if (RuleDropped[Item.Rule])
            continue;
          Chunks.push_back(
              MatchChunk{Item.Rule, std::move(Item.Arena), Item.Count});
        }
      }
    }
    Stats.SearchSeconds = Phase.seconds();
    // Governor trips are hard stops (ErrKind::Limit, command rolls back),
    // unlike the legacy RunOptions timeout below, which is a graceful
    // partial-result stop at iteration granularity.
    if (Graph.governorTripped()) {
      Report.Iterations.push_back(Stats);
      Report.TotalSeconds = Total.seconds();
      return Report;
    }
    if (SearchTimedOut) {
      Report.TimedOut = true;
      Report.Iterations.push_back(Stats);
      Report.TotalSeconds = Total.seconds();
      return Report;
    }

    //=== Apply phase: run the actions of all collected matches, chunk by
    //=== chunk in the deterministic (rule, variant, match) order. =========
    Phase.reset();
    Graph.bumpTimestamp();
    std::vector<char> UseStaged(Chunks.size(), 0);
    std::vector<StagedChunk> Staged;
    if (Parallel) {
      //--- Stage: fan the read-only half of apply out over the pool. -----
      // Each stage-safe chunk's action walking, primitive evaluation, and
      // frozen table probes run concurrently, emitting an op list the
      // serial tail below replays; the database itself is untouched until
      // that tail (see core/ApplyStage.h for the determinism argument).
      Staged.resize(Chunks.size());
      std::vector<size_t> StageItems;
      for (size_t C = 0; C < Chunks.size(); ++C)
        if (RuleStageSafe[Chunks[C].Rule] && Chunks[C].Count > 0)
          StageItems.push_back(C);
      std::atomic<bool> StageStop{false};
      Pool->parallelFor(
          StageItems.size(),
          [&](size_t K) {
            size_t C = StageItems[K];
            MatchChunk &Chunk = Chunks[C];
            std::function<bool()> Cancel = [&] {
              EGGLOG_FAILPOINT("apply.partition");
              if (StageStop.load(std::memory_order_relaxed))
                return true;
              if (Gov.pollQuick() != GovernorVerdict::Ok) {
                StageStop.store(true, std::memory_order_relaxed);
                return true;
              }
              return false;
            };
            UseStaged[C] =
                stageChunkActions(Graph, Rules[Chunk.Rule],
                                  Chunk.Arena.data(), Chunk.Count,
                                  Staged[C], &Cancel);
          },
          "apply.stage");
      Stats.ApplyStageSeconds = Phase.seconds();
      if (Graph.governorTripped()) {
        Report.Iterations.push_back(Stats);
        Report.TotalSeconds = Total.seconds();
        return Report;
      }
    }
    //--- Serial tail: the only phase that mutates the database. ----------
    // Chunks drain in the same order either way; a staged chunk replays
    // its op list (validating every frozen probe against the unions done
    // since the freeze), the rest run the classic per-match loop at their
    // position. Thread count therefore cannot change mutation order.
    // (The dirty tracker's bitmap is sized to the union-find, so serial
    // mode — which never consults it — skips building one.)
    std::optional<PhaseDirty> ApplyDirty;
    if (Parallel)
      ApplyDirty.emplace(Graph.unionFind());
    std::vector<Value> Env, Resolved, Scratch;
    for (size_t C = 0; C < Chunks.size(); ++C) {
      MatchChunk &Chunk = Chunks[C];
      const Rule &TheRule = Rules[Chunk.Rule];
      if (UseStaged[C]) {
        if (!drainStagedChunk(Graph, Staged[C], *ApplyDirty, Resolved,
                              Scratch)) {
          Report.Iterations.push_back(Stats);
          Report.TotalSeconds = Total.seconds();
          return Report;
        }
        continue;
      }
      size_t Stride = TheRule.Body.NumVars;
      for (size_t M = 0; M < Chunk.Count; ++M) {
        if (!Graph.governorCheckpoint("apply.match")) {
          Report.Iterations.push_back(Stats);
          Report.TotalSeconds = Total.seconds();
          return Report;
        }
        const Value *Match = Chunk.Arena.data() + M * Stride;
        Env.assign(Match, Match + Stride);
        Env.resize(TheRule.NumSlots);
        if (!Graph.runActions(TheRule.Actions, Env)) {
          if (Graph.failed()) {
            Report.TotalSeconds = Total.seconds();
            Report.Iterations.push_back(Stats);
            return Report;
          }
          // A failed action (e.g. primitive failure) only abandons this
          // match, mirroring guarded rewrites.
          Graph.clearError();
        }
      }
    }
    Stats.ApplySeconds = Phase.seconds();

    //=== Rebuild phase: restore congruence and canonical form. ============
    Phase.reset();
    Stats.RebuildPasses =
        Parallel ? Graph.rebuildParallel(*Pool, &Stats.RebuildGatherSeconds)
                 : Graph.rebuild();
    Stats.RebuildSeconds = Phase.seconds();
    if (Graph.failed()) {
      Report.Iterations.push_back(Stats);
      Report.TotalSeconds = Total.seconds();
      return Report;
    }

    Stats.TuplesAfter = Graph.liveTupleCount();
    Stats.UnionsAfter = Graph.unionFind().unionCount();
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.TuplesAfter != LiveBefore ||
                   Stats.UnionsAfter != UnionsBefore;
    if (!Changed && !AnyBanned) {
      // Only a potential saturation point (no banned rules pending) needs
      // the content-hash tiebreak. Matching a previously hashed state
      // means the engine revisited it — a fixpoint or a churn cycle —
      // so stopping is sound either way.
      uint64_t ContentAfter = Graph.liveContentHash();
      Changed = !HasContentHash || ContentAfter != LastContentHash;
      LastContentHash = ContentAfter;
      LastMutationStamp = mutationStamp();
      HasContentHash = true;
    }
    LiveBefore = Stats.TuplesAfter;
    UnionsBefore = Stats.UnionsAfter;

    if (!Changed && !AnyBanned) {
      Report.Saturated = true;
      break;
    }
    if (Options.NodeLimit && Stats.TuplesAfter > Options.NodeLimit) {
      Report.HitNodeLimit = true;
      break;
    }
    if (Options.TimeoutSeconds > 0 &&
        Total.seconds() > Options.TimeoutSeconds) {
      Report.TimedOut = true;
      break;
    }
  }

  Report.TotalSeconds = Total.seconds();
  return Report;
}

//===----------------------------------------------------------------------===
// Schedule interpretation
//===----------------------------------------------------------------------===

namespace {

/// Folds a leaf run's report into the schedule-wide report. Saturated is
/// NOT folded here: whether the whole schedule is at a fixpoint is a
/// per-node verdict (a later leaf saturating says nothing about an
/// earlier one), set by the node cases below.
void appendReport(RunReport &Total, const RunReport &Leaf) {
  Total.Iterations.insert(Total.Iterations.end(), Leaf.Iterations.begin(),
                          Leaf.Iterations.end());
  Total.HitNodeLimit |= Leaf.HitNodeLimit;
  Total.TimedOut |= Leaf.TimedOut;
}

/// Safety valve for (saturate ...) over schedules that never converge and
/// carry no timeout or node limit. Generous: real workloads either
/// saturate or trip a limit long before this.
constexpr size_t MaxSaturatePasses = 1 << 20;

} // namespace

bool Engine::runScheduleNode(const Schedule &S, const RunOptions &Base,
                             RunReport &Total, Timer &Clock, bool &Stop) {
  if (Stop)
    return false;

  switch (S.ScheduleKind) {
  case Schedule::Kind::Run: {
    RunOptions Opts = Base;
    Opts.Ruleset = S.Ruleset;
    // TimeoutSeconds budgets the whole schedule: hand each run() only what
    // remains on the clock, re-checked before every call.
    auto LeafTimeoutOk = [&] {
      if (Base.TimeoutSeconds <= 0)
        return true;
      double Remaining = Base.TimeoutSeconds - Clock.seconds();
      if (Remaining <= 0) {
        Total.TimedOut = true;
        Stop = true;
        return false;
      }
      Opts.TimeoutSeconds = Remaining;
      return true;
    };

    size_t LiveBefore = Graph.liveTupleCount();
    uint64_t UnionsBefore = Graph.unionFind().unionCount();
    uint64_t StampBefore = mutationStamp();
    uint64_t HashBefore = contentHashAt(StampBefore);

    bool LeafSaturated = false;
    bool GoalMet = false;
    if (S.Until.empty()) {
      if (!LeafTimeoutOk())
        return false;
      Opts.Iterations = S.Times;
      RunReport Leaf = run(Opts);
      LeafSaturated = Leaf.Saturated;
      appendReport(Total, Leaf);
    } else {
      // Run one iteration at a time so the :until facts are re-checked at
      // every step (including before the first, so an already-satisfied
      // goal runs nothing).
      Opts.Iterations = 1;
      for (unsigned Iter = 0; Iter < S.Times; ++Iter) {
        if (Graph.needsRebuild())
          Graph.rebuild();
        bool AllHold = true;
        for (const CheckFact &Fact : S.Until)
          AllHold &= Graph.checkFact(Fact);
        if (AllHold) {
          GoalMet = true;
          break;
        }
        if (!LeafTimeoutOk())
          return false;
        RunReport Leaf = run(Opts);
        LeafSaturated = Leaf.Saturated;
        appendReport(Total, Leaf);
        if (Leaf.Saturated || Leaf.TimedOut || Leaf.HitNodeLimit ||
            Graph.failed())
          break;
      }
    }
    if (Total.TimedOut || Total.HitNodeLimit || Graph.failed())
      Stop = true;
    // This leaf's fixpoint verdict stands when it is the whole schedule;
    // enclosing combinators overwrite it with their own.
    Total.Saturated = LeafSaturated;

    // Progress detection without re-hashing the database in the common
    // cases: an identical mutation stamp means nothing was touched at
    // all, and changed live/union counts are definite progress. Only the
    // ambiguous case — mutations with identical counts, e.g. lattice
    // merges or kill/re-append churn — pays for the content hash.
    bool ContentChanged;
    uint64_t StampAfter = mutationStamp();
    if (StampAfter == StampBefore)
      ContentChanged = false;
    else if (Graph.liveTupleCount() != LiveBefore ||
             Graph.unionFind().unionCount() != UnionsBefore)
      ContentChanged = true;
    else
      ContentChanged = contentHashAt(StampAfter) != HashBefore;

    // Pending BackOff bans count as progress so an enclosing saturate
    // keeps going (the dropped matches are pending) — except when the
    // :until goal is met, which ends this leaf's work regardless. When
    // only bans are pending, skip the dead time until the next expiry.
    bool BansPending =
        !GoalMet && Opts.UseBackoff && anyBanPending(S.Ruleset);
    if (!ContentChanged && BansPending)
      fastForwardBans(S.Ruleset);
    return ContentChanged || BansPending;
  }

  case Schedule::Kind::Seq: {
    bool Updated = false;
    for (const Schedule &Child : S.Children) {
      Updated |= runScheduleNode(Child, Base, Total, Clock, Stop);
      if (Stop)
        break;
    }
    // A multi-child sequence proves no whole-schedule fixpoint of its own
    // (a later leaf saturating says nothing about earlier ones);
    // runSchedule's !Updated check supplies the verdict for the provable
    // case. A single-child seq — e.g. the implicit (run-schedule ...)
    // wrapper — is transparent: its child's verdict stands.
    if (S.Children.size() != 1)
      Total.Saturated = false;
    return Updated;
  }

  case Schedule::Kind::Repeat: {
    bool Updated = false;
    bool BodyAtFixpoint = false;
    for (unsigned Rep = 0; Rep < S.Times && !Stop; ++Rep) {
      bool PassUpdated = false;
      for (const Schedule &Child : S.Children) {
        PassUpdated |= runScheduleNode(Child, Base, Total, Clock, Stop);
        if (Stop)
          break;
      }
      Updated |= PassUpdated;
      // A whole pass without progress is a fixpoint of the repeated body;
      // further repetitions cannot change anything.
      if (!PassUpdated && !Stop) {
        BodyAtFixpoint = true;
        break;
      }
    }
    Total.Saturated = BodyAtFixpoint;
    return Updated;
  }

  case Schedule::Kind::Saturate: {
    bool Updated = false;
    bool Converged = false;
    for (size_t Pass = 0; Pass < MaxSaturatePasses && !Stop; ++Pass) {
      bool PassUpdated = false;
      for (const Schedule &Child : S.Children) {
        PassUpdated |= runScheduleNode(Child, Base, Total, Clock, Stop);
        if (Stop)
          break;
      }
      Updated |= PassUpdated;
      if (!PassUpdated && !Stop) {
        // A whole pass without updates (and no bans pending) IS the
        // saturation proof; the last leaf's own report cannot see it
        // because its single iteration only bootstraps the content hash.
        Converged = true;
        break;
      }
    }
    Total.Saturated = Converged;
    return Updated;
  }
  }
  return false;
}

RunReport Engine::runSchedule(const Schedule &S, const RunOptions &Options) {
  RunReport Total;
  Timer Clock;
  bool Stop = false;
  bool Updated = runScheduleNode(S, Options, Total, Clock, Stop);
  // A schedule that ran to completion without a final update has reached a
  // fixpoint of its body.
  if (!Stop && !Updated)
    Total.Saturated = true;
  Total.TotalSeconds = Clock.seconds();
  return Total;
}

//===----------------------------------------------------------------------===
// Push/pop contexts
//===----------------------------------------------------------------------===

Engine::Snapshot Engine::snapshot() const {
  Snapshot S;
  S.NumRules = Rules.size();
  S.NumRulesets = RulesetNames.size();
  S.States = States;
  S.GlobalIteration = GlobalIteration;
  S.LastContentHash = LastContentHash;
  S.LastMutationStamp = LastMutationStamp;
  S.HasContentHash = HasContentHash;
  return S;
}

void Engine::restore(const Snapshot &S) {
  assert(S.NumRules <= Rules.size() && S.NumRules == S.States.size() &&
         "snapshot is from a different engine");
  // Executors reference Query objects inside Rules; drop them before the
  // rules so the next run() rebuilds fresh contexts.
  Executors.clear();
  VariantExecutors.clear();
  RuleParallelSafe.clear();
  RuleStageSafe.clear();
  Rules.resize(S.NumRules);
  States = S.States;
  for (size_t Id = RulesetNames.size(); Id > S.NumRulesets; --Id)
    RulesetIds.erase(RulesetNames[Id - 1]);
  RulesetNames.resize(S.NumRulesets);
  GlobalIteration = S.GlobalIteration;
  LastContentHash = S.LastContentHash;
  LastMutationStamp = S.LastMutationStamp;
  HasContentHash = S.HasContentHash;
  // restore() resets the union counter, breaking the stamp monotonicity
  // the schedule hash cache relies on — a post-restore stamp can collide
  // with a pre-restore one over different content.
  CachedSigValid = false;
}
