//===- core/Engine.cpp - Fixpoint rule engine --------------------------------===//
//
// Part of egglog-cpp. See Engine.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "core/Query.h"
#include "support/Timer.h"

using namespace egglog;

size_t Engine::addRule(Rule R) {
  Rules.push_back(std::move(R));
  States.push_back(RuleState{});
  return Rules.size() - 1;
}

uint64_t Engine::mutationStamp() const {
  uint64_t Stamp = Graph.unionFind().unionCount();
  for (size_t F = 0; F < Graph.numFunctions(); ++F)
    Stamp += Graph.function(F).Storage->version();
  return Stamp;
}

RunReport Engine::run(const RunOptions &Options) {
  RunReport Report;
  Timer Total;

  // (Re)create the per-rule execution contexts if rules were added since
  // the last run (Rules may have reallocated, invalidating the Query
  // references the executors hold).
  if (Executors.size() != Rules.size()) {
    Executors.clear();
    Executors.reserve(Rules.size());
    for (const Rule &R : Rules)
      Executors.push_back(std::make_unique<QueryExecutor>(Graph, R.Body));
  }

  // Top-level unions between runs leave the database non-canonical; queries
  // require canonical form.
  if (Graph.needsRebuild())
    Graph.rebuild();

  // Saturation detection compares the database's live content across an
  // iteration: live counts (not rowCount(), which includes dead rows) and,
  // only when the counts stall, an order-independent content hash.
  // Dead-row churn — a kill and re-append of identical live content —
  // cannot mask saturation, while a merge that changes an output (same
  // live count!) still registers as progress. The hash state persists on
  // the Engine, so it is recomputed only at candidate saturation points —
  // at worst one extra iteration runs before saturation is declared.
  size_t LiveBefore = Graph.liveTupleCount();
  uint64_t UnionsBefore = Graph.unionFind().unionCount();
  if (HasContentHash && mutationStamp() != LastMutationStamp)
    HasContentHash = false;

  for (unsigned Iter = 0; Iter < Options.Iterations; ++Iter) {
    ++GlobalIteration;
    IterationStats Stats;
    Timer Phase;

    //=== Search phase: collect matches for every runnable rule. ===========
    // Matches are collected per rule into a flat arena (NumVars values per
    // match) rather than one heap vector per match.
    std::vector<std::vector<Value>> AllMatches(Rules.size());
    std::vector<size_t> MatchCounts(Rules.size(), 0);
    bool AnyBanned = false;
    for (size_t R = 0; R < Rules.size(); ++R) {
      RuleState &State = States[R];
      if (Options.UseBackoff && GlobalIteration < State.BannedUntil) {
        AnyBanned = true;
        continue;
      }
      const Rule &TheRule = Rules[R];
      const Query &Body = TheRule.Body;
      std::vector<Value> &Matches = AllMatches[R];
      size_t &Count = MatchCounts[R];

      // BackOff threshold: collection aborts as soon as a rule exceeds it
      // (the matches would be dropped anyway, and collecting them all can
      // exhaust memory on explosive rule sets).
      uint64_t Threshold =
          Options.UseBackoff
              ? (Options.BackoffMatchLimit << State.TimesBanned)
              : UINT64_MAX;
      auto TimedOutNow = [&] {
        return Options.TimeoutSeconds > 0 &&
               Total.seconds() > Options.TimeoutSeconds;
      };
      std::function<bool()> Cancel = [&] {
        return TimedOutNow() || Count > Threshold;
      };
      bool Incremental = Options.SemiNaive && State.DeltaStart > 0 &&
                         !Body.Atoms.empty();
      if (!Incremental) {
        Executors[R]->executeCollect({}, 0, Matches, Count,
                                     Options.GenericJoin, &Cancel);
      } else {
        // One delta variant per atom (§4.3), all sharing the rule's
        // persistent execution context and the cached table indexes.
        Executors[R]->executeDeltaCollect(State.DeltaStart, Matches, Count,
                                          Options.GenericJoin, &Cancel);
      }
      if (TimedOutNow()) {
        Report.TimedOut = true;
        Report.Iterations.push_back(Stats);
        Report.TotalSeconds = Total.seconds();
        return Report;
      }

      // BackOff scheduling: drop matches and ban the rule if it exceeded
      // its (exponentially growing) threshold. The rule's DeltaStart is
      // left untouched so the dropped work is re-derived after the ban.
      if (Count > Threshold) {
        uint64_t BanSpan = Options.BackoffBanLength << State.TimesBanned;
        State.BannedUntil = GlobalIteration + BanSpan;
        ++State.TimesBanned;
        AnyBanned = true;
        Count = 0;
        Matches.clear();
        Matches.shrink_to_fit();
        continue;
      }
      State.DeltaStart = Graph.timestamp() + 1;
      Stats.Matches += Count;
    }
    Stats.SearchSeconds = Phase.seconds();

    //=== Apply phase: run the actions of all collected matches. ===========
    Phase.reset();
    Graph.bumpTimestamp();
    std::vector<Value> Env;
    for (size_t R = 0; R < Rules.size(); ++R) {
      const Rule &TheRule = Rules[R];
      size_t Stride = TheRule.Body.NumVars;
      for (size_t M = 0; M < MatchCounts[R]; ++M) {
        const Value *Match = AllMatches[R].data() + M * Stride;
        Env.assign(Match, Match + Stride);
        Env.resize(TheRule.NumSlots);
        if (!Graph.runActions(TheRule.Actions, Env)) {
          if (Graph.failed()) {
            Report.TotalSeconds = Total.seconds();
            Report.Iterations.push_back(Stats);
            return Report;
          }
          // A failed action (e.g. primitive failure) only abandons this
          // match, mirroring guarded rewrites.
          Graph.clearError();
        }
      }
    }
    Stats.ApplySeconds = Phase.seconds();

    //=== Rebuild phase: restore congruence and canonical form. ============
    Phase.reset();
    Graph.rebuild();
    Stats.RebuildSeconds = Phase.seconds();
    if (Graph.failed()) {
      Report.Iterations.push_back(Stats);
      Report.TotalSeconds = Total.seconds();
      return Report;
    }

    Stats.TuplesAfter = Graph.liveTupleCount();
    Stats.UnionsAfter = Graph.unionFind().unionCount();
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.TuplesAfter != LiveBefore ||
                   Stats.UnionsAfter != UnionsBefore;
    if (!Changed && !AnyBanned) {
      // Only a potential saturation point (no banned rules pending) needs
      // the content-hash tiebreak. Matching a previously hashed state
      // means the engine revisited it — a fixpoint or a churn cycle —
      // so stopping is sound either way.
      uint64_t ContentAfter = Graph.liveContentHash();
      Changed = !HasContentHash || ContentAfter != LastContentHash;
      LastContentHash = ContentAfter;
      LastMutationStamp = mutationStamp();
      HasContentHash = true;
    }
    LiveBefore = Stats.TuplesAfter;
    UnionsBefore = Stats.UnionsAfter;

    if (!Changed && !AnyBanned) {
      Report.Saturated = true;
      break;
    }
    if (Options.NodeLimit && Stats.TuplesAfter > Options.NodeLimit) {
      Report.HitNodeLimit = true;
      break;
    }
    if (Options.TimeoutSeconds > 0 &&
        Total.seconds() > Options.TimeoutSeconds) {
      Report.TimedOut = true;
      break;
    }
  }

  Report.TotalSeconds = Total.seconds();
  return Report;
}
