//===- core/Engine.cpp - Fixpoint rule engine --------------------------------===//
//
// Part of egglog-cpp. See Engine.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "core/Query.h"
#include "support/Timer.h"

using namespace egglog;

size_t Engine::addRule(Rule R) {
  Rules.push_back(std::move(R));
  States.push_back(RuleState{});
  return Rules.size() - 1;
}

RunReport Engine::run(const RunOptions &Options) {
  RunReport Report;
  Timer Total;

  // Top-level unions between runs leave the database non-canonical; queries
  // require canonical form.
  if (Graph.needsRebuild())
    Graph.rebuild();

  for (unsigned Iter = 0; Iter < Options.Iterations; ++Iter) {
    ++GlobalIteration;
    IterationStats Stats;
    Timer Phase;

    // Track database size before this iteration to detect saturation.
    size_t RowsBefore = 0;
    for (size_t F = 0; F < Graph.numFunctions(); ++F)
      RowsBefore += Graph.function(F).Storage->rowCount();
    uint64_t UnionsBefore = Graph.unionFind().unionCount();

    //=== Search phase: collect matches for every runnable rule. ===========
    std::vector<std::vector<std::vector<Value>>> AllMatches(Rules.size());
    bool AnyBanned = false;
    for (size_t R = 0; R < Rules.size(); ++R) {
      RuleState &State = States[R];
      if (Options.UseBackoff && GlobalIteration < State.BannedUntil) {
        AnyBanned = true;
        continue;
      }
      const Rule &TheRule = Rules[R];
      const Query &Body = TheRule.Body;
      std::vector<std::vector<Value>> &Matches = AllMatches[R];
      auto Collect = [&Matches](const std::vector<Value> &Env) {
        Matches.push_back(Env);
      };

      // BackOff threshold: collection aborts as soon as a rule exceeds it
      // (the matches would be dropped anyway, and collecting them all can
      // exhaust memory on explosive rule sets).
      uint64_t Threshold =
          Options.UseBackoff
              ? (Options.BackoffMatchLimit << State.TimesBanned)
              : UINT64_MAX;
      auto TimedOutNow = [&] {
        return Options.TimeoutSeconds > 0 &&
               Total.seconds() > Options.TimeoutSeconds;
      };
      std::function<bool()> Cancel = [&] {
        return TimedOutNow() || Matches.size() > Threshold;
      };
      size_t NumAtoms = Body.Atoms.size();
      bool Incremental =
          Options.SemiNaive && State.DeltaStart > 0 && NumAtoms > 0;
      if (!Incremental) {
        executeQuery(Graph, Body, {}, 0, Collect, Options.GenericJoin,
                     &Cancel);
      } else {
        // Expand into one delta rule per atom: atom j restricted to New,
        // atoms before j to Old, atoms after j unrestricted (§4.3).
        std::vector<AtomFilter> Filters(NumAtoms, AtomFilter::All);
        for (size_t J = 0; J < NumAtoms && !Cancel(); ++J) {
          for (size_t K = 0; K < NumAtoms; ++K)
            Filters[K] = K < J ? AtomFilter::Old
                               : (K == J ? AtomFilter::New : AtomFilter::All);
          executeQuery(Graph, Body, Filters, State.DeltaStart, Collect,
                       Options.GenericJoin, &Cancel);
        }
      }
      if (TimedOutNow()) {
        Report.TimedOut = true;
        Report.Iterations.push_back(Stats);
        Report.TotalSeconds = Total.seconds();
        return Report;
      }

      // BackOff scheduling: drop matches and ban the rule if it exceeded
      // its (exponentially growing) threshold. The rule's DeltaStart is
      // left untouched so the dropped work is re-derived after the ban.
      if (Matches.size() > Threshold) {
        uint64_t BanSpan = Options.BackoffBanLength << State.TimesBanned;
        State.BannedUntil = GlobalIteration + BanSpan;
        ++State.TimesBanned;
        AnyBanned = true;
        Matches.clear();
        Matches.shrink_to_fit();
        continue;
      }
      State.DeltaStart = Graph.timestamp() + 1;
      Stats.Matches += Matches.size();
    }
    Stats.SearchSeconds = Phase.seconds();

    //=== Apply phase: run the actions of all collected matches. ===========
    Phase.reset();
    Graph.bumpTimestamp();
    for (size_t R = 0; R < Rules.size(); ++R) {
      const Rule &TheRule = Rules[R];
      for (std::vector<Value> &Env : AllMatches[R]) {
        Env.resize(TheRule.NumSlots);
        if (!Graph.runActions(TheRule.Actions, Env)) {
          if (Graph.failed()) {
            Report.TotalSeconds = Total.seconds();
            Report.Iterations.push_back(Stats);
            return Report;
          }
          // A failed action (e.g. primitive failure) only abandons this
          // match, mirroring guarded rewrites.
          Graph.clearError();
        }
      }
    }
    Stats.ApplySeconds = Phase.seconds();

    //=== Rebuild phase: restore congruence and canonical form. ============
    Phase.reset();
    Graph.rebuild();
    Stats.RebuildSeconds = Phase.seconds();
    if (Graph.failed()) {
      Report.Iterations.push_back(Stats);
      Report.TotalSeconds = Total.seconds();
      return Report;
    }

    Stats.TuplesAfter = Graph.liveTupleCount();
    Stats.UnionsAfter = Graph.unionFind().unionCount();
    Report.Iterations.push_back(Stats);

    size_t RowsAfter = 0;
    for (size_t F = 0; F < Graph.numFunctions(); ++F)
      RowsAfter += Graph.function(F).Storage->rowCount();
    bool Changed = RowsAfter != RowsBefore ||
                   Graph.unionFind().unionCount() != UnionsBefore;

    if (!Changed && !AnyBanned) {
      Report.Saturated = true;
      break;
    }
    if (Options.NodeLimit && Stats.TuplesAfter > Options.NodeLimit) {
      Report.HitNodeLimit = true;
      break;
    }
    if (Options.TimeoutSeconds > 0 &&
        Total.seconds() > Options.TimeoutSeconds) {
      Report.TimedOut = true;
      break;
    }
  }

  Report.TotalSeconds = Total.seconds();
  return Report;
}
