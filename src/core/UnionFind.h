//===- core/UnionFind.h - Canonicalizing union-find ------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The union-find (disjoint set) structure over uninterpreted ids (§3.3 of
/// the paper, after Tarjan 1975). The canonical representative of a class is
/// always the *smallest* id in the class, matching the paper's
/// canonicalization function "min over the equivalence class" (§4.2); this
/// keeps rebuilding deterministic. Path compression keeps finds cheap.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_UNIONFIND_H
#define EGGLOG_CORE_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace egglog {

/// A union-find over dense uint64 ids with min-id canonical representatives.
class UnionFind {
public:
  /// Creates a fresh singleton class and returns its id ("make-set").
  uint64_t makeSet() {
    uint64_t Id = Parents.size();
    Parents.push_back(Id);
    return Id;
  }

  /// Number of ids ever created.
  size_t size() const { return Parents.size(); }

  /// Returns the canonical (smallest) id of the class containing \p Id.
  uint64_t find(uint64_t Id) const {
    assert(Id < Parents.size() && "find of unknown id");
    // Iterative path halving; Parents is mutable for amortized compression.
    // While a transaction journal is open, every *effective* parent write
    // (compression shortcuts included — an undo log of union links alone is
    // unsound, because compression can shortcut across a post-mark union)
    // records the old edge so rollback can replay it in reverse. No-op
    // halving steps are skipped so the journal stays proportional to real
    // compression work.
    while (Parents[Id] != Id) {
      uint64_t Parent = Parents[Id];
      uint64_t Grand = Parents[Parent];
      if (Parent != Grand) {
        if (Journaling)
          UndoLog.push_back({Id, Parent});
        Parents[Id] = Grand;
      }
      Id = Grand;
    }
    return Id;
  }

  /// Returns true if the two ids are currently equivalent.
  bool congruent(uint64_t A, uint64_t B) const { return find(A) == find(B); }

  /// find() without path compression (and therefore without journaling):
  /// chases parent pointers but never writes, so any number of concurrent
  /// readers may call it while no thread mutates the structure. The
  /// engine's parallel apply-staging and rebuild-gather phases use this to
  /// canonicalize against the frozen relation; the serial tails that
  /// follow use the compressing find().
  uint64_t findReadOnly(uint64_t Id) const {
    assert(Id < Parents.size() && "find of unknown id");
    while (Parents[Id] != Id)
      Id = Parents[Id];
    return Id;
  }

  /// Unions the classes of \p A and \p B; returns the canonical id of the
  /// merged class (the smaller of the two roots). Increments the union
  /// counter only if the classes were distinct.
  uint64_t unite(uint64_t A, uint64_t B) {
    uint64_t RootA = find(A), RootB = find(B);
    if (RootA == RootB)
      return RootA;
    if (RootB < RootA)
      std::swap(RootA, RootB);
    if (Journaling)
      UndoLog.push_back({RootB, RootB});
    Parents[RootB] = RootA;
    ++UnionCount;
    // The losing root is exactly the id that just stopped being canonical:
    // every database row that mentions it is now stale. Rebuilding drains
    // this list instead of sweeping every table (§5.1). An id can lose at
    // most once (a non-root is never passed to the link above), so the list
    // never holds duplicates.
    Dirty.push_back(RootB);
    // The merge log is the same sequence but never drained: incremental
    // consumers (the extraction index) remember an offset into it and fold
    // the suffix on their next refresh, long after rebuild() has consumed
    // the dirty list. Opt-in (8 bytes per union, forever), so union-heavy
    // workloads that never extract pay nothing.
    if (LogMerges)
      MergeLog.push_back(RootB);
    return RootA;
  }

  /// Total number of effective (class-merging) unions performed.
  uint64_t unionCount() const { return UnionCount; }

  /// True if some id lost its canonical status since the last takeDirty().
  bool hasDirty() const { return !Dirty.empty(); }

  /// Moves the accumulated losing roots into \p Out (clearing the internal
  /// list). Unions performed while the caller processes \p Out accumulate
  /// into a fresh list for the next drain.
  void takeDirty(std::vector<uint64_t> &Out) {
    Out.clear();
    Out.swap(Dirty);
  }

  /// Discards the pending dirty list (used after a full-sweep rebuild,
  /// which restores canonicity without consulting it).
  void clearDirty() { Dirty.clear(); }

  /// The losing roots accumulated since the last takeDirty(), in merge
  /// order, without draining them. The engine's deterministic parallel
  /// phases keep a cursor into this list: an id staged as canonical under
  /// the frozen relation is still canonical at replay time iff it has not
  /// appeared here since the freeze (a root only stops being canonical by
  /// losing a unite, which appends it exactly once).
  const std::vector<uint64_t> &pendingDirty() const { return Dirty; }

  /// Append-only log of every losing root in merge order (never drained;
  /// truncated only by restore). Incremental readers keep an offset.
  const std::vector<uint64_t> &mergeLog() const { return MergeLog; }

  /// Starts recording merges (idempotent). Called when the first consumer
  /// appears; consumers must treat only post-enable entries as complete,
  /// which the extraction index does by starting from a scratch rebuild.
  void enableMergeLog() { LogMerges = true; }

  /// A frozen copy of the equivalence relation, for push/pop contexts.
  /// Path compression makes an undo log unsound to replay (compressed
  /// parent edges can reference unions that are later undone), so the
  /// snapshot stores the parent array itself. The pending dirty list is
  /// part of the relation's rebuild state and travels with it: ids that
  /// were awaiting re-canonicalization at snapshot time must still be
  /// awaiting it after a pop.
  struct Snapshot {
    std::vector<uint64_t> Parents;
    std::vector<uint64_t> Dirty;
    uint64_t UnionCount = 0;
    /// The merge log is append-only, so the snapshot stores only its
    /// length; restore truncates back to it.
    size_t MergeLogSize = 0;
  };

  Snapshot snapshot() const {
    return Snapshot{Parents, Dirty, UnionCount, MergeLog.size()};
  }

  /// Restores the relation captured by \p S exactly: ids created since are
  /// forgotten and every union since is undone.
  void restore(const Snapshot &S) {
    Parents = S.Parents;
    Dirty = S.Dirty;
    UnionCount = S.UnionCount;
    MergeLog.resize(S.MergeLogSize);
    // A wholesale replace invalidates any open write journal: the journaled
    // old edges refer to an array that no longer exists. Barrier commands
    // (push/pop) run outside transactions so this only poisons the journal
    // defensively; txnRollback asserts it never sees the poison.
    if (Journaling) {
      UndoLog.clear();
      Poisoned = true;
    }
  }

  /// Wholesale-replaces the relation with externally staged state (the
  /// snapshot loader's point of no return). noexcept by construction —
  /// vector moves only — so a caller can sequence it after the last
  /// fallible step and before txnCommit with no failure window. The merge
  /// log is cleared (its consumers are invalidated alongside); an open
  /// write journal is poisoned exactly as restore() does, which is safe
  /// because txnCommit never replays the journal.
  void adopt(std::vector<uint64_t> NewParents, std::vector<uint64_t> NewDirty,
             uint64_t NewUnionCount) noexcept {
    Parents = std::move(NewParents);
    Dirty = std::move(NewDirty);
    UnionCount = NewUnionCount;
    MergeLog.clear();
    if (Journaling) {
      UndoLog.clear();
      Poisoned = true;
    }
  }

  /// Transactional mode: unlike Snapshot (a full Parents copy, paid per
  /// (push)), a transaction pays O(1) at begin and journals parent writes
  /// as they happen, so the no-error commit path costs nothing beyond the
  /// per-write branch. Rollback replays the journal in reverse.
  struct TxnMark {
    size_t NumIds = 0;
    size_t MergeLogSize = 0;
    uint64_t UnionCount = 0;
    std::vector<uint64_t> Dirty;
  };

  TxnMark txnBegin() {
    assert(!Journaling && "nested union-find transactions are not supported");
    Journaling = true;
    Poisoned = false;
    UndoLog.clear();
    return TxnMark{Parents.size(), MergeLog.size(), UnionCount, Dirty};
  }

  void txnCommit() {
    Journaling = false;
    UndoLog.clear();
  }

  /// Undoes every parent write since txnBegin (reverse replay), forgets ids
  /// created since, and restores the rebuild worklist.
  void txnRollback(const TxnMark &M) {
    assert(Journaling && "txnRollback without an open transaction");
    assert(!Poisoned && "union-find was wholesale-replaced mid-transaction");
    for (size_t I = UndoLog.size(); I-- > 0;)
      Parents[UndoLog[I].Id] = UndoLog[I].Old;
    Parents.resize(M.NumIds);
    Dirty = M.Dirty;
    UnionCount = M.UnionCount;
    MergeLog.resize(M.MergeLogSize);
    Journaling = false;
    UndoLog.clear();
  }

  bool inTransaction() const { return Journaling; }

  /// Approximate bytes held (for the resource governor's memory ceiling).
  size_t approxBytes() const {
    return Parents.capacity() * sizeof(uint64_t) +
           Dirty.capacity() * sizeof(uint64_t) +
           MergeLog.capacity() * sizeof(uint64_t) +
           UndoLog.capacity() * sizeof(UndoEntry);
  }

private:
  struct UndoEntry {
    uint64_t Id;
    uint64_t Old;
  };

  mutable std::vector<uint64_t> Parents;
  /// Roots that lost a unite() since the last takeDirty(), in merge order.
  std::vector<uint64_t> Dirty;
  /// Every losing root since enableMergeLog(), in merge order.
  std::vector<uint64_t> MergeLog;
  /// Old parent edges overwritten while Journaling, in write order.
  mutable std::vector<UndoEntry> UndoLog;
  bool LogMerges = false;
  bool Journaling = false;
  bool Poisoned = false;
  uint64_t UnionCount = 0;
};

} // namespace egglog

#endif // EGGLOG_CORE_UNIONFIND_H
