//===- core/UnionFind.h - Canonicalizing union-find ------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The union-find (disjoint set) structure over uninterpreted ids (§3.3 of
/// the paper, after Tarjan 1975). The canonical representative of a class is
/// always the *smallest* id in the class, matching the paper's
/// canonicalization function "min over the equivalence class" (§4.2); this
/// keeps rebuilding deterministic. Path compression keeps finds cheap.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_UNIONFIND_H
#define EGGLOG_CORE_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace egglog {

/// A union-find over dense uint64 ids with min-id canonical representatives.
class UnionFind {
public:
  /// Creates a fresh singleton class and returns its id ("make-set").
  uint64_t makeSet() {
    uint64_t Id = Parents.size();
    Parents.push_back(Id);
    return Id;
  }

  /// Number of ids ever created.
  size_t size() const { return Parents.size(); }

  /// Returns the canonical (smallest) id of the class containing \p Id.
  uint64_t find(uint64_t Id) const {
    assert(Id < Parents.size() && "find of unknown id");
    // Iterative path halving; Parents is mutable for amortized compression.
    while (Parents[Id] != Id) {
      Parents[Id] = Parents[Parents[Id]];
      Id = Parents[Id];
    }
    return Id;
  }

  /// Returns true if the two ids are currently equivalent.
  bool congruent(uint64_t A, uint64_t B) const { return find(A) == find(B); }

  /// Unions the classes of \p A and \p B; returns the canonical id of the
  /// merged class (the smaller of the two roots). Increments the union
  /// counter only if the classes were distinct.
  uint64_t unite(uint64_t A, uint64_t B) {
    uint64_t RootA = find(A), RootB = find(B);
    if (RootA == RootB)
      return RootA;
    if (RootB < RootA)
      std::swap(RootA, RootB);
    Parents[RootB] = RootA;
    ++UnionCount;
    // The losing root is exactly the id that just stopped being canonical:
    // every database row that mentions it is now stale. Rebuilding drains
    // this list instead of sweeping every table (§5.1). An id can lose at
    // most once (a non-root is never passed to the link above), so the list
    // never holds duplicates.
    Dirty.push_back(RootB);
    // The merge log is the same sequence but never drained: incremental
    // consumers (the extraction index) remember an offset into it and fold
    // the suffix on their next refresh, long after rebuild() has consumed
    // the dirty list. Opt-in (8 bytes per union, forever), so union-heavy
    // workloads that never extract pay nothing.
    if (LogMerges)
      MergeLog.push_back(RootB);
    return RootA;
  }

  /// Total number of effective (class-merging) unions performed.
  uint64_t unionCount() const { return UnionCount; }

  /// True if some id lost its canonical status since the last takeDirty().
  bool hasDirty() const { return !Dirty.empty(); }

  /// Moves the accumulated losing roots into \p Out (clearing the internal
  /// list). Unions performed while the caller processes \p Out accumulate
  /// into a fresh list for the next drain.
  void takeDirty(std::vector<uint64_t> &Out) {
    Out.clear();
    Out.swap(Dirty);
  }

  /// Discards the pending dirty list (used after a full-sweep rebuild,
  /// which restores canonicity without consulting it).
  void clearDirty() { Dirty.clear(); }

  /// Append-only log of every losing root in merge order (never drained;
  /// truncated only by restore). Incremental readers keep an offset.
  const std::vector<uint64_t> &mergeLog() const { return MergeLog; }

  /// Starts recording merges (idempotent). Called when the first consumer
  /// appears; consumers must treat only post-enable entries as complete,
  /// which the extraction index does by starting from a scratch rebuild.
  void enableMergeLog() { LogMerges = true; }

  /// A frozen copy of the equivalence relation, for push/pop contexts.
  /// Path compression makes an undo log unsound to replay (compressed
  /// parent edges can reference unions that are later undone), so the
  /// snapshot stores the parent array itself. The pending dirty list is
  /// part of the relation's rebuild state and travels with it: ids that
  /// were awaiting re-canonicalization at snapshot time must still be
  /// awaiting it after a pop.
  struct Snapshot {
    std::vector<uint64_t> Parents;
    std::vector<uint64_t> Dirty;
    uint64_t UnionCount = 0;
    /// The merge log is append-only, so the snapshot stores only its
    /// length; restore truncates back to it.
    size_t MergeLogSize = 0;
  };

  Snapshot snapshot() const {
    return Snapshot{Parents, Dirty, UnionCount, MergeLog.size()};
  }

  /// Restores the relation captured by \p S exactly: ids created since are
  /// forgotten and every union since is undone.
  void restore(const Snapshot &S) {
    Parents = S.Parents;
    Dirty = S.Dirty;
    UnionCount = S.UnionCount;
    MergeLog.resize(S.MergeLogSize);
  }

private:
  mutable std::vector<uint64_t> Parents;
  /// Roots that lost a unite() since the last takeDirty(), in merge order.
  std::vector<uint64_t> Dirty;
  /// Every losing root since enableMergeLog(), in merge order.
  std::vector<uint64_t> MergeLog;
  bool LogMerges = false;
  uint64_t UnionCount = 0;
};

} // namespace egglog

#endif // EGGLOG_CORE_UNIONFIND_H
