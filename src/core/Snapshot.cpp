//===- core/Snapshot.cpp - Versioned on-disk database snapshots ----------===//
//
// Part of egglog-cpp. See DESIGN.md "Snapshot format and crash safety".
//
// Layout (all integers little-endian):
//
//   magic "EGLSNAP1" (8) | version u32 | flags u32 | sectionCount u32
//   9 sections, each: id u32 | payloadLen u64 | payload | crc32c(payload)
//   crc32c of every preceding byte (u32)
//
// Section ids, in required order: 1 META, 2 SORTS, 3 PRIMS, 4 STRINGS,
// 5 RATIONALS, 6 UNIONFIND, 7 SETS, 8 FUNCTIONS, 9 TABLES. Each later
// section may only reference entities counted by earlier ones, so the
// loader validates every cross-reference the moment it reads it.
//
// The loader treats the file as untrusted: every read is bounds-checked
// against its section span, no count is ever used as an allocation size
// (vectors grow element by element, so a hostile count fails at the first
// out-of-bounds read instead of allocating), and all content is staged
// into fresh structures. The live EGraph is mutated only in the install
// phase at the very end — append-only declarations first (undone by the
// caller's transaction rollback if a later step fails), then a noexcept
// wholesale content swap (EGraph::adoptContent) as the point of no
// return.
//
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"

#include "core/EGraph.h"
#include "support/Crc32c.h"
#include "support/FailPoints.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace egglog {

namespace {

const char SnapshotMagic[8] = {'E', 'G', 'L', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t SnapshotVersion = 1;
constexpr uint32_t NumSections = 9;

enum SectionId : uint32_t {
  SecMeta = 1,
  SecSorts = 2,
  SecPrims = 3,
  SecStrings = 4,
  SecRationals = 5,
  SecUnionFind = 6,
  SecSets = 7,
  SecFunctions = 8,
  SecTables = 9,
};

const char *sectionName(uint32_t Id) {
  switch (Id) {
  case SecMeta:
    return "meta";
  case SecSorts:
    return "sorts";
  case SecPrims:
    return "primitives";
  case SecStrings:
    return "strings";
  case SecRationals:
    return "rationals";
  case SecUnionFind:
    return "union-find";
  case SecSets:
    return "sets";
  case SecFunctions:
    return "functions";
  case SecTables:
    return "tables";
  }
  return "?";
}

/// Typed-expression tree limits for hostile inputs: recursion is bounded
/// so a deep chain cannot blow the loader's stack, and the total node
/// count per declaration is bounded so nested duplication cannot balloon.
constexpr unsigned MaxExprDepth = 200;
constexpr uint64_t MaxExprNodes = 1u << 20;

bool ioFail(EggError &Err, const std::string &Message) {
  Err = EggError{ErrKind::IO, Message, 0, 0};
  return false;
}

//===----------------------------------------------------------------------===
// Serialization primitives
//===----------------------------------------------------------------------===

struct ByteSink {
  std::vector<uint8_t> Bytes;

  void putU8(uint8_t V) { Bytes.push_back(V); }
  void putU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void putU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void putString(const std::string &S) {
    putU32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  void putValue(Value V) {
    putU32(V.Sort);
    putU64(V.Bits);
  }
};

/// Bounds-checked cursor over one section's payload. Every accessor fails
/// (returns false, leaving outputs untouched) instead of reading past the
/// span; the section parsers propagate the failure as a truncation error.
struct SpanReader {
  const uint8_t *Data;
  size_t Len;
  size_t Off = 0;

  SpanReader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  size_t remaining() const { return Len - Off; }
  bool done() const { return Off == Len; }

  bool readU8(uint8_t &Out) {
    if (remaining() < 1)
      return false;
    Out = Data[Off++];
    return true;
  }
  bool readU32(uint32_t &Out) {
    if (remaining() < 4)
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I)
      Out |= static_cast<uint32_t>(Data[Off + I]) << (8 * I);
    Off += 4;
    return true;
  }
  bool readU64(uint64_t &Out) {
    if (remaining() < 8)
      return false;
    Out = 0;
    for (int I = 0; I < 8; ++I)
      Out |= static_cast<uint64_t>(Data[Off + I]) << (8 * I);
    Off += 8;
    return true;
  }
  bool readString(std::string &Out) {
    uint32_t N;
    if (!readU32(N) || remaining() < N)
      return false;
    Out.assign(reinterpret_cast<const char *>(Data + Off), N);
    Off += N;
    return true;
  }
  bool readValue(Value &Out) {
    return readU32(Out.Sort) && readU64(Out.Bits);
  }
};

//===----------------------------------------------------------------------===
// Writer
//===----------------------------------------------------------------------===

void writeExpr(ByteSink &Sink, const TypedExpr &E) {
  Sink.putU8(static_cast<uint8_t>(E.ExprKind));
  Sink.putU32(E.Type);
  switch (E.ExprKind) {
  case TypedExpr::Kind::Var:
    Sink.putU32(E.Index);
    break;
  case TypedExpr::Kind::Lit:
    Sink.putValue(E.Literal);
    break;
  case TypedExpr::Kind::FuncCall:
  case TypedExpr::Kind::PrimCall:
    Sink.putU32(E.Index);
    Sink.putU32(static_cast<uint32_t>(E.Args.size()));
    for (const TypedExpr &Arg : E.Args)
      writeExpr(Sink, Arg);
    break;
  }
}

void appendSection(std::vector<uint8_t> &File, uint32_t Id,
                   const ByteSink &Payload) {
  ByteSink Header;
  Header.putU32(Id);
  Header.putU64(Payload.Bytes.size());
  File.insert(File.end(), Header.Bytes.begin(), Header.Bytes.end());
  File.insert(File.end(), Payload.Bytes.begin(), Payload.Bytes.end());
  uint32_t Crc = crc32c(Payload.Bytes.data(), Payload.Bytes.size());
  ByteSink Trailer;
  Trailer.putU32(Crc);
  File.insert(File.end(), Trailer.Bytes.begin(), Trailer.Bytes.end());
}

std::vector<uint8_t> serializeDatabase(const EGraph &G) {
  std::vector<uint8_t> File;
  File.reserve(4096);
  File.insert(File.end(), SnapshotMagic, SnapshotMagic + 8);
  {
    ByteSink Head;
    Head.putU32(SnapshotVersion);
    Head.putU32(0); // flags
    Head.putU32(NumSections);
    File.insert(File.end(), Head.Bytes.begin(), Head.Bytes.end());
  }

  UnionFind::Snapshot UFS = G.unionFind().snapshot();

  // 1 META
  {
    ByteSink S;
    S.putU32(G.timestamp());
    S.putU8(G.needsRebuild() ? 1 : 0);
    S.putU64(UFS.UnionCount);
    S.putU64(UFS.MergeLogSize);
    S.putU64(G.liveContentHash());
    S.putU64(G.liveTupleCount());
    appendSection(File, SecMeta, S);
  }

  // 2 SORTS
  {
    ByteSink S;
    const SortTable &Sorts = G.sorts();
    S.putU32(static_cast<uint32_t>(Sorts.size()));
    for (SortId Id = 0; Id < Sorts.size(); ++Id) {
      const SortInfo &Info = Sorts.info(Id);
      S.putU8(static_cast<uint8_t>(Info.Kind));
      S.putU32(Info.Kind == SortKind::Set ? Info.Element : 0);
      S.putString(Info.Name);
    }
    appendSection(File, SecSorts, S);
  }

  // 3 PRIMS: signatures only. The loader re-resolves every referenced
  // primitive by (name, argument sorts) against its own registry, so
  // primitive ids — which depend on declaration history — never leak
  // across processes as trusted indices.
  {
    ByteSink S;
    const PrimitiveRegistry &Prims = G.primitives();
    S.putU32(static_cast<uint32_t>(Prims.size()));
    for (uint32_t Id = 0; Id < Prims.size(); ++Id) {
      const Primitive &P = Prims.get(Id);
      S.putString(P.Name);
      S.putU32(static_cast<uint32_t>(P.ArgSorts.size()));
      for (SortId Arg : P.ArgSorts)
        S.putU32(Arg);
      S.putU32(P.OutSort);
    }
    appendSection(File, SecPrims, S);
  }

  // 4 STRINGS
  {
    ByteSink S;
    const StringInterner &Strings = G.strings();
    S.putU32(static_cast<uint32_t>(Strings.size()));
    for (uint32_t Id = 0; Id < Strings.size(); ++Id)
      S.putString(Strings.lookup(Id));
    appendSection(File, SecStrings, S);
  }

  // 5 RATIONALS: decimal strings, the one representation BigInt can both
  // emit and re-validate exactly.
  {
    ByteSink S;
    const auto &Rationals = G.rationals();
    S.putU32(static_cast<uint32_t>(Rationals.size()));
    for (uint32_t Id = 0; Id < Rationals.size(); ++Id) {
      const Rational &R = Rationals.lookup(Id);
      if (!R.isFinite()) {
        S.putU8(R.isNegative() ? 2 : 1);
        continue;
      }
      S.putU8(0);
      S.putString(R.numerator().toString());
      S.putString(R.denominator().toString());
    }
    appendSection(File, SecRationals, S);
  }

  // 6 UNIONFIND
  {
    ByteSink S;
    S.putU64(UFS.Parents.size());
    for (uint64_t P : UFS.Parents)
      S.putU64(P);
    S.putU64(UFS.Dirty.size());
    for (uint64_t D : UFS.Dirty)
      S.putU64(D);
    appendSection(File, SecUnionFind, S);
  }

  // 7 SETS: interned element vectors in id order (inner sets intern
  // before the outer sets that contain them, so references always point
  // backwards).
  {
    ByteSink S;
    const auto &Sets = G.sets();
    S.putU32(static_cast<uint32_t>(Sets.size()));
    for (uint32_t Id = 0; Id < Sets.size(); ++Id) {
      const std::vector<Value> &Elements = Sets.lookup(Id);
      S.putU32(static_cast<uint32_t>(Elements.size()));
      for (Value V : Elements)
        S.putValue(V);
    }
    appendSection(File, SecSets, S);
  }

  // 8 FUNCTIONS
  {
    ByteSink S;
    S.putU32(static_cast<uint32_t>(G.numFunctions()));
    for (FunctionId F = 0; F < G.numFunctions(); ++F) {
      const FunctionDecl &Decl = G.function(F).Decl;
      S.putString(Decl.Name);
      S.putU32(static_cast<uint32_t>(Decl.ArgSorts.size()));
      for (SortId Arg : Decl.ArgSorts)
        S.putU32(Arg);
      S.putU32(Decl.OutSort);
      S.putU64(static_cast<uint64_t>(Decl.Cost));
      S.putU8(Decl.MergeExpr ? 1 : 0);
      if (Decl.MergeExpr)
        writeExpr(S, *Decl.MergeExpr);
      S.putU8(Decl.DefaultExpr ? 1 : 0);
      if (Decl.DefaultExpr)
        writeExpr(S, *Decl.DefaultExpr);
    }
    appendSection(File, SecFunctions, S);
  }

  // 9 TABLES: live rows only (dead rows are history, not content), with
  // their stamps so semi-naïve deltas survive the round trip.
  {
    ByteSink S;
    S.putU32(static_cast<uint32_t>(G.numFunctions()));
    for (FunctionId F = 0; F < G.numFunctions(); ++F) {
      const Table &T = *G.function(F).Storage;
      S.putU64(T.liveCount());
      unsigned Width = T.rowWidth();
      // The on-disk record stays row-major; the columnar table is
      // transposed at this boundary (a per-row gather), so snapshots from
      // before the layout change load unchanged.
      for (size_t Row : T.liveRows()) {
        S.putU32(T.stamp(Row));
        for (unsigned I = 0; I < Width; ++I)
          S.putValue(T.cell(Row, I));
      }
    }
    appendSection(File, SecTables, S);
  }

  uint32_t Whole = crc32c(File.data(), File.size());
  ByteSink Trailer;
  Trailer.putU32(Whole);
  File.insert(File.end(), Trailer.Bytes.begin(), Trailer.Bytes.end());
  return File;
}

/// Unlinks the tmp file on every exit path but a successful commit, so an
/// aborted write (I/O error, injected fault, crash before rename) leaves
/// only the previous snapshot on disk.
struct TmpFileGuard {
  std::string Path;
  bool Armed = true;
  ~TmpFileGuard() {
    if (Armed)
      std::remove(Path.c_str());
  }
};

struct FileCloser {
  std::FILE *F = nullptr;
  ~FileCloser() {
    if (F)
      std::fclose(F);
  }
};

bool writeFileAtomic(const std::string &Path,
                     const std::vector<uint8_t> &Bytes, EggError &Err) {
  std::string TmpPath = Path + ".tmp";
  TmpFileGuard Tmp{TmpPath};
  EGGLOG_FAILPOINT("snapshot.write");
  FileCloser File;
  File.F = std::fopen(TmpPath.c_str(), "wb");
  if (!File.F)
    return ioFail(Err, "cannot create '" + TmpPath + "'");
  // Stream in bounded chunks with a failpoint between each, so the fault
  // sweep proves every prefix of a partial write is recoverable.
  constexpr size_t ChunkBytes = 1 << 16;
  for (size_t Off = 0; Off < Bytes.size(); Off += ChunkBytes) {
    EGGLOG_FAILPOINT("snapshot.write");
    size_t N = std::min(ChunkBytes, Bytes.size() - Off);
    if (std::fwrite(Bytes.data() + Off, 1, N, File.F) != N)
      return ioFail(Err, "write failed for '" + TmpPath + "'");
  }
  EGGLOG_FAILPOINT("snapshot.write");
  if (std::fflush(File.F) != 0 || ::fsync(::fileno(File.F)) != 0)
    return ioFail(Err, "fsync failed for '" + TmpPath + "'");
  std::fclose(File.F);
  File.F = nullptr;
  EGGLOG_FAILPOINT("snapshot.write");
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0)
    return ioFail(Err, "cannot rename '" + TmpPath + "' to '" + Path + "'");
  Tmp.Armed = false;
  // Best-effort directory sync so the rename itself is durable; the data
  // was already fsynced, so a failure here cannot lose the old snapshot.
  size_t Slash = Path.find_last_of('/');
  std::string Dir =
      Slash == std::string::npos ? std::string(".") : Path.substr(0, Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

//===----------------------------------------------------------------------===
// Loader: staging structures
//===----------------------------------------------------------------------===

struct SnapMeta {
  uint32_t Timestamp = 0;
  bool UnionsDirty = false;
  uint64_t UnionCount = 0;
  uint64_t MergeLogLen = 0;
  uint64_t ContentHash = 0;
  uint64_t LiveTuples = 0;
};

struct SnapSort {
  SortKind Kind = SortKind::Unit;
  SortId Element = 0;
  std::string Name;
};

struct SnapPrim {
  std::string Name;
  std::vector<SortId> ArgSorts;
  SortId OutSort = 0;
};

struct SnapFunction {
  // Decl with *raw* snapshot ids in literal values and PrimCall indices;
  // remapped during install. Sort and function ids map identically (the
  // live database's declarations are a prefix of the snapshot's).
  FunctionDecl Decl;
};

/// Everything parsed and validated from the file, plus the id remapping
/// onto the live database. Pure staging: building one never mutates the
/// EGraph.
struct Staging {
  SnapMeta Meta;
  std::vector<SnapSort> Sorts;
  std::vector<SnapPrim> Prims;
  std::vector<std::string> Strings;
  std::vector<Rational> Rationals;
  std::vector<uint64_t> UFParents;
  std::vector<uint64_t> UFDirty;
  std::vector<std::vector<Value>> Sets; // raw snapshot element values
  std::vector<SnapFunction> Functions;
  std::vector<std::unique_ptr<Table>> Tables; // remapped cells

  // Snapshot interner id -> live (or provisional) interner id. Provisional
  // ids start at the live interner's current size and are realized, in
  // order, during install.
  std::vector<uint32_t> StringMap;
  std::vector<uint32_t> RationalMap;
  std::vector<uint32_t> SetMap;
  std::vector<std::string> PendingStrings;
  std::vector<Rational> PendingRationals;
  std::vector<std::vector<Value>> PendingSets; // remapped, re-sorted
  // Snapshot prim ids referenced by some merge/default expression; only
  // these are re-resolved against the live registry during install.
  std::vector<uint32_t> ReferencedPrims;
};

SortKind snapKind(const Staging &St, SortId Sort) {
  return St.Sorts[Sort].Kind;
}

/// Validates a raw snapshot value against the staged universe: known sort,
/// payload in range for that sort's kind.
bool validRawValue(const Staging &St, Value V, std::string &Why) {
  if (V.Sort >= St.Sorts.size()) {
    Why = "unknown sort id";
    return false;
  }
  switch (snapKind(St, V.Sort)) {
  case SortKind::Unit:
    if (V.Bits != 0) {
      Why = "non-zero unit payload";
      return false;
    }
    return true;
  case SortKind::Bool:
    if (V.Bits > 1) {
      Why = "boolean payload out of range";
      return false;
    }
    return true;
  case SortKind::I64:
  case SortKind::F64:
    return true;
  case SortKind::String:
    if (V.Bits >= St.Strings.size()) {
      Why = "string id out of range";
      return false;
    }
    return true;
  case SortKind::Rational:
    if (V.Bits >= St.Rationals.size()) {
      Why = "rational id out of range";
      return false;
    }
    return true;
  case SortKind::Set:
    if (V.Bits >= St.Sets.size()) {
      Why = "set id out of range";
      return false;
    }
    return true;
  case SortKind::User:
    if (V.Bits >= St.UFParents.size()) {
      Why = "e-class id out of range";
      return false;
    }
    return true;
  }
  Why = "corrupt sort kind";
  return false;
}

/// Remaps a raw snapshot value onto the live database's interner ids.
/// Identity except for interned payloads; sort ids and e-class ids map
/// identically by the prefix rule.
Value remapValue(const Staging &St, Value V) {
  switch (snapKind(St, V.Sort)) {
  case SortKind::String:
    return Value(V.Sort, St.StringMap[V.Bits]);
  case SortKind::Rational:
    return Value(V.Sort, St.RationalMap[V.Bits]);
  case SortKind::Set:
    return Value(V.Sort, St.SetMap[V.Bits]);
  default:
    return V;
  }
}

//===----------------------------------------------------------------------===
// Loader: section parsers
//===----------------------------------------------------------------------===

bool sectionFail(EggError &Err, uint32_t Sec, const std::string &Why) {
  return ioFail(Err, "corrupt snapshot: " + Why + " in " +
                         sectionName(Sec) + " section");
}

bool parseMeta(Staging &St, SpanReader &R, EggError &Err) {
  uint8_t Dirty;
  if (!R.readU32(St.Meta.Timestamp) || !R.readU8(Dirty) ||
      !R.readU64(St.Meta.UnionCount) || !R.readU64(St.Meta.MergeLogLen) ||
      !R.readU64(St.Meta.ContentHash) || !R.readU64(St.Meta.LiveTuples))
    return sectionFail(Err, SecMeta, "truncated payload");
  if (Dirty > 1)
    return sectionFail(Err, SecMeta, "corrupt rebuild flag");
  St.Meta.UnionsDirty = Dirty == 1;
  if (St.Meta.MergeLogLen > St.Meta.UnionCount)
    return sectionFail(Err, SecMeta, "merge log longer than union count");
  if (!R.done())
    return sectionFail(Err, SecMeta, "trailing bytes");
  return true;
}

bool parseSorts(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecSorts, "truncated payload");
  if (Count < SortTable::FirstDynamicSort)
    return sectionFail(Err, SecSorts, "missing base sorts");
  std::unordered_set<std::string> Names;
  for (uint32_t Id = 0; Id < Count; ++Id) {
    SnapSort Sort;
    uint8_t Kind;
    if (!R.readU8(Kind) || !R.readU32(Sort.Element) ||
        !R.readString(Sort.Name))
      return sectionFail(Err, SecSorts, "truncated payload");
    if (Kind > static_cast<uint8_t>(SortKind::Set))
      return sectionFail(Err, SecSorts, "unknown sort kind");
    Sort.Kind = static_cast<SortKind>(Kind);
    if (Sort.Name.empty() || !Names.insert(Sort.Name).second)
      return sectionFail(Err, SecSorts, "empty or duplicate sort name");
    // The base sorts have fixed ids and are pre-declared in every
    // database; dynamic sorts may only be User or Set.
    if (Id < SortTable::FirstDynamicSort) {
      static const SortKind BaseKinds[] = {
          SortKind::Unit,   SortKind::Bool,   SortKind::I64,
          SortKind::F64,    SortKind::String, SortKind::Rational};
      static const char *BaseNames[] = {"Unit", "bool",   "i64",
                                        "f64",  "String", "Rational"};
      if (Sort.Kind != BaseKinds[Id] || Sort.Name != BaseNames[Id])
        return sectionFail(Err, SecSorts, "base sort mismatch");
    } else if (Sort.Kind != SortKind::User && Sort.Kind != SortKind::Set) {
      return sectionFail(Err, SecSorts, "base sort kind at a dynamic id");
    }
    if (Sort.Kind == SortKind::Set) {
      if (Sort.Element >= Id)
        return sectionFail(Err, SecSorts, "set element sort not yet declared");
    } else if (Sort.Element != 0) {
      return sectionFail(Err, SecSorts, "element sort on a non-set sort");
    }
    St.Sorts.push_back(std::move(Sort));
  }
  if (!R.done())
    return sectionFail(Err, SecSorts, "trailing bytes");
  return true;
}

bool parsePrims(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecPrims, "truncated payload");
  for (uint32_t Id = 0; Id < Count; ++Id) {
    SnapPrim Prim;
    uint32_t Argc;
    if (!R.readString(Prim.Name) || !R.readU32(Argc))
      return sectionFail(Err, SecPrims, "truncated payload");
    if (Prim.Name.empty())
      return sectionFail(Err, SecPrims, "empty primitive name");
    if (Argc > R.remaining() / 4)
      return sectionFail(Err, SecPrims, "truncated payload");
    for (uint32_t A = 0; A < Argc; ++A) {
      SortId Arg;
      if (!R.readU32(Arg))
        return sectionFail(Err, SecPrims, "truncated payload");
      if (Arg >= St.Sorts.size())
        return sectionFail(Err, SecPrims, "unknown argument sort");
      Prim.ArgSorts.push_back(Arg);
    }
    if (!R.readU32(Prim.OutSort))
      return sectionFail(Err, SecPrims, "truncated payload");
    if (Prim.OutSort >= St.Sorts.size())
      return sectionFail(Err, SecPrims, "unknown output sort");
    St.Prims.push_back(std::move(Prim));
  }
  if (!R.done())
    return sectionFail(Err, SecPrims, "trailing bytes");
  return true;
}

bool parseStrings(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecStrings, "truncated payload");
  std::unordered_set<std::string> Seen;
  for (uint32_t Id = 0; Id < Count; ++Id) {
    std::string S;
    if (!R.readString(S))
      return sectionFail(Err, SecStrings, "truncated payload");
    if (!Seen.insert(S).second)
      return sectionFail(Err, SecStrings, "duplicate interned string");
    St.Strings.push_back(std::move(S));
  }
  if (!R.done())
    return sectionFail(Err, SecStrings, "trailing bytes");
  return true;
}

bool parseRationals(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecRationals, "truncated payload");
  for (uint32_t Id = 0; Id < Count; ++Id) {
    uint8_t Tag;
    if (!R.readU8(Tag))
      return sectionFail(Err, SecRationals, "truncated payload");
    if (Tag > 2)
      return sectionFail(Err, SecRationals, "unknown rational tag");
    if (Tag != 0) {
      St.Rationals.push_back(Tag == 1 ? Rational::posInfinity()
                                      : Rational::negInfinity());
      continue;
    }
    std::string NumStr, DenStr;
    if (!R.readString(NumStr) || !R.readString(DenStr))
      return sectionFail(Err, SecRationals, "truncated payload");
    bool NumOk = false, DenOk = false;
    BigInt Num = BigInt::fromString(NumStr, NumOk);
    BigInt Den = BigInt::fromString(DenStr, DenOk);
    if (!NumOk || !DenOk || Den.isZero())
      return sectionFail(Err, SecRationals, "malformed rational");
    St.Rationals.push_back(Rational(std::move(Num), std::move(Den)));
  }
  // The interner never holds duplicates; a forged duplicate would desync
  // the provisional-id bookkeeping below, so reject it here.
  std::unordered_set<Rational, RationalStdHash> Seen;
  for (const Rational &Q : St.Rationals)
    if (!Seen.insert(Q).second)
      return sectionFail(Err, SecRationals, "duplicate interned rational");
  if (!R.done())
    return sectionFail(Err, SecRationals, "trailing bytes");
  return true;
}

bool parseUnionFind(Staging &St, SpanReader &R, EggError &Err) {
  uint64_t Count;
  if (!R.readU64(Count))
    return sectionFail(Err, SecUnionFind, "truncated payload");
  if (Count > R.remaining() / 8)
    return sectionFail(Err, SecUnionFind, "truncated payload");
  uint64_t NonRoots = 0;
  for (uint64_t Id = 0; Id < Count; ++Id) {
    uint64_t Parent;
    if (!R.readU64(Parent))
      return sectionFail(Err, SecUnionFind, "truncated payload");
    // Canonical representatives are minimal, so parent edges always point
    // at an equal or smaller id.
    if (Parent > Id)
      return sectionFail(Err, SecUnionFind, "parent edge points forward");
    NonRoots += Parent != Id;
    St.UFParents.push_back(Parent);
  }
  // Every effective union turns exactly one root into a non-root, and
  // non-roots never become roots again.
  if (NonRoots != St.Meta.UnionCount)
    return sectionFail(Err, SecUnionFind,
                       "union count inconsistent with parent edges");
  uint64_t DirtyLen;
  if (!R.readU64(DirtyLen))
    return sectionFail(Err, SecUnionFind, "truncated payload");
  if (DirtyLen > R.remaining() / 8)
    return sectionFail(Err, SecUnionFind, "truncated payload");
  std::vector<bool> DirtySeen(St.UFParents.size(), false);
  for (uint64_t I = 0; I < DirtyLen; ++I) {
    uint64_t Id;
    if (!R.readU64(Id))
      return sectionFail(Err, SecUnionFind, "truncated payload");
    // A dirty entry is a root that lost a union: in range, no longer
    // canonical, and listed at most once.
    if (Id >= St.UFParents.size() || St.UFParents[Id] == Id || DirtySeen[Id])
      return sectionFail(Err, SecUnionFind, "corrupt dirty worklist");
    DirtySeen[Id] = true;
    St.UFDirty.push_back(Id);
  }
  if (!R.done())
    return sectionFail(Err, SecUnionFind, "trailing bytes");
  return true;
}

bool parseSets(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecSets, "truncated payload");
  for (uint32_t Id = 0; Id < Count; ++Id) {
    uint32_t ElemCount;
    if (!R.readU32(ElemCount))
      return sectionFail(Err, SecSets, "truncated payload");
    if (ElemCount > R.remaining() / 12)
      return sectionFail(Err, SecSets, "truncated payload");
    std::vector<Value> Elements;
    for (uint32_t E = 0; E < ElemCount; ++E) {
      Value V;
      if (!R.readValue(V))
        return sectionFail(Err, SecSets, "truncated payload");
      std::string Why;
      // A set may only reference sets interned before it (mkSet interns
      // inner sets first), so bound the self-reference check at Id, not
      // the final count.
      if (V.Sort < St.Sorts.size() && snapKind(St, V.Sort) == SortKind::Set) {
        if (V.Bits >= Id)
          return sectionFail(Err, SecSets, "set element references forward");
      } else if (!validRawValue(St, V, Why)) {
        return sectionFail(Err, SecSets, Why);
      }
      if (!Elements.empty() && !(Elements.back() < V))
        return sectionFail(Err, SecSets, "unsorted set elements");
      Elements.push_back(V);
    }
    St.Sets.push_back(std::move(Elements));
  }
  if (!R.done())
    return sectionFail(Err, SecSets, "trailing bytes");
  return true;
}

/// Recursive typed-expression reader with full signature validation: every
/// call site is checked against the declared signature of its callee so an
/// installed expression can never be evaluated out of bounds or produce a
/// wrongly-sorted value. \p FnIndex is the function being declared —
/// function references must point strictly backwards (a declaration can
/// only name already-declared functions). \p AllowVars permits the two
/// merge slots (old/new, both of the output sort); default expressions
/// are closed.
bool parseExpr(const Staging &St, SpanReader &R, TypedExpr &Out,
               uint32_t FnIndex, SortId OutputSort, bool AllowVars,
               unsigned Depth, uint64_t &NodeBudget, std::string &Why) {
  if (Depth > MaxExprDepth) {
    Why = "expression nesting too deep";
    return false;
  }
  if (NodeBudget == 0) {
    Why = "expression too large";
    return false;
  }
  --NodeBudget;
  uint8_t Kind;
  uint32_t Type;
  if (!R.readU8(Kind) || !R.readU32(Type)) {
    Why = "truncated payload";
    return false;
  }
  if (Kind > static_cast<uint8_t>(TypedExpr::Kind::PrimCall)) {
    Why = "unknown expression kind";
    return false;
  }
  if (Type >= St.Sorts.size()) {
    Why = "unknown expression sort";
    return false;
  }
  TypedExpr::Kind K = static_cast<TypedExpr::Kind>(Kind);
  switch (K) {
  case TypedExpr::Kind::Var: {
    uint32_t Slot;
    if (!R.readU32(Slot)) {
      Why = "truncated payload";
      return false;
    }
    if (!AllowVars || Slot > 1 || Type != OutputSort) {
      Why = "invalid variable reference";
      return false;
    }
    Out = TypedExpr::makeVar(Slot, Type);
    return true;
  }
  case TypedExpr::Kind::Lit: {
    Value V;
    if (!R.readValue(V)) {
      Why = "truncated payload";
      return false;
    }
    if (V.Sort != Type || !validRawValue(St, V, Why)) {
      if (Why.empty())
        Why = "literal sort mismatch";
      return false;
    }
    Out = TypedExpr::makeLit(V); // raw ids; remapped during install
    return true;
  }
  case TypedExpr::Kind::FuncCall:
  case TypedExpr::Kind::PrimCall: {
    uint32_t Index, Argc;
    if (!R.readU32(Index) || !R.readU32(Argc)) {
      Why = "truncated payload";
      return false;
    }
    const std::vector<SortId> *Sig;
    SortId SigOut;
    if (K == TypedExpr::Kind::FuncCall) {
      if (Index >= FnIndex) {
        Why = "expression references an undeclared function";
        return false;
      }
      Sig = &St.Functions[Index].Decl.ArgSorts;
      SigOut = St.Functions[Index].Decl.OutSort;
    } else {
      if (Index >= St.Prims.size()) {
        Why = "expression references an unknown primitive";
        return false;
      }
      Sig = &St.Prims[Index].ArgSorts;
      SigOut = St.Prims[Index].OutSort;
    }
    if (Argc != Sig->size() || Type != SigOut) {
      Why = "call signature mismatch";
      return false;
    }
    std::vector<TypedExpr> Args;
    for (uint32_t A = 0; A < Argc; ++A) {
      TypedExpr Arg;
      if (!parseExpr(St, R, Arg, FnIndex, OutputSort, AllowVars, Depth + 1,
                     NodeBudget, Why))
        return false;
      if (Arg.Type != (*Sig)[A]) {
        Why = "call argument sort mismatch";
        return false;
      }
      Args.push_back(std::move(Arg));
    }
    Out = TypedExpr::makeCall(K, Index, Type, std::move(Args));
    return true;
  }
  }
  Why = "unknown expression kind";
  return false;
}

bool parseFunctions(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecFunctions, "truncated payload");
  std::unordered_set<std::string> Names;
  std::vector<bool> PrimSeen(St.Prims.size(), false);
  for (uint32_t F = 0; F < Count; ++F) {
    SnapFunction Fn;
    uint32_t Argc;
    if (!R.readString(Fn.Decl.Name) || !R.readU32(Argc))
      return sectionFail(Err, SecFunctions, "truncated payload");
    if (Fn.Decl.Name.empty() || !Names.insert(Fn.Decl.Name).second)
      return sectionFail(Err, SecFunctions, "empty or duplicate name");
    if (Argc > R.remaining() / 4)
      return sectionFail(Err, SecFunctions, "truncated payload");
    for (uint32_t A = 0; A < Argc; ++A) {
      SortId Arg;
      if (!R.readU32(Arg))
        return sectionFail(Err, SecFunctions, "truncated payload");
      if (Arg >= St.Sorts.size())
        return sectionFail(Err, SecFunctions, "unknown argument sort");
      Fn.Decl.ArgSorts.push_back(Arg);
    }
    uint64_t Cost;
    if (!R.readU32(Fn.Decl.OutSort) || !R.readU64(Cost))
      return sectionFail(Err, SecFunctions, "truncated payload");
    if (Fn.Decl.OutSort >= St.Sorts.size())
      return sectionFail(Err, SecFunctions, "unknown output sort");
    if (Cost > static_cast<uint64_t>(INT64_MAX))
      return sectionFail(Err, SecFunctions, "negative extraction cost");
    Fn.Decl.Cost = static_cast<int64_t>(Cost);
    // The function is appended before its expressions parse so parseExpr's
    // strictly-backwards rule (Index < F) can use St.Functions.
    St.Functions.push_back(std::move(Fn));
    SnapFunction &Staged = St.Functions.back();
    for (int Slot = 0; Slot < 2; ++Slot) {
      bool IsMerge = Slot == 0;
      uint8_t Present;
      if (!R.readU8(Present))
        return sectionFail(Err, SecFunctions, "truncated payload");
      if (Present > 1)
        return sectionFail(Err, SecFunctions, "corrupt expression flag");
      if (!Present)
        continue;
      TypedExpr E;
      uint64_t NodeBudget = MaxExprNodes;
      std::string Why;
      if (!parseExpr(St, R, E, F, Staged.Decl.OutSort,
                     /*AllowVars=*/IsMerge, 0, NodeBudget, Why))
        return sectionFail(Err, SecFunctions, Why);
      if (E.Type != Staged.Decl.OutSort)
        return sectionFail(Err, SecFunctions,
                           "expression sort does not match output sort");
      if (IsMerge)
        Staged.Decl.MergeExpr = std::move(E);
      else
        Staged.Decl.DefaultExpr = std::move(E);
    }
    // Record which primitives the expressions reference, for install-time
    // re-resolution.
    std::vector<const TypedExpr *> Stack;
    if (Staged.Decl.MergeExpr)
      Stack.push_back(&*Staged.Decl.MergeExpr);
    if (Staged.Decl.DefaultExpr)
      Stack.push_back(&*Staged.Decl.DefaultExpr);
    while (!Stack.empty()) {
      const TypedExpr *E = Stack.back();
      Stack.pop_back();
      if (E->ExprKind == TypedExpr::Kind::PrimCall && !PrimSeen[E->Index]) {
        PrimSeen[E->Index] = true;
        St.ReferencedPrims.push_back(E->Index);
      }
      for (const TypedExpr &Arg : E->Args)
        Stack.push_back(&Arg);
    }
  }
  if (!R.done())
    return sectionFail(Err, SecFunctions, "trailing bytes");
  return true;
}

/// Builds the interner remaps: each snapshot string/rational/set is looked
/// up in the live interner; misses get provisional ids past the live end,
/// realized in order during install. Interners are append-only, so a live
/// database whose interned prefix came from this snapshot remaps
/// identically — which is what makes liveContentHash round-trip exactly.
void buildRemaps(const EGraph &G, Staging &St) {
  uint32_t LiveStrings = static_cast<uint32_t>(G.strings().size());
  for (const std::string &S : St.Strings) {
    uint32_t Id;
    if (!G.strings().find(S, Id)) {
      Id = LiveStrings + static_cast<uint32_t>(St.PendingStrings.size());
      St.PendingStrings.push_back(S);
    }
    St.StringMap.push_back(Id);
  }
  uint32_t LiveRationals = static_cast<uint32_t>(G.rationals().size());
  for (const Rational &Q : St.Rationals) {
    uint32_t Id;
    if (!G.rationals().find(Q, Id)) {
      Id = LiveRationals + static_cast<uint32_t>(St.PendingRationals.size());
      St.PendingRationals.push_back(Q);
    }
    St.RationalMap.push_back(Id);
  }
  // Sets remap their elements first (inner before outer by the forward-
  // reference check), then re-sort: remapping can reorder interned ids.
  // The maps are injective, so re-sorting cannot create duplicates.
  uint32_t LiveSets = static_cast<uint32_t>(G.sets().size());
  for (const std::vector<Value> &RawElements : St.Sets) {
    std::vector<Value> Elements;
    Elements.reserve(RawElements.size());
    for (Value V : RawElements)
      Elements.push_back(remapValue(St, V));
    std::sort(Elements.begin(), Elements.end());
    uint32_t Id;
    if (!G.sets().find(Elements, Id)) {
      Id = LiveSets + static_cast<uint32_t>(St.PendingSets.size());
      St.PendingSets.push_back(std::move(Elements));
    }
    St.SetMap.push_back(Id);
  }
}

bool parseTables(Staging &St, SpanReader &R, EggError &Err) {
  uint32_t Count;
  if (!R.readU32(Count))
    return sectionFail(Err, SecTables, "truncated payload");
  if (Count != St.Functions.size())
    return sectionFail(Err, SecTables,
                       "table count does not match function count");
  uint64_t TotalLive = 0;
  uint64_t ContentHash = 0;
  for (uint32_t F = 0; F < Count; ++F) {
    const FunctionDecl &Decl = St.Functions[F].Decl;
    unsigned NumKeys = static_cast<unsigned>(Decl.ArgSorts.size());
    auto Staged = std::make_unique<Table>(NumKeys);
    // Column classification mirrors EGraph::declareFunction so occurrence
    // indexing over the staged table matches a natively-built one.
    std::vector<unsigned> IdCols;
    for (unsigned I = 0; I <= NumKeys; ++I) {
      SortId S = I < NumKeys ? Decl.ArgSorts[I] : Decl.OutSort;
      if (snapKind(St, S) == SortKind::User)
        IdCols.push_back(I);
    }
    Staged->setIdColumns(std::move(IdCols));
    uint64_t Rows;
    if (!R.readU64(Rows))
      return sectionFail(Err, SecTables, "truncated payload");
    unsigned Width = NumKeys + 1;
    if (Rows > R.remaining() / (4 + 12ull * Width))
      return sectionFail(Err, SecTables, "truncated payload");
    std::vector<Value> Cells(Width);
    for (uint64_t Row = 0; Row < Rows; ++Row) {
      uint32_t Stamp;
      if (!R.readU32(Stamp))
        return sectionFail(Err, SecTables, "truncated payload");
      if (Stamp > St.Meta.Timestamp)
        return sectionFail(Err, SecTables, "row stamp from the future");
      uint64_t RowHash = hashMix(F + 0x9E3779B97F4A7C15ull);
      for (unsigned I = 0; I < Width; ++I) {
        Value V;
        if (!R.readValue(V))
          return sectionFail(Err, SecTables, "truncated payload");
        SortId Expected = I < NumKeys ? Decl.ArgSorts[I] : Decl.OutSort;
        std::string Why;
        if (V.Sort != Expected)
          return sectionFail(Err, SecTables, "cell sort mismatch");
        if (!validRawValue(St, V, Why))
          return sectionFail(Err, SecTables, Why);
        RowHash = hashCombine(RowHash, V.hash());
        Cells[I] = remapValue(St, V);
      }
      ContentHash += RowHash;
      size_t Before = Staged->liveCount();
      Staged->insert(Cells.data(), Cells[NumKeys], Stamp);
      if (Staged->liveCount() != Before + 1)
        return sectionFail(Err, SecTables, "duplicate row key");
    }
    TotalLive += Rows;
    St.Tables.push_back(std::move(Staged));
  }
  if (!R.done())
    return sectionFail(Err, SecTables, "trailing bytes");
  // Integrity cross-checks against META, over the raw (pre-remap) values —
  // the same id space liveContentHash() was computed in at save time.
  if (TotalLive != St.Meta.LiveTuples)
    return sectionFail(Err, SecTables, "live tuple count mismatch");
  if (ContentHash != St.Meta.ContentHash)
    return sectionFail(Err, SecTables, "content hash mismatch");
  return true;
}

//===----------------------------------------------------------------------===
// Loader: declaration prefix checks and install
//===----------------------------------------------------------------------===

bool checkDeclarationPrefix(const EGraph &G, const Staging &St,
                            EggError &Err) {
  const SortTable &Live = G.sorts();
  if (Live.size() > St.Sorts.size())
    return ioFail(Err, "declaration mismatch: database declares " +
                           std::to_string(Live.size()) +
                           " sorts, snapshot has " +
                           std::to_string(St.Sorts.size()));
  for (SortId Id = 0; Id < Live.size(); ++Id) {
    const SortInfo &L = Live.info(Id);
    const SnapSort &S = St.Sorts[Id];
    bool Match = L.Kind == S.Kind && L.Name == S.Name &&
                 (L.Kind != SortKind::Set || L.Element == S.Element);
    if (!Match)
      return ioFail(Err, "declaration mismatch: sort '" + L.Name +
                             "' differs from the snapshot's");
  }
  if (G.numFunctions() > St.Functions.size())
    return ioFail(Err, "declaration mismatch: database declares " +
                           std::to_string(G.numFunctions()) +
                           " functions, snapshot has " +
                           std::to_string(St.Functions.size()));
  for (FunctionId F = 0; F < G.numFunctions(); ++F) {
    const FunctionDecl &L = G.function(F).Decl;
    const FunctionDecl &S = St.Functions[F].Decl;
    // Signatures must agree exactly; merge/default bodies are compared
    // only by presence (they were validated against the same signatures,
    // and the snapshot's bodies win the install).
    bool Match = L.Name == S.Name && L.ArgSorts == S.ArgSorts &&
                 L.OutSort == S.OutSort && L.Cost == S.Cost &&
                 L.MergeExpr.has_value() == S.MergeExpr.has_value() &&
                 L.DefaultExpr.has_value() == S.DefaultExpr.has_value();
    if (!Match)
      return ioFail(Err, "declaration mismatch: function '" + L.Name +
                             "' differs from the snapshot's");
  }
  return true;
}

/// Remaps a validated expression in place onto the live database: literal
/// interner ids through the value remap, primitive indices through
/// \p PrimMap. Sort and function ids are already identical.
void remapExpr(const Staging &St,
               const std::unordered_map<uint32_t, uint32_t> &PrimMap,
               TypedExpr &E) {
  if (E.ExprKind == TypedExpr::Kind::Lit)
    E.Literal = remapValue(St, E.Literal);
  if (E.ExprKind == TypedExpr::Kind::PrimCall)
    E.Index = PrimMap.at(E.Index);
  for (TypedExpr &Arg : E.Args)
    remapExpr(St, PrimMap, Arg);
}

/// The mutating install phase. Runs inside the caller's command
/// transaction: the append-only declaration steps can fail (or take an
/// injected fault) and be rolled back; after the last fallible step the
/// noexcept adoptContent swap commits the content.
bool installStaging(EGraph &G, Staging &St, EggError &Err) {
  // 1. Declare the sorts the snapshot has beyond the live prefix. Set
  // sorts register their primitives here, so the re-resolution below sees
  // them.
  for (SortId Id = static_cast<SortId>(G.sorts().size());
       Id < St.Sorts.size(); ++Id) {
    const SnapSort &S = St.Sorts[Id];
    SortId Got = S.Kind == SortKind::Set
                     ? G.declareSetSort(S.Name, S.Element)
                     : G.declareSort(S.Name);
    (void)Got;
    assert(Got == Id && "prefix rule broke sort id identity");
  }

  // 2. Re-resolve every referenced primitive by signature. Primitive ids
  // are declaration-history-dependent, so the snapshot's indices are
  // meaningless here; names and sorts are the stable identity. The
  // polymorphic comparisons are lazily instantiated per sort (mirroring
  // the frontend's resolvePrim), so re-instantiate on a miss.
  std::unordered_map<uint32_t, uint32_t> PrimMap;
  for (uint32_t Old : St.ReferencedPrims) {
    const SnapPrim &P = St.Prims[Old];
    uint32_t Live;
    if (G.primitives().resolve(P.Name, P.ArgSorts, Live)) {
      PrimMap.emplace(Old, Live);
      continue;
    }
    if ((P.Name == "==" || P.Name == "!=") && P.ArgSorts.size() == 2 &&
        P.ArgSorts[0] == P.ArgSorts[1] &&
        P.OutSort == SortTable::BoolSort) {
      bool Negated = P.Name == "!=";
      Live = G.primitives().add(Primitive{
          P.Name,
          P.ArgSorts,
          SortTable::BoolSort,
          [Negated](EGraph &EG, const Value *Args, Value &Out) {
            bool Equal = EG.canonicalize(Args[0]) == EG.canonicalize(Args[1]);
            Out = EG.mkBool(Negated ? !Equal : Equal);
            return true;
          }});
      PrimMap.emplace(Old, Live);
      continue;
    }
    return ioFail(Err, "snapshot references unknown primitive '" + P.Name +
                           "'");
  }

  // 3. Realize the provisional interner ids, in assignment order. The
  // interners are append-only; a failure from here on leaves orphaned
  // entries, which is harmless (exactly as pop does).
  for (const std::string &S : St.PendingStrings) {
    Value V = G.mkString(S);
    (void)V;
    assert(V.Bits == G.strings().size() - 1 && "provisional id desync");
  }
  for (const Rational &Q : St.PendingRationals) {
    Value V = G.mkRational(Q);
    (void)V;
    assert(V.Bits == G.rationals().size() - 1 && "provisional id desync");
  }
  for (std::vector<Value> &Elements : St.PendingSets) {
    uint32_t Id = G.internSetElements(std::move(Elements));
    (void)Id;
    assert(Id == G.sets().size() - 1 && "provisional id desync");
  }

  // 4. Declare the functions beyond the live prefix, with remapped
  // expressions. Live-prefix functions keep their declarations (the
  // signatures matched; bodies were compiled from the same source).
  for (FunctionId F = static_cast<FunctionId>(G.numFunctions());
       F < St.Functions.size(); ++F) {
    FunctionDecl Decl = std::move(St.Functions[F].Decl);
    if (Decl.MergeExpr)
      remapExpr(St, PrimMap, *Decl.MergeExpr);
    if (Decl.DefaultExpr)
      remapExpr(St, PrimMap, *Decl.DefaultExpr);
    FunctionId Got = G.declareFunction(std::move(Decl));
    (void)Got;
    assert(Got == F && "prefix rule broke function id identity");
  }

  // 5. Point of no return: noexcept wholesale content swap.
  G.adoptContent(std::move(St.Tables), std::move(St.UFParents),
                 std::move(St.UFDirty), St.Meta.UnionCount,
                 St.Meta.Timestamp, St.Meta.UnionsDirty);
  return true;
}

} // namespace

//===----------------------------------------------------------------------===
// Public API
//===----------------------------------------------------------------------===

bool saveSnapshot(const EGraph &G, const std::string &Path, EggError &Err) {
  std::vector<uint8_t> Bytes = serializeDatabase(G);
  return writeFileAtomic(Path, Bytes, Err);
}

bool loadSnapshot(EGraph &G, const std::string &Path, EggError &Err) {
  // Read the whole file up front: snapshots are bounded by what a prior
  // save produced, and one buffer makes the whole-file checksum and the
  // bounds-checked section spans straightforward.
  std::vector<uint8_t> Bytes;
  {
    FileCloser File;
    File.F = std::fopen(Path.c_str(), "rb");
    if (!File.F)
      return ioFail(Err, "cannot open '" + Path + "'");
    char Buffer[1 << 16];
    size_t N;
    while ((N = std::fread(Buffer, 1, sizeof(Buffer), File.F)) > 0)
      Bytes.insert(Bytes.end(), Buffer, Buffer + N);
    if (std::ferror(File.F))
      return ioFail(Err, "read failed for '" + Path + "'");
  }

  // Envelope: magic, version, flags, whole-file checksum, section frames.
  constexpr size_t HeaderBytes = 8 + 4 + 4 + 4;
  if (Bytes.size() < HeaderBytes + 4)
    return ioFail(Err, "corrupt snapshot: file too short");
  if (std::memcmp(Bytes.data(), SnapshotMagic, 8) != 0)
    return ioFail(Err, "not a snapshot file (bad magic)");
  SpanReader Head(Bytes.data() + 8, HeaderBytes - 8);
  uint32_t Version, Flags, SectionCount;
  Head.readU32(Version);
  Head.readU32(Flags);
  Head.readU32(SectionCount);
  if (Version != SnapshotVersion)
    return ioFail(Err, "unsupported snapshot version " +
                           std::to_string(Version) + " (expected " +
                           std::to_string(SnapshotVersion) + ")");
  if (Flags != 0)
    return ioFail(Err, "unsupported snapshot flags");
  if (SectionCount != NumSections)
    return ioFail(Err, "corrupt snapshot: wrong section count");
  {
    SpanReader Tail(Bytes.data() + Bytes.size() - 4, 4);
    uint32_t Stored;
    Tail.readU32(Stored);
    if (crc32c(Bytes.data(), Bytes.size() - 4) != Stored)
      return ioFail(Err, "corrupt snapshot: file checksum mismatch");
  }

  SpanReader Frames(Bytes.data() + HeaderBytes,
                    Bytes.size() - HeaderBytes - 4);
  Staging St;
  for (uint32_t Expected = 1; Expected <= NumSections; ++Expected) {
    uint32_t Id;
    uint64_t Len;
    if (!Frames.readU32(Id) || !Frames.readU64(Len))
      return ioFail(Err, "corrupt snapshot: truncated section frame");
    if (Id != Expected)
      return ioFail(Err, "corrupt snapshot: sections out of order");
    if (Len > Frames.remaining() || Frames.remaining() - Len < 4)
      return ioFail(Err, std::string("corrupt snapshot: truncated ") +
                             sectionName(Id) + " section");
    const uint8_t *Payload = Frames.Data + Frames.Off;
    Frames.Off += Len;
    uint32_t StoredCrc;
    Frames.readU32(StoredCrc);
    if (crc32c(Payload, Len) != StoredCrc)
      return ioFail(Err, std::string("corrupt snapshot: checksum mismatch "
                                     "in ") +
                             sectionName(Id) + " section");
    SpanReader R(Payload, Len);
    bool Ok = true;
    switch (Id) {
    case SecMeta:
      Ok = parseMeta(St, R, Err);
      break;
    case SecSorts:
      Ok = parseSorts(St, R, Err);
      break;
    case SecPrims:
      Ok = parsePrims(St, R, Err);
      break;
    case SecStrings:
      Ok = parseStrings(St, R, Err);
      break;
    case SecRationals:
      Ok = parseRationals(St, R, Err);
      break;
    case SecUnionFind:
      Ok = parseUnionFind(St, R, Err);
      break;
    case SecSets:
      Ok = parseSets(St, R, Err);
      break;
    case SecFunctions:
      Ok = parseFunctions(St, R, Err);
      break;
    case SecTables:
      // Tables stage with remapped cells, so the remaps must exist first.
      if (!checkDeclarationPrefix(G, St, Err))
        return false;
      buildRemaps(G, St);
      Ok = parseTables(St, R, Err);
      break;
    }
    if (!Ok)
      return false;
  }
  if (!Frames.done())
    return ioFail(Err, "corrupt snapshot: trailing bytes after sections");

  return installStaging(G, St, Err);
}

} // namespace egglog
