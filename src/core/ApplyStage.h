//===- core/ApplyStage.h - Parallel apply staging --------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel half of the apply phase (DESIGN.md "Match/apply phase
/// separation"). The engine's matches must be applied in a deterministic
/// (rule, variant, match) order — fresh ids and liveContentHash depend on
/// it bit-for-bit — so the database mutations themselves cannot fan out.
/// What can fan out is everything *before* the mutation: walking the
/// action list per match, evaluating primitive computations, and probing
/// the (frozen) tables for the get-or-default hits that dominate apply
/// cost on merge-heavy workloads.
///
/// Staging runs strictly read-only against the frozen database and emits a
/// flat op list per match chunk; results of function calls are represented
/// by per-chunk placeholder values bound later. A serial tail then drains
/// the chunks in the same (rule, variant, match) order the classic loop
/// uses, owning every fresh-id mint, union, and table write — and
/// validating each staged probe against the unions performed since the
/// freeze before trusting it. Invalidated or unstageable work falls back
/// to the exact serial code path, so any thread count is bit-identical to
/// threads=1.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_APPLYSTAGE_H
#define EGGLOG_CORE_APPLYSTAGE_H

#include "core/Ast.h"
#include "core/UnionFind.h"
#include "core/Value.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace egglog {

class EGraph;

/// Placeholder bit: a staged User-sort value with this bit set is not a
/// real id but an index into the chunk's resolution table (bound by the
/// serial tail when the corresponding Create op executes). Real ids are
/// dense union-find indexes and never approach 2^63.
constexpr uint64_t StagedPlaceholderBit = 1ull << 63;

/// One staged unit of serial-tail work, in exact serial action order.
struct StagedOp {
  enum class Kind : uint8_t {
    /// Match boundary: reset skip state and run the per-match governor
    /// checkpoint, exactly where the classic loop runs it.
    MatchBegin,
    /// A get-or-default (function call in action position): NumKeys keys
    /// starting at ValsBegin, result bound to placeholder Result.
    Create,
    /// (union A B).
    Union,
    /// (set (f keys...) out): NumKeys keys then the out value at ValsBegin.
    Set,
  };
  Kind OpKind = Kind::MatchBegin;
  /// Create only: the frozen probe found a live row (valid only when
  /// !PlaceholderKeys; the keys at ValsBegin are then frozen-canonical).
  bool Hit = false;
  /// Create only: some key is a placeholder; keys are stored raw and the
  /// tail must take the full get-or-default path.
  bool PlaceholderKeys = false;
  FunctionId Func = 0;
  /// Create hit: the frozen row whose output to bind if it is still live.
  uint32_t Row = 0;
  /// Create: placeholder index the result binds; UINT32_MAX for Unit
  /// outputs (the staged value is already the concrete unit).
  uint32_t Result = UINT32_MAX;
  /// First value of this op's payload in StagedChunk::Vals.
  uint32_t ValsBegin = 0;
  uint16_t NumKeys = 0;
  /// Union operands (possibly placeholders).
  Value A, B;
};

/// The staged form of one match chunk.
struct StagedChunk {
  std::vector<StagedOp> Ops;
  /// Flat payload pool (keys and set outputs), indexed by ValsBegin.
  std::vector<Value> Vals;
  uint32_t NumPlaceholders = 0;

  void clear() {
    Ops.clear();
    Vals.clear();
    NumPlaceholders = 0;
  }
};

/// True if \p R's actions can be staged: every action is a Let/Set/Union/
/// Eval whose expressions touch only stage-safe primitives (base-sort
/// signatures, as in the read-only match classifier) and stage-safe
/// function calls (User or Unit output, no :default expression, no
/// container-sort columns). Rules failing this run through the classic
/// serial apply loop at their chunk's position.
bool actionsAreStageSafe(const EGraph &G, const Rule &R);

/// Stages every match of a chunk against the frozen database. Strictly
/// read-only. \p Arena holds Count matches of R.Body.NumVars values each.
/// \p Cancel (optional) is polled once per match; returning true abandons
/// staging. Returns true if the whole chunk was staged (the tail may drain
/// it), false if cancelled (the tail must run the classic loop instead).
bool stageChunkActions(const EGraph &G, const Rule &R, const Value *Arena,
                       size_t Count, StagedChunk &Out,
                       const std::function<bool()> *Cancel);

/// Tracks which frozen-canonical ids have lost canonicality since a phase
/// freeze, by keeping a cursor into the union-find's pending dirty list: a
/// root only stops being canonical by losing a unite(), which appends it
/// there exactly once. Ids created after the freeze are conservatively
/// dirty (the bitmap cannot cover them).
class PhaseDirty {
public:
  explicit PhaseDirty(const UnionFind &UF)
      : UF(UF), FrozenSize(UF.size()), Cursor(UF.pendingDirty().size()),
        Bitmap(FrozenSize, false) {}

  /// Folds the dirty-list suffix accumulated since the last call into the
  /// bitmap. Call before any dirty() query that must reflect the unions
  /// performed so far.
  void absorb() {
    const std::vector<uint64_t> &Pending = UF.pendingDirty();
    for (; Cursor < Pending.size(); ++Cursor)
      if (Pending[Cursor] < FrozenSize)
        Bitmap[Pending[Cursor]] = true;
  }

  /// True if \p Id may no longer be canonical (it lost a unite since the
  /// freeze, or postdates it).
  bool dirty(uint64_t Id) const { return Id >= FrozenSize || Bitmap[Id]; }

private:
  const UnionFind &UF;
  size_t FrozenSize;
  size_t Cursor;
  std::vector<bool> Bitmap;
};

/// Drains one staged chunk in serial order, performing the exact database
/// mutations the classic loop would: validated frozen hits bind without a
/// probe, validated misses re-probe and mint fresh ids in serial order,
/// and anything invalidated takes the full get-or-default / set path with
/// bitwise-identical arguments. \p Resolved and \p Scratch are reusable
/// buffers. Returns false when the run must stop (governor checkpoint
/// refused or a hard error is pending) — mirroring the classic loop's
/// early returns.
bool drainStagedChunk(EGraph &G, const StagedChunk &Chunk, PhaseDirty &Dirty,
                      std::vector<Value> &Resolved,
                      std::vector<Value> &Scratch);

} // namespace egglog

#endif // EGGLOG_CORE_APPLYSTAGE_H
