//===- core/Index.h - Persistent column-trie indexes -----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent sorted column indexes for the generic join (§5.1). The join
/// in Query.cpp binds variables by narrowing each atom to the equal range
/// of the candidate value, column by column — which requires the atom's
/// candidate rows to be sorted lexicographically by a column permutation.
/// Before this layer existed, every executeQuery call re-scanned every row
/// of every atom's table and re-sorted the survivors: per rule, per
/// semi-naïve delta variant, per iteration.
///
/// An IndexCache hangs off each Table and memoizes those sorted row lists
/// (flat tries over row ids) keyed by (column permutation, stamp
/// partition). Entries are invalidated by the table's monotonic version()
/// counter, never eagerly:
///
///  * The `All` partition for a permutation persists across iterations and
///    is refreshed incrementally: dead rows are swept out only when the
///    kill counter moved, freshly appended rows are sorted on their own and
///    merged in — amortized O(changed log changed + n) instead of
///    O(n log n) per refresh.
///  * The semi-naïve `Old`/`New` partitions are derived from the `All`
///    index by a single stable linear filter (no sorting), and are shared
///    by all delta variants of a rule and all rules querying the same
///    table with the same bound in one search phase.
///
/// Constant arguments are NOT part of the cache key: queries narrow to
/// their constants with a binary search at execution time, so rules that
/// differ only in literal values share one index.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_INDEX_H
#define EGGLOG_CORE_INDEX_H

#include "core/Table.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace egglog {

/// Restriction applied to one atom's rows during semi-naïve evaluation.
enum class AtomFilter : uint8_t {
  All, ///< Every live row.
  Old, ///< Live rows stamped strictly before the delta bound.
  New, ///< Live rows stamped at or after the delta bound.
};

/// Fills \p Filters with variant \p Variant of the semi-naïve delta
/// expansion over \p NumAtoms atoms (§4.3): atom Variant restricted to
/// New, atoms before it to Old, atoms after it unrestricted. The single
/// definition shared by the serial executeDelta loop and the engine's
/// parallel work items — thread-count determinism depends on the two
/// paths enumerating identical variants.
inline void makeDeltaVariantFilters(std::vector<AtomFilter> &Filters,
                                    size_t Variant, size_t NumAtoms) {
  Filters.assign(NumAtoms, AtomFilter::All);
  for (size_t K = 0; K < Variant; ++K)
    Filters[K] = AtomFilter::Old;
  Filters[Variant] = AtomFilter::New;
}

/// One sorted column index: the table's live rows (restricted to a stamp
/// partition) ordered lexicographically by a column permutation.
///
/// The index stores sorted row ids only — under the columnar table layout
/// a consumer pairs them with Table::column() base pointers, so a probe of
/// position P on candidate I reads `Col[P][Ids[I]]`: two contiguous
/// arrays, no per-row pointer chase.
class ColumnIndex {
public:
  /// Sorted row ids, in index order. Stable for as long as the owning
  /// table is not mutated.
  const std::vector<uint32_t> &ids() const { return Ids; }
  size_t size() const { return Ids.size(); }

private:
  friend class IndexCache;

  /// Sorted row ids; the persistent structure an incremental refresh
  /// updates in place (partition entries are re-derived from the All
  /// index by a linear stamp filter instead).
  std::vector<uint32_t> Ids;
  uint64_t BuiltVersion = UINT64_MAX;
  size_t BuiltRows = 0;
  uint64_t BuiltKills = 0;
};

/// Cache of ColumnIndexes for one table, plus the per-bound live-row
/// partition counts the query planner uses to order variables. Owned by
/// the Table (see Table::indexes()); all lookups are lazily validated
/// against Table::version().
class IndexCache {
public:
  /// Cache effectiveness counters (cumulative).
  struct Stats {
    uint64_t Hits = 0;        ///< get() served without touching rows.
    uint64_t Builds = 0;      ///< Full scan + sort of an All index.
    uint64_t Refreshes = 0;   ///< Incremental All update (sweep + merge).
    uint64_t Derivations = 0; ///< Old/New partition filtered from All.
  };

  explicit IndexCache(const Table &T) : T(T) {}

  /// Returns the index for \p Perm restricted to \p Filter at
  /// \p DeltaBound, building or refreshing it if stale. The reference is
  /// valid until the table is mutated.
  const ColumnIndex &get(const std::vector<unsigned> &Perm, AtomFilter Filter,
                         uint32_t DeltaBound);

  /// Read-only get(): the cached index for the key if it is fresh at the
  /// table's current version, else nullptr. Never builds, refreshes,
  /// sweeps, or bumps a stats counter, so concurrent match workers can
  /// probe one cache safely (DESIGN.md "Match/apply phase separation");
  /// a single-threaded QueryExecutor::warm pass is what populates it.
  const ColumnIndex *peek(const std::vector<unsigned> &Perm,
                          AtomFilter Filter, uint32_t DeltaBound) const;

  /// (old, new) live-row counts split at \p Bound; cached per version.
  std::pair<size_t, size_t> partitionCounts(uint32_t Bound);

  /// Read-only partitionCounts(): false unless the counts for \p Bound
  /// were cached at the table's current version (by a warm pass).
  bool peekPartitionCounts(uint32_t Bound,
                           std::pair<size_t, size_t> &Out) const;

  /// Drops every cached entry (full bulk invalidation).
  void invalidate();

  /// Drops the stamp-partition entries and counts if the table changed
  /// since they were built; keeps All entries for incremental refresh.
  /// Called in bulk by EGraph::rebuild and lazily by get().
  void sweepStale() {
    if (SweptVersion != T.version())
      sweepStaleSlow();
  }

  const Stats &stats() const { return Counters; }

  /// Approximate bytes held by the cached entries (for the governor's
  /// ceiling, via Table::approxBytes).
  size_t approxBytes() const;

private:
  /// Cache key. The bound is normalized to 0 for AtomFilter::All (the
  /// partition bound is meaningless there).
  struct Key {
    std::vector<unsigned> Perm;
    AtomFilter Filter;
    uint32_t DeltaBound;
  };
  /// Reference-only view of a Key, so lookups need not copy the
  /// permutation vector.
  struct KeyView {
    const std::vector<unsigned> &Perm;
    AtomFilter Filter;
    uint32_t DeltaBound;
  };
  struct KeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A &X, const B &Y) const {
      if (X.Filter != Y.Filter)
        return X.Filter < Y.Filter;
      if (X.DeltaBound != Y.DeltaBound)
        return X.DeltaBound < Y.DeltaBound;
      return X.Perm < Y.Perm;
    }
  };

  const Table &T;
  std::map<Key, ColumnIndex, KeyLess> Entries;
  std::map<uint32_t, std::pair<size_t, size_t>> Counts;
  /// Table version the last sweep ran at.
  uint64_t SweptVersion = UINT64_MAX;
  Stats Counters;
  /// Scratch: the permuted column base pointers of the refresh in
  /// progress, so the sort comparator walks contiguous column arrays.
  std::vector<const Value *> PermCols;

  void sweepStaleSlow();

  void refreshAll(const std::vector<unsigned> &Perm, ColumnIndex &Idx);
  void derivePartition(ColumnIndex &Idx, const ColumnIndex &All,
                       AtomFilter Filter, uint32_t DeltaBound);
};

} // namespace egglog

#endif // EGGLOG_CORE_INDEX_H
