//===- core/Index.cpp - Persistent column-trie indexes ----------------------===//
//
// Part of egglog-cpp. See Index.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Index.h"

#include <algorithm>
#include <cassert>

using namespace egglog;

void IndexCache::invalidate() {
  Entries.clear();
  Counts.clear();
  SweptVersion = UINT64_MAX;
}

void IndexCache::sweepStaleSlow() {
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (It->first.Filter == AtomFilter::All)
      ++It;
    else
      It = Entries.erase(It);
  }
  Counts.clear();
  SweptVersion = T.version();
}

const ColumnIndex *IndexCache::peek(const std::vector<unsigned> &Perm,
                                    AtomFilter Filter,
                                    uint32_t DeltaBound) const {
  if (Filter == AtomFilter::All)
    DeltaBound = 0;
  auto It = Entries.find(KeyView{Perm, Filter, DeltaBound});
  if (It == Entries.end() || It->second.BuiltVersion != T.version())
    return nullptr;
  return &It->second;
}

bool IndexCache::peekPartitionCounts(uint32_t Bound,
                                     std::pair<size_t, size_t> &Out) const {
  // Counts entries are only ever inserted right after a sweep, so a stale
  // SweptVersion means every cached count predates the current version.
  if (SweptVersion != T.version())
    return false;
  auto It = Counts.find(Bound);
  if (It == Counts.end())
    return false;
  Out = It->second;
  return true;
}

std::pair<size_t, size_t> IndexCache::partitionCounts(uint32_t Bound) {
  sweepStale();
  auto [It, Inserted] = Counts.try_emplace(Bound);
  if (Inserted) {
    size_t New = T.liveCountAtLeast(Bound);
    It->second = {T.liveCount() - New, New};
  }
  return It->second;
}

const ColumnIndex &IndexCache::get(const std::vector<unsigned> &Perm,
                                   AtomFilter Filter, uint32_t DeltaBound) {
  sweepStale();
  if (Filter == AtomFilter::All)
    DeltaBound = 0;
  auto It = Entries.find(KeyView{Perm, Filter, DeltaBound});
  if (It == Entries.end())
    It = Entries.emplace(Key{Perm, Filter, DeltaBound}, ColumnIndex())
             .first;
  ColumnIndex &Idx = It->second;
  if (Idx.BuiltVersion == T.version()) {
    ++Counters.Hits;
    return Idx;
  }
  if (Filter == AtomFilter::All) {
    refreshAll(Perm, Idx);
  } else {
    // Note: the recursive get() may insert the All entry, but std::map
    // references stay valid across insertion.
    const ColumnIndex &All = get(Perm, AtomFilter::All, 0);
    derivePartition(Idx, All, Filter, DeltaBound);
  }
  return Idx;
}

void IndexCache::refreshAll(const std::vector<unsigned> &Perm,
                            ColumnIndex &Idx) {
  // Gather the permuted column base pointers once; the comparator then
  // touches only the contiguous column arrays (no per-row pointer
  // arithmetic), which is what makes the sort and merge cache-linear under
  // the columnar table layout.
  PermCols.clear();
  for (unsigned Pos : Perm)
    PermCols.push_back(T.column(Pos));
  const std::vector<const Value *> &Cols = PermCols;
  auto Less = [&Cols](uint32_t A, uint32_t B) {
    for (const Value *Col : Cols)
      if (Col[A] != Col[B])
        return Col[A] < Col[B];
    return A < B;
  };

  size_t Rows = T.rowCount();
  if (Idx.BuiltVersion == UINT64_MAX || Rows < Idx.BuiltRows) {
    // First build, or the table shrank (clear()): sort from scratch.
    Idx.Ids.clear();
    Idx.Ids.reserve(T.liveCount());
    for (size_t Row : T.liveRows())
      Idx.Ids.push_back(static_cast<uint32_t>(Row));
    std::sort(Idx.Ids.begin(), Idx.Ids.end(), Less);
    ++Counters.Builds;
  } else {
    // Incremental refresh. Liveness only ever transitions live -> dead, so
    // rows indexed before and still live keep their relative order; rows
    // appended since the last build are sorted separately and merged in.
    if (T.killCount() != Idx.BuiltKills)
      Idx.Ids.erase(std::remove_if(
                        Idx.Ids.begin(), Idx.Ids.end(),
                        [this](uint32_t Row) { return !T.isLive(Row); }),
                    Idx.Ids.end());
    size_t Mid = Idx.Ids.size();
    for (size_t Row = Idx.BuiltRows; Row < Rows; ++Row)
      if (T.isLive(Row))
        Idx.Ids.push_back(static_cast<uint32_t>(Row));
    std::sort(Idx.Ids.begin() + Mid, Idx.Ids.end(), Less);
    std::inplace_merge(Idx.Ids.begin(), Idx.Ids.begin() + Mid, Idx.Ids.end(),
                       Less);
    ++Counters.Refreshes;
  }

  Idx.BuiltVersion = T.version();
  Idx.BuiltRows = Rows;
  Idx.BuiltKills = T.killCount();
}

void IndexCache::derivePartition(ColumnIndex &Idx, const ColumnIndex &All,
                                 AtomFilter Filter, uint32_t DeltaBound) {
  assert(Filter != AtomFilter::All && "partitions are Old or New");
  // A single stable linear filter of the All index against the stamp
  // column: a cache-linear gather over two flat arrays.
  const uint32_t *Stamps = T.stampColumn();
  Idx.Ids.clear();
  Idx.Ids.reserve(All.Ids.size());
  for (uint32_t Row : All.Ids) {
    bool IsNew = Stamps[Row] >= DeltaBound;
    if ((Filter == AtomFilter::New) == IsNew)
      Idx.Ids.push_back(Row);
  }
  Idx.BuiltVersion = T.version();
  Idx.BuiltRows = T.rowCount();
  Idx.BuiltKills = T.killCount();
  ++Counters.Derivations;
}

size_t IndexCache::approxBytes() const {
  size_t Bytes = 0;
  for (const auto &[Key, Idx] : Entries)
    Bytes += Idx.Ids.capacity() * sizeof(uint32_t) +
             Key.Perm.capacity() * sizeof(unsigned);
  return Bytes;
}
