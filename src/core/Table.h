//===- core/Table.h - Functional database tables ---------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backing store of an egglog function (§3.2, §5.1). Unlike a Datalog
/// relation (a set), a function is a *map* from key tuples to one output,
/// with the functional dependency enforced at insertion time. Rows are
/// append-only: updating a key kills the old row and appends a fresh one
/// stamped with the current iteration, so the semi-naïve delta of iteration
/// i is exactly the live suffix of rows appended during iteration i
/// (Algorithm 1 of the paper).
///
/// Storage is column-major: one contiguous Value array per term position
/// (keys, then the output), like the source paper's reference
/// implementation. The generic join compares one column of many rows at a
/// time, so a column-major layout turns its inner loops into cache-linear
/// scans instead of strided row-major loads; see DESIGN.md "Columnar
/// storage and vectorized joins".
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_TABLE_H
#define EGGLOG_CORE_TABLE_H

#include "core/Value.h"

#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <vector>

namespace egglog {

class IndexCache;

/// A single function's storage: rows of (keys..., output), a liveness
/// bitmap, insertion timestamps, and an open-addressing index on keys.
class Table {
public:
  explicit Table(unsigned NumKeys);
  ~Table();
  Table(const Table &) = delete;
  Table &operator=(const Table &) = delete;

  unsigned numKeys() const { return NumKeys; }
  /// Number of values per row (keys plus output).
  unsigned rowWidth() const { return NumKeys + 1; }

  /// Number of live rows.
  size_t liveCount() const { return NumLive; }
  /// Number of row slots ever appended (including dead rows).
  size_t rowCount() const { return Stamps.size(); }

  /// Looks up the output for a key tuple; nullopt if absent.
  std::optional<Value> lookup(const Value *Keys) const;

  /// Returns the row index holding \p Keys, or -1.
  int64_t findRow(const Value *Keys) const;

  /// Inserts keys -> Out with the given timestamp. If the key was present,
  /// the old row is killed, the old output returned, and the new row
  /// appended (even if the output is unchanged the row is refreshed only
  /// when \p Out differs, to keep deltas small).
  ///
  /// \returns the previous output if the key existed with a different
  /// output; nullopt if this was a fresh key or the output was identical.
  std::optional<Value> insert(const Value *Keys, Value Out, uint32_t Stamp);

  /// Removes the row for a key tuple if present; returns true if removed.
  bool erase(const Value *Keys);

  bool isLive(size_t Row) const { return Live[Row]; }
  uint32_t stamp(size_t Row) const { return Stamps[Row]; }

  /// Monotonic mutation counter: bumped on every insert, erase, and clear.
  /// Cached query indexes compare it to decide whether they are stale.
  uint64_t version() const { return Version; }

  /// Number of rows ever killed (by update or erase). Lets an incremental
  /// index refresh skip the dead-row sweep when nothing died.
  uint64_t killCount() const { return Kills; }

  /// Number of restore()/clear() calls ever. Those are the mutations that
  /// break the append-only contract (truncation, resurrection), so
  /// consumers that scan the appended suffix (the extraction index)
  /// restart from scratch when this moves.
  uint64_t resets() const { return Resets; }

  /// Live rows with stamp >= \p Bound (the semi-naïve "new" partition).
  size_t liveCountAtLeast(uint32_t Bound) const;

  /// Forward iterator over the indices of live rows, skipping dead slots.
  class LiveRowIterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = size_t;
    using difference_type = ptrdiff_t;

    LiveRowIterator(const Table &T, size_t Row) : T(&T), Row(Row) { skip(); }

    size_t operator*() const { return Row; }
    LiveRowIterator &operator++() {
      ++Row;
      skip();
      return *this;
    }
    bool operator==(const LiveRowIterator &Other) const {
      return Row == Other.Row;
    }
    bool operator!=(const LiveRowIterator &Other) const {
      return Row != Other.Row;
    }

  private:
    void skip() {
      while (Row < T->rowCount() && !T->isLive(Row))
        ++Row;
    }
    const Table *T;
    size_t Row;
  };

  /// Packed view of the live rows: `for (size_t Row : T.liveRows())`.
  struct LiveRowRange {
    const Table *T;
    LiveRowIterator begin() const { return LiveRowIterator(*T, 0); }
    LiveRowIterator end() const { return LiveRowIterator(*T, T->rowCount()); }
  };
  LiveRowRange liveRows() const { return LiveRowRange{this}; }

  /// The table's cache of sorted column indexes (created on first use).
  /// Mutation invalidates it implicitly through version().
  IndexCache &indexes() const;

  /// True once indexes() has been called; lets callers skip invalidation
  /// work for tables that never built a cache.
  bool hasIndexCache() const { return Indexes != nullptr; }

  /// The index cache if one was ever created, else null. The engine's
  /// read-only match phase probes through this instead of indexes() so a
  /// concurrent probe can never lazily allocate the cache.
  const IndexCache *indexCacheIfBuilt() const { return Indexes.get(); }

  //===--------------------------------------------------------------------===
  // Reverse occurrence index (incremental rebuilding, §5.1)
  //===--------------------------------------------------------------------===
  //
  // Maps an uninterpreted id to the rows whose id-sort columns mention it,
  // so rebuild() can resolve exactly the rows containing a merged id
  // instead of sweeping rowCount(). Maintained lazily: inserts do nothing,
  // and catch-up scans only the rows appended since the last drain (rows
  // are append-only, and every cell was canonical when written). Lists may
  // contain dead rows — readers skip them — and are dropped wholesale once
  // their id stops being canonical (it can never be written again).

  /// Declares which row columns (key positions, plus NumKeys for the
  /// output) hold uninterpreted ids. Called once, at function declaration.
  void setIdColumns(std::vector<unsigned> Cols) { IdColumns = std::move(Cols); }

  /// True if this table has id-sort columns worth tracking.
  bool trackingOccurrences() const { return !IdColumns.empty(); }

  /// Upper bound on the rows mentioning any id in \p Ids (dead rows still
  /// in the lists are counted); used by the bulk-sweep heuristic.
  size_t occurrenceCount(const std::vector<uint64_t> &Ids);

  /// Brings the occurrence index up to date with every appended row. The
  /// phase-separated engine calls this (via EGraph::warm) in its warm-up
  /// pre-pass, hoisting the lazy catch-up scan off the rebuild that
  /// follows the match phase.
  void warmOccurrences() {
    if (trackingOccurrences())
      catchUpOccurrences();
  }

  /// Appends the rows whose id columns mention \p IdBits to \p Out (dead
  /// rows are filtered out here) and drops the consumed list: once the
  /// caller re-canonicalizes those rows, \p IdBits can never be written
  /// into this table again.
  void takeOccurrences(uint64_t IdBits, std::vector<uint32_t> &Out);

  /// Drops the occurrence list of \p IdBits without reading it (used when
  /// a full sweep supersedes per-id resolution for this pass).
  void dropOccurrences(uint64_t IdBits) {
    if (IdBits < OccHead.size())
      OccHead[IdBits] = -1;
  }

  /// Read-only variant of takeOccurrences: appends the live rows of the
  /// chain without catching up or detaching it. The parallel rebuild's
  /// gather phase walks chains with this (the index must already be caught
  /// up via warmOccurrences); the serial mutation tail detaches the
  /// consumed chains afterwards with dropOccurrences.
  void readOccurrences(uint64_t IdBits, std::vector<uint32_t> &Out) const {
    if (IdBits >= OccHead.size())
      return;
    for (int32_t Node = OccHead[IdBits]; Node >= 0; Node = OccPool[Node].Next)
      if (Live[OccPool[Node].Row])
        Out.push_back(OccPool[Node].Row);
  }

  /// Read-only variant of occurrenceCount (no catch-up; the index must be
  /// up to date via warmOccurrences). Counts chain nodes including dead
  /// rows, matching the over-count the sweep heuristic is calibrated for.
  size_t occurrenceCountReadOnly(const std::vector<uint64_t> &Ids) const {
    size_t Count = 0;
    for (uint64_t Id : Ids) {
      if (Id >= OccHead.size())
        continue;
      for (int32_t Node = OccHead[Id]; Node >= 0; Node = OccPool[Node].Next)
        ++Count;
    }
    return Count;
  }

  /// The value at (row, column). Columns are the NumKeys key positions
  /// then the output at index NumKeys.
  Value cell(size_t Row, unsigned Col) const { return Columns[Col][Row]; }
  Value output(size_t Row) const { return Columns[NumKeys][Row]; }

  /// Base pointer of one column's contiguous value array. Stable for as
  /// long as the table is not mutated (an append may reallocate).
  const Value *column(unsigned Col) const { return Columns[Col].data(); }

  /// Base pointer of the stamp column (parallel to every value column).
  const uint32_t *stampColumn() const { return Stamps.data(); }

  /// Gathers row \p Row into \p Out (rowWidth() values: keys then output).
  void copyRow(size_t Row, Value *Out) const {
    for (unsigned I = 0; I < rowWidth(); ++I)
      Out[I] = Columns[I][Row];
  }

  /// Kills a live row by index: same effect as erase() on its keys, but
  /// without re-probing the hash index by key tuple.
  void eraseRow(size_t Row);

  /// Clears all rows (used by `pop`-less resets in tests).
  void clear();

  /// A frozen view of the table for push/pop contexts. Rows are append-only
  /// and cells/stamps of existing rows never change, so the snapshot is the
  /// row count plus a copy of the liveness bitmap (rows live at the
  /// snapshot can only be killed afterwards, never edited).
  struct Snapshot {
    size_t Rows = 0;
    size_t NumLive = 0;
    uint64_t Kills = 0;
    bool StampsSorted = true;
    std::vector<bool> Live;
  };

  Snapshot snapshot() const;

  /// Restores the exact live content captured by \p S: rows appended since
  /// are truncated, rows killed since are resurrected, and the key index is
  /// rebuilt. Cached column indexes are invalidated (resurrection breaks
  /// their monotone-death refresh assumption).
  void restore(const Snapshot &S);

  /// Transactional mode. Unlike Snapshot, a mark is O(1) — no liveness
  /// bitmap copy. Rollback is possible without one because every kill since
  /// the mark is recorded in the (always-on) kill journal: rows are
  /// append-only, each row is killed at most once, so resurrecting the
  /// journaled suffix and truncating the appended rows restores the exact
  /// live content.
  struct TxnMark {
    size_t Rows = 0;
    size_t KillLogSize = 0;
    size_t NumLive = 0;
    uint64_t Kills = 0;
    uint64_t Resets = 0;
    bool StampsSorted = true;
  };

  TxnMark txnMark() const {
    return TxnMark{Stamps.size(), KillLog.size(), NumLive,
                   Kills,         Resets,         StampsSorted};
  }

  /// Rolls the table back to \p M. No-op (caches stay warm) when nothing
  /// was appended or killed since the mark. Must not be interleaved with
  /// restore()/clear() — those reset the kill journal (asserted via the
  /// Resets counter in the mark).
  void rollbackTo(const TxnMark &M);

  /// Approximate bytes held by this table (for the governor's ceiling).
  size_t approxBytes() const;

private:
  unsigned NumKeys;
  /// Column-major row storage: Columns[C][R] is the value of term position
  /// C in row R. rowWidth() arrays, allocated at construction.
  std::vector<std::vector<Value>> Columns;
  std::vector<uint32_t> Stamps;
  std::vector<bool> Live;
  size_t NumLive = 0;
  uint64_t Version = 0;
  uint64_t Kills = 0;
  uint64_t Resets = 0;
  /// True while Stamps is non-decreasing in append order (always the case
  /// under the engine's monotonic timestamp); enables a binary search in
  /// liveCountAtLeast.
  bool StampsSorted = true;
  /// Row indexes killed since the last restore()/clear(), in kill order.
  /// Always on (4 bytes per kill, reclaimed at the next reset) so command
  /// transactions can roll kills back without a per-command bitmap copy.
  std::vector<uint32_t> KillLog;
  mutable std::unique_ptr<IndexCache> Indexes;

  /// Row columns holding uninterpreted ids (key positions; NumKeys means
  /// the output column). Empty for tables without id sorts, which then
  /// skip occurrence tracking entirely.
  std::vector<unsigned> IdColumns;
  /// Occurrence index storage. Uninterpreted ids are dense union-find
  /// indexes, so the id -> rows map is a direct-indexed head array over a
  /// pooled singly-linked list — no per-id heap allocations, and catch-up
  /// is two stores per (row, id column). Chains may hold dead rows
  /// (skipped on read); consumed chains are detached by resetting the
  /// head, their nodes staying in the pool (8 bytes each, dwarfed by the
  /// row payload).
  struct OccNode {
    uint32_t Row;
    int32_t Next;
  };
  std::vector<int32_t> OccHead;
  std::vector<OccNode> OccPool;
  /// Rows [0, OccTracked) are reflected in the occurrence index.
  /// restore()/clear() reset it to 0 and wipe the index (truncation and
  /// resurrection both break the append-only contract the lazy catch-up
  /// relies on).
  size_t OccTracked = 0;

  /// Indexes the rows appended since the last catch-up.
  void catchUpOccurrences();

  /// Open-addressing hash index mapping key tuples to their live row.
  /// Slots hold row index + 1; 0 means empty. Dead rows are unlinked
  /// eagerly on kill.
  std::vector<uint64_t> Slots;
  size_t SlotMask = 0;

  uint64_t hashKeys(const Value *Keys) const;
  /// hashKeys over the stored key columns of \p Row.
  uint64_t hashRow(size_t Row) const;
  bool keysEqual(size_t Row, const Value *Keys) const;
  /// Appends (Keys..., Out) as a fresh live row and links it into the hash
  /// index; shared by both insert() arms.
  size_t appendRow(const Value *Keys, Value Out, uint32_t Stamp);
  /// Kill bookkeeping shared by erase()/eraseRow()/insert()'s update arm:
  /// flips liveness, journals the kill, and unlinks the hash-index slot
  /// (backward-shift deletion). Does not bump Version.
  void unlinkRow(size_t Row);
  /// Rebuilds the hash index from the live rows in [0, Rows).
  void rebuildSlots(size_t Rows);
  void growIndex();
  void indexInsert(size_t Row);
};

} // namespace egglog

#endif // EGGLOG_CORE_TABLE_H
