//===- core/Table.h - Functional database tables ---------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backing store of an egglog function (§3.2, §5.1). Unlike a Datalog
/// relation (a set), a function is a *map* from key tuples to one output,
/// with the functional dependency enforced at insertion time. Rows are
/// append-only: updating a key kills the old row and appends a fresh one
/// stamped with the current iteration, so the semi-naïve delta of iteration
/// i is exactly the live suffix of rows appended during iteration i
/// (Algorithm 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_TABLE_H
#define EGGLOG_CORE_TABLE_H

#include "core/Value.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace egglog {

/// A single function's storage: rows of (keys..., output), a liveness
/// bitmap, insertion timestamps, and an open-addressing index on keys.
class Table {
public:
  explicit Table(unsigned NumKeys);

  unsigned numKeys() const { return NumKeys; }
  /// Number of values per row (keys plus output).
  unsigned rowWidth() const { return NumKeys + 1; }

  /// Number of live rows.
  size_t liveCount() const { return NumLive; }
  /// Number of row slots ever appended (including dead rows).
  size_t rowCount() const { return Stamps.size(); }

  /// Looks up the output for a key tuple; nullopt if absent.
  std::optional<Value> lookup(const Value *Keys) const;

  /// Returns the row index holding \p Keys, or -1.
  int64_t findRow(const Value *Keys) const;

  /// Inserts keys -> Out with the given timestamp. If the key was present,
  /// the old row is killed, the old output returned, and the new row
  /// appended (even if the output is unchanged the row is refreshed only
  /// when \p Out differs, to keep deltas small).
  ///
  /// \returns the previous output if the key existed with a different
  /// output; nullopt if this was a fresh key or the output was identical.
  std::optional<Value> insert(const Value *Keys, Value Out, uint32_t Stamp);

  /// Removes the row for a key tuple if present; returns true if removed.
  bool erase(const Value *Keys);

  bool isLive(size_t Row) const { return Live[Row]; }
  uint32_t stamp(size_t Row) const { return Stamps[Row]; }

  /// Pointer to the first value of a row (NumKeys keys then the output).
  const Value *row(size_t Row) const { return &Cells[Row * rowWidth()]; }
  Value output(size_t Row) const { return Cells[Row * rowWidth() + NumKeys]; }

  /// Clears all rows (used by `pop`-less resets in tests).
  void clear();

private:
  unsigned NumKeys;
  std::vector<Value> Cells;
  std::vector<uint32_t> Stamps;
  std::vector<bool> Live;
  size_t NumLive = 0;

  /// Open-addressing hash index mapping key tuples to their live row.
  /// Slots hold row index + 1; 0 means empty. Dead rows are unlinked
  /// eagerly on kill.
  std::vector<uint64_t> Slots;
  size_t SlotMask = 0;

  uint64_t hashKeys(const Value *Keys) const;
  bool keysEqual(size_t Row, const Value *Keys) const;
  void growIndex();
  void indexInsert(size_t Row);
  void indexErase(const Value *Keys);
};

} // namespace egglog

#endif // EGGLOG_CORE_TABLE_H
