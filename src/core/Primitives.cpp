//===- core/Primitives.cpp - Builtin primitive registry --------------------===//
//
// Part of egglog-cpp. See Primitives.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Primitives.h"

#include "core/EGraph.h"
#include "support/Rational.h"

#include <cmath>

using namespace egglog;

uint32_t PrimitiveRegistry::add(Primitive Prim) {
  uint32_t Id = static_cast<uint32_t>(Prims.size());
  ByName[Prim.Name].push_back(Id);
  Prims.push_back(std::move(Prim));
  return Id;
}

bool PrimitiveRegistry::resolve(const std::string &Name,
                                const std::vector<SortId> &Args,
                                uint32_t &PrimId) const {
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return false;
  for (uint32_t Id : It->second) {
    const Primitive &P = Prims[Id];
    if (P.ArgSorts == Args) {
      PrimId = Id;
      return true;
    }
  }
  return false;
}

namespace {

using Fn = std::function<bool(EGraph &, const Value *, Value &)>;

/// Shorthand for registering a fixed-signature primitive.
void prim(PrimitiveRegistry &R, const char *Name, std::vector<SortId> Args,
          SortId Out, Fn Apply) {
  R.add(Primitive{Name, std::move(Args), Out, std::move(Apply)});
}

} // namespace

void egglog::registerBuiltinPrimitives(PrimitiveRegistry &R) {
  const SortId I64 = SortTable::I64Sort;
  const SortId F64 = SortTable::F64Sort;
  const SortId Str = SortTable::StringSort;
  const SortId Rat = SortTable::RationalSort;
  const SortId Bool = SortTable::BoolSort;

  //===------------------------------------------------------------------===
  // i64 arithmetic (wrapping two's-complement, division guards)
  //===------------------------------------------------------------------===

  auto I64Bin = [&](const char *Name, auto Op) {
    prim(R, Name, {I64, I64}, I64,
         [Op](EGraph &G, const Value *A, Value &Out) {
           int64_t X = G.valueToI64(A[0]), Y = G.valueToI64(A[1]);
           int64_t Result = 0;
           if (!Op(X, Y, Result))
             return false;
           Out = G.mkI64(Result);
           return true;
         });
  };
  I64Bin("+", [](int64_t X, int64_t Y, int64_t &Result) {
    Result = static_cast<int64_t>(static_cast<uint64_t>(X) +
                                  static_cast<uint64_t>(Y));
    return true;
  });
  I64Bin("-", [](int64_t X, int64_t Y, int64_t &Result) {
    Result = static_cast<int64_t>(static_cast<uint64_t>(X) -
                                  static_cast<uint64_t>(Y));
    return true;
  });
  I64Bin("*", [](int64_t X, int64_t Y, int64_t &Result) {
    Result = static_cast<int64_t>(static_cast<uint64_t>(X) *
                                  static_cast<uint64_t>(Y));
    return true;
  });
  I64Bin("/", [](int64_t X, int64_t Y, int64_t &Result) {
    if (Y == 0 || (X == INT64_MIN && Y == -1))
      return false;
    Result = X / Y;
    return true;
  });
  I64Bin("%", [](int64_t X, int64_t Y, int64_t &Result) {
    if (Y == 0 || (X == INT64_MIN && Y == -1))
      return false;
    Result = X % Y;
    return true;
  });
  I64Bin("min", [](int64_t X, int64_t Y, int64_t &Result) {
    Result = X < Y ? X : Y;
    return true;
  });
  I64Bin("max", [](int64_t X, int64_t Y, int64_t &Result) {
    Result = X > Y ? X : Y;
    return true;
  });
  I64Bin("<<", [](int64_t X, int64_t Y, int64_t &Result) {
    if (Y < 0 || Y > 63)
      return false;
    Result = static_cast<int64_t>(static_cast<uint64_t>(X) << Y);
    return true;
  });
  I64Bin(">>", [](int64_t X, int64_t Y, int64_t &Result) {
    if (Y < 0 || Y > 63)
      return false;
    Result = X >> Y;
    return true;
  });
  prim(R, "abs", {I64}, I64, [](EGraph &G, const Value *A, Value &Out) {
    int64_t X = G.valueToI64(A[0]);
    if (X == INT64_MIN)
      return false;
    Out = G.mkI64(X < 0 ? -X : X);
    return true;
  });
  prim(R, "neg", {I64}, I64, [](EGraph &G, const Value *A, Value &Out) {
    int64_t X = G.valueToI64(A[0]);
    if (X == INT64_MIN)
      return false;
    Out = G.mkI64(-X);
    return true;
  });

  auto I64Cmp = [&](const char *Name, auto Op) {
    prim(R, Name, {I64, I64}, Bool,
         [Op](EGraph &G, const Value *A, Value &Out) {
           Out = G.mkBool(Op(G.valueToI64(A[0]), G.valueToI64(A[1])));
           return true;
         });
  };
  I64Cmp("<", [](int64_t X, int64_t Y) { return X < Y; });
  I64Cmp("<=", [](int64_t X, int64_t Y) { return X <= Y; });
  I64Cmp(">", [](int64_t X, int64_t Y) { return X > Y; });
  I64Cmp(">=", [](int64_t X, int64_t Y) { return X >= Y; });

  //===------------------------------------------------------------------===
  // f64 arithmetic
  //===------------------------------------------------------------------===

  auto F64Bin = [&](const char *Name, auto Op) {
    prim(R, Name, {F64, F64}, F64,
         [Op](EGraph &G, const Value *A, Value &Out) {
           double Result = Op(G.valueToF64(A[0]), G.valueToF64(A[1]));
           if (std::isnan(Result))
             return false;
           Out = G.mkF64(Result);
           return true;
         });
  };
  F64Bin("+", [](double X, double Y) { return X + Y; });
  F64Bin("-", [](double X, double Y) { return X - Y; });
  F64Bin("*", [](double X, double Y) { return X * Y; });
  F64Bin("/", [](double X, double Y) { return X / Y; });
  F64Bin("min", [](double X, double Y) { return X < Y ? X : Y; });
  F64Bin("max", [](double X, double Y) { return X > Y ? X : Y; });
  prim(R, "sqrt", {F64}, F64, [](EGraph &G, const Value *A, Value &Out) {
    double X = G.valueToF64(A[0]);
    if (X < 0)
      return false;
    Out = G.mkF64(std::sqrt(X));
    return true;
  });

  auto F64Cmp = [&](const char *Name, auto Op) {
    prim(R, Name, {F64, F64}, Bool,
         [Op](EGraph &G, const Value *A, Value &Out) {
           Out = G.mkBool(Op(G.valueToF64(A[0]), G.valueToF64(A[1])));
           return true;
         });
  };
  F64Cmp("<", [](double X, double Y) { return X < Y; });
  F64Cmp("<=", [](double X, double Y) { return X <= Y; });
  F64Cmp(">", [](double X, double Y) { return X > Y; });
  F64Cmp(">=", [](double X, double Y) { return X >= Y; });

  //===------------------------------------------------------------------===
  // bool connectives
  //===------------------------------------------------------------------===

  prim(R, "and", {Bool, Bool}, Bool,
       [](EGraph &G, const Value *A, Value &Out) {
         Out = G.mkBool(A[0].Bits && A[1].Bits);
         return true;
       });
  prim(R, "or", {Bool, Bool}, Bool, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkBool(A[0].Bits || A[1].Bits);
    return true;
  });
  prim(R, "not", {Bool}, Bool, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkBool(!A[0].Bits);
    return true;
  });

  //===------------------------------------------------------------------===
  // strings
  //===------------------------------------------------------------------===

  prim(R, "+", {Str, Str}, Str, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkString(G.valueToString(A[0]) + G.valueToString(A[1]));
    return true;
  });

  //===------------------------------------------------------------------===
  // rationals (exact, arbitrary precision)
  //===------------------------------------------------------------------===

  prim(R, "rational", {I64, I64}, Rat,
       [](EGraph &G, const Value *A, Value &Out) {
         int64_t Num = G.valueToI64(A[0]), Den = G.valueToI64(A[1]);
         if (Den == 0)
           return false;
         Out = G.mkRational(Rational(BigInt(Num), BigInt(Den)));
         return true;
       });
  // Arbitrary-precision rational literal from decimal strings; used when a
  // rational's parts exceed i64 (the paper notes a Herbie benchmark
  // overflowed egglog's rational — this constructor cannot).
  prim(R, "rational-big", {Str, Str}, Rat,
       [](EGraph &G, const Value *A, Value &Out) {
         bool OkNum = false, OkDen = false;
         BigInt Num = BigInt::fromString(G.valueToString(A[0]), OkNum);
         BigInt Den = BigInt::fromString(G.valueToString(A[1]), OkDen);
         if (!OkNum || !OkDen || Den.isZero())
           return false;
         Out = G.mkRational(Rational(std::move(Num), std::move(Den)));
         return true;
       });
  auto RatBin = [&](const char *Name, auto Op) {
    prim(R, Name, {Rat, Rat}, Rat,
         [Op](EGraph &G, const Value *A, Value &Out) {
           Rational Result;
           if (!Op(G.valueToRational(A[0]), G.valueToRational(A[1]), Result))
             return false;
           Out = G.mkRational(Result);
           return true;
         });
  };
  // Interval endpoints can carry +/-inf (see the saturating rounding
  // primitives below), so the indeterminate forms fail the match instead
  // of computing: an abandoned analysis fact is always sound.
  RatBin("+", [](const Rational &X, const Rational &Y, Rational &Result) {
    if (!Rational::addDefined(X, Y))
      return false;
    Result = X + Y;
    return true;
  });
  RatBin("-", [](const Rational &X, const Rational &Y, Rational &Result) {
    if (!Rational::subDefined(X, Y))
      return false;
    Result = X - Y;
    return true;
  });
  RatBin("*", [](const Rational &X, const Rational &Y, Rational &Result) {
    if (!Rational::mulDefined(X, Y))
      return false;
    Result = X * Y;
    return true;
  });
  RatBin("/", [](const Rational &X, const Rational &Y, Rational &Result) {
    if (!Rational::divDefined(X, Y))
      return false;
    Result = X / Y;
    return true;
  });
  RatBin("min", [](const Rational &X, const Rational &Y, Rational &Result) {
    Result = Rational::min(X, Y);
    return true;
  });
  RatBin("max", [](const Rational &X, const Rational &Y, Rational &Result) {
    Result = Rational::max(X, Y);
    return true;
  });
  prim(R, "abs", {Rat}, Rat, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkRational(G.valueToRational(A[0]).abs());
    return true;
  });
  prim(R, "neg", {Rat}, Rat, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkRational(-G.valueToRational(A[0]));
    return true;
  });
  // Guaranteed lower/upper bounds for sqrt and cbrt, used by the interval
  // analysis rules of Fig. 10. Results are rounded outward to dyadics so
  // chained interval arithmetic stays cheap.
  //
  // All interval primitives saturate once a magnitude's representation
  // exceeds 1024 bits: the endpoint is rounded *outward* onto the capped
  // dyadic grid — to the saturation points +/-2^896, +/-2^-896, or 0
  // while a sound capped bound exists (see the margin argument below),
  // and all the way to +/-inf beyond that. Without the cap, saturating the
  // analysis over deep product terms (x^2, x^4, ... from the flip
  // rewrites) chains dyadics whose widths double per term level, and a
  // single iteration can take minutes of BigInt arithmetic; the earlier
  // fail-the-match behavior bounded the cost but silently dropped the
  // analysis fact, leaving guards blind on exactly the deep terms the
  // paper's sound rewrites need.
  auto TooWide = [](const Rational &X) {
    return X.numerator().bitWidth() > 1024 ||
           X.denominator().bitWidth() > 1024;
  };
  // Endpoints are rounded to 64 significant bits FIRST (which already
  // absorbs wide-but-moderate values like (2^2000+1)/2^2000), and only a
  // still-wide result — whose magnitude, not precision, is the problem —
  // saturates. A post-rounding wide value has a 64-bit side and a
  // >1024-bit side, so its magnitude is at least 2^960 (wide numerator) or
  // at most 2^-959 (wide denominator); the grid's saturation points
  // +/-2^896 and +/-2^-896 sit strictly inside those regimes (64+ bits of
  // margin), making Cap <= |huge| and |tiny| <= TinyCap sound, while their
  // own representations stay far under the 1024-bit cap.
  Rational Cap(BigInt(1).shiftLeft(896), BigInt(1));
  Rational TinyCap(BigInt(1), BigInt(1).shiftLeft(896));
  auto SaturateLo = [TooWide, Cap, TinyCap](const Rational &X) {
    if (!X.isFinite() || !TooWide(X))
      return X;
    bool Huge = X.numerator().bitWidth() > X.denominator().bitWidth();
    if (X.isNegative())
      return Huge ? Rational::negInfinity() : -TinyCap;
    return Huge ? Cap : Rational();
  };
  auto SaturateHi = [SaturateLo](const Rational &X) { return -SaturateLo(-X); };
  prim(R, "sqrt-lo", {Rat}, Rat,
       [SaturateLo](EGraph &G, const Value *A, Value &Out) {
         const Rational &X = G.valueToRational(A[0]);
         if (X.isNegative())
           return false;
         Out = G.mkRational(
             SaturateLo(X.roundDown()).sqrtLower(30).roundDown());
         return true;
       });
  prim(R, "sqrt-hi", {Rat}, Rat,
       [SaturateHi](EGraph &G, const Value *A, Value &Out) {
         const Rational &X = G.valueToRational(A[0]);
         if (X.isNegative())
           return false;
         Out = G.mkRational(SaturateHi(X.roundUp()).sqrtUpper(30).roundUp());
         return true;
       });
  prim(R, "cbrt-lo", {Rat}, Rat,
       [SaturateLo](EGraph &G, const Value *A, Value &Out) {
         const Rational &X = G.valueToRational(A[0]);
         Out = G.mkRational(
             SaturateLo(X.roundDown()).cbrtLower(30).roundDown());
         return true;
       });
  prim(R, "cbrt-hi", {Rat}, Rat,
       [SaturateHi](EGraph &G, const Value *A, Value &Out) {
         const Rational &X = G.valueToRational(A[0]);
         Out = G.mkRational(SaturateHi(X.roundUp()).cbrtUpper(30).roundUp());
         return true;
       });
  // Outward rounding for interval endpoints (sound: lo rounds down, hi
  // rounds up), saturating past the representation cap.
  prim(R, "round-lo", {Rat}, Rat,
       [SaturateLo](EGraph &G, const Value *A, Value &Out) {
         Out = G.mkRational(SaturateLo(G.valueToRational(A[0]).roundDown()));
         return true;
       });
  prim(R, "round-hi", {Rat}, Rat,
       [SaturateHi](EGraph &G, const Value *A, Value &Out) {
         Out = G.mkRational(SaturateHi(G.valueToRational(A[0]).roundUp()));
         return true;
       });
  prim(R, "to-f64", {Rat}, F64, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkF64(G.valueToRational(A[0]).toDouble());
    return true;
  });
  prim(R, "from-i64", {I64}, Rat, [](EGraph &G, const Value *A, Value &Out) {
    Out = G.mkRational(Rational(G.valueToI64(A[0])));
    return true;
  });

  auto RatCmp = [&](const char *Name, auto Op) {
    prim(R, Name, {Rat, Rat}, Bool,
         [Op](EGraph &G, const Value *A, Value &Out) {
           Out = G.mkBool(
               Op(G.valueToRational(A[0]).compare(G.valueToRational(A[1]))));
           return true;
         });
  };
  RatCmp("<", [](int C) { return C < 0; });
  RatCmp("<=", [](int C) { return C <= 0; });
  RatCmp(">", [](int C) { return C > 0; });
  RatCmp(">=", [](int C) { return C >= 0; });
}
