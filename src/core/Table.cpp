//===- core/Table.cpp - Functional database tables ------------------------===//
//
// Part of egglog-cpp. See Table.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Table.h"

#include "core/Index.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace egglog;

Table::Table(unsigned NumKeys) : NumKeys(NumKeys) {
  Columns.resize(rowWidth());
  Slots.assign(16, 0);
  SlotMask = Slots.size() - 1;
}

Table::~Table() = default;

IndexCache &Table::indexes() const {
  if (!Indexes)
    Indexes = std::make_unique<IndexCache>(*this);
  return *Indexes;
}

size_t Table::liveCountAtLeast(uint32_t Bound) const {
  size_t Count = 0;
  if (StampsSorted) {
    // Only the (typically small) suffix of rows stamped at or after the
    // bound needs a liveness scan.
    size_t First =
        std::lower_bound(Stamps.begin(), Stamps.end(), Bound) -
        Stamps.begin();
    for (size_t Row = First; Row < Stamps.size(); ++Row)
      if (Live[Row])
        ++Count;
    return Count;
  }
  for (size_t Row : liveRows())
    if (Stamps[Row] >= Bound)
      ++Count;
  return Count;
}

uint64_t Table::hashKeys(const Value *Keys) const {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned I = 0; I < NumKeys; ++I) {
    Hash ^= (static_cast<uint64_t>(Keys[I].Sort) << 32) ^ hashMix(Keys[I].Bits);
    Hash *= 1099511628211ull;
  }
  return hashMix(Hash);
}

uint64_t Table::hashRow(size_t Row) const {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned I = 0; I < NumKeys; ++I) {
    Value V = Columns[I][Row];
    Hash ^= (static_cast<uint64_t>(V.Sort) << 32) ^ hashMix(V.Bits);
    Hash *= 1099511628211ull;
  }
  return hashMix(Hash);
}

bool Table::keysEqual(size_t Row, const Value *Keys) const {
  for (unsigned I = 0; I < NumKeys; ++I)
    if (Columns[I][Row] != Keys[I])
      return false;
  return true;
}

int64_t Table::findRow(const Value *Keys) const {
  uint64_t Hash = hashKeys(Keys);
  size_t Slot = Hash & SlotMask;
  while (true) {
    uint64_t Entry = Slots[Slot];
    if (Entry == 0)
      return -1;
    size_t Row = Entry - 1;
    if (keysEqual(Row, Keys))
      return static_cast<int64_t>(Row);
    Slot = (Slot + 1) & SlotMask;
  }
}

std::optional<Value> Table::lookup(const Value *Keys) const {
  int64_t Row = findRow(Keys);
  if (Row < 0)
    return std::nullopt;
  return output(static_cast<size_t>(Row));
}

void Table::growIndex() {
  std::vector<uint64_t> OldSlots = std::move(Slots);
  Slots.assign(OldSlots.size() * 2, 0);
  SlotMask = Slots.size() - 1;
  for (uint64_t Entry : OldSlots) {
    if (Entry == 0)
      continue;
    uint64_t Hash = hashRow(Entry - 1);
    size_t Slot = Hash & SlotMask;
    while (Slots[Slot] != 0)
      Slot = (Slot + 1) & SlotMask;
    Slots[Slot] = Entry;
  }
}

void Table::indexInsert(size_t Row) {
  // Keep load factor under 70%.
  if ((NumLive + 1) * 10 >= Slots.size() * 7)
    growIndex();
  uint64_t Hash = hashRow(Row);
  size_t Slot = Hash & SlotMask;
  while (Slots[Slot] != 0)
    Slot = (Slot + 1) & SlotMask;
  Slots[Slot] = Row + 1;
}

void Table::unlinkRow(size_t Row) {
  assert(Live[Row] && "killing a dead row");
  Live[Row] = false;
  --NumLive;
  ++Kills;
  KillLog.push_back(static_cast<uint32_t>(Row));
  // Locate the slot holding this row. A live row is always indexed, so the
  // probe chain from its hash must contain it.
  size_t Slot = hashRow(Row) & SlotMask;
  while (Slots[Slot] != Row + 1)
    Slot = (Slot + 1) & SlotMask;
  // Robin-hood-free open addressing requires backward-shift deletion to
  // keep probe chains intact: walk the cluster and move entries whose
  // ideal slot precedes the vacated hole.
  size_t Hole = Slot;
  size_t Probe = (Slot + 1) & SlotMask;
  while (Slots[Probe] != 0) {
    size_t Ideal = hashRow(Slots[Probe] - 1) & SlotMask;
    // Does the entry at Probe want to live at or before Hole (cyclically)?
    bool CanMove = ((Probe - Ideal) & SlotMask) >= ((Probe - Hole) & SlotMask);
    if (CanMove) {
      Slots[Hole] = Slots[Probe];
      Hole = Probe;
    }
    Probe = (Probe + 1) & SlotMask;
  }
  Slots[Hole] = 0;
}

size_t Table::appendRow(const Value *Keys, Value Out, uint32_t Stamp) {
  size_t NewRow = Stamps.size();
  for (unsigned I = 0; I < NumKeys; ++I)
    Columns[I].push_back(Keys[I]);
  Columns[NumKeys].push_back(Out);
  if (!Stamps.empty() && Stamp < Stamps.back())
    StampsSorted = false;
  Stamps.push_back(Stamp);
  Live.push_back(true);
  ++NumLive;
  ++Version;
  indexInsert(NewRow);
  return NewRow;
}

std::optional<Value> Table::insert(const Value *Keys, Value Out,
                                   uint32_t Stamp) {
  int64_t Existing = findRow(Keys);
  if (Existing >= 0) {
    size_t Row = static_cast<size_t>(Existing);
    Value Old = output(Row);
    if (Old == Out)
      return std::nullopt;
    // Kill the old row and unlink it from the index, then append a
    // refreshed row.
    unlinkRow(Row);
    appendRow(Keys, Out, Stamp);
    return Old;
  }
  appendRow(Keys, Out, Stamp);
  return std::nullopt;
}

bool Table::erase(const Value *Keys) {
  int64_t Existing = findRow(Keys);
  if (Existing < 0)
    return false;
  unlinkRow(static_cast<size_t>(Existing));
  ++Version;
  return true;
}

void Table::eraseRow(size_t Row) {
  unlinkRow(Row);
  ++Version;
}

void Table::catchUpOccurrences() {
  size_t Rows = rowCount();
  for (size_t Row = OccTracked; Row < Rows; ++Row) {
    if (!Live[Row])
      continue; // died before any rebuild could need it
    for (unsigned Col : IdColumns) {
      uint64_t Id = Columns[Col][Row].Bits;
      if (Id >= OccHead.size()) {
        // Ids are dense union-find indexes; grow geometrically so repeated
        // fresh ids stay amortized-constant.
        size_t NewSize = std::max<size_t>(Id + 1, OccHead.size() * 2);
        OccHead.resize(std::max<size_t>(NewSize, 16), -1);
      }
      int32_t Head = OccHead[Id];
      // The same id in two columns of one row needs only one entry.
      if (Head >= 0 && OccPool[Head].Row == Row)
        continue;
      OccPool.push_back(OccNode{static_cast<uint32_t>(Row), Head});
      OccHead[Id] = static_cast<int32_t>(OccPool.size() - 1);
    }
  }
  OccTracked = Rows;
}

size_t Table::occurrenceCount(const std::vector<uint64_t> &Ids) {
  catchUpOccurrences();
  size_t Count = 0;
  for (uint64_t Id : Ids) {
    if (Id >= OccHead.size())
      continue;
    for (int32_t Node = OccHead[Id]; Node >= 0; Node = OccPool[Node].Next)
      ++Count;
  }
  return Count;
}

void Table::takeOccurrences(uint64_t IdBits, std::vector<uint32_t> &Out) {
  catchUpOccurrences();
  if (IdBits >= OccHead.size())
    return;
  for (int32_t Node = OccHead[IdBits]; Node >= 0; Node = OccPool[Node].Next)
    if (Live[OccPool[Node].Row])
      Out.push_back(OccPool[Node].Row);
  OccHead[IdBits] = -1;
}

Table::Snapshot Table::snapshot() const {
  Snapshot S;
  S.Rows = Stamps.size();
  S.NumLive = NumLive;
  S.Kills = Kills;
  S.StampsSorted = StampsSorted;
  S.Live = Live;
  return S;
}

void Table::rebuildSlots(size_t Rows) {
  size_t MinSlots = 16;
  while (NumLive * 10 >= MinSlots * 7)
    MinSlots *= 2;
  Slots.assign(MinSlots, 0);
  SlotMask = Slots.size() - 1;
  for (size_t Row = 0; Row < Rows; ++Row) {
    if (!Live[Row])
      continue;
    uint64_t Hash = hashRow(Row);
    size_t Slot = Hash & SlotMask;
    while (Slots[Slot] != 0)
      Slot = (Slot + 1) & SlotMask;
    Slots[Slot] = Row + 1;
  }
}

void Table::restore(const Snapshot &S) {
  assert(S.Rows <= Stamps.size() && "snapshot is from a different table");
  for (std::vector<Value> &Col : Columns)
    Col.resize(S.Rows);
  Stamps.resize(S.Rows);
  Live = S.Live;
  NumLive = S.NumLive;
  Kills = S.Kills;
  StampsSorted = S.StampsSorted;
  // The kill journal indexes rows of the pre-restore array; a restore is a
  // journal epoch boundary (tracked by Resets, which open transaction marks
  // assert against).
  KillLog.clear();
  ++Version;
  ++Resets;

  // Rebuild the open-addressing key index from the restored live rows.
  rebuildSlots(S.Rows);

  // Resurrected rows violate the indexes' "rows only die" refresh
  // assumption, so drop every cached column index outright. The occurrence
  // index is rebuilt lazily for the same reason: truncation orphans its
  // row ids and resurrection revives rows whose chains may already have
  // been consumed by a rebuild.
  OccHead.clear();
  OccPool.clear();
  OccTracked = 0;
  if (Indexes)
    Indexes->invalidate();
}

void Table::rollbackTo(const TxnMark &M) {
  assert(M.Resets == Resets &&
         "transaction mark straddles a restore()/clear() epoch");
  assert(M.Rows <= Stamps.size() && "mark is from a different table");
  // An aborted rebuild may have consumed occurrence chains (takeOccurrences
  // detaches the chain before the rows are rewritten) for ids that rollback
  // returns to the dirty worklist; those chains must come back. Wipe the
  // index and let the lazy catch-up rescan — even on the cheap path below,
  // where the row data itself is untouched.
  OccHead.clear();
  OccPool.clear();
  OccTracked = 0;
  // Cheap path: the command never appended or killed here — the row data,
  // key index, and cached column indexes all stay warm.
  if (M.Rows == Stamps.size() && M.KillLogSize == KillLog.size())
    return;

  // Resurrect the rows killed since the mark. Each row dies at most once,
  // so the journaled suffix has no duplicates; entries pointing at rows
  // appended after the mark are about to be truncated anyway.
  for (size_t K = M.KillLogSize; K < KillLog.size(); ++K)
    if (KillLog[K] < M.Rows)
      Live[KillLog[K]] = true;
  KillLog.resize(M.KillLogSize);
  for (std::vector<Value> &Col : Columns)
    Col.resize(M.Rows);
  Stamps.resize(M.Rows);
  Live.resize(M.Rows);
  NumLive = M.NumLive;
  Kills = M.Kills;
  StampsSorted = M.StampsSorted;
  ++Version;
  ++Resets;

  // Same derived-state reset as restore(): rebuild the key index from the
  // surviving live rows and drop incremental consumers (resurrection
  // breaks their monotone-death assumptions).
  rebuildSlots(M.Rows);
  if (Indexes)
    Indexes->invalidate();
}

size_t Table::approxBytes() const {
  size_t Bytes = Stamps.capacity() * sizeof(uint32_t) + Live.capacity() / 8 +
                 KillLog.capacity() * sizeof(uint32_t) +
                 Slots.capacity() * sizeof(uint64_t) +
                 OccHead.capacity() * sizeof(int32_t) +
                 OccPool.capacity() * sizeof(OccNode);
  for (const std::vector<Value> &Col : Columns)
    Bytes += Col.capacity() * sizeof(Value);
  if (Indexes)
    Bytes += Indexes->approxBytes();
  return Bytes;
}

void Table::clear() {
  for (std::vector<Value> &Col : Columns)
    Col.clear();
  Stamps.clear();
  Live.clear();
  NumLive = 0;
  StampsSorted = true;
  KillLog.clear();
  ++Version;
  ++Resets;
  Slots.assign(16, 0);
  SlotMask = Slots.size() - 1;
  OccHead.clear();
  OccPool.clear();
  OccTracked = 0;
  // Row slots will be reused with different contents, so cached indexes
  // must not attempt an incremental refresh against their stale ids.
  if (Indexes)
    Indexes->invalidate();
}
