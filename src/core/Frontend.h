//===- core/Frontend.h - egglog language frontend --------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The egglog surface language (§3): parsing, static typechecking, and
/// command execution. The Frontend owns an EGraph and an Engine and
/// interprets programs in the s-expression syntax used throughout the
/// paper, including the desugarings it describes:
///
///   (relation r (A B))      => function r : A B -> Unit
///   (datatype T (C A) ...)  => sort T plus constructor functions
///   (rewrite lhs rhs)       => (rule ((= __root lhs)) ((union __root rhs)))
///   (define x e)            => nullary function x plus (set (x) e)
///
/// Rules are statically typechecked (§5.2: "egglog prevents common errors
/// by statically typechecking rules").
///
/// Phasing commands: (ruleset name) declares a ruleset, rules join one via
/// :ruleset, (run name n) runs one, (run-schedule ...) interprets a
/// saturate/seq/repeat schedule tree, and (push)/(pop) enter and abandon
/// database contexts (snapshot/restore of the whole engine state).
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_FRONTEND_H
#define EGGLOG_CORE_FRONTEND_H

#include "analysis/Lints.h"
#include "analysis/RuleGraph.h"
#include "core/EGraph.h"
#include "core/Engine.h"
#include "support/Errors.h"
#include "support/SExpr.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {

/// Interpreter for the egglog language; also the main library facade.
class Frontend {
public:
  Frontend() : Eng(Graph) {}

  /// Parses and executes a whole program. Returns false on the first
  /// error; error() describes it. Check failures are errors.
  bool execute(std::string_view Source);

  /// Executes a single already-parsed top-level form. Every mutating
  /// command runs inside an implicit transaction: on any error the
  /// database, the engine's scheduler state, and the output buffer are
  /// rolled back to their pre-command state, so a failed command leaves no
  /// trace. (push)/(pop) are barrier commands — they validate up front and
  /// manage whole-database snapshots themselves.
  bool executeForm(const SExpr &Form);

  const std::string &error() const { return ErrorMsg; }

  /// Structured form of the last error: kind (drives exit codes), message,
  /// and source location. Kind is None after a successful command.
  const EggError &lastError() const { return LastError; }

  /// Output lines produced by extract (and other printing commands).
  const std::vector<std::string> &outputs() const { return Outputs; }
  void clearOutputs() { Outputs.clear(); }

  EGraph &graph() { return Graph; }
  Engine &engine() { return Eng; }

  /// Options used by the (run ...) command; benchmarks flip SemiNaive or
  /// the scheduler here.
  RunOptions &runOptions() { return Options; }

  /// Report of the most recent (run ...) command.
  const RunReport &lastRun() const { return LastRun; }

  /// Cumulative per-phase engine timing over every (run ...) and
  /// (run-schedule ...) this frontend executed; the egglog_run tool's
  /// --stats flag dumps it.
  struct PhaseTotals {
    size_t Iterations = 0;
    size_t Matches = 0;
    double WarmSeconds = 0;
    double SearchSeconds = 0;
    double ApplySeconds = 0;
    /// Read-only staging share of ApplySeconds (parallel mode only).
    double ApplyStageSeconds = 0;
    double RebuildSeconds = 0;
    /// Read-only catch-up + gather share of RebuildSeconds (parallel mode
    /// only).
    double RebuildGatherSeconds = 0;
  };
  const PhaseTotals &phaseTotals() const { return Totals; }

  /// Evaluates a ground expression in the current database without
  /// creating terms; returns false if it is not present.
  bool evalGround(std::string_view ExprSource, Value &Out);

  /// Enters a new database context (the (push) command): snapshots the
  /// EGraph and Engine so a later popContext() restores them exactly.
  void pushContext();

  /// Abandons the innermost context (the (pop) command); returns false if
  /// no context is open.
  bool popContext();

  /// Number of open contexts.
  size_t contextDepth() const { return Contexts.size(); }

  //===--- static analysis (src/analysis) --------------------------------===

  /// Analysis mode: declarations, rules, and top-level actions execute
  /// normally (building the program picture, including base facts), but
  /// run/run-schedule forms are typechecked and recorded without running,
  /// and check/extract/save/load/print-size validate without evaluating.
  /// The lint drivers (egglog_lint, egglog_run --lint) use this to walk a
  /// whole program cheaply before — or instead of — executing it.
  void setAnalysisMode(bool Enabled) { AnalysisMode = Enabled; }
  bool analysisMode() const { return AnalysisMode; }

  /// Labels subsequently executed forms with a source unit (file path);
  /// rules and declarations record it so multi-file diagnostics point into
  /// the right file.
  void setSourceLabel(std::string Label) { UnitLabel = std::move(Label); }

  /// Builds the rule/function dependency graph for the rules declared so
  /// far (the foundation for the lints and for future demand/magic-set
  /// transformation work).
  RuleGraph ruleGraph() const;

  /// Runs every lint (analysis/Lints.h) over the declared program plus the
  /// schedule-reachability facts recorded from run forms seen so far.
  std::vector<LintDiagnostic> lintProgram() const;

private:
  EGraph Graph;
  Engine Eng;
  RunOptions Options;
  RunReport LastRun;
  PhaseTotals Totals;
  std::string ErrorMsg;
  EggError LastError;
  std::vector<std::string> Outputs;

  /// The (push)/(pop) context stack: paired snapshots of the database and
  /// the engine-side rule state.
  struct SavedContext {
    EGraph::Snapshot GraphState;
    Engine::Snapshot EngineState;
  };
  std::vector<SavedContext> Contexts;

  bool AnalysisMode = false;
  std::string UnitLabel;
  /// Schedule-reachability facts for the lints, recorded by every
  /// run/run-schedule form (in both modes). Monotone per ruleset, so a
  /// rolled-back command can only make the lints more conservative.
  LintContext Lint;
  /// The form executeForm is currently running, for error sites that have
  /// no SExpr of their own (ensureRebuilt); null outside executeForm.
  const SExpr *CurrentForm = nullptr;

  //===--- typechecking context ------------------------------------------===

  /// A name binding inside a rule: either a query/let variable slot or a
  /// constant.
  struct Binding {
    VarOrConst Term;
    SortId Sort = 0;
  };

  /// State accumulated while typechecking one rule (or one top-level
  /// action treated as a rule with an empty query).
  struct RuleCtx {
    Query Q;
    std::unordered_map<std::string, Binding> Names;
    /// Total slots including action lets (starts equal to Q.NumVars).
    uint32_t NumSlots = 0;
    /// Surface name per slot ("" for compiler-introduced slots); becomes
    /// Rule::VarNames so the unused-variable lint can name slots.
    std::vector<std::string> SlotNames;

    uint32_t freshVar(SortId Sort) {
      uint32_t Slot = Q.NumVars++;
      Q.VarSorts.push_back(Sort);
      NumSlots = std::max(NumSlots, Q.NumVars);
      return Slot;
    }

    void nameSlot(uint32_t Slot, const std::string &Name) {
      if (SlotNames.size() <= Slot)
        SlotNames.resize(Slot + 1);
      if (SlotNames[Slot].empty())
        SlotNames[Slot] = Name;
    }
  };

  static constexpr SortId InvalidSort = UINT32_MAX;

  bool fail(const SExpr &At, const std::string &Message);
  bool failKind(const SExpr &At, ErrKind Kind, const std::string &Message);
  /// Propagates the EGraph's error (message and kind) as a frontend error
  /// located at \p At.
  bool failGraph(const SExpr &At);

  /// Dispatches one validated command form to its handler; called inside
  /// the per-command transaction by executeForm.
  bool dispatchCommand(const SExpr &Form);

  //===--- command handlers ----------------------------------------------===

  bool execSort(const SExpr &Form);
  bool execDatatype(const SExpr &Form);
  bool execFunction(const SExpr &Form);
  bool execRelation(const SExpr &Form);
  bool execRule(const SExpr &Form);
  bool execRewrite(const SExpr &Form, bool Bidirectional);
  bool execDefine(const SExpr &Form);
  bool execRun(const SExpr &Form);
  bool execRuleset(const SExpr &Form);
  bool execRunSchedule(const SExpr &Form);
  bool execSetOption(const SExpr &Form);
  bool execPush(const SExpr &Form);
  bool execPop(const SExpr &Form);
  bool execCheck(const SExpr &Form, bool ExpectFailure);
  bool execExtract(const SExpr &Form);
  bool execSave(const SExpr &Form);
  bool execLoad(const SExpr &Form);
  bool execCheckProgram(const SExpr &Form);
  bool execTopLevelAction(const SExpr &Form);

  /// Records that a run form selects \p Ruleset; \p Guarded is false only
  /// for a top-level (run ...) with neither a count nor :until.
  void recordRunTarget(RulesetId Ruleset, bool Guarded);
  /// Records every Run leaf of a schedule tree (always guarded: schedule
  /// leaves are bounded or saturate-wrapped).
  void recordScheduleTargets(const Schedule &S);
  /// Drops lint bookkeeping for rulesets a rollback or (pop) removed.
  void truncateLintState();

  /// Folds LastRun into Totals (called after every engine run).
  void accumulatePhaseTotals();

  bool makeRewriteRule(const SExpr &At, const SExpr &Lhs, const SExpr &Rhs,
                       const SExpr *WhenList, const std::string &Name,
                       RulesetId Ruleset);

  /// Resolves a :ruleset keyword value (or a bare ruleset name).
  bool parseRulesetName(const SExpr &Node, RulesetId &Out);

  /// Parses one schedule node of (run-schedule ...): a bare ruleset name,
  /// (run [ruleset] [n] [:until (facts...)]), (saturate s...), (seq s...),
  /// or (repeat n s...).
  bool parseSchedule(const SExpr &Node, Schedule &Out);

  /// Parses the operands of a (run ...) form into a Run leaf, shared by
  /// the top-level command and the schedule grammar (which differ only in
  /// the default iteration count, applied by the caller when \p HasCount
  /// comes back false).
  bool parseRunLeaf(const SExpr &Form, Schedule &Out, bool &HasCount);

  //===--- typechecking helpers ------------------------------------------===

  bool parseSortName(const SExpr &Node, SortId &Out);

  /// Flattens a query-side pattern, emitting atoms/prims into Ctx.
  bool flattenPattern(RuleCtx &Ctx, const SExpr &Pattern, SortId Expected,
                      Binding &Out);

  /// Flattens one query fact ((= a b), (!= a b), a call pattern, or a
  /// boolean primitive filter).
  bool flattenQueryFact(RuleCtx &Ctx, const SExpr &Fact);

  /// Typechecks an action-side expression into a TypedExpr.
  bool typecheckExpr(RuleCtx &Ctx, const SExpr &Expr, SortId Expected,
                     TypedExpr &Out);

  /// Typechecks one action form.
  bool typecheckAction(RuleCtx &Ctx, const SExpr &Form,
                       std::vector<Action> &Out);

  /// Typechecks a ground check fact.
  bool typecheckCheckFact(const SExpr &Fact, CheckFact &Out);

  /// Resolves (auto-registering generic overloads like != on demand).
  bool resolvePrim(const SExpr &At, const std::string &Name,
                   const std::vector<SortId> &ArgSorts, uint32_t &PrimId);

  /// Makes a literal for an integer token under an expected sort.
  Value literalFor(const SExpr &Node, SortId Expected);

  bool ensureRebuilt();
};

} // namespace egglog

#endif // EGGLOG_CORE_FRONTEND_H
