//===- core/ApplyStage.cpp - Parallel apply staging --------------------------===//
//
// Part of egglog-cpp. See ApplyStage.h for an overview and DESIGN.md for
// the determinism argument.
//
//===----------------------------------------------------------------------===//

#include "core/ApplyStage.h"

#include "core/EGraph.h"

#include <cassert>

using namespace egglog;

namespace {

bool isPlaceholder(const SortTable &Sorts, Value V) {
  return Sorts.kind(V.Sort) == SortKind::User &&
         (V.Bits & StagedPlaceholderBit) != 0;
}

/// Stage-safety of one primitive signature: mirrors the read-only match
/// classifier (Engine.cpp queryIsParallelSafe). Base-sort output means no
/// interner writes; no User/Set argument means no canonicalization (and no
/// placeholder can ever flow in, since placeholders are User-sorted).
bool primIsStageSafe(const EGraph &G, uint32_t PrimId) {
  const Primitive &Prim = G.primitives().get(PrimId);
  switch (G.sorts().kind(Prim.OutSort)) {
  case SortKind::Unit:
  case SortKind::Bool:
  case SortKind::I64:
  case SortKind::F64:
    break;
  default:
    return false;
  }
  for (SortId Arg : Prim.ArgSorts) {
    SortKind Kind = G.sorts().kind(Arg);
    if (Kind == SortKind::User || Kind == SortKind::Set)
      return false;
  }
  return true;
}

/// Stage-safety of one function-call target: the tail's fast path can only
/// reproduce get-or-default bitwise when a miss mints (fresh id or unit)
/// rather than evaluating a :default expression, and container-sort
/// columns would need the (mutating) set interner to canonicalize at stage
/// time.
bool funcIsStageSafe(const EGraph &G, FunctionId Func) {
  const FunctionInfo &Info = G.function(Func);
  if (Info.Decl.DefaultExpr)
    return false;
  SortKind OutKind = G.sorts().kind(Info.Decl.OutSort);
  if (OutKind != SortKind::User && OutKind != SortKind::Unit)
    return false;
  for (SortId Arg : Info.Decl.ArgSorts)
    if (G.sorts().kind(Arg) == SortKind::Set)
      return false;
  return true;
}

bool exprIsStageSafe(const EGraph &G, const TypedExpr &Expr) {
  switch (Expr.ExprKind) {
  case TypedExpr::Kind::Var:
  case TypedExpr::Kind::Lit:
    return true;
  case TypedExpr::Kind::PrimCall:
    if (!primIsStageSafe(G, Expr.Index))
      return false;
    break;
  case TypedExpr::Kind::FuncCall:
    if (!funcIsStageSafe(G, Expr.Index))
      return false;
    break;
  }
  for (const TypedExpr &Arg : Expr.Args)
    if (!exprIsStageSafe(G, Arg))
      return false;
  return true;
}

/// Per-chunk staging state: one frozen-database evaluator.
class Stager {
public:
  Stager(const EGraph &G, const Rule &R, StagedChunk &Out)
      : G(G), R(R), Out(Out) {}

  /// Stages one match (environment already loaded). Emits ops up to the
  /// first failing expression — the serial loop performs exactly the
  /// mutations preceding a failure before abandoning the match.
  void stageMatch() {
    for (const Action &Act : R.Actions) {
      switch (Act.ActKind) {
      case Action::Kind::Let: {
        Value Result;
        if (!evalFrozen(Act.Expr, Result))
          return;
        assert(Act.Var < Env.size() && "let target out of range");
        Env[Act.Var] = Result;
        break;
      }
      case Action::Kind::Set: {
        StagedOp Op;
        Op.OpKind = StagedOp::Kind::Set;
        Op.Func = Act.Func;
        Op.NumKeys = static_cast<uint16_t>(Act.Args.size());
        // Keys then out, raw (the tail takes the full setValue path, which
        // canonicalizes exactly as the serial loop would at this point).
        Scratch.clear();
        for (const TypedExpr &Arg : Act.Args) {
          Value V;
          if (!evalFrozen(Arg, V))
            return;
          Scratch.push_back(V);
        }
        Value Result;
        if (!evalFrozen(Act.Expr, Result))
          return;
        Op.ValsBegin = static_cast<uint32_t>(Out.Vals.size());
        Out.Vals.insert(Out.Vals.end(), Scratch.begin(), Scratch.end());
        Out.Vals.push_back(Result);
        Out.Ops.push_back(Op);
        break;
      }
      case Action::Kind::Union: {
        StagedOp Op;
        Op.OpKind = StagedOp::Kind::Union;
        if (!evalFrozen(Act.Expr, Op.A) || !evalFrozen(Act.Expr2, Op.B))
          return;
        Out.Ops.push_back(Op);
        break;
      }
      case Action::Kind::Eval: {
        Value Ignored;
        if (!evalFrozen(Act.Expr, Ignored))
          return;
        break;
      }
      case Action::Kind::Panic:
      case Action::Kind::Delete:
        assert(false && "unstageable action in a stage-safe rule");
        return;
      }
    }
  }

  std::vector<Value> Env;

private:
  /// Frozen-database expression evaluation. Emits a Create op per function
  /// call (the serial order of these ops is the serial order of the
  /// get-or-default calls); primitives run eagerly — their arguments are
  /// base values on deterministic dataflow, so the result at stage time is
  /// bitwise the result at serial-apply time.
  bool evalFrozen(const TypedExpr &Expr, Value &Val) {
    switch (Expr.ExprKind) {
    case TypedExpr::Kind::Var:
      assert(Expr.Index < Env.size() && "unbound variable slot");
      Val = Env[Expr.Index];
      return true;
    case TypedExpr::Kind::Lit:
      Val = Expr.Literal;
      return true;
    case TypedExpr::Kind::PrimCall: {
      size_t Base = EvalScratch.size();
      EvalScratch.resize(Base + Expr.Args.size());
      for (size_t I = 0; I < Expr.Args.size(); ++I) {
        Value V;
        if (!evalFrozen(Expr.Args[I], V)) {
          EvalScratch.resize(Base);
          return false;
        }
        EvalScratch[Base + I] = V;
      }
      // Safe from a read-only worker: the classifier guarantees this
      // primitive neither interns nor canonicalizes (same contract as the
      // read-only match phase's primitive evaluation in Query.cpp).
      bool Ok = G.primitives().get(Expr.Index).Apply(
          const_cast<EGraph &>(G), EvalScratch.data() + Base, Val);
      EvalScratch.resize(Base);
      return Ok;
    }
    case TypedExpr::Kind::FuncCall: {
      size_t Base = EvalScratch.size();
      EvalScratch.resize(Base + Expr.Args.size());
      for (size_t I = 0; I < Expr.Args.size(); ++I) {
        Value V;
        if (!evalFrozen(Expr.Args[I], V)) {
          EvalScratch.resize(Base);
          return false;
        }
        EvalScratch[Base + I] = V;
      }

      const FunctionInfo &Info = G.function(Expr.Index);
      const Table &T = *Info.Storage;
      unsigned NumKeys = Info.numKeys();
      assert(NumKeys == Expr.Args.size() && "arity mismatch");

      StagedOp Op;
      Op.OpKind = StagedOp::Kind::Create;
      Op.Func = Expr.Index;
      Op.NumKeys = static_cast<uint16_t>(NumKeys);
      Op.ValsBegin = static_cast<uint32_t>(Out.Vals.size());
      const Value *Keys = EvalScratch.data() + Base;
      bool HasPlaceholder = false;
      for (unsigned I = 0; I < NumKeys; ++I)
        if (isPlaceholder(G.sorts(), Keys[I]))
          HasPlaceholder = true;
      if (HasPlaceholder) {
        // Raw keys; the tail resolves and takes the full path.
        Op.PlaceholderKeys = true;
        Out.Vals.insert(Out.Vals.end(), Keys, Keys + NumKeys);
      } else {
        // Frozen-canonical keys + probe. findReadOnly never writes, so any
        // number of staging workers may share the union-find.
        for (unsigned I = 0; I < NumKeys; ++I) {
          Value K = Keys[I];
          if (G.sorts().kind(K.Sort) == SortKind::User)
            K = Value(K.Sort, G.unionFind().findReadOnly(K.Bits));
          Out.Vals.push_back(K);
        }
        int64_t Row = T.findRow(Out.Vals.data() + Op.ValsBegin);
        if (Row >= 0) {
          Op.Hit = true;
          Op.Row = static_cast<uint32_t>(Row);
        }
      }
      EvalScratch.resize(Base);

      // The result is always bound by the tail — even a frozen hit's row
      // can die before the tail reaches this op — except for Unit outputs,
      // whose value is known without consulting the database.
      if (G.sorts().kind(Info.Decl.OutSort) == SortKind::Unit) {
        Val = G.mkUnit();
      } else {
        Op.Result = Out.NumPlaceholders++;
        Val = Value(Info.Decl.OutSort, StagedPlaceholderBit | Op.Result);
      }
      Out.Ops.push_back(Op);
      return true;
    }
    }
    return false;
  }

  const EGraph &G;
  const Rule &R;
  StagedChunk &Out;
  std::vector<Value> Scratch;
  std::vector<Value> EvalScratch;
};

} // namespace

bool egglog::actionsAreStageSafe(const EGraph &G, const Rule &R) {
  for (const Action &Act : R.Actions) {
    switch (Act.ActKind) {
    case Action::Kind::Let:
    case Action::Kind::Eval:
      if (!exprIsStageSafe(G, Act.Expr))
        return false;
      break;
    case Action::Kind::Set: {
      for (const TypedExpr &Arg : Act.Args)
        if (!exprIsStageSafe(G, Arg))
          return false;
      if (!exprIsStageSafe(G, Act.Expr))
        return false;
      // Container-sort keys or outputs would need the set interner at
      // resolution time validation; route those rules to the classic loop.
      for (const TypedExpr &Arg : Act.Args)
        if (G.sorts().kind(Arg.Type) == SortKind::Set)
          return false;
      if (G.sorts().kind(Act.Expr.Type) == SortKind::Set)
        return false;
      break;
    }
    case Action::Kind::Union:
      if (!exprIsStageSafe(G, Act.Expr) || !exprIsStageSafe(G, Act.Expr2))
        return false;
      break;
    case Action::Kind::Panic:
    case Action::Kind::Delete:
      // Panic aborts the run (order-sensitive against every other chunk);
      // Delete kills rows, which would invalidate sibling workers' frozen
      // probes in ways the dirty-cursor cannot see.
      return false;
    }
  }
  return true;
}

bool egglog::stageChunkActions(const EGraph &G, const Rule &R,
                               const Value *Arena, size_t Count,
                               StagedChunk &Out,
                               const std::function<bool()> *Cancel) {
  Out.clear();
  Stager S(G, R, Out);
  size_t Stride = R.Body.NumVars;
  for (size_t M = 0; M < Count; ++M) {
    if (Cancel && (*Cancel)())
      return false;
    Out.Ops.push_back(StagedOp{}); // MatchBegin
    const Value *Match = Arena + M * Stride;
    S.Env.assign(Match, Match + Stride);
    S.Env.resize(R.NumSlots);
    S.stageMatch();
  }
  return true;
}

bool egglog::drainStagedChunk(EGraph &G, const StagedChunk &Chunk,
                              PhaseDirty &Dirty,
                              std::vector<Value> &Resolved,
                              std::vector<Value> &Scratch) {
  Resolved.resize(Chunk.NumPlaceholders);
  const SortTable &Sorts = G.sorts();
  auto Resolve = [&](Value V) {
    if (isPlaceholder(Sorts, V)) {
      assert((V.Bits & ~StagedPlaceholderBit) < Resolved.size());
      return Resolved[V.Bits & ~StagedPlaceholderBit];
    }
    return V;
  };

  bool SkipMatch = false;
  for (const StagedOp &Op : Chunk.Ops) {
    if (Op.OpKind == StagedOp::Kind::MatchBegin) {
      SkipMatch = false;
      // The classic loop checkpoints once per match before its actions.
      if (!G.governorCheckpoint("apply.match"))
        return false;
      continue;
    }
    if (SkipMatch)
      continue;

    switch (Op.OpKind) {
    case StagedOp::Kind::Create: {
      const Value *Keys = Chunk.Vals.data() + Op.ValsBegin;
      Dirty.absorb();
      bool Fast = !Op.PlaceholderKeys;
      if (Fast)
        for (unsigned I = 0; I < Op.NumKeys && Fast; ++I)
          if (Sorts.kind(Keys[I].Sort) == SortKind::User &&
              Dirty.dirty(Keys[I].Bits))
            Fast = false;

      Value Bound;
      if (Fast) {
        // The frozen-canonical keys are still canonical: no key lost a
        // unite since the freeze. The probe verdict, however, may be stale
        // against earlier tail mutations, so hits require the row to still
        // be live and misses re-probe.
        const FunctionInfo &Info = G.function(Op.Func);
        Table &T = *Info.Storage;
        if (Op.Hit && T.isLive(Op.Row)) {
          // Key cells are immutable and the functional index maps these
          // keys to exactly one live row, so this is the row the serial
          // lookup would return — and get-or-default returns the stored
          // output uncanonicalized.
          Bound = T.output(Op.Row);
        } else if (std::optional<Value> Existing = T.lookup(Keys)) {
          Bound = *Existing;
        } else {
          // Genuine miss at the serial position: mint here, in op order,
          // so fresh-id numbering is bit-identical to the serial loop.
          SortId OutSort = Info.Decl.OutSort;
          Bound = Sorts.isIdSort(OutSort) ? G.freshId(OutSort) : G.mkUnit();
          T.insert(Keys, Bound, G.timestamp());
        }
      } else {
        Scratch.clear();
        for (unsigned I = 0; I < Op.NumKeys; ++I)
          Scratch.push_back(Resolve(Keys[I]));
        // Full get-or-default with bitwise-serial arguments (resolved
        // placeholders are the very values the serial loop computed, and
        // canonicalizing a frozen-canonical key equals canonicalizing the
        // original). Cannot fail for a stage-safe function (no :default,
        // User/Unit output), but mirror the serial loop defensively.
        if (!G.getOrCreate(Op.Func, Scratch.data(), Bound)) {
          if (G.failed())
            return false;
          G.clearError();
          SkipMatch = true;
          continue;
        }
      }
      if (Op.Result != UINT32_MAX)
        Resolved[Op.Result] = Bound;
      break;
    }
    case StagedOp::Kind::Union:
      G.unionValues(Resolve(Op.A), Resolve(Op.B));
      break;
    case StagedOp::Kind::Set: {
      const Value *Vals = Chunk.Vals.data() + Op.ValsBegin;
      Scratch.clear();
      for (unsigned I = 0; I < Op.NumKeys + 1u; ++I)
        Scratch.push_back(Resolve(Vals[I]));
      if (!G.setValue(Op.Func, Scratch.data(), Scratch[Op.NumKeys])) {
        // Exactly the classic loop's failure handling: hard errors abort
        // the run; a soft failure (e.g. a primitive failing inside a merge
        // expression) abandons only this match.
        if (G.failed())
          return false;
        G.clearError();
        SkipMatch = true;
      }
      break;
    }
    case StagedOp::Kind::MatchBegin:
      break; // handled above
    }
  }
  return true;
}
