//===- core/EGraph.h - The egglog database ---------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The egglog database: a collection of functional tables over values, a
/// global union-find over uninterpreted ids, interning pools for strings,
/// rationals and sets, and the rebuilding procedure of §5.1 that restores
/// functional dependencies after unions by invoking merge expressions.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_EGRAPH_H
#define EGGLOG_CORE_EGRAPH_H

#include "core/Ast.h"
#include "core/Index.h"
#include "core/Primitives.h"
#include "core/Sorts.h"
#include "core/Table.h"
#include "core/UnionFind.h"
#include "support/Errors.h"
#include "support/Governor.h"
#include "support/Interner.h"
#include "support/Rational.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace egglog {

class ExtractIndex;
class ThreadPool;

/// Declaration payload for a new egglog function.
struct FunctionDecl {
  std::string Name;
  std::vector<SortId> ArgSorts;
  SortId OutSort = 0;
  /// Merge expression over two slots: 0 = old, 1 = new. If absent, the
  /// default merge applies (union for id sorts, no-op for Unit, conflict
  /// error otherwise).
  std::optional<TypedExpr> MergeExpr;
  /// Default expression evaluated by get-or-default when the key is absent.
  /// If absent, id sorts default to a fresh id ("make-set") and other sorts
  /// make the lookup fail (matching §3.3: "for base types the default
  /// :default is to crash").
  std::optional<TypedExpr> DefaultExpr;
  /// Extraction cost of one application of this function.
  int64_t Cost = 1;
  /// Source span of the declaring form (1-based; 0 = declared from C++) and
  /// the source-unit label active at declaration, for analysis diagnostics.
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Unit;
};

/// Runtime record for a declared function.
struct FunctionInfo {
  FunctionDecl Decl;
  std::unique_ptr<Table> Storage;
  /// True if some column is a container (Set) whose elements reach an id
  /// sort. Unions can stale such rows without any id appearing directly in
  /// an id column, so the incremental rebuild must sweep this table in full
  /// whenever the dirty worklist is non-empty.
  bool NeedsFullSweep = false;

  unsigned numKeys() const { return Decl.ArgSorts.size(); }
};

/// Hash functor for interned sets.
struct ValueVecHash {
  size_t operator()(const std::vector<Value> &Values) const {
    size_t Hash = 0x12345;
    for (const Value &V : Values)
      Hash = hashCombine(Hash, V.hash());
    return Hash;
  }
};

/// std::hash-style adapter so Rational can be interned.
struct RationalStdHash {
  size_t operator()(const Rational &R) const { return R.hash(); }
};

/// The egglog database. All mutation goes through set/union/get-or-default
/// so the rebuild invariant (everything canonical, functional dependencies
/// hold) can be restored by rebuild().
class EGraph {
public:
  EGraph();
  ~EGraph();

  SortTable &sorts() { return SortsTable; }
  const SortTable &sorts() const { return SortsTable; }
  UnionFind &unionFind() { return UF; }
  const UnionFind &unionFind() const { return UF; }
  PrimitiveRegistry &primitives() { return Prims; }
  const PrimitiveRegistry &primitives() const { return Prims; }
  StringInterner &strings() { return Strings; }
  const StringInterner &strings() const { return Strings; }
  const ValueInterner<Rational, RationalStdHash> &rationals() const {
    return Rationals;
  }
  const ValueInterner<std::vector<Value>, ValueVecHash> &sets() const {
    return Sets;
  }

  //===--------------------------------------------------------------------===
  // Sorts and functions
  //===--------------------------------------------------------------------===

  /// Declares a user sort.
  SortId declareSort(const std::string &Name);

  /// Declares a set sort over \p Element and registers its primitives.
  SortId declareSetSort(const std::string &Name, SortId Element);

  /// Declares a function; the name must be fresh.
  FunctionId declareFunction(FunctionDecl Decl);

  /// Finds a function by name.
  bool lookupFunctionName(const std::string &Name, FunctionId &Out) const;

  const FunctionInfo &function(FunctionId Id) const { return *Functions[Id]; }
  size_t numFunctions() const { return Functions.size(); }

  //===--------------------------------------------------------------------===
  // Value construction
  //===--------------------------------------------------------------------===

  Value mkUnit() const { return Value(SortTable::UnitSort, 0); }
  Value mkBool(bool B) const { return Value(SortTable::BoolSort, B ? 1 : 0); }
  Value mkI64(int64_t I) const {
    return Value(SortTable::I64Sort, static_cast<uint64_t>(I));
  }
  Value mkF64(double D) const;
  Value mkString(const std::string &S);
  Value mkRational(const Rational &R);
  /// Interns a set value (elements are canonicalized, sorted, deduped).
  Value mkSet(SortId SetSort, std::vector<Value> Elements);

  /// Interns a set element vector that is already sorted and deduped,
  /// without canonicalizing it, and returns the interned id. The snapshot
  /// loader stages element vectors under the snapshot's own (possibly
  /// stale) equivalence relation and must intern them verbatim so staged
  /// cell ids stay meaningful; everything else should use mkSet.
  uint32_t internSetElements(std::vector<Value> Elements);

  int64_t valueToI64(Value V) const { return static_cast<int64_t>(V.Bits); }
  double valueToF64(Value V) const;
  const std::string &valueToString(Value V) const;
  const Rational &valueToRational(Value V) const;
  const std::vector<Value> &valueToSet(Value V) const;

  /// Creates a fresh uninterpreted id of the given user sort.
  Value freshId(SortId Sort);

  //===--------------------------------------------------------------------===
  // Canonicalization
  //===--------------------------------------------------------------------===

  /// Canonicalizes a value under the current equivalence relation. For user
  /// sorts this is union-find lookup; for sets it recanonicalizes elements.
  Value canonicalize(Value V);

  /// Returns true if two values are equal modulo the equivalence relation.
  bool valueEqual(Value A, Value B) { return canonicalize(A) == canonicalize(B); }

  //===--------------------------------------------------------------------===
  // Database operations
  //===--------------------------------------------------------------------===

  /// Looks up f(args); canonicalizes arguments first.
  std::optional<Value> lookup(FunctionId Func, const Value *Args);

  /// "get-or-default" (§3.3): looks up f(args); if absent, evaluates the
  /// default (or makes a fresh id for id sorts), stores it, and returns it.
  /// Returns false if the function has no viable default.
  bool getOrCreate(FunctionId Func, const Value *Args, Value &Out);

  /// (set (f args) out): inserts or merges with the existing output via the
  /// function's merge semantics. Returns false on a merge conflict error.
  bool setValue(FunctionId Func, const Value *Args, Value Out);

  /// Unions two values of the same user sort; returns the canonical result.
  Value unionValues(Value A, Value B);

  /// Restores all invariants: canonical values everywhere, no functional
  /// dependency violations (§5.1). Incremental by default: drains the
  /// union-find's dirty worklist and rewrites only the rows reached through
  /// the tables' occurrence indexes, falling back to a per-table sweep when
  /// the affected set is a large fraction of the table (or when container
  /// columns hide ids from the occurrence index). Returns the number of
  /// worklist passes (0 when nothing was dirty).
  unsigned rebuild();

  /// rebuild() with the occurrence catch-up and the read-only gather of
  /// frozen canonical row images fanned out over \p Pool, one table per
  /// work item; the mutating fixpoint join stays a serial tail that
  /// validates each table's gather (version unchanged since the freeze)
  /// and falls back to the exact serial per-table path otherwise, so the
  /// result is bit-identical to rebuild() at any thread count. A pool of
  /// one thread (or a forced full rebuild) takes the serial code path
  /// outright. \p GatherSeconds, if given, accumulates the wall-clock of
  /// the parallel phases across passes.
  unsigned rebuildParallel(ThreadPool &Pool, double *GatherSeconds = nullptr);

  /// Forces rebuild() onto the legacy full-sweep algorithm (every live row
  /// of every table re-canonicalized per pass). Ablation and differential
  /// testing only; results are identical, only the cost differs.
  void setFullRebuild(bool Force) { ForceFullRebuild = Force; }
  bool fullRebuild() const { return ForceFullRebuild; }

  /// True if unions have happened since the last rebuild.
  bool needsRebuild() const { return UnionsDirty; }

  /// Phase-separated engine warm-up (DESIGN.md "Match/apply phase
  /// separation"): hoists lazy database-side mutations off the match
  /// phase's read path. Currently that is the per-table occurrence-index
  /// catch-up, so the rebuild that follows a match phase drains its
  /// worklist against an up-to-date index instead of paying the
  /// appended-suffix scan mid-rebuild. The per-query-shape index caches
  /// are warmed separately by QueryExecutor::warm.
  void warm();

  //===--------------------------------------------------------------------===
  // Expression and action evaluation
  //===--------------------------------------------------------------------===

  /// Evaluates a typed expression under the environment. If \p CreateTerms
  /// is true, function calls use get-or-default semantics (inserting new
  /// terms); otherwise missing entries make evaluation fail.
  bool evalExpr(const TypedExpr &Expr, const std::vector<Value> &Env,
                Value &Out, bool CreateTerms = true);

  /// Runs a list of actions under the environment (which must have
  /// capacity for all let-bound slots). Returns false on failure.
  bool runActions(const std::vector<Action> &Actions, std::vector<Value> &Env);

  /// Checks one ground fact (for the check command).
  bool checkFact(const CheckFact &Fact);

  //===--------------------------------------------------------------------===
  // Timestamps and statistics
  //===--------------------------------------------------------------------===

  uint32_t timestamp() const { return Timestamp; }
  void bumpTimestamp() { ++Timestamp; }

  /// Total live tuples across all functions (the paper's "e-node count"
  /// for Fig. 7 when restricted to constructor tables; we report all).
  size_t liveTupleCount() const;

  /// Live tuples in one function.
  size_t functionSize(FunctionId Func) const {
    return Functions[Func]->Storage->liveCount();
  }

  /// Order-independent hash of the live content of every table (function
  /// id, keys, output — timestamps excluded). Two databases with the same
  /// live rows hash equally no matter how they got there, so the engine
  /// can tell real progress from dead-row churn.
  uint64_t liveContentHash() const;

  /// Sums the index-cache counters of every table.
  IndexCache::Stats indexStats() const;

  //===--------------------------------------------------------------------===
  // Extraction index
  //===--------------------------------------------------------------------===

  /// The persistent extraction index (created lazily on first use). Costs
  /// and best rows are cached across extract calls and refreshed
  /// incrementally; see Extract.h.
  ExtractIndex &extractIndex();

  /// The extraction index if one was ever created, else null (stats
  /// probing without forcing an allocation).
  const ExtractIndex *extractIndexIfBuilt() const { return ExtractIdx.get(); }

  /// Drops every cached column index (bulk invalidation). rebuild() calls
  /// the lighter IndexCache::sweepStale() instead, preserving the All
  /// indexes for incremental refresh.
  void invalidateIndexes();

  //===--------------------------------------------------------------------===
  // Push/pop contexts
  //===--------------------------------------------------------------------===

  /// A frozen copy of the database for (push)/(pop): the union-find, one
  /// Table::Snapshot per function, and the declaration counts so sorts,
  /// functions, and primitives declared inside the context are dropped on
  /// restore. Interned strings/rationals/sets are append-only and are
  /// deliberately NOT rolled back (values interned inside an abandoned
  /// context become unreachable, which is harmless).
  struct Snapshot {
    UnionFind::Snapshot UF;
    std::vector<Table::Snapshot> Tables;
    size_t NumSorts = 0;
    size_t NumFunctions = 0;
    size_t NumPrims = 0;
    uint32_t Timestamp = 0;
    bool UnionsDirty = false;
  };

  /// Captures the current database state. Cheap to take: the union-find
  /// parent array plus one liveness bitmap per table; no row data is
  /// copied (tables are append-only).
  Snapshot snapshot() const;

  /// Restores the exact state captured by \p S: every union, insertion,
  /// update, deletion, and declaration made since is undone, and
  /// liveContentHash() returns exactly its pre-snapshot value.
  void restore(const Snapshot &S);

  //===--------------------------------------------------------------------===
  // Command transactions
  //===--------------------------------------------------------------------===

  /// A lightweight mark for per-command rollback. Where Snapshot copies the
  /// union-find parent array and a liveness bitmap per table (the right
  /// trade for long-lived (push) contexts), a TxnMark is O(#declarations):
  /// per-table row counts plus a union-find write journal opened for the
  /// duration. txnCommit is O(1); txnRollback pays only for what the failed
  /// command actually did.
  struct TxnMark {
    UnionFind::TxnMark UF;
    std::vector<Table::TxnMark> Tables;
    size_t NumSorts = 0;
    size_t NumFunctions = 0;
    size_t NumPrims = 0;
    uint32_t Timestamp = 0;
    bool UnionsDirty = false;
  };

  /// The snapshot loader's point of no return: wholesale-replaces every
  /// table's storage, the union-find relation, and the clock with fully
  /// staged, fully validated state. \p NewTables must have one entry per
  /// declared function. noexcept by construction (unique_ptr and vector
  /// moves only), so the loader can run it between its last fallible step
  /// and txnCommit with no failure window; the open transaction's
  /// union-find journal is poisoned (txnCommit never replays it). The
  /// extraction index is invalidated and any pending error cleared.
  void adoptContent(std::vector<std::unique_ptr<Table>> NewTables,
                    std::vector<uint64_t> UFParents,
                    std::vector<uint64_t> UFDirty, uint64_t UnionCount,
                    uint32_t NewTimestamp, bool NewUnionsDirty) noexcept;

  /// Opens a command transaction (no nesting). Until txnCommit or
  /// txnRollback, union-find parent writes are journaled.
  TxnMark txnBegin();
  /// Closes the transaction, keeping all mutations.
  void txnCommit();
  /// Undoes every mutation since \p M: appended rows, kills, unions,
  /// declarations, timestamp bumps. Also clears any pending error.
  void txnRollback(const TxnMark &M);

  //===--------------------------------------------------------------------===
  // Resource governance
  //===--------------------------------------------------------------------===

  ResourceGovernor &governor() { return Gov; }
  const ResourceGovernor &governor() const { return Gov; }

  /// Amortized checkpoint for serial inner loops (apply/rebuild/extract):
  /// decrements a budget and, every governor checkpoint interval, fires the
  /// named failpoint and runs a full resource poll. Returns false — after
  /// reporting a Limit/Cancelled error — when the command must stop.
  bool governorCheckpoint(const char *Site);

  /// Restarts the amortized countdown; called at each command boundary so
  /// a budget left over from the previous command (or a checkpoint-interval
  /// change between commands) cannot delay the next command's first poll.
  void resetCheckpointBudget() { CheckpointBudget = 0; }

  /// Immediate full poll (no amortization); reports the error on a trip.
  bool governorTripped();

  /// Approximate bytes held by tables + union-find (governor ceiling).
  size_t approxBytes() const;

  //===--------------------------------------------------------------------===
  // Error reporting
  //===--------------------------------------------------------------------===

  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMsg; }
  /// Taxonomy kind of the pending error (Runtime for legacy reportError
  /// callers; Limit/Cancelled when the governor tripped).
  ErrKind errorKind() const { return ErrKindValue; }
  void reportError(const std::string &Message) {
    reportError(ErrKind::Runtime, Message);
  }
  void reportError(ErrKind Kind, const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    ErrKindValue = Kind;
    ErrorMsg = Message;
  }
  void clearError() {
    Failed = false;
    ErrKindValue = ErrKind::None;
    ErrorMsg.clear();
  }

private:
  SortTable SortsTable;
  UnionFind UF;
  StringInterner Strings;
  ValueInterner<Rational, RationalStdHash> Rationals;
  ValueInterner<std::vector<Value>, ValueVecHash> Sets;
  PrimitiveRegistry Prims;
  std::vector<std::unique_ptr<FunctionInfo>> Functions;
  std::unordered_map<std::string, FunctionId> FunctionNames;
  uint32_t Timestamp = 0;
  bool UnionsDirty = false;
  bool ForceFullRebuild = false;
  bool Failed = false;
  ErrKind ErrKindValue = ErrKind::None;
  std::string ErrorMsg;
  ResourceGovernor Gov;
  /// Countdown to the next full governor poll (see governorCheckpoint).
  uint32_t CheckpointBudget = 0;
  /// True while a command transaction is open (no nesting).
  bool InTxn = false;
  /// Persistent extraction state (lazily created; incomplete type here, so
  /// the destructor is out of line). Invalidated by restore() and by the
  /// mutations that can raise class costs (term deletion, merge-expression
  /// output replacement).
  std::unique_ptr<ExtractIndex> ExtractIdx;

  /// Reusable scratch stacks for the evaluation hot path (every action and
  /// merge expression, including the rebuild loop): evaluated argument
  /// tuples and canonicalized key tuples are pushed as stack frames here
  /// instead of allocating a fresh std::vector per call. Two separate
  /// stacks because a key frame is pushed while an argument frame is live
  /// (and vice versa); a single stack would alias the source pointer during
  /// the push. Frames nest with recursion and always pop on return.
  std::vector<Value> EvalScratch;
  std::vector<Value> KeyScratch;
  /// Two-slot {old, new} environment for merge expressions. setValue is
  /// never reentrant (merge expressions evaluate through getOrCreate, which
  /// inserts directly), so one buffer suffices.
  std::vector<Value> MergeEnv;

  /// Canonicalizes a row in place; returns true if anything changed.
  bool canonicalizeRow(Value *Row, unsigned Width);

  /// The two rebuild strategies behind rebuild().
  unsigned rebuildIncremental();
  unsigned rebuildFullSweep();

  /// The parallel variant behind rebuildParallel().
  unsigned rebuildIncrementalParallel(ThreadPool &Pool,
                                      double *GatherSeconds);

  /// One table's share of an incremental rebuild pass: the sweep
  /// heuristic, the per-id occurrence drain (or full sweep), and the row
  /// rewrites. Shared by the serial pass loop and the parallel tail's
  /// fallback. Returns false when the pass must stop (governor checkpoint
  /// refused or merge failure); \p TableRewritten is set if any row of
  /// this table was rewritten either way.
  bool rebuildTableIncremental(FunctionId Func,
                               const std::vector<uint64_t> &Dirty,
                               std::vector<uint32_t> &Rows,
                               std::vector<Value> &Buffer,
                               bool &TableRewritten);

  /// Re-canonicalizes one live row (erase + reinsert through the merge
  /// semantics). Sets \p Rewritten if the row was stale; returns false on a
  /// merge conflict error.
  bool rewriteRow(FunctionId Func, size_t Row, std::vector<Value> &Buffer,
                  bool &Rewritten);

  /// Drops the stamp-partition index entries of exactly the tables whose
  /// rows were rewritten (proportional invalidation; untouched tables keep
  /// their entries and re-validate lazily against version()).
  void sweepRewrittenIndexes(const std::vector<bool> &Rewritten);

  void registerSetPrimitives(SortId SetSort);
};

} // namespace egglog

#endif // EGGLOG_CORE_EGRAPH_H
