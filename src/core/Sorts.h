//===- core/Sorts.h - Sort (type) table ------------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sort system of egglog (§3.3). Base sorts hold interpreted constants;
/// user sorts hold uninterpreted ids that can be unified; container sorts
/// (Set) hold interned collections whose elements may themselves need
/// canonicalization.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_SORTS_H
#define EGGLOG_CORE_SORTS_H

#include "core/Value.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {

/// What family a sort belongs to; drives canonicalization and merge
/// defaults.
enum class SortKind : uint8_t {
  Unit,     ///< The unit sort; relations are functions to Unit.
  Bool,     ///< Builtin booleans.
  I64,      ///< Builtin 64-bit integers.
  F64,      ///< Builtin doubles (used by mini-Herbie constant folding).
  String,   ///< Builtin interned strings.
  Rational, ///< Builtin exact rationals.
  User,     ///< A user-declared uninterpreted sort (ids, unifiable).
  Set,      ///< A set container over some element sort.
};

/// Metadata for one declared sort.
struct SortInfo {
  std::string Name;
  SortKind Kind;
  /// For container sorts, the element sort; unused otherwise.
  SortId Element = 0;
};

/// Registry of sorts. The base sorts are pre-declared with fixed ids so
/// Value tags can be tested cheaply.
class SortTable {
public:
  static constexpr SortId UnitSort = 0;
  static constexpr SortId BoolSort = 1;
  static constexpr SortId I64Sort = 2;
  static constexpr SortId F64Sort = 3;
  static constexpr SortId StringSort = 4;
  static constexpr SortId RationalSort = 5;
  static constexpr SortId FirstDynamicSort = 6;

  SortTable() {
    addSort("Unit", SortKind::Unit);
    addSort("bool", SortKind::Bool);
    addSort("i64", SortKind::I64);
    addSort("f64", SortKind::F64);
    addSort("String", SortKind::String);
    addSort("Rational", SortKind::Rational);
  }

  /// Declares a new user sort; returns its id, or an existing id if the
  /// name is already taken (caller should have checked).
  SortId declareUserSort(const std::string &Name) {
    return addSort(Name, SortKind::User);
  }

  /// Declares (or reuses) a set sort over \p Element under the given name.
  SortId declareSetSort(const std::string &Name, SortId Element) {
    SortId Id = addSort(Name, SortKind::Set);
    Infos[Id].Element = Element;
    return Id;
  }

  /// Looks up a sort by name; returns false if unknown.
  bool lookup(const std::string &Name, SortId &Out) const {
    auto It = ByName.find(Name);
    if (It == ByName.end())
      return false;
    Out = It->second;
    return true;
  }

  const SortInfo &info(SortId Id) const {
    assert(Id < Infos.size() && "unknown sort");
    return Infos[Id];
  }

  SortKind kind(SortId Id) const { return info(Id).Kind; }
  const std::string &name(SortId Id) const { return info(Id).Name; }

  /// True for sorts whose values are uninterpreted ids (unifiable).
  bool isIdSort(SortId Id) const { return kind(Id) == SortKind::User; }

  /// True for container sorts whose payload needs deep canonicalization.
  bool isContainerSort(SortId Id) const { return kind(Id) == SortKind::Set; }

  size_t size() const { return Infos.size(); }

  /// Drops every sort with id >= \p Count (pop of a push/pop context; sorts
  /// are declared append-only so a prefix is always a valid table).
  void truncate(size_t Count) {
    assert(Count >= FirstDynamicSort && "cannot drop the base sorts");
    for (size_t Id = Count; Id < Infos.size(); ++Id)
      ByName.erase(Infos[Id].Name);
    Infos.resize(Count);
  }

private:
  std::vector<SortInfo> Infos;
  std::unordered_map<std::string, SortId> ByName;

  SortId addSort(const std::string &Name, SortKind Kind) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    SortId Id = static_cast<SortId>(Infos.size());
    Infos.push_back(SortInfo{Name, Kind, 0});
    ByName.emplace(Name, Id);
    return Id;
  }
};

} // namespace egglog

#endif // EGGLOG_CORE_SORTS_H
