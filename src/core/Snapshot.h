//===- core/Snapshot.h - Versioned on-disk database snapshots --*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe binary persistence of the full database: tables (live rows
/// and declarations), union-find, interners, sort and primitive
/// registries. The format is versioned and checksummed section by section
/// (CRC-32C per section plus a trailing whole-file checksum); the writer
/// is crash-safe by construction (tmp file + fsync + atomic rename), and
/// the loader treats the file as untrusted input: every length, id, sort
/// tag, and cross-reference is validated against already-loaded sections
/// before anything touches the live EGraph. See DESIGN.md "Snapshot
/// format and crash safety" for the layout and validation rules.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_SNAPSHOT_H
#define EGGLOG_CORE_SNAPSHOT_H

#include "support/Errors.h"

#include <string>

namespace egglog {

class EGraph;

/// Writes a snapshot of \p G to \p Path, atomically: the bytes stream to
/// `Path + ".tmp"`, are fsynced, and replace \p Path by rename only once
/// complete, so a crash (or injected fault — failpoint `snapshot.write`)
/// at any point leaves the previous snapshot intact. Returns false with
/// \p Err (kind `io`) on failure; the tmp file is unlinked on every exit
/// path but the successful rename.
bool saveSnapshot(const EGraph &G, const std::string &Path, EggError &Err);

/// Loads the snapshot at \p Path into \p G, wholesale-replacing its
/// content (tables, union-find, clock) and appending any declarations the
/// snapshot has beyond \p G's. Requires \p G's current declarations to be
/// a prefix of the snapshot's (same sorts and function signatures in the
/// same order) so ids map identically — anything else is a declaration
/// mismatch error. All parsing and validation stages into fresh
/// structures; \p G is mutated only after the entire file has validated,
/// and the final content swap is noexcept, so on any failure — truncation,
/// bit flip, version skew, mismatched declarations — the function returns
/// false with \p Err (kind `io`) and \p G is untouched (the caller's
/// command transaction rolls back the declaration appends of a
/// late-failing load). Must not be called with push/pop contexts open:
/// their saved snapshots describe the pre-load tables.
bool loadSnapshot(EGraph &G, const std::string &Path, EggError &Err);

} // namespace egglog

#endif // EGGLOG_CORE_SNAPSHOT_H
