//===- core/Engine.h - Fixpoint rule engine --------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixpoint evaluation loop of §4.2/§4.3: each iteration applies the
/// (semi-naïve) immediate consequence operator — search all rules, then run
/// their actions — followed by rebuilding to a fixpoint. Includes the
/// BackOff rule scheduler used by the Fig. 7 micro-benchmark (mirroring
/// egg's default scheduler: rules that over-match are banned for
/// exponentially growing spans).
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_ENGINE_H
#define EGGLOG_CORE_ENGINE_H

#include "core/Ast.h"
#include "core/EGraph.h"
#include "core/Query.h"

#include <memory>
#include <string>
#include <vector>

namespace egglog {

/// Knobs for one run of the engine.
struct RunOptions {
  /// Maximum number of iterations.
  unsigned Iterations = 1;
  /// Use semi-naïve delta evaluation (§4.3); turning this off gives the
  /// egglogNI baseline of the paper's benchmarks.
  bool SemiNaive = true;
  /// Use worst-case-optimal generic join (off = nested loop, for ablation).
  bool GenericJoin = true;
  /// Enable the BackOff scheduler (egg-compatible defaults below).
  bool UseBackoff = false;
  uint64_t BackoffMatchLimit = 1000;
  uint64_t BackoffBanLength = 5;
  /// Stop when total live tuples exceed this bound (0 = unlimited).
  size_t NodeLimit = 0;
  /// Stop after this many seconds (0 = unlimited).
  double TimeoutSeconds = 0;
};

/// Statistics for one engine iteration.
struct IterationStats {
  size_t Matches = 0;
  size_t TuplesAfter = 0;
  size_t UnionsAfter = 0;
  double SearchSeconds = 0;
  double ApplySeconds = 0;
  double RebuildSeconds = 0;
};

/// Result of a run.
struct RunReport {
  std::vector<IterationStats> Iterations;
  bool Saturated = false;
  bool HitNodeLimit = false;
  bool TimedOut = false;
  double TotalSeconds = 0;

  size_t totalMatches() const {
    size_t Total = 0;
    for (const IterationStats &Stats : Iterations)
      Total += Stats.Matches;
    return Total;
  }
};

/// Owns a rule set and drives iterations against an EGraph. Scheduler and
/// semi-naïve bookkeeping persist across run() calls so incremental
/// programs ((run 5) ... (run 5)) behave like one longer run.
class Engine {
public:
  explicit Engine(EGraph &Graph) : Graph(Graph) {}

  /// Adds a rule; returns its index.
  size_t addRule(Rule R);

  size_t numRules() const { return Rules.size(); }
  const Rule &rule(size_t Index) const { return Rules[Index]; }

  /// Runs up to Options.Iterations iterations; stops early on saturation,
  /// node limit, or timeout.
  RunReport run(const RunOptions &Options);

  EGraph &graph() { return Graph; }

private:
  /// Per-rule scheduler and semi-naïve state.
  struct RuleState {
    /// Rows stamped at or after this are this rule's pending delta.
    uint32_t DeltaStart = 0;
    /// BackOff: iteration (global counter) until which the rule is banned.
    uint64_t BannedUntil = 0;
    unsigned TimesBanned = 0;
  };

  EGraph &Graph;
  std::vector<Rule> Rules;
  std::vector<RuleState> States;
  /// One persistent execution context per rule, so join scratch and atom
  /// shapes survive across delta variants and iterations. Rebuilt by run()
  /// whenever rules were added (Rules may have reallocated).
  std::vector<std::unique_ptr<QueryExecutor>> Executors;
  /// Global iteration counter across run() calls (drives ban spans).
  uint64_t GlobalIteration = 0;
  /// Live-content hash at the last candidate saturation point (see
  /// Engine.cpp); computed lazily, only when live counts stall. The
  /// mutation stamp records which database state it was taken of, so
  /// changes made outside the engine between run() calls invalidate it.
  uint64_t LastContentHash = 0;
  uint64_t LastMutationStamp = 0;
  bool HasContentHash = false;

  uint64_t mutationStamp() const;
};

} // namespace egglog

#endif // EGGLOG_CORE_ENGINE_H
