//===- core/Engine.h - Fixpoint rule engine --------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixpoint evaluation loop of §4.2/§4.3: each iteration applies the
/// (semi-naïve) immediate consequence operator — search all rules, then run
/// their actions — followed by rebuilding to a fixpoint. Includes the
/// BackOff rule scheduler used by the Fig. 7 micro-benchmark (mirroring
/// egg's default scheduler: rules that over-match are banned for
/// exponentially growing spans).
///
/// Rules are grouped into named *rulesets* (ruleset 0 is the default), a
/// run() selects one ruleset, and runSchedule() interprets a Schedule tree
/// (saturate / seq / repeat / run-with-until) over them. Per-rule
/// semi-naïve delta bounds and BackOff bans live on the rule, not the run,
/// so phased schedules interleave rulesets without re-deriving or dropping
/// work.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_ENGINE_H
#define EGGLOG_CORE_ENGINE_H

#include "core/Ast.h"
#include "core/EGraph.h"
#include "core/Query.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {

class ThreadPool;
class Timer;

/// Knobs for one run of the engine.
struct RunOptions {
  /// Maximum number of iterations.
  unsigned Iterations = 1;
  /// The ruleset to run. Rules declared without a ruleset live in the
  /// default ruleset 0, so existing single-ruleset programs are unaffected.
  RulesetId Ruleset = 0;
  /// Use semi-naïve delta evaluation (§4.3); turning this off gives the
  /// egglogNI baseline of the paper's benchmarks.
  bool SemiNaive = true;
  /// Use worst-case-optimal generic join (off = nested loop, for ablation).
  bool GenericJoin = true;
  /// Enable the BackOff scheduler (egg-compatible defaults below).
  bool UseBackoff = false;
  uint64_t BackoffMatchLimit = 1000;
  uint64_t BackoffBanLength = 5;
  /// Stop when total live tuples exceed this bound (0 = unlimited).
  size_t NodeLimit = 0;
  /// Stop after this many seconds (0 = unlimited). For runSchedule this is
  /// a budget for the whole schedule, not per leaf.
  double TimeoutSeconds = 0;
};

/// Statistics for one engine iteration.
struct IterationStats {
  size_t Matches = 0;
  size_t TuplesAfter = 0;
  size_t UnionsAfter = 0;
  /// Whole match phase. In the phase-separated parallel mode this covers
  /// warm-up plus the fanned-out matching (so the figure stays comparable
  /// with the single-threaded loop, where the same cache refreshes happen
  /// inline); WarmSeconds below breaks out the warm-up share.
  double SearchSeconds = 0;
  /// Whole apply phase (staging plus the serial mutation tail in parallel
  /// mode; the classic loop when single-threaded).
  double ApplySeconds = 0;
  /// Parallel mode only: the read-only staging share of ApplySeconds
  /// (fanned-out action walking, primitive evaluation, and frozen table
  /// probes). Always 0 single-threaded.
  double ApplyStageSeconds = 0;
  double RebuildSeconds = 0;
  /// Parallel mode only: the read-only share of RebuildSeconds (per-table
  /// occurrence catch-up plus the frozen canonical-image gather). Always 0
  /// single-threaded.
  double RebuildGatherSeconds = 0;
  /// Warm-up pre-pass of the phase-separated pipeline (index cache
  /// refresh, occurrence catch-up, constant canonicalization); always 0
  /// in single-threaded mode, where that work is folded into the search.
  double WarmSeconds = 0;
  /// Worklist passes the rebuild took (0 = nothing was dirty).
  unsigned RebuildPasses = 0;
};

/// Result of a run.
struct RunReport {
  std::vector<IterationStats> Iterations;
  bool Saturated = false;
  bool HitNodeLimit = false;
  bool TimedOut = false;
  double TotalSeconds = 0;

  size_t totalMatches() const {
    size_t Total = 0;
    for (const IterationStats &Stats : Iterations)
      Total += Stats.Matches;
    return Total;
  }
};

/// Owns a rule set and drives iterations against an EGraph. Scheduler and
/// semi-naïve bookkeeping persist across run() calls so incremental
/// programs ((run 5) ... (run 5)) behave like one longer run.
class Engine {
public:
  // Out of line (with the destructor) so the ThreadPool member can stay a
  // forward declaration here.
  explicit Engine(EGraph &Graph);
  ~Engine();

  /// Sets the match-phase concurrency. 1 (the default) keeps the classic
  /// serial search loop; N > 1 phase-separates every iteration into
  /// warm-up / parallel match / serial apply (see DESIGN.md "Match/apply
  /// phase separation") with N workers including the calling thread. The
  /// resulting database is bit-identical for every N — matches are
  /// buffered per (rule, delta-variant) and applied in declaration order.
  void setThreads(unsigned N);
  unsigned threads() const { return NumThreads; }

  /// Adds a rule (its Ruleset field selects the ruleset); returns its
  /// index.
  size_t addRule(Rule R);

  size_t numRules() const { return Rules.size(); }
  const Rule &rule(size_t Index) const { return Rules[Index]; }

  /// Declares a named ruleset; the name must be fresh and non-empty.
  RulesetId declareRuleset(const std::string &Name);

  /// Finds a ruleset by name (the empty name is the default ruleset).
  bool lookupRuleset(const std::string &Name, RulesetId &Out) const;

  size_t numRulesets() const { return RulesetNames.size(); }
  const std::string &rulesetName(RulesetId Id) const {
    return RulesetNames[Id];
  }

  /// Runs up to Options.Iterations iterations of Options.Ruleset; stops
  /// early on saturation, node limit, or timeout.
  RunReport run(const RunOptions &Options);

  /// Interprets a Schedule tree: leaves call run(), (saturate ...) loops
  /// its children until a whole pass leaves the database unchanged (with
  /// no BackOff bans pending), (repeat n ...) runs its children n times,
  /// and a leaf's :until facts stop that leaf early. Options.Ruleset is
  /// ignored (each leaf names its own); the other knobs apply to every
  /// leaf, with TimeoutSeconds budgeting the whole schedule.
  RunReport runSchedule(const Schedule &S, const RunOptions &Options);

  EGraph &graph() { return Graph; }

  /// Per-rule scheduler and semi-naïve state (public only so Snapshot can
  /// carry it).
  struct RuleState {
    /// Rows stamped at or after this are this rule's pending delta.
    uint32_t DeltaStart = 0;
    /// BackOff: iteration (global counter) until which the rule is banned.
    uint64_t BannedUntil = 0;
    unsigned TimesBanned = 0;
  };

  /// A frozen copy of the engine-side state for push/pop contexts: rules
  /// and rulesets declared since the snapshot are dropped on restore, and
  /// per-rule semi-naïve/BackOff state rolls back with the database.
  struct Snapshot {
    size_t NumRules = 0;
    size_t NumRulesets = 0;
    std::vector<RuleState> States;
    uint64_t GlobalIteration = 0;
    uint64_t LastContentHash = 0;
    uint64_t LastMutationStamp = 0;
    bool HasContentHash = false;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot &S);

  /// Drops the memoized saturation-state hashes after the database content
  /// was replaced out from under the engine (snapshot load). The caches
  /// are keyed by mutationStamp(), a monotone counter sum that a wholesale
  /// content swap can replay onto different content, so the stamp check
  /// alone cannot be trusted across one.
  void noteExternalMutation() {
    HasContentHash = false;
    CachedSigValid = false;
  }

private:
  EGraph &Graph;
  std::vector<Rule> Rules;
  std::vector<RuleState> States;
  std::vector<std::string> RulesetNames;
  std::unordered_map<std::string, RulesetId> RulesetIds;
  /// One persistent execution context per rule, so join scratch and atom
  /// shapes survive across delta variants and iterations. Rebuilt by run()
  /// whenever rules were added (Rules may have reallocated).
  std::vector<std::unique_ptr<QueryExecutor>> Executors;

  /// Match-phase concurrency (see setThreads).
  unsigned NumThreads = 1;
  /// Worker pool for the parallel match phase; created lazily by the
  /// first parallel run and kept across runs (threads park between
  /// phases).
  std::unique_ptr<ThreadPool> Pool;
  /// Parallel mode only: one execution context per (rule, delta variant),
  /// since a rule's variants run concurrently and each needs its own join
  /// scratch. Slot 0 doubles as the full (non-incremental) context.
  /// Invalidated together with Executors.
  std::vector<std::vector<std::unique_ptr<QueryExecutor>>> VariantExecutors;
  /// Per rule: true if every primitive in its query is safe on the
  /// read-only parallel path (cannot intern values or canonicalize);
  /// unsafe rules are matched serially before the fan-out.
  std::vector<char> RuleParallelSafe;
  /// Per rule: true if its actions can be staged read-only for the
  /// parallel apply phase (see core/ApplyStage.h); unsafe rules apply
  /// through the classic serial loop at their chunk's position.
  std::vector<char> RuleStageSafe;

  /// (Re)creates VariantExecutors/RuleParallelSafe for the current rules.
  void ensureVariantExecutors();
  /// Global iteration counter across run() calls (drives ban spans).
  uint64_t GlobalIteration = 0;
  /// Live-content hash at the last candidate saturation point (see
  /// Engine.cpp); computed lazily, only when live counts stall. The
  /// mutation stamp records which database state it was taken of, so
  /// changes made outside the engine between run() calls invalidate it.
  uint64_t LastContentHash = 0;
  uint64_t LastMutationStamp = 0;
  bool HasContentHash = false;

  uint64_t mutationStamp() const;

  /// True if some rule of \p Ruleset is still banned by BackOff (pending
  /// work exists even though the last pass changed nothing).
  bool anyBanPending(RulesetId Ruleset) const;

  /// Schedule-only BackOff fast-forward: when a leaf run changed nothing
  /// because every matching rule of \p Ruleset is banned, advance the
  /// global iteration clock to the earliest ban expiry instead of spinning
  /// empty passes to tick it down one by one. Unreachable from plain run()
  /// so single-ruleset benchmark trajectories are untouched.
  void fastForwardBans(RulesetId Ruleset);

  /// Live-content hash at mutation stamp \p Stamp, memoized so the
  /// schedule interpreter hashes each database state at most once (a
  /// leaf's before-hash is usually the previous leaf's after-hash).
  /// Sound because versions and unions are monotone, so equal stamps
  /// imply identical content — except across restore(), which resets the
  /// union counter and therefore invalidates the cache explicitly.
  uint64_t contentHashAt(uint64_t Stamp);
  uint64_t CachedSigHash = 0;
  uint64_t CachedSigStamp = 0;
  bool CachedSigValid = false;

  /// Recursive schedule interpreter; returns true if the node updated the
  /// database (or left BackOff bans pending). Sets \p Stop on timeout,
  /// node limit, or database failure.
  bool runScheduleNode(const Schedule &S, const RunOptions &Base,
                       RunReport &Total, Timer &Clock, bool &Stop);
};

} // namespace egglog

#endif // EGGLOG_CORE_ENGINE_H
