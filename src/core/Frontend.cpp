//===- core/Frontend.cpp - egglog language frontend ---------------------------===//
//
// Part of egglog-cpp. See Frontend.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Frontend.h"

#include "core/Extract.h"
#include "core/Query.h"
#include "core/Snapshot.h"
#include "support/FailPoints.h"

#include <cassert>
#include <new>

using namespace egglog;

namespace {

bool isKeyword(const SExpr &Node) {
  return Node.isSymbol() && !Node.Text.empty() && Node.Text[0] == ':';
}

/// Scans trailing `:keyword value` pairs starting at \p From. Returns false
/// on a malformed tail.
bool scanKeywords(const SExpr &Form, size_t From,
                  std::unordered_map<std::string, const SExpr *> &Out) {
  for (size_t I = From; I < Form.size();) {
    if (!isKeyword(Form[I]) || I + 1 >= Form.size())
      return false;
    Out[Form[I].Text] = &Form[I + 1];
    I += 2;
  }
  return true;
}

} // namespace

bool Frontend::failKind(const SExpr &At, ErrKind Kind,
                        const std::string &Message) {
  if (!ErrorMsg.empty())
    return false;
  ErrorMsg = "line " + std::to_string(At.Line) + ": " + Message;
  LastError = EggError{Kind, Message, At.Line, At.Col};
  return false;
}

bool Frontend::fail(const SExpr &At, const std::string &Message) {
  // Most bare fail() sites are static errors (malformed forms, unknown
  // names, sort mismatches); Type renders as a plain "error" and exits 1.
  return failKind(At, ErrKind::Type, Message);
}

bool Frontend::failGraph(const SExpr &At) {
  ErrKind Kind = Graph.errorKind();
  return failKind(At, Kind == ErrKind::None ? ErrKind::Runtime : Kind,
                  Graph.errorMessage());
}

bool Frontend::execute(std::string_view Source) {
  ParseResult Parsed = parseSExprs(Source);
  if (!Parsed.Ok) {
    ErrorMsg = "line " + std::to_string(Parsed.ErrorLine) +
               ": parse error: " + Parsed.Error;
    LastError = EggError{ErrKind::Parse, Parsed.Error, Parsed.ErrorLine,
                         Parsed.ErrorCol};
    return false;
  }
  for (const SExpr &Form : Parsed.Forms)
    if (!executeForm(Form))
      return false;
  return true;
}

bool Frontend::executeForm(const SExpr &Form) {
  ErrorMsg.clear();
  LastError = EggError{};
  if (!Form.isList() || Form.size() == 0 || !Form[0].isSymbol())
    return fail(Form, "expected a command form");
  const std::string &Head = Form[0].Text;
  CurrentForm = &Form;

  // (push)/(pop) are barrier commands: popContext wholesale-replaces the
  // structures the transaction journals cover (poisoning them), and both
  // validate their arguments before touching anything, so they run outside
  // the per-command transaction.
  if (Head == "push" || Head == "pop") {
    bool Ok = Head == "push" ? execPush(Form) : execPop(Form);
    CurrentForm = nullptr;
    return Ok;
  }

  Graph.governor().arm();
  Graph.resetCheckpointBudget();
  EGraph::TxnMark Mark = Graph.txnBegin();
  Engine::Snapshot EngineMark = Eng.snapshot();
  size_t OutputsMark = Outputs.size();
  bool Ok = false;
  try {
    EGGLOG_FAILPOINT("frontend.command");
    Ok = dispatchCommand(Form);
  } catch (const InjectedFault &F) {
    failKind(Form, ErrKind::Runtime,
             std::string("injected fault at '") + F.site() + "'");
  } catch (const std::bad_alloc &) {
    failKind(Form, ErrKind::Limit, "out of memory");
  }
  CurrentForm = nullptr;
  if (Ok) {
    Graph.txnCommit();
    return true;
  }
  Graph.txnRollback(Mark);
  Eng.restore(EngineMark);
  Outputs.resize(OutputsMark);
  // The rollback may have removed rulesets the lint bookkeeping indexed.
  truncateLintState();
  return false;
}

bool Frontend::dispatchCommand(const SExpr &Form) {
  const std::string &Head = Form[0].Text;
  if (Head == "sort")
    return execSort(Form);
  if (Head == "datatype")
    return execDatatype(Form);
  if (Head == "function")
    return execFunction(Form);
  if (Head == "relation")
    return execRelation(Form);
  if (Head == "rule")
    return execRule(Form);
  if (Head == "rewrite")
    return execRewrite(Form, /*Bidirectional=*/false);
  if (Head == "birewrite")
    return execRewrite(Form, /*Bidirectional=*/true);
  if (Head == "define" || Head == "let")
    return execDefine(Form);
  if (Head == "ruleset")
    return execRuleset(Form);
  if (Head == "run")
    return execRun(Form);
  if (Head == "run-schedule")
    return execRunSchedule(Form);
  if (Head == "set-option")
    return execSetOption(Form);
  if (Head == "check")
    return execCheck(Form, /*ExpectFailure=*/false);
  if (Head == "check-fail")
    return execCheck(Form, /*ExpectFailure=*/true);
  if (Head == "extract")
    return execExtract(Form);
  if (Head == "save")
    return execSave(Form);
  if (Head == "load")
    return execLoad(Form);
  if (Head == "check-program")
    return execCheckProgram(Form);
  if (Head == "print-size") {
    if (Form.size() != 2 || !Form[1].isSymbol())
      return fail(Form, "usage: (print-size function)");
    FunctionId Func;
    if (!Graph.lookupFunctionName(Form[1].Text, Func))
      return fail(Form[1], "unknown function '" + Form[1].Text + "'");
    // Analysis mode validates the lookup but skips the output: sizes from
    // a non-executing walk would be misleading.
    if (AnalysisMode)
      return true;
    Outputs.push_back(Form[1].Text + ": " +
                      std::to_string(Graph.functionSize(Func)));
    return true;
  }
  return execTopLevelAction(Form);
}

//===----------------------------------------------------------------------===
// Declarations
//===----------------------------------------------------------------------===

bool Frontend::parseSortName(const SExpr &Node, SortId &Out) {
  if (!Node.isSymbol())
    return fail(Node, "expected a sort name");
  if (!Graph.sorts().lookup(Node.Text, Out))
    return fail(Node, "unknown sort '" + Node.Text + "'");
  return true;
}

bool Frontend::execSort(const SExpr &Form) {
  if (Form.size() < 2 || !Form[1].isSymbol())
    return fail(Form, "usage: (sort Name) or (sort Name (Set Elem))");
  SortId Existing;
  if (Graph.sorts().lookup(Form[1].Text, Existing))
    return fail(Form, "sort '" + Form[1].Text + "' already declared");
  if (Form.size() == 2) {
    Graph.declareSort(Form[1].Text);
    return true;
  }
  const SExpr &Ctor = Form[2];
  if (Form.size() == 3 && Ctor.isCall("Set") && Ctor.size() == 2) {
    SortId Element;
    if (!parseSortName(Ctor[1], Element))
      return false;
    Graph.declareSetSort(Form[1].Text, Element);
    return true;
  }
  return fail(Form, "unsupported sort constructor");
}

bool Frontend::execDatatype(const SExpr &Form) {
  if (Form.size() < 2 || !Form[1].isSymbol())
    return fail(Form, "usage: (datatype Name ctors...)");
  SortId Existing;
  if (Graph.sorts().lookup(Form[1].Text, Existing))
    return fail(Form, "sort '" + Form[1].Text + "' already declared");
  SortId Self = Graph.declareSort(Form[1].Text);
  for (size_t I = 2; I < Form.size(); ++I) {
    const SExpr &Ctor = Form[I];
    if (!Ctor.isList() || Ctor.size() == 0 || !Ctor[0].isSymbol())
      return fail(Ctor, "expected a constructor (Name sorts...)");
    FunctionDecl Decl;
    Decl.Name = Ctor[0].Text;
    Decl.OutSort = Self;
    Decl.Line = Ctor.Line;
    Decl.Col = Ctor.Col;
    Decl.Unit = UnitLabel;
    size_t ArgEnd = Ctor.size();
    // Allow a trailing :cost annotation.
    if (Ctor.size() >= 3 && isKeyword(Ctor[Ctor.size() - 2]) &&
        Ctor[Ctor.size() - 2].Text == ":cost" &&
        Ctor[Ctor.size() - 1].isInteger()) {
      // Negative costs would break the monotone extraction fixpoint (and
      // saturatingAdd's overflow guard); reject them at declaration.
      if (Ctor[Ctor.size() - 1].IntValue < 0)
        return fail(Ctor[Ctor.size() - 1], ":cost must be non-negative");
      Decl.Cost = Ctor[Ctor.size() - 1].IntValue;
      ArgEnd -= 2;
    }
    for (size_t J = 1; J < ArgEnd; ++J) {
      SortId Arg;
      if (!parseSortName(Ctor[J], Arg))
        return false;
      Decl.ArgSorts.push_back(Arg);
    }
    FunctionId Ignored;
    if (Graph.lookupFunctionName(Decl.Name, Ignored))
      return fail(Ctor, "function '" + Decl.Name + "' already declared");
    Graph.declareFunction(std::move(Decl));
  }
  return true;
}

bool Frontend::execFunction(const SExpr &Form) {
  if (Form.size() < 4 || !Form[1].isSymbol() || !Form[2].isList())
    return fail(Form, "usage: (function Name (ArgSorts...) OutSort ...)");
  FunctionDecl Decl;
  Decl.Name = Form[1].Text;
  Decl.Line = Form.Line;
  Decl.Col = Form.Col;
  Decl.Unit = UnitLabel;
  FunctionId Ignored;
  if (Graph.lookupFunctionName(Decl.Name, Ignored))
    return fail(Form, "function '" + Decl.Name + "' already declared");
  for (const SExpr &Arg : Form[2].Elements) {
    SortId Sort;
    if (!parseSortName(Arg, Sort))
      return false;
    Decl.ArgSorts.push_back(Sort);
  }
  if (!parseSortName(Form[3], Decl.OutSort))
    return false;

  std::unordered_map<std::string, const SExpr *> Keywords;
  if (!scanKeywords(Form, 4, Keywords))
    return fail(Form, "malformed keyword arguments");
  if (auto It = Keywords.find(":cost"); It != Keywords.end()) {
    if (!It->second->isInteger())
      return fail(*It->second, ":cost expects an integer");
    if (It->second->IntValue < 0)
      return fail(*It->second, ":cost must be non-negative");
    Decl.Cost = It->second->IntValue;
  }
  if (auto It = Keywords.find(":merge"); It != Keywords.end()) {
    RuleCtx Ctx;
    uint32_t OldSlot = Ctx.freshVar(Decl.OutSort);
    uint32_t NewSlot = Ctx.freshVar(Decl.OutSort);
    Ctx.Names["old"] = Binding{VarOrConst::makeVar(OldSlot), Decl.OutSort};
    Ctx.Names["new"] = Binding{VarOrConst::makeVar(NewSlot), Decl.OutSort};
    TypedExpr Merge;
    if (!typecheckExpr(Ctx, *It->second, Decl.OutSort, Merge))
      return false;
    Decl.MergeExpr = std::move(Merge);
  }
  if (auto It = Keywords.find(":default"); It != Keywords.end()) {
    RuleCtx Ctx;
    TypedExpr Default;
    if (!typecheckExpr(Ctx, *It->second, Decl.OutSort, Default))
      return false;
    Decl.DefaultExpr = std::move(Default);
  }
  Graph.declareFunction(std::move(Decl));
  return true;
}

bool Frontend::execRelation(const SExpr &Form) {
  if (Form.size() != 3 || !Form[1].isSymbol() || !Form[2].isList())
    return fail(Form, "usage: (relation Name (ArgSorts...))");
  FunctionDecl Decl;
  Decl.Name = Form[1].Text;
  Decl.Line = Form.Line;
  Decl.Col = Form.Col;
  Decl.Unit = UnitLabel;
  FunctionId Ignored;
  if (Graph.lookupFunctionName(Decl.Name, Ignored))
    return fail(Form, "function '" + Decl.Name + "' already declared");
  for (const SExpr &Arg : Form[2].Elements) {
    SortId Sort;
    if (!parseSortName(Arg, Sort))
      return false;
    Decl.ArgSorts.push_back(Sort);
  }
  Decl.OutSort = SortTable::UnitSort;
  Graph.declareFunction(std::move(Decl));
  return true;
}

//===----------------------------------------------------------------------===
// Rules and rewrites
//===----------------------------------------------------------------------===

bool Frontend::execRule(const SExpr &Form) {
  if (Form.size() < 3 || !Form[1].isList() || !Form[2].isList())
    return fail(Form, "usage: (rule (facts...) (actions...))");
  std::unordered_map<std::string, const SExpr *> Keywords;
  if (!scanKeywords(Form, 3, Keywords))
    return fail(Form, "malformed keyword arguments");

  Rule R;
  if (auto It = Keywords.find(":name"); It != Keywords.end())
    R.Name = It->second->Text;
  if (auto It = Keywords.find(":ruleset"); It != Keywords.end())
    if (!parseRulesetName(*It->second, R.Ruleset))
      return false;

  RuleCtx Ctx;
  for (const SExpr &Fact : Form[1].Elements)
    if (!flattenQueryFact(Ctx, Fact))
      return false;
  Ctx.NumSlots = Ctx.Q.NumVars;
  for (const SExpr &Act : Form[2].Elements)
    if (!typecheckAction(Ctx, Act, R.Actions))
      return false;
  R.Body = std::move(Ctx.Q);
  R.NumSlots = Ctx.NumSlots;
  R.Line = Form.Line;
  R.Col = Form.Col;
  R.Unit = UnitLabel;
  R.VarNames = std::move(Ctx.SlotNames);
  Eng.addRule(std::move(R));
  return true;
}

bool Frontend::makeRewriteRule(const SExpr &At, const SExpr &Lhs,
                               const SExpr &Rhs, const SExpr *WhenList,
                               const std::string &Name, RulesetId Ruleset) {
  RuleCtx Ctx;
  Binding Root;
  if (!flattenPattern(Ctx, Lhs, InvalidSort, Root))
    return false;
  if (!Root.Term.IsVar || !Graph.sorts().isIdSort(Root.Sort))
    return fail(Lhs, "rewrite left-hand side must be a term of a user sort");
  if (WhenList) {
    if (!WhenList->isList())
      return fail(*WhenList, ":when expects a list of conditions");
    for (const SExpr &Cond : WhenList->Elements)
      if (!flattenQueryFact(Ctx, Cond))
        return false;
  }
  Ctx.NumSlots = Ctx.Q.NumVars;

  Rule R;
  R.Name = Name;
  R.Ruleset = Ruleset;
  TypedExpr RhsExpr;
  if (!typecheckExpr(Ctx, Rhs, Root.Sort, RhsExpr))
    return false;
  Action Act;
  Act.ActKind = Action::Kind::Union;
  Act.Expr = TypedExpr::makeVar(Root.Term.Var, Root.Sort);
  Act.Expr2 = std::move(RhsExpr);
  R.Actions.push_back(std::move(Act));
  R.Body = std::move(Ctx.Q);
  R.NumSlots = Ctx.NumSlots;
  R.Line = At.Line;
  R.Col = At.Col;
  R.Unit = UnitLabel;
  R.VarNames = std::move(Ctx.SlotNames);
  Eng.addRule(std::move(R));
  return true;
}

bool Frontend::execRewrite(const SExpr &Form, bool Bidirectional) {
  if (Form.size() < 3)
    return fail(Form, "usage: (rewrite lhs rhs [:when (conds...)])");
  std::unordered_map<std::string, const SExpr *> Keywords;
  if (!scanKeywords(Form, 3, Keywords))
    return fail(Form, "malformed keyword arguments");
  const SExpr *WhenList = nullptr;
  if (auto It = Keywords.find(":when"); It != Keywords.end())
    WhenList = It->second;
  std::string Name;
  if (auto It = Keywords.find(":name"); It != Keywords.end())
    Name = It->second->Text;
  RulesetId Ruleset = 0;
  if (auto It = Keywords.find(":ruleset"); It != Keywords.end())
    if (!parseRulesetName(*It->second, Ruleset))
      return false;
  if (!makeRewriteRule(Form, Form[1], Form[2], WhenList, Name, Ruleset))
    return false;
  if (Bidirectional &&
      !makeRewriteRule(Form, Form[2], Form[1], WhenList, Name, Ruleset))
    return false;
  return true;
}

//===----------------------------------------------------------------------===
// Top-level commands
//===----------------------------------------------------------------------===

bool Frontend::execDefine(const SExpr &Form) {
  if (Form.size() < 3 || !Form[1].isSymbol())
    return fail(Form, "usage: (define name expr)");
  FunctionId Ignored;
  if (Graph.lookupFunctionName(Form[1].Text, Ignored))
    return fail(Form, "'" + Form[1].Text + "' already declared");
  std::unordered_map<std::string, const SExpr *> Keywords;
  if (!scanKeywords(Form, 3, Keywords))
    return fail(Form, "malformed keyword arguments");

  RuleCtx Ctx;
  TypedExpr Expr;
  if (!typecheckExpr(Ctx, Form[2], InvalidSort, Expr))
    return false;
  Value Result;
  std::vector<Value> Env;
  if (!Graph.evalExpr(Expr, Env, Result))
    return fail(Form, "failed to evaluate definition of '" + Form[1].Text +
                          "': " + Graph.errorMessage());

  FunctionDecl Decl;
  Decl.Name = Form[1].Text;
  Decl.OutSort = Expr.Type;
  Decl.Line = Form.Line;
  Decl.Col = Form.Col;
  Decl.Unit = UnitLabel;
  // Defined names are aliases; give them a prohibitive extraction cost so
  // extract prefers real terms (matching egglog's define).
  Decl.Cost = 1000000000;
  if (auto It = Keywords.find(":cost"); It != Keywords.end()) {
    if (!It->second->isInteger())
      return fail(*It->second, ":cost expects an integer");
    if (It->second->IntValue < 0)
      return fail(*It->second, ":cost must be non-negative");
    Decl.Cost = It->second->IntValue;
  }
  FunctionId Func = Graph.declareFunction(std::move(Decl));
  Value NoArgs;
  if (!Graph.setValue(Func, &NoArgs, Result))
    return failGraph(Form);
  return true;
}

bool Frontend::parseRulesetName(const SExpr &Node, RulesetId &Out) {
  if (!Node.isSymbol())
    return fail(Node, "expected a ruleset name");
  if (!Eng.lookupRuleset(Node.Text, Out))
    return fail(Node, "unknown ruleset '" + Node.Text + "'");
  return true;
}

bool Frontend::execRuleset(const SExpr &Form) {
  if (Form.size() != 2 || !Form[1].isSymbol())
    return fail(Form, "usage: (ruleset name)");
  RulesetId Existing;
  if (Eng.lookupRuleset(Form[1].Text, Existing))
    return fail(Form, "ruleset '" + Form[1].Text + "' already declared");
  Eng.declareRuleset(Form[1].Text);
  Lint.RulesetDecls.resize(Eng.numRulesets());
  Lint.RulesetDecls.back() = SourceSpan{UnitLabel, Form.Line, Form.Col};
  return true;
}

void Frontend::recordRunTarget(RulesetId Ruleset, bool Guarded) {
  Lint.SawAnyRun = true;
  if (Lint.RulesetRan.size() <= Ruleset) {
    Lint.RulesetRan.resize(Ruleset + 1, 0);
    Lint.RulesetRanUnguarded.resize(Ruleset + 1, 0);
  }
  Lint.RulesetRan[Ruleset] = 1;
  if (!Guarded)
    Lint.RulesetRanUnguarded[Ruleset] = 1;
}

void Frontend::recordScheduleTargets(const Schedule &S) {
  if (S.ScheduleKind == Schedule::Kind::Run)
    recordRunTarget(S.Ruleset, /*Guarded=*/true);
  for (const Schedule &Child : S.Children)
    recordScheduleTargets(Child);
}

void Frontend::truncateLintState() {
  size_t N = Eng.numRulesets();
  if (Lint.RulesetDecls.size() > N)
    Lint.RulesetDecls.resize(N);
  if (Lint.RulesetRan.size() > N) {
    Lint.RulesetRan.resize(N);
    Lint.RulesetRanUnguarded.resize(N);
  }
}

bool Frontend::parseRunLeaf(const SExpr &Form, Schedule &Out,
                            bool &HasCount) {
  // (run), (run n), (run ruleset), (run ruleset n), each with an optional
  // trailing :until (facts...).
  Out = Schedule();
  HasCount = false;
  size_t Arg = 1;
  if (Arg < Form.size() && Form[Arg].isSymbol() && !isKeyword(Form[Arg])) {
    if (!parseRulesetName(Form[Arg], Out.Ruleset))
      return false;
    ++Arg;
  }
  if (Arg < Form.size() && !isKeyword(Form[Arg])) {
    if (!Form[Arg].isInteger() || Form[Arg].IntValue < 0)
      return fail(Form, "usage: (run [ruleset] [n] [:until (facts...)])");
    Out.Times = static_cast<unsigned>(Form[Arg].IntValue);
    HasCount = true;
    ++Arg;
  }
  std::unordered_map<std::string, const SExpr *> Keywords;
  if (!scanKeywords(Form, Arg, Keywords))
    return fail(Form, "malformed keyword arguments");
  if (auto It = Keywords.find(":until"); It != Keywords.end()) {
    if (!It->second->isList())
      return fail(*It->second, ":until expects a list of facts");
    for (const SExpr &Fact : It->second->Elements) {
      CheckFact Checked;
      if (!typecheckCheckFact(Fact, Checked))
        return false;
      Out.Until.push_back(std::move(Checked));
    }
  }
  return true;
}

bool Frontend::execRun(const SExpr &Form) {
  Schedule Leaf;
  bool HasCount;
  if (!parseRunLeaf(Form, Leaf, HasCount))
    return false;
  // An uncounted, goal-less (run ...) is run-to-saturation intent: the
  // shape the non-termination lint treats as unguarded.
  recordRunTarget(Leaf.Ruleset, HasCount || !Leaf.Until.empty());
  if (AnalysisMode)
    return true;
  // Bare count: iterate to saturation with a generous safety cap.
  if (!HasCount)
    Leaf.Times = 1000;

  if (Leaf.Ruleset == 0 && Leaf.Until.empty()) {
    // The classic single-ruleset path; kept separate from the schedule
    // interpreter so the engine's own saturation detection reports
    // through LastRun exactly as before.
    RunOptions Opts = Options;
    Opts.Ruleset = 0;
    Opts.Iterations = Leaf.Times;
    LastRun = Eng.run(Opts);
  } else {
    LastRun = Eng.runSchedule(Leaf, Options);
  }
  accumulatePhaseTotals();
  if (Graph.failed())
    return failGraph(Form);
  return true;
}

bool Frontend::execSetOption(const SExpr &Form) {
  if (Form.size() != 3 || !Form[1].isSymbol() || !isKeyword(Form[1]))
    return fail(Form, "usage: (set-option :option value)");
  const std::string &Option = Form[1].Text;
  if (Option == ":timeout") {
    // Per-command wall-clock budget in seconds (integer or float); 0
    // disables. Unlike the legacy iteration-granular TimeoutSeconds run
    // option, a governor timeout is a hard stop: the command fails with a
    // limit error and rolls back.
    double Seconds = 0;
    if (Form[2].isInteger() && Form[2].IntValue >= 0)
      Seconds = static_cast<double>(Form[2].IntValue);
    else if (Form[2].isFloat() && Form[2].FloatValue >= 0)
      Seconds = Form[2].FloatValue;
    else
      return fail(Form[2], ":timeout expects a non-negative number");
    Graph.governor().setTimeout(Seconds);
    return true;
  }
  if (Option == ":max-nodes") {
    if (!Form[2].isInteger() || Form[2].IntValue < 0)
      return fail(Form[2], ":max-nodes expects a non-negative integer");
    Graph.governor().setMaxLive(static_cast<size_t>(Form[2].IntValue));
    return true;
  }
  if (Option == ":max-memory-mb") {
    if (!Form[2].isInteger() || Form[2].IntValue < 0)
      return fail(Form[2], ":max-memory-mb expects a non-negative integer");
    Graph.governor().setMaxBytes(static_cast<size_t>(Form[2].IntValue) << 20);
    return true;
  }
  if (Option == ":threads") {
    if (!Form[2].isInteger() || Form[2].IntValue < 1)
      return fail(Form[2], ":threads expects a positive integer");
    // Bound before narrowing: setThreads clamps far below this anyway,
    // and a direct cast would wrap huge values (2^32 -> 0).
    Eng.setThreads(static_cast<unsigned>(
        std::min<int64_t>(Form[2].IntValue, 1 << 16)));
    return true;
  }
  if (Option == ":node-limit") {
    if (!Form[2].isInteger() || Form[2].IntValue < 0)
      return fail(Form[2], ":node-limit expects a non-negative integer");
    Options.NodeLimit = static_cast<size_t>(Form[2].IntValue);
    return true;
  }
  return fail(Form, "unknown option '" + Option + "'");
}

void Frontend::accumulatePhaseTotals() {
  for (const IterationStats &Stats : LastRun.Iterations) {
    ++Totals.Iterations;
    Totals.Matches += Stats.Matches;
    Totals.WarmSeconds += Stats.WarmSeconds;
    Totals.SearchSeconds += Stats.SearchSeconds;
    Totals.ApplySeconds += Stats.ApplySeconds;
    Totals.ApplyStageSeconds += Stats.ApplyStageSeconds;
    Totals.RebuildSeconds += Stats.RebuildSeconds;
    Totals.RebuildGatherSeconds += Stats.RebuildGatherSeconds;
  }
}

bool Frontend::parseSchedule(const SExpr &Node, Schedule &Out) {
  // A bare ruleset name runs that ruleset once.
  if (Node.isSymbol()) {
    Out = Schedule::makeRun(0, 1);
    return parseRulesetName(Node, Out.Ruleset);
  }
  if (!Node.isList() || Node.size() == 0 || !Node[0].isSymbol())
    return fail(Node, "expected a schedule");
  const std::string &Head = Node[0].Text;

  if (Head == "run") {
    bool HasCount;
    if (!parseRunLeaf(Node, Out, HasCount))
      return false;
    if (!HasCount)
      Out.Times = 1;
    return true;
  }

  if (Head == "saturate" || Head == "seq" || Head == "repeat") {
    size_t First = 1;
    unsigned Times = 1;
    Schedule::Kind Kind = Schedule::Kind::Seq;
    if (Head == "saturate") {
      Kind = Schedule::Kind::Saturate;
    } else if (Head == "repeat") {
      Kind = Schedule::Kind::Repeat;
      if (Node.size() < 2 || !Node[1].isInteger() || Node[1].IntValue < 0)
        return fail(Node, "usage: (repeat n schedules...)");
      Times = static_cast<unsigned>(Node[1].IntValue);
      First = 2;
    }
    std::vector<Schedule> Children;
    for (size_t I = First; I < Node.size(); ++I) {
      Schedule Child;
      if (!parseSchedule(Node[I], Child))
        return false;
      Children.push_back(std::move(Child));
    }
    if (Children.empty())
      return fail(Node, "(" + Head + ") needs at least one sub-schedule");
    Out = Schedule::makeCombinator(Kind, std::move(Children), Times);
    return true;
  }

  return fail(Node, "unknown schedule form '" + Head + "'");
}

bool Frontend::execRunSchedule(const SExpr &Form) {
  if (Form.size() < 2)
    return fail(Form, "usage: (run-schedule schedules...)");
  std::vector<Schedule> Children;
  for (size_t I = 1; I < Form.size(); ++I) {
    Schedule Child;
    if (!parseSchedule(Form[I], Child))
      return false;
    Children.push_back(std::move(Child));
  }
  Schedule Root =
      Schedule::makeCombinator(Schedule::Kind::Seq, std::move(Children));
  // Schedule leaves are always bounded (or saturate-wrapped), so every
  // target counts as guarded for the non-termination lint.
  recordScheduleTargets(Root);
  if (AnalysisMode)
    return true;
  LastRun = Eng.runSchedule(Root, Options);
  accumulatePhaseTotals();
  if (Graph.failed())
    return failGraph(Form);
  return true;
}

void Frontend::pushContext() {
  Contexts.push_back(SavedContext{Graph.snapshot(), Eng.snapshot()});
}

bool Frontend::popContext() {
  if (Contexts.empty())
    return false;
  Graph.restore(Contexts.back().GraphState);
  Eng.restore(Contexts.back().EngineState);
  Contexts.pop_back();
  truncateLintState();
  return true;
}

bool Frontend::execPush(const SExpr &Form) {
  int64_t Count = 1;
  if (Form.size() >= 2) {
    if (!Form[1].isInteger() || Form[1].IntValue < 1)
      return fail(Form, "usage: (push) or (push n)");
    Count = Form[1].IntValue;
  }
  for (int64_t I = 0; I < Count; ++I)
    pushContext();
  return true;
}

bool Frontend::execPop(const SExpr &Form) {
  int64_t Count = 1;
  if (Form.size() >= 2) {
    if (!Form[1].isInteger() || Form[1].IntValue < 1)
      return fail(Form, "usage: (pop) or (pop n)");
    Count = Form[1].IntValue;
  }
  // Check up front so a failing (pop n) is atomic: it must not consume
  // the contexts that do exist before reporting the error.
  if (static_cast<size_t>(Count) > Contexts.size())
    return failKind(Form, ErrKind::Runtime, "(pop) without a matching (push)");
  for (int64_t I = 0; I < Count; ++I)
    popContext();
  return true;
}

bool Frontend::execCheck(const SExpr &Form, bool ExpectFailure) {
  if (Form.size() < 2)
    return fail(Form, "usage: (check fact...)");
  // Analysis mode typechecks the facts without consulting the database
  // (which a non-executing walk never populated by running rules).
  if (AnalysisMode) {
    for (size_t I = 1; I < Form.size(); ++I) {
      CheckFact Fact;
      if (!typecheckCheckFact(Form[I], Fact))
        return false;
    }
    return true;
  }
  if (!ensureRebuilt())
    return false;
  for (size_t I = 1; I < Form.size(); ++I) {
    CheckFact Fact;
    if (!typecheckCheckFact(Form[I], Fact))
      return false;
    bool Holds = Graph.checkFact(Fact);
    if (Graph.failed())
      return failGraph(Form[I]);
    if (Holds == ExpectFailure)
      return failKind(Form[I], ErrKind::Runtime,
                      ExpectFailure ? "check-fail succeeded unexpectedly: " +
                                          Form[I].toString()
                                    : "check failed: " + Form[I].toString());
  }
  return true;
}

bool Frontend::execExtract(const SExpr &Form) {
  if (Form.size() != 2 && Form.size() != 3)
    return fail(Form, "usage: (extract expr [n])");
  if (AnalysisMode) {
    RuleCtx Ctx;
    TypedExpr Expr;
    return typecheckExpr(Ctx, Form[1], InvalidSort, Expr);
  }
  if (!ensureRebuilt())
    return false;
  RuleCtx Ctx;
  TypedExpr Expr;
  if (!typecheckExpr(Ctx, Form[1], InvalidSort, Expr))
    return false;
  Value Result;
  std::vector<Value> Env;
  if (!Graph.evalExpr(Expr, Env, Result, /*CreateTerms=*/false))
    return fail(Form, "extract: expression is not in the database");
  // (extract expr n): up to n distinct equivalent terms, cheapest first,
  // one output line each.
  if (Form.size() == 3) {
    if (!Form[2].isInteger() || Form[2].IntValue < 1)
      return fail(Form[2], "(extract expr n) expects a positive count");
    std::vector<ExtractedTerm> Variants = extractVariants(
        Graph, Result, static_cast<size_t>(Form[2].IntValue));
    if (Variants.empty())
      return fail(Form, "extract: no term represents this value");
    for (const ExtractedTerm &Variant : Variants)
      Outputs.push_back(Variant.Text);
    return true;
  }
  std::optional<ExtractedTerm> Term = extractTerm(Graph, Result);
  if (!Term)
    return fail(Form, "extract: no term represents this value");
  Outputs.push_back(Term->Text);
  return true;
}

bool Frontend::execSave(const SExpr &Form) {
  if (Form.size() != 2 || !Form[1].isString())
    return fail(Form, "usage: (save <file>) with a string path");
  if (AnalysisMode)
    return true;
  EggError Err;
  if (!saveSnapshot(Graph, Form[1].Text, Err))
    return failKind(Form, Err.Kind, Err.Message);
  return true;
}

bool Frontend::execLoad(const SExpr &Form) {
  if (Form.size() != 2 || !Form[1].isString())
    return fail(Form, "usage: (load <file>) with a string path");
  if (AnalysisMode)
    return true;
  // A load wholesale-replaces the tables that any open (push) context's
  // saved snapshot still describes, so it is only legal at depth zero.
  if (!Contexts.empty())
    return failKind(Form, ErrKind::IO,
                    "(load) inside a (push) context is not supported");
  EggError Err;
  if (!loadSnapshot(Graph, Form[1].Text, Err))
    return failKind(Form, Err.Kind, Err.Message);
  // The engine's saturation-hash caches are keyed by monotone mutation
  // counters that a wholesale content swap can replay onto different
  // content; drop them explicitly.
  Eng.noteExternalMutation();
  return true;
}

RuleGraph Frontend::ruleGraph() const { return buildRuleGraph(Eng, Graph); }

std::vector<LintDiagnostic> Frontend::lintProgram() const {
  RuleGraph RG = ruleGraph();
  return runLints(Eng, Graph, RG, Lint);
}

bool Frontend::execCheckProgram(const SExpr &Form) {
  if (Form.size() != 1)
    return fail(Form, "usage: (check-program)");
  for (const LintDiagnostic &D : lintProgram())
    Outputs.push_back("line " + std::to_string(D.Line) +
                      ": warning: " + D.Message + " [" + D.Check + "]");
  return true;
}

bool Frontend::execTopLevelAction(const SExpr &Form) {
  RuleCtx Ctx;
  std::vector<Action> Actions;
  if (!typecheckAction(Ctx, Form, Actions))
    return false;
  std::vector<Value> Env(Ctx.NumSlots);
  if (!Graph.runActions(Actions, Env)) {
    if (Graph.failed())
      return failGraph(Form);
    return failKind(Form, ErrKind::Runtime,
                    "action failed: " + Form.toString());
  }
  return true;
}

bool Frontend::ensureRebuilt() {
  if (Graph.needsRebuild())
    Graph.rebuild();
  if (Graph.failed()) {
    if (ErrorMsg.empty()) {
      // Report at the span of the command that forced the rebuild, so the
      // error doesn't point at "line 0".
      unsigned Line = CurrentForm ? CurrentForm->Line : 0;
      unsigned Col = CurrentForm ? CurrentForm->Col : 0;
      ErrorMsg = "line " + std::to_string(Line) + ": " + Graph.errorMessage();
      ErrKind Kind = Graph.errorKind();
      LastError = EggError{Kind == ErrKind::None ? ErrKind::Runtime : Kind,
                           Graph.errorMessage(), Line, Col};
    }
    return false;
  }
  return true;
}

bool Frontend::evalGround(std::string_view ExprSource, Value &Out) {
  ParseResult Parsed = parseSExprs(ExprSource);
  if (!Parsed.Ok || Parsed.Forms.size() != 1)
    return false;
  if (!ensureRebuilt())
    return false;
  RuleCtx Ctx;
  TypedExpr Expr;
  if (!typecheckExpr(Ctx, Parsed.Forms[0], InvalidSort, Expr)) {
    ErrorMsg.clear();
    return false;
  }
  std::vector<Value> Env;
  return Graph.evalExpr(Expr, Env, Out, /*CreateTerms=*/false);
}

//===----------------------------------------------------------------------===
// Typechecking: patterns (query side)
//===----------------------------------------------------------------------===

Value Frontend::literalFor(const SExpr &Node, SortId Expected) {
  if (Node.isInteger()) {
    if (Expected == SortTable::F64Sort)
      return Graph.mkF64(static_cast<double>(Node.IntValue));
    if (Expected == SortTable::RationalSort)
      return Graph.mkRational(Rational(Node.IntValue));
    return Graph.mkI64(Node.IntValue);
  }
  if (Node.isFloat())
    return Graph.mkF64(Node.FloatValue);
  assert(Node.isString() && "literalFor on a non-literal");
  return Graph.mkString(Node.Text);
}

bool Frontend::resolvePrim(const SExpr &At, const std::string &Name,
                           const std::vector<SortId> &ArgSorts,
                           uint32_t &PrimId) {
  if (Graph.primitives().resolve(Name, ArgSorts, PrimId))
    return true;
  // Lazily instantiate the polymorphic comparisons for any sort.
  if ((Name == "!=" || Name == "==") && ArgSorts.size() == 2 &&
      ArgSorts[0] == ArgSorts[1]) {
    bool Negated = Name == "!=";
    PrimId = Graph.primitives().add(Primitive{
        Name,
        ArgSorts,
        SortTable::BoolSort,
        [Negated](EGraph &G, const Value *Args, Value &Out) {
          bool Equal = G.canonicalize(Args[0]) == G.canonicalize(Args[1]);
          Out = G.mkBool(Negated ? !Equal : Equal);
          return true;
        }});
    return true;
  }
  std::string Sorts;
  for (SortId S : ArgSorts)
    Sorts += " " + Graph.sorts().name(S);
  return fail(At, "no primitive '" + Name + "' for argument sorts:" + Sorts);
}

bool Frontend::flattenPattern(RuleCtx &Ctx, const SExpr &Pattern,
                              SortId Expected, Binding &Out) {
  // Symbols: booleans, bound names, nullary functions, or fresh variables.
  if (Pattern.isSymbol()) {
    const std::string &Name = Pattern.Text;
    if (Name == "true" || Name == "false") {
      Out = Binding{VarOrConst::makeConst(Graph.mkBool(Name == "true")),
                    SortTable::BoolSort};
    } else if (auto It = Ctx.Names.find(Name); It != Ctx.Names.end()) {
      Out = It->second;
    } else {
      FunctionId Func;
      if (Graph.lookupFunctionName(Name, Func)) {
        const FunctionInfo &Info = Graph.function(Func);
        if (Info.numKeys() != 0)
          return fail(Pattern, "function '" + Name +
                                   "' used as a variable but takes arguments");
        uint32_t Slot = Ctx.freshVar(Info.Decl.OutSort);
        QueryAtom Atom;
        Atom.Func = Func;
        Atom.Terms.push_back(VarOrConst::makeVar(Slot));
        Ctx.Q.Atoms.push_back(std::move(Atom));
        Out = Binding{VarOrConst::makeVar(Slot), Info.Decl.OutSort};
      } else {
        if (Expected == InvalidSort)
          return fail(Pattern,
                      "cannot infer the sort of variable '" + Name + "'");
        uint32_t Slot = Ctx.freshVar(Expected);
        Out = Binding{VarOrConst::makeVar(Slot), Expected};
        Ctx.Names[Name] = Out;
        Ctx.nameSlot(Slot, Name);
      }
    }
  } else if (Pattern.isInteger() || Pattern.isFloat() || Pattern.isString()) {
    Value Lit = literalFor(Pattern, Expected);
    Out = Binding{VarOrConst::makeConst(Lit), Lit.Sort};
  } else if (Pattern.isList() && Pattern.size() == 0) {
    Out = Binding{VarOrConst::makeConst(Graph.mkUnit()), SortTable::UnitSort};
  } else {
    // Call patterns: declared functions become atoms, primitives become
    // computations.
    if (!Pattern[0].isSymbol())
      return fail(Pattern, "expected a pattern");
    const std::string &Head = Pattern[0].Text;
    FunctionId Func;
    if (Graph.lookupFunctionName(Head, Func)) {
      const FunctionInfo &Info = Graph.function(Func);
      if (Pattern.size() - 1 != Info.numKeys())
        return fail(Pattern, "function '" + Head + "' expects " +
                                 std::to_string(Info.numKeys()) +
                                 " arguments");
      QueryAtom Atom;
      Atom.Func = Func;
      for (unsigned I = 0; I < Info.numKeys(); ++I) {
        Binding Arg;
        if (!flattenPattern(Ctx, Pattern[I + 1], Info.Decl.ArgSorts[I], Arg))
          return false;
        if (Arg.Sort != Info.Decl.ArgSorts[I])
          return fail(Pattern[I + 1], "argument sort mismatch in call to '" +
                                          Head + "'");
        Atom.Terms.push_back(Arg.Term);
      }
      uint32_t Slot = Ctx.freshVar(Info.Decl.OutSort);
      Atom.Terms.push_back(VarOrConst::makeVar(Slot));
      Ctx.Q.Atoms.push_back(std::move(Atom));
      Out = Binding{VarOrConst::makeVar(Slot), Info.Decl.OutSort};
    } else if (Graph.primitives().knownName(Head) || Head == "!=" ||
               Head == "==") {
      PrimComputation Prim;
      std::vector<SortId> ArgSorts;
      for (size_t I = 1; I < Pattern.size(); ++I) {
        Binding Arg;
        if (!flattenPattern(Ctx, Pattern[I], InvalidSort, Arg))
          return false;
        Prim.Args.push_back(Arg.Term);
        ArgSorts.push_back(Arg.Sort);
      }
      if (!resolvePrim(Pattern, Head, ArgSorts, Prim.Prim))
        return false;
      SortId OutSort = Graph.primitives().get(Prim.Prim).OutSort;
      uint32_t Slot = Ctx.freshVar(OutSort);
      Prim.Out = VarOrConst::makeVar(Slot);
      Ctx.Q.Prims.push_back(std::move(Prim));
      Out = Binding{VarOrConst::makeVar(Slot), OutSort};
    } else {
      return fail(Pattern, "unknown function or primitive '" + Head + "'");
    }
  }
  if (Expected != InvalidSort && Out.Sort != Expected)
    return fail(Pattern, "expected sort '" + Graph.sorts().name(Expected) +
                             "' but pattern has sort '" +
                             Graph.sorts().name(Out.Sort) + "'");
  return true;
}

bool Frontend::flattenQueryFact(RuleCtx &Ctx, const SExpr &Fact) {
  if (!Fact.isList() || Fact.size() == 0 || !Fact[0].isSymbol())
    return fail(Fact, "expected a query fact");
  const std::string &Head = Fact[0].Text;

  if (Head == "=") {
    if (Fact.size() != 3)
      return fail(Fact, "(=) expects two arguments");
    const SExpr &A = Fact[1], &B = Fact[2];
    // Prefer binding a fresh name to the other side's value.
    auto IsFreshName = [&](const SExpr &Node) {
      if (!Node.isSymbol() || Node.Text == "true" || Node.Text == "false")
        return false;
      FunctionId Ignored;
      return Ctx.Names.find(Node.Text) == Ctx.Names.end() &&
             !Graph.lookupFunctionName(Node.Text, Ignored);
    };
    if (IsFreshName(A) && !IsFreshName(B)) {
      Binding Rhs;
      if (!flattenPattern(Ctx, B, InvalidSort, Rhs))
        return false;
      Ctx.Names[A.Text] = Rhs;
      if (Rhs.Term.IsVar)
        Ctx.nameSlot(Rhs.Term.Var, A.Text);
      return true;
    }
    if (IsFreshName(B) && !IsFreshName(A)) {
      Binding Lhs;
      if (!flattenPattern(Ctx, A, InvalidSort, Lhs))
        return false;
      Ctx.Names[B.Text] = Lhs;
      if (Lhs.Term.IsVar)
        Ctx.nameSlot(Lhs.Term.Var, B.Text);
      return true;
    }
    // Both sides are patterns (or both fresh names, which we reject).
    if (IsFreshName(A) && IsFreshName(B))
      return fail(Fact, "cannot infer sorts in (= " + A.Text + " " + B.Text +
                            ")");
    Binding Lhs;
    if (!flattenPattern(Ctx, A, InvalidSort, Lhs))
      return false;
    // If the right side is a function call, reuse the left value as its
    // output column; otherwise emit an equality filter.
    if (B.isList() && B.size() > 0 && B[0].isSymbol()) {
      FunctionId Func;
      if (Graph.lookupFunctionName(B[0].Text, Func)) {
        const FunctionInfo &Info = Graph.function(Func);
        if (B.size() - 1 != Info.numKeys())
          return fail(B, "function '" + B[0].Text + "' expects " +
                             std::to_string(Info.numKeys()) + " arguments");
        if (Info.Decl.OutSort != Lhs.Sort)
          return fail(Fact, "(=) sides have different sorts");
        QueryAtom Atom;
        Atom.Func = Func;
        for (unsigned I = 0; I < Info.numKeys(); ++I) {
          Binding Arg;
          if (!flattenPattern(Ctx, B[I + 1], Info.Decl.ArgSorts[I], Arg))
            return false;
          Atom.Terms.push_back(Arg.Term);
        }
        Atom.Terms.push_back(Lhs.Term);
        Ctx.Q.Atoms.push_back(std::move(Atom));
        return true;
      }
    }
    Binding Rhs;
    if (!flattenPattern(Ctx, B, Lhs.Sort, Rhs))
      return false;
    PrimComputation Prim;
    if (!resolvePrim(Fact, "==", {Lhs.Sort, Rhs.Sort}, Prim.Prim))
      return false;
    Prim.Args = {Lhs.Term, Rhs.Term};
    Prim.Out = VarOrConst::makeConst(Graph.mkBool(true));
    Ctx.Q.Prims.push_back(std::move(Prim));
    return true;
  }

  if (Head == "!=") {
    if (Fact.size() != 3)
      return fail(Fact, "(!=) expects two arguments");
    Binding Lhs, Rhs;
    if (!flattenPattern(Ctx, Fact[1], InvalidSort, Lhs) ||
        !flattenPattern(Ctx, Fact[2], Lhs.Sort, Rhs))
      return false;
    PrimComputation Prim;
    if (!resolvePrim(Fact, "!=", {Lhs.Sort, Rhs.Sort}, Prim.Prim))
      return false;
    Prim.Args = {Lhs.Term, Rhs.Term};
    Prim.Out = VarOrConst::makeConst(Graph.mkBool(true));
    Ctx.Q.Prims.push_back(std::move(Prim));
    return true;
  }

  // A declared-function pattern is an occurrence check; a boolean
  // primitive is a filter.
  FunctionId Func;
  if (Graph.lookupFunctionName(Head, Func)) {
    Binding Ignored;
    return flattenPattern(Ctx, Fact, InvalidSort, Ignored);
  }
  if (Graph.primitives().knownName(Head)) {
    PrimComputation Prim;
    std::vector<SortId> ArgSorts;
    for (size_t I = 1; I < Fact.size(); ++I) {
      Binding Arg;
      if (!flattenPattern(Ctx, Fact[I], InvalidSort, Arg))
        return false;
      Prim.Args.push_back(Arg.Term);
      ArgSorts.push_back(Arg.Sort);
    }
    if (!resolvePrim(Fact, Head, ArgSorts, Prim.Prim))
      return false;
    if (Graph.primitives().get(Prim.Prim).OutSort != SortTable::BoolSort)
      return fail(Fact, "query condition must be a boolean primitive");
    Prim.Out = VarOrConst::makeConst(Graph.mkBool(true));
    Ctx.Q.Prims.push_back(std::move(Prim));
    return true;
  }
  return fail(Fact, "unknown function or primitive '" + Head + "'");
}

//===----------------------------------------------------------------------===
// Typechecking: expressions and actions
//===----------------------------------------------------------------------===

bool Frontend::typecheckExpr(RuleCtx &Ctx, const SExpr &Expr, SortId Expected,
                             TypedExpr &Out) {
  if (Expr.isSymbol()) {
    const std::string &Name = Expr.Text;
    if (Name == "true" || Name == "false") {
      Out = TypedExpr::makeLit(Graph.mkBool(Name == "true"));
    } else if (auto It = Ctx.Names.find(Name); It != Ctx.Names.end()) {
      const Binding &B = It->second;
      Out = B.Term.IsVar ? TypedExpr::makeVar(B.Term.Var, B.Sort)
                         : TypedExpr::makeLit(B.Term.Const);
    } else {
      FunctionId Func;
      if (!Graph.lookupFunctionName(Name, Func))
        return fail(Expr, "unbound variable '" + Name + "'");
      const FunctionInfo &Info = Graph.function(Func);
      if (Info.numKeys() != 0)
        return fail(Expr, "function '" + Name + "' takes arguments");
      Out = TypedExpr::makeCall(TypedExpr::Kind::FuncCall, Func,
                                Info.Decl.OutSort, {});
    }
  } else if (Expr.isInteger() || Expr.isFloat() || Expr.isString()) {
    Out = TypedExpr::makeLit(literalFor(Expr, Expected));
  } else if (Expr.isList() && Expr.size() == 0) {
    Out = TypedExpr::makeLit(Graph.mkUnit());
  } else {
    if (!Expr[0].isSymbol())
      return fail(Expr, "expected an expression");
    const std::string &Head = Expr[0].Text;
    FunctionId Func;
    if (Graph.lookupFunctionName(Head, Func)) {
      const FunctionInfo &Info = Graph.function(Func);
      if (Expr.size() - 1 != Info.numKeys())
        return fail(Expr, "function '" + Head + "' expects " +
                              std::to_string(Info.numKeys()) + " arguments");
      std::vector<TypedExpr> Args;
      for (unsigned I = 0; I < Info.numKeys(); ++I) {
        TypedExpr Arg;
        if (!typecheckExpr(Ctx, Expr[I + 1], Info.Decl.ArgSorts[I], Arg))
          return false;
        Args.push_back(std::move(Arg));
      }
      Out = TypedExpr::makeCall(TypedExpr::Kind::FuncCall, Func,
                                Info.Decl.OutSort, std::move(Args));
    } else if (Graph.primitives().knownName(Head) || Head == "!=" ||
               Head == "==") {
      std::vector<TypedExpr> Args;
      std::vector<SortId> ArgSorts;
      for (size_t I = 1; I < Expr.size(); ++I) {
        TypedExpr Arg;
        SortId ArgExpected = InvalidSort;
        // Give numeric literals a chance to adapt to a numeric sibling
        // sort (e.g. (+ x 1) where x is f64 or Rational).
        if (!ArgSorts.empty() && Expr[I].isInteger() &&
            (ArgSorts.front() == SortTable::F64Sort ||
             ArgSorts.front() == SortTable::RationalSort))
          ArgExpected = ArgSorts.front();
        if (!typecheckExpr(Ctx, Expr[I], ArgExpected, Arg))
          return false;
        ArgSorts.push_back(Arg.Type);
        Args.push_back(std::move(Arg));
      }
      uint32_t PrimId;
      if (!resolvePrim(Expr, Head, ArgSorts, PrimId))
        return false;
      Out = TypedExpr::makeCall(TypedExpr::Kind::PrimCall, PrimId,
                                Graph.primitives().get(PrimId).OutSort,
                                std::move(Args));
    } else {
      return fail(Expr, "unknown function or primitive '" + Head + "'");
    }
  }
  if (Expected != InvalidSort && Out.Type != Expected)
    return fail(Expr, "expected sort '" + Graph.sorts().name(Expected) +
                          "' but expression has sort '" +
                          Graph.sorts().name(Out.Type) + "'");
  return true;
}

bool Frontend::typecheckAction(RuleCtx &Ctx, const SExpr &Form,
                               std::vector<Action> &Out) {
  if (!Form.isList() || Form.size() == 0 || !Form[0].isSymbol())
    return fail(Form, "expected an action");
  const std::string &Head = Form[0].Text;

  if (Head == "set") {
    if (Form.size() != 3 || !Form[1].isList() || Form[1].size() == 0 ||
        !Form[1][0].isSymbol())
      return fail(Form, "usage: (set (f args...) value)");
    FunctionId Func;
    if (!Graph.lookupFunctionName(Form[1][0].Text, Func))
      return fail(Form[1], "unknown function '" + Form[1][0].Text + "'");
    const FunctionInfo &Info = Graph.function(Func);
    if (Form[1].size() - 1 != Info.numKeys())
      return fail(Form[1], "function '" + Info.Decl.Name + "' expects " +
                               std::to_string(Info.numKeys()) + " arguments");
    Action Act;
    Act.ActKind = Action::Kind::Set;
    Act.Func = Func;
    for (unsigned I = 0; I < Info.numKeys(); ++I) {
      TypedExpr Arg;
      if (!typecheckExpr(Ctx, Form[1][I + 1], Info.Decl.ArgSorts[I], Arg))
        return false;
      Act.Args.push_back(std::move(Arg));
    }
    if (!typecheckExpr(Ctx, Form[2], Info.Decl.OutSort, Act.Expr))
      return false;
    Out.push_back(std::move(Act));
    return true;
  }

  if (Head == "union") {
    if (Form.size() != 3)
      return fail(Form, "usage: (union a b)");
    Action Act;
    Act.ActKind = Action::Kind::Union;
    if (!typecheckExpr(Ctx, Form[1], InvalidSort, Act.Expr))
      return false;
    if (!Graph.sorts().isIdSort(Act.Expr.Type))
      return fail(Form[1], "only values of user sorts can be unioned");
    if (!typecheckExpr(Ctx, Form[2], Act.Expr.Type, Act.Expr2))
      return false;
    Out.push_back(std::move(Act));
    return true;
  }

  if (Head == "let" || Head == "define") {
    if (Form.size() != 3 || !Form[1].isSymbol())
      return fail(Form, "usage: (let name expr)");
    if (Ctx.Names.count(Form[1].Text))
      return fail(Form, "'" + Form[1].Text + "' is already bound");
    Action Act;
    Act.ActKind = Action::Kind::Let;
    if (!typecheckExpr(Ctx, Form[2], InvalidSort, Act.Expr))
      return false;
    uint32_t Slot = Ctx.NumSlots++;
    Act.Var = Slot;
    Ctx.Names[Form[1].Text] =
        Binding{VarOrConst::makeVar(Slot), Act.Expr.Type};
    Ctx.nameSlot(Slot, Form[1].Text);
    Out.push_back(std::move(Act));
    return true;
  }

  if (Head == "delete") {
    if (Form.size() != 2 || !Form[1].isList() || Form[1].size() == 0 ||
        !Form[1][0].isSymbol())
      return fail(Form, "usage: (delete (f args...))");
    FunctionId Func;
    if (!Graph.lookupFunctionName(Form[1][0].Text, Func))
      return fail(Form[1], "unknown function '" + Form[1][0].Text + "'");
    const FunctionInfo &Info = Graph.function(Func);
    if (Form[1].size() - 1 != Info.numKeys())
      return fail(Form[1], "function '" + Info.Decl.Name + "' expects " +
                               std::to_string(Info.numKeys()) + " arguments");
    Action Act;
    Act.ActKind = Action::Kind::Delete;
    Act.Func = Func;
    for (unsigned I = 0; I < Info.numKeys(); ++I) {
      TypedExpr Arg;
      if (!typecheckExpr(Ctx, Form[1][I + 1], Info.Decl.ArgSorts[I], Arg))
        return false;
      Act.Args.push_back(std::move(Arg));
    }
    Out.push_back(std::move(Act));
    return true;
  }

  if (Head == "panic") {
    Action Act;
    Act.ActKind = Action::Kind::Panic;
    Act.Message = Form.size() >= 2 && Form[1].isString() ? Form[1].Text
                                                         : "explicit panic";
    Out.push_back(std::move(Act));
    return true;
  }

  // Bare call: a fact assertion for unit functions, a term insertion
  // otherwise.
  FunctionId Func;
  if (Graph.lookupFunctionName(Head, Func) &&
      Graph.function(Func).Decl.OutSort == SortTable::UnitSort) {
    const FunctionInfo &Info = Graph.function(Func);
    if (Form.size() - 1 != Info.numKeys())
      return fail(Form, "function '" + Head + "' expects " +
                            std::to_string(Info.numKeys()) + " arguments");
    Action Act;
    Act.ActKind = Action::Kind::Set;
    Act.Func = Func;
    for (unsigned I = 0; I < Info.numKeys(); ++I) {
      TypedExpr Arg;
      if (!typecheckExpr(Ctx, Form[I + 1], Info.Decl.ArgSorts[I], Arg))
        return false;
      Act.Args.push_back(std::move(Arg));
    }
    Act.Expr = TypedExpr::makeLit(Graph.mkUnit());
    Out.push_back(std::move(Act));
    return true;
  }

  Action Act;
  Act.ActKind = Action::Kind::Eval;
  if (!typecheckExpr(Ctx, Form, InvalidSort, Act.Expr))
    return false;
  Out.push_back(std::move(Act));
  return true;
}

bool Frontend::typecheckCheckFact(const SExpr &Fact, CheckFact &Out) {
  RuleCtx Ctx;
  if (Fact.isCall("=") && Fact.size() == 3) {
    Out.FactKind = CheckFact::Kind::Equal;
    if (!typecheckExpr(Ctx, Fact[1], InvalidSort, Out.Lhs))
      return false;
    return typecheckExpr(Ctx, Fact[2], Out.Lhs.Type, Out.Rhs);
  }
  if (Fact.isCall("!=") && Fact.size() == 3) {
    Out.FactKind = CheckFact::Kind::NotEqual;
    if (!typecheckExpr(Ctx, Fact[1], InvalidSort, Out.Lhs))
      return false;
    return typecheckExpr(Ctx, Fact[2], Out.Lhs.Type, Out.Rhs);
  }
  Out.FactKind = CheckFact::Kind::Present;
  return typecheckExpr(Ctx, Fact, InvalidSort, Out.Lhs);
}
