//===- core/Primitives.h - Builtin primitive registry ----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of builtin primitive operations (i64 arithmetic, rational
/// arithmetic, comparisons, string and set operations). Primitives are
/// overloaded by argument sorts; the typechecker resolves each use to a
/// concrete primitive id. Unlike egglog functions, primitives are computed,
/// never stored, and may fail (e.g. division by zero), which aborts the
/// enclosing match as in the paper's guarded-rewrite examples.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_PRIMITIVES_H
#define EGGLOG_CORE_PRIMITIVES_H

#include "core/Value.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {

class EGraph;

/// One concrete overload of a primitive operation.
struct Primitive {
  std::string Name;
  std::vector<SortId> ArgSorts;
  SortId OutSort;
  /// Computes the result; returns false on failure (the enclosing match or
  /// action is abandoned).
  std::function<bool(EGraph &, const Value *, Value &)> Apply;
};

/// The set of registered primitives, with overload resolution by name and
/// argument sorts.
class PrimitiveRegistry {
public:
  /// Registers an overload; returns its id.
  uint32_t add(Primitive Prim);

  /// Resolves \p Name against the given argument sorts. Returns false if no
  /// overload matches.
  bool resolve(const std::string &Name, const std::vector<SortId> &Args,
               uint32_t &PrimId) const;

  /// Returns true if any overload with this name exists.
  bool knownName(const std::string &Name) const {
    return ByName.count(Name) != 0;
  }

  const Primitive &get(uint32_t PrimId) const { return Prims[PrimId]; }

  size_t size() const { return Prims.size(); }

  /// Drops every primitive with id >= \p Count (pop of a push/pop context;
  /// e.g. the overloads registered for a set sort declared since the push).
  void truncate(size_t Count) {
    if (Count >= Prims.size())
      return;
    for (size_t Id = Count; Id < Prims.size(); ++Id) {
      auto It = ByName.find(Prims[Id].Name);
      if (It == ByName.end())
        continue;
      std::erase_if(It->second, [Count](uint32_t P) { return P >= Count; });
      if (It->second.empty())
        ByName.erase(It);
    }
    Prims.resize(Count);
  }

private:
  std::vector<Primitive> Prims;
  std::unordered_map<std::string, std::vector<uint32_t>> ByName;
};

/// Registers the default builtin primitives (i64, f64, bool, string,
/// rational) into \p Registry. Set-sort primitives are registered lazily by
/// the EGraph when a set sort is declared.
void registerBuiltinPrimitives(PrimitiveRegistry &Registry);

} // namespace egglog

#endif // EGGLOG_CORE_PRIMITIVES_H
