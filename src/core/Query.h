//===- core/Query.h - Relational query execution ---------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes flattened conjunctive queries against the database with a
/// sort-based worst-case-optimal generic join (§5.1 "Query Engine", after
/// relational e-matching and Ngo et al. 2018). Each atom's candidate rows
/// are sorted by the query's global variable order, and variables are bound
/// one at a time by intersecting the atoms that contain them. Primitive
/// computations run as soon as their inputs are bound, pruning eagerly.
///
/// For semi-naïve evaluation (§4.3), a query can be executed with one atom
/// restricted to the delta (rows stamped at or after a bound), earlier
/// atoms restricted to old rows, and later atoms unrestricted.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_QUERY_H
#define EGGLOG_CORE_QUERY_H

#include "core/Ast.h"
#include "core/EGraph.h"

#include <functional>
#include <vector>

namespace egglog {

/// Restriction applied to one atom's rows during semi-naïve evaluation.
enum class AtomFilter : uint8_t {
  All, ///< Every live row.
  Old, ///< Live rows stamped strictly before the delta bound.
  New, ///< Live rows stamped at or after the delta bound.
};

/// Callback invoked once per substitution; the environment holds a value
/// for every query variable.
using MatchCallback = std::function<void(const std::vector<Value> &)>;

/// Executes \p Q against \p Graph. \p Filters gives a per-atom restriction
/// (it must have one entry per atom, or be empty for all-All), and
/// \p DeltaBound is the timestamp splitting Old from New.
///
/// If \p UseGenericJoin is false, a naive left-to-right nested-loop join is
/// used instead (kept for the ablation benchmark). If \p Cancel is
/// provided it is polled periodically; returning true aborts the search
/// (used to enforce run timeouts inside a single large join).
void executeQuery(EGraph &Graph, const Query &Q,
                  const std::vector<AtomFilter> &Filters, uint32_t DeltaBound,
                  const MatchCallback &Callback, bool UseGenericJoin = true,
                  const std::function<bool()> *Cancel = nullptr);

/// Convenience wrapper: runs \p Q with no delta restriction.
inline void executeQuery(EGraph &Graph, const Query &Q,
                         const MatchCallback &Callback) {
  executeQuery(Graph, Q, {}, 0, Callback);
}

} // namespace egglog

#endif // EGGLOG_CORE_QUERY_H
