//===- core/Query.h - Relational query execution ---------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes flattened conjunctive queries against the database with a
/// sort-based worst-case-optimal generic join (§5.1 "Query Engine", after
/// relational e-matching and Ngo et al. 2018). Each atom resolves to a
/// cached column index (see Index.h) sorted by the query's global variable
/// order, and variables are bound one at a time by intersecting the atoms
/// that contain them. Primitive computations run as soon as their inputs
/// are bound, pruning eagerly.
///
/// For semi-naïve evaluation (§4.3), a query can be executed with one atom
/// restricted to the delta (rows stamped at or after a bound), earlier
/// atoms restricted to old rows, and later atoms unrestricted.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_QUERY_H
#define EGGLOG_CORE_QUERY_H

#include "core/Ast.h"
#include "core/EGraph.h"
#include "core/Index.h"

#include <functional>
#include <memory>
#include <vector>

namespace egglog {

/// Callback invoked once per substitution; the environment holds a value
/// for every query variable.
using MatchCallback = std::function<void(const std::vector<Value> &)>;

/// Reusable execution context for one query. The atom shapes are analyzed
/// once at construction and the join scratch buffers persist across
/// executions, so a rule's semi-naïve delta variants and repeated engine
/// iterations run allocation-free after warm-up. The referenced Query (and
/// EGraph) must outlive the executor.
class QueryExecutor {
public:
  QueryExecutor(EGraph &Graph, const Query &Q);
  ~QueryExecutor();
  QueryExecutor(QueryExecutor &&) noexcept;
  QueryExecutor &operator=(QueryExecutor &&) noexcept;

  /// Runs one filter variant (see executeQuery below for the semantics of
  /// \p Filters and \p DeltaBound).
  void execute(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound,
               const MatchCallback &Callback, bool UseGenericJoin = true,
               const std::function<bool()> *Cancel = nullptr);

  /// Runs the full semi-naïve delta expansion (§4.3): one variant per
  /// atom, where atom j is restricted to New (stamps >= \p DeltaBound),
  /// atoms before j to Old, and atoms after j unrestricted.
  void executeDelta(uint32_t DeltaBound, const MatchCallback &Callback,
                    bool UseGenericJoin = true,
                    const std::function<bool()> *Cancel = nullptr);

  /// Like execute, but appends each match's environment (NumVars values)
  /// to \p Arena and bumps \p Count instead of invoking a callback — the
  /// engine's hot path, free of per-match indirect calls.
  void executeCollect(const std::vector<AtomFilter> &Filters,
                      uint32_t DeltaBound, std::vector<Value> &Arena,
                      size_t &Count, bool UseGenericJoin = true,
                      const std::function<bool()> *Cancel = nullptr);

  /// Arena-collecting variant of executeDelta.
  void executeDeltaCollect(uint32_t DeltaBound, std::vector<Value> &Arena,
                           size_t &Count, bool UseGenericJoin = true,
                           const std::function<bool()> *Cancel = nullptr);

  /// Phase-separated engine pre-pass (single-threaded): performs every
  /// lazy mutation the matching execute of this filter variant would
  /// otherwise trigger on the read path — index-cache builds and
  /// refreshes, stamp-partition counts, and re-canonicalization of the
  /// query's constant terms (cached on the executor) — so that, until the
  /// database is next mutated, executeCollectReadOnly with the same
  /// filters touches the database strictly read-only.
  void warm(const std::vector<AtomFilter> &Filters, uint32_t DeltaBound);

  /// Strictly read-only executeCollect: probes only the caches a prior
  /// warm() of this variant populated (asserting they are still fresh)
  /// and never canonicalizes through the union-find, so executors running
  /// concurrently over one database cannot race. The caller guarantees
  /// warm() ran with the same filters against the unchanged database and
  /// that the query's primitives are themselves read-only (the engine
  /// checks both; see Engine.cpp queryIsParallelSafe).
  void executeCollectReadOnly(const std::vector<AtomFilter> &Filters,
                              uint32_t DeltaBound, std::vector<Value> &Arena,
                              size_t &Count, bool UseGenericJoin = true,
                              const std::function<bool()> *Cancel = nullptr);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Executes \p Q against \p Graph. \p Filters gives a per-atom restriction
/// (it must have one entry per atom, or be empty for all-All), and
/// \p DeltaBound is the timestamp splitting Old from New.
///
/// If \p UseGenericJoin is false, a naive left-to-right nested-loop join is
/// used instead (kept for the ablation benchmark). If \p Cancel is
/// provided it is polled periodically; returning true aborts the search
/// (used to enforce run timeouts inside a single large join).
void executeQuery(EGraph &Graph, const Query &Q,
                  const std::vector<AtomFilter> &Filters, uint32_t DeltaBound,
                  const MatchCallback &Callback, bool UseGenericJoin = true,
                  const std::function<bool()> *Cancel = nullptr);

/// Convenience wrapper: runs \p Q with no delta restriction.
inline void executeQuery(EGraph &Graph, const Query &Q,
                         const MatchCallback &Callback) {
  executeQuery(Graph, Q, {}, 0, Callback);
}

/// Convenience wrapper for QueryExecutor::executeDelta with a one-shot
/// execution context.
void executeQueryDelta(EGraph &Graph, const Query &Q, uint32_t DeltaBound,
                       const MatchCallback &Callback,
                       bool UseGenericJoin = true,
                       const std::function<bool()> *Cancel = nullptr);

} // namespace egglog

#endif // EGGLOG_CORE_QUERY_H
