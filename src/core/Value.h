//===- core/Value.h - egglog runtime values --------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value representation. Following §4.2 of the paper, a value is
/// either an interpreted constant (i64, bool, string, rational, set, ...) or
/// an uninterpreted constant (an e-class id drawn from the global id
/// universe). Every value carries its sort tag so the database can
/// canonicalize and typecheck uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_VALUE_H
#define EGGLOG_CORE_VALUE_H

#include "support/Hashing.h"

#include <cstdint>
#include <functional>

namespace egglog {

/// Dense identifier of a sort within a SortTable.
using SortId = uint32_t;

/// Dense identifier of a declared function within an EGraph.
using FunctionId = uint32_t;

/// A runtime value: a sort tag plus a 64-bit payload. For base sorts the
/// payload is the constant itself (i64 bits, bool, interned string id,
/// interned rational id, interned set id). For user-declared sorts the
/// payload is an uninterpreted id in the global union-find.
struct Value {
  SortId Sort = 0;
  uint64_t Bits = 0;

  Value() = default;
  Value(SortId Sort, uint64_t Bits) : Sort(Sort), Bits(Bits) {}

  bool operator==(const Value &Other) const {
    return Sort == Other.Sort && Bits == Other.Bits;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Arbitrary total order used for deterministic canonicalization.
  bool operator<(const Value &Other) const {
    if (Sort != Other.Sort)
      return Sort < Other.Sort;
    return Bits < Other.Bits;
  }

  size_t hash() const {
    return hashMix((static_cast<uint64_t>(Sort) << 1) ^ hashMix(Bits));
  }
};

/// Hash functor for use in unordered containers.
struct ValueHash {
  size_t operator()(const Value &V) const { return V.hash(); }
};

} // namespace egglog

#endif // EGGLOG_CORE_VALUE_H
