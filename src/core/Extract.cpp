//===- core/Extract.cpp - Term extraction ------------------------------------===//
//
// Part of egglog-cpp. See Extract.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"

#include <limits>
#include <unordered_map>

using namespace egglog;

std::string egglog::formatValue(EGraph &Graph, Value V) {
  switch (Graph.sorts().kind(V.Sort)) {
  case SortKind::Unit:
    return "()";
  case SortKind::Bool:
    return V.Bits ? "true" : "false";
  case SortKind::I64:
    return std::to_string(Graph.valueToI64(V));
  case SortKind::F64:
    return std::to_string(Graph.valueToF64(V));
  case SortKind::String:
    return "\"" + Graph.valueToString(V) + "\"";
  case SortKind::Rational: {
    const Rational &R = Graph.valueToRational(V);
    if (R.numerator().fitsInt64() && R.denominator().fitsInt64())
      return "(rational " + R.numerator().toString() + " " +
             R.denominator().toString() + ")";
    // Oversized parts round-trip through the string-based constructor.
    return "(rational-big \"" + R.numerator().toString() + "\" \"" +
           R.denominator().toString() + "\")";
  }
  case SortKind::Set: {
    std::string Result = "(set";
    for (Value Element : Graph.valueToSet(V))
      Result += " " + formatValue(Graph, Element);
    return Result + ")";
  }
  case SortKind::User:
    return "#" + std::to_string(V.Bits);
  }
  return "?";
}

namespace {

constexpr int64_t Infinity = std::numeric_limits<int64_t>::max();

int64_t saturatingAdd(int64_t A, int64_t B) {
  if (A == Infinity || B == Infinity || A > Infinity - B)
    return Infinity;
  return A + B;
}

/// Shared cost-fixpoint state: the cheapest known cost for each canonical
/// id value, and the (function, row) pair that achieves it.
struct CostMap {
  std::unordered_map<Value, std::pair<int64_t, std::pair<FunctionId, size_t>>,
                     ValueHash>
      Best;

  int64_t costOf(EGraph &Graph, Value V) const {
    if (!Graph.sorts().isIdSort(V.Sort))
      return 1;
    auto It = Best.find(Graph.canonicalize(V));
    return It == Best.end() ? Infinity : It->second.first;
  }
};

/// Runs the bottom-up cost fixpoint over all id-producing functions.
CostMap computeCosts(EGraph &Graph) {
  CostMap Costs;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FunctionId Func = 0; Func < Graph.numFunctions(); ++Func) {
      const FunctionInfo &Info = Graph.function(Func);
      if (!Graph.sorts().isIdSort(Info.Decl.OutSort))
        continue;
      const Table &T = *Info.Storage;
      unsigned NumKeys = Info.numKeys();
      for (size_t Row : T.liveRows()) {
        const Value *Cells = T.row(Row);
        int64_t Total = Info.Decl.Cost;
        for (unsigned I = 0; I < NumKeys && Total != Infinity; ++I)
          Total = saturatingAdd(Total, Costs.costOf(Graph, Cells[I]));
        if (Total == Infinity)
          continue;
        Value Out = Graph.canonicalize(Cells[NumKeys]);
        auto It = Costs.Best.find(Out);
        if (It == Costs.Best.end() || Total < It->second.first) {
          Costs.Best[Out] = {Total, {Func, Row}};
          Changed = true;
        }
      }
    }
  }
  return Costs;
}

std::string buildTerm(EGraph &Graph, const CostMap &Costs, Value V) {
  if (!Graph.sorts().isIdSort(V.Sort))
    return formatValue(Graph, V);
  auto It = Costs.Best.find(Graph.canonicalize(V));
  if (It == Costs.Best.end())
    return "<no-term>";
  auto [Func, Row] = It->second.second;
  const FunctionInfo &Info = Graph.function(Func);
  const Value *Cells = Info.Storage->row(Row);
  if (Info.numKeys() == 0)
    return Info.Decl.Name;
  std::string Result = "(" + Info.Decl.Name;
  for (unsigned I = 0; I < Info.numKeys(); ++I)
    Result += " " + buildTerm(Graph, Costs, Cells[I]);
  return Result + ")";
}

} // namespace

std::optional<ExtractedTerm> egglog::extractTerm(EGraph &Graph, Value V) {
  if (!Graph.sorts().isIdSort(V.Sort))
    return ExtractedTerm{formatValue(Graph, V), 1};
  CostMap Costs = computeCosts(Graph);
  Value Canonical = Graph.canonicalize(V);
  auto It = Costs.Best.find(Canonical);
  if (It == Costs.Best.end())
    return std::nullopt;
  return ExtractedTerm{buildTerm(Graph, Costs, Canonical), It->second.first};
}

std::vector<ExtractedTerm> egglog::extractVariants(EGraph &Graph, Value V,
                                                   size_t MaxVariants) {
  std::vector<ExtractedTerm> Variants;
  if (!Graph.sorts().isIdSort(V.Sort)) {
    Variants.push_back(ExtractedTerm{formatValue(Graph, V), 1});
    return Variants;
  }
  CostMap Costs = computeCosts(Graph);
  Value Canonical = Graph.canonicalize(V);

  // Gather every entry producing this class, cheapest first.
  struct Entry {
    int64_t Cost;
    FunctionId Func;
    size_t Row;
  };
  std::vector<Entry> Entries;
  for (FunctionId Func = 0; Func < Graph.numFunctions(); ++Func) {
    const FunctionInfo &Info = Graph.function(Func);
    if (!Graph.sorts().isIdSort(Info.Decl.OutSort))
      continue;
    const Table &T = *Info.Storage;
    unsigned NumKeys = Info.numKeys();
    for (size_t Row : T.liveRows()) {
      const Value *Cells = T.row(Row);
      if (Graph.canonicalize(Cells[NumKeys]) != Canonical)
        continue;
      int64_t Total = Info.Decl.Cost;
      for (unsigned I = 0; I < NumKeys && Total != Infinity; ++I)
        Total = saturatingAdd(Total, Costs.costOf(Graph, Cells[I]));
      if (Total != Infinity)
        Entries.push_back(Entry{Total, Func, Row});
    }
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Cost < B.Cost; });

  for (const Entry &E : Entries) {
    if (Variants.size() >= MaxVariants)
      break;
    const FunctionInfo &Info = Graph.function(E.Func);
    const Value *Cells = Info.Storage->row(E.Row);
    std::string Text;
    if (Info.numKeys() == 0) {
      Text = Info.Decl.Name;
    } else {
      Text = "(" + Info.Decl.Name;
      for (unsigned I = 0; I < Info.numKeys(); ++I)
        Text += " " + buildTerm(Graph, Costs, Cells[I]);
      Text += ")";
    }
    // Skip duplicates (distinct rows can render identically after
    // canonicalization).
    bool Duplicate = false;
    for (const ExtractedTerm &Seen : Variants)
      Duplicate |= Seen.Text == Text;
    if (!Duplicate)
      Variants.push_back(ExtractedTerm{std::move(Text), E.Cost});
  }
  return Variants;
}

std::optional<int64_t> egglog::extractCost(EGraph &Graph, Value V) {
  if (!Graph.sorts().isIdSort(V.Sort))
    return 1;
  CostMap Costs = computeCosts(Graph);
  auto It = Costs.Best.find(Graph.canonicalize(V));
  if (It == Costs.Best.end())
    return std::nullopt;
  return It->second.first;
}
