//===- core/Extract.cpp - Term extraction ------------------------------------===//
//
// Part of egglog-cpp. See Extract.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Extract.h"

#include "support/NumberFormat.h"

#include <algorithm>
#include <cassert>
#include <tuple>
#include <unordered_set>

using namespace egglog;

std::string egglog::formatValue(EGraph &Graph, Value V) {
  switch (Graph.sorts().kind(V.Sort)) {
  case SortKind::Unit:
    return "()";
  case SortKind::Bool:
    return V.Bits ? "true" : "false";
  case SortKind::I64:
    return std::to_string(Graph.valueToI64(V));
  case SortKind::F64:
    return formatF64(Graph.valueToF64(V));
  case SortKind::String:
    return "\"" + Graph.valueToString(V) + "\"";
  case SortKind::Rational: {
    const Rational &R = Graph.valueToRational(V);
    if (R.numerator().fitsInt64() && R.denominator().fitsInt64())
      return "(rational " + R.numerator().toString() + " " +
             R.denominator().toString() + ")";
    // Oversized parts round-trip through the string-based constructor.
    return "(rational-big \"" + R.numerator().toString() + "\" \"" +
           R.denominator().toString() + "\")";
  }
  case SortKind::Set: {
    std::string Result = "(set";
    for (Value Element : Graph.valueToSet(V))
      Result += " " + formatValue(Graph, Element);
    return Result + ")";
  }
  case SortKind::User:
    return "#" + std::to_string(V.Bits);
  }
  return "?";
}

namespace {

constexpr int64_t Infinity = ExtractIndex::Infinity;

int64_t saturatingAdd(int64_t A, int64_t B) {
  if (A == Infinity || B == Infinity || A > Infinity - B)
    return Infinity;
  return A + B;
}

} // namespace

//===----------------------------------------------------------------------===
// ExtractIndex: incremental cost fixpoint
//===----------------------------------------------------------------------===

bool ExtractIndex::participates(const EGraph &Graph, size_t Func) const {
  return Graph.sorts().isIdSort(Graph.function(Func).Decl.OutSort);
}

void ExtractIndex::ensureIdCapacity(size_t Ids) {
  if (Best.size() >= Ids)
    return;
  Best.resize(Ids);
  UseHead.resize(Ids, -1);
  UseTail.resize(Ids, -1);
  ProdHead.resize(Ids, -1);
  ProdTail.resize(Ids, -1);
  QueuePending.resize(Ids, 0);
}

void ExtractIndex::pushNode(std::vector<int32_t> &Head,
                            std::vector<int32_t> &Tail, uint64_t Id,
                            uint32_t Func, uint32_t Row) {
  int32_t Node = static_cast<int32_t>(Pool.size());
  Pool.push_back(ChainNode{Head[Id], Func, Row});
  Head[Id] = Node;
  if (Tail[Id] < 0)
    Tail[Id] = Node;
}

void ExtractIndex::foldChain(std::vector<int32_t> &Head,
                             std::vector<int32_t> &Tail, uint64_t Loser,
                             uint64_t Winner) {
  if (Head[Loser] < 0)
    return;
  if (Head[Winner] < 0) {
    Head[Winner] = Head[Loser];
    Tail[Winner] = Tail[Loser];
  } else {
    Pool[Tail[Winner]].Next = Head[Loser];
    Tail[Winner] = Tail[Loser];
  }
  Head[Loser] = -1;
  Tail[Loser] = -1;
}

void ExtractIndex::consider(EGraph &Graph, uint32_t Func, uint32_t Row) {
  const FunctionInfo &Info = Graph.function(Func);
  const Table &T = *Info.Storage;
  // Chains may hold rows that died since they were appended (rebuild
  // rewrites, updates); their live twins are scanned separately.
  if (!T.isLive(Row))
    return;
  ++S.RowsConsidered;
  unsigned NumKeys = Info.numKeys();
  int64_t Total = Info.Decl.Cost;
  for (unsigned I = 0; I < NumKeys && Total != Infinity; ++I)
    Total = saturatingAdd(Total, costOf(Graph, T.cell(Row, I)));
  if (Total == Infinity)
    return;
  uint64_t Out = Graph.unionFind().find(T.output(Row).Bits);
  Entry &E = Best[Out];
  if (Total < E.Cost) {
    E = Entry{Total, Func, Row};
    enqueue(Out);
  }
}

bool ExtractIndex::foldMerges(EGraph &Graph) {
  const std::vector<uint64_t> &Log = Graph.unionFind().mergeLog();
  for (size_t I = LogPos; I < Log.size(); ++I) {
    uint64_t Loser = Log[I];
    uint64_t Winner = Graph.unionFind().find(Loser);
    Entry &L = Best[Loser];
    Entry &W = Best[Winner];
    // A fold of two classes with EQUAL finite costs is the one move that
    // can leave a best row referencing its own merged class (directly or
    // through a zero-cost path), which would make rendering diverge:
    // consider()'s strict-decrease rule never adopts such a row, and a
    // strict inequality here discards the only entry whose children could
    // reach the other half (a path loser->winner forces cost(loser) >=
    // cost(winner) and vice versa, so a cycle needs the tie). Bail out to
    // a from-scratch rebuild, whose adoptions are provably acyclic.
    if (L.Cost == W.Cost && W.Cost != Infinity)
      return false;
    foldChain(UseHead, UseTail, Loser, Winner);
    foldChain(ProdHead, ProdTail, Loser, Winner);
    if (L.Cost < W.Cost)
      W = L;
    L = Entry{};
    // The merged class's cost is the min of the two halves, so rows using
    // either half as a child may have become cheaper: requeue the winner
    // (its chain now holds both halves' users). No-op reconsiderations are
    // filtered by the strict-decrease check in consider().
    if (W.Cost != Infinity)
      enqueue(Winner);
    ++S.MergesFolded;
  }
  LogPos = Log.size();
  return true;
}

bool ExtractIndex::scanSuffix(EGraph &Graph, size_t Func) {
  const FunctionInfo &Info = Graph.function(Func);
  const Table &T = *Info.Storage;
  TableState &St = Tables[Func];
  size_t Rows = T.rowCount();
  unsigned NumKeys = Info.numKeys();
  const UnionFind &UF = Graph.unionFind();
  uint32_t F = static_cast<uint32_t>(Func);
  for (size_t Row = St.Scanned; Row < Rows; ++Row) {
    if (!T.isLive(Row))
      continue;
    if (!Graph.governorCheckpoint("extract.scan"))
      return false;
    for (unsigned I = 0; I < NumKeys; ++I) {
      Value Key = T.cell(Row, I);
      if (Graph.sorts().isIdSort(Key.Sort))
        pushNode(UseHead, UseTail, UF.find(Key.Bits), F,
                 static_cast<uint32_t>(Row));
    }
    pushNode(ProdHead, ProdTail, UF.find(T.output(Row).Bits), F,
             static_cast<uint32_t>(Row));
    consider(Graph, F, static_cast<uint32_t>(Row));
  }
  St.Scanned = Rows;
  St.Version = T.version();
  St.Resets = T.resets();
  return true;
}

bool ExtractIndex::drainQueue(EGraph &Graph) {
  while (!Queue.empty()) {
    uint64_t Class = Queue.back();
    Queue.pop_back();
    QueuePending[Class] = 0;
    for (int32_t N = UseHead[Class]; N >= 0; N = Pool[N].Next) {
      if (!Graph.governorCheckpoint("extract.drain"))
        return false;
      consider(Graph, Pool[N].Func, Pool[N].Row);
    }
  }
  return true;
}

void ExtractIndex::rebuildFromScratch(EGraph &Graph) {
  ++S.FullRebuilds;
  Valid = false;
  TermMemo.clear();
  Pool.clear();
  Best.clear();
  UseHead.clear();
  UseTail.clear();
  ProdHead.clear();
  ProdTail.clear();
  Queue.clear();
  QueuePending.clear();
  Tables.assign(Graph.numFunctions(), TableState{});
  LogPos = Graph.unionFind().mergeLog().size();
  ensureIdCapacity(Graph.unionFind().size());
  for (size_t F = 0; F < Tables.size(); ++F)
    if (participates(Graph, F))
      if (!scanSuffix(Graph, F))
        return; // governor tripped: leave invalid, next refresh restarts
  if (!drainQueue(Graph))
    return;
  Valid = true;
}

void ExtractIndex::refresh(EGraph &Graph) {
  ++S.Refreshes;
  // Extraction is specified over a rebuilt database (§3.4); this also
  // ensures every cell the fixpoint reads is canonical.
  if (Graph.needsRebuild())
    Graph.rebuild();
  if (Graph.failed())
    return; // entry points bail out on a failed graph

  bool Scratch = !Valid || Graph.numFunctions() < Tables.size();
  if (!Scratch) {
    // A restore()/clear() that bypassed EGraph::restore's invalidate hook
    // (resets moved), or any other shrink: the append-only assumption the
    // suffix scan relies on is gone.
    for (size_t F = 0; F < Tables.size() && !Scratch; ++F) {
      const Table &T = *Graph.function(F).Storage;
      if (participates(Graph, F) &&
          (T.resets() != Tables[F].Resets || T.rowCount() < Tables[F].Scanned))
        Scratch = true;
    }
  }
  if (Scratch) {
    rebuildFromScratch(Graph);
    return;
  }

  Tables.resize(Graph.numFunctions());
  bool Dirty = Graph.unionFind().mergeLog().size() != LogPos;
  for (size_t F = 0; F < Tables.size() && !Dirty; ++F)
    if (participates(Graph, F) &&
        Graph.function(F).Storage->version() != Tables[F].Version)
      Dirty = true;
  if (!Dirty) {
    ++S.WarmHits;
    return;
  }

  TermMemo.clear();
  ensureIdCapacity(Graph.unionFind().size());
  if (!foldMerges(Graph)) {
    // A tied-cost fold: the partially folded state is discarded wholesale
    // (rebuildFromScratch clears every chain and entry).
    rebuildFromScratch(Graph);
    return;
  }
  ++S.Incrementals;
  for (size_t F = 0; F < Tables.size(); ++F)
    if (participates(Graph, F))
      if (!scanSuffix(Graph, F)) {
        Valid = false;
        return;
      }
  if (!drainQueue(Graph))
    Valid = false;
}

int64_t ExtractIndex::costOf(const EGraph &Graph, Value V) const {
  if (!Graph.sorts().isIdSort(V.Sort))
    return 1;
  uint64_t Root = Graph.unionFind().find(V.Bits);
  return Root < Best.size() ? Best[Root].Cost : Infinity;
}

const ExtractIndex::Entry *ExtractIndex::best(const EGraph &Graph,
                                              Value V) const {
  if (!Graph.sorts().isIdSort(V.Sort))
    return nullptr;
  uint64_t Root = Graph.unionFind().find(V.Bits);
  if (Root >= Best.size() || Best[Root].Cost == Infinity)
    return nullptr;
  return &Best[Root];
}

void ExtractIndex::producers(
    const EGraph &Graph, Value V,
    std::vector<std::pair<FunctionId, uint32_t>> &Out) const {
  if (!Graph.sorts().isIdSort(V.Sort))
    return;
  uint64_t Root = Graph.unionFind().find(V.Bits);
  if (Root >= ProdHead.size())
    return;
  for (int32_t N = ProdHead[Root]; N >= 0; N = Pool[N].Next)
    if (Graph.function(Pool[N].Func).Storage->isLive(Pool[N].Row))
      Out.emplace_back(Pool[N].Func, Pool[N].Row);
}

//===----------------------------------------------------------------------===
// Term building (iterative; no recursion, single output buffer)
//===----------------------------------------------------------------------===

namespace {

/// One pending unit of rendering work: either a value to render (prefixed
/// with a space when it is a child position) or a closing parenthesis.
struct RenderItem {
  Value V;
  bool CloseParen = false;
  bool LeadingSpace = false;
};

/// Emits the head of one row and stacks its children (shared by the main
/// render loop and variant seeding).
void pushRow(EGraph &Graph, FunctionId Func, uint32_t Row,
             std::vector<RenderItem> &Stack, std::string &Out) {
  const FunctionInfo &Info = Graph.function(Func);
  if (Info.numKeys() == 0) {
    Out += Info.Decl.Name;
    return;
  }
  Out += '(';
  Out += Info.Decl.Name;
  Stack.push_back(RenderItem{Value(), /*CloseParen=*/true, false});
  const Table &T = *Info.Storage;
  for (unsigned I = Info.numKeys(); I > 0; --I)
    Stack.push_back(RenderItem{T.cell(Row, I - 1), false,
                               /*LeadingSpace=*/true});
}

/// Emits the best term of each stacked value into \p Out. The stack is
/// explicit, so term depth is bounded by memory, not the C++ stack, and
/// everything appends to one buffer (no quadratic concatenation). The
/// stack itself is caller-provided scratch, reused across variants.
void renderStack(EGraph &Graph, const ExtractIndex &Idx,
                 std::vector<RenderItem> &Stack, std::string &Out) {
  while (!Stack.empty()) {
    RenderItem Item = Stack.back();
    Stack.pop_back();
    if (Item.CloseParen) {
      Out += ')';
      continue;
    }
    if (Item.LeadingSpace)
      Out += ' ';
    if (!Graph.sorts().isIdSort(Item.V.Sort)) {
      Out += formatValue(Graph, Item.V);
      continue;
    }
    const ExtractIndex::Entry *E = Idx.best(Graph, Item.V);
    if (!E) {
      Out += "<no-term>";
      continue;
    }
    pushRow(Graph, E->Func, E->Row, Stack, Out);
  }
}

/// Renders one specific row (a variant), children completed with the
/// cheapest terms of their classes.
void renderRow(EGraph &Graph, const ExtractIndex &Idx, FunctionId Func,
               uint32_t Row, std::vector<RenderItem> &Stack,
               std::string &Out) {
  Stack.clear();
  pushRow(Graph, Func, Row, Stack, Out);
  renderStack(Graph, Idx, Stack, Out);
}

void renderValue(EGraph &Graph, const ExtractIndex &Idx, Value V,
                 std::vector<RenderItem> &Stack, std::string &Out) {
  Stack.clear();
  Stack.push_back(RenderItem{V, false, false});
  renderStack(Graph, Idx, Stack, Out);
}

} // namespace

int64_t ExtractIndex::dagCostFromRow(const EGraph &Graph, FunctionId Func,
                                     uint32_t Row) const {
  // The seed's own class is deliberately NOT pre-marked: for extractTerm
  // the seed is its class's best row and the best-row graph is acyclic
  // (a row never strictly beats a cost it is derived from), so the class
  // is unreachable anyway; for a variant row, a child re-entering the
  // seed's class renders the class's best term and must be charged.
  if (DagVisited.size() < Graph.unionFind().size())
    DagVisited.resize(Graph.unionFind().size(), 0);
  if (++DagEpoch == 0) { // stamp wrap: start a fresh scratch
    std::fill(DagVisited.begin(), DagVisited.end(), 0);
    DagEpoch = 1;
  }
  std::vector<uint64_t> Pending;
  int64_t Total = 0;
  auto AddRow = [&](FunctionId F, uint32_t R) {
    const FunctionInfo &Info = Graph.function(F);
    Total = saturatingAdd(Total, Info.Decl.Cost);
    for (unsigned I = 0; I < Info.numKeys(); ++I) {
      Value Cell = Info.Storage->cell(R, I);
      if (!Graph.sorts().isIdSort(Cell.Sort)) {
        Total = saturatingAdd(Total, 1);
        continue;
      }
      uint64_t Class = Graph.unionFind().find(Cell.Bits);
      if (DagVisited[Class] != DagEpoch) {
        DagVisited[Class] = DagEpoch;
        Pending.push_back(Class);
      }
    }
  };
  AddRow(Func, Row);
  while (!Pending.empty()) {
    uint64_t Class = Pending.back();
    Pending.pop_back();
    // Classes reachable from a finite-cost term always have a finite-cost
    // entry themselves; the guard is defensive.
    const Entry *E = bestClass(Class);
    if (!E)
      return Infinity;
    AddRow(E->Func, E->Row);
  }
  return Total;
}

//===----------------------------------------------------------------------===
// Public entry points
//===----------------------------------------------------------------------===

std::optional<ExtractedTerm> egglog::extractTerm(EGraph &Graph, Value V) {
  if (!Graph.sorts().isIdSort(V.Sort))
    return ExtractedTerm{formatValue(Graph, V), 1, 1};
  ExtractIndex &Idx = Graph.extractIndex();
  Idx.refresh(Graph);
  if (Graph.failed())
    return std::nullopt;
  uint64_t Root = Graph.unionFind().find(V.Bits);
  if (const ExtractedTerm *Memo = Idx.memoized(Root))
    return *Memo;
  const ExtractIndex::Entry *E = Idx.best(Graph, V);
  if (!E)
    return std::nullopt;
  ExtractedTerm Out;
  Out.Cost = E->Cost;
  Out.DagCost = Idx.dagCostFromRow(Graph, E->Func, E->Row);
  std::vector<RenderItem> Stack;
  renderValue(Graph, Idx, V, Stack, Out.Text);
  Idx.memoize(Root, Out);
  return Out;
}

std::optional<ExtractedTerm> egglog::extractTermDag(EGraph &Graph, Value V) {
  std::optional<ExtractedTerm> Term = extractTerm(Graph, V);
  if (Term)
    Term->Cost = Term->DagCost;
  return Term;
}

std::optional<int64_t> egglog::extractCost(EGraph &Graph, Value V) {
  if (!Graph.sorts().isIdSort(V.Sort))
    return 1;
  ExtractIndex &Idx = Graph.extractIndex();
  Idx.refresh(Graph);
  if (Graph.failed())
    return std::nullopt;
  const ExtractIndex::Entry *E = Idx.best(Graph, V);
  if (!E)
    return std::nullopt;
  return E->Cost;
}

std::vector<ExtractedTerm> egglog::extractVariants(EGraph &Graph, Value V,
                                                   size_t MaxVariants) {
  std::vector<ExtractedTerm> Variants;
  if (!Graph.sorts().isIdSort(V.Sort)) {
    Variants.push_back(ExtractedTerm{formatValue(Graph, V), 1, 1});
    return Variants;
  }
  ExtractIndex &Idx = Graph.extractIndex();
  Idx.refresh(Graph);
  if (Graph.failed())
    return Variants;

  // Every live entry producing this class, via the producer chains (no
  // whole-database sweep), completed with cheapest-cost children.
  struct Candidate {
    int64_t Cost;
    FunctionId Func;
    uint32_t Row;
  };
  std::vector<std::pair<FunctionId, uint32_t>> Rows;
  Idx.producers(Graph, V, Rows);
  std::vector<Candidate> Candidates;
  Candidates.reserve(Rows.size());
  for (auto [Func, Row] : Rows) {
    const FunctionInfo &Info = Graph.function(Func);
    int64_t Total = Info.Decl.Cost;
    for (unsigned I = 0; I < Info.numKeys() && Total != Infinity; ++I)
      Total = saturatingAdd(Total, Idx.costOf(Graph, Info.Storage->cell(Row, I)));
    if (Total != Infinity)
      Candidates.push_back(Candidate{Total, Func, Row});
  }
  // Cheapest first; (Func, Row) tiebreak keeps the order deterministic so
  // repeated calls with growing MaxVariants return consistent prefixes.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              return std::tie(A.Cost, A.Func, A.Row) <
                     std::tie(B.Cost, B.Func, B.Row);
            });

  // Distinct rows can render identically after canonicalization; a hash
  // set keeps dedup linear in the rendered text. One scratch stack serves
  // every rendering.
  std::unordered_set<std::string> Seen;
  std::vector<RenderItem> Stack;
  for (const Candidate &C : Candidates) {
    if (Variants.size() >= MaxVariants)
      break;
    std::string Text;
    renderRow(Graph, Idx, C.Func, C.Row, Stack, Text);
    if (!Seen.insert(Text).second)
      continue;
    int64_t Dag = Idx.dagCostFromRow(Graph, C.Func, C.Row);
    Variants.push_back(ExtractedTerm{std::move(Text), C.Cost, Dag});
  }
  return Variants;
}

std::unordered_map<uint64_t, int64_t>
egglog::extractCostsReference(EGraph &Graph) {
  std::unordered_map<uint64_t, int64_t> Costs;
  auto CostOf = [&](Value V) -> int64_t {
    if (!Graph.sorts().isIdSort(V.Sort))
      return 1;
    auto It = Costs.find(Graph.unionFind().find(V.Bits));
    return It == Costs.end() ? Infinity : It->second;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FunctionId Func = 0; Func < Graph.numFunctions(); ++Func) {
      const FunctionInfo &Info = Graph.function(Func);
      if (!Graph.sorts().isIdSort(Info.Decl.OutSort))
        continue;
      const Table &T = *Info.Storage;
      unsigned NumKeys = Info.numKeys();
      for (size_t Row : T.liveRows()) {
        int64_t Total = Info.Decl.Cost;
        for (unsigned I = 0; I < NumKeys && Total != Infinity; ++I)
          Total = saturatingAdd(Total, CostOf(T.cell(Row, I)));
        if (Total == Infinity)
          continue;
        uint64_t Out = Graph.unionFind().find(T.output(Row).Bits);
        auto It = Costs.find(Out);
        if (It == Costs.end() || Total < It->second) {
          Costs[Out] = Total;
          Changed = true;
        }
      }
    }
  }
  return Costs;
}
