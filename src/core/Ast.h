//===- core/Ast.h - Typed rule and action representation -------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed internal representation produced by the typechecker from the
/// surface s-expression syntax (§3). A rule is a flattened conjunctive
/// query (function atoms plus primitive computations) and a list of
/// actions, matching the "query and actions" reading of egglog rules.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_CORE_AST_H
#define EGGLOG_CORE_AST_H

#include "core/Value.h"

#include <string>
#include <vector>

namespace egglog {

/// Dense identifier of a ruleset within an Engine. Ruleset 0 is the default
/// ruleset that unannotated rules join and that bare (run ...) executes.
using RulesetId = uint32_t;

/// A typed expression tree used in actions, merge expressions, and default
/// expressions.
struct TypedExpr {
  enum class Kind {
    Var,      ///< A rule variable (Index is the variable slot).
    Lit,      ///< A constant (Lit holds the value).
    FuncCall, ///< A call to a declared egglog function (get-or-default).
    PrimCall, ///< A call to a builtin primitive.
  };

  Kind ExprKind = Kind::Lit;
  SortId Type = 0;
  /// Variable slot, FunctionId, or primitive id depending on ExprKind.
  uint32_t Index = 0;
  Value Literal;
  std::vector<TypedExpr> Args;

  static TypedExpr makeVar(uint32_t Slot, SortId Type) {
    TypedExpr E;
    E.ExprKind = Kind::Var;
    E.Index = Slot;
    E.Type = Type;
    return E;
  }
  static TypedExpr makeLit(Value V) {
    TypedExpr E;
    E.ExprKind = Kind::Lit;
    E.Literal = V;
    E.Type = V.Sort;
    return E;
  }
  static TypedExpr makeCall(Kind K, uint32_t Index, SortId Type,
                            std::vector<TypedExpr> Args) {
    TypedExpr E;
    E.ExprKind = K;
    E.Index = Index;
    E.Type = Type;
    E.Args = std::move(Args);
    return E;
  }
};

/// Either a rule variable slot or a constant; the leaves of flattened
/// query atoms.
struct VarOrConst {
  bool IsVar = false;
  uint32_t Var = 0;
  Value Const;

  static VarOrConst makeVar(uint32_t Slot) {
    VarOrConst T;
    T.IsVar = true;
    T.Var = Slot;
    return T;
  }
  static VarOrConst makeConst(Value V) {
    VarOrConst T;
    T.IsVar = false;
    T.Const = V;
    return T;
  }
};

/// One flattened atom of a query: function \p Func applied to the first
/// numKeys() terms, producing the last term. From the relational view this
/// is a relation of arity numKeys()+1.
struct QueryAtom {
  FunctionId Func = 0;
  std::vector<VarOrConst> Terms;
};

/// A primitive evaluation scheduled inside a query. Once all argument
/// variables are bound, the primitive runs; if Out is a constant the result
/// must equal it (filter), and if Out is an unbound variable the result is
/// bound to it (computation).
struct PrimComputation {
  uint32_t Prim = 0;
  std::vector<VarOrConst> Args;
  VarOrConst Out;
};

/// A flattened conjunctive query (the body of a rule).
struct Query {
  uint32_t NumVars = 0;
  std::vector<SortId> VarSorts;
  std::vector<QueryAtom> Atoms;
  std::vector<PrimComputation> Prims;
};

/// One action in a rule head (or a top-level command action).
struct Action {
  enum class Kind {
    Let,    ///< Bind variable Var to the value of Expr.
    Set,    ///< (set (f args...) value): Func, Args, Expr = value.
    Union,  ///< (union a b): Expr, Expr2.
    Panic,  ///< Abort evaluation with Message.
    Eval,   ///< Evaluate Expr for its side effects (term insertion).
    Delete, ///< (delete (f args...)): remove the entry for the key tuple.
  };

  Kind ActKind = Kind::Eval;
  FunctionId Func = 0;
  uint32_t Var = 0;
  std::vector<TypedExpr> Args;
  TypedExpr Expr;
  TypedExpr Expr2;
  std::string Message;
};

/// A complete rule: when the query matches, run the actions under the
/// resulting substitution.
struct Rule {
  std::string Name;
  Query Body;
  std::vector<Action> Actions;
  /// Total variable slots (query variables followed by action lets).
  uint32_t NumSlots = 0;
  /// The ruleset this rule belongs to; only runs that select this ruleset
  /// search the rule.
  RulesetId Ruleset = 0;
  /// Source span of the defining form (1-based; 0 = built programmatically)
  /// and the source-unit label active when the rule was declared, so static
  /// analysis diagnostics point at the rule head.
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Unit;
  /// Surface name of each variable slot, indexed by slot; empty string for
  /// compiler-introduced slots. May be shorter than NumSlots (treat missing
  /// entries as unnamed) and is empty for rules built programmatically.
  std::vector<std::string> VarNames;
};

/// A ground fact to verify with (check ...): either that a term is present
/// in the database, or that two terms evaluate to equal values.
struct CheckFact {
  enum class Kind { Present, Equal, NotEqual };
  Kind FactKind = Kind::Present;
  TypedExpr Lhs;
  TypedExpr Rhs;
};

/// A composable run schedule (the (run-schedule ...) command): the leaves
/// run one ruleset for a bounded number of iterations, and the combinators
/// sequence, repeat, and saturate sub-schedules. Interpreted by
/// Engine::runSchedule.
struct Schedule {
  enum class Kind {
    Run,      ///< Run Ruleset for up to Times iterations.
    Seq,      ///< Run Children in order.
    Repeat,   ///< Run Children in order, Times times over.
    Saturate, ///< Run Children in order until a whole pass changes nothing.
  };

  Kind ScheduleKind = Kind::Run;
  RulesetId Ruleset = 0;
  /// Iteration count for Run, repetition count for Repeat.
  unsigned Times = 1;
  std::vector<Schedule> Children;
  /// Run only: stop early once every fact holds (the :until clause).
  std::vector<CheckFact> Until;

  static Schedule makeRun(RulesetId Ruleset, unsigned Times) {
    Schedule S;
    S.ScheduleKind = Kind::Run;
    S.Ruleset = Ruleset;
    S.Times = Times;
    return S;
  }
  static Schedule makeCombinator(Kind K, std::vector<Schedule> Children,
                                 unsigned Times = 1) {
    Schedule S;
    S.ScheduleKind = K;
    S.Children = std::move(Children);
    S.Times = Times;
    return S;
  }
};

} // namespace egglog

#endif // EGGLOG_CORE_AST_H
