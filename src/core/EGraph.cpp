//===- core/EGraph.cpp - The egglog database -------------------------------===//
//
// Part of egglog-cpp. See EGraph.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/EGraph.h"

#include "core/ApplyStage.h"
#include "core/Extract.h"
#include "support/FailPoints.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

using namespace egglog;

namespace {

/// Pops a scratch-stack frame on scope exit, whatever the return path.
struct ScratchFrame {
  std::vector<Value> &Stack;
  size_t Base;

  ScratchFrame(std::vector<Value> &Stack) : Stack(Stack), Base(Stack.size()) {}
  ~ScratchFrame() { Stack.resize(Base); }
  /// First value of the frame. Recomputed from the base index on each call
  /// because nested frames can reallocate the stack.
  Value *data() { return Stack.data() + Base; }
};

} // namespace

EGraph::EGraph() { registerBuiltinPrimitives(Prims); }

// Out of line: ExtractIndex is incomplete in the header.
EGraph::~EGraph() = default;

ExtractIndex &EGraph::extractIndex() {
  if (!ExtractIdx) {
    // The index folds merges from the union-find's log; recording starts
    // here (earlier merges are covered by the initial scratch rebuild).
    UF.enableMergeLog();
    ExtractIdx = std::make_unique<ExtractIndex>();
  }
  return *ExtractIdx;
}

//===----------------------------------------------------------------------===
// Sorts and functions
//===----------------------------------------------------------------------===

SortId EGraph::declareSort(const std::string &Name) {
  return SortsTable.declareUserSort(Name);
}

SortId EGraph::declareSetSort(const std::string &Name, SortId Element) {
  SortId Id = SortsTable.declareSetSort(Name, Element);
  registerSetPrimitives(Id);
  return Id;
}

FunctionId EGraph::declareFunction(FunctionDecl Decl) {
  EGGLOG_FAILPOINT("egraph.declare");
  assert(FunctionNames.find(Decl.Name) == FunctionNames.end() &&
         "function redeclared");
  // Negative costs would make the extraction fixpoint non-monotone (and
  // defeat saturatingAdd's overflow guard); the frontend rejects them with
  // a diagnostic, this is the API-level backstop.
  assert(Decl.Cost >= 0 && "negative extraction cost");
  FunctionId Id = static_cast<FunctionId>(Functions.size());
  auto Info = std::make_unique<FunctionInfo>();
  Info->Storage = std::make_unique<Table>(Decl.ArgSorts.size());
  Info->Decl = std::move(Decl);

  // Classify columns for the incremental rebuild: id-sort columns feed the
  // table's occurrence index; container columns that (transitively) reach
  // an id sort can hide merged ids from it and force the sweep fallback.
  // Columns of immutable base values need neither.
  std::vector<unsigned> IdCols;
  unsigned NumKeys = Info->Decl.ArgSorts.size();
  for (unsigned I = 0; I <= NumKeys; ++I) {
    SortId S = I < NumKeys ? Info->Decl.ArgSorts[I] : Info->Decl.OutSort;
    if (SortsTable.isIdSort(S)) {
      IdCols.push_back(I);
      continue;
    }
    while (SortsTable.kind(S) == SortKind::Set)
      S = SortsTable.info(S).Element;
    if (SortsTable.isIdSort(S))
      Info->NeedsFullSweep = true;
  }
  Info->Storage->setIdColumns(std::move(IdCols));

  FunctionNames.emplace(Info->Decl.Name, Id);
  Functions.push_back(std::move(Info));
  return Id;
}

bool EGraph::lookupFunctionName(const std::string &Name,
                                FunctionId &Out) const {
  auto It = FunctionNames.find(Name);
  if (It == FunctionNames.end())
    return false;
  Out = It->second;
  return true;
}

//===----------------------------------------------------------------------===
// Value construction
//===----------------------------------------------------------------------===

Value EGraph::mkF64(double D) const {
  return Value(SortTable::F64Sort, std::bit_cast<uint64_t>(D));
}

double EGraph::valueToF64(Value V) const {
  return std::bit_cast<double>(V.Bits);
}

Value EGraph::mkString(const std::string &S) {
  return Value(SortTable::StringSort, Strings.intern(S));
}

const std::string &EGraph::valueToString(Value V) const {
  return Strings.lookup(static_cast<uint32_t>(V.Bits));
}

Value EGraph::mkRational(const Rational &R) {
  return Value(SortTable::RationalSort, Rationals.intern(R));
}

const Rational &EGraph::valueToRational(Value V) const {
  return Rationals.lookup(static_cast<uint32_t>(V.Bits));
}

Value EGraph::mkSet(SortId SetSort, std::vector<Value> Elements) {
  assert(SortsTable.kind(SetSort) == SortKind::Set && "not a set sort");
  for (Value &Element : Elements)
    Element = canonicalize(Element);
  std::sort(Elements.begin(), Elements.end());
  Elements.erase(std::unique(Elements.begin(), Elements.end()),
                 Elements.end());
  return Value(SetSort, Sets.intern(Elements));
}

uint32_t EGraph::internSetElements(std::vector<Value> Elements) {
  assert(std::is_sorted(Elements.begin(), Elements.end()) &&
         "raw set elements must be pre-sorted");
  return Sets.intern(Elements);
}

const std::vector<Value> &EGraph::valueToSet(Value V) const {
  return Sets.lookup(static_cast<uint32_t>(V.Bits));
}

Value EGraph::freshId(SortId Sort) {
  assert(SortsTable.isIdSort(Sort) && "fresh id of a non-id sort");
  return Value(Sort, UF.makeSet());
}

//===----------------------------------------------------------------------===
// Canonicalization
//===----------------------------------------------------------------------===

Value EGraph::canonicalize(Value V) {
  switch (SortsTable.kind(V.Sort)) {
  case SortKind::User:
    return Value(V.Sort, UF.find(V.Bits));
  case SortKind::Set: {
    const std::vector<Value> &Elements = valueToSet(V);
    bool Dirty = false;
    for (const Value &Element : Elements) {
      if (canonicalize(Element) != Element) {
        Dirty = true;
        break;
      }
    }
    if (!Dirty)
      return V;
    return mkSet(V.Sort, Elements);
  }
  default:
    return V;
  }
}

bool EGraph::canonicalizeRow(Value *Row, unsigned Width) {
  bool Changed = false;
  for (unsigned I = 0; I < Width; ++I) {
    Value Canonical = canonicalize(Row[I]);
    if (Canonical != Row[I]) {
      Row[I] = Canonical;
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===
// Database operations
//===----------------------------------------------------------------------===

std::optional<Value> EGraph::lookup(FunctionId Func, const Value *Args) {
  FunctionInfo &Info = *Functions[Func];
  unsigned NumKeys = Info.numKeys();
  ScratchFrame Canonical(KeyScratch);
  KeyScratch.insert(KeyScratch.end(), Args, Args + NumKeys);
  canonicalizeRow(Canonical.data(), NumKeys);
  return Info.Storage->lookup(Canonical.data());
}

bool EGraph::getOrCreate(FunctionId Func, const Value *Args, Value &Out) {
  FunctionInfo &Info = *Functions[Func];
  unsigned NumKeys = Info.numKeys();
  ScratchFrame Canonical(KeyScratch);
  KeyScratch.insert(KeyScratch.end(), Args, Args + NumKeys);
  canonicalizeRow(Canonical.data(), NumKeys);
  if (std::optional<Value> Existing = Info.Storage->lookup(Canonical.data())) {
    Out = *Existing;
    return true;
  }
  SortId OutSort = Info.Decl.OutSort;
  if (Info.Decl.DefaultExpr) {
    std::vector<Value> Env;
    if (!evalExpr(*Info.Decl.DefaultExpr, Env, Out, /*CreateTerms=*/true))
      return false;
    Out = canonicalize(Out);
  } else if (SortsTable.isIdSort(OutSort)) {
    Out = freshId(OutSort);
  } else if (SortsTable.kind(OutSort) == SortKind::Unit) {
    Out = mkUnit();
  } else {
    reportError("function '" + Info.Decl.Name +
                "' has no default for a missing entry");
    return false;
  }
  // Re-check: evaluating the default may have populated the entry (note
  // Canonical.data() is recomputed — nested frames may have reallocated).
  if (std::optional<Value> Existing = Info.Storage->lookup(Canonical.data())) {
    Out = *Existing;
    return true;
  }
  Info.Storage->insert(Canonical.data(), Out, Timestamp);
  return true;
}

bool EGraph::setValue(FunctionId Func, const Value *Args, Value Out) {
  FunctionInfo &Info = *Functions[Func];
  unsigned NumKeys = Info.numKeys();
  ScratchFrame Canonical(KeyScratch);
  KeyScratch.insert(KeyScratch.end(), Args, Args + NumKeys);
  canonicalizeRow(Canonical.data(), NumKeys);
  Out = canonicalize(Out);

  std::optional<Value> Existing = Info.Storage->lookup(Canonical.data());
  if (!Existing) {
    Info.Storage->insert(Canonical.data(), Out, Timestamp);
    return true;
  }
  Value Old = canonicalize(*Existing);
  if (Old == Out) {
    // Keep the stored copy canonical without creating a delta row.
    return true;
  }

  // Resolve the functional dependency violation via the merge semantics
  // (§3.2): a merge expression if declared, union for id sorts, and a hard
  // conflict otherwise.
  Value Merged;
  if (Info.Decl.MergeExpr) {
    MergeEnv.assign({Old, Out});
    if (!evalExpr(*Info.Decl.MergeExpr, MergeEnv, Merged,
                  /*CreateTerms=*/true))
      return false;
    Merged = canonicalize(Merged);
    // A merge expression over an id-sort output can reassign the key to a
    // different class without a union: the old association vanishes and a
    // class cost may rise, which the decrease-only extraction refresh
    // cannot track. (The default id merge below unions instead, which the
    // merge log covers.)
    if (ExtractIdx && Merged != Old && SortsTable.isIdSort(Info.Decl.OutSort))
      ExtractIdx->invalidate();
  } else if (SortsTable.isIdSort(Info.Decl.OutSort)) {
    Merged = unionValues(Old, Out);
  } else if (SortsTable.kind(Info.Decl.OutSort) == SortKind::Unit) {
    return true;
  } else {
    reportError("merge conflict on function '" + Info.Decl.Name +
                "' without a :merge expression");
    return false;
  }
  if (Merged != Old)
    Info.Storage->insert(Canonical.data(), Merged, Timestamp);
  return true;
}

Value EGraph::unionValues(Value A, Value B) {
  assert(A.Sort == B.Sort && "union of values of different sorts");
  assert(SortsTable.isIdSort(A.Sort) && "union of non-id values");
  uint64_t RootA = UF.find(A.Bits), RootB = UF.find(B.Bits);
  if (RootA == RootB)
    return Value(A.Sort, RootA);
  uint64_t Root = UF.unite(RootA, RootB);
  UnionsDirty = true;
  return Value(A.Sort, Root);
}

unsigned EGraph::rebuild() {
  return ForceFullRebuild ? rebuildFullSweep() : rebuildIncremental();
}

void EGraph::warm() {
  for (const auto &Info : Functions)
    Info->Storage->warmOccurrences();
}

bool EGraph::rewriteRow(FunctionId Func, size_t Row, std::vector<Value> &Buffer,
                        bool &Rewritten) {
  Table &T = *Functions[Func]->Storage;
  unsigned Width = T.rowWidth();
  Buffer.resize(Width);
  T.copyRow(Row, Buffer.data());
  if (!canonicalizeRow(Buffer.data(), Width))
    return true;
  // The row is stale: remove it and reinsert canonically (which may
  // trigger the merge expression on a collision).
  T.eraseRow(Row);
  Rewritten = true;
  return setValue(Func, Buffer.data(), Buffer[Width - 1]);
}

bool EGraph::rebuildTableIncremental(FunctionId Func,
                                     const std::vector<uint64_t> &Dirty,
                                     std::vector<uint32_t> &Rows,
                                     std::vector<Value> &Buffer,
                                     bool &TableRewritten) {
  FunctionInfo &Info = *Functions[Func];
  Table &T = *Info.Storage;
  if (!Info.NeedsFullSweep && !T.trackingOccurrences())
    return true; // rows hold only immutable values; unions cannot stale them
  // Bulk-sweep heuristic, two stages. First, the dirty set alone: a
  // merge storm touching a sizable fraction of the table is swept
  // without even bringing the occurrence index up to date (catch-up
  // itself costs a pass over the appended rows). Second, the precise
  // affected-row count (over-counted: chains may still hold dead
  // rows): per-id resolution wins only while the affected set is a
  // small fraction of the table. Either way a merge storm degrades to
  // the old full-rebuild behavior, never below it.
  bool Sweep = Info.NeedsFullSweep || Dirty.size() * 4 > T.liveCount();
  if (!Sweep) {
    size_t Affected = T.occurrenceCount(Dirty);
    if (Affected == 0)
      return true;
    Sweep = Affected * 4 > T.liveCount();
  }
  if (Sweep) {
    // The sweep visits every row, so the per-id lists for this drain
    // are dead weight: drop them (a consumed id never reappears).
    if (T.trackingOccurrences())
      for (uint64_t Id : Dirty)
        T.dropOccurrences(Id);
    size_t Limit = T.rowCount();
    for (size_t Row = 0; Row < Limit; ++Row) {
      if (!T.isLive(Row))
        continue;
      if (!governorCheckpoint("rebuild.row"))
        return false;
      bool RowRewritten = false;
      if (!rewriteRow(Func, Row, Buffer, RowRewritten))
        return false;
      if (RowRewritten)
        TableRewritten = true;
    }
  } else {
    for (uint64_t Id : Dirty) {
      Rows.clear();
      T.takeOccurrences(Id, Rows);
      for (uint32_t Row : Rows) {
        // A row can die mid-drain: another dirty id already rewrote
        // it, or a reinsertion collided with its key.
        if (!T.isLive(Row))
          continue;
        if (!governorCheckpoint("rebuild.row"))
          return false;
        bool RowRewritten = false;
        if (!rewriteRow(Func, Row, Buffer, RowRewritten))
          return false;
        if (RowRewritten)
          TableRewritten = true;
      }
    }
  }
  return true;
}

unsigned EGraph::rebuildIncremental() {
  unsigned Passes = 0;
  std::vector<uint64_t> Dirty;
  std::vector<uint32_t> Rows;
  std::vector<Value> Buffer;
  std::vector<bool> Rewritten(Functions.size(), false);
  // Fixpoint over the merge worklist: each pass drains the ids that lost
  // their canonical status, rewrites exactly the rows reaching them through
  // the occurrence indexes, and loops while those rewrites merge further
  // classes. Terminates because canonical ids only ever shrink (min-id
  // representatives).
  while (!Failed) {
    UF.takeDirty(Dirty);
    if (Dirty.empty())
      break;
    ++Passes;
    for (size_t F = 0; F < Functions.size(); ++F) {
      bool TableRewritten = false;
      bool Ok = rebuildTableIncremental(static_cast<FunctionId>(F), Dirty,
                                        Rows, Buffer, TableRewritten);
      if (TableRewritten)
        Rewritten[F] = true;
      if (!Ok)
        return Passes;
    }
  }
  UnionsDirty = false;
  sweepRewrittenIndexes(Rewritten);
  return Passes;
}

unsigned EGraph::rebuildParallel(ThreadPool &Pool, double *GatherSeconds) {
  if (ForceFullRebuild)
    return rebuildFullSweep();
  if (Pool.threads() <= 1)
    return rebuildIncremental();
  return rebuildIncrementalParallel(Pool, GatherSeconds);
}

unsigned EGraph::rebuildIncrementalParallel(ThreadPool &Pool,
                                            double *GatherSeconds) {
  unsigned Passes = 0;
  std::vector<uint64_t> Dirty;
  std::vector<uint32_t> Rows;
  std::vector<Value> Buffer;
  std::vector<bool> Rewritten(Functions.size(), false);

  /// One table's frozen gather: the rows the serial pass would visit, in
  /// its exact visit order, with the frozen canonical image of each stale
  /// row. Mode mirrors the serial heuristic's three outcomes.
  struct TableGather {
    enum class Mode : uint8_t { Untouched, PerId, Sweep } VisitMode =
        Mode::Untouched;
    bool Eligible = false;
    uint64_t VersionAtFreeze = 0;
    std::vector<uint32_t> VisitRows;
    /// Per visited row: UINT32_MAX if the row was canonical at the freeze,
    /// else the offset of its image in Images.
    std::vector<uint32_t> VisitImage;
    std::vector<Value> Images;
  };
  std::vector<TableGather> Gathers(Functions.size());

  // Same fixpoint as rebuildIncremental, but each pass front-loads two
  // read-only parallel phases — per-table occurrence catch-up and the
  // frozen-image gather — before the serial mutation tail.
  while (!Failed) {
    UF.takeDirty(Dirty);
    if (Dirty.empty())
      break;
    ++Passes;
    Timer Gather;

    // Occurrence catch-up, one table per work item (each table's index is
    // independent). The serial pass pays this lazily inside
    // occurrenceCount/takeOccurrences; hoisting it here is what lets the
    // gather below walk the chains read-only.
    std::vector<size_t> CatchUp;
    for (size_t F = 0; F < Functions.size(); ++F)
      if (Functions[F]->Storage->trackingOccurrences())
        CatchUp.push_back(F);
    Pool.parallelFor(
        CatchUp.size(),
        [&](size_t K) {
          EGGLOG_FAILPOINT("rebuild.occurrence");
          Functions[CatchUp[K]]->Storage->warmOccurrences();
        },
        "rebuild.catchup");

    // Gather: per eligible table, evaluate the sweep heuristic at the
    // frozen state and record the serial visit order with frozen canonical
    // images. Valid for the tail only while the table's version is
    // untouched — the version check re-validates both the heuristic inputs
    // (liveCount, chains) and the row set itself.
    std::atomic<bool> GatherStop{false};
    std::vector<size_t> GatherTables;
    for (size_t F = 0; F < Functions.size(); ++F) {
      FunctionInfo &Info = *Functions[F];
      Table &T = *Info.Storage;
      TableGather &TG = Gathers[F];
      TG.Eligible = false;
      TG.VisitMode = TableGather::Mode::Untouched;
      TG.VisitRows.clear();
      TG.VisitImage.clear();
      TG.Images.clear();
      // Container columns need the (mutating) set interner to
      // canonicalize; those tables take the serial fallback.
      if (Info.NeedsFullSweep || !T.trackingOccurrences())
        continue;
      TG.Eligible = true;
      TG.VersionAtFreeze = T.version();
      GatherTables.push_back(F);
    }
    Pool.parallelFor(
        GatherTables.size(),
        [&](size_t K) {
          size_t F = GatherTables[K];
          const Table &T = *Functions[F]->Storage;
          TableGather &TG = Gathers[F];
          unsigned Width = T.rowWidth();
          bool Sweep = Dirty.size() * 4 > T.liveCount();
          if (!Sweep) {
            size_t Affected = T.occurrenceCountReadOnly(Dirty);
            if (Affected == 0)
              return; // serial would skip without touching the chains
            Sweep = Affected * 4 > T.liveCount();
          }
          TG.VisitMode =
              Sweep ? TableGather::Mode::Sweep : TableGather::Mode::PerId;
          uint32_t PollTick = 0;
          std::vector<Value> Image(Width);
          // The gather phase is read-only, so the column base pointers are
          // stable for its whole duration: per-cell reads are direct
          // column-array loads.
          std::vector<const Value *> Cols(Width);
          for (unsigned I = 0; I < Width; ++I)
            Cols[I] = T.column(I);
          auto Visit = [&](size_t Row) {
            EGGLOG_FAILPOINT("rebuild.occurrence");
            if ((PollTick++ & 63) == 0 &&
                Gov.pollQuick() != GovernorVerdict::Ok) {
              GatherStop.store(true, std::memory_order_relaxed);
              return false;
            }
            bool Stale = false;
            for (unsigned I = 0; I < Width; ++I) {
              Value Cell = Cols[I][Row];
              Value V = Cell;
              // findReadOnly never writes; eligible tables hold no
              // container cells reaching ids, so canonicalization is the
              // union-find lookup alone.
              if (SortsTable.kind(V.Sort) == SortKind::User)
                V = Value(V.Sort, UF.findReadOnly(V.Bits));
              Image[I] = V;
              Stale |= V != Cell;
            }
            TG.VisitRows.push_back(static_cast<uint32_t>(Row));
            if (!Stale) {
              TG.VisitImage.push_back(UINT32_MAX);
            } else {
              TG.VisitImage.push_back(
                  static_cast<uint32_t>(TG.Images.size()));
              TG.Images.insert(TG.Images.end(), Image.begin(), Image.end());
            }
            return true;
          };
          if (Sweep) {
            size_t Limit = T.rowCount();
            for (size_t Row = 0; Row < Limit; ++Row) {
              if (!T.isLive(Row))
                continue;
              if (!Visit(Row))
                return;
            }
          } else {
            std::vector<uint32_t> ChainRows;
            for (uint64_t Id : Dirty) {
              ChainRows.clear();
              T.readOccurrences(Id, ChainRows);
              for (uint32_t Row : ChainRows)
                if (!Visit(Row))
                  return;
            }
          }
        },
        "rebuild.gather");
    if (GatherSeconds)
      *GatherSeconds += Gather.seconds();

    if (GatherStop.load(std::memory_order_relaxed)) {
      // A quick-poll trip mid-gather: the full poll reports the error and
      // the pass stops exactly like a refused serial checkpoint. (The
      // full poll subsumes the quick checks, so the defensive fallback —
      // dropping every gather and going serial — should be unreachable.)
      if (governorTripped())
        return Passes;
      for (TableGather &TG : Gathers)
        TG.Eligible = false;
    }

    // Serial mutation tail, tables in declaration order. An id staged as
    // canonical in a frozen image stays canonical until it loses a unite,
    // which appends it to the union-find's pending dirty list — the
    // cursor PassDirty keeps over that list is what re-validates frozen
    // images against the tail's own merges.
    PhaseDirty PassDirty(UF);
    for (size_t F = 0; F < Functions.size(); ++F) {
      FunctionId Func = static_cast<FunctionId>(F);
      FunctionInfo &Info = *Functions[F];
      Table &T = *Info.Storage;
      TableGather &TG = Gathers[F];
      bool TableRewritten = false;
      bool UseGather = TG.Eligible && T.version() == TG.VersionAtFreeze;
      if (!UseGather) {
        // Earlier tables' merge expressions touched this table (or it was
        // never gathered): recompute everything at the current state, on
        // the exact serial path.
        bool Ok = rebuildTableIncremental(Func, Dirty, Rows, Buffer,
                                          TableRewritten);
        if (TableRewritten)
          Rewritten[F] = true;
        if (!Ok)
          return Passes;
        continue;
      }
      if (TG.VisitMode == TableGather::Mode::Untouched)
        continue; // no dirty id reaches this table; serial skips it too
      unsigned Width = T.rowWidth();
      for (size_t V = 0; V < TG.VisitRows.size(); ++V) {
        size_t Row = TG.VisitRows[V];
        // Rows visited live at the freeze can die during the tail (an
        // earlier dirty id's rewrite, or a key collision); the serial
        // drain skips those at the same point.
        if (!T.isLive(Row))
          continue;
        if (!governorCheckpoint("rebuild.row")) {
          if (TableRewritten)
            Rewritten[F] = true;
          return Passes;
        }
        PassDirty.absorb();
        uint32_t Img = TG.VisitImage[V];
        // The tail mutates tables (appends can reallocate columns), so
        // rows without a frozen image are read cell-by-cell, not through a
        // cached pointer.
        const Value *ImageCells =
            Img == UINT32_MAX ? nullptr : TG.Images.data() + Img;
        bool CellDirty = false;
        for (unsigned I = 0; I < Width; ++I) {
          Value C = ImageCells ? ImageCells[I] : T.cell(Row, I);
          if (SortsTable.kind(C.Sort) == SortKind::User &&
              PassDirty.dirty(C.Bits)) {
            CellDirty = true;
            break;
          }
        }
        if (CellDirty) {
          // A frozen-image id lost a unite since the freeze: the image is
          // stale, recompute at the current state (serial-exact).
          if (!rewriteRow(Func, Row, Buffer, TableRewritten)) {
            if (TableRewritten)
              Rewritten[F] = true;
            return Passes;
          }
          continue;
        }
        if (Img == UINT32_MAX)
          continue; // canonical at the freeze and untouched since
        // Stale at the freeze with a still-valid image: exactly
        // rewriteRow's mutation, minus recomputing the canonicalization.
        T.eraseRow(Row);
        TableRewritten = true;
        if (!setValue(Func, ImageCells, ImageCells[Width - 1])) {
          Rewritten[F] = true;
          return Passes;
        }
      }
      // Detach the consumed chains as the serial drain does (sweep mode
      // drops them up front; per-id mode detaches inside takeOccurrences).
      for (uint64_t Id : Dirty)
        T.dropOccurrences(Id);
      if (TableRewritten)
        Rewritten[F] = true;
    }
  }
  UnionsDirty = false;
  sweepRewrittenIndexes(Rewritten);
  return Passes;
}

unsigned EGraph::rebuildFullSweep() {
  unsigned Passes = 0;
  std::vector<Value> Buffer;
  std::vector<bool> Rewritten(Functions.size(), false);
  bool Changed = true;
  while (Changed && !Failed) {
    Changed = false;
    ++Passes;
    for (size_t F = 0; F < Functions.size(); ++F) {
      Table &T = *Functions[F]->Storage;
      size_t Limit = T.rowCount();
      for (size_t Row = 0; Row < Limit; ++Row) {
        if (!T.isLive(Row))
          continue;
        if (!governorCheckpoint("rebuild.row"))
          return Passes;
        bool RowRewritten = false;
        if (!rewriteRow(static_cast<FunctionId>(F), Row, Buffer,
                        RowRewritten))
          return Passes;
        if (RowRewritten) {
          Changed = true;
          Rewritten[F] = true;
        }
      }
    }
  }
  // The sweep restored canonicity without consulting the worklist; drop it
  // so a later incremental rebuild does not reprocess applied merges.
  UF.clearDirty();
  UnionsDirty = false;
  sweepRewrittenIndexes(Rewritten);
  return Passes;
}

void EGraph::sweepRewrittenIndexes(const std::vector<bool> &Rewritten) {
  // Stamp-partition indexes are dropped only for tables that actually had
  // rows rewritten; untouched tables keep their entries, which re-validate
  // lazily against version() on next use. The All indexes always stay for
  // incremental refresh.
  for (size_t F = 0; F < Rewritten.size(); ++F) {
    Table &T = *Functions[F]->Storage;
    if (Rewritten[F] && T.hasIndexCache())
      T.indexes().sweepStale();
  }
}

//===----------------------------------------------------------------------===
// Expression and action evaluation
//===----------------------------------------------------------------------===

bool EGraph::evalExpr(const TypedExpr &Expr, const std::vector<Value> &Env,
                      Value &Out, bool CreateTerms) {
  switch (Expr.ExprKind) {
  case TypedExpr::Kind::Var:
    assert(Expr.Index < Env.size() && "unbound variable slot");
    Out = Env[Expr.Index];
    return true;
  case TypedExpr::Kind::Lit:
    Out = Expr.Literal;
    return true;
  case TypedExpr::Kind::PrimCall: {
    // Arguments are evaluated into a frame of the shared scratch stack
    // (this runs inside every action and merge expression on the rebuild
    // hot path; a per-call std::vector was a measurable allocation cost).
    // Recursion pushes nested frames above this one, so cells are
    // re-addressed by index after every nested eval.
    ScratchFrame Args(EvalScratch);
    EvalScratch.resize(Args.Base + Expr.Args.size());
    for (size_t I = 0; I < Expr.Args.size(); ++I) {
      Value V;
      if (!evalExpr(Expr.Args[I], Env, V, CreateTerms))
        return false;
      EvalScratch[Args.Base + I] = V;
    }
    return Prims.get(Expr.Index).Apply(*this, Args.data(), Out);
  }
  case TypedExpr::Kind::FuncCall: {
    ScratchFrame Args(EvalScratch);
    EvalScratch.resize(Args.Base + Expr.Args.size());
    for (size_t I = 0; I < Expr.Args.size(); ++I) {
      Value V;
      if (!evalExpr(Expr.Args[I], Env, V, CreateTerms))
        return false;
      EvalScratch[Args.Base + I] = V;
    }
    if (CreateTerms)
      return getOrCreate(Expr.Index, Args.data(), Out);
    std::optional<Value> Existing = lookup(Expr.Index, Args.data());
    if (!Existing)
      return false;
    Out = canonicalize(*Existing);
    return true;
  }
  }
  return false;
}

bool EGraph::runActions(const std::vector<Action> &Actions,
                        std::vector<Value> &Env) {
  for (const Action &Act : Actions) {
    switch (Act.ActKind) {
    case Action::Kind::Let: {
      Value Result;
      if (!evalExpr(Act.Expr, Env, Result))
        return false;
      assert(Act.Var < Env.size() && "let target out of range");
      Env[Act.Var] = Result;
      break;
    }
    case Action::Kind::Set: {
      ScratchFrame Args(EvalScratch);
      EvalScratch.resize(Args.Base + Act.Args.size());
      for (size_t I = 0; I < Act.Args.size(); ++I) {
        Value V;
        if (!evalExpr(Act.Args[I], Env, V))
          return false;
        EvalScratch[Args.Base + I] = V;
      }
      Value Result;
      if (!evalExpr(Act.Expr, Env, Result))
        return false;
      if (!setValue(Act.Func, Args.data(), Result))
        return false;
      break;
    }
    case Action::Kind::Union: {
      Value Lhs, Rhs;
      if (!evalExpr(Act.Expr, Env, Lhs) || !evalExpr(Act.Expr2, Env, Rhs))
        return false;
      unionValues(Lhs, Rhs);
      break;
    }
    case Action::Kind::Panic:
      reportError("panic: " + Act.Message);
      return false;
    case Action::Kind::Eval: {
      Value Ignored;
      if (!evalExpr(Act.Expr, Env, Ignored))
        return false;
      break;
    }
    case Action::Kind::Delete: {
      ScratchFrame Args(EvalScratch);
      EvalScratch.resize(Args.Base + Act.Args.size());
      for (size_t I = 0; I < Act.Args.size(); ++I) {
        Value V;
        if (!evalExpr(Act.Args[I], Env, V))
          return false;
        EvalScratch[Args.Base + I] = V;
      }
      canonicalizeRow(Args.data(), Act.Args.size());
      Value Dummy;
      bool Erased = Functions[Act.Func]->Storage->erase(
          Act.Args.empty() ? &Dummy : Args.data());
      // Deleting a term entry can raise its class's extraction cost; the
      // decrease-only incremental refresh cannot model that. A no-op
      // delete (key already absent) changes nothing and stays warm.
      if (Erased && ExtractIdx &&
          SortsTable.isIdSort(Functions[Act.Func]->Decl.OutSort))
        ExtractIdx->invalidate();
      break;
    }
    }
  }
  return true;
}

bool EGraph::checkFact(const CheckFact &Fact) {
  std::vector<Value> Env;
  switch (Fact.FactKind) {
  case CheckFact::Kind::Present: {
    Value Ignored;
    return evalExpr(Fact.Lhs, Env, Ignored, /*CreateTerms=*/false);
  }
  case CheckFact::Kind::Equal: {
    Value Lhs, Rhs;
    if (!evalExpr(Fact.Lhs, Env, Lhs, /*CreateTerms=*/false) ||
        !evalExpr(Fact.Rhs, Env, Rhs, /*CreateTerms=*/false))
      return false;
    return valueEqual(Lhs, Rhs);
  }
  case CheckFact::Kind::NotEqual: {
    Value Lhs, Rhs;
    if (!evalExpr(Fact.Lhs, Env, Lhs, /*CreateTerms=*/false) ||
        !evalExpr(Fact.Rhs, Env, Rhs, /*CreateTerms=*/false))
      return false;
    return !valueEqual(Lhs, Rhs);
  }
  }
  return false;
}

size_t EGraph::liveTupleCount() const {
  size_t Total = 0;
  for (const auto &Info : Functions)
    Total += Info->Storage->liveCount();
  return Total;
}

uint64_t EGraph::liveContentHash() const {
  uint64_t Total = 0;
  std::vector<const Value *> Cols;
  for (size_t F = 0; F < Functions.size(); ++F) {
    const Table &T = *Functions[F]->Storage;
    unsigned Width = T.rowWidth();
    Cols.resize(Width);
    for (unsigned I = 0; I < Width; ++I)
      Cols[I] = T.column(I);
    for (size_t Row : T.liveRows()) {
      uint64_t RowHash = hashMix(F + 0x9E3779B97F4A7C15ull);
      for (unsigned I = 0; I < Width; ++I)
        RowHash = hashCombine(RowHash, Cols[I][Row].hash());
      // Sum keeps the accumulator order-independent across rows.
      Total += RowHash;
    }
  }
  return Total;
}

IndexCache::Stats EGraph::indexStats() const {
  IndexCache::Stats Total;
  for (const auto &Info : Functions) {
    const IndexCache::Stats &S = Info->Storage->indexes().stats();
    Total.Hits += S.Hits;
    Total.Builds += S.Builds;
    Total.Refreshes += S.Refreshes;
    Total.Derivations += S.Derivations;
  }
  return Total;
}

void EGraph::invalidateIndexes() {
  for (const auto &Info : Functions)
    Info->Storage->indexes().invalidate();
}

//===----------------------------------------------------------------------===
// Push/pop contexts
//===----------------------------------------------------------------------===

EGraph::Snapshot EGraph::snapshot() const {
  Snapshot S;
  S.UF = UF.snapshot();
  S.Tables.reserve(Functions.size());
  for (const auto &Info : Functions)
    S.Tables.push_back(Info->Storage->snapshot());
  S.NumSorts = SortsTable.size();
  S.NumFunctions = Functions.size();
  S.NumPrims = Prims.size();
  S.Timestamp = Timestamp;
  S.UnionsDirty = UnionsDirty;
  return S;
}

void EGraph::restore(const Snapshot &S) {
  assert(S.NumFunctions <= Functions.size() &&
         S.NumFunctions == S.Tables.size() &&
         "snapshot is from a different database");
  // Drop declarations made since the snapshot (newest first).
  for (size_t F = Functions.size(); F > S.NumFunctions; --F) {
    FunctionNames.erase(Functions[F - 1]->Decl.Name);
    Functions.pop_back();
  }
  SortsTable.truncate(S.NumSorts);
  Prims.truncate(S.NumPrims);

  for (size_t F = 0; F < S.NumFunctions; ++F)
    Functions[F]->Storage->restore(S.Tables[F]);
  UF.restore(S.UF);
  Timestamp = S.Timestamp;
  UnionsDirty = S.UnionsDirty;
  // Restore resurrects killed rows and truncates appended ones, breaking
  // the append-only/decrease-only assumptions of the extraction cache.
  if (ExtractIdx)
    ExtractIdx->invalidate();
  clearError();
}

//===----------------------------------------------------------------------===
// Command transactions
//===----------------------------------------------------------------------===

EGraph::TxnMark EGraph::txnBegin() {
  assert(!InTxn && "nested command transactions are not supported");
  InTxn = true;
  TxnMark M;
  M.UF = UF.txnBegin();
  M.Tables.reserve(Functions.size());
  for (const auto &Info : Functions)
    M.Tables.push_back(Info->Storage->txnMark());
  M.NumSorts = SortsTable.size();
  M.NumFunctions = Functions.size();
  M.NumPrims = Prims.size();
  M.Timestamp = Timestamp;
  M.UnionsDirty = UnionsDirty;
  return M;
}

void EGraph::adoptContent(std::vector<std::unique_ptr<Table>> NewTables,
                          std::vector<uint64_t> UFParents,
                          std::vector<uint64_t> UFDirty, uint64_t UnionCount,
                          uint32_t NewTimestamp,
                          bool NewUnionsDirty) noexcept {
  assert(NewTables.size() == Functions.size() &&
         "adoptContent needs one staged table per declared function");
  for (size_t F = 0; F < Functions.size(); ++F)
    Functions[F]->Storage = std::move(NewTables[F]);
  UF.adopt(std::move(UFParents), std::move(UFDirty), UnionCount);
  Timestamp = NewTimestamp;
  UnionsDirty = NewUnionsDirty;
  // The staged tables carry none of the old tables' index or extraction
  // state; consumers rebuild from scratch against the adopted content.
  if (ExtractIdx)
    ExtractIdx->invalidate();
  clearError();
}

void EGraph::txnCommit() {
  assert(InTxn && "txnCommit without an open transaction");
  InTxn = false;
  UF.txnCommit();
}

void EGraph::txnRollback(const TxnMark &M) {
  assert(InTxn && "txnRollback without an open transaction");
  InTxn = false;
  // Drop declarations made by the failed command (newest first), exactly as
  // restore() does for popped contexts.
  for (size_t F = Functions.size(); F > M.NumFunctions; --F) {
    FunctionNames.erase(Functions[F - 1]->Decl.Name);
    Functions.pop_back();
  }
  SortsTable.truncate(M.NumSorts);
  Prims.truncate(M.NumPrims);
  for (size_t F = 0; F < M.NumFunctions; ++F)
    Functions[F]->Storage->rollbackTo(M.Tables[F]);
  UF.txnRollback(M.UF);
  Timestamp = M.Timestamp;
  UnionsDirty = M.UnionsDirty;
  // An injected fault or bad_alloc can unwind past live scratch frames;
  // the frames' destructors resize the stacks on the way out, but clear
  // them anyway so a missed frame cannot leak into the next command.
  EvalScratch.clear();
  KeyScratch.clear();
  MergeEnv.clear();
  // Rollback resurrects killed rows and truncates appended ones; the
  // extraction cache's decrease-only refresh cannot model either.
  if (ExtractIdx)
    ExtractIdx->invalidate();
  clearError();
}

//===----------------------------------------------------------------------===
// Resource governance
//===----------------------------------------------------------------------===

size_t EGraph::approxBytes() const {
  size_t Total = UF.approxBytes();
  for (const auto &Info : Functions)
    Total += Info->Storage->approxBytes();
  return Total;
}

bool EGraph::governorTripped() {
  if (Failed)
    return true;
  if (!Gov.anyLimitSet())
    return false;
  switch (Gov.poll(liveTupleCount(), approxBytes())) {
  case GovernorVerdict::Ok:
    return false;
  case GovernorVerdict::Timeout:
    reportError(ErrKind::Limit,
                "resource limit: wall-clock timeout of " +
                    std::to_string(Gov.timeout()) + "s exceeded");
    return true;
  case GovernorVerdict::NodeLimit:
    reportError(ErrKind::Limit,
                "resource limit: live tuple ceiling of " +
                    std::to_string(Gov.maxLive()) + " exceeded");
    return true;
  case GovernorVerdict::MemoryLimit:
    reportError(ErrKind::Limit,
                "resource limit: memory ceiling of " +
                    std::to_string(Gov.maxBytes() >> 20) + " MB exceeded");
    return true;
  case GovernorVerdict::Cancelled:
    reportError(ErrKind::Cancelled, "cancelled by request");
    return true;
  }
  return false;
}

bool EGraph::governorCheckpoint(const char *Site) {
  (void)Site; // only the failpoint macro consumes it in test builds
  if (Failed)
    return false;
  if (CheckpointBudget > 0) {
    --CheckpointBudget;
    return true;
  }
  CheckpointBudget = Gov.checkpointInterval() - 1;
  EGGLOG_FAILPOINT(Site);
  return !governorTripped();
}

//===----------------------------------------------------------------------===
// Set primitives
//===----------------------------------------------------------------------===

void EGraph::registerSetPrimitives(SortId SetSort) {
  SortId Element = SortsTable.info(SetSort).Element;
  auto SetOf = [SetSort](std::vector<Value> Elements, EGraph &G) {
    return G.mkSet(SetSort, std::move(Elements));
  };

  Prims.add(Primitive{"set-empty", {}, SetSort,
                      [SetOf](EGraph &G, const Value *, Value &Out) {
                        Out = SetOf({}, G);
                        return true;
                      }});
  Prims.add(Primitive{"set-singleton",
                      {Element},
                      SetSort,
                      [SetOf](EGraph &G, const Value *Args, Value &Out) {
                        Out = SetOf({Args[0]}, G);
                        return true;
                      }});
  Prims.add(Primitive{"set-insert",
                      {SetSort, Element},
                      SetSort,
                      [SetOf](EGraph &G, const Value *Args, Value &Out) {
                        std::vector<Value> Elements = G.valueToSet(Args[0]);
                        Elements.push_back(Args[1]);
                        Out = SetOf(std::move(Elements), G);
                        return true;
                      }});
  Prims.add(Primitive{"set-remove",
                      {SetSort, Element},
                      SetSort,
                      [SetOf](EGraph &G, const Value *Args, Value &Out) {
                        std::vector<Value> Elements;
                        Value Needle = G.canonicalize(Args[1]);
                        for (Value V : G.valueToSet(G.canonicalize(Args[0])))
                          if (G.canonicalize(V) != Needle)
                            Elements.push_back(V);
                        Out = SetOf(std::move(Elements), G);
                        return true;
                      }});
  Prims.add(Primitive{"set-union",
                      {SetSort, SetSort},
                      SetSort,
                      [SetOf](EGraph &G, const Value *Args, Value &Out) {
                        std::vector<Value> Elements = G.valueToSet(Args[0]);
                        const std::vector<Value> &Other = G.valueToSet(Args[1]);
                        Elements.insert(Elements.end(), Other.begin(),
                                        Other.end());
                        Out = SetOf(std::move(Elements), G);
                        return true;
                      }});
  Prims.add(Primitive{"set-intersect",
                      {SetSort, SetSort},
                      SetSort,
                      [SetOf](EGraph &G, const Value *Args, Value &Out) {
                        Value A = G.canonicalize(Args[0]);
                        Value B = G.canonicalize(Args[1]);
                        const std::vector<Value> &Bs = G.valueToSet(B);
                        std::vector<Value> Elements;
                        for (Value V : G.valueToSet(A))
                          if (std::binary_search(Bs.begin(), Bs.end(), V))
                            Elements.push_back(V);
                        Out = SetOf(std::move(Elements), G);
                        return true;
                      }});
  Prims.add(Primitive{"set-contains",
                      {SetSort, Element},
                      SortTable::BoolSort,
                      [](EGraph &G, const Value *Args, Value &Out) {
                        Value A = G.canonicalize(Args[0]);
                        Value Needle = G.canonicalize(Args[1]);
                        const std::vector<Value> &Elements = G.valueToSet(A);
                        bool Found = std::binary_search(Elements.begin(),
                                                        Elements.end(), Needle);
                        Out = G.mkBool(Found);
                        return true;
                      }});
  Prims.add(Primitive{"set-not-contains",
                      {SetSort, Element},
                      SortTable::BoolSort,
                      [](EGraph &G, const Value *Args, Value &Out) {
                        Value A = G.canonicalize(Args[0]);
                        Value Needle = G.canonicalize(Args[1]);
                        const std::vector<Value> &Elements = G.valueToSet(A);
                        bool Found = std::binary_search(Elements.begin(),
                                                        Elements.end(), Needle);
                        Out = G.mkBool(!Found);
                        return true;
                      }});
  Prims.add(Primitive{"set-length",
                      {SetSort},
                      SortTable::I64Sort,
                      [](EGraph &G, const Value *Args, Value &Out) {
                        Value A = G.canonicalize(Args[0]);
                        Out = G.mkI64(
                            static_cast<int64_t>(G.valueToSet(A).size()));
                        return true;
                      }});
}
