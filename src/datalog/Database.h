//===- datalog/Database.h - Datalog relations and eqrel --------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic Datalog database in the style of Soufflé: named relations over
/// dense 32-bit values, plus union-find-backed equivalence relations
/// (`eqrel`, Nappa et al. 2019). An eqrel *represents* its full transitive
/// closure: inserting (a,b) merges the classes of a and b, and the relation
/// semantically contains every pair within a class. This is the substrate
/// for the paper's §6.1 baselines.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_DATALOG_DATABASE_H
#define EGGLOG_DATALOG_DATABASE_H

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace egglog {
namespace datalog {

/// Datalog values are dense unsigned ids (the fact extractors number
/// variables/allocations densely).
using Val = uint32_t;

/// Hash for tuples.
struct TupleHash {
  size_t operator()(const std::vector<Val> &Tuple) const {
    size_t Hash = 1469598103934665603ull;
    for (Val V : Tuple) {
      Hash ^= hashMix(V);
      Hash *= 1099511628211ull;
    }
    return Hash;
  }
};

/// An explicit (set-backed) relation with semi-naïve delta tracking. Rows
/// inserted during an iteration are buffered as "new", become the delta
/// when the iteration ends, and join the stable rows one iteration later.
class Relation {
public:
  explicit Relation(unsigned Arity) : Arity(Arity) {}

  unsigned arity() const { return Arity; }
  size_t size() const { return Rows.size(); }

  /// Inserts a tuple; returns true if it was new. New tuples are buffered
  /// until advance().
  bool insert(const std::vector<Val> &Tuple) {
    assert(Tuple.size() == Arity && "arity mismatch");
    if (!Index.insert(Tuple).second)
      return false;
    Pending.push_back(Tuple);
    return true;
  }

  bool contains(const std::vector<Val> &Tuple) const {
    return Index.count(Tuple) != 0;
  }

  /// All tuples visible to joins (stable + delta; excludes pending).
  const std::vector<std::vector<Val>> &all() const { return Rows; }

  /// The tuples that became visible at the last advance().
  std::vector<std::vector<Val>> delta() const {
    return std::vector<std::vector<Val>>(Rows.begin() + DeltaStart,
                                         Rows.end());
  }
  size_t deltaStart() const { return DeltaStart; }

  /// Ends an iteration: pending tuples become the new delta. Returns true
  /// if the delta is nonempty.
  bool advance() {
    DeltaStart = Rows.size();
    for (std::vector<Val> &Tuple : Pending)
      Rows.push_back(std::move(Tuple));
    Pending.clear();
    return Rows.size() != DeltaStart;
  }

  bool hasPending() const { return !Pending.empty(); }

private:
  unsigned Arity;
  std::vector<std::vector<Val>> Rows;
  std::vector<std::vector<Val>> Pending;
  std::unordered_set<std::vector<Val>, TupleHash> Index;
  size_t DeltaStart = 0;
};

/// A union-find-backed equivalence relation (Soufflé's eqrel). Maintains
/// per-class member lists (small-to-large) so joins can enumerate the
/// classmates of a bound element.
///
/// For semi-naïve evaluation the eqrel records *merge events*: each
/// effective union snapshots the absorbed class's members. The delta of an
/// iteration is the set of pairs (absorbed-member, classmate), which the
/// evaluator enumerates instead of re-running eqrel joins from scratch
/// (this mirrors Soufflé's incremental eqrel of Nappa et al. 2019).
class EqRel {
public:
  /// One effective union: the members the absorbed class contributed and
  /// the surviving root at merge time. Absorbed is sorted for membership
  /// tests.
  struct MergeEvent {
    std::vector<Val> Absorbed;
    Val Root;
  };
  /// Ensures \p V exists as a singleton.
  void ensure(Val V) {
    if (V >= Parent.size()) {
      size_t Old = Parent.size();
      Parent.resize(V + 1);
      Members.resize(V + 1);
      for (size_t I = Old; I <= V; ++I) {
        Parent[I] = static_cast<Val>(I);
        Members[I] = {static_cast<Val>(I)};
      }
    }
  }

  Val find(Val V) const {
    assert(V < Parent.size() && "find of unknown element");
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  }

  /// Inserting (a, b) merges their classes. Returns true if they were
  /// distinct (the relation grew).
  bool insert(Val A, Val B) {
    ensure(std::max(A, B));
    Val Ra = find(A), Rb = find(B);
    if (Ra == Rb)
      return false;
    if (Members[Ra].size() < Members[Rb].size())
      std::swap(Ra, Rb);
    MergeEvent Event;
    Event.Absorbed = Members[Rb];
    std::sort(Event.Absorbed.begin(), Event.Absorbed.end());
    Event.Root = Ra;
    PendingEvents.push_back(std::move(Event));
    Parent[Rb] = Ra;
    Members[Ra].insert(Members[Ra].end(), Members[Rb].begin(),
                       Members[Rb].end());
    Members[Rb].clear();
    Members[Rb].shrink_to_fit();
    ++Generation;
    return true;
  }

  /// Ends an iteration: pending merge events become the visible delta.
  /// Returns true if the delta is nonempty.
  bool advance() {
    DeltaEvents = std::move(PendingEvents);
    PendingEvents.clear();
    return !DeltaEvents.empty();
  }

  /// The merges that became visible at the last advance().
  const std::vector<MergeEvent> &deltaEvents() const { return DeltaEvents; }

  bool same(Val A, Val B) const {
    if (A >= Parent.size() || B >= Parent.size())
      return A == B;
    return find(A) == find(B);
  }

  /// The classmates of \p V (including V itself).
  const std::vector<Val> &members(Val V) const {
    static const std::vector<Val> Empty;
    if (V >= Parent.size())
      return Empty;
    return Members[find(V)];
  }

  /// Every element ever inserted.
  std::vector<Val> allElements() const {
    std::vector<Val> Result;
    Result.reserve(Parent.size());
    for (Val V = 0; V < Parent.size(); ++V)
      Result.push_back(V);
    return Result;
  }

  size_t numElements() const { return Parent.size(); }

  /// Monotone counter bumped on every effective union; evaluators use it
  /// to detect growth.
  uint64_t generation() const { return Generation; }

  /// The number of pairs the eqrel semantically represents (sum over
  /// classes of |c|^2) — the quadratic footprint a plain encoding would
  /// materialize.
  uint64_t representedPairs() const {
    uint64_t Total = 0;
    for (Val V = 0; V < Parent.size(); ++V)
      if (find(V) == V)
        Total += static_cast<uint64_t>(Members[V].size()) *
                 Members[V].size();
    return Total;
  }

private:
  mutable std::vector<Val> Parent;
  std::vector<std::vector<Val>> Members;
  std::vector<MergeEvent> PendingEvents;
  std::vector<MergeEvent> DeltaEvents;
  uint64_t Generation = 0;
};

/// A named collection of relations and eqrels.
class Database {
public:
  /// Declares an explicit relation.
  Relation &declareRelation(const std::string &Name, unsigned Arity);
  /// Declares an equivalence relation.
  EqRel &declareEqRel(const std::string &Name);

  Relation &relation(const std::string &Name);
  const Relation &relation(const std::string &Name) const;
  EqRel &eqrel(const std::string &Name);
  bool isEqRel(const std::string &Name) const {
    return EqRels.count(Name) != 0;
  }

  /// Every eqrel `E` implicitly provides a representative relation
  /// `E_repr` containing (element, current canonical representative).
  /// This models Soufflé's choice-domain pattern that cclyzer++ uses to
  /// propagate one representative per class (§6.1). Note it is
  /// *non-monotone* (representatives churn as classes merge), which is
  /// precisely the semantic unsoundness the paper attributes to the
  /// cclyzer++ encoding. All elements must be ensure()d before evaluation
  /// starts; representatives of later-added elements are not delta-tracked.
  bool isEqRelRepr(const std::string &Name) const {
    return reprTarget(Name) != nullptr;
  }
  EqRel *reprTarget(const std::string &Name) const {
    constexpr const char *Suffix = "_repr";
    constexpr size_t SuffixLen = 5;
    if (Name.size() <= SuffixLen ||
        Name.compare(Name.size() - SuffixLen, SuffixLen, Suffix) != 0)
      return nullptr;
    auto It = EqRels.find(Name.substr(0, Name.size() - SuffixLen));
    return It == EqRels.end() ? nullptr
                              : const_cast<EqRel *>(&It->second);
  }

  bool exists(const std::string &Name) const {
    return Relations.count(Name) != 0 || EqRels.count(Name) != 0 ||
           isEqRelRepr(Name);
  }

  /// Total explicit tuples across relations.
  size_t totalTuples() const;

  /// Ends the current iteration for every explicit relation and eqrel
  /// (each exactly once); returns true if any relation gained tuples.
  bool advanceAll() {
    bool Any = false;
    for (auto &[Name, Rel] : Relations)
      Any |= Rel.advance();
    for (auto &[Name, Eq] : EqRels)
      Any |= Eq.advance();
    return Any;
  }

  /// Sum of eqrel generations (monotone; used to detect equivalence
  /// growth).
  uint64_t eqrelGeneration() const {
    uint64_t Total = 0;
    for (const auto &[Name, Eq] : EqRels)
      Total += Eq.generation();
    return Total;
  }

private:
  std::unordered_map<std::string, Relation> Relations;
  std::unordered_map<std::string, EqRel> EqRels;
};

} // namespace datalog
} // namespace egglog

#endif // EGGLOG_DATALOG_DATABASE_H
