//===- datalog/Evaluator.cpp - Semi-naïve Datalog evaluation -----------------===//
//
// Part of egglog-cpp. See Evaluator.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "datalog/Evaluator.h"

#include "support/Timer.h"

#include <cctype>
#include <unordered_map>

using namespace egglog;
using namespace egglog::datalog;

//===----------------------------------------------------------------------===
// Rule parsing
//===----------------------------------------------------------------------===

namespace {

/// Minimal tokenizer for the classic Datalog rule syntax.
class RuleParser {
public:
  RuleParser(const std::string &Text) : Text(Text) {}

  bool parse(DatalogRule &Rule, std::string &Error) {
    std::unordered_map<std::string, uint32_t> Vars;
    if (!parseAtom(Rule.Head, Vars, Error))
      return false;
    skipSpace();
    if (match(":-")) {
      while (true) {
        Atom Body;
        if (!parseAtom(Body, Vars, Error))
          return false;
        Rule.Body.push_back(std::move(Body));
        skipSpace();
        if (match(","))
          continue;
        break;
      }
    }
    skipSpace();
    if (!match(".")) {
      Error = "expected '.' at end of rule";
      return false;
    }
    Rule.NumVars = static_cast<uint32_t>(Vars.size());
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool match(const std::string &Token) {
    skipSpace();
    if (Text.compare(Pos, Token.size(), Token) == 0) {
      Pos += Token.size();
      return true;
    }
    return false;
  }

  bool parseAtom(Atom &Out, std::unordered_map<std::string, uint32_t> &Vars,
                 std::string &Error) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    if (Pos == Start) {
      Error = "expected a relation name";
      return false;
    }
    Out.Rel = Text.substr(Start, Pos - Start);
    if (!match("(")) {
      Error = "expected '(' after relation name";
      return false;
    }
    while (true) {
      skipSpace();
      size_t TermStart = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      if (Pos == TermStart) {
        Error = "expected a term";
        return false;
      }
      std::string Token = Text.substr(TermStart, Pos - TermStart);
      Term T;
      if (std::isdigit(static_cast<unsigned char>(Token[0]))) {
        T.IsVar = false;
        T.Const = static_cast<Val>(std::stoul(Token));
      } else {
        T.IsVar = true;
        auto [It, Fresh] =
            Vars.emplace(Token, static_cast<uint32_t>(Vars.size()));
        T.Var = It->second;
      }
      Out.Terms.push_back(T);
      if (match(","))
        continue;
      if (match(")"))
        return true;
      Error = "expected ',' or ')' in atom";
      return false;
    }
  }
};

} // namespace

bool Evaluator::addRule(const std::string &Text) {
  DatalogRule Rule;
  RuleParser Parser(Text);
  if (!Parser.parse(Rule, ErrorMsg))
    return false;
  return addRule(std::move(Rule));
}

bool Evaluator::addRule(DatalogRule Rule) {
  // Validate relations, arities, and head-variable boundedness.
  auto CheckAtom = [&](const Atom &A, bool IsHead) {
    if (!DB.exists(A.Rel)) {
      ErrorMsg = "unknown relation '" + A.Rel + "'";
      return false;
    }
    unsigned Arity = (DB.isEqRel(A.Rel) || DB.isEqRelRepr(A.Rel))
                         ? 2
                         : DB.relation(A.Rel).arity();
    if (A.Terms.size() != Arity) {
      ErrorMsg = "arity mismatch on '" + A.Rel + "'";
      return false;
    }
    (void)IsHead;
    return true;
  };
  if (!CheckAtom(Rule.Head, true))
    return false;
  if (DB.isEqRelRepr(Rule.Head.Rel)) {
    ErrorMsg = "representative relations are read-only";
    return false;
  }
  std::vector<bool> Bound(Rule.NumVars, false);
  for (const Atom &A : Rule.Body) {
    if (!CheckAtom(A, false))
      return false;
    for (const Term &T : A.Terms)
      if (T.IsVar)
        Bound[T.Var] = true;
  }
  for (const Term &T : Rule.Head.Terms) {
    if (T.IsVar && !Bound[T.Var]) {
      ErrorMsg = "unbound variable in rule head";
      return false;
    }
  }
  Rules.push_back(std::move(Rule));
  return true;
}

//===----------------------------------------------------------------------===
// Index maintenance
//===----------------------------------------------------------------------===

namespace {
uint64_t hashBoundColumns(const std::vector<Val> &Row, uint32_t Mask) {
  uint64_t Hash = 1469598103934665603ull;
  for (size_t I = 0; I < Row.size(); ++I) {
    if (Mask & (1u << I)) {
      Hash ^= hashMix(Row[I]);
      Hash *= 1099511628211ull;
    }
  }
  return Hash;
}
} // namespace

void Evaluator::extendIndex(const std::string &Rel, uint32_t Mask,
                            ColIndex &Index) {
  const Relation &R = DB.relation(Rel);
  const auto &Rows = R.all();
  for (size_t I = Index.Built; I < Rows.size(); ++I)
    Index.Buckets[hashBoundColumns(Rows[I], Mask)].push_back(
        static_cast<uint32_t>(I));
  Index.Built = Rows.size();
}

//===----------------------------------------------------------------------===
// Join execution
//===----------------------------------------------------------------------===

void Evaluator::emitHead(const DatalogRule &Rule,
                         const std::vector<std::optional<Val>> &Env) {
  const Atom &Head = Rule.Head;
  std::vector<Val> Tuple(Head.Terms.size());
  for (size_t I = 0; I < Head.Terms.size(); ++I) {
    const Term &T = Head.Terms[I];
    Tuple[I] = T.IsVar ? *Env[T.Var] : T.Const;
  }
  if (DB.isEqRel(Head.Rel))
    DB.eqrel(Head.Rel).insert(Tuple[0], Tuple[1]);
  else
    DB.relation(Head.Rel).insert(Tuple);
}

bool Evaluator::checkDeadline() {
  if (Cancelled)
    return true;
  if (DeadlineSeconds <= 0 || (++StepCount & 0xFFF) != 0)
    return false;
  const Timer *Clock = static_cast<const Timer *>(DeadlineClock);
  if (Clock->seconds() > DeadlineSeconds)
    Cancelled = true;
  return Cancelled;
}

void Evaluator::joinFrom(const DatalogRule &Rule, size_t AtomIndex,
                         size_t DeltaAtom,
                         std::vector<std::optional<Val>> &Env) {
  if (checkDeadline())
    return;
  if (AtomIndex == Rule.Body.size()) {
    emitHead(Rule, Env);
    return;
  }
  const Atom &A = Rule.Body[AtomIndex];

  //=== representative atoms: (element, canonical representative). ========
  if (EqRel *Repr = DB.reprTarget(A.Rel)) {
    const Term &T0 = A.Terms[0], &T1 = A.Terms[1];
    auto ValueOf = [&](const Term &T) -> std::optional<Val> {
      if (!T.IsVar)
        return T.Const;
      return Env[T.Var];
    };
    auto BindOne = [&](const Term &T, Val V, auto Continue) {
      if (!T.IsVar) {
        if (T.Const == V)
          Continue();
        return;
      }
      if (Env[T.Var].has_value()) {
        if (*Env[T.Var] == V)
          Continue();
        return;
      }
      Env[T.Var] = V;
      Continue();
      Env[T.Var].reset();
    };
    auto Recurse = [&] { joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env); };
    auto EmitPair = [&](Val Element, Val Rep) {
      BindOne(T0, Element, [&] { BindOne(T1, Rep, Recurse); });
    };
    std::optional<Val> V0 = ValueOf(T0);

    if (AtomIndex == DeltaAtom) {
      // Delta: the absorbed members of each recent merge changed their
      // representative.
      for (const EqRel::MergeEvent &Event : Repr->deltaEvents()) {
        Val Rep = Repr->find(Event.Root);
        for (Val Absorbed : Event.Absorbed)
          EmitPair(Absorbed, Rep);
      }
      return;
    }
    if (V0) {
      if (*V0 < Repr->numElements())
        EmitPair(*V0, Repr->find(*V0));
      return;
    }
    std::optional<Val> V1 = ValueOf(T1);
    if (V1) {
      // Enumerate the class of the bound representative (empty when the
      // bound value is stale, i.e. no longer canonical).
      if (*V1 < Repr->numElements() && Repr->find(*V1) == *V1)
        for (Val M : Repr->members(*V1))
          EmitPair(M, *V1);
      return;
    }
    for (Val Element = 0; Element < Repr->numElements(); ++Element)
      EmitPair(Element, Repr->find(Element));
    return;
  }

  //=== eqrel atoms: class-based enumeration. ==============================
  if (DB.isEqRel(A.Rel)) {
    EqRel &Eq = DB.eqrel(A.Rel);
    const Term &T0 = A.Terms[0], &T1 = A.Terms[1];
    auto ValueOf = [&](const Term &T) -> std::optional<Val> {
      if (!T.IsVar)
        return T.Const;
      return Env[T.Var];
    };
    std::optional<Val> V0 = ValueOf(T0), V1 = ValueOf(T1);
    auto BindAndRecurse = [&](const Term &T, Val V) {
      if (!T.IsVar) {
        if (T.Const == V)
          joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env);
        return;
      }
      bool Fresh = !Env[T.Var].has_value();
      if (!Fresh) {
        if (*Env[T.Var] == V)
          joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env);
        return;
      }
      Env[T.Var] = V;
      joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env);
      Env[T.Var].reset();
    };
    auto BindPair = [&](Val A0, Val A1) {
      if (!T0.IsVar) {
        if (T0.Const != A0)
          return;
        BindAndRecurse(T1, A1);
        return;
      }
      bool Fresh = !Env[T0.Var].has_value();
      if (!Fresh) {
        if (*Env[T0.Var] == A0)
          BindAndRecurse(T1, A1);
        return;
      }
      Env[T0.Var] = A0;
      BindAndRecurse(T1, A1);
      Env[T0.Var].reset();
    };

    if (AtomIndex == DeltaAtom) {
      // Delta semantics: enumerate only the pairs that became equivalent
      // in the last iteration, reconstructed from the merge events. A pair
      // is new iff it connects an absorbed member with the rest of its new
      // class; supersets are harmless (duplicates dedupe downstream).
      for (const EqRel::MergeEvent &Event : Eq.deltaEvents()) {
        Val Root = Eq.find(Event.Root);
        if (V0) {
          if (Eq.find(*V0) != Root)
            continue;
          bool InAbsorbed = std::binary_search(Event.Absorbed.begin(),
                                               Event.Absorbed.end(), *V0);
          const std::vector<Val> &Partners =
              InAbsorbed ? Eq.members(Root) : Event.Absorbed;
          for (Val M : Partners)
            BindAndRecurse(T1, M);
          continue;
        }
        for (Val Absorbed : Event.Absorbed) {
          for (Val M : Eq.members(Root)) {
            BindPair(Absorbed, M);
            BindPair(M, Absorbed);
          }
        }
      }
      return;
    }

    if (V0 && V1) {
      if (Eq.same(*V0, *V1))
        joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env);
      return;
    }
    if (V0) {
      for (Val M : Eq.members(*V0))
        BindAndRecurse(T1, M);
      return;
    }
    if (V1) {
      for (Val M : Eq.members(*V1))
        BindAndRecurse(T0, M);
      return;
    }
    // Both free: enumerate every represented pair (the quadratic case).
    for (Val E : Eq.allElements()) {
      if (!T0.IsVar)
        continue;
      Env[T0.Var] = E;
      for (Val M : Eq.members(E))
        BindAndRecurse(T1, M);
      Env[T0.Var].reset();
    }
    return;
  }

  //=== explicit relations: indexed or scanning access. ====================
  Relation &R = DB.relation(A.Rel);
  const auto &Rows = R.all();
  size_t Lo = 0, Hi = Rows.size();
  if (AtomIndex == DeltaAtom) {
    Lo = R.deltaStart();
  } else if (DeltaAtom != SIZE_MAX && AtomIndex < DeltaAtom) {
    Hi = R.deltaStart();
  }

  // Mask of columns already bound (constants or bound variables).
  uint32_t Mask = 0;
  std::vector<Val> Probe(A.Terms.size(), 0);
  for (size_t I = 0; I < A.Terms.size(); ++I) {
    const Term &T = A.Terms[I];
    if (!T.IsVar) {
      Mask |= (1u << I);
      Probe[I] = T.Const;
    } else if (Env[T.Var].has_value()) {
      Mask |= (1u << I);
      Probe[I] = *Env[T.Var];
    }
  }

  auto TryRow = [&](const std::vector<Val> &Row) {
    // Bind / check each column, tracking which variables this atom binds
    // fresh so they can be unwound.
    uint32_t FreshMask = 0;
    bool Alive = true;
    for (size_t I = 0; I < A.Terms.size() && Alive; ++I) {
      const Term &T = A.Terms[I];
      if (!T.IsVar) {
        Alive = T.Const == Row[I];
      } else if (Env[T.Var].has_value()) {
        Alive = *Env[T.Var] == Row[I];
      } else {
        Env[T.Var] = Row[I];
        FreshMask |= (1u << I);
      }
    }
    if (Alive)
      joinFrom(Rule, AtomIndex + 1, DeltaAtom, Env);
    for (size_t I = 0; I < A.Terms.size(); ++I)
      if (FreshMask & (1u << I))
        Env[A.Terms[I].Var].reset();
  };

  if (Mask != 0) {
    ColIndex &Index = Indexes[A.Rel][Mask];
    extendIndex(A.Rel, Mask, Index);
    auto It = Index.Buckets.find(hashBoundColumns(Probe, Mask));
    if (It == Index.Buckets.end())
      return;
    for (uint32_t RowIdx : It->second) {
      if (RowIdx < Lo || RowIdx >= Hi)
        continue;
      TryRow(Rows[RowIdx]);
    }
    return;
  }
  for (size_t I = Lo; I < Hi; ++I)
    TryRow(Rows[I]);
}

void Evaluator::runRuleVariant(const DatalogRule &Rule, size_t DeltaAtom) {
  std::vector<std::optional<Val>> Env(Rule.NumVars);
  joinFrom(Rule, 0, DeltaAtom, Env);
}

//===----------------------------------------------------------------------===
// Fixpoint loop
//===----------------------------------------------------------------------===

EvalStats Evaluator::run(const EvalOptions &Options) {
  EvalStats Stats;
  Timer Total;
  DeadlineSeconds = Options.TimeoutSeconds;
  DeadlineClock = &Total;
  Cancelled = false;
  StepCount = 0;

  // Make initial facts visible as the first delta.
  DB.advanceAll();

  bool First = true;
  while (true) {
    ++Stats.Iterations;
    for (size_t R = 0; R < Rules.size(); ++R) {
      const DatalogRule &Rule = Rules[R];
      if (Rule.Body.empty()) {
        if (First)
          runRuleVariant(Rule, SIZE_MAX);
        continue;
      }
      if (!Options.SemiNaive || First) {
        runRuleVariant(Rule, SIZE_MAX);
      } else {
        // One delta variant per body atom, eqrel atoms included (their
        // delta is the set of newly equivalent pairs).
        for (size_t J = 0; J < Rule.Body.size(); ++J)
          runRuleVariant(Rule, J);
      }
      if (Cancelled || (Options.TimeoutSeconds > 0 &&
                        Total.seconds() > Options.TimeoutSeconds)) {
        Stats.TimedOut = true;
        Stats.Seconds = Total.seconds();
        return Stats;
      }
    }
    First = false;
    bool Grew = DB.advanceAll();
    if (!Grew)
      break;
    if (Options.MaxIterations && Stats.Iterations >= Options.MaxIterations)
      break;
  }
  Stats.Seconds = Total.seconds();
  return Stats;
}
