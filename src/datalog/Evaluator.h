//===- datalog/Evaluator.h - Semi-naïve Datalog evaluation -----*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rule representation and semi-naïve bottom-up evaluation for the Datalog
/// substrate. Rules are written in classic Datalog syntax:
///
///   path(x, z) :- path(x, y), edge(y, z).
///
/// Joins over explicit relations use lazily built column indexes; joins
/// over eqrel atoms enumerate union-find classes — including the quadratic
/// "join modulo equivalence" pattern the paper's §6.1 shows to be the
/// bottleneck of Datalog encodings of Steensgaard analysis.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_DATALOG_EVALUATOR_H
#define EGGLOG_DATALOG_EVALUATOR_H

#include "datalog/Database.h"

#include <optional>
#include <string>
#include <vector>

namespace egglog {
namespace datalog {

/// A term in an atom: a rule variable or a constant.
struct Term {
  bool IsVar = false;
  uint32_t Var = 0;
  Val Const = 0;
};

/// One atom: relation name applied to terms.
struct Atom {
  std::string Rel;
  std::vector<Term> Terms;
};

/// head :- body. An empty body makes the rule a fact.
struct DatalogRule {
  Atom Head;
  std::vector<Atom> Body;
  uint32_t NumVars = 0;
};

/// Evaluation knobs and result statistics.
struct EvalOptions {
  bool SemiNaive = true;
  double TimeoutSeconds = 0;
  size_t MaxIterations = 0; ///< 0 = until fixpoint.
};

struct EvalStats {
  size_t Iterations = 0;
  double Seconds = 0;
  bool TimedOut = false;
};

/// Bottom-up evaluator over a Database.
class Evaluator {
public:
  explicit Evaluator(Database &DB) : DB(DB) {}

  /// Parses and adds a rule in textual Datalog syntax; all relations
  /// referenced must already be declared. Returns false (with error())
  /// on malformed input, unknown relations, arity mismatches, or unbound
  /// head variables.
  bool addRule(const std::string &Text);

  /// Adds an already-built rule.
  bool addRule(DatalogRule Rule);

  const std::string &error() const { return ErrorMsg; }
  size_t numRules() const { return Rules.size(); }

  /// Runs to fixpoint (or until limits).
  EvalStats run(const EvalOptions &Options = EvalOptions());

private:
  Database &DB;
  std::vector<DatalogRule> Rules;
  std::string ErrorMsg;

  /// Cooperative cancellation: checked inside joins every few thousand
  /// steps so a single explosive rule cannot overrun the timeout.
  double DeadlineSeconds = 0;
  const void *DeadlineClock = nullptr;
  uint64_t StepCount = 0;
  bool Cancelled = false;

  bool checkDeadline();

  /// Per-(relation,mask) lazily built column index.
  struct ColIndex {
    std::unordered_map<uint64_t, std::vector<uint32_t>> Buckets;
    size_t Built = 0;
  };
  std::unordered_map<std::string, std::unordered_map<uint32_t, ColIndex>>
      Indexes;

  void extendIndex(const std::string &Rel, uint32_t Mask, ColIndex &Index);
  const std::vector<uint32_t> *probeIndex(const std::string &Rel,
                                          uint32_t Mask,
                                          const std::vector<Val> &Row,
                                          uint64_t &KeyHash);

  /// Executes one rule variant. \p DeltaAtom selects which body atom reads
  /// the delta (SIZE_MAX = all atoms read everything).
  void runRuleVariant(const DatalogRule &Rule, size_t DeltaAtom);

  void joinFrom(const DatalogRule &Rule, size_t AtomIndex, size_t DeltaAtom,
                std::vector<std::optional<Val>> &Env);

  void emitHead(const DatalogRule &Rule,
                const std::vector<std::optional<Val>> &Env);
};

} // namespace datalog
} // namespace egglog

#endif // EGGLOG_DATALOG_EVALUATOR_H
