//===- datalog/Database.cpp - Datalog relations and eqrel --------------------===//
//
// Part of egglog-cpp. See Database.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "datalog/Database.h"

using namespace egglog;
using namespace egglog::datalog;

Relation &Database::declareRelation(const std::string &Name, unsigned Arity) {
  assert(!exists(Name) && "relation redeclared");
  return Relations.emplace(Name, Relation(Arity)).first->second;
}

EqRel &Database::declareEqRel(const std::string &Name) {
  assert(!exists(Name) && "relation redeclared");
  return EqRels.emplace(Name, EqRel()).first->second;
}

Relation &Database::relation(const std::string &Name) {
  auto It = Relations.find(Name);
  assert(It != Relations.end() && "unknown relation");
  return It->second;
}

const Relation &Database::relation(const std::string &Name) const {
  auto It = Relations.find(Name);
  assert(It != Relations.end() && "unknown relation");
  return It->second;
}

EqRel &Database::eqrel(const std::string &Name) {
  auto It = EqRels.find(Name);
  assert(It != EqRels.end() && "unknown eqrel");
  return It->second;
}

size_t Database::totalTuples() const {
  size_t Total = 0;
  for (const auto &[Name, Rel] : Relations)
    Total += Rel.size();
  return Total;
}
