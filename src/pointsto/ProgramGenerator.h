//===- pointsto/ProgramGenerator.h - Synthetic pointer programs -*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of synthetic pointer-manipulating programs for
/// the §6.1 Steensgaard benchmark. The paper analyzed LLVM bitcode of the
/// postgresql-9.5.2 binaries via cclyzer++'s fact extractor; we have
/// neither postgres bitcode nor LLVM here, so this generator produces fact
/// sets with the same schema (alloc / copy / load / store / gep with
/// pre-enumerated field sub-allocations) and the structural features that
/// stress the encodings: long copy chains, heap graphs reachable through
/// loads and stores, and field-sensitive struct accesses. See DESIGN.md
/// §1.2 for why this substitution preserves the experiment.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_POINTSTO_PROGRAMGENERATOR_H
#define EGGLOG_POINTSTO_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace egglog {
namespace pointsto {

/// One synthetic program as extracted facts. Variables and allocations are
/// densely numbered; field sub-allocations are pre-enumerated (as
/// cclyzer++'s fact generator does for field-sensitive analysis).
struct Program {
  std::string Name;
  uint32_t NumVars = 0;
  /// Base allocation ids are 0..NumBaseAllocs-1; field sub-allocations
  /// follow.
  uint32_t NumBaseAllocs = 0;
  uint32_t NumFields = 0;

  /// v = alloca / malloc.
  std::vector<std::pair<uint32_t, uint32_t>> Allocs;
  /// d = s.
  std::vector<std::pair<uint32_t, uint32_t>> Copies;
  /// d = *s.
  std::vector<std::pair<uint32_t, uint32_t>> Loads;
  /// *d = s.
  std::vector<std::pair<uint32_t, uint32_t>> Stores;
  /// d = &b->f.
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> Geps;

  /// Total allocation ids including field sub-allocations.
  uint32_t numAllAllocs() const {
    return NumBaseAllocs + NumBaseAllocs * NumFields;
  }

  /// The sub-allocation id for field \p F of base allocation \p A.
  uint32_t fieldAlloc(uint32_t A, uint32_t F) const {
    return NumBaseAllocs + A * NumFields + F;
  }

  size_t numInstructions() const {
    return Allocs.size() + Copies.size() + Loads.size() + Stores.size() +
           Geps.size();
  }
};

/// Generation knobs.
struct GeneratorOptions {
  uint32_t Seed = 1;
  /// Target number of instructions.
  uint32_t Size = 1000;
  uint32_t NumFields = 2;
};

/// Generates one program deterministically from the options.
Program generateProgram(const std::string &Name,
                        const GeneratorOptions &Options);

/// The 30-program suite named after the postgresql-9.5.2 binaries of
/// Fig. 8, with sizes growing roughly geometrically so the slow encodings
/// hit the timeout exactly as in the paper. \p Scale multiplies every
/// program's size (1.0 = benchmark default; tests use smaller).
std::vector<Program> postgresSuite(double Scale = 1.0);

} // namespace pointsto
} // namespace egglog

#endif // EGGLOG_POINTSTO_PROGRAMGENERATOR_H
