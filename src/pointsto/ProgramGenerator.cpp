//===- pointsto/ProgramGenerator.cpp - Synthetic pointer programs ------------===//
//
// Part of egglog-cpp. See ProgramGenerator.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "pointsto/ProgramGenerator.h"

#include <algorithm>
#include <random>

using namespace egglog;
using namespace egglog::pointsto;

Program egglog::pointsto::generateProgram(const std::string &Name,
                                          const GeneratorOptions &Options) {
  std::mt19937 Rng(Options.Seed);
  Program P;
  P.Name = Name;
  P.NumFields = Options.NumFields;
  // Variable / allocation density modeled after C programs: roughly one
  // allocation site per 12 instructions and one variable per 2.5
  // instructions.
  P.NumVars = std::max<uint32_t>(8, Options.Size * 2 / 5);
  P.NumBaseAllocs = std::max<uint32_t>(4, Options.Size / 12);

  // Real C programs have locality: most assignments connect variables of
  // the same function/module, and distinct data structures stay separate,
  // so Steensgaard classes are numerous and moderate-sized. A uniformly
  // random generator instead collapses everything into one giant class,
  // which no real points-to benchmark exhibits. We therefore partition
  // variables and allocations into regions (think translation units) and
  // let only a small fraction of instructions cross regions.
  constexpr uint32_t RegionVars = 24;
  uint32_t NumRegions = std::max<uint32_t>(1, P.NumVars / RegionVars);
  std::uniform_int_distribution<uint32_t> Region(0, NumRegions - 1);
  std::uniform_int_distribution<uint32_t> Mix(0, 99);
  std::uniform_int_distribution<uint32_t> Field(0, P.NumFields - 1);

  auto VarIn = [&](uint32_t R) {
    uint32_t Lo = R * (P.NumVars / NumRegions);
    uint32_t Span = std::max<uint32_t>(1, P.NumVars / NumRegions);
    std::uniform_int_distribution<uint32_t> Dist(Lo, std::min(P.NumVars - 1,
                                                              Lo + Span - 1));
    return Dist(Rng);
  };
  auto AllocIn = [&](uint32_t R) {
    uint32_t Lo = R * (P.NumBaseAllocs / NumRegions);
    uint32_t Span = std::max<uint32_t>(1, P.NumBaseAllocs / NumRegions);
    std::uniform_int_distribution<uint32_t> Dist(
        Lo, std::min(P.NumBaseAllocs - 1, Lo + Span - 1));
    return Dist(Rng);
  };
  // ~3% of instructions cross regions (externally linked calls).
  auto PickRegions = [&](uint32_t &Ra, uint32_t &Rb) {
    Ra = Region(Rng);
    Rb = Mix(Rng) < 3 ? Region(Rng) : Ra;
  };

  // Seed every allocation with at least one address-taking variable in its
  // own region so the heap graph is reachable.
  for (uint32_t A = 0; A < P.NumBaseAllocs; ++A) {
    uint32_t R = A * NumRegions / P.NumBaseAllocs;
    P.Allocs.emplace_back(VarIn(R), A);
  }

  // Copy chains: long def-use chains typical of SSA-ized C (this is what
  // makes semi-naïve evaluation matter: each iteration extends frontiers a
  // little).
  while (P.numInstructions() < Options.Size) {
    uint32_t Kind = Mix(Rng);
    uint32_t Ra, Rb;
    PickRegions(Ra, Rb);
    if (Kind < 10) {
      P.Allocs.emplace_back(VarIn(Ra), AllocIn(Ra));
    } else if (Kind < 45) {
      // Chain of copies within one region.
      uint32_t Length = 1 + Mix(Rng) % 6;
      uint32_t Prev = VarIn(Rb);
      for (uint32_t I = 0; I < Length; ++I) {
        uint32_t Next = VarIn(Ra);
        P.Copies.emplace_back(Next, Prev);
        Prev = Next;
      }
    } else if (Kind < 65) {
      P.Loads.emplace_back(VarIn(Ra), VarIn(Rb));
    } else if (Kind < 85) {
      P.Stores.emplace_back(VarIn(Ra), VarIn(Rb));
    } else {
      P.Geps.emplace_back(VarIn(Ra), VarIn(Rb), Field(Rng));
    }
  }
  return P;
}

std::vector<Program> egglog::pointsto::postgresSuite(double Scale) {
  // Names and a rough size ordering mirroring Fig. 8's x-axis (small
  // shared objects up to psql/ecpg). Sizes grow geometrically so that the
  // quadratic encodings blow through the timeout partway along the suite,
  // like the paper's eqrel and cclyzer++ bars.
  static const std::pair<const char *, uint32_t> Entries[] = {
      {"libpgtypes.so.3.6", 400},   {"plpgsql.so", 500},
      {"libpq.so.5.8", 620},        {"libpqwalreceiver.so", 760},
      {"initdb", 920},              {"libecpg.so.6.7", 1100},
      {"libecpg_compat.so.3.7", 1300}, {"pg_ctl", 1550},
      {"pg_isready", 1800},         {"pg_recvlogical", 2100},
      {"dropdb", 2450},             {"dropuser", 2850},
      {"pg_receivexlog", 3300},     {"createdb", 3800},
      {"clusterdb", 4400},          {"pg_rewind", 5100},
      {"createuser", 5900},         {"pg_upgrade", 6800},
      {"reindexdb", 7800},          {"vacuumdb", 9000},
      {"droplang", 10400},          {"createlang", 12000},
      {"pg_basebackup", 13800},     {"pgbench", 15900},
      {"pg_dumpall", 18300},        {"pg_restore", 21000},
      {"dict_snowball.so", 24200},  {"pg_dump", 27800},
      {"psql", 32000},              {"ecpg", 36800},
  };
  std::vector<Program> Suite;
  uint32_t Seed = 1000;
  for (const auto &[Name, Size] : Entries) {
    GeneratorOptions Opts;
    Opts.Seed = Seed++;
    Opts.Size = std::max<uint32_t>(16, static_cast<uint32_t>(Size * Scale));
    Suite.push_back(generateProgram(Name, Opts));
  }
  return Suite;
}
