//===- pointsto/Analyses.h - Steensgaard analysis encodings ----*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five systems compared in Fig. 8 of the paper, all computing a
/// context-, flow-, path-insensitive and field-sensitive Steensgaard
/// points-to analysis:
///
///  * Egglog    — the native encoding: `vpt` is a function to an
///                uninterpreted Obj sort whose functional-dependency
///                repair is unification; canonicalization makes joins
///                plain equality joins (§6.1).
///  * EgglogNI  — the same encoding with semi-naïve evaluation disabled.
///  * EqRelEnc  — Datalog with an explicit eqrel and `vpt` closed under
///                equivalence (a pointer may point to many equivalent
///                allocations; the quadratic blow-up the paper describes).
///  * CClyzer   — the cclyzer++-style encoding: representative
///                propagation, one join-modulo-equivalence rule for
///                loads, and *without* the congruence rules — which makes
///                it unsound (it computes a different, finer partition).
///  * Patched   — CClyzer plus the congruence rules restored through the
///                eqrel (sound; agrees with egglog).
///
/// The comparison metric is the partition of allocation ids into
/// equivalence classes (canonicalized to the smallest member), which all
/// sound systems must agree on.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_POINTSTO_ANALYSES_H
#define EGGLOG_POINTSTO_ANALYSES_H

#include "pointsto/ProgramGenerator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace egglog {
namespace pointsto {

/// Which analysis implementation to run.
enum class System {
  Egglog,
  EgglogNI,
  EqRelEncoding,
  CClyzer,
  Patched,
};

const char *systemName(System S);

/// Canonical analysis outcome plus timing.
struct AnalysisResult {
  bool TimedOut = false;
  double Seconds = 0;
  /// Seconds spent in the engine's match phase (egglog systems only;
  /// zero for the Datalog and classic baselines). Includes the warm-up
  /// pre-pass when running multi-threaded.
  double SearchSeconds = 0;
  /// Seconds spent in the engine's apply phase (egglog systems only).
  double ApplySeconds = 0;
  /// Read-only staging share of ApplySeconds (multi-threaded runs only).
  double ApplyStageSeconds = 0;
  /// Seconds spent in the engine's rebuild phase (egglog systems only).
  double RebuildSeconds = 0;
  /// Read-only catch-up/gather share of RebuildSeconds (multi-threaded
  /// runs only).
  double RebuildGatherSeconds = 0;
  /// Order-independent hash of the engine's live database content after
  /// the run (egglog systems only, zero on timeout): the differential
  /// oracle that lets bench artifacts from different commits certify they
  /// computed the same fixpoint.
  uint64_t ContentHash = 0;
  /// For each allocation id (base + field), the smallest allocation id it
  /// is equivalent to.
  std::vector<uint32_t> AllocClass;
  /// Number of (pointer variable, allocation) facts the system derived
  /// (its internal representation size).
  size_t VptSize = 0;

  /// Number of distinct allocation classes.
  size_t numClasses() const;
};

/// Runs the chosen system on a program. \p TimeoutSeconds of 0 disables
/// the timeout. \p Threads sets the egglog engine's match-phase
/// concurrency (ignored by the Datalog baselines).
AnalysisResult runPointsTo(const Program &P, System S,
                           double TimeoutSeconds = 0, unsigned Threads = 1);

} // namespace pointsto
} // namespace egglog

#endif // EGGLOG_POINTSTO_ANALYSES_H
