//===- pointsto/Analyses.cpp - Steensgaard analysis encodings ----------------===//
//
// Part of egglog-cpp. See Analyses.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analyses.h"

#include "core/Frontend.h"
#include "datalog/Evaluator.h"
#include "support/Timer.h"

#include <algorithm>
#include <set>
#include <unordered_map>

using namespace egglog;
using namespace egglog::pointsto;

const char *egglog::pointsto::systemName(System S) {
  switch (S) {
  case System::Egglog:
    return "egglog";
  case System::EgglogNI:
    return "egglogNI";
  case System::EqRelEncoding:
    return "eqrel";
  case System::CClyzer:
    return "cclyzer++";
  case System::Patched:
    return "patched";
  }
  return "?";
}

size_t AnalysisResult::numClasses() const {
  std::set<uint32_t> Roots(AllocClass.begin(), AllocClass.end());
  return Roots.size();
}

//===----------------------------------------------------------------------===
// egglog encodings
//===----------------------------------------------------------------------===

namespace {

/// The schema and rules of the native egglog Steensgaard analysis. The
/// `vpt`, `contents` and `objOf` functions output the unifiable Obj sort;
/// the default merge (union) performs the Steensgaard joins, and
/// canonicalization turns "join modulo equivalence" into plain joins.
const char *EgglogProgram = R"(
  (sort Obj)
  (relation allocR (i64 i64))
  (relation copyR (i64 i64))
  (relation loadR (i64 i64))
  (relation storeR (i64 i64))
  (relation gepR (i64 i64 i64))
  (relation fieldAllocR (i64 i64 i64))
  (function objOf (i64) Obj)
  (function vpt (i64) Obj)
  (function contents (Obj) Obj)
  (rule ((allocR v a)) ((union (vpt v) (objOf a))))
  (rule ((copyR d s)) ((union (vpt d) (vpt s))))
  (rule ((loadR d s)) ((union (vpt d) (contents (vpt s)))))
  (rule ((storeR d s)) ((union (contents (vpt d)) (vpt s))))
  (rule ((gepR d b f) (fieldAllocR a f fa) (= (vpt b) (objOf a)))
        ((union (vpt d) (objOf fa))))
  ;; Field congruence: fields of unified allocations unify. Note this is a
  ;; plain equality join on canonical ids ((objOf a) = (objOf b)) - the
  ;; "join modulo equivalence" of the Datalog encodings disappears (§6.1).
  (rule ((fieldAllocR a f fa) (fieldAllocR b f fb)
         (= (objOf a) (objOf b)))
        ((union (objOf fa) (objOf fb))))
)";

AnalysisResult runEgglog(const Program &P, bool SemiNaive,
                         double TimeoutSeconds, unsigned Threads) {
  AnalysisResult Result;
  Frontend F;
  F.engine().setThreads(Threads);
  if (!F.execute(EgglogProgram)) {
    Result.TimedOut = true;
    return Result;
  }
  EGraph &G = F.graph();
  auto Fid = [&](const char *Name) {
    FunctionId Id = 0;
    bool Found = G.lookupFunctionName(Name, Id);
    (void)Found;
    return Id;
  };
  FunctionId AllocR = Fid("allocR"), CopyR = Fid("copyR"),
             LoadR = Fid("loadR"), StoreR = Fid("storeR"), GepR = Fid("gepR"),
             FieldAllocR = Fid("fieldAllocR"), ObjOf = Fid("objOf"),
             Vpt = Fid("vpt");

  Timer Clock;
  auto Fact2 = [&](FunctionId Rel, uint32_t A, uint32_t B) {
    Value Keys[2] = {G.mkI64(A), G.mkI64(B)};
    G.setValue(Rel, Keys, G.mkUnit());
  };
  for (auto [V, A] : P.Allocs)
    Fact2(AllocR, V, A);
  for (auto [D, S] : P.Copies)
    Fact2(CopyR, D, S);
  for (auto [D, S] : P.Loads)
    Fact2(LoadR, D, S);
  for (auto [D, S] : P.Stores)
    Fact2(StoreR, D, S);
  for (auto [D, B, Fld] : P.Geps) {
    Value Keys[3] = {G.mkI64(D), G.mkI64(B), G.mkI64(Fld)};
    G.setValue(GepR, Keys, G.mkUnit());
  }
  for (uint32_t A = 0; A < P.NumBaseAllocs; ++A)
    for (uint32_t Fld = 0; Fld < P.NumFields; ++Fld) {
      Value Keys[3] = {G.mkI64(A), G.mkI64(Fld),
                       G.mkI64(P.fieldAlloc(A, Fld))};
      G.setValue(FieldAllocR, Keys, G.mkUnit());
    }

  RunOptions Opts;
  Opts.Iterations = 1000000;
  Opts.SemiNaive = SemiNaive;
  Opts.TimeoutSeconds = TimeoutSeconds;
  RunReport Report = F.engine().run(Opts);
  Result.Seconds = Clock.seconds();
  for (const IterationStats &Stats : Report.Iterations) {
    Result.SearchSeconds += Stats.SearchSeconds;
    Result.ApplySeconds += Stats.ApplySeconds;
    Result.ApplyStageSeconds += Stats.ApplyStageSeconds;
    Result.RebuildSeconds += Stats.RebuildSeconds;
    Result.RebuildGatherSeconds += Stats.RebuildGatherSeconds;
  }
  Result.TimedOut = Report.TimedOut;
  if (Result.TimedOut)
    return Result;
  Result.ContentHash = G.liveContentHash();

  // Extract the allocation partition: group allocation ids by the
  // canonical Obj of objOf.
  Result.AllocClass.assign(P.numAllAllocs(), 0);
  std::unordered_map<uint64_t, uint32_t> ClassMin;
  const Table &ObjTable = *G.function(ObjOf).Storage;
  for (size_t Row : ObjTable.liveRows()) {
    uint32_t A = static_cast<uint32_t>(G.valueToI64(ObjTable.cell(Row, 0)));
    uint64_t Class = G.canonicalize(ObjTable.cell(Row, 1)).Bits;
    auto [It, Fresh] = ClassMin.emplace(Class, A);
    if (!Fresh)
      It->second = std::min(It->second, A);
  }
  for (uint32_t A = 0; A < P.numAllAllocs(); ++A)
    Result.AllocClass[A] = A;
  for (size_t Row : ObjTable.liveRows()) {
    uint32_t A = static_cast<uint32_t>(G.valueToI64(ObjTable.cell(Row, 0)));
    Result.AllocClass[A] = ClassMin[G.canonicalize(ObjTable.cell(Row, 1)).Bits];
  }
  Result.VptSize = G.functionSize(Vpt);
  return Result;
}

//===----------------------------------------------------------------------===
// Datalog encodings
//===----------------------------------------------------------------------===

AnalysisResult runDatalog(const Program &P, System S,
                          double TimeoutSeconds) {
  AnalysisResult Result;
  datalog::Database DB;
  DB.declareRelation("alloc", 2);
  DB.declareRelation("copy", 2);
  DB.declareRelation("load", 2);
  DB.declareRelation("store", 2);
  DB.declareRelation("gep", 3);
  DB.declareRelation("fieldAlloc", 3);
  DB.declareRelation("vpt", 2);
  DB.declareRelation("aPt", 2);
  DB.declareEqRel("eql");

  // The representative relation only covers elements known up front.
  DB.eqrel("eql").ensure(P.numAllAllocs() == 0 ? 0 : P.numAllAllocs() - 1);

  datalog::Evaluator E(DB);
  bool Ok = true;
  if (S == System::EqRelEncoding) {
    // Nappa et al.'s direct encoding: no canonical representatives, so a
    // pointer may point to every member of an equivalence class and vpt is
    // closed under the eqrel — the quadratic blow-up of §6.1.
    Ok &= E.addRule("vpt(v, a) :- alloc(v, a).");
    Ok &= E.addRule("vpt(d, a) :- copy(d, s), vpt(s, a).");
    Ok &= E.addRule("eql(a, b) :- copy(d, s), vpt(d, a), vpt(s, b).");
    Ok &= E.addRule("eql(a, b) :- vpt(v, a), vpt(v, b).");
    Ok &= E.addRule("vpt(d, fa) :- gep(d, b, f), vpt(b, a), "
                    "fieldAlloc(a, f, fa).");
    Ok &= E.addRule("aPt(a, b) :- store(x, y), vpt(x, a), vpt(y, b).");
    Ok &= E.addRule("vpt(d, b) :- load(d, s), vpt(s, a), eql(a, a2), "
                    "aPt(a2, b).");
    Ok &= E.addRule("eql(ya, da) :- store(x, y), vpt(x, xa), vpt(y, ya), "
                    "load(d, q), vpt(q, qa), vpt(d, da), eql(xa, qa).");
    Ok &= E.addRule("eql(f1, f2) :- fieldAlloc(a1, f, f1), "
                    "fieldAlloc(a2, f, f2), eql(a1, a2).");
    Ok &= E.addRule("vpt(v, b) :- vpt(v, a), eql(a, b).");
  } else {
    // cclyzer++-style representative propagation: vpt carries one
    // representative per class (via the choice-style eql_repr relation),
    // keeping it near-linear. Loads still need the join modulo
    // equivalence that the paper identifies as an order of magnitude
    // slower than every other rule.
    Ok &= E.addRule("vpt(v, r) :- alloc(v, a), eql_repr(a, r).");
    Ok &= E.addRule("vpt(d, r) :- copy(d, s), vpt(s, a), eql_repr(a, r).");
    Ok &= E.addRule("eql(a, b) :- copy(d, s), vpt(d, a), vpt(s, b).");
    Ok &= E.addRule("eql(a, b) :- vpt(v, a), vpt(v, b).");
    Ok &= E.addRule("vpt(d, fr) :- gep(d, b, f), vpt(b, a), "
                    "fieldAlloc(a, f, fa), eql_repr(fa, fr).");
    Ok &= E.addRule("aPt(ar, br) :- store(x, y), vpt(x, a), eql_repr(a, ar), "
                    "vpt(y, b), eql_repr(b, br).");
    // Join modulo equivalence (the paper's slow rule).
    Ok &= E.addRule("vpt(d, br) :- load(d, s), vpt(s, a), eql(a, a2), "
                    "aPt(a2, b), eql_repr(b, br).");
    // The store/load unification rule adapted from the eqrel paper
    // (§6.1's displayed rule): if the store target and load source alias,
    // the stored value's pointees unify with the loaded value's pointees.
    Ok &= E.addRule("eql(ya, da) :- store(x, y), vpt(x, xa), vpt(y, ya), "
                    "load(d, q), vpt(q, qa), vpt(d, da), eql(xa, qa).");
    if (S == System::Patched) {
      // Congruence rules whose absence makes cclyzer++ unsound: contents
      // of equivalent cells unify (load/load and store/store), and fields
      // of equivalent allocations unify.
      Ok &= E.addRule("eql(da, ea) :- load(d, p), vpt(p, pa), vpt(d, da), "
                      "load(e, q), vpt(q, qa), vpt(e, ea), eql(pa, qa).");
      Ok &= E.addRule("eql(ya, za) :- store(x, y), vpt(x, xa), vpt(y, ya), "
                      "store(w, z), vpt(w, wa), vpt(z, za), eql(xa, wa).");
      Ok &= E.addRule("eql(f1, f2) :- fieldAlloc(a1, f, f1), "
                      "fieldAlloc(a2, f, f2), eql(a1, a2).");
    }
  }
  if (!Ok) {
    Result.TimedOut = true;
    return Result;
  }

  Timer Clock;
  for (auto [V, A] : P.Allocs)
    DB.relation("alloc").insert({V, A});
  for (auto [D, Src] : P.Copies)
    DB.relation("copy").insert({D, Src});
  for (auto [D, Src] : P.Loads)
    DB.relation("load").insert({D, Src});
  for (auto [D, Src] : P.Stores)
    DB.relation("store").insert({D, Src});
  for (auto [D, B, Fld] : P.Geps)
    DB.relation("gep").insert({D, B, Fld});
  for (uint32_t A = 0; A < P.NumBaseAllocs; ++A)
    for (uint32_t Fld = 0; Fld < P.NumFields; ++Fld)
      DB.relation("fieldAlloc").insert({A, Fld, P.fieldAlloc(A, Fld)});

  datalog::EvalOptions Opts;
  Opts.TimeoutSeconds = TimeoutSeconds;
  datalog::EvalStats Stats = E.run(Opts);
  Result.Seconds = Clock.seconds();
  Result.TimedOut = Stats.TimedOut;
  if (Result.TimedOut)
    return Result;

  // Extract the allocation partition from the eqrel.
  datalog::EqRel &Eql = DB.eqrel("eql");
  Result.AllocClass.assign(P.numAllAllocs(), 0);
  for (uint32_t A = 0; A < P.numAllAllocs(); ++A) {
    const std::vector<datalog::Val> &Members = Eql.members(A);
    uint32_t Min = A;
    for (datalog::Val M : Members)
      Min = std::min(Min, M);
    Result.AllocClass[A] = Min;
  }
  Result.VptSize = DB.relation("vpt").size();
  return Result;
}

} // namespace

AnalysisResult egglog::pointsto::runPointsTo(const Program &P, System S,
                                             double TimeoutSeconds,
                                             unsigned Threads) {
  switch (S) {
  case System::Egglog:
    return runEgglog(P, /*SemiNaive=*/true, TimeoutSeconds, Threads);
  case System::EgglogNI:
    return runEgglog(P, /*SemiNaive=*/false, TimeoutSeconds, Threads);
  case System::EqRelEncoding:
  case System::CClyzer:
  case System::Patched:
    return runDatalog(P, S, TimeoutSeconds);
  }
  return AnalysisResult();
}
