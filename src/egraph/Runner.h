//===- egraph/Runner.h - Classic EqSat runner ------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equality-saturation loop for the classic e-graph: search all
/// rewrites, apply the matches, rebuild; with egg's BackOff scheduler
/// (rules that over-match are banned for exponentially growing spans).
/// This is the `egg` baseline driver for Fig. 7.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_EGRAPH_RUNNER_H
#define EGGLOG_EGRAPH_RUNNER_H

#include "egraph/Matcher.h"

#include <string>
#include <vector>

namespace egglog {
namespace classic {

/// A rewrite rule: lhs pattern => rhs pattern over shared variables.
struct Rewrite {
  std::string Name;
  Pattern Lhs;
  Pattern Rhs;
};

/// Scheduler and iteration knobs (mirroring egg's Runner / BackoffScheduler
/// defaults).
struct RunnerOptions {
  unsigned Iterations = 30;
  bool UseBackoff = true;
  uint64_t BackoffMatchLimit = 1000;
  uint64_t BackoffBanLength = 5;
  size_t NodeLimit = 0;
  double TimeoutSeconds = 0;
};

/// Per-iteration statistics for the growth curves of Fig. 7.
struct RunnerIteration {
  size_t Matches = 0;
  size_t ENodes = 0;
  size_t Classes = 0;
  double SearchSeconds = 0;
  double ApplySeconds = 0;
  double RebuildSeconds = 0;
};

/// Result of a run.
struct RunnerReport {
  std::vector<RunnerIteration> Iterations;
  bool Saturated = false;
  bool HitNodeLimit = false;
  bool TimedOut = false;
  double TotalSeconds = 0;
};

/// Drives equality saturation over a classic e-graph.
class Runner {
public:
  explicit Runner(EGraphClassic &Graph) : Graph(Graph) {}

  /// Adds a rewrite parsed from pattern strings, e.g.
  /// addRewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"). Returns false on a
  /// malformed pattern or unbound right-hand variable.
  bool addRewrite(const std::string &Name, const std::string &Lhs,
                  const std::string &Rhs);

  size_t numRewrites() const { return Rewrites.size(); }

  /// Runs until iteration/size/time limits or saturation.
  RunnerReport run(const RunnerOptions &Options);

  EGraphClassic &graph() { return Graph; }

private:
  struct RewriteState {
    uint64_t BannedUntil = 0;
    unsigned TimesBanned = 0;
  };

  EGraphClassic &Graph;
  std::vector<Rewrite> Rewrites;
  std::vector<RewriteState> States;
  uint64_t GlobalIteration = 0;
};

} // namespace classic
} // namespace egglog

#endif // EGGLOG_EGRAPH_RUNNER_H
