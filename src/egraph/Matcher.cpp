//===- egraph/Matcher.cpp - Top-down backtracking e-matching ----------------===//
//
// Part of egglog-cpp. See Matcher.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "egraph/Matcher.h"

#include "support/SExpr.h"

#include <algorithm>
#include <cassert>

using namespace egglog;
using namespace egglog::classic;

uint32_t Pattern::numVars() const {
  uint32_t Max = 0;
  if (PatKind == Kind::Var)
    return VarId + 1;
  for (const Pattern &Child : Children)
    Max = std::max(Max, Child.numVars());
  return Max;
}

namespace {

constexpr ClassId Unbound = UINT32_MAX;

/// Recursive backtracking matcher: tries to match \p P against class
/// \p Id under the partial substitution \p S.
bool matchInto(const EGraphClassic &Graph, const Pattern &P, ClassId Id,
               Subst &S, const std::function<bool()> &Continue) {
  Id = Graph.find(Id);
  if (P.PatKind == Pattern::Kind::Var) {
    if (S[P.VarId] != Unbound)
      return S[P.VarId] == Id && Continue();
    S[P.VarId] = Id;
    bool Result = Continue();
    S[P.VarId] = Unbound;
    return Result;
  }
  // Try every matching e-node in the class; enumerate all alternatives
  // rather than stopping at the first (callers collect every match).
  const EClass &Class = Graph.eclass(Id);
  for (const ENode &Node : Class.Nodes) {
    if (Node.Op != P.Op)
      continue;
    if (P.Children.empty()) {
      if (P.HasPayload && Node.Payload != P.Payload)
        continue;
      if (!Node.Children.empty())
        continue;
      Continue();
      continue;
    }
    if (Node.Children.size() != P.Children.size())
      continue;
    // Match children left to right via nested continuations.
    std::function<bool(size_t)> MatchChild = [&](size_t Index) -> bool {
      if (Index == P.Children.size())
        return Continue();
      return matchInto(Graph, P.Children[Index], Node.Children[Index], S,
                       [&] { return MatchChild(Index + 1); });
    };
    MatchChild(0);
  }
  return false;
}

} // namespace

void egglog::classic::matchPattern(
    const EGraphClassic &Graph, const Pattern &P,
    const std::function<void(ClassId, const Subst &)> &Callback) {
  Subst S(P.numVars(), Unbound);
  for (ClassId Root : Graph.canonicalClasses()) {
    matchInto(Graph, P, Root, S, [&] {
      Callback(Root, S);
      return false; // keep enumerating
    });
  }
}

ClassId egglog::classic::instantiate(EGraphClassic &Graph, const Pattern &P,
                                     const Subst &S) {
  if (P.PatKind == Pattern::Kind::Var) {
    assert(S[P.VarId] != Unbound && "instantiating an unbound variable");
    return S[P.VarId];
  }
  ENode Node;
  Node.Op = P.Op;
  Node.Payload = P.Payload;
  for (const Pattern &Child : P.Children)
    Node.Children.push_back(instantiate(Graph, Child, S));
  return Graph.add(std::move(Node));
}

namespace {

Pattern convert(EGraphClassic &Graph, const SExpr &Node,
                std::vector<std::string> &VarNames, bool &Ok) {
  if (!Ok)
    return Pattern();
  if (Node.isInteger())
    return Pattern::leaf(Graph.opId("Num"), Node.IntValue);
  if (Node.isSymbol()) {
    const std::string &Name = Node.Text;
    if (!Name.empty() && Name[0] == '?') {
      auto It = std::find(VarNames.begin(), VarNames.end(), Name);
      uint32_t Id;
      if (It == VarNames.end()) {
        Id = static_cast<uint32_t>(VarNames.size());
        VarNames.push_back(Name);
      } else {
        Id = static_cast<uint32_t>(It - VarNames.begin());
      }
      return Pattern::var(Id);
    }
    // Bare symbols are nullary operators (e.g. variables of the object
    // language like "a" appear as Sym leaves when building terms, but in
    // patterns a bare name is an operator).
    return Pattern::node(Graph.opId(Name), {});
  }
  if (Node.isList() && Node.size() >= 1 && Node[0].isSymbol()) {
    // (Num k) denotes the integer-constant leaf, matching the bare-integer
    // shorthand.
    if (Node[0].Text == "Num" && Node.size() == 2 && Node[1].isInteger())
      return Pattern::leaf(Graph.opId("Num"), Node[1].IntValue);
    std::vector<Pattern> Children;
    for (size_t I = 1; I < Node.size(); ++I)
      Children.push_back(convert(Graph, Node[I], VarNames, Ok));
    return Pattern::node(Graph.opId(Node[0].Text), std::move(Children));
  }
  Ok = false;
  return Pattern();
}

} // namespace

std::optional<Pattern>
egglog::classic::parsePattern(EGraphClassic &Graph, const std::string &Source,
                              std::vector<std::string> &VarNames) {
  ParseResult Parsed = parseSExprs(Source);
  if (!Parsed.Ok || Parsed.Forms.size() != 1)
    return std::nullopt;
  bool Ok = true;
  Pattern P = convert(Graph, Parsed.Forms[0], VarNames, Ok);
  if (!Ok)
    return std::nullopt;
  return P;
}
