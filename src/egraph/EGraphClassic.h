//===- egraph/EGraphClassic.h - Classic egg-style e-graph ------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic equality-saturation e-graph in the style of egg (Willsey et
/// al. 2021): hash-consed e-nodes, e-classes with parent lists, and
/// deferred rebuilding driven by a worklist. This is the `egg` baseline of
/// the paper's Fig. 7 micro-benchmark — the system egglog is compared
/// against — with the traditional *top-down backtracking* e-matcher rather
/// than egglog's relational one.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_EGRAPH_EGRAPHCLASSIC_H
#define EGGLOG_EGRAPH_EGRAPHCLASSIC_H

#include "core/UnionFind.h"
#include "support/Interner.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {
namespace classic {

/// Identifier of an e-class (not necessarily canonical).
using ClassId = uint32_t;

/// An e-node: an operator applied to child e-classes. Leaf operators carry
/// an immediate payload (integer constants and interned symbol names).
struct ENode {
  uint32_t Op = 0;
  int64_t Payload = 0;
  std::vector<ClassId> Children;

  bool operator==(const ENode &Other) const {
    return Op == Other.Op && Payload == Other.Payload &&
           Children == Other.Children;
  }
};

/// Hash functor over canonical e-nodes.
struct ENodeHash {
  size_t operator()(const ENode &Node) const;
};

/// One e-class: its member e-nodes and the (parent e-node, parent class)
/// pairs used by rebuilding.
struct EClass {
  std::vector<ENode> Nodes;
  std::vector<std::pair<ENode, ClassId>> Parents;
};

/// The classic e-graph with deferred rebuilding.
class EGraphClassic {
public:
  /// Interns an operator name.
  uint32_t opId(const std::string &Name) { return Ops.intern(Name); }
  const std::string &opName(uint32_t Op) const { return Ops.lookup(Op); }

  /// Adds (hash-conses) an e-node, canonicalizing its children. Returns the
  /// canonical class representing it.
  ClassId add(ENode Node);

  /// Convenience constructors.
  ClassId addLeaf(const std::string &Op, int64_t Payload = 0);
  ClassId addCall(const std::string &Op, const std::vector<ClassId> &Children);

  /// Canonical id for a class.
  ClassId find(ClassId Id) const {
    return static_cast<ClassId>(UF.find(Id));
  }

  /// Unions two classes; returns true if they were distinct. Marks the
  /// merged class dirty for the next rebuild.
  bool merge(ClassId A, ClassId B);

  /// Restores the hashcons and congruence invariants (egg's deferred
  /// rebuild). Must be called before matching.
  void rebuild();

  bool isClean() const { return Worklist.empty(); }

  /// Number of canonical e-nodes (after rebuild this equals the hashcons
  /// size).
  size_t numENodes() const { return Hashcons.size(); }

  /// Number of canonical e-classes.
  size_t numClasses() const;

  /// Access to a canonical class.
  const EClass &eclass(ClassId Id) const { return Classes[find(Id)]; }

  /// All canonical class ids (for match iteration).
  std::vector<ClassId> canonicalClasses() const;

  /// Total unions performed.
  uint64_t unionCount() const { return UF.unionCount(); }

private:
  UnionFind UF;
  StringInterner Ops;
  std::unordered_map<ENode, ClassId, ENodeHash> Hashcons;
  std::vector<EClass> Classes;
  std::vector<ClassId> Worklist;

  ENode canonicalizeNode(const ENode &Node) const;
  void repair(ClassId Id);
};

} // namespace classic
} // namespace egglog

#endif // EGGLOG_EGRAPH_EGRAPHCLASSIC_H
