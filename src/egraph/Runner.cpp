//===- egraph/Runner.cpp - Classic EqSat runner ------------------------------===//
//
// Part of egglog-cpp. See Runner.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "egraph/Runner.h"

#include "support/Timer.h"

using namespace egglog;
using namespace egglog::classic;

bool Runner::addRewrite(const std::string &Name, const std::string &Lhs,
                        const std::string &Rhs) {
  std::vector<std::string> VarNames;
  std::optional<Pattern> LhsPat = parsePattern(Graph, Lhs, VarNames);
  if (!LhsPat)
    return false;
  size_t LhsVars = VarNames.size();
  std::optional<Pattern> RhsPat = parsePattern(Graph, Rhs, VarNames);
  if (!RhsPat)
    return false;
  // Every right-hand variable must be bound on the left.
  if (VarNames.size() != LhsVars)
    return false;
  Rewrites.push_back(Rewrite{Name, std::move(*LhsPat), std::move(*RhsPat)});
  States.push_back(RewriteState{});
  return true;
}

RunnerReport Runner::run(const RunnerOptions &Options) {
  RunnerReport Report;
  Timer Total;
  Graph.rebuild();

  for (unsigned Iter = 0; Iter < Options.Iterations; ++Iter) {
    ++GlobalIteration;
    RunnerIteration Stats;
    Timer Phase;

    size_t ENodesBefore = Graph.numENodes();
    uint64_t UnionsBefore = Graph.unionCount();

    // Search phase: collect all matches before applying any (classic
    // EqSat keeps search and apply separate so all rules see the same
    // e-graph).
    struct Match {
      size_t RewriteIndex;
      ClassId Root;
      Subst S;
    };
    std::vector<Match> Matches;
    bool AnyBanned = false;
    for (size_t R = 0; R < Rewrites.size(); ++R) {
      RewriteState &State = States[R];
      if (Options.UseBackoff && GlobalIteration < State.BannedUntil) {
        AnyBanned = true;
        continue;
      }
      size_t Before = Matches.size();
      matchPattern(Graph, Rewrites[R].Lhs,
                   [&](ClassId Root, const Subst &S) {
                     Matches.push_back(Match{R, Root, S});
                   });
      size_t Found = Matches.size() - Before;
      if (Options.UseBackoff) {
        uint64_t Threshold = Options.BackoffMatchLimit << State.TimesBanned;
        if (Found > Threshold) {
          uint64_t BanSpan = Options.BackoffBanLength << State.TimesBanned;
          State.BannedUntil = GlobalIteration + BanSpan;
          ++State.TimesBanned;
          AnyBanned = true;
          Matches.resize(Before);
          continue;
        }
      }
      Stats.Matches += Found;
    }
    Stats.SearchSeconds = Phase.seconds();

    // Apply phase: instantiate right-hand sides and merge.
    Phase.reset();
    for (const Match &M : Matches) {
      ClassId Result = instantiate(Graph, Rewrites[M.RewriteIndex].Rhs, M.S);
      Graph.merge(M.Root, Result);
    }
    Stats.ApplySeconds = Phase.seconds();

    // Rebuild phase.
    Phase.reset();
    Graph.rebuild();
    Stats.RebuildSeconds = Phase.seconds();

    Stats.ENodes = Graph.numENodes();
    Stats.Classes = Graph.numClasses();
    Report.Iterations.push_back(Stats);

    bool Changed = Graph.numENodes() != ENodesBefore ||
                   Graph.unionCount() != UnionsBefore;
    if (!Changed && !AnyBanned) {
      Report.Saturated = true;
      break;
    }
    if (Options.NodeLimit && Stats.ENodes > Options.NodeLimit) {
      Report.HitNodeLimit = true;
      break;
    }
    if (Options.TimeoutSeconds > 0 &&
        Total.seconds() > Options.TimeoutSeconds) {
      Report.TimedOut = true;
      break;
    }
  }
  Report.TotalSeconds = Total.seconds();
  return Report;
}
