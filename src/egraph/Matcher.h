//===- egraph/Matcher.h - Top-down backtracking e-matching -----*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional top-down backtracking e-matcher used by classic EqSat
/// engines — the algorithm whose inefficiency on multi-patterns motivated
/// relational e-matching (§2.2 of the paper). Patterns are terms with
/// pattern variables; matching a pattern against an e-class enumerates
/// substitutions from variables to e-classes.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_EGRAPH_MATCHER_H
#define EGGLOG_EGRAPH_MATCHER_H

#include "egraph/EGraphClassic.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace egglog {
namespace classic {

/// A pattern term: a variable or an operator applied to child patterns.
struct Pattern {
  enum class Kind { Var, Node };
  Kind PatKind = Kind::Node;
  /// Variable index (for Var).
  uint32_t VarId = 0;
  /// Operator and leaf payload (for Node).
  uint32_t Op = 0;
  int64_t Payload = 0;
  bool HasPayload = false;
  std::vector<Pattern> Children;

  static Pattern var(uint32_t Id) {
    Pattern P;
    P.PatKind = Kind::Var;
    P.VarId = Id;
    return P;
  }
  static Pattern leaf(uint32_t Op, int64_t Payload) {
    Pattern P;
    P.Op = Op;
    P.Payload = Payload;
    P.HasPayload = true;
    return P;
  }
  static Pattern node(uint32_t Op, std::vector<Pattern> Children) {
    Pattern P;
    P.Op = Op;
    P.Children = std::move(Children);
    return P;
  }

  /// Number of variables (1 + max var id), for sizing substitutions.
  uint32_t numVars() const;
};

/// A substitution from pattern variables to canonical e-classes.
using Subst = std::vector<ClassId>;

/// Calls \p Callback once per (root class, substitution) match of
/// \p P anywhere in the e-graph. The e-graph must be clean (rebuilt).
void matchPattern(const EGraphClassic &Graph, const Pattern &P,
                  const std::function<void(ClassId, const Subst &)> &Callback);

/// Instantiates \p P under \p S, adding any new e-nodes; returns the class
/// of the result.
ClassId instantiate(EGraphClassic &Graph, const Pattern &P, const Subst &S);

/// Parses an s-expression-like pattern string, e.g. "(* x (+ y 1))".
/// Symbols starting with '?' are variables; bare integers are Num leaves;
/// other symbols are nullary operators. Returns nullopt on malformed input.
std::optional<Pattern> parsePattern(EGraphClassic &Graph,
                                    const std::string &Source,
                                    std::vector<std::string> &VarNames);

} // namespace classic
} // namespace egglog

#endif // EGGLOG_EGRAPH_MATCHER_H
