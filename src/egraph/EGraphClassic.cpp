//===- egraph/EGraphClassic.cpp - Classic egg-style e-graph -----------------===//
//
// Part of egglog-cpp. See EGraphClassic.h for an overview. The rebuild
// algorithm follows egg (Willsey et al. 2021), itself based on Downey,
// Sethi and Tarjan's congruence closure.
//
//===----------------------------------------------------------------------===//

#include "egraph/EGraphClassic.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace egglog;
using namespace egglog::classic;

size_t ENodeHash::operator()(const ENode &Node) const {
  uint64_t Hash = hashMix((static_cast<uint64_t>(Node.Op) << 32) ^
                          static_cast<uint64_t>(Node.Payload));
  for (ClassId Child : Node.Children)
    Hash = hashCombine(Hash, hashMix(Child));
  return Hash;
}

ENode EGraphClassic::canonicalizeNode(const ENode &Node) const {
  ENode Canonical = Node;
  for (ClassId &Child : Canonical.Children)
    Child = find(Child);
  return Canonical;
}

ClassId EGraphClassic::add(ENode Node) {
  ENode Canonical = canonicalizeNode(Node);
  auto It = Hashcons.find(Canonical);
  if (It != Hashcons.end())
    return find(It->second);
  ClassId Id = static_cast<ClassId>(UF.makeSet());
  assert(Id == Classes.size() && "class table out of sync with union-find");
  Classes.emplace_back();
  Classes[Id].Nodes.push_back(Canonical);
  for (ClassId Child : Canonical.Children)
    Classes[find(Child)].Parents.emplace_back(Canonical, Id);
  Hashcons.emplace(std::move(Canonical), Id);
  return Id;
}

ClassId EGraphClassic::addLeaf(const std::string &Op, int64_t Payload) {
  ENode Node;
  Node.Op = opId(Op);
  Node.Payload = Payload;
  return add(std::move(Node));
}

ClassId EGraphClassic::addCall(const std::string &Op,
                               const std::vector<ClassId> &Children) {
  ENode Node;
  Node.Op = opId(Op);
  Node.Children = Children;
  return add(std::move(Node));
}

bool EGraphClassic::merge(ClassId A, ClassId B) {
  ClassId RootA = find(A), RootB = find(B);
  if (RootA == RootB)
    return false;
  ClassId Root = static_cast<ClassId>(UF.unite(RootA, RootB));
  ClassId Other = Root == RootA ? RootB : RootA;
  // Move nodes and parents into the surviving class.
  EClass &Winner = Classes[Root];
  EClass &Loser = Classes[Other];
  Winner.Nodes.insert(Winner.Nodes.end(),
                      std::make_move_iterator(Loser.Nodes.begin()),
                      std::make_move_iterator(Loser.Nodes.end()));
  Winner.Parents.insert(Winner.Parents.end(),
                        std::make_move_iterator(Loser.Parents.begin()),
                        std::make_move_iterator(Loser.Parents.end()));
  Loser.Nodes.clear();
  Loser.Parents.clear();
  Worklist.push_back(Root);
  return true;
}

void EGraphClassic::repair(ClassId Id) {
  EClass &Class = Classes[Id];

  // Re-canonicalize every parent in the hashcons; collisions merge.
  std::vector<std::pair<ENode, ClassId>> Parents;
  Parents.swap(Class.Parents);
  for (auto &[PNode, PClass] : Parents) {
    // Remove the entry under the stored (possibly stale) key before
    // re-inserting under the canonical one.
    Hashcons.erase(PNode);
    PNode = canonicalizeNode(PNode);
    PClass = find(PClass);
    auto It = Hashcons.find(PNode);
    if (It != Hashcons.end()) {
      // Congruence: two parents became identical.
      merge(PClass, It->second);
      It->second = find(PClass);
    } else {
      Hashcons.emplace(PNode, PClass);
    }
  }

  // Deduplicate parents (the class may have been merged meanwhile; write
  // into the *current* canonical class).
  EClass &Current = Classes[find(Id)];
  std::unordered_map<ENode, ClassId, ENodeHash> Deduped;
  for (auto &[PNode, PClass] : Parents) {
    ENode Canonical = canonicalizeNode(PNode);
    auto [It, Fresh] = Deduped.emplace(Canonical, find(PClass));
    if (!Fresh)
      merge(It->second, PClass);
  }
  for (auto &[PNode, PClass] : Deduped)
    Current.Parents.emplace_back(PNode, find(PClass));

  // Deduplicate the class's own nodes.
  EClass &Target = Classes[find(Id)];
  std::vector<ENode> Nodes;
  Nodes.swap(Target.Nodes);
  std::unordered_map<ENode, bool, ENodeHash> Seen;
  for (ENode &Node : Nodes) {
    ENode Canonical = canonicalizeNode(Node);
    if (Seen.emplace(Canonical, true).second)
      Target.Nodes.push_back(std::move(Canonical));
  }
}

void EGraphClassic::rebuild() {
  while (!Worklist.empty()) {
    std::vector<ClassId> Todo;
    Todo.swap(Worklist);
    // Deduplicate canonical ids to repair each class once per round.
    for (ClassId &Id : Todo)
      Id = find(Id);
    std::sort(Todo.begin(), Todo.end());
    Todo.erase(std::unique(Todo.begin(), Todo.end()), Todo.end());
    for (ClassId Id : Todo)
      repair(Id);
  }
}

size_t EGraphClassic::numClasses() const {
  size_t Count = 0;
  for (ClassId Id = 0; Id < Classes.size(); ++Id)
    if (find(Id) == Id)
      ++Count;
  return Count;
}

std::vector<ClassId> EGraphClassic::canonicalClasses() const {
  std::vector<ClassId> Result;
  for (ClassId Id = 0; Id < Classes.size(); ++Id)
    if (find(Id) == Id && !Classes[Id].Nodes.empty())
      Result.push_back(Id);
  return Result;
}
