//===- support/Errors.h - Structured error taxonomy ------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured error taxonomy for the whole stack. Every failure that can
/// reach a user — a parse error, a typechecking failure, a prim panic at
/// runtime, a resource-limit trip, a cooperative cancellation — is
/// classified by an ErrKind and carries the source location of the command
/// form that triggered it. The Frontend renders these uniformly
/// ("line N: msg", kept stable for existing tests), and egglog_run maps
/// kinds onto process exit codes (0 ok, 1 user error, 2 limit/cancelled,
/// 3 internal).
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_ERRORS_H
#define EGGLOG_SUPPORT_ERRORS_H

#include <string>

namespace egglog {

/// What went wrong, at taxonomy granularity. The split matters operationally:
/// Parse/Type/IO are the user's fault and deterministic; Runtime is the
/// program's fault (a prim panic, a merge conflict); Limit/Cancelled are the
/// environment's decision and retryable; Internal is our bug.
enum class ErrKind {
  None,      ///< No error (default-constructed EggError).
  Parse,     ///< The source text is not a well-formed program.
  Type,      ///< A well-formed command is ill-typed or malformed.
  Runtime,   ///< Execution failed: prim panic, merge conflict, check failed.
  Limit,     ///< A resource ceiling tripped (timeout, nodes, memory).
  Cancelled, ///< A cooperative cancellation request was honoured.
  IO,        ///< A file could not be read or written.
  Internal,  ///< An invariant we own was violated — a bug in egglog-cpp.
};

/// Stable lowercase names, used in rendered messages and test assertions.
inline const char *errKindName(ErrKind Kind) {
  switch (Kind) {
  case ErrKind::None:
    return "ok";
  case ErrKind::Parse:
    return "parse error";
  case ErrKind::Type:
    return "error";
  case ErrKind::Runtime:
    return "runtime error";
  case ErrKind::Limit:
    return "limit";
  case ErrKind::Cancelled:
    return "cancelled";
  case ErrKind::IO:
    return "io error";
  case ErrKind::Internal:
    return "internal error";
  }
  return "error";
}

/// Process exit status for a failure of this kind (egglog_run contract:
/// 0 ok, 1 user error, 2 limit/cancelled, 3 internal).
inline int errExitCode(ErrKind Kind) {
  switch (Kind) {
  case ErrKind::None:
    return 0;
  case ErrKind::Parse:
  case ErrKind::Type:
  case ErrKind::Runtime:
  case ErrKind::IO:
    return 1;
  case ErrKind::Limit:
  case ErrKind::Cancelled:
    return 2;
  case ErrKind::Internal:
    return 3;
  }
  return 3;
}

/// One structured error: kind, human message, and the 1-based source
/// location of the command form it was raised on (0 when unknown).
struct EggError {
  ErrKind Kind = ErrKind::None;
  std::string Message;
  unsigned Line = 0;
  unsigned Col = 0;

  explicit operator bool() const { return Kind != ErrKind::None; }
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_ERRORS_H
