//===- support/Crc32c.h - CRC-32C (Castagnoli) checksums -------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over byte spans,
/// used by the snapshot format for per-section and whole-file checksums.
/// A plain table-driven software implementation: snapshot I/O is dominated
/// by disk and (de)serialization, so hardware CRC instructions are not
/// worth a dispatch layer here. The incremental form (seed in, crc out)
/// lets the writer checksum a file as it streams sections.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_CRC32C_H
#define EGGLOG_SUPPORT_CRC32C_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace egglog {

namespace detail {

inline const std::array<uint32_t, 256> &crc32cTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t Crc = I;
      for (int Bit = 0; Bit < 8; ++Bit)
        Crc = (Crc >> 1) ^ ((Crc & 1) ? 0x82F63B78u : 0);
      T[I] = Crc;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// Extends a running CRC-32C with \p Len bytes. Start from crc32cInit(),
/// finish with crc32cFinish() (which applies the final complement).
inline uint32_t crc32cUpdate(uint32_t Crc, const void *Data, size_t Len) {
  const std::array<uint32_t, 256> &Table = detail::crc32cTable();
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I)
    Crc = Table[(Crc ^ Bytes[I]) & 0xFF] ^ (Crc >> 8);
  return Crc;
}

inline uint32_t crc32cInit() { return 0xFFFFFFFFu; }
inline uint32_t crc32cFinish(uint32_t Crc) { return Crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32C of a byte span.
inline uint32_t crc32c(const void *Data, size_t Len) {
  return crc32cFinish(crc32cUpdate(crc32cInit(), Data, Len));
}

} // namespace egglog

#endif // EGGLOG_SUPPORT_CRC32C_H
