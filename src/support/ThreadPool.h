//===- support/ThreadPool.h - Work-stealing thread pool --------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent work-stealing pool for the engine's parallel match
/// phase (DESIGN.md "Match/apply phase separation"). parallelFor(N, Fn)
/// deals the item indices [0, N) round-robin over per-worker deques; each
/// worker drains its own deque from the front and, when empty, steals from
/// the back of another's. Items are coarse (one whole semi-naïve delta
/// variant of one rule), so the per-item locking is noise next to the join
/// it guards.
///
/// The calling thread participates as worker 0: a pool of size 1 spawns no
/// threads at all and parallelFor degenerates to a plain loop, and worker
/// threads park on a condition variable between jobs rather than spinning.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_THREADPOOL_H
#define EGGLOG_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace egglog {

/// Fixed-size pool executing index-space loops. Not reentrant: only one
/// parallelFor may be active at a time (the engine runs exactly one match
/// phase at a time).
class ThreadPool {
public:
  /// \p Threads is the total concurrency including the calling thread, so
  /// the pool spawns Threads - 1 workers.
  explicit ThreadPool(unsigned Threads) {
    Queues.resize(Threads == 0 ? 1 : Threads);
    for (auto &Q : Queues)
      Q = std::make_unique<Queue>();
    for (unsigned W = 1; W < Queues.size(); ++W)
      Workers.emplace_back([this, W] { workerLoop(W); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(JobMutex);
      Shutdown = true;
    }
    JobStart.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total concurrency (workers plus the calling thread).
  unsigned threads() const { return static_cast<unsigned>(Queues.size()); }

  /// Runs Fn(I) for every I in [0, NumItems), distributed over the pool
  /// and the calling thread; blocks until every item has finished. Item
  /// order is unspecified — callers must not depend on it.
  ///
  /// \p Tag optionally names the job group ("match", "apply.stage",
  /// "rebuild.gather", ...) for diagnostics: the pool tallies items
  /// dispatched per tag, and per-phase stats/tests read the tallies back
  /// via itemsForTag(). Tags must be string literals (stored by pointer
  /// compare first, then content).
  void parallelFor(size_t NumItems, const std::function<void(size_t)> &Fn,
                   const char *Tag = nullptr) {
    if (NumItems == 0)
      return;
    if (Tag)
      recordTag(Tag, NumItems);
    if (Queues.size() == 1 || NumItems == 1) {
      for (size_t I = 0; I < NumItems; ++I)
        Fn(I);
      return;
    }
    {
      // Publish the job before dealing any item: a straggler worker still
      // draining the previous job can pick a fresh item up the moment it
      // lands in a deque, and must then observe the new JobFn (it re-reads
      // JobFn under JobMutex per item, and this whole setup holds it).
      std::lock_guard<std::mutex> Lock(JobMutex);
      JobFn = &Fn;
      Remaining.store(NumItems, std::memory_order_relaxed);
      for (size_t I = 0; I < NumItems; ++I) {
        Queue &Q = *Queues[I % Queues.size()];
        std::lock_guard<std::mutex> QLock(Q.M);
        Q.Items.push_back(I);
      }
      ++JobGeneration;
    }
    JobStart.notify_all();
    drain(0);
    std::unique_lock<std::mutex> Lock(JobMutex);
    JobDone.wait(Lock, [this] {
      return Remaining.load(std::memory_order_acquire) == 0;
    });
    JobFn = nullptr;
    // Rethrow the first task exception (e.g. a match arena's bad_alloc)
    // on the caller, matching what the serial loop would do — but only
    // after every item finished, so no worker can still be touching Fn.
    if (FirstError) {
      std::exception_ptr Error = FirstError;
      FirstError = nullptr;
      Lock.unlock();
      std::rethrow_exception(Error);
    }
  }

  /// Total items ever dispatched under \p Tag (0 for an unknown tag).
  /// Called between jobs (the pool is not reentrant), so the plain reads
  /// below never race a recordTag.
  uint64_t itemsForTag(const char *Tag) const {
    for (const TagCount &TC : TagCounts)
      if (TC.Tag == Tag || std::strcmp(TC.Tag, Tag) == 0)
        return TC.Items;
    return 0;
  }

private:
  struct Queue {
    std::mutex M;
    std::deque<size_t> Items;
  };

  /// Per-tag dispatch tallies; tiny (a handful of phase names), so a
  /// linear scan beats a map.
  struct TagCount {
    const char *Tag;
    uint64_t Items;
  };
  std::vector<TagCount> TagCounts;

  void recordTag(const char *Tag, size_t NumItems) {
    for (TagCount &TC : TagCounts)
      if (TC.Tag == Tag || std::strcmp(TC.Tag, Tag) == 0) {
        TC.Items += NumItems;
        return;
      }
    TagCounts.push_back(TagCount{Tag, NumItems});
  }

  /// Pops the next item: own deque front first, then the back of the
  /// nearest non-empty victim (the "stealing" half of work stealing).
  bool take(unsigned Self, size_t &Item) {
    {
      Queue &Q = *Queues[Self];
      std::lock_guard<std::mutex> Lock(Q.M);
      if (!Q.Items.empty()) {
        Item = Q.Items.front();
        Q.Items.pop_front();
        return true;
      }
    }
    for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
      Queue &Q = *Queues[(Self + Offset) % Queues.size()];
      std::lock_guard<std::mutex> Lock(Q.M);
      if (!Q.Items.empty()) {
        Item = Q.Items.back();
        Q.Items.pop_back();
        return true;
      }
    }
    return false;
  }

  void drain(unsigned Self) {
    size_t Item;
    while (take(Self, Item)) {
      const std::function<void(size_t)> *Fn;
      {
        // Re-read per item (not once per wake-up): a worker can outlive
        // the job it was woken for and run into the next one's items; the
        // deal loop publishes items only while holding JobMutex with the
        // matching JobFn already set, so this read can never pair an item
        // with a stale function.
        std::lock_guard<std::mutex> Lock(JobMutex);
        Fn = JobFn;
      }
      try {
        (*Fn)(Item);
      } catch (...) {
        // A task must never unwind a worker (std::terminate) or the
        // caller before the job is fully drained (workers would race a
        // destroyed Fn): record the first exception and keep draining;
        // parallelFor rethrows it once every item has completed.
        std::lock_guard<std::mutex> Lock(JobMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
      // The acquire-release RMW chain makes every worker's writes visible
      // to the caller once it observes Remaining == 0.
      if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(JobMutex);
        JobDone.notify_all();
      }
    }
  }

  void workerLoop(unsigned Self) {
    uint64_t Seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> Lock(JobMutex);
        JobStart.wait(Lock,
                      [&] { return Shutdown || JobGeneration != Seen; });
        if (Shutdown)
          return;
        Seen = JobGeneration;
      }
      drain(Self);
    }
  }

  /// One deque per worker slot (index 0 is the calling thread's).
  std::vector<std::unique_ptr<Queue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex JobMutex;
  std::condition_variable JobStart;
  std::condition_variable JobDone;
  /// The active job; read under JobMutex, valid whenever any item of it is
  /// still queued or running.
  const std::function<void(size_t)> *JobFn = nullptr;
  /// Bumped per job so parked workers know they have work to look for.
  uint64_t JobGeneration = 0;
  /// Items not yet completed in the active job.
  std::atomic<size_t> Remaining{0};
  /// First exception a task of the active job threw; guarded by JobMutex,
  /// rethrown by parallelFor after the job drains.
  std::exception_ptr FirstError;
  bool Shutdown = false;
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_THREADPOOL_H
